// DAG extraction cost (Sec. IV motivation).
//
// "The brute-force way to extract DAG from prioritized flow tables has high
// time complexity. In practice, it can consume minutes in processing a flow
// table with a few thousand rules." This bench measures that brute force
// against the index-accelerated bulk build and against amortized incremental
// maintenance — the quantitative justification for preserving the DAG
// through compilation instead of recomputing it.
#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "dag/builder.h"
#include "dag/min_dag_maintainer.h"
#include "util/logging.h"
#include "util/timer.h"

int main() {
  using namespace ruletris;
  using flowspace::FlowTable;
  using flowspace::Rule;
  using flowspace::TernaryMatch;

  util::set_log_level(util::LogLevel::kOff);
  std::printf("\n=== Minimum-DAG extraction cost (router tables) ===\n");
  std::printf("%-8s | %-14s %-16s %-22s\n", "rules", "brute ms", "indexed bulk ms",
              "incremental us/update");

  for (const size_t n : {250ul, 500ul, 1000ul, 2000ul, 4000ul}) {
    util::Rng rng(0xdead + n);
    const FlowTable table{classbench::generate_router(n, rng)};

    // Brute force (O(n^2) pair checks, every between-set scanned).
    double brute_ms;
    {
      util::Stopwatch watch;
      const auto graph = dag::build_min_dag(table);
      brute_ms = watch.elapsed_ms();
      (void)graph;
    }

    // Index-accelerated bulk load.
    std::vector<std::pair<flowspace::RuleId, TernaryMatch>> ordered;
    for (const Rule& r : table.rules()) ordered.emplace_back(r.id, r.match);
    dag::MinDagMaintainer maintainer(
        [](flowspace::RuleId, flowspace::RuleId) { return true; });
    double bulk_ms;
    {
      util::Stopwatch watch;
      maintainer.bulk_load(ordered);
      bulk_ms = watch.elapsed_ms();
    }

    // Amortized incremental: insert+remove a nested /24 repeatedly.
    double inc_us;
    {
      constexpr int kRounds = 200;
      util::Stopwatch watch;
      for (int i = 0; i < kRounds; ++i) {
        TernaryMatch m;
        m.set_prefix(flowspace::FieldId::kDstIp, rng.next_u32(), 24);
        const auto id = flowspace::next_rule_id();
        maintainer.insert(id, m);
        maintainer.remove(id);
      }
      inc_us = watch.elapsed_us() / (2.0 * kRounds);
    }

    std::printf("%-8zu | %-14.1f %-16.1f %-22.2f\n", n, brute_ms, bulk_ms, inc_us);
    std::fflush(stdout);
  }
  return 0;
}
