// DAG extraction cost (Sec. IV motivation).
//
// "The brute-force way to extract DAG from prioritized flow tables has high
// time complexity. In practice, it can consume minutes in processing a flow
// table with a few thousand rules." This bench measures that brute force
// against the three optimization layers this repository stacks on top of it:
//   1. candidate pruning  — the two-level RuleIndex limits each rule's pair
//      tests to rules it can actually overlap;
//   2. fragment arena     — the per-row residue walk and try_cover kernel
//      reuse scratch buffers, so the hot loop is allocation-free;
//   3. row parallelism    — rows are independent, so build_min_dag_parallel
//      shards them across a thread pool with per-thread arenas.
// It also reports the index-accelerated bulk load and amortized incremental
// maintenance — the quantitative justification for preserving the DAG
// through compilation instead of recomputing it.
//
// Flags: --threads N   worker count for the parallel layer (default 4)
//        --json PATH   machine-readable report (see bench_util.h)
//        --smoke       tiny sizes + equivalence checks; used as a ctest
//                      smoke test so parallel-builder regressions fail tier-1
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "dag/builder.h"
#include "dag/min_dag_maintainer.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ruletris;
  using flowspace::FlowTable;
  using flowspace::Rule;
  using flowspace::TernaryMatch;

  bool smoke = false;
  size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[i + 1]));
    }
  }
  bench::init_json(argc, argv, "dag_extraction");
  if (auto* j = bench::json()) {
    j->meta("workload", "classbench router (IP-chain profile)");
    j->meta("threads", static_cast<double>(threads));
    j->meta("fragment_limit", static_cast<double>(flowspace::kDefaultFragmentLimit));
    j->meta("direct_cutoff", static_cast<double>(dag::kSmallTableDirectCutoff));
  }

  util::set_log_level(util::LogLevel::kOff);
  std::printf("\n=== Minimum-DAG extraction cost (router tables) ===\n");
  std::printf("%-8s | %-12s %-12s %-13s %-16s %-22s | %-9s %-9s\n", "rules",
              "brute ms", "indexed ms", "parallel ms", "indexed bulk ms",
              "incremental us/update", "1t speedup", "Nt speedup");

  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{200, 400}
            : std::vector<size_t>{250, 500, 1000, 2000, 4000, 10000, 20000};
  bool ok = true;

  for (const size_t n : sizes) {
    util::Rng rng(0xdead + n);
    const FlowTable table{classbench::generate_router(n, rng)};

    // Brute force (O(n^2) pair checks, every between-set scanned): the seed
    // extractor and the baseline for the speedup columns.
    double brute_ms;
    dag::DependencyGraph brute_graph;
    {
      util::Stopwatch watch;
      brute_graph = dag::build_min_dag_brute(table);
      brute_ms = watch.elapsed_ms();
    }

    // Layer 1+2: index pruning + arena residue walk, single-threaded. Small
    // tables skip the index and take the direct per-pair path.
    const bool direct = dag::uses_direct_path(n, dag::MinDagBuildOptions{});
    double serial_ms;
    dag::DependencyGraph serial_graph;
    {
      util::Stopwatch watch;
      serial_graph = dag::build_min_dag(table);
      serial_ms = watch.elapsed_ms();
    }

    // Layer 3: rows sharded across the thread pool.
    double parallel_ms;
    dag::DependencyGraph parallel_graph;
    {
      util::Stopwatch watch;
      parallel_graph = dag::build_min_dag_parallel(table, threads);
      parallel_ms = watch.elapsed_ms();
    }

    if (!(serial_graph == brute_graph)) {
      std::fprintf(stderr, "FAIL: indexed build diverged from brute force at n=%zu\n", n);
      ok = false;
    }
    if (!(parallel_graph == serial_graph)) {
      std::fprintf(stderr, "FAIL: parallel build diverged from serial at n=%zu\n", n);
      ok = false;
    }
    // Crossover guard: below the direct cutoff, build_min_dag must not lose
    // to brute force by more than noise (the 2x + 1ms slack absorbs timer
    // jitter on sub-millisecond rows). Before the cutoff existed the indexed
    // build was ~3.5x slower than brute at 250 rules. Both timings are
    // sub-millisecond in smoke, so one preemption while ctest runs the suite
    // in parallel can swamp either side — re-measure before calling it a
    // regression.
    double guard_brute = brute_ms;
    double guard_serial = serial_ms;
    for (int retry = 0;
         direct && guard_serial > guard_brute * 2.0 + 1.0 && retry < 3; ++retry) {
      util::Stopwatch bwatch;
      (void)dag::build_min_dag_brute(table);
      guard_brute = bwatch.elapsed_ms();
      util::Stopwatch swatch;
      (void)dag::build_min_dag(table);
      guard_serial = swatch.elapsed_ms();
    }
    if (direct && guard_serial > guard_brute * 2.0 + 1.0) {
      std::fprintf(stderr,
                   "FAIL: direct path slower than brute at n=%zu (%.2fms vs %.2fms)\n",
                   n, guard_serial, guard_brute);
      ok = false;
    }

    // Index-accelerated bulk load (maintainer bootstrap path).
    std::vector<std::pair<flowspace::RuleId, TernaryMatch>> ordered;
    for (const Rule& r : table.rules()) ordered.emplace_back(r.id, r.match);
    dag::MinDagMaintainer maintainer(
        [](flowspace::RuleId, flowspace::RuleId) { return true; });
    double bulk_ms;
    {
      util::Stopwatch watch;
      maintainer.bulk_load(ordered);
      bulk_ms = watch.elapsed_ms();
    }

    // Amortized incremental: insert+remove a nested /24 repeatedly.
    double inc_us;
    {
      const int rounds = smoke ? 50 : 200;
      util::Stopwatch watch;
      for (int i = 0; i < rounds; ++i) {
        TernaryMatch m;
        m.set_prefix(flowspace::FieldId::kDstIp, rng.next_u32(), 24);
        const auto id = flowspace::next_rule_id();
        maintainer.insert(id, m);
        maintainer.remove(id);
      }
      inc_us = watch.elapsed_us() / (2.0 * rounds);
    }

    const double serial_speedup = brute_ms / serial_ms;
    const double parallel_speedup = brute_ms / parallel_ms;
    std::printf("%-8zu | %-12.1f %-12.1f %-13.1f %-16.1f %-22.2f | %-9.1f %-9.1f\n",
                n, brute_ms, serial_ms, parallel_ms, bulk_ms, inc_us,
                serial_speedup, parallel_speedup);
    std::fflush(stdout);

    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("rules", static_cast<double>(n));
      j->field("path", direct ? "direct" : "indexed");
      j->field("edges", static_cast<double>(serial_graph.edge_count()));
      j->field("brute_ms", brute_ms);
      j->field("indexed_serial_ms", serial_ms);
      j->field("parallel_ms", parallel_ms);
      j->field("indexed_bulk_ms", bulk_ms);
      j->field("incremental_us_per_update", inc_us);
      j->field("serial_speedup", serial_speedup);
      j->field("parallel_speedup", parallel_speedup);
    }
  }

  bench::write_json();
  return ok ? 0 : 1;
}
