// Network-wide consistent-update bench: planner strategies vs. the
// inconsistent one-shot baseline.
//
// For each strategy (rounds, two-phase, auto, oneshot) the bench plans the
// same policy transition, replays the schedule two ways — a planner-side
// table simulation and real fleet runs over the faulty runtime across
// several crash seeds — and audits per-packet consistency between every
// round. Reported per strategy: rounds-to-converge, virtual makespan,
// transient rule overhead (the augmentation cost), and the number of mixed
// old/new observations (must be zero for every consistent strategy; the
// one-shot baseline must be caught).
//
//   bench/netplan [--smoke] [--topology SPEC] [--flows N] [--threads N]
//                 [--seeds S] [--json out.json]
//
// --smoke self-checks and exits non-zero when any consistent strategy
// leaks a mixed observation, the baseline goes uncaught, or two-phase
// fails to beat dependency rounds on round count.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "flowspace/rule.h"
#include "netplan/auditor.h"
#include "netplan/fleet.h"
#include "netplan/materialize.h"
#include "netplan/planner.h"
#include "netplan/policy.h"
#include "netplan/topology.h"
#include "runtime/config.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace ruletris;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;
using netplan::AuditConfig;
using netplan::ConsistencyAuditor;
using netplan::LookupFn;
using netplan::MutationSpec;
using netplan::NetworkPolicy;
using netplan::Strategy;
using netplan::Topology;
using netplan::UpdatePlan;
using runtime::FaultSpec;

struct Options {
  std::string topology = "random:10:5:3";
  size_t flows = 24;
  size_t threads = 2;
  uint64_t seed = 3;                          // policy/mutation seed
  std::vector<uint64_t> fault_seeds = {3, 5, 9};
  bool smoke = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--topology") {
      opt.topology = value();
    } else if (arg == "--flows") {
      opt.flows = static_cast<size_t>(std::stoul(value()));
    } else if (arg == "--threads") {
      opt.threads = static_cast<size_t>(std::stoul(value()));
    } else if (arg == "--seeds") {
      opt.fault_seeds.clear();
      std::string list = value();
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        opt.fault_seeds.push_back(std::stoull(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--json") {
      ++i;  // consumed by bench::init_json
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// Synthetic policy source: mostly host routes plus a few covering /16s so
/// conflict groups (forced two-phase) actually occur.
std::vector<Rule> bench_rules(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Rule> rules;
  for (size_t i = 0; i < n; ++i) {
    TernaryMatch m;
    const uint32_t base = static_cast<uint32_t>(rng.next_below(6)) << 24;
    if (i % 6 == 5) {
      m.set_prefix(FieldId::kDstIp, base | (uint32_t(i) << 16), 16);
    } else {
      m.set_exact(FieldId::kDstIp, base | static_cast<uint32_t>(i * 8111 + 5));
      if (i % 3 == 0) m.set_exact(FieldId::kIpProto, 6);
    }
    rules.push_back(Rule::make(m, ActionList{Action::forward(1)},
                               static_cast<int32_t>(1000 - i)));
  }
  return rules;
}

struct StrategyResult {
  Strategy strategy;
  UpdatePlan plan;
  size_t sim_violations = 0;      // planner-side table simulation
  size_t runtime_violations = 0;  // live-TCAM audits across fault seeds
  size_t audits = 0;
  size_t crashes = 0;
  size_t restarts = 0;
  size_t entry_writes = 0;
  bool all_completed = true;
  bool all_converged = true;
  util::Samples makespan_ms;  // one sample per fault seed
};

size_t simulate_and_audit(const Topology& topo, const NetworkPolicy& oldp,
                          const NetworkPolicy& newp, const UpdatePlan& plan,
                          const ConsistencyAuditor& auditor) {
  std::vector<FlowTable> mid = netplan::tables_from(plan.initial);
  const LookupFn look = netplan::tables_lookup(mid);
  size_t mixed = auditor.audit(look).mixed;
  for (const netplan::Round& round : plan.rounds) {
    netplan::apply_round(round, mid);
    mixed += auditor.audit(look).mixed;
  }
  return mixed;
}

StrategyResult run_strategy(const Topology& topo, const NetworkPolicy& oldp,
                            const NetworkPolicy& newp, Strategy strategy,
                            const Options& opt) {
  StrategyResult result;
  result.strategy = strategy;
  result.plan = netplan::plan_update(topo, oldp, newp, {strategy, 0});

  AuditConfig acfg;
  acfg.seed = opt.seed ^ 0xa0d17;
  const ConsistencyAuditor auditor(
      topo, oldp, newp, netplan::tables_from(result.plan.initial),
      netplan::tables_from(result.plan.final_tables), acfg);

  result.sim_violations =
      simulate_and_audit(topo, oldp, newp, result.plan, auditor);

  const std::vector<netplan::SwitchScript> scripts =
      netplan::materialize(topo, result.plan);
  for (uint64_t fault_seed : opt.fault_seeds) {
    netplan::FleetConfig fc;
    fc.runtime.knobs.faults = FaultSpec::crashy();
    fc.runtime.knobs.faults.crash_p = 0.02;
    fc.runtime.fault_seed = fault_seed;
    fc.runtime.n_threads = opt.threads;
    fc.runtime.tcam_capacity = result.plan.peak_switch_rules + 32;
    netplan::FleetController fleet(scripts, fc);
    const LookupFn live = fleet.lookup();
    const netplan::FleetReport report = fleet.run([&](size_t, double) {
      result.runtime_violations += auditor.audit(live).mixed;
      ++result.audits;
    });
    result.all_completed = result.all_completed && report.completed;
    result.all_converged =
        result.all_converged && report.merged.all_converged;
    result.crashes += report.merged.crashes;
    result.restarts += report.merged.restarts;
    result.entry_writes += report.merged.entry_writes;
    result.makespan_ms.add(report.makespan_ms());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  bench::init_json(argc, argv, "netplan");

  const Topology topo = Topology::parse(opt.topology);
  const NetworkPolicy oldp =
      netplan::policy_from_rules(topo, bench_rules(opt.flows, opt.seed), opt.seed);
  MutationSpec mut;
  mut.reroute_fraction = 0.4;
  mut.drop_flows = opt.flows / 8;
  mut.seed = opt.seed;
  for (uint32_t a = 0; a < 3; ++a) {
    TernaryMatch m;
    m.set_exact(FieldId::kDstIp, 0xf0000000u + a * 7919u);
    mut.add_matches.push_back(m);
  }
  const NetworkPolicy newp = netplan::mutate_policy(topo, oldp, mut);

  std::printf("netplan: topology %s (%zu switches), %zu -> %zu flows, "
              "%zu fault seeds, %zu threads\n",
              opt.topology.c_str(), topo.switch_count(), oldp.flows.size(),
              newp.flows.size(), opt.fault_seeds.size(), opt.threads);

  const std::vector<Strategy> strategies = {
      Strategy::kRounds, Strategy::kTwoPhase, Strategy::kAuto,
      Strategy::kOneShot};
  std::vector<StrategyResult> results;
  for (Strategy s : strategies) {
    results.push_back(run_strategy(topo, oldp, newp, s, opt));
  }

  std::printf("\n%-10s %7s %9s %22s %10s %8s %11s %10s\n", "strategy",
              "rounds", "peak", "makespan ms (med)", "overhead", "audits",
              "violations", "converged");
  if (auto* j = bench::json()) {
    j->meta("topology", opt.topology);
    j->meta("switches", static_cast<double>(topo.switch_count()));
    j->meta("flows_old", static_cast<double>(oldp.flows.size()));
    j->meta("flows_new", static_cast<double>(newp.flows.size()));
    j->meta("fault_seeds", static_cast<double>(opt.fault_seeds.size()));
    j->meta("seed", static_cast<double>(opt.seed));
  }
  for (const StrategyResult& r : results) {
    const size_t violations = r.sim_violations + r.runtime_violations;
    std::printf("%-10s %7zu %9zu %22s %9.1f%% %8zu %11zu %10s\n",
                netplan::strategy_name(r.strategy), r.plan.rounds.size(),
                r.plan.peak_rules, r.makespan_ms.summary("").c_str(),
                r.plan.overhead_pct(), r.audits, violations,
                (r.all_completed && r.all_converged) ? "yes" : "NO");
    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("strategy", netplan::strategy_name(r.strategy));
      j->field("rounds", static_cast<double>(r.plan.rounds.size()));
      j->field("flows_changed", static_cast<double>(r.plan.flows_changed));
      j->field("flows_two_phase", static_cast<double>(r.plan.flows_two_phase));
      j->field("flows_rounds", static_cast<double>(r.plan.flows_rounds));
      j->field("flows_forced_two_phase",
               static_cast<double>(r.plan.flows_forced_two_phase));
      j->field("initial_rules", static_cast<double>(r.plan.initial_rules));
      j->field("final_rules", static_cast<double>(r.plan.final_rules));
      j->field("peak_rules", static_cast<double>(r.plan.peak_rules));
      j->field("peak_switch_rules",
               static_cast<double>(r.plan.peak_switch_rules));
      j->field("overhead_pct", r.plan.overhead_pct());
      j->field("makespan_med_ms", r.makespan_ms.median());
      j->field("makespan_p10_ms", r.makespan_ms.p10());
      j->field("makespan_p90_ms", r.makespan_ms.p90());
      j->field("audits", static_cast<double>(r.audits));
      j->field("sim_violations", static_cast<double>(r.sim_violations));
      j->field("runtime_violations",
               static_cast<double>(r.runtime_violations));
      j->field("crashes", static_cast<double>(r.crashes));
      j->field("restarts", static_cast<double>(r.restarts));
      j->field("entry_writes", static_cast<double>(r.entry_writes));
      j->field("converged", (r.all_completed && r.all_converged) ? 1.0 : 0.0);
    }
  }
  bench::write_json();

  // Self-checks. The consistent strategies must audit clean at every round
  // boundary under every fault seed; the one-shot baseline must be caught;
  // two-phase buys its TCAM augmentation with a round count no worse than
  // dependency rounds.
  const StrategyResult& rounds = results[0];
  const StrategyResult& two_phase = results[1];
  const StrategyResult& one_shot = results[3];
  bool ok = true;
  auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
      ok = false;
    }
  };
  for (size_t i = 0; i < 3; ++i) {  // rounds, two-phase, auto
    check(results[i].sim_violations == 0, "consistent strategy mixed in sim");
    check(results[i].runtime_violations == 0,
          "consistent strategy mixed on live TCAMs");
    check(results[i].all_completed && results[i].all_converged,
          "consistent strategy did not converge");
    check(results[i].makespan_ms.min() > 0.0, "zero makespan");
    check(results[i].audits ==
              opt.fault_seeds.size() * (1 + results[i].plan.rounds.size()),
          "auditor skipped a round boundary");
  }
  check(one_shot.sim_violations > 0, "one-shot baseline escaped the auditor");
  check(one_shot.runtime_violations > 0,
        "one-shot baseline escaped the live-TCAM auditor");
  check(two_phase.plan.rounds.size() <= rounds.plan.rounds.size(),
        "two-phase used more rounds than dependency rounds");
  check(two_phase.plan.peak_rules >= rounds.plan.peak_rules,
        "two-phase should pay the augmentation cost");
  if (opt.smoke) {
    std::printf("\nsmoke: %s\n", ok ? "all checks passed" : "FAILED");
  }
  return ok ? 0 : 1;
}
