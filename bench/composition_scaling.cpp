// Full-compile scaling of the composition front-end (Sec. IV-B).
//
// RuleTris pays the full composition compile on policy bootstrap and on
// structural policy changes; this bench measures how that compile scales
// with the policy size for all three operators, against the pre-index
// baseline:
//   * legacy   — the O(n^2) sequential-pair stitch loop and serial compose
//                fan-out (CompileOptions::legacy_stitch);
//   * indexed  — candidate pairs pulled from an overlap index over the left
//                rules, per-node scratch arenas (the default path);
//   * parallel — indexed, with the compose fan-out and the stitch predicate
//                sweep sharded across a thread pool.
// All three strategies must produce the identical CompileSnapshot (member
// entries by provenance, key-vertex representatives, visible minimum-DAG
// edges); the bench exits non-zero on divergence, and the smoke run is wired
// into ctest so compile-path regressions fail tier-1.
//
// Workloads mirror the paper's evaluation policies, with the left table
// swept and the right fixed at a hardware-sized router:
//   parallel:   monitor(n)  + router(128)   (Fig. 9 shape)
//   sequential: nat(n)      > router(128)   (Fig. 10 shape)
//   priority:   firewall(n) $ router(128)   (supplementary shape)
//
// Flags: --threads N   worker count for the parallel strategy (default 4)
//        --json PATH   machine-readable report (see bench_util.h)
//        --smoke       tiny sizes + equivalence checks only
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "compiler/composed_node.h"
#include "compiler/leaf.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ruletris;
  using compiler::CompileOptions;
  using compiler::CompileSnapshot;
  using compiler::ComposedNode;
  using compiler::LeafNode;
  using compiler::OpKind;
  using flowspace::FlowTable;
  using flowspace::Rule;

  bool smoke = false;
  size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[i + 1]));
    }
  }
  bench::init_json(argc, argv, "composition_scaling");
  if (auto* j = bench::json()) {
    j->meta("workload", "left table swept, right = classbench router(128)");
    j->meta("threads", static_cast<double>(threads));
    j->meta("threads_effective",
            static_cast<double>(util::effective_workers(threads)));
    j->meta("parallel_cutoff", static_cast<double>(compiler::kCompileParallelCutoff));
  }

  util::set_log_level(util::LogLevel::kOff);
  std::printf("\n=== Composition full-compile scaling (left x router-128) ===\n");
  std::printf("%-10s %-8s | %-10s %-10s %-11s | %-8s %-8s | %-9s %-9s\n", "op",
              "left", "legacy ms", "indexed ms", "parallel ms", "entries",
              "visible", "prune spd", "par spd");

  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{100, 200}
            : std::vector<size_t>{250, 500, 1000, 2000, 4000, 10000, 20000};
  const OpKind ops[] = {OpKind::kParallel, OpKind::kSequential, OpKind::kPriority};
  bool ok = true;

  for (const OpKind op : ops) {
    for (const size_t n : sizes) {
      util::Rng rng(0xc0de + n);
      const std::vector<Rule> right_rules = classbench::generate_router(128, rng);
      std::vector<Rule> left_rules;
      switch (op) {
        case OpKind::kParallel:
          left_rules = classbench::generate_monitor(n, rng);
          break;
        case OpKind::kSequential:
          left_rules = classbench::generate_nat(n, right_rules, rng);
          break;
        case OpKind::kPriority:
          left_rules = classbench::generate_firewall(n, rng);
          break;
      }

      // Construct once (untimed warmup compile); then re-run full_rebuild
      // under each strategy on the same node, so leaf DAG extraction and
      // allocator warmup stay out of the timed sections.
      CompileOptions serial;
      ComposedNode node{op, std::make_unique<LeafNode>(FlowTable{left_rules}),
                        std::make_unique<LeafNode>(FlowTable{right_rules}), serial};

      auto timed_rebuild = [&](const CompileOptions& opts) {
        node.set_compile_options(opts);
        util::Stopwatch watch;
        node.full_rebuild();
        return watch.elapsed_ms();
      };

      CompileOptions legacy;
      legacy.legacy_stitch = true;
      const double legacy_ms = timed_rebuild(legacy);
      const CompileSnapshot legacy_snap = node.snapshot();

      const double indexed_ms = timed_rebuild(CompileOptions{});
      const CompileSnapshot indexed_snap = node.snapshot();

      CompileOptions par;
      par.n_threads = threads;
      // Smoke is the equivalence gate: force the pool path even on a
      // single-core host. The timed sweep keeps the production clamp, so
      // parallel_ms reflects what a user would actually get here.
      par.clamp_to_hardware = !smoke;
      const double parallel_ms = timed_rebuild(par);
      const CompileSnapshot parallel_snap = node.snapshot();

      if (!(indexed_snap == legacy_snap)) {
        std::fprintf(stderr, "FAIL: indexed compile diverged from legacy (%s, n=%zu)\n",
                     compiler::op_name(op), n);
        ok = false;
      }
      if (!(parallel_snap == indexed_snap)) {
        std::fprintf(stderr, "FAIL: parallel compile diverged from serial (%s, n=%zu)\n",
                     compiler::op_name(op), n);
        ok = false;
      }

      const double prune_speedup = legacy_ms / indexed_ms;
      const double parallel_speedup = legacy_ms / parallel_ms;
      std::printf("%-10s %-8zu | %-10.1f %-10.1f %-11.1f | %-8zu %-8zu | %-9.1f %-9.1f\n",
                  compiler::op_name(op), n, legacy_ms, indexed_ms, parallel_ms,
                  node.member_size(), node.visible_size(), prune_speedup,
                  parallel_speedup);
      std::fflush(stdout);

      if (auto* j = bench::json()) {
        j->begin_row();
        j->field("op", compiler::op_name(op));
        j->field("left_rules", static_cast<double>(n));
        j->field("right_rules", static_cast<double>(right_rules.size()));
        j->field("member_entries", static_cast<double>(node.member_size()));
        j->field("visible_rules", static_cast<double>(node.visible_size()));
        j->field("legacy_ms", legacy_ms);
        j->field("indexed_ms", indexed_ms);
        j->field("parallel_ms", parallel_ms);
        j->field("prune_speedup", prune_speedup);
        j->field("parallel_speedup", parallel_speedup);
      }
    }
  }

  bench::write_json();
  return ok ? 0 : 1;
}
