// Figure 10: rule update overhead of "L3-L4 NAT > L3 router".
//
// A 100-entry NAT table (exact public destinations rewritten into the
// router's prefixes, plus a passthrough default) sequentially composed with
// an L3 router (126 entries for the hardware point, 250-4000 emulated).
// Each update replaces one NAT translation (Sec. VII-B).
#include "bench/scenario.h"

int main(int argc, char** argv) {
  using namespace ruletris;
  bench::init_json(argc, argv, "fig10_sequential");
  bench::CompositionScenario scenario;
  scenario.title = "Fig. 10: L3-L4 NAT > L3 router (sequential)";
  scenario.op = 1;  // sequential
  scenario.left_size = 100;
  scenario.hw_right_size = 126;
  scenario.gen_left = [](size_t n, const std::vector<flowspace::Rule>& router,
                         util::Rng& rng) {
    return classbench::generate_nat(n, router, rng);
  };
  scenario.gen_replacement = [](const std::vector<flowspace::Rule>& router,
                                util::Rng& rng) {
    return classbench::random_nat_rule(router, 100, rng);
  };
  scenario.protect_last_left = true;  // never churn the passthrough default
  bench::run_composition_scenario(scenario);
  bench::write_json();
  return 0;
}
