// Ablation A3 (Sec. VIII): single-table sequential composition vs a
// two-stage TCAM pipeline.
//
// With two physical tables, "NAT > router" needs no composition at all: the
// NAT member lives in stage 0, the router in stage 1, and a NAT update costs
// O(1) entry writes regardless of router size. This bench quantifies what
// the composition (and its update amplification) costs when the hardware
// has only one table.
#include <map>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "compiler/leaf.h"
#include "compiler/ruletris_compiler.h"
#include "switchsim/adapters.h"
#include "switchsim/pipeline_switch.h"
#include "switchsim/switch.h"
#include "util/logging.h"
#include "util/timer.h"

int main() {
  using namespace ruletris;
  using compiler::LeafNode;
  using compiler::PolicySpec;
  using compiler::TableUpdate;
  using flowspace::FlowTable;
  using flowspace::Rule;

  util::set_log_level(util::LogLevel::kOff);
  std::printf("\n=== Ablation A3: single-table composition vs two-stage pipeline "
              "(NAT > router) ===\n");
  std::printf("%-8s %-12s | %-28s %-28s %-28s\n", "router", "deployment",
              "compile ms", "tcam ms", "total ms");
  const size_t updates = bench::updates_per_run(200);

  for (const size_t right_size : {250ul, 1000ul, 4000ul}) {
    util::Rng rng(0xf00d + right_size);
    const auto router = classbench::generate_router(right_size, rng);
    const auto nat = classbench::generate_nat(100, router, rng);

    // --- Single table: full sequential composition.
    std::map<std::string, FlowTable> tables;
    tables.emplace("nat", FlowTable{nat});
    tables.emplace("router", FlowTable{router});
    compiler::RuleTrisCompiler composed(
        PolicySpec::sequential(PolicySpec::leaf("nat"), PolicySpec::leaf("router")),
        tables);
    const size_t composed_size = composed.root().visible_size();
    switchsim::SimulatedSwitch single(switchsim::FirmwareMode::kDag,
                                      composed_size + composed_size / 8 + 128);
    {
      TableUpdate initial;
      initial.added = composed.root().visible_rules_in_order();
      for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
      initial.dag.added_edges = composed.root().visible_graph().edges();
      single.deliver(switchsim::to_messages(initial));
    }

    // --- Pipeline: members installed verbatim into their own stages.
    LeafNode nat_leaf{FlowTable{nat}};
    LeafNode router_leaf{FlowTable{router}};
    switchsim::MultiTableSwitch pipeline(
        {nat.size() + 64, right_size + right_size / 8 + 64});
    for (int stage = 0; stage < 2; ++stage) {
      const LeafNode& leaf = stage == 0 ? nat_leaf : router_leaf;
      TableUpdate initial;
      initial.added = leaf.visible_rules_in_order();
      for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
      initial.dag.added_edges = leaf.visible_graph().edges();
      pipeline.deliver(static_cast<size_t>(stage), switchsim::to_messages(initial));
    }

    bench::MetricSet single_metrics, pipeline_metrics;
    std::vector<flowspace::RuleId> live;
    for (const Rule& r : nat) live.push_back(r.id);

    for (size_t u = 0; u < updates; ++u) {
      const size_t victim_idx = rng.next_below(live.size() - 1);  // keep default
      const flowspace::RuleId victim = live[victim_idx];
      const Rule fresh = classbench::random_nat_rule(router, 100, rng);
      live[victim_idx] = fresh.id;

      {
        util::Stopwatch watch;
        auto upd_del = composed.remove("nat", victim);
        auto upd_add = composed.insert("nat", fresh);
        const double compile = watch.elapsed_ms();
        const auto m1 = single.deliver(switchsim::to_messages(upd_del));
        const auto m2 = single.deliver(switchsim::to_messages(upd_add));
        single_metrics.add(compile, m1.firmware_ms + m2.firmware_ms,
                           m1.tcam_ms + m2.tcam_ms, m1.channel_ms + m2.channel_ms);
      }
      {
        util::Stopwatch watch;
        auto upd_del = nat_leaf.remove(victim);
        auto upd_add = nat_leaf.insert(fresh);
        const double compile = watch.elapsed_ms();
        const auto m1 = pipeline.deliver(0, switchsim::to_messages(upd_del));
        const auto m2 = pipeline.deliver(0, switchsim::to_messages(upd_add));
        pipeline_metrics.add(compile, m1.firmware_ms + m2.firmware_ms,
                             m1.tcam_ms + m2.tcam_ms, m1.channel_ms + m2.channel_ms);
      }
    }

    std::printf("%-8zu %-12s | %-28s %-28s %-28s\n", right_size, "composed",
                single_metrics.compile_ms.summary("").c_str(),
                single_metrics.tcam_ms.summary("").c_str(),
                single_metrics.total_ms.summary("").c_str());
    std::printf("%-8zu %-12s | %-28s %-28s %-28s\n", right_size, "pipeline",
                pipeline_metrics.compile_ms.summary("").c_str(),
                pipeline_metrics.tcam_ms.summary("").c_str(),
                pipeline_metrics.total_ms.summary("").c_str());
    std::fflush(stdout);
  }
  return 0;
}
