// Shared runner for the composition-update scenarios of Figs. 9 and 10.
//
// For each configuration (right-member table size) the runner drives the
// same update stream — delete one rule from the left member, insert a fresh
// one — through all three compilers and their switches, recording the
// paper's three latency components per update.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "compiler/baseline.h"
#include "compiler/covisor.h"
#include "compiler/ruletris_compiler.h"
#include "switchsim/adapters.h"
#include "switchsim/switch.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ruletris::bench {

using compiler::PolicySpec;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;

struct CompositionScenario {
  const char* title;
  int op;                           // OpKind as int
  size_t left_size = 100;
  size_t hw_right_size = 78;        // paper's hardware-experiment size
  std::vector<size_t> emu_right_sizes = {250, 500, 1000, 2000, 4000};
  /// Generates the left member table (may consult the right member's rules,
  /// e.g. NAT translations target router prefixes).
  std::function<std::vector<Rule>(size_t, const std::vector<Rule>&, util::Rng&)>
      gen_left;
  /// Generates a replacement left-member rule for the update stream.
  std::function<Rule(const std::vector<Rule>&, util::Rng&)> gen_replacement;
  /// Keep the left member's final rule (e.g. a NAT passthrough default) out
  /// of the update stream.
  bool protect_last_left = false;
};

inline void run_composition_scenario(const CompositionScenario& scenario) {
  util::set_log_level(util::LogLevel::kError);
  print_header(scenario.title);
  const size_t updates = updates_per_run();

  std::vector<std::pair<std::string, size_t>> configs;
  configs.emplace_back(util::strfmt("HW(%zu)", scenario.hw_right_size),
                       scenario.hw_right_size);
  for (size_t n : scenario.emu_right_sizes) {
    configs.emplace_back(util::strfmt("%zu", n), n);
  }

  for (const auto& [label, right_size] : configs) {
    util::Rng rng(0x9e00 + right_size);
    const std::vector<Rule> right_rules =
        classbench::generate_router(right_size, rng);
    const std::vector<Rule> left_rules =
        scenario.gen_left(scenario.left_size, right_rules, rng);

    auto tables_for = [&] {
      std::map<std::string, FlowTable> t;
      t.emplace("left", FlowTable{left_rules});
      t.emplace("right", FlowTable{right_rules});
      return t;
    };
    const PolicySpec spec = PolicySpec::combine(scenario.op, PolicySpec::leaf("left"),
                                                PolicySpec::leaf("right"));

    // --- RuleTris pipeline.
    compiler::RuleTrisCompiler ruletris(spec, tables_for());
    const size_t composed = ruletris.root().visible_size();
    const size_t dag_capacity = composed + composed / 8 + 128;
    switchsim::SimulatedSwitch sw_dag(switchsim::FirmwareMode::kDag, dag_capacity);
    {
      compiler::TableUpdate initial;
      initial.added = ruletris.root().visible_rules_in_order();
      for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
      initial.dag.added_edges = ruletris.root().visible_graph().edges();
      sw_dag.deliver(switchsim::to_messages(initial));
    }

    // --- CoVisor pipeline.
    compiler::CovisorCompiler covisor(spec, tables_for());
    const size_t cv_size = covisor.compiled().size();
    switchsim::SimulatedSwitch sw_cv(switchsim::FirmwareMode::kPriority,
                                     cv_size + cv_size / 8 + 128);
    {
      compiler::PrioritizedUpdate initial;
      for (const Rule& r : covisor.compiled()) {
        initial.push_back(compiler::PrioritizedOp::add(r));
      }
      sw_cv.deliver(switchsim::to_messages(initial));
    }

    // --- Baseline pipeline.
    compiler::BaselineCompiler baseline(spec, tables_for());
    const size_t bl_size = baseline.compiled().size();
    switchsim::SimulatedSwitch sw_bl(switchsim::FirmwareMode::kPriority,
                                     bl_size + bl_size / 8 + 128);
    {
      compiler::PrioritizedUpdate initial;
      for (const Rule& r : baseline.compiled()) {
        initial.push_back(compiler::PrioritizedOp::add(r));
      }
      sw_bl.deliver(switchsim::to_messages(initial));
    }

    MetricSet rt_metrics, cv_metrics, bl_metrics;
    std::vector<RuleId> live;
    for (const Rule& r : left_rules) live.push_back(r.id);

    size_t failures = 0;
    for (size_t u = 0; u < updates; ++u) {
      const size_t victim_idx =
          rng.next_below(live.size() - (scenario.protect_last_left ? 1 : 0));
      const RuleId victim = live[victim_idx];
      const Rule fresh = scenario.gen_replacement(right_rules, rng);
      live[victim_idx] = fresh.id;

      {  // RuleTris: incremental compile + DAG firmware.
        util::Stopwatch watch;
        auto upd_del = ruletris.remove("left", victim);
        auto upd_add = ruletris.insert("left", fresh);
        const double compile = watch.elapsed_ms();
        const auto m1 = sw_dag.deliver(switchsim::to_messages(upd_del));
        const auto m2 = sw_dag.deliver(switchsim::to_messages(upd_add));
        if (!m1.ok || !m2.ok) ++failures;
        rt_metrics.add(compile, m1.firmware_ms + m2.firmware_ms,
                       m1.tcam_ms + m2.tcam_ms, m1.channel_ms + m2.channel_ms);
      }
      {  // CoVisor: incremental compile + priority firmware.
        util::Stopwatch watch;
        auto upd_del = covisor.remove("left", victim);
        auto upd_add = covisor.insert("left", fresh);
        const double compile = watch.elapsed_ms();
        const auto m1 = sw_cv.deliver(switchsim::to_messages(upd_del));
        const auto m2 = sw_cv.deliver(switchsim::to_messages(upd_add));
        if (!m1.ok || !m2.ok) ++failures;
        cv_metrics.add(compile, m1.firmware_ms + m2.firmware_ms,
                       m1.tcam_ms + m2.tcam_ms, m1.channel_ms + m2.channel_ms);
      }
      {  // Baseline: recompile from scratch + priority firmware.
        util::Stopwatch watch;
        auto upd_del = baseline.remove("left", victim);
        auto upd_add = baseline.insert("left", fresh);
        const double compile = watch.elapsed_ms();
        const auto m1 = sw_bl.deliver(switchsim::to_messages(upd_del));
        const auto m2 = sw_bl.deliver(switchsim::to_messages(upd_add));
        if (!m1.ok || !m2.ok) ++failures;
        bl_metrics.add(compile, m1.firmware_ms + m2.firmware_ms,
                       m1.tcam_ms + m2.tcam_ms, m1.channel_ms + m2.channel_ms);
      }
    }

    print_row(label + util::strfmt("/%zu", composed), "Baseline", bl_metrics);
    print_row(label, "CoVisor", cv_metrics);
    print_row(label, "RuleTris", rt_metrics);
    std::printf("    -> per-update speedup vs CoVisor: %.1fx (median total)\n",
                cv_metrics.total_ms.median() / rt_metrics.total_ms.median());
    if (failures != 0) {
      std::printf("    !! %zu switch-apply failures\n", failures);
    }
  }
}

}  // namespace ruletris::bench
