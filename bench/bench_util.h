// Shared harness for the figure-reproduction benches.
//
// Each bench prints the same rows the paper plots: per configuration and per
// compiler, the median [p10, p90] of compilation time, firmware time, and
// TCAM update time over an update stream (Sec. VII-A(c)).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/stats.h"
#include "util/strfmt.h"

namespace ruletris::bench {

/// Number of sequential updates fed to each compiler. The paper uses 1000;
/// the default is lower so the full suite runs in minutes — override with
/// RULETRIS_UPDATES=1000 to match the paper exactly.
inline size_t updates_per_run(size_t fallback = 200) {
  if (const char* env = std::getenv("RULETRIS_UPDATES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

/// Version of the emitted JSON document format. Bump when the envelope
/// changes shape (fields added/renamed/moved), so downstream readers of the
/// checked-in BENCH_*.json files can detect drift instead of misparsing.
/// History: 1 = original unversioned {benchmark, meta, rows} envelope;
/// 2 = adds schema_version + generator provenance (the "provenance" object
/// — git SHA, build type, hardware threads — is a v2-additive field: JSON
/// readers ignore unknown keys, so it does not bump the version).
inline constexpr int kBenchJsonSchemaVersion = 2;

/// Build provenance baked in by CMake; "unknown" outside a git checkout.
inline const char* git_sha() {
#ifdef RULETRIS_GIT_SHA
  return RULETRIS_GIT_SHA;
#else
  return "unknown";
#endif
}

inline const char* build_type() {
#ifdef RULETRIS_BUILD_TYPE
  return RULETRIS_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// Machine-readable benchmark output: a flat list of rows, each a list of
/// key/value fields, emitted as JSON. Started from a `--json out.json`
/// command-line flag (see init_json); rows printed through print_row are
/// mirrored automatically, and benches with custom output record rows
/// explicitly through `json()`. The emitted document is
///   {"benchmark": ..., "schema_version": N, "generator": ...,
///    "meta": {...}, "rows": [{...}, ...]}
/// so the perf trajectory under BENCH_*.json stays trivially diffable.
class JsonReport {
 public:
  JsonReport(std::string benchmark, std::string path)
      : benchmark_(std::move(benchmark)),
        generator_("ruletris/bench/" + benchmark_),
        path_(std::move(path)) {}

  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, quote(value));
  }
  void meta(const std::string& key, double value) {
    meta_.emplace_back(key, number(value));
  }

  /// Starts a new result row; subsequent field() calls land in it.
  void begin_row() { rows_.emplace_back(); }
  void field(const std::string& key, double value) {
    rows_.back().emplace_back(key, number(value));
  }
  void field(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, quote(value));
  }

  const std::string& path() const { return path_; }

  bool write() const {
    std::ofstream out(path_);
    if (!out) return false;
    out << "{\n  \"benchmark\": " << quote(benchmark_)
        << ",\n  \"schema_version\": " << kBenchJsonSchemaVersion
        << ",\n  \"generator\": " << quote(generator_)
        << ",\n  \"provenance\": {\"git_sha\": " << quote(git_sha())
        << ", \"build_type\": " << quote(build_type())
        << ", \"hardware_threads\": "
        << std::max(1u, std::thread::hardware_concurrency())
        << "},\n  \"meta\": {";
    for (size_t i = 0; i < meta_.size(); ++i) {
      out << (i ? ", " : "") << quote(meta_[i].first) << ": " << meta_[i].second;
    }
    out << "},\n  \"rows\": [\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out << "    {";
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        out << (i ? ", " : "") << quote(rows_[r][i].first) << ": "
            << rows_[r][i].second;
      }
      out << (r + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
    return out.good();
  }

 private:
  static std::string number(double v) { return util::strfmt("%.6g", v); }
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::string benchmark_;
  std::string generator_;  // provenance: which harness binary emitted this
  std::string path_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

namespace detail {
inline std::unique_ptr<JsonReport>& json_slot() {
  static std::unique_ptr<JsonReport> report;
  return report;
}
}  // namespace detail

/// The active report, or nullptr when --json was not requested.
inline JsonReport* json() { return detail::json_slot().get(); }

/// Scans argv for "--json PATH" and arms the global report when present.
inline void init_json(int argc, char** argv, const char* benchmark) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      detail::json_slot() = std::make_unique<JsonReport>(benchmark, argv[i + 1]);
      return;
    }
  }
}

/// Writes and disarms the report; prints the destination for the console log.
inline void write_json() {
  auto& slot = detail::json_slot();
  if (!slot) return;
  if (slot->write()) {
    std::printf("json report written to %s\n", slot->path().c_str());
  } else {
    std::fprintf(stderr, "error: cannot write json report to %s\n",
                 slot->path().c_str());
  }
  slot.reset();
}

struct MetricSet {
  util::Samples compile_ms;
  util::Samples firmware_ms;
  util::Samples tcam_ms;
  // Channel transfer time, charged from the actual proto::codec encoded
  // bytes of each delivered batch. Kept out of total_ms: the paper's three
  // bars exclude the channel, but the decomposition is reported alongside.
  util::Samples channel_ms;
  util::Samples total_ms;

  void add(double compile, double firmware, double tcam, double channel = 0.0) {
    compile_ms.add(compile);
    firmware_ms.add(firmware);
    tcam_ms.add(tcam);
    channel_ms.add(channel);
    total_ms.add(compile + firmware + tcam);
  }
};

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-10s %-10s | %-28s %-28s %-28s %-28s %-28s\n", "config",
              "compiler", "compile ms (med [p10,p90])", "firmware ms", "tcam ms",
              "channel ms", "total ms");
}

inline void print_row(const std::string& config, const char* compiler,
                      const MetricSet& m) {
  std::printf("%-10s %-10s | %-28s %-28s %-28s %-28s %-28s\n", config.c_str(),
              compiler, m.compile_ms.summary("").c_str(),
              m.firmware_ms.summary("").c_str(), m.tcam_ms.summary("").c_str(),
              m.channel_ms.summary("").c_str(), m.total_ms.summary("").c_str());
  std::fflush(stdout);
  if (JsonReport* j = json()) {
    j->begin_row();
    j->field("config", config);
    j->field("compiler", compiler);
    const auto record = [j](const char* name, const util::Samples& s) {
      j->field(std::string(name) + "_med_ms", s.median());
      j->field(std::string(name) + "_p10_ms", s.p10());
      j->field(std::string(name) + "_p90_ms", s.p90());
    };
    record("compile", m.compile_ms);
    record("firmware", m.firmware_ms);
    record("tcam", m.tcam_ms);
    record("channel", m.channel_ms);
    record("total", m.total_ms);
  }
}

}  // namespace ruletris::bench
