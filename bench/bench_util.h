// Shared harness for the figure-reproduction benches.
//
// Each bench prints the same rows the paper plots: per configuration and per
// compiler, the median [p10, p90] of compilation time, firmware time, and
// TCAM update time over an update stream (Sec. VII-A(c)).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/stats.h"
#include "util/strfmt.h"

namespace ruletris::bench {

/// Number of sequential updates fed to each compiler. The paper uses 1000;
/// the default is lower so the full suite runs in minutes — override with
/// RULETRIS_UPDATES=1000 to match the paper exactly.
inline size_t updates_per_run(size_t fallback = 200) {
  if (const char* env = std::getenv("RULETRIS_UPDATES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

struct MetricSet {
  util::Samples compile_ms;
  util::Samples firmware_ms;
  util::Samples tcam_ms;
  util::Samples total_ms;

  void add(double compile, double firmware, double tcam) {
    compile_ms.add(compile);
    firmware_ms.add(firmware);
    tcam_ms.add(tcam);
    total_ms.add(compile + firmware + tcam);
  }
};

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-10s %-10s | %-28s %-28s %-28s %-28s\n", "config", "compiler",
              "compile ms (med [p10,p90])", "firmware ms", "tcam ms", "total ms");
}

inline void print_row(const std::string& config, const char* compiler,
                      const MetricSet& m) {
  std::printf("%-10s %-10s | %-28s %-28s %-28s %-28s\n", config.c_str(), compiler,
              m.compile_ms.summary("").c_str(), m.firmware_ms.summary("").c_str(),
              m.tcam_ms.summary("").c_str(), m.total_ms.summary("").c_str());
  std::fflush(stdout);
}

}  // namespace ruletris::bench
