// Recovery latency: cost of the crash-consistent apply path, sweeping
// crash rate x journal on/off.
//
// Part 1 — crash-free fast path. The same compiled epoch log is replayed
// through a DAG-firmware switch with the write-ahead journal detached and
// attached. The journal must be (near) free when nothing crashes: the
// bench self-checks that the TCAM write schedule is identical in both
// modes and that the wall-clock overhead of journaling stays under 5%.
//
// Part 2 — recovery cost per crash. A deterministic crash hook tears the
// firmware at sampled injection points (mid move chain included); after
// each torn transaction `recover()` runs and the bench records how many
// TCAM writes the rollback/roll-forward spent — the modelled recovery
// latency at 0.6 ms per entry write. Every recovery must leave the device
// auditor-clean or the bench exits non-zero.
//
// Part 3 — fleet under crash chaos. The asynchronous runtime replays the
// log to a fleet with per-op crash probability swept upward (journal
// always on: the runtime's apply path is unconditionally journaled) and
// reports the virtual-makespan cost of crashing and recovering. Every
// session must still converge.
//
// Flags: --smoke       tiny sweep for ctest
//        --threads N   session worker threads for part 3
//        --json PATH   machine-readable report -> BENCH_recovery.json
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "compiler/policy_spec.h"
#include "flowspace/rule.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/workload.h"
#include "switchsim/switch.h"
#include "tcam/apply_journal.h"
#include "tcam/auditor.h"
#include "tcam/dag_scheduler.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ruletris;
  using compiler::PolicySpec;
  using flowspace::FlowTable;
  using switchsim::FirmwareMode;
  using switchsim::SimulatedSwitch;
  using tcam::ApplyJournal;
  using tcam::CrashError;
  using tcam::DagScheduler;

  bool smoke = false;
  size_t threads = std::max(1u, std::thread::hardware_concurrency());
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[i + 1]));
    }
  }
  bench::init_json(argc, argv, "recovery_latency");
  util::set_log_level(util::LogLevel::kOff);

  // One workload, compiled once, shared by every part: a monitor+router
  // composition churned on the monitor leaf.
  // Non-smoke sizes are picked so the scheduler's chain search does real
  // work per update — the fast-path overhead ratio is only meaningful when
  // the journaled work itself is non-trivial.
  util::Rng rng(4242);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon",
                 FlowTable{classbench::generate_monitor(smoke ? 20 : 200, rng)});
  tables.emplace("rtr",
                 FlowTable{classbench::generate_router(smoke ? 15 : 150, rng)});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  runtime::ChurnSpec churn;
  churn.leaf = "mon";
  churn.updates = smoke ? 60 : 400;
  churn.seed = 77;
  const runtime::CompiledWorkload wl =
      runtime::compile_churn_workload(spec, tables, churn);
  const size_t capacity = wl.suggested_capacity();
  std::printf("\n=== Recovery latency: %zu epochs, TCAM capacity %zu ===\n",
              wl.epochs.size(), capacity);

  if (auto* j = bench::json()) {
    j->meta("workload", "monitor+router, churn on monitor");
    j->meta("epochs", static_cast<double>(wl.epochs.size()));
    j->meta("entry_write_ms", tcam::kEntryWriteMs);
  }

  // ---- Part 1: crash-free fast path, journal off vs on -------------------
  // Noise discipline: one sample = `inner` back-to-back replays with only
  // the apply loop on the clock; modes are interleaved within each rep so
  // machine drift hits both equally; the min over reps estimates the true
  // cost of this fixed, deterministic amount of work.
  const size_t reps = smoke ? 7 : 15;
  const size_t inner = smoke ? 2 : 4;
  double best_ms[2] = {1e300, 1e300};
  size_t writes_by_mode[2] = {0, 0};
  auto replay = [&](bool journaled, size_t& writes) {
    SimulatedSwitch sw(FirmwareMode::kDag, capacity);
    ApplyJournal journal;
    if (journaled) sw.dag_firmware().set_journal(&journal);
    writes = 0;
    util::Stopwatch watch;
    for (const proto::MessageBatch& batch : wl.epochs) {
      const auto m = sw.apply(batch);
      if (!m.ok) {
        std::fprintf(stderr, "FAIL: crash-free replay rejected an epoch\n");
        std::exit(1);
      }
      writes += m.entry_writes;
    }
    return watch.elapsed_ms();
  };
  for (int journaled = 0; journaled <= 1; ++journaled) {  // warm-up, untimed
    (void)replay(journaled != 0, writes_by_mode[journaled]);
  }
  for (size_t rep = 0; rep < reps; ++rep) {
    for (int journaled = 0; journaled <= 1; ++journaled) {
      double total = 0.0;
      for (size_t i = 0; i < inner; ++i) {
        size_t writes = 0;
        total += replay(journaled != 0, writes);
        if (writes != writes_by_mode[journaled]) {
          std::fprintf(stderr, "FAIL: replay not deterministic\n");
          return 1;
        }
      }
      best_ms[journaled] = std::min(best_ms[journaled], total / inner);
    }
  }
  size_t journaled_ops = 0;
  {
    SimulatedSwitch sw(FirmwareMode::kDag, capacity);
    ApplyJournal journal;
    sw.dag_firmware().set_journal(&journal);
    for (const proto::MessageBatch& batch : wl.epochs) (void)sw.apply(batch);
    journaled_ops = journal.total_recorded();
  }
  if (writes_by_mode[0] != writes_by_mode[1]) {
    std::fprintf(stderr,
                 "FAIL: journal changed the TCAM write schedule "
                 "(%zu vs %zu writes)\n",
                 writes_by_mode[0], writes_by_mode[1]);
    return 1;
  }
  // Two overheads, one per layer. The apply-path latency a controller sees
  // is parse + TCAM entry writes at kEntryWriteMs (firmware wall-clock is
  // diagnostic — hardware writes dominate by three orders of magnitude,
  // which is the paper's point). The journal adds zero entry writes, so
  // its end-to-end overhead is the CPU sliver divided by the write bill;
  // the CPU-only number is reported alongside with a looser guard — it
  // measures scheduler nanoseconds against journal nanoseconds.
  const double cpu_overhead_pct =
      (best_ms[1] - best_ms[0]) / best_ms[0] * 100.0;
  const double write_ms =
      static_cast<double>(writes_by_mode[0]) * tcam::kEntryWriteMs;
  const double apply_overhead_pct =
      (best_ms[1] - best_ms[0]) / (write_ms + best_ms[0]) * 100.0;
  std::printf("\ncrash-free replay (min of %zu reps):\n", reps);
  std::printf("  journal off : %8.2f ms firmware CPU + %.1f ms entry writes "
              "(%zu writes)\n",
              best_ms[0], write_ms, writes_by_mode[0]);
  std::printf("  journal on  : %8.2f ms firmware CPU + %.1f ms entry writes "
              "(%zu writes)\n",
              best_ms[1], write_ms, writes_by_mode[1]);
  std::printf("  apply-path overhead : %+.4f%%  (journal adds 0 writes)\n",
              apply_overhead_pct);
  std::printf("  firmware CPU overhead: %+.2f%%  (%zu journaled ops, "
              "%.0f ns each)\n",
              cpu_overhead_pct, journaled_ops,
              (best_ms[1] - best_ms[0]) * 1e6 /
                  static_cast<double>(std::max<size_t>(1, journaled_ops)));
  if (auto* j = bench::json()) {
    for (int journaled = 0; journaled <= 1; ++journaled) {
      j->begin_row();
      j->field("part", "fast_path");
      j->field("journal", static_cast<double>(journaled));
      j->field("crash_p", 0.0);
      j->field("firmware_cpu_ms", best_ms[journaled]);
      j->field("entry_write_ms_total", write_ms);
      j->field("entry_writes", static_cast<double>(writes_by_mode[journaled]));
    }
    j->begin_row();
    j->field("part", "fast_path_overhead");
    j->field("apply_overhead_pct", apply_overhead_pct);
    j->field("firmware_cpu_overhead_pct", cpu_overhead_pct);
    j->field("journaled_ops", static_cast<double>(journaled_ops));
  }
  // The journal must be (near) free when nothing crashes: well under 5% on
  // the apply path. The CPU-only guard is looser — the scheduler computes
  // an epoch in ~2 us, so even a few ns per journaled op registers — and
  // exists to catch a fast-path regression (say, a rule copy sneaking back
  // into record()), not to hold a tight bound on a noisy microbenchmark.
  const double apply_limit = 5.0;
  const double cpu_limit = smoke ? 60.0 : 30.0;
  if (apply_overhead_pct > apply_limit || cpu_overhead_pct > cpu_limit) {
    std::fprintf(stderr,
                 "FAIL: journal overhead apply %.4f%% (limit %.0f%%), "
                 "CPU %.2f%% (limit %.0f%%)\n",
                 apply_overhead_pct, apply_limit, cpu_overhead_pct, cpu_limit);
    return 1;
  }

  // ---- Part 2: recovery cost per torn transaction ------------------------
  // Count the injection points once with a never-firing hook, then sample
  // them: each sampled point gets a fresh replay that crashes exactly there,
  // recovers, and finishes. Recovery must always leave the device clean.
  size_t total_points = 0;
  {
    SimulatedSwitch probe(FirmwareMode::kDag, capacity);
    ApplyJournal journal;
    probe.dag_firmware().set_journal(&journal);
    probe.dag_firmware().set_crash_hook([&total_points] {
      ++total_points;
      return false;
    });
    for (const proto::MessageBatch& batch : wl.epochs) (void)probe.apply(batch);
  }
  const size_t samples = smoke ? 12 : 50;
  const size_t stride = std::max<size_t>(1, total_points / samples);
  util::Samples recovery_writes, recovery_ms;
  size_t rollbacks = 0, roll_forwards = 0;
  for (size_t k = 1; k <= total_points; k += stride) {
    SimulatedSwitch sw(FirmwareMode::kDag, capacity);
    ApplyJournal journal;
    DagScheduler& dag = sw.dag_firmware();
    dag.set_journal(&journal);
    size_t calls = 0;
    dag.set_crash_hook([&calls, k] { return ++calls == k; });
    for (size_t e = 0; e < wl.epochs.size();) {
      try {
        (void)sw.apply(wl.epochs[e]);
      } catch (const CrashError&) {
        const DagScheduler::RecoveryResult r = dag.recover();
        recovery_writes.add(static_cast<double>(r.undone_writes));
        recovery_ms.add(static_cast<double>(r.undone_writes) *
                        tcam::kEntryWriteMs);
        const bool forward =
            r.outcome == DagScheduler::RecoveryResult::Outcome::kRolledForward;
        forward ? ++roll_forwards : ++rollbacks;
        if (!tcam::audit_state(sw.tcam(), dag.graph()).clean()) {
          std::fprintf(stderr, "FAIL: recovery at point %zu left the device "
                               "auditor-dirty\n", k);
          return 1;
        }
        if (forward) ++e;  // the sealed transaction committed
        continue;
      }
      ++e;
    }
  }
  std::printf("\nrecovery cost (%zu of %zu crash points sampled):\n",
              recovery_writes.count(), total_points);
  std::printf("  undone writes : med %.0f  p90 %.0f  max %.0f\n",
              recovery_writes.median(), recovery_writes.p90(),
              recovery_writes.max());
  std::printf("  recovery ms   : med %.2f  p90 %.2f  max %.2f\n",
              recovery_ms.median(), recovery_ms.p90(), recovery_ms.max());
  std::printf("  outcomes      : %zu rolled back, %zu rolled forward\n",
              rollbacks, roll_forwards);
  if (auto* j = bench::json()) {
    j->begin_row();
    j->field("part", "recovery_cost");
    j->field("crash_points", static_cast<double>(total_points));
    j->field("sampled", static_cast<double>(recovery_writes.count()));
    j->field("undone_writes_med", recovery_writes.median());
    j->field("undone_writes_max", recovery_writes.max());
    j->field("recovery_ms_med", recovery_ms.median());
    j->field("recovery_ms_p90", recovery_ms.p90());
    j->field("recovery_ms_max", recovery_ms.max());
    j->field("rollbacks", static_cast<double>(rollbacks));
    j->field("roll_forwards", static_cast<double>(roll_forwards));
  }
  if (rollbacks == 0 || roll_forwards == 0) {
    std::fprintf(stderr, "FAIL: sampling missed a recovery mode "
                         "(%zu rollbacks, %zu roll-forwards)\n",
                 rollbacks, roll_forwards);
    return 1;
  }

  // ---- Part 3: fleet makespan under swept crash rates --------------------
  // The sweep tops out at 0.005/op (~5% per epoch attempt): the fleet still
  // converges there at a ~20x virtual-makespan penalty. Much beyond that,
  // windowed replay bursts crash faster than they drain and the run spends
  // unbounded virtual time in recovery storms rather than measuring them.
  const std::vector<double> crash_rates =
      smoke ? std::vector<double>{0.0, 0.005}
            : std::vector<double>{0.0, 0.001, 0.002, 0.005};
  std::printf("\nfleet under crash chaos (%zu switches, window 4):\n",
              smoke ? 4ul : 8ul);
  std::printf("%-9s | %-12s %-9s %-13s %-16s %-9s\n", "crash_p", "makespan ms",
              "crashes", "roll-forwards", "recovered writes", "converged");
  double baseline_makespan = 0.0;
  for (const double crash_p : crash_rates) {
    runtime::RuntimeConfig cfg;
    cfg.n_switches = smoke ? 4 : 8;
    cfg.knobs.window = 4;
    cfg.n_threads = threads;
    cfg.knobs.faults.crash_p = crash_p;
    cfg.fault_seed = 13;
    cfg.tcam_capacity = capacity;
    runtime::Controller controller(cfg);
    const runtime::RuntimeReport report =
        controller.run(wl.epochs, wl.final_rules);
    if (crash_p == 0.0) baseline_makespan = report.makespan_ms;
    std::printf("%-9g | %-12.2f %-9zu %-13zu %-16zu %-9s\n", crash_p,
                report.makespan_ms, report.crashes, report.roll_forwards,
                report.recovered_writes, report.all_converged ? "yes" : "NO");
    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("part", "fleet");
      j->field("journal", 1.0);
      j->field("crash_p", crash_p);
      j->field("makespan_ms", report.makespan_ms);
      j->field("makespan_vs_crash_free",
               baseline_makespan > 0 ? report.makespan_ms / baseline_makespan
                                     : 1.0);
      j->field("crashes", static_cast<double>(report.crashes));
      j->field("roll_forwards", static_cast<double>(report.roll_forwards));
      j->field("recovered_writes",
               static_cast<double>(report.recovered_writes));
      j->field("restarts", static_cast<double>(report.restarts));
      j->field("converged", report.all_converged ? 1.0 : 0.0);
    }
    if (!report.all_converged) {
      std::fprintf(stderr, "FAIL: fleet did not converge at crash_p=%g\n",
                   crash_p);
      return 1;
    }
    if (crash_p > 0.0 && report.crashes == 0) {
      std::fprintf(stderr, "FAIL: crash_p=%g produced no crashes\n", crash_p);
      return 1;
    }
    if (report.makespan_ms < baseline_makespan) {
      std::fprintf(stderr, "FAIL: crashing fleet finished before the "
                           "crash-free one (%.2f < %.2f ms)\n",
                   report.makespan_ms, baseline_makespan);
      return 1;
    }
  }
  bench::write_json();

  std::printf("\nOK: crash-free apply overhead %.4f%% (limit %.0f%%, CPU "
              "%.2f%%), every sampled recovery auditor-clean, fleet "
              "converged at every crash rate\n",
              apply_overhead_pct, apply_limit, cpu_overhead_pct);
  return 0;
}
