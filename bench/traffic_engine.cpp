// Data-plane traffic engine bench -> BENCH_traffic.json.
//
// Three sections, each with a built-in self-check (non-zero exit on
// violation, so the --smoke ctest entry gates regressions):
//
//   admission — a Zipf flow stream drives the two-level cache under flow
//     churn with both admission policies at equal TCAM capacity. Reports
//     cache hit rate, lookup throughput (pkts/s), and the update latency
//     (swap entry writes x 0.6 ms) the data plane sees between epochs.
//     Check: flow-driven (FDRC) hit rate strictly beats the static
//     DAG-position baseline, and no consistency violation ever.
//
//   determinism — the flow-driven run repeated with 1 and N lookup threads
//     and re-run at the base thread count. Check: per-rule hit counts and
//     final TCAM layouts are bit-identical (checksums) across all three.
//
//   slowpath — tuple-space SoftTable vs a linear full-table scan on the
//     same packet sample, over growing rule counts. Check: identical
//     winners everywhere; >= 10x speedup at >= 100k rules (full mode).
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "dag/builder.h"
#include "switchsim/traffic_engine.h"
#include "tcam/soft_table.h"
#include "util/logging.h"
#include "util/timer.h"

using namespace ruletris;
using switchsim::TrafficConfig;
using switchsim::TrafficEngine;
using switchsim::TrafficReport;
using tcam::CacheFlowManager;
using Policy = CacheFlowManager::AdmissionPolicy;

namespace {

struct Args {
  bool smoke = false;
  size_t threads = 3;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) a.smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      a.threads = static_cast<size_t>(std::atol(argv[++i]));
    }
  }
  if (a.threads == 0) a.threads = 1;
  return a;
}

const char* policy_name(Policy p) {
  return p == Policy::kFlowDriven ? "fdrc" : "static";
}

TrafficReport run_policy(const flowspace::FlowTable& fib,
                         const dag::DependencyGraph& graph, size_t capacity,
                         const TrafficConfig& base, Policy policy,
                         size_t threads) {
  CacheFlowManager mgr(fib.rules(), graph, CacheFlowManager::Mode::kDagFirmware,
                       capacity);
  TrafficConfig cfg = base;
  cfg.policy = policy;
  cfg.n_threads = threads;
  TrafficEngine engine(mgr, fib.rules(), cfg);
  return engine.run();
}

int fail(const char* what) {
  std::fprintf(stderr, "SELF-CHECK FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  util::set_log_level(util::LogLevel::kOff);
  bench::init_json(argc, argv, "traffic_engine");

  const size_t fib_rules = args.smoke ? 400 : 5000;
  const size_t capacity = args.smoke ? 96 : 512;

  TrafficConfig base;
  base.flows = args.smoke ? 20000 : 1 << 20;
  base.zipf_alpha = 1.1;
  base.churn_rate = 0.01;
  base.packets_per_epoch = args.smoke ? 20000 : 50000;
  base.epochs = args.smoke ? 3 : 4;
  base.seed = 0x7aff1c;
  base.rebalance_swaps = args.smoke ? 48 : 96;

  if (auto* j = bench::json()) {
    j->meta("fib_rules", static_cast<double>(fib_rules));
    j->meta("tcam_capacity", static_cast<double>(capacity));
    j->meta("flows", static_cast<double>(base.flows));
    j->meta("zipf_alpha", base.zipf_alpha);
    j->meta("churn_rate", base.churn_rate);
    j->meta("threads", static_cast<double>(args.threads));
    j->meta("mode", args.smoke ? "smoke" : "full");
  }

  std::printf("=== traffic engine: Zipf flows over a %zu-rule FIB, "
              "%zu-entry TCAM ===\n", fib_rules, capacity);
  util::Rng gen(0xcafe);
  const flowspace::FlowTable fib{classbench::generate_router(fib_rules, gen)};
  const auto graph = dag::build_min_dag(fib);

  // --- admission: flow-driven (FDRC) vs static DAG-position -------------
  std::printf("\n[admission] %zu flows, alpha %.2f, churn %.3f/pkt, "
              "%zux%zu pkts, %zu threads\n", base.flows, base.zipf_alpha,
              base.churn_rate, base.epochs, base.packets_per_epoch, args.threads);
  double hit_rate[2] = {0, 0};
  for (const Policy policy : {Policy::kStaticDag, Policy::kFlowDriven}) {
    const TrafficReport r =
        run_policy(fib, graph, capacity, base, policy, args.threads);
    util::Samples update_ms;
    for (size_t e = 0; e < r.epochs.size(); ++e) {
      update_ms.add(r.epochs[e].update_ms);
      std::printf("    epoch %zu: hit rate %.4f, %zu swaps, %.1f update ms\n",
                  e, r.epochs[e].hit_rate(), r.epochs[e].swaps,
                  r.epochs[e].update_ms);
    }
    std::printf("  %-7s | hit rate %.4f | %10.0f pkts/s | swaps %zu | "
                "update ms/epoch %s | churn %zu | violations %zu\n",
                policy_name(policy), r.hit_rate(), r.pkts_per_s(), r.swaps,
                update_ms.summary("").c_str(), r.churn_events,
                r.consistency_violations);
    hit_rate[policy == Policy::kFlowDriven] = r.hit_rate();
    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("section", "admission");
      j->field("policy", policy_name(policy));
      j->field("hit_rate", r.hit_rate());
      j->field("pkts_per_s", r.pkts_per_s());
      j->field("swaps", static_cast<double>(r.swaps));
      j->field("entry_writes", static_cast<double>(r.entry_writes));
      j->field("update_ms_med", update_ms.median());
      j->field("update_ms_p90", update_ms.p90());
      j->field("churn_events", static_cast<double>(r.churn_events));
      j->field("consistency_violations",
               static_cast<double>(r.consistency_violations));
    }
    if (r.consistency_violations != 0) return fail("lookup_consistent violated");
  }
  if (!(hit_rate[1] > hit_rate[0])) {
    return fail("flow-driven admission must beat the static baseline on hit rate");
  }
  std::printf("  fdrc/static hit-rate gain: %.2fx\n", hit_rate[1] / hit_rate[0]);

  // --- determinism: runs and thread counts -------------------------------
  {
    const TrafficReport a =
        run_policy(fib, graph, capacity, base, Policy::kFlowDriven, 1);
    const TrafficReport b =
        run_policy(fib, graph, capacity, base, Policy::kFlowDriven, args.threads);
    const TrafficReport c =
        run_policy(fib, graph, capacity, base, Policy::kFlowDriven, args.threads);
    std::printf("\n[determinism] hit checksum %016llx layout %016llx "
                "(1 thread vs %zu threads vs rerun)\n",
                static_cast<unsigned long long>(a.hit_checksum),
                static_cast<unsigned long long>(a.layout_checksum), args.threads);
    const bool ok = a.hit_checksum == b.hit_checksum &&
                    b.hit_checksum == c.hit_checksum &&
                    a.layout_checksum == b.layout_checksum &&
                    b.layout_checksum == c.layout_checksum &&
                    a.fast_hits == b.fast_hits;
    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("section", "determinism");
      j->field("threads", static_cast<double>(args.threads));
      j->field("bit_identical", ok ? 1.0 : 0.0);
    }
    if (!ok) return fail("reports must be bit-identical across runs and threads");
  }

  // --- slowpath: tuple-space vs linear scan ------------------------------
  std::printf("\n[slowpath] tuple-space SoftTable vs linear full-table scan\n");
  const std::vector<size_t> sweep =
      args.smoke ? std::vector<size_t>{2000}
                 : std::vector<size_t>{20000, 50000, 100000};
  for (const size_t n : sweep) {
    util::Rng rng(0xd00d ^ n);
    const flowspace::FlowTable table{classbench::generate_router(n, rng)};
    const tcam::SoftTable soft(table.rules());

    const size_t n_check = args.smoke ? 400 : 1000;  // equivalence + linear timing
    const size_t n_fast = args.smoke ? 20000 : 100000;  // soft-path timing
    std::vector<flowspace::Packet> pkts;
    pkts.reserve(n_fast);
    for (size_t i = 0; i < n_fast; ++i) {
      pkts.push_back(switchsim::synth_packet(
          table.rules(), util::hash_pair(0x9ac4e7, i)));
    }

    for (size_t i = 0; i < n_check; ++i) {
      const auto* lin = table.lookup(pkts[i]);
      const auto* tss = soft.lookup(pkts[i]);
      if ((lin == nullptr) != (tss == nullptr) ||
          (lin != nullptr && lin->id != tss->id)) {
        return fail("SoftTable diverged from the linear full-table scan");
      }
    }

    size_t lin_hits = 0;
    size_t tss_hits = 0;
    const auto measure = [&](double& lin_out, double& tss_out) {
      util::Stopwatch lin_watch;
      lin_hits = 0;
      for (size_t i = 0; i < n_check; ++i) {
        if (table.lookup(pkts[i]) != nullptr) ++lin_hits;
      }
      lin_out = lin_watch.elapsed_ms() * 1e6 / n_check;

      util::Stopwatch tss_watch;
      tss_hits = 0;
      for (const auto& p : pkts) {
        if (soft.lookup(p) != nullptr) ++tss_hits;
      }
      tss_out = tss_watch.elapsed_ms() * 1e6 / n_fast;
      return tss_out > 0 ? lin_out / tss_out : 0.0;
    };

    double lin_ns = 0.0;
    double tss_ns = 0.0;
    double speedup = measure(lin_ns, tss_ns);
    // The smoke linear loop times only a few hundred lookups; one preemption
    // while ctest runs the suite in parallel swamps it. Re-measure a couple
    // of times before treating a low ratio as a real regression.
    for (int retry = 0; args.smoke && speedup < 1.5 && retry < 5; ++retry) {
      double lin_retry = 0.0;
      double tss_retry = 0.0;
      const double again = measure(lin_retry, tss_retry);
      if (again > speedup) {
        speedup = again;
        lin_ns = lin_retry;
        tss_ns = tss_retry;
      }
    }

    std::printf("  %7zu rules | %3zu tuples | linear %9.0f ns/pkt | "
                "tuple-space %7.0f ns/pkt | %6.1fx\n",
                n, soft.tuple_count(), lin_ns, tss_ns, speedup);
    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("section", "slowpath");
      j->field("rules", static_cast<double>(n));
      j->field("tuples", static_cast<double>(soft.tuple_count()));
      j->field("linear_ns_per_pkt", lin_ns);
      j->field("tuple_ns_per_pkt", tss_ns);
      j->field("speedup", speedup);
    }
    (void)lin_hits;
    (void)tss_hits;
    if (args.smoke) {
      if (speedup < 1.5) return fail("tuple-space slower than expected in smoke");
    } else if (n >= 100000 && speedup < 10.0) {
      return fail("tuple-space must beat the linear scan >= 10x at >= 100k rules");
    }
  }

  bench::write_json();
  std::printf("\nall self-checks passed\n");
  return 0;
}
