// Chaos recovery harness — clean vs chaos fleet throughput and the cost of
// surviving: shard kills with blob-replay failover, agent blackouts with
// quarantine + warm-boot re-admission, brownout wires with adaptive
// retransmit backoff.
//
// Cells (all virtual-time deterministic, so rows are bit-exact):
//   * mode=clean   — the PR-9 fleet geometry, no faults: the baseline the
//     degradation is measured against;
//   * mode=chaos   — same geometry under a full ChaosSchedule (two shard
//     kills, two agent blackouts) on brownout wires with firmware crashes;
//   * mode=fixed_timer / mode=adaptive — retry-policy ablation under
//     sustained >= 0.3 drop with brownout windows, same fault seed.
//
// Self-checks (exit non-zero on violation):
//   * determinism — cells sharing (mode, switches, shards) but differing
//     in threads must produce identical fleet/delta/layout fingerprints;
//   * recovery — the chaos run must converge with failover_ok, zero
//     re-admission failures, zero rejoin audit violations, and its final
//     TCAM layouts and delta chains bit-identical to the clean run's;
//   * coverage — shard kills, failovers, quarantines and re-admissions all
//     actually fired (a chaos bench that exercises nothing is a bug);
//   * backoff — the adaptive cell's total retransmits must be strictly
//     below the fixed-timer cell's.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/sharded_controller.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace ruletris;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  (void)smoke;  // the sweep is small; smoke and full mode run the same cells
  bench::init_json(argc, argv, "chaos_recovery");
  util::set_log_level(util::LogLevel::kOff);

  constexpr size_t kSwitches = 8;
  constexpr size_t kShards = 3;
  constexpr size_t kUpdates = 16;

  const auto base_spec = [] {
    runtime::FleetSpec spec;
    spec.n_switches = kSwitches;
    spec.n_shards = kShards;
    spec.updates_per_switch = kUpdates;
    spec.seed = 21;
    spec.fault_seed = 9;
    spec.audit_stride = 2;
    spec.tcam_capacity = 1024;
    return spec;
  };
  const auto chaos_schedule = [] {
    runtime::ChaosSchedule chaos;
    // Shards 1 and 2 die early on their compile clocks; shard 0 adopts
    // their five orphaned switches in kill order.
    chaos.shard_kills.push_back({1, 0.3});
    chaos.shard_kills.push_back({2, 0.8});
    // Two agents go dark past the quarantine escalation, then return.
    chaos.blackouts.push_back({1, {30.0, 400.0}});
    chaos.blackouts.push_back({4, {60.0, 300.0}});
    return chaos;
  };
  // Retry ablation wire: >= 0.3 sustained drop everywhere, 0.9 inside the
  // brownout windows — the profile the escalation is sized against.
  const auto lossy_wire = [] {
    runtime::FaultSpec f;
    f.drop_p = 0.3;
    f.brownout_drop_p = 0.9;
    f.brownout_period_ms = 400.0;
    f.brownout_duty = 0.5;
    return f;
  };

  struct Cell {
    const char* mode;
    size_t threads;
  };
  const std::vector<Cell> cells = {
      {"clean", 1},       {"clean", 2},   {"chaos", 1}, {"chaos", 2},
      {"fixed_timer", 1}, {"adaptive", 1},
  };

  if (auto* j = bench::json()) {
    j->meta("workload", "per-switch mon||rtr, bursty churn on mon");
    j->meta("updates_per_switch", static_cast<double>(kUpdates));
    j->meta("chaos", "2 shard kills + 2 agent blackouts, brownout wire");
    j->meta("quarantine_after", 3.0);
    j->meta("ablation_drop_p", 0.3);
  }

  std::printf("\n=== Chaos recovery: clean vs chaos fleet (%zu switches, "
              "%zu shards) ===\n", kSwitches, kShards);
  std::printf("%-12s %-8s | %-11s %-12s | %-6s %-9s %-6s %-7s | %-7s %-9s | %-6s\n",
              "mode", "threads", "updates/s", "makespan ms", "kills",
              "failovers", "quar", "readmit", "retx", "rejoin p99", "ok");

  // Clean cells have empty recovery histograms; report 0 instead of
  // throwing on an empty percentile set.
  const auto p_or0 = [](const util::Histogram& h, double q) {
    return h.count() == 0 ? 0.0 : h.percentile(q);
  };

  bool all_ok = true;
  const auto check = [&all_ok](bool ok, const char* what) {
    if (!ok) {
      std::printf("FAIL: %s\n", what);
      all_ok = false;
    }
    return ok;
  };

  // (mode, threads==first-seen) fingerprints for the determinism check and
  // the chaos==clean recovery check.
  std::map<std::string, std::tuple<uint64_t, uint64_t, uint64_t>> seen;
  std::map<std::string, runtime::FleetReport> first;

  for (const Cell& cell : cells) {
    runtime::FleetSpec spec = base_spec();
    spec.n_threads = cell.threads;
    const std::string mode = cell.mode;
    if (mode == "chaos") {
      spec.chaos = chaos_schedule();
      spec.knobs.faults = runtime::FaultSpec::brownout();
      spec.knobs.retry.quarantine_after = 3;
    } else if (mode == "fixed_timer" || mode == "adaptive") {
      spec.knobs.faults = lossy_wire();
      spec.knobs.retry.adaptive = mode == "adaptive";
    }

    const runtime::FleetReport report = runtime::ShardedController(spec).run();

    bool deterministic = true;
    const auto prints = std::make_tuple(report.fleet_fingerprint,
                                        report.delta_fingerprint,
                                        report.layout_fingerprint);
    if (auto it = seen.find(mode); it != seen.end()) {
      deterministic = it->second == prints;
    } else {
      seen.emplace(mode, prints);
      first.emplace(mode, report);
    }
    const bool ok = report.runtime.all_converged && report.replay_ok &&
                    report.failover_ok &&
                    report.runtime.readmit_failures == 0 &&
                    report.runtime.rejoin_audit_violations == 0 &&
                    deterministic;
    check(ok, (mode + " cell failed its run-level checks").c_str());

    std::printf("%-12s %-8zu | %-11.0f %-12.1f | %-6zu %-9zu %-6zu %-7zu | "
                "%-7zu %-9.1f | %s%s\n",
                cell.mode, cell.threads, report.updates_per_s(),
                report.makespan_ms, report.shard_kills, report.failovers,
                report.quarantines, report.readmissions,
                report.runtime.retransmits, p_or0(report.rejoin_ms, 99.0),
                ok ? "yes" : "NO",
                deterministic ? "" : " [fingerprint mismatch]");
    std::fflush(stdout);

    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("mode", mode);
      j->field("switches", static_cast<double>(kSwitches));
      j->field("shards", static_cast<double>(kShards));
      j->field("threads", static_cast<double>(cell.threads));
      j->field("rule_ops", static_cast<double>(report.rule_ops));
      j->field("updates_per_s", report.updates_per_s());
      j->field("makespan_ms", report.makespan_ms);
      j->field("compile_vt_ms", report.compile_vt_ms);
      j->field("shard_kills", static_cast<double>(report.shard_kills));
      j->field("failovers", static_cast<double>(report.failovers));
      j->field("failover_epochs", static_cast<double>(report.failover_epochs));
      j->field("quarantines", static_cast<double>(report.quarantines));
      j->field("readmissions", static_cast<double>(report.readmissions));
      j->field("retransmits", static_cast<double>(report.runtime.retransmits));
      j->field("probe_sends", static_cast<double>(report.runtime.probe_sends));
      j->field("blackout_drops",
               static_cast<double>(report.runtime.blackout_drops));
      j->field("failover_p50_ms", p_or0(report.failover_ms, 50.0));
      j->field("rejoin_p50_ms", p_or0(report.rejoin_ms, 50.0));
      j->field("rejoin_p99_ms", p_or0(report.rejoin_ms, 99.0));
      j->field("fleet_fingerprint",
               util::strfmt("%016llx", static_cast<unsigned long long>(
                                           report.fleet_fingerprint)));
      j->field("delta_fingerprint",
               util::strfmt("%016llx", static_cast<unsigned long long>(
                                           report.delta_fingerprint)));
      j->field("layout_fingerprint",
               util::strfmt("%016llx", static_cast<unsigned long long>(
                                           report.layout_fingerprint)));
      j->field("converged", report.runtime.all_converged ? 1.0 : 0.0);
      j->field("deterministic", deterministic ? 1.0 : 0.0);
      // Host-dependent diagnostics; the perf gate ignores these fields.
      j->field("wall_ms", report.wall_ms);
      j->field("steals", static_cast<double>(report.steals));
      j->field("starved_pumps", static_cast<double>(report.starved_pumps));
    }
  }

  const runtime::FleetReport& clean = first.at("clean");
  const runtime::FleetReport& chaos = first.at("chaos");
  check(clean.shard_kills == 0 && clean.quarantines == 0,
        "clean cell saw fault-layer activity");
  check(chaos.shard_kills > 0, "no shard kill fired");
  check(chaos.failovers > 0, "no switch was adopted");
  check(chaos.quarantines > 0, "no session quarantined");
  check(chaos.readmissions == chaos.quarantines,
        "a quarantined switch never rejoined");
  // The recovery guarantee: chaos final layouts and delta chains must be
  // bit-identical to the never-failed run's.
  check(chaos.layout_fingerprint == clean.layout_fingerprint,
        "chaos TCAM layouts diverged from the clean run");
  check(chaos.delta_fingerprint == clean.delta_fingerprint,
        "chaos delta chains diverged from the clean run");

  const runtime::FleetReport& fixed = first.at("fixed_timer");
  const runtime::FleetReport& adaptive = first.at("adaptive");
  check(adaptive.runtime.retransmits < fixed.runtime.retransmits,
        "adaptive backoff did not reduce retransmits under >= 0.3 drop");
  check(adaptive.layout_fingerprint == fixed.layout_fingerprint,
        "retry ablation changed the converged layouts");
  std::printf("\nbackoff ablation: fixed=%zu retransmits, adaptive=%zu "
              "(%.0f%% of fixed)\n",
              fixed.runtime.retransmits, adaptive.runtime.retransmits,
              100.0 * static_cast<double>(adaptive.runtime.retransmits) /
                  static_cast<double>(fixed.runtime.retransmits));
  std::printf("chaos degradation: clean %.0f updates/s -> chaos %.0f "
              "updates/s (active switches only)\n",
              clean.updates_per_s(), chaos.updates_per_s());

  bench::write_json();
  std::printf("%s\n", all_ok ? "chaos recovery: all checks passed"
                             : "chaos recovery: CHECK FAILURES");
  return all_ok ? 0 : 1;
}
