// Runtime scaling: fleet throughput and ack latency of the asynchronous
// control-plane runtime, sweeping switch count (1 -> 64) x in-flight window
// (1 / 4 / 16) under a mild fault mix.
//
// What the sweep shows:
//   * window  — with window=1 every epoch pays a full round trip (send,
//     apply, ack) before the next may leave the controller; window>1
//     pipelines batches behind unacked barriers and hides the channel.
//   * switches — sessions are independent event loops fanned across a
//     thread pool; virtual-time throughput scales with the fleet while the
//     per-switch latency distribution stays flat.
// Every cell self-checks: all switches must converge to the controller
// snapshot or the bench exits non-zero, so protocol regressions fail
// tier-1 via the smoke test.
//
// Flags: --smoke       tiny sweep for ctest
//        --threads N   session worker threads (default: hardware)
//        --json PATH   machine-readable report -> BENCH_runtime.json
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "compiler/policy_spec.h"
#include "flowspace/rule.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/workload.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ruletris;
  using compiler::PolicySpec;
  using flowspace::FlowTable;

  bool smoke = false;
  size_t threads = std::max(1u, std::thread::hardware_concurrency());
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[i + 1]));
    }
  }
  bench::init_json(argc, argv, "runtime_scaling");
  util::set_log_level(util::LogLevel::kOff);

  // One workload, compiled once, shared by every cell: a monitor+router
  // composition churned on the monitor leaf.
  util::Rng rng(2024);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{classbench::generate_monitor(smoke ? 25 : 60, rng)});
  tables.emplace("rtr", FlowTable{classbench::generate_router(smoke ? 20 : 50, rng)});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  runtime::ChurnSpec churn;
  churn.leaf = "mon";
  churn.updates = smoke ? 40 : 200;
  churn.seed = 99;

  util::Stopwatch compile_watch;
  const runtime::CompiledWorkload workload =
      runtime::compile_churn_workload(spec, tables, churn);
  std::printf("\n=== Runtime scaling: %zu epochs, compiled in %.1f ms ===\n",
              workload.epochs.size(), compile_watch.elapsed_ms());

  // Mild fault mix: enough loss/reordering that the retry and resync
  // machinery is exercised in every cell, not so much that retransmission
  // noise swamps the window effect.
  runtime::FaultSpec faults;
  faults.drop_p = 0.02;
  faults.duplicate_p = 0.02;
  faults.delay_p = 0.10;
  faults.delay_ms = 2.0;
  faults.restart_every_ms = 2000.0;

  if (auto* j = bench::json()) {
    j->meta("workload", "monitor+router, churn on monitor");
    j->meta("epochs", static_cast<double>(workload.epochs.size()));
    j->meta("threads", static_cast<double>(threads));
    j->meta("drop_p", faults.drop_p);
    j->meta("delay_p", faults.delay_p);
  }

  const std::vector<size_t> switch_counts =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16, 64};
  const std::vector<size_t> windows = {1, 4, 16};

  std::printf("%-9s %-7s | %-12s %-13s | %-10s %-10s | %-8s %-8s %-9s\n",
              "switches", "window", "makespan ms", "updates/s", "ack p50",
              "ack p99", "retrans", "resyncs", "converged");

  bool all_ok = true;
  // makespan per (switches, window) for the window>1 sanity check.
  std::map<std::pair<size_t, size_t>, double> makespans;

  for (const size_t n_switches : switch_counts) {
    for (const size_t window : windows) {
      runtime::RuntimeConfig cfg;
      cfg.n_switches = n_switches;
      cfg.knobs.window = window;
      cfg.n_threads = threads;
      cfg.knobs.faults = faults;
      cfg.fault_seed = 7;
      cfg.tcam_capacity = workload.suggested_capacity();

      runtime::Controller controller(cfg);
      const runtime::RuntimeReport report =
          controller.run(workload.epochs, workload.final_rules);
      makespans[{n_switches, window}] = report.makespan_ms;
      all_ok = all_ok && report.all_converged;

      std::printf("%-9zu %-7zu | %-12.2f %-13.0f | %-10.3f %-10.3f | "
                  "%-8zu %-8zu %-9s\n",
                  n_switches, window, report.makespan_ms,
                  report.updates_per_s(), report.ack_ms.median(),
                  report.ack_ms.p99(), report.retransmits, report.resyncs,
                  report.all_converged ? "yes" : "NO");

      if (auto* j = bench::json()) {
        j->begin_row();
        j->field("switches", static_cast<double>(n_switches));
        j->field("window", static_cast<double>(window));
        j->field("makespan_ms", report.makespan_ms);
        j->field("updates_per_s", report.updates_per_s());
        j->field("ack_p50_ms", report.ack_ms.median());
        j->field("ack_p99_ms", report.ack_ms.p99());
        j->field("channel_p50_ms", report.channel_ms.median());
        j->field("tcam_p50_ms", report.tcam_ms.median());
        j->field("entry_writes", static_cast<double>(report.entry_writes));
        j->field("moves", static_cast<double>(report.moves));
        j->field("entry_writes_per_epoch", report.entry_writes_per_epoch());
        j->field("frames", static_cast<double>(report.data_frames_sent));
        j->field("retransmits", static_cast<double>(report.retransmits));
        j->field("resyncs", static_cast<double>(report.resyncs));
        j->field("restarts", static_cast<double>(report.restarts));
        j->field("converged", report.all_converged ? 1.0 : 0.0);
      }
    }
  }
  bench::write_json();

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: some sessions did not converge\n");
    return 1;
  }
  // The point of the window: at the largest fleet, pipelining must beat
  // stop-and-wait on virtual makespan.
  const size_t largest = switch_counts.back();
  if (makespans[{largest, 4}] >= makespans[{largest, 1}]) {
    std::fprintf(stderr,
                 "FAIL: window=4 (%.2f ms) not faster than window=1 (%.2f ms) "
                 "at %zu switches\n",
                 makespans[{largest, 4}], makespans[{largest, 1}], largest);
    return 1;
  }
  std::printf("\nOK: all sessions converged; window=4 beats window=1 at %zu "
              "switches (%.2f vs %.2f ms)\n",
              largest, makespans[{largest, 4}], makespans[{largest, 1}]);
  return 0;
}
