// Microbenchmarks (google-benchmark) for the primitive operations every
// figure rests on: flow-space algebra, incremental minimum-DAG maintenance,
// Algorithm-1 scheduling, and the wire codec.
#include <benchmark/benchmark.h>

#include "classbench/generator.h"
#include "dag/builder.h"
#include "dag/min_dag_maintainer.h"
#include "proto/codec.h"
#include "switchsim/adapters.h"
#include "tcam/dag_scheduler.h"
#include "util/rng.h"

namespace {

using namespace ruletris;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;

std::vector<Rule> router_rules(size_t n) {
  util::Rng rng(42);
  return classbench::generate_router(n, rng);
}

void BM_TernaryOverlap(benchmark::State& state) {
  const auto rules = router_rules(256);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto& a = rules[rng.next_below(rules.size())];
    const auto& b = rules[rng.next_below(rules.size())];
    benchmark::DoNotOptimize(a.match.overlaps(b.match));
  }
}
BENCHMARK(BM_TernaryOverlap);

void BM_TernaryIntersect(benchmark::State& state) {
  const auto rules = router_rules(256);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto& a = rules[rng.next_below(rules.size())];
    const auto& b = rules[rng.next_below(rules.size())];
    benchmark::DoNotOptimize(a.match.intersect(b.match));
  }
}
BENCHMARK(BM_TernaryIntersect);

void BM_TernarySubtract(benchmark::State& state) {
  const auto rules = router_rules(256);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto& a = rules[rng.next_below(rules.size())];
    const auto& b = rules[rng.next_below(rules.size())];
    benchmark::DoNotOptimize(a.match.subtract(b.match));
  }
}
BENCHMARK(BM_TernarySubtract);

void BM_MinDagBulkLoad(benchmark::State& state) {
  const auto rules = router_rules(static_cast<size_t>(state.range(0)));
  const FlowTable table{rules};
  std::vector<std::pair<flowspace::RuleId, TernaryMatch>> ordered;
  for (const Rule& r : table.rules()) ordered.emplace_back(r.id, r.match);
  for (auto _ : state) {
    dag::MinDagMaintainer dag([](flowspace::RuleId, flowspace::RuleId) { return true; });
    dag.bulk_load(ordered);
    benchmark::DoNotOptimize(dag.graph().edge_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinDagBulkLoad)->Range(64, 2048)->Complexity();

void BM_MinDagIncrementalInsert(benchmark::State& state) {
  const auto rules = router_rules(static_cast<size_t>(state.range(0)));
  const FlowTable table{rules};
  std::vector<std::pair<flowspace::RuleId, TernaryMatch>> ordered;
  for (const Rule& r : table.rules()) ordered.emplace_back(r.id, r.match);
  dag::MinDagMaintainer dag([](flowspace::RuleId, flowspace::RuleId) { return true; });
  dag.bulk_load(ordered);
  util::Rng rng(7);
  for (auto _ : state) {
    // Insert a fresh nested prefix, then remove it again.
    TernaryMatch m;
    m.set_prefix(flowspace::FieldId::kDstIp, rng.next_u32(), 24);
    const auto id = flowspace::next_rule_id();
    dag.insert(id, m);
    dag.remove(id);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinDagIncrementalInsert)->Range(64, 2048)->Complexity();

void BM_SchedulerInsert(benchmark::State& state) {
  const auto rules = router_rules(230);
  const FlowTable table{rules};
  const auto graph = dag::build_min_dag(table);
  tcam::Tcam tcam(256);
  tcam::DagScheduler scheduler(tcam);
  scheduler.graph() = graph;
  for (flowspace::RuleId id : graph.topo_order_high_to_low()) {
    scheduler.insert(table.rule(id));
  }
  util::Rng rng(3);
  for (auto _ : state) {
    const Rule& victim = table.rules()[rng.next_below(table.size())];
    if (!tcam.contains(victim.id)) continue;
    scheduler.remove(victim.id);
    // Re-insert through Algorithm 1.
    scheduler.graph() = graph;
    scheduler.insert(victim);
  }
}
BENCHMARK(BM_SchedulerInsert);

void BM_CodecRoundTrip(benchmark::State& state) {
  const auto rules = router_rules(64);
  compiler::PrioritizedUpdate update;
  for (const Rule& r : rules) update.push_back(compiler::PrioritizedOp::add(r));
  const auto batch = switchsim::to_messages(update);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::decode_batch(proto::encode_batch(batch)));
  }
}
BENCHMARK(BM_CodecRoundTrip);

}  // namespace

BENCHMARK_MAIN();
