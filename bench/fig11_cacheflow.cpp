// Figure 11: rule update overhead of single rule swap with CacheFlow.
//
// A 1000-rule L3 forwarding database backs a 256-entry TCAM cache. For each
// first-level load factor in {0.80 .. 1.00}, a random swap-in/swap-out
// stream is replayed against both back-ends: the RuleTris DAG firmware and
// the priority-based firmware. Prints TCAM update time (Fig. 11a) and
// firmware time (Fig. 11b) per swap.
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "dag/builder.h"
#include "tcam/cacheflow.h"
#include "util/logging.h"
#include "util/timer.h"

int main() {
  using namespace ruletris;
  using tcam::CacheFlowManager;

  util::set_log_level(util::LogLevel::kOff);
  std::printf("\n=== Fig. 11: CacheFlow single rule swap (1000-rule FIB, 256-entry TCAM) ===\n");
  std::printf("%-10s %-9s | per-swap medians [p10, p90]\n", "config", "backend");
  const size_t updates = bench::updates_per_run(1000);
  constexpr size_t kCapacity = 256;

  // One FIB and one DAG shared by every configuration.
  util::Rng gen(0xcafe);
  const flowspace::FlowTable fib{classbench::generate_router(1000, gen)};
  const auto fib_dag = dag::build_min_dag(fib);
  std::vector<flowspace::RuleId> all_ids;
  for (const auto& r : fib.rules()) all_ids.push_back(r.id);

  for (const double load : {0.80, 0.85, 0.90, 0.95, 1.00}) {
    for (const auto mode : {CacheFlowManager::Mode::kDagFirmware,
                            CacheFlowManager::Mode::kPriorityFirmware}) {
      CacheFlowManager mgr(fib.rules(), fib_dag, mode, kCapacity);
      util::Rng rng(0xbeef);  // identical stream across modes and loads

      // Fill the first level (cover rules included) to the target load.
      const size_t target = static_cast<size_t>(load * kCapacity);
      std::vector<flowspace::RuleId> cached;
      size_t stuck = 0;
      while (mgr.tcam().occupied() < target && stuck < 5000) {
        const auto pick = all_ids[rng.next_below(all_ids.size())];
        if (mgr.is_cached(pick) || !mgr.install(pick)) {
          ++stuck;
          continue;
        }
        cached.push_back(pick);
      }

      bench::MetricSet metrics;
      size_t skipped = 0;
      for (size_t u = 0; u < updates; ++u) {
        const size_t out_idx = rng.next_below(cached.size());
        flowspace::RuleId in = all_ids[rng.next_below(all_ids.size())];
        int guard = 0;
        while ((mgr.is_cached(in) || in == cached[out_idx]) && guard++ < 500) {
          in = all_ids[rng.next_below(all_ids.size())];
        }
        if (mgr.is_cached(in) || in == cached[out_idx]) continue;

        const auto writes_before = mgr.tcam().stats().entry_writes;
        util::Stopwatch watch;
        const bool ok = mgr.swap(cached[out_idx], in);
        double firmware_ms = watch.elapsed_ms();
        if (!ok) {
          // Full (covers included): restore the evicted rule and count the
          // skip; the paper's stream at load 1.0 has the same corner.
          mgr.install(cached[out_idx]);
          ++skipped;
          continue;
        }
        cached[out_idx] = in;
        const size_t writes = mgr.tcam().stats().entry_writes - writes_before;
        metrics.add(0.0, firmware_ms, static_cast<double>(writes) * tcam::kEntryWriteMs);
      }

      const char* name = mode == CacheFlowManager::Mode::kDagFirmware
                             ? "RuleTris"
                             : "Priority";
      std::printf("load %.2f  %-9s | tcam ms %-26s firmware ms %-26s",
                  load, name, metrics.tcam_ms.summary("").c_str(),
                  metrics.firmware_ms.summary("").c_str());
      if (skipped != 0) std::printf("  (%zu swaps skipped: cache full)", skipped);
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
