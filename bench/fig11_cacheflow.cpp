// Figure 11: rule update overhead of single rule swap with CacheFlow.
//
// A 1000-rule L3 forwarding database backs a 256-entry TCAM cache. The swap
// stream is no longer synthetic: a traffic engine drives Zipf-skewed flows
// with churn against a scratch cache, and the FDRC planner's swap decisions
// (measured hit density vs victim density) are recorded as the workload.
// That identical flow-driven trace is then replayed, per first-level load
// factor in {0.80 .. 1.00}, against both back-ends — the RuleTris DAG
// firmware and the priority-based firmware — timing each swap. Prints TCAM
// update time (Fig. 11a) and firmware time (Fig. 11b) per swap; `--json
// PATH` mirrors the rows machine-readably.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "dag/builder.h"
#include "switchsim/traffic_engine.h"
#include "tcam/cacheflow.h"
#include "util/logging.h"
#include "util/strfmt.h"
#include "util/timer.h"

namespace {

using namespace ruletris;
using tcam::CacheFlowManager;

struct SwapEvent {
  flowspace::RuleId out;
  flowspace::RuleId in;
};

/// Records a flow-driven swap trace at the given warm target: a scratch
/// DAG-mode cache takes real traffic epoch by epoch, and every swap the FDRC
/// planner executes is logged. The scratch manager applies each swap so the
/// next epoch plans against the evolved cache, exactly like a live switch.
std::vector<SwapEvent> record_trace(const flowspace::FlowTable& fib,
                                    const dag::DependencyGraph& graph,
                                    size_t capacity, size_t warm_target,
                                    size_t want_swaps) {
  CacheFlowManager scratch(fib.rules(), graph,
                           CacheFlowManager::Mode::kDagFirmware, capacity);
  switchsim::TrafficConfig cfg;
  cfg.flows = 200000;
  cfg.zipf_alpha = 1.1;
  cfg.churn_rate = 0.02;  // flow turnover keeps the hot set moving -> swaps
  cfg.packets_per_epoch = 20000;
  cfg.seed = 0xf1611;
  switchsim::TrafficEngine engine(scratch, fib.rules(), cfg);

  scratch.warm(CacheFlowManager::AdmissionPolicy::kStaticDag, warm_target);

  std::vector<SwapEvent> trace;
  for (uint64_t e = 0; trace.size() < want_swaps && e < 200; ++e) {
    engine.run_lookup_epoch(e);
    for (const auto& s : scratch.plan_swaps(want_swaps - trace.size())) {
      if (!scratch.swap(s.out, s.in)) {
        scratch.install(s.out);
        continue;
      }
      trace.push_back(SwapEvent{s.out, s.in});
    }
    scratch.age_hits();
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kOff);
  bench::init_json(argc, argv, "fig11_cacheflow");

  std::printf("\n=== Fig. 11: CacheFlow single rule swap "
              "(1000-rule FIB, 256-entry TCAM, flow-driven swap trace) ===\n");
  std::printf("%-10s %-9s | per-swap medians [p10, p90]\n", "config", "backend");
  const size_t updates = bench::updates_per_run(1000);
  constexpr size_t kCapacity = 256;

  // One FIB and one DAG shared by every configuration.
  util::Rng gen(0xcafe);
  const flowspace::FlowTable fib{classbench::generate_router(1000, gen)};
  const auto fib_dag = dag::build_min_dag(fib);

  if (auto* j = bench::json()) {
    j->meta("fib_rules", static_cast<double>(fib.size()));
    j->meta("tcam_capacity", static_cast<double>(kCapacity));
    j->meta("updates", static_cast<double>(updates));
    j->meta("workload", "traffic-engine fdrc swap trace");
  }

  for (const double load : {0.80, 0.85, 0.90, 0.95, 1.00}) {
    const size_t target = static_cast<size_t>(load * kCapacity);
    const auto trace = record_trace(fib, fib_dag, kCapacity, target, updates);

    for (const auto mode : {CacheFlowManager::Mode::kDagFirmware,
                            CacheFlowManager::Mode::kPriorityFirmware}) {
      CacheFlowManager mgr(fib.rules(), fib_dag, mode, kCapacity);
      // Reproduce the recorder's starting layout, then replay its swaps.
      mgr.warm(CacheFlowManager::AdmissionPolicy::kStaticDag, target);

      bench::MetricSet metrics;
      size_t skipped = 0;
      for (const SwapEvent& ev : trace) {
        const auto writes_before = mgr.tcam().stats().entry_writes;
        util::Stopwatch watch;
        const bool ok = mgr.swap(ev.out, ev.in);
        const double firmware_ms = watch.elapsed_ms();
        if (!ok) {
          // Full (covers included): restore the evicted rule and count the
          // skip; the paper's stream at load 1.0 has the same corner.
          mgr.install(ev.out);
          ++skipped;
          continue;
        }
        const size_t writes = mgr.tcam().stats().entry_writes - writes_before;
        metrics.add(0.0, firmware_ms,
                    static_cast<double>(writes) * tcam::kEntryWriteMs);
      }

      const char* name = mode == CacheFlowManager::Mode::kDagFirmware
                             ? "RuleTris"
                             : "Priority";
      std::printf("load %.2f  %-9s | tcam ms %-26s firmware ms %-26s",
                  load, name, metrics.tcam_ms.summary("").c_str(),
                  metrics.firmware_ms.summary("").c_str());
      if (skipped != 0) std::printf("  (%zu swaps skipped: cache full)", skipped);
      std::printf("\n");
      std::fflush(stdout);

      if (auto* j = bench::json()) {
        j->begin_row();
        j->field("load", load);
        j->field("backend", name);
        j->field("swaps", static_cast<double>(trace.size() - skipped));
        j->field("skipped", static_cast<double>(skipped));
        j->field("tcam_med_ms", metrics.tcam_ms.median());
        j->field("tcam_p10_ms", metrics.tcam_ms.p10());
        j->field("tcam_p90_ms", metrics.tcam_ms.p90());
        j->field("firmware_med_ms", metrics.firmware_ms.median());
        j->field("firmware_p10_ms", metrics.firmware_ms.p10());
        j->field("firmware_p90_ms", metrics.firmware_ms.p90());
      }
    }
  }
  bench::write_json();
  return 0;
}
