// Figure 9: rule update overhead of "L3-L4 monitoring + L3 router".
//
// Monitoring table (firewall profile, 100 rules) composed in parallel with
// an L3 router (IP-chain profile, 78 entries for the hardware point and
// 250-4000 for the emulation sweep). Each update deletes one monitoring rule
// and inserts a fresh one (Sec. VII-B). Prints compilation time (Fig. 9a),
// firmware time (Fig. 9b) and TCAM update time (Fig. 9c) for Baseline,
// CoVisor and RuleTris.
#include "bench/scenario.h"

int main(int argc, char** argv) {
  using namespace ruletris;
  bench::init_json(argc, argv, "fig9_parallel");
  bench::CompositionScenario scenario;
  scenario.title = "Fig. 9: L3-L4 monitoring + L3 router (parallel)";
  scenario.op = 0;  // parallel
  scenario.left_size = 100;
  scenario.hw_right_size = 78;
  scenario.gen_left = [](size_t n, const std::vector<flowspace::Rule>&, util::Rng& rng) {
    return classbench::generate_monitor(n, rng);
  };
  scenario.gen_replacement = [](const std::vector<flowspace::Rule>&, util::Rng& rng) {
    return classbench::random_monitor_rule(100, rng);
  };
  scenario.protect_last_left = true;  // never churn the monitor's default
  bench::run_composition_scenario(scenario);
  bench::write_json();
  return 0;
}
