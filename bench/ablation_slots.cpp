// Ablation A1: free-slot placement policy in the DAG scheduler.
//
// DESIGN.md calls out one back-end design choice the paper leaves implicit:
// where an insert lands when several free slots satisfy its dependency
// range. Balanced placement (nearest the range midpoint) keeps slack spread
// out so later chains stay short; first-free placement (naive firmware)
// compacts rules and forces longer chains. This bench replays the same
// update stream under both policies.
#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "dag/builder.h"
#include "tcam/dag_scheduler.h"
#include "util/logging.h"
#include "util/timer.h"

int main() {
  using namespace ruletris;
  using tcam::DagScheduler;

  util::set_log_level(util::LogLevel::kOff);
  std::printf("\n=== Ablation A1: DAG scheduler free-slot placement ===\n");
  const size_t updates = bench::updates_per_run(500);

  util::Rng gen(0x51a7);
  const flowspace::FlowTable fib{classbench::generate_router(1000, gen)};
  const auto fib_dag = dag::build_min_dag(fib);
  std::vector<flowspace::RuleId> all_ids;
  for (const auto& r : fib.rules()) all_ids.push_back(r.id);

  for (const double load : {0.95, 0.99}) {
    for (const auto placement :
         {DagScheduler::Placement::kBalanced, DagScheduler::Placement::kFirstFree}) {
      constexpr size_t kCapacity = 256;
      tcam::Tcam tcam(kCapacity);
      DagScheduler scheduler(tcam, placement);
      scheduler.graph() = fib_dag;
      util::Rng rng(0x1dea);

      // Install a random subset to the target load.
      std::vector<flowspace::RuleId> cached;
      while (tcam.occupied() < static_cast<size_t>(load * kCapacity)) {
        const auto pick = all_ids[rng.next_below(all_ids.size())];
        if (tcam.contains(pick)) continue;
        if (!scheduler.insert(fib.rule(pick))) break;
        cached.push_back(pick);
      }

      // Batch churn: evict three rules, then insert three — the placement of
      // the early inserts shapes how long the later chains get.
      util::Samples moves, tcam_ms;
      for (size_t u = 0; u < updates; ++u) {
        std::vector<size_t> outs;
        while (outs.size() < 3) {
          const size_t idx = rng.next_below(cached.size());
          bool dup = false;
          for (size_t o : outs) dup = dup || o == idx;
          if (!dup) outs.push_back(idx);
        }
        std::vector<flowspace::RuleId> ins;
        while (ins.size() < 3) {
          const auto in = all_ids[rng.next_below(all_ids.size())];
          if (tcam.contains(in)) continue;
          bool dup = false;
          for (auto i : ins) dup = dup || i == in;
          if (!dup) ins.push_back(in);
        }
        for (size_t o : outs) scheduler.remove(cached[o]);
        const auto before = tcam.stats();
        bool ok = true;
        for (auto in : ins) ok = ok && scheduler.insert(fib.rule(in));
        if (!ok) {
          for (size_t k = 0; k < 3; ++k) scheduler.insert(fib.rule(cached[outs[k]]));
          continue;
        }
        for (size_t k = 0; k < 3; ++k) cached[outs[k]] = ins[k];
        moves.add(static_cast<double>(tcam.stats().moves - before.moves));
        tcam_ms.add(static_cast<double>(tcam.stats().entry_writes - before.entry_writes) *
                    tcam::kEntryWriteMs);
      }
      std::printf("%-8.2f %-10s | moves/batch mean %6.3f p90 %6.1f | tcam ms/batch mean %7.3f total %9.1f\n",
                  load,
                  placement == DagScheduler::Placement::kBalanced ? "balanced"
                                                                  : "first-free",
                  moves.mean(), moves.p90(), tcam_ms.mean(), tcam_ms.sum());
      std::fflush(stdout);
    }
  }
  return 0;
}
