// Fleet throughput harness — the cbench analogue for the sharded pipeline.
//
// Sweeps switches × compile shards × dispatch threads over the
// ShardedController: every switch runs its own bursty churn stream, every
// shard compiles its switches' epochs incrementally under a modelled
// per-epoch cost, and sessions consume sealed epochs through lock-free
// publication rings while later epochs are still compiling. Reported
// throughput is *virtual-time* sustained aggregate rule-updates/s — every
// compiled rule-level operation over the slowest switch's commit time — so
// the number measures the modelled system (0.6 ms TCAM writes, channel
// costs, windowed sessions), not the host's core count, and is bit-exact
// reproducible.
//
// Self-checks (exit non-zero on violation):
//   * determinism — cells sharing (switches, shards) but differing in
//     threads must produce identical fleet and delta fingerprints;
//   * RTDZ replay — every audited switch's delta chain must reproduce its
//     final compile image;
//   * full mode only: aggregate updates/s must scale monotonically in the
//     switch count and the top cell must sustain >= 1e6 updates/s.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/sharded_controller.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace ruletris;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::init_json(argc, argv, "fleet_throughput");
  util::set_log_level(util::LogLevel::kOff);

  struct Cell {
    size_t switches, shards, threads;
  };
  // The two smallest cells are shared between smoke and full mode so the
  // perf gate (tools/bench_gate.py) can diff a smoke run against the
  // committed full baseline row-by-row.
  std::vector<Cell> cells = {{8, 2, 1}, {8, 2, 2}};
  if (!smoke) {
    cells.insert(cells.end(), {{64, 8, 1},
                               {64, 8, 2},
                               {256, 32, 1},
                               {256, 32, 2},
                               {1280, 64, 1},
                               {1280, 64, 2}});
  }

  // One workload shape for every cell: per-switch monitor ∥ router policies
  // under bursty locality-heavy churn (geometric bursts, correlated
  // teardown). Fixed — the sweep varies only the fleet geometry, so rows
  // are comparable across modes and commits.
  constexpr size_t kUpdates = 24;

  if (auto* j = bench::json()) {
    j->meta("workload", "per-switch mon||rtr, bursty churn on mon");
    j->meta("updates_per_switch", static_cast<double>(kUpdates));
    j->meta("burst_continue_p", 0.75);
    j->meta("burst_delete_p", 0.25);
    j->meta("window", 8.0);
    j->meta("target_updates_per_s", 1e6);
  }

  std::printf("\n=== Fleet throughput: sharded compile + %zu-update bursty churn"
              " per switch ===\n", kUpdates);
  std::printf("%-9s %-7s %-8s | %-13s %-12s %-11s | %-9s %-9s | %-7s %-8s %-6s\n",
              "switches", "shards", "threads", "updates/s", "makespan ms",
              "compile ms", "ack p50", "ack p99", "steals", "starved", "ok");

  bool all_ok = true;
  // (switches, shards) -> fingerprints of the first run; later thread
  // counts must reproduce them bit-for-bit.
  std::map<std::pair<size_t, size_t>, std::pair<uint64_t, uint64_t>> seen;
  // threads==1 throughput per switch count, for the monotonicity check.
  std::map<size_t, double> curve;

  for (const Cell& cell : cells) {
    runtime::FleetSpec spec;
    spec.n_switches = cell.switches;
    spec.n_shards = cell.shards;
    spec.n_threads = cell.threads;
    spec.updates_per_switch = kUpdates;
    spec.seed = 42;
    spec.fault_seed = 7;
    spec.knobs.window = 8;

    runtime::ShardedController controller(spec);
    const runtime::FleetReport report = controller.run();

    const auto key = std::make_pair(cell.switches, cell.shards);
    bool deterministic = true;
    const auto prints =
        std::make_pair(report.fleet_fingerprint, report.delta_fingerprint);
    if (auto it = seen.find(key); it != seen.end()) {
      deterministic = it->second == prints;
    } else {
      seen.emplace(key, prints);
    }
    const bool ok = report.runtime.all_converged && report.replay_ok &&
                    deterministic;
    all_ok = all_ok && ok;

    std::printf("%-9zu %-7zu %-8zu | %-13.0f %-12.1f %-11.1f | %-9.2f %-9.2f | "
                "%-7zu %-8zu %s%s%s\n",
                cell.switches, cell.shards, cell.threads,
                report.updates_per_s(), report.makespan_ms,
                report.compile_vt_ms, report.runtime.ack_ms.median(),
                report.runtime.ack_ms.p99(), report.steals,
                report.starved_pumps, ok ? "yes" : "NO",
                deterministic ? "" : " [fingerprint mismatch]",
                report.replay_ok ? "" : " [replay failed]");
    std::fflush(stdout);

    if (cell.threads == 1) curve[cell.switches] = report.updates_per_s();

    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("switches", static_cast<double>(cell.switches));
      j->field("shards", static_cast<double>(cell.shards));
      j->field("threads", static_cast<double>(cell.threads));
      j->field("rule_ops", static_cast<double>(report.rule_ops));
      j->field("updates_per_s", report.updates_per_s());
      j->field("makespan_ms", report.makespan_ms);
      j->field("compile_vt_ms", report.compile_vt_ms);
      j->field("ack_p50_ms", report.runtime.ack_ms.median());
      j->field("ack_p99_ms", report.runtime.ack_ms.p99());
      j->field("entry_writes", static_cast<double>(report.runtime.entry_writes));
      j->field("shard_steps", static_cast<double>(report.shard_steps));
      j->field("replay_audits", static_cast<double>(report.replay_audits));
      j->field("fleet_fingerprint",
               util::strfmt("%016llx", static_cast<unsigned long long>(
                                           report.fleet_fingerprint)));
      j->field("delta_fingerprint",
               util::strfmt("%016llx", static_cast<unsigned long long>(
                                           report.delta_fingerprint)));
      j->field("converged", report.runtime.all_converged ? 1.0 : 0.0);
      j->field("deterministic", deterministic ? 1.0 : 0.0);
      // Host-dependent diagnostics; the perf gate ignores these fields.
      j->field("wall_ms", report.wall_ms);
      j->field("steals", static_cast<double>(report.steals));
      j->field("starved_pumps", static_cast<double>(report.starved_pumps));
    }
  }

  if (!smoke) {
    double prev = 0.0;
    for (const auto& [switches, ups] : curve) {
      if (ups <= prev) {
        std::printf("FAIL: updates/s not monotone in switches (%zu switches: "
                    "%.0f <= %.0f)\n", switches, ups, prev);
        all_ok = false;
      }
      prev = ups;
    }
    const double top = curve.empty() ? 0.0 : curve.rbegin()->second;
    std::printf("\ntop sustained aggregate: %.3g updates/s (target 1e6)\n", top);
    if (top < 1e6) {
      std::printf("FAIL: top cell below 1e6 updates/s\n");
      all_ok = false;
    }
  }

  bench::write_json();
  std::printf("%s\n", all_ok ? "fleet throughput: all checks passed"
                             : "fleet throughput: CHECK FAILURES");
  return all_ok ? 0 : 1;
}
