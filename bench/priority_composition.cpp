// Supplementary scenario: priority composition "firewall $ router".
//
// The paper evaluates parallel (Fig. 9) and sequential (Fig. 10)
// composition; the priority operator takes the same three-compiler pipeline
// through the mega-dependency resolution path of Sec. IV-B3. The firewall
// overrides the router for the traffic it names; updates churn the firewall.
#include "bench/scenario.h"

int main() {
  using namespace ruletris;
  bench::CompositionScenario scenario;
  scenario.title = "Supplementary: L3-L4 firewall $ L3 router (priority)";
  scenario.op = 2;  // priority
  scenario.left_size = 100;
  scenario.hw_right_size = 128;
  scenario.gen_left = [](size_t n, const std::vector<flowspace::Rule>&, util::Rng& rng) {
    return classbench::generate_firewall(n, rng);
  };
  scenario.gen_replacement = [](const std::vector<flowspace::Rule>&, util::Rng& rng) {
    flowspace::Rule r = classbench::random_monitor_rule(100, rng);
    // Firewall semantics for the replacement: accept or drop.
    r.actions = rng.next_bool(0.4)
                    ? flowspace::ActionList{flowspace::Action::drop()}
                    : flowspace::ActionList{flowspace::Action::forward(1)};
    return r;
  };
  scenario.protect_last_left = true;  // keep the default-deny backstop
  bench::run_composition_scenario(scenario);
  return 0;
}
