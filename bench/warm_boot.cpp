// Warm-boot bench -> BENCH_warmboot.json.
//
// Measures the frozen-artifact restart path (src/frozen, runtime/warm_boot)
// against the cold boot it replaces, in two sections, each with built-in
// self-checks (non-zero exit on violation; --smoke is wired into ctest):
//
//   boot — for each policy size, cold boot = full composition compile
//     (RuleTrisCompiler construction) + DAG-scheduled install of the visible
//     table, then freeze() the compiled state + TCAM layout and warm boot a
//     fresh scheduler from the blob (FrozenPolicy ctor + restore). Checks:
//     thaw ≡ recompile CompileSnapshot equality (the frozen image, thawed
//     back, must equal a from-scratch compile of the same member tables),
//     slot-identical TCAM layouts between the cold and warm schedulers,
//     layout_valid() on the restored scheduler, and — full mode, largest
//     size — warm boot >= 100x faster than the cold compile.
//
//   delta — an epoch churn stream observed by EpochFreezer; every patch
//     frame must decode and re-encode bit-identically (codec batch and
//     inner delta blob alike), and a ThawedController replaying the frames
//     must land on exactly the live compiler's final CompileSnapshot.
//
// Flags: --threads N   compile worker count (default 4)
//        --json PATH   machine-readable report (see bench_util.h)
//        --smoke       tiny sizes + correctness checks only
#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "compiler/composed_node.h"
#include "compiler/ruletris_compiler.h"
#include "frozen/delta.h"
#include "frozen/frozen.h"
#include "proto/codec.h"
#include "runtime/warm_boot.h"
#include "tcam/dag_scheduler.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ruletris;
using compiler::PolicySpec;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using tcam::BackendUpdate;
using tcam::DagScheduler;
using tcam::Tcam;

namespace {

struct Args {
  bool smoke = false;
  size_t threads = 4;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) a.smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      a.threads = static_cast<size_t>(std::atol(argv[++i]));
    }
  }
  if (a.threads == 0) a.threads = 1;
  return a;
}

int fail(const char* what) {
  std::fprintf(stderr, "SELF-CHECK FAILED: %s\n", what);
  return 1;
}

std::map<std::string, FlowTable> tables_for(const std::vector<Rule>& left,
                                            const std::vector<Rule>& right) {
  std::map<std::string, FlowTable> t;
  t.emplace("left", FlowTable{left});
  t.emplace("right", FlowTable{right});
  return t;
}

/// Installs the root's visible table into a fresh scheduler the way a cold
/// controller would: one bulk BackendUpdate carrying rules + the minimum DAG.
bool cold_install(const compiler::ComposedNode& node, DagScheduler& sched) {
  BackendUpdate initial;
  initial.added = node.visible_rules_in_order();
  for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
  initial.dag.added_edges = node.visible_graph().edges();
  return sched.apply(initial);
}

/// True when both TCAMs hold the same rule (id, match, actions, priority)
/// at every address.
bool slots_identical(const Tcam& a, const Tcam& b) {
  if (a.capacity() != b.capacity()) return false;
  for (size_t addr = 0; addr < a.capacity(); ++addr) {
    const auto ia = a.at(addr);
    const auto ib = b.at(addr);
    if (ia != ib) return false;
    if (!ia) continue;
    const Rule& ra = a.rule(*ia);
    const Rule& rb = b.rule(*ib);
    if (ra.match != rb.match || ra.actions != rb.actions ||
        ra.priority != rb.priority) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  util::set_log_level(util::LogLevel::kOff);
  bench::init_json(argc, argv, "warm_boot");

  // Cold boot gets the production compile path: the parallel strategy the
  // sim configures at startup (see tools/ruletris_sim).
  {
    compiler::CompileOptions opts;
    opts.n_threads = args.threads;
    compiler::set_default_compile_options(opts);
  }

  if (auto* j = bench::json()) {
    j->meta("workload", "monitor(n) + router(128), Fig. 9 shape");
    j->meta("threads", static_cast<double>(args.threads));
    j->meta("mode", args.smoke ? "smoke" : "full");
  }

  // --- boot: cold compile+install vs freeze/thaw --------------------------
  std::printf("=== warm boot: frozen artifact vs cold compile ===\n");
  std::printf("%-8s %-8s | %-12s %-12s | %-9s %-10s | %-10s | %-9s\n", "left",
              "visible", "compile ms", "install ms", "freeze ms", "blob KiB",
              "warm ms", "speedup");

  const std::vector<size_t> sizes =
      args.smoke ? std::vector<size_t>{500}
                 : std::vector<size_t>{2000, 5000, 10000, 20000};

  for (const size_t n : sizes) {
    util::Rng rng(0xb007 + n);
    const std::vector<Rule> right_rules = classbench::generate_router(128, rng);
    const std::vector<Rule> left_rules = classbench::generate_monitor(n, rng);
    const PolicySpec spec =
        PolicySpec::parallel(PolicySpec::leaf("left"), PolicySpec::leaf("right"));

    util::Stopwatch compile_watch;
    compiler::RuleTrisCompiler frontend(spec, tables_for(left_rules, right_rules));
    const double cold_compile_ms = compile_watch.elapsed_ms();
    const auto& node = dynamic_cast<const compiler::ComposedNode&>(frontend.root());

    const size_t visible = node.visible_size();
    const size_t capacity = visible + visible / 8 + 128;
    Tcam cold_tcam(capacity);
    DagScheduler cold_sched(cold_tcam);
    util::Stopwatch install_watch;
    const bool installed = cold_install(node, cold_sched);
    const double cold_install_ms = install_watch.elapsed_ms();
    if (!installed) return fail("cold install failed (table full?)");

    util::Stopwatch freeze_watch;
    frozen::PolicyImage image = frozen::capture_policy(frontend, /*epoch=*/1);
    frozen::capture_layout(image.tables[0], cold_tcam);
    const frozen::Bytes blob = frozen::freeze(image);
    const double freeze_ms = freeze_watch.elapsed_ms();

    // Warm boot: validate the blob and restore a fresh scheduler straight
    // from the frozen sections. This is the measured restart critical path.
    Tcam warm_tcam(capacity);
    DagScheduler warm_sched(warm_tcam);
    size_t restored = 0;
    util::Stopwatch warm_watch;
    {
      const frozen::FrozenPolicy fp(blob.data(), blob.size());
      restored = fp.restore(0, warm_sched);
    }
    double warm_ms = warm_watch.elapsed_ms();

    // Correctness gates (every mode).
    if (restored != cold_tcam.occupied()) {
      return fail("restore wrote a different entry count than the live install");
    }
    if (!warm_sched.layout_valid()) {
      return fail("restored layout violates a DAG constraint");
    }
    if (!slots_identical(cold_tcam, warm_tcam)) {
      return fail("restored TCAM differs from the live install slot-for-slot");
    }
    {
      const frozen::PolicyImage thawed = frozen::thaw(blob);
      compiler::RuleTrisCompiler recompiled(spec,
                                            tables_for(left_rules, right_rules));
      const auto& renode =
          dynamic_cast<const compiler::ComposedNode&>(recompiled.root());
      if (!(thawed.tables[0].snapshot() == renode.snapshot())) {
        return fail("thawed snapshot diverged from a fresh recompile");
      }
    }

    // Timing gate: >= 100x at the largest full-mode size; smoke only checks
    // the warm path is not slower than the cold compile. Both warm timings
    // are small, so one preemption while ctest runs the suite in parallel
    // can swamp a measurement — re-measure (fresh scheduler each time, same
    // blob) and keep the best before calling it a regression.
    const double need = args.smoke ? 1.0 : (n == sizes.back() ? 100.0 : 0.0);
    for (int retry = 0; cold_compile_ms < need * warm_ms && retry < 5; ++retry) {
      Tcam retry_tcam(capacity);
      DagScheduler retry_sched(retry_tcam);
      util::Stopwatch retry_watch;
      {
        const frozen::FrozenPolicy fp(blob.data(), blob.size());
        (void)fp.restore(0, retry_sched);
      }
      warm_ms = std::min(warm_ms, retry_watch.elapsed_ms());
    }
    const double speedup = warm_ms > 0 ? cold_compile_ms / warm_ms : 0.0;
    if (cold_compile_ms < need * warm_ms) {
      std::fprintf(stderr, "warm boot %.2f ms vs cold compile %.2f ms (%.1fx, need %.0fx)\n",
                   warm_ms, cold_compile_ms, speedup, need);
      return fail("warm boot speedup below the acceptance floor");
    }

    std::printf("%-8zu %-8zu | %-12.1f %-12.1f | %-9.2f %-10.1f | %-10.3f | %-8.0fx\n",
                n, visible, cold_compile_ms, cold_install_ms, freeze_ms,
                blob.size() / 1024.0, warm_ms, speedup);
    std::fflush(stdout);

    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("section", "boot");
      j->field("left_rules", static_cast<double>(n));
      j->field("visible_rules", static_cast<double>(visible));
      j->field("member_entries", static_cast<double>(node.member_size()));
      j->field("cold_compile_ms", cold_compile_ms);
      j->field("cold_install_ms", cold_install_ms);
      j->field("freeze_ms", freeze_ms);
      j->field("blob_bytes", static_cast<double>(blob.size()));
      j->field("warm_boot_ms", warm_ms);
      j->field("restored_entries", static_cast<double>(restored));
      j->field("speedup_vs_compile", speedup);
      j->field("speedup_vs_cold_total",
               warm_ms > 0 ? (cold_compile_ms + cold_install_ms) / warm_ms : 0.0);
    }
  }

  // --- delta: epoch patches over the codec --------------------------------
  {
    const size_t n = args.smoke ? 500 : 5000;
    const size_t epochs = args.smoke ? 4 : 8;
    const size_t ops = args.smoke ? 8 : 32;
    std::printf("\n[delta] %zu-rule left member, %zu epochs x %zu rule swaps\n",
                n, epochs, ops);

    util::Rng rng(0xde17a);
    const std::vector<Rule> right_rules = classbench::generate_router(128, rng);
    const std::vector<Rule> left_rules = classbench::generate_monitor(n, rng);
    const PolicySpec spec =
        PolicySpec::parallel(PolicySpec::leaf("left"), PolicySpec::leaf("right"));
    compiler::RuleTrisCompiler frontend(spec, tables_for(left_rules, right_rules));

    runtime::EpochFreezer freezer;
    freezer.observe(1, frontend);

    std::vector<RuleId> live;
    for (const Rule& r : left_rules) live.push_back(r.id);
    util::Stopwatch churn_watch;
    for (size_t e = 2; e <= epochs; ++e) {
      for (size_t k = 0; k < ops; ++k) {
        const size_t victim_idx = static_cast<size_t>(rng.next_below(live.size()));
        frontend.remove("left", live[victim_idx]);
        const Rule fresh = classbench::generate_monitor(1, rng).front();
        live[victim_idx] = fresh.id;
        frontend.insert("left", fresh);
      }
      freezer.observe(e, frontend);
    }
    const double churn_ms = churn_watch.elapsed_ms();

    // Every patch frame must survive the codec bit-identically, outer batch
    // framing and inner delta blob alike.
    size_t patch_bytes = 0;
    for (const proto::Bytes& frame : freezer.patch_frames()) {
      patch_bytes += frame.size();
      const proto::MessageBatch batch = proto::decode_batch(frame);
      if (proto::encode_batch(batch) != frame) {
        return fail("patch frame did not re-encode bit-identically");
      }
      const auto* patch = std::get_if<proto::SnapshotPatch>(&batch.front());
      if (patch == nullptr) return fail("patch frame lost its SnapshotPatch");
      const frozen::PolicyDelta delta = frozen::decode_delta(patch->blob);
      if (frozen::encode_delta(delta) != patch->blob) {
        return fail("delta blob did not re-encode bit-identically");
      }
    }

    runtime::ThawedController thawed(freezer.base_blob());
    util::Stopwatch replay_watch;
    for (const proto::Bytes& frame : freezer.patch_frames()) {
      thawed.apply_patch_frame(frame);
    }
    const double replay_ms = replay_watch.elapsed_ms();

    if (thawed.epoch() != epochs) return fail("replay ended on the wrong epoch");
    const auto& live_node =
        dynamic_cast<const compiler::ComposedNode&>(frontend.root());
    if (!(thawed.image().tables[0].snapshot() == live_node.snapshot())) {
      return fail("replayed image diverged from the live compiler");
    }

    const size_t frames = freezer.patch_frames().size();
    std::printf("  base blob %.1f KiB | %zu patch frames, %.1f KiB total | "
                "replay %.2f ms (%.3f ms/epoch) | live churn %.1f ms\n",
                freezer.base_blob().size() / 1024.0, frames, patch_bytes / 1024.0,
                replay_ms, frames ? replay_ms / frames : 0.0, churn_ms);

    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("section", "delta");
      j->field("left_rules", static_cast<double>(n));
      j->field("epochs", static_cast<double>(epochs));
      j->field("ops_per_epoch", static_cast<double>(ops));
      j->field("base_blob_bytes", static_cast<double>(freezer.base_blob().size()));
      j->field("patch_frames", static_cast<double>(frames));
      j->field("patch_bytes_total", static_cast<double>(patch_bytes));
      j->field("replay_ms", replay_ms);
      j->field("replay_ms_per_epoch", frames ? replay_ms / frames : 0.0);
      j->field("live_churn_ms", churn_ms);
    }
  }

  bench::write_json();
  std::printf("\nall self-checks passed\n");
  return 0;
}
