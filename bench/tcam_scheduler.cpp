// TCAM scheduler scaling: cached dependency caps + flat-arena chain search
// vs the legacy O(degree)-per-probe search (PR 4 tentpole), plus the
// pipeline-parallel apply across independent per-table schedulers.
//
// The adversarial workload is the CacheFlow-style cover-set graph around a
// default rule: one default that depends on every other rule (out-degree n),
// K fat aggregates each depending on its shard of leaves (out-degree n/K),
// and a saturated bottom region so that reinserting a bottom rule forces a
// moving-chain search whose BFS probes the aggregates — each probe costs
// O(shard) in the legacy search and O(1) with the cap cache. Cover-set
// graphs are deliberately NOT transitively reduced (CacheFlow tracks covers
// directly), which is what makes the fat degrees real.
//
// Every rule is pre-generated once per configuration so the cached and
// legacy runs see identical rule ids; the bench then self-checks that both
// modes produced identical per-op move counts, identical final layouts, and
// layout_valid() — and exits non-zero otherwise. --smoke runs a small sweep
// for ctest; --legacy-search runs the legacy side alone (profiling
// ablation).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "compiler/update.h"
#include "flowspace/rule.h"
#include "switchsim/adapters.h"
#include "switchsim/pipeline_switch.h"
#include "tcam/backend_update.h"
#include "tcam/dag_scheduler.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using ruletris::flowspace::Action;
using ruletris::flowspace::ActionList;
using ruletris::flowspace::FieldId;
using ruletris::flowspace::kInvalidRuleId;
using ruletris::flowspace::Rule;
using ruletris::flowspace::RuleId;
using ruletris::flowspace::TernaryMatch;
using ruletris::tcam::BackendUpdate;
using ruletris::tcam::DagScheduler;
using ruletris::tcam::Tcam;
using ruletris::util::Rng;
using ruletris::util::Stopwatch;

Rule make_rule() {
  TernaryMatch m;
  m.set_exact(FieldId::kDstPort, 80);
  return Rule::make(m, ActionList{Action::forward(1)}, 0);
}

struct StarSpec {
  size_t capacity = 4096;
  double occupancy = 0.95;  // pre-ballast fill target
  size_t updates = 500;
  size_t aggregates = 32;
  size_t bottom = 8;       // churned bottom rules (the chain triggers)
  size_t succ_per_bottom = 4;
  uint64_t seed = 2024;
};

/// One churn operation, fully pre-generated so both search modes replay the
/// exact same stream (same rule ids, same random choices). kBottom is the
/// chain trigger: it removes one live leaf (freeing a slot mid-block, far
/// above the bottom region) and installs a fresh bottom rule whose window is
/// the saturated bottom region — the insert must run a moving chain whose
/// BFS probes every aggregate between the window and the freed slot.
struct Op {
  enum Kind { kDefault, kAggregate, kBottom, kLeaf } kind = kLeaf;
  size_t index = 0;               // aggregate index, or raw pick (mod live leaves)
  Rule fresh;                     // kBottom replacement rule
  std::vector<size_t> bottom_succs;  // aggregate indices the fresh rule depends on
};

/// Everything both runs share: the rule universe and the op stream.
struct StarWorkload {
  Rule def;
  std::vector<Rule> aggregates;
  std::vector<Rule> leaves;
  std::vector<Rule> bottom;  // initial bottom rules
  std::vector<std::vector<size_t>> bottom_succs;
  std::vector<Rule> ballast_pool;   // consumed as saturation requires
  std::vector<Rule> subfloor_pool;  // fills the slots below the default
  std::vector<Op> ops;
};

StarWorkload build_workload(const StarSpec& spec) {
  Rng rng(spec.seed);
  StarWorkload w;
  w.def = make_rule();
  const size_t fill = static_cast<size_t>(spec.occupancy *
                                          static_cast<double>(spec.capacity));
  const size_t n_leaves = fill > spec.aggregates + spec.bottom + 1
                              ? fill - spec.aggregates - spec.bottom - 1
                              : 16;
  for (size_t k = 0; k < spec.aggregates; ++k) w.aggregates.push_back(make_rule());
  for (size_t i = 0; i < n_leaves; ++i) w.leaves.push_back(make_rule());
  auto pick_succs = [&] {
    std::vector<size_t> out;
    for (size_t e = 0; e < spec.succ_per_bottom; ++e) {
      out.push_back(rng.next_below(spec.aggregates));
    }
    return out;
  };
  for (size_t b = 0; b < spec.bottom; ++b) {
    w.bottom.push_back(make_rule());
    w.bottom_succs.push_back(pick_succs());
  }
  // The pools upper-bound the saturation need (each region < capacity/2).
  for (size_t i = 0; i < spec.capacity / 2 + 8; ++i) {
    w.ballast_pool.push_back(make_rule());
    w.subfloor_pool.push_back(make_rule());
  }
  for (size_t u = 0; u < spec.updates; ++u) {
    Op op;
    const double p = rng.next_double();
    // The default itself is never churned: like a production table-miss rule
    // it is installed once and stays. Its adversarial role is its out-degree,
    // which the legacy search pays for on every bound scan and probe.
    if (p < 0.08) {
      op.kind = Op::kAggregate;
      op.index = rng.next_below(spec.aggregates);
    } else if (p < 0.70) {
      op.kind = Op::kBottom;
      op.index = static_cast<size_t>(rng.next_u32());
      op.fresh = make_rule();
      op.bottom_succs = pick_succs();
    } else {
      op.kind = Op::kLeaf;
      op.index = static_cast<size_t>(rng.next_u32());
    }
    w.ops.push_back(std::move(op));
  }
  return w;
}

struct RunResult {
  bool ok = true;
  double setup_ms = 0.0;
  double churn_ms = 0.0;
  double fill = 0.0;  // actual occupancy after saturation
  size_t ballast_used = 0;
  size_t chain_ops = 0;
  size_t total_moves = 0;
  size_t max_chain = 0;
  double kind_ms[4] = {0.0, 0.0, 0.0, 0.0};  // per-op-kind breakdown
  std::vector<uint32_t> per_op_moves;
  std::vector<long long> layout;  // addr -> rule id (-1 free)
  bool layout_valid = false;
};

RunResult run_star(DagScheduler::SearchMode mode, const StarSpec& spec,
                   const StarWorkload& w) {
  RunResult r;
  Tcam tcam(spec.capacity);
  DagScheduler sched(tcam, DagScheduler::Placement::kBalanced, mode);
  Stopwatch setup_watch;

  // Install the whole star in one batch; the scheduler's local Kahn order
  // installs leaves, then aggregates, then the default.
  BackendUpdate initial;
  initial.dag.added_vertices.push_back(w.def.id);
  for (const Rule& a : w.aggregates) initial.dag.added_vertices.push_back(a.id);
  for (const Rule& l : w.leaves) initial.dag.added_vertices.push_back(l.id);
  for (const Rule& a : w.aggregates) initial.dag.added_edges.push_back({w.def.id, a.id});
  for (size_t i = 0; i < w.leaves.size(); ++i) {
    initial.dag.added_edges.push_back({w.def.id, w.leaves[i].id});
    initial.dag.added_edges.push_back(
        {w.aggregates[i % w.aggregates.size()].id, w.leaves[i].id});
  }
  for (const Rule& l : w.leaves) initial.added.push_back(l);
  for (const Rule& a : w.aggregates) initial.added.push_back(a);
  initial.added.push_back(w.def);
  r.ok = sched.apply(initial);

  // Bottom rules: below their chosen aggregates, above the default.
  std::vector<Rule> bottom = w.bottom;
  for (size_t b = 0; b < bottom.size() && r.ok; ++b) {
    BackendUpdate u;
    u.dag.added_vertices.push_back(bottom[b].id);
    u.dag.added_edges.push_back({w.def.id, bottom[b].id});
    for (size_t k : w.bottom_succs[b]) {
      u.dag.added_edges.push_back({bottom[b].id, w.aggregates[k].id});
    }
    u.added.push_back(bottom[b]);
    r.ok = r.ok && sched.apply(u);
  }

  // Fill every slot below the default with subfloor rules pinned under it
  // (each depends on the default, so it must sit below). Without this, a
  // bottom-rule insert finds a one-hop *down* chain that nudges the default
  // itself into the free space beneath it — legal and optimal, but it turns
  // every churn op into a move of the O(n)-degree vertex and hides the
  // search-cost asymmetry this bench exists to measure.
  if (r.ok) {
    const size_t def_addr = tcam.address_of(w.def.id);
    size_t free_below = 0;
    for (size_t a = 0; a < def_addr; ++a) {
      if (tcam.is_free(a)) ++free_below;
    }
    for (size_t i = 0; i < free_below && r.ok; ++i) {
      const Rule& sub = w.subfloor_pool[i];
      BackendUpdate u;
      u.dag.added_vertices.push_back(sub.id);
      u.dag.added_edges.push_back({sub.id, w.def.id});
      u.added.push_back(sub);
      r.ok = sched.apply(u);
    }
  }

  // Saturate the bottom region (def, lowest leaf): ballast rules pinned
  // below the lowest-addressed leaf soak up its free slots so bottom-rule
  // churn must run moving chains instead of grabbing a free slot.
  std::unordered_set<RuleId> leaf_ids;
  for (const Rule& l : w.leaves) leaf_ids.insert(l.id);
  size_t anchor_addr = 0;
  RuleId anchor_id = 0;
  for (size_t a = 0; a < spec.capacity && r.ok; ++a) {
    const std::optional<RuleId> id = tcam.at(a);
    if (id && leaf_ids.count(*id)) {
      anchor_addr = a;
      anchor_id = *id;
      break;
    }
  }
  if (anchor_id != 0 && r.ok) {
    // Pin every aggregate below the anchor leaf. Without this, moving
    // chains gradually displace aggregates above the bottom region; then
    // later bottom-rule windows reach past it into block free slots and the
    // churn degenerates into fast-path writes for both search modes.
    BackendUpdate pin;
    for (const Rule& a : w.aggregates) {
      pin.dag.added_edges.push_back({a.id, anchor_id});
    }
    r.ok = sched.apply(pin);
    size_t free_in_region = 0;
    for (size_t a = tcam.address_of(w.def.id) + 1; a < anchor_addr; ++a) {
      if (tcam.is_free(a)) ++free_in_region;
    }
    while (free_in_region > 0 && r.ballast_used < w.ballast_pool.size()) {
      const Rule& ballast = w.ballast_pool[r.ballast_used];
      BackendUpdate u;
      u.dag.added_vertices.push_back(ballast.id);
      u.dag.added_edges.push_back({w.def.id, ballast.id});
      u.dag.added_edges.push_back({ballast.id, anchor_id});
      u.added.push_back(ballast);
      if (!sched.apply(u)) {
        r.ok = false;
        break;
      }
      ++r.ballast_used;
      --free_in_region;  // the ballast's range is exactly the region
    }
  }
  r.setup_ms = setup_watch.elapsed_ms();

  // Live leaves the churn may touch. The anchor leaf is excluded: every
  // ballast rule and aggregate is pinned under it, so removing or
  // reinserting it would unpin the saturation (and teleport the anchor above
  // its ballast predecessors).
  std::vector<size_t> alive;
  std::unordered_map<RuleId, size_t> alive_pos;  // id -> position in `alive`
  for (size_t i = 0; i < w.leaves.size(); ++i) {
    if (w.leaves[i].id == anchor_id) continue;
    alive_pos[w.leaves[i].id] = alive.size();
    alive.push_back(i);
  }
  // Victim for a bottom op: the lowest-addressed live leaf. Freeing the slot
  // at the bottom of the leaf block keeps the chain completion slot — and so
  // the search span — constant over the whole run, instead of ratcheting the
  // free-slot waterline upward one chain at a time.
  auto lowest_live_leaf = [&]() -> RuleId {
    for (size_t a = tcam.address_of(anchor_id) + 1; a < spec.capacity; ++a) {
      const std::optional<RuleId> id = tcam.at(a);
      if (id && alive_pos.count(*id)) return *id;
    }
    return kInvalidRuleId;
  };

  // Churn: replay the pre-generated op stream.
  Stopwatch churn_watch;
  for (const Op& op : w.ops) {
    Stopwatch op_watch;
    switch (op.kind) {
      case Op::kDefault:
        sched.evict(w.def.id);
        if (!sched.insert(w.def)) r.ok = false;
        break;
      case Op::kAggregate:
        sched.evict(w.aggregates[op.index].id);
        if (!sched.insert(w.aggregates[op.index])) r.ok = false;
        break;
      case Op::kBottom: {
        // Remove the lowest live leaf (the freed slot sits at the block
        // bottom, above the saturated region) and install a fresh bottom
        // rule in the same batch: its window is the saturated region, so
        // the insert must run a moving chain past every aggregate.
        if (alive.empty()) break;
        const RuleId dead = lowest_live_leaf();
        if (dead == kInvalidRuleId) break;
        const size_t pick = alive_pos.at(dead);
        alive_pos[w.leaves[alive.back()].id] = pick;
        alive[pick] = alive.back();
        alive.pop_back();
        alive_pos.erase(dead);
        BackendUpdate u;
        u.removed.push_back(dead);
        u.dag.added_vertices.push_back(op.fresh.id);
        u.dag.added_edges.push_back({w.def.id, op.fresh.id});
        for (size_t k : op.bottom_succs) {
          u.dag.added_edges.push_back({op.fresh.id, w.aggregates[k].id});
        }
        u.added.push_back(op.fresh);
        if (!sched.apply(u)) r.ok = false;
        break;
      }
      case Op::kLeaf: {
        if (alive.empty()) break;
        const Rule& leaf = w.leaves[alive[op.index % alive.size()]];
        sched.evict(leaf.id);
        if (!sched.insert(leaf)) r.ok = false;
        break;
      }
    }
    r.kind_ms[op.kind] += op_watch.elapsed_ms();
    const size_t moves = sched.last_chain_moves();
    r.per_op_moves.push_back(static_cast<uint32_t>(moves));
    r.total_moves += moves;
    if (moves > 0) ++r.chain_ops;
    if (moves > r.max_chain) r.max_chain = moves;
  }
  r.churn_ms = churn_watch.elapsed_ms();

  r.fill = static_cast<double>(tcam.occupied()) /
           static_cast<double>(tcam.capacity());
  r.layout.assign(spec.capacity, -1);
  for (size_t a = 0; a < spec.capacity; ++a) {
    if (const std::optional<RuleId> id = tcam.at(a)) {
      r.layout[a] = static_cast<long long>(*id);
    }
  }
  r.layout_valid = sched.layout_valid();
  return r;
}

bool runs_identical(const RunResult& cached, const RunResult& legacy) {
  return cached.per_op_moves == legacy.per_op_moves &&
         cached.layout == legacy.layout &&
         cached.ballast_used == legacy.ballast_used;
}

/// Pipeline-parallel apply: one star install batch per stage, applied via
/// deliver_all with 1 vs N threads; the per-stage reports must be
/// bit-identical.
struct PipelineResult {
  bool ok = true;
  bool identical = true;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
};

PipelineResult run_pipeline(size_t stages, size_t stage_capacity, size_t threads,
                            bool clamp_to_hardware) {
  using ruletris::compiler::TableUpdate;
  using ruletris::switchsim::MultiTableSwitch;

  // Build each stage's install batch once (shared rule ids for both runs).
  std::vector<ruletris::proto::MessageBatch> batches;
  for (size_t s = 0; s < stages; ++s) {
    const size_t n = stage_capacity * 8 / 10;
    const size_t n_aggs = 16;
    TableUpdate update;
    Rule def = make_rule();
    std::vector<Rule> aggs, leaves;
    for (size_t k = 0; k < n_aggs; ++k) aggs.push_back(make_rule());
    for (size_t i = 0; i + n_aggs + 1 < n; ++i) leaves.push_back(make_rule());
    update.dag.added_vertices.push_back(def.id);
    for (const Rule& a : aggs) {
      update.dag.added_vertices.push_back(a.id);
      update.dag.added_edges.push_back({def.id, a.id});
    }
    for (size_t i = 0; i < leaves.size(); ++i) {
      update.dag.added_vertices.push_back(leaves[i].id);
      update.dag.added_edges.push_back({def.id, leaves[i].id});
      update.dag.added_edges.push_back({aggs[i % n_aggs].id, leaves[i].id});
    }
    update.added = leaves;
    update.added.insert(update.added.end(), aggs.begin(), aggs.end());
    update.added.push_back(def);
    batches.push_back(ruletris::switchsim::to_messages(update));
  }

  PipelineResult result;
  const std::vector<size_t> caps(stages, stage_capacity);

  MultiTableSwitch serial(caps);
  Stopwatch serial_watch;
  const auto ms = serial.deliver_all(batches);
  result.serial_ms = serial_watch.elapsed_ms();
  result.ok = ms.ok;

  MultiTableSwitch parallel(caps);
  parallel.set_apply_threads(threads, clamp_to_hardware);
  Stopwatch parallel_watch;
  const auto mp = parallel.deliver_all(batches);
  result.parallel_ms = parallel_watch.elapsed_ms();
  result.ok = result.ok && mp.ok;

  result.identical = ms.stages.size() == mp.stages.size();
  for (size_t s = 0; result.identical && s < ms.stages.size(); ++s) {
    result.identical = ms.stages[s].entry_writes == mp.stages[s].entry_writes &&
                       ms.stages[s].moves == mp.stages[s].moves;
  }
  for (size_t s = 0; result.identical && s < stages; ++s) {
    for (size_t a = 0; a < stage_capacity; ++a) {
      if (serial.tcam(s).at(a) != parallel.tcam(s).at(a)) {
        result.identical = false;
        break;
      }
    }
    result.identical =
        result.identical && parallel.firmware(s).layout_valid();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using ruletris::bench::json;

  bool smoke = false;
  bool legacy_only = false;
  size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--legacy-search") == 0) legacy_only = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[i + 1]));
    }
  }
  ruletris::bench::init_json(argc, argv, "tcam_scheduler");
  if (auto* j = json()) {
    j->meta("threads", static_cast<double>(threads));
    j->meta("smoke", smoke ? 1.0 : 0.0);
  }

  const size_t updates = ruletris::bench::updates_per_run(smoke ? 80 : 500);

  std::vector<StarSpec> specs;
  if (smoke) {
    specs.push_back({256, 0.90, updates, 8, 4, 3, 2024});
    specs.push_back({512, 0.95, updates, 8, 4, 3, 2025});
  } else {
    specs.push_back({4096, 0.95, updates, 32, 8, 4, 2024});
    specs.push_back({4096, 0.98, updates, 32, 8, 4, 2024});
    specs.push_back({32768, 0.95, updates, 32, 8, 4, 2024});
    specs.push_back({32768, 0.98, updates, 32, 8, 4, 2024});
  }

  std::printf("\n=== TCAM scheduler: cached caps + flat arena vs legacy search ===\n");
  std::printf("%-8s %-6s %-6s | %-9s %-9s %-8s | %-7s %-7s %-7s | %s\n",
              "capacity", "fill", "ops", "cached ms", "legacy ms", "speedup",
              "chains", "moves", "maxch", "checks");

  bool all_ok = true;
  for (const StarSpec& spec : specs) {
    const StarWorkload w = build_workload(spec);
    RunResult cached, legacy;
    if (!legacy_only) {
      cached = run_star(DagScheduler::SearchMode::kCached, spec, w);
      all_ok = all_ok && cached.ok && cached.layout_valid;
    }
    legacy = run_star(DagScheduler::SearchMode::kLegacy, spec, w);
    all_ok = all_ok && legacy.ok && legacy.layout_valid;

    bool identical = true;
    double speedup = 0.0;
    if (!legacy_only) {
      identical = runs_identical(cached, legacy);
      all_ok = all_ok && identical;
      speedup = cached.churn_ms > 0.0 ? legacy.churn_ms / cached.churn_ms : 0.0;
    }
    const RunResult& shown = legacy_only ? legacy : cached;
    std::printf("%-8zu %-6.3f %-6zu | %-9.2f %-9.2f %-8.2f | %-7zu %-7zu %-7zu | %s\n",
                spec.capacity, shown.fill, spec.updates,
                legacy_only ? 0.0 : cached.churn_ms, legacy.churn_ms, speedup,
                shown.chain_ops, shown.total_moves, shown.max_chain,
                legacy_only ? "(legacy only)"
                            : (identical && shown.layout_valid ? "ok" : "FAIL"));
    std::fflush(stdout);
    if (auto* j = json()) {
      j->begin_row();
      j->field("workload", "star");
      j->field("capacity", static_cast<double>(spec.capacity));
      j->field("occupancy_target", spec.occupancy);
      j->field("occupancy_actual", shown.fill);
      j->field("updates", static_cast<double>(spec.updates));
      j->field("aggregates", static_cast<double>(spec.aggregates));
      j->field("ballast", static_cast<double>(shown.ballast_used));
      j->field("chain_ops", static_cast<double>(shown.chain_ops));
      j->field("total_moves", static_cast<double>(shown.total_moves));
      j->field("max_chain", static_cast<double>(shown.max_chain));
      j->field("cached_churn_ms", legacy_only ? 0.0 : cached.churn_ms);
      j->field("legacy_churn_ms", legacy.churn_ms);
      j->field("cached_bottom_ms", legacy_only ? 0.0 : cached.kind_ms[2]);
      j->field("legacy_bottom_ms", legacy.kind_ms[2]);
      j->field("cached_leaf_ms", legacy_only ? 0.0 : cached.kind_ms[3]);
      j->field("legacy_leaf_ms", legacy.kind_ms[3]);
      j->field("cached_aggregate_ms", legacy_only ? 0.0 : cached.kind_ms[1]);
      j->field("legacy_aggregate_ms", legacy.kind_ms[1]);
      j->field("cached_setup_ms", legacy_only ? 0.0 : cached.setup_ms);
      j->field("legacy_setup_ms", legacy.setup_ms);
      j->field("speedup", speedup);
      j->field("identical", identical ? 1.0 : 0.0);
      j->field("layout_valid", shown.layout_valid ? 1.0 : 0.0);
    }
  }

  // Pipeline-parallel apply across independent per-table schedulers. Smoke
  // forces the pool even on one core (it gates determinism, not speed); the
  // timed run keeps the production clamp so the speedup is what a user on
  // this machine would see.
  const size_t threads_effective =
      smoke ? threads : ruletris::util::effective_workers(threads);
  std::printf("\n=== Pipeline apply: %zu threads (%zu effective) vs serial ===\n",
              threads, threads_effective);
  std::printf("%-7s %-9s | %-10s %-11s %-8s | %s\n", "stages", "cap/stage",
              "serial ms", "parallel ms", "speedup", "checks");
  {
    const size_t stages = smoke ? 3 : 6;
    const size_t stage_capacity = smoke ? 256 : 4096;
    const PipelineResult p =
        run_pipeline(stages, stage_capacity, threads, /*clamp_to_hardware=*/!smoke);
    all_ok = all_ok && p.ok && p.identical;
    const double speedup = p.parallel_ms > 0.0 ? p.serial_ms / p.parallel_ms : 0.0;
    std::printf("%-7zu %-9zu | %-10.2f %-11.2f %-8.2f | %s\n", stages,
                stage_capacity, p.serial_ms, p.parallel_ms, speedup,
                p.ok && p.identical ? "ok" : "FAIL");
    if (auto* j = json()) {
      j->begin_row();
      j->field("workload", "pipeline");
      j->field("stages", static_cast<double>(stages));
      j->field("stage_capacity", static_cast<double>(stage_capacity));
      j->field("threads", static_cast<double>(threads));
      j->field("threads_effective", static_cast<double>(threads_effective));
      j->field("serial_ms", p.serial_ms);
      j->field("parallel_ms", p.parallel_ms);
      j->field("speedup", speedup);
      j->field("identical", p.identical ? 1.0 : 0.0);
    }
  }

  ruletris::bench::write_json();
  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: scheduler bench self-check (divergent layouts, move "
                 "counts, or invalid layout)\n");
    return 1;
  }
  std::printf("\nOK: cached and legacy searches agree on every layout and chain\n");
  return 0;
}
