// Ablation A2: incremental vs from-scratch front-end compilation.
//
// Quantifies what Sec. IV-C buys: the per-update cost of RuleTris's
// incremental composition against recompiling the whole composition (with
// DAG) from scratch, across right-member sizes.
#include <map>

#include "bench/bench_util.h"
#include "classbench/generator.h"
#include "compiler/ruletris_compiler.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ruletris;
  using compiler::PolicySpec;
  using flowspace::FlowTable;
  using flowspace::Rule;

  bench::init_json(argc, argv, "ablation_incremental");
  util::set_log_level(util::LogLevel::kOff);
  std::printf("\n=== Ablation A2: incremental vs from-scratch compilation ===\n");
  std::printf("%-8s | %-28s %-28s %-10s\n", "router", "incremental ms/update",
              "from-scratch ms/update", "speedup");
  const size_t updates = bench::updates_per_run(50);

  for (const size_t right_size : {250ul, 500ul, 1000ul, 2000ul, 4000ul}) {
    util::Rng rng(0xab1e + right_size);
    const auto router = classbench::generate_router(right_size, rng);
    const auto monitor = classbench::generate_monitor(100, rng);

    std::map<std::string, FlowTable> tables;
    tables.emplace("left", FlowTable{monitor});
    tables.emplace("right", FlowTable{router});
    const PolicySpec spec =
        PolicySpec::parallel(PolicySpec::leaf("left"), PolicySpec::leaf("right"));
    compiler::RuleTrisCompiler incremental(spec, tables);

    std::vector<flowspace::RuleId> live;
    for (const Rule& r : monitor) live.push_back(r.id);

    util::Samples inc_ms, scratch_ms;
    for (size_t u = 0; u < updates; ++u) {
      const size_t victim_idx = rng.next_below(live.size());
      const Rule fresh = classbench::random_monitor_rule(100, rng);

      {
        util::Stopwatch watch;
        incremental.remove("left", live[victim_idx]);
        incremental.insert("left", fresh);
        inc_ms.add(watch.elapsed_ms());
      }
      {
        // From scratch: rebuild the full composition + DAG on the mutated
        // member tables (what a non-incremental DAG compiler must do).
        tables.at("left").erase(live[victim_idx]);
        tables.at("left").insert(fresh);
        util::Stopwatch watch;
        compiler::RuleTrisCompiler rebuilt(spec, tables);
        scratch_ms.add(watch.elapsed_ms());
      }
      live[victim_idx] = fresh.id;
    }
    std::printf("%-8zu | %-28s %-28s %6.1fx\n", right_size,
                inc_ms.summary("").c_str(), scratch_ms.summary("").c_str(),
                scratch_ms.median() / inc_ms.median());
    std::fflush(stdout);
    if (auto* j = bench::json()) {
      j->begin_row();
      j->field("router_rules", static_cast<double>(right_size));
      j->field("incremental_med_ms", inc_ms.median());
      j->field("from_scratch_med_ms", scratch_ms.median());
      j->field("speedup", scratch_ms.median() / inc_ms.median());
    }
  }
  bench::write_json();
  return 0;
}
