file(REMOVE_RECURSE
  "CMakeFiles/classbench_test.dir/classbench_test.cpp.o"
  "CMakeFiles/classbench_test.dir/classbench_test.cpp.o.d"
  "classbench_test"
  "classbench_test.pdb"
  "classbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
