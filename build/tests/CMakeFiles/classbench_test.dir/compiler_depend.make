# Empty compiler generated dependencies file for classbench_test.
# This may be replaced when dependencies are built.
