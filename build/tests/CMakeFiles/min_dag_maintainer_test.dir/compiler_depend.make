# Empty compiler generated dependencies file for min_dag_maintainer_test.
# This may be replaced when dependencies are built.
