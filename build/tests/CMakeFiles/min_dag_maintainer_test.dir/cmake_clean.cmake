file(REMOVE_RECURSE
  "CMakeFiles/min_dag_maintainer_test.dir/min_dag_maintainer_test.cpp.o"
  "CMakeFiles/min_dag_maintainer_test.dir/min_dag_maintainer_test.cpp.o.d"
  "min_dag_maintainer_test"
  "min_dag_maintainer_test.pdb"
  "min_dag_maintainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_dag_maintainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
