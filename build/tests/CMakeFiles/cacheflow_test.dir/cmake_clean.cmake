file(REMOVE_RECURSE
  "CMakeFiles/cacheflow_test.dir/cacheflow_test.cpp.o"
  "CMakeFiles/cacheflow_test.dir/cacheflow_test.cpp.o.d"
  "cacheflow_test"
  "cacheflow_test.pdb"
  "cacheflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cacheflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
