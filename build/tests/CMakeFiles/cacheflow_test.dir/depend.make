# Empty dependencies file for cacheflow_test.
# This may be replaced when dependencies are built.
