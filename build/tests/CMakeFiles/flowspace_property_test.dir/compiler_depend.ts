# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for flowspace_property_test.
