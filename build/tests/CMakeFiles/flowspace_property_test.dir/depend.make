# Empty dependencies file for flowspace_property_test.
# This may be replaced when dependencies are built.
