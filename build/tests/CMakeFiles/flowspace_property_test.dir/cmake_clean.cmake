file(REMOVE_RECURSE
  "CMakeFiles/flowspace_property_test.dir/flowspace_property_test.cpp.o"
  "CMakeFiles/flowspace_property_test.dir/flowspace_property_test.cpp.o.d"
  "flowspace_property_test"
  "flowspace_property_test.pdb"
  "flowspace_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowspace_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
