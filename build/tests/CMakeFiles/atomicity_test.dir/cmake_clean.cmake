file(REMOVE_RECURSE
  "CMakeFiles/atomicity_test.dir/atomicity_test.cpp.o"
  "CMakeFiles/atomicity_test.dir/atomicity_test.cpp.o.d"
  "atomicity_test"
  "atomicity_test.pdb"
  "atomicity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
