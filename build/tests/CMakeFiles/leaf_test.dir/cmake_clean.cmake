file(REMOVE_RECURSE
  "CMakeFiles/leaf_test.dir/leaf_test.cpp.o"
  "CMakeFiles/leaf_test.dir/leaf_test.cpp.o.d"
  "leaf_test"
  "leaf_test.pdb"
  "leaf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
