# Empty dependencies file for leaf_test.
# This may be replaced when dependencies are built.
