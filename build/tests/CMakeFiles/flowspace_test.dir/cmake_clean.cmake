file(REMOVE_RECURSE
  "CMakeFiles/flowspace_test.dir/flowspace_test.cpp.o"
  "CMakeFiles/flowspace_test.dir/flowspace_test.cpp.o.d"
  "flowspace_test"
  "flowspace_test.pdb"
  "flowspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
