# Empty compiler generated dependencies file for flowspace_test.
# This may be replaced when dependencies are built.
