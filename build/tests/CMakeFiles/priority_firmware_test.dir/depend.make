# Empty dependencies file for priority_firmware_test.
# This may be replaced when dependencies are built.
