file(REMOVE_RECURSE
  "CMakeFiles/priority_firmware_test.dir/priority_firmware_test.cpp.o"
  "CMakeFiles/priority_firmware_test.dir/priority_firmware_test.cpp.o.d"
  "priority_firmware_test"
  "priority_firmware_test.pdb"
  "priority_firmware_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_firmware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
