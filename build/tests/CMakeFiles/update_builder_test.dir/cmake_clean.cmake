file(REMOVE_RECURSE
  "CMakeFiles/update_builder_test.dir/update_builder_test.cpp.o"
  "CMakeFiles/update_builder_test.dir/update_builder_test.cpp.o.d"
  "update_builder_test"
  "update_builder_test.pdb"
  "update_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
