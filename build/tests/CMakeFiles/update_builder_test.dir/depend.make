# Empty dependencies file for update_builder_test.
# This may be replaced when dependencies are built.
