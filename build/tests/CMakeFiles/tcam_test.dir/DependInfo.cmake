
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tcam_test.cpp" "tests/CMakeFiles/tcam_test.dir/tcam_test.cpp.o" "gcc" "tests/CMakeFiles/tcam_test.dir/tcam_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ruletris_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flowspace/CMakeFiles/ruletris_flowspace.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ruletris_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/ruletris_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/ruletris_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ruletris_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/ruletris_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/classbench/CMakeFiles/ruletris_classbench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
