# Empty dependencies file for tcam_test.
# This may be replaced when dependencies are built.
