# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/flowspace_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/leaf_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/min_dag_maintainer_test[1]_include.cmake")
include("/root/repo/build/tests/tcam_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/priority_firmware_test[1]_include.cmake")
include("/root/repo/build/tests/redundancy_test[1]_include.cmake")
include("/root/repo/build/tests/cacheflow_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/switchsim_test[1]_include.cmake")
include("/root/repo/build/tests/classbench_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/policy_parser_test[1]_include.cmake")
include("/root/repo/build/tests/update_builder_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/atomicity_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/flowspace_property_test[1]_include.cmake")
include("/root/repo/build/tests/graph_property_test[1]_include.cmake")
