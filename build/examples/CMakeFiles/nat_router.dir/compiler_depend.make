# Empty compiler generated dependencies file for nat_router.
# This may be replaced when dependencies are built.
