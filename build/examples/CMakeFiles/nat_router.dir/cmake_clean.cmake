file(REMOVE_RECURSE
  "CMakeFiles/nat_router.dir/nat_router.cpp.o"
  "CMakeFiles/nat_router.dir/nat_router.cpp.o.d"
  "nat_router"
  "nat_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
