file(REMOVE_RECURSE
  "CMakeFiles/cacheflow_demo.dir/cacheflow_demo.cpp.o"
  "CMakeFiles/cacheflow_demo.dir/cacheflow_demo.cpp.o.d"
  "cacheflow_demo"
  "cacheflow_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cacheflow_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
