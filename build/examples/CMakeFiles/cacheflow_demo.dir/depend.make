# Empty dependencies file for cacheflow_demo.
# This may be replaced when dependencies are built.
