file(REMOVE_RECURSE
  "CMakeFiles/monitoring_router.dir/monitoring_router.cpp.o"
  "CMakeFiles/monitoring_router.dir/monitoring_router.cpp.o.d"
  "monitoring_router"
  "monitoring_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
