# Empty dependencies file for monitoring_router.
# This may be replaced when dependencies are built.
