# Empty compiler generated dependencies file for fig11_cacheflow.
# This may be replaced when dependencies are built.
