file(REMOVE_RECURSE
  "CMakeFiles/fig11_cacheflow.dir/fig11_cacheflow.cpp.o"
  "CMakeFiles/fig11_cacheflow.dir/fig11_cacheflow.cpp.o.d"
  "fig11_cacheflow"
  "fig11_cacheflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cacheflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
