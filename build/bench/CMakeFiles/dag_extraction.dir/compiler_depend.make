# Empty compiler generated dependencies file for dag_extraction.
# This may be replaced when dependencies are built.
