file(REMOVE_RECURSE
  "CMakeFiles/dag_extraction.dir/dag_extraction.cpp.o"
  "CMakeFiles/dag_extraction.dir/dag_extraction.cpp.o.d"
  "dag_extraction"
  "dag_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
