file(REMOVE_RECURSE
  "CMakeFiles/fig9_parallel.dir/fig9_parallel.cpp.o"
  "CMakeFiles/fig9_parallel.dir/fig9_parallel.cpp.o.d"
  "fig9_parallel"
  "fig9_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
