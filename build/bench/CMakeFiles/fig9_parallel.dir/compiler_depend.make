# Empty compiler generated dependencies file for fig9_parallel.
# This may be replaced when dependencies are built.
