# Empty compiler generated dependencies file for ablation_multitable.
# This may be replaced when dependencies are built.
