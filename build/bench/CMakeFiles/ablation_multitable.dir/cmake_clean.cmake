file(REMOVE_RECURSE
  "CMakeFiles/ablation_multitable.dir/ablation_multitable.cpp.o"
  "CMakeFiles/ablation_multitable.dir/ablation_multitable.cpp.o.d"
  "ablation_multitable"
  "ablation_multitable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multitable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
