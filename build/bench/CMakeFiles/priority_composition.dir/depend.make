# Empty dependencies file for priority_composition.
# This may be replaced when dependencies are built.
