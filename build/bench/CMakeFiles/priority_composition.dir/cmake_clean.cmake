file(REMOVE_RECURSE
  "CMakeFiles/priority_composition.dir/priority_composition.cpp.o"
  "CMakeFiles/priority_composition.dir/priority_composition.cpp.o.d"
  "priority_composition"
  "priority_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
