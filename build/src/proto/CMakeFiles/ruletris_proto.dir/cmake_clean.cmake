file(REMOVE_RECURSE
  "CMakeFiles/ruletris_proto.dir/codec.cpp.o"
  "CMakeFiles/ruletris_proto.dir/codec.cpp.o.d"
  "libruletris_proto.a"
  "libruletris_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
