file(REMOVE_RECURSE
  "libruletris_proto.a"
)
