# Empty dependencies file for ruletris_proto.
# This may be replaced when dependencies are built.
