
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowspace/action.cpp" "src/flowspace/CMakeFiles/ruletris_flowspace.dir/action.cpp.o" "gcc" "src/flowspace/CMakeFiles/ruletris_flowspace.dir/action.cpp.o.d"
  "/root/repo/src/flowspace/rule.cpp" "src/flowspace/CMakeFiles/ruletris_flowspace.dir/rule.cpp.o" "gcc" "src/flowspace/CMakeFiles/ruletris_flowspace.dir/rule.cpp.o.d"
  "/root/repo/src/flowspace/rule_index.cpp" "src/flowspace/CMakeFiles/ruletris_flowspace.dir/rule_index.cpp.o" "gcc" "src/flowspace/CMakeFiles/ruletris_flowspace.dir/rule_index.cpp.o.d"
  "/root/repo/src/flowspace/ternary.cpp" "src/flowspace/CMakeFiles/ruletris_flowspace.dir/ternary.cpp.o" "gcc" "src/flowspace/CMakeFiles/ruletris_flowspace.dir/ternary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ruletris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
