# Empty dependencies file for ruletris_flowspace.
# This may be replaced when dependencies are built.
