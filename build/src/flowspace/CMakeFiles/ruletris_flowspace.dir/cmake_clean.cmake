file(REMOVE_RECURSE
  "CMakeFiles/ruletris_flowspace.dir/action.cpp.o"
  "CMakeFiles/ruletris_flowspace.dir/action.cpp.o.d"
  "CMakeFiles/ruletris_flowspace.dir/rule.cpp.o"
  "CMakeFiles/ruletris_flowspace.dir/rule.cpp.o.d"
  "CMakeFiles/ruletris_flowspace.dir/rule_index.cpp.o"
  "CMakeFiles/ruletris_flowspace.dir/rule_index.cpp.o.d"
  "CMakeFiles/ruletris_flowspace.dir/ternary.cpp.o"
  "CMakeFiles/ruletris_flowspace.dir/ternary.cpp.o.d"
  "libruletris_flowspace.a"
  "libruletris_flowspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_flowspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
