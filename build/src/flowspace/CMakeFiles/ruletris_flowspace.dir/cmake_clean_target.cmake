file(REMOVE_RECURSE
  "libruletris_flowspace.a"
)
