file(REMOVE_RECURSE
  "CMakeFiles/ruletris_compiler.dir/baseline.cpp.o"
  "CMakeFiles/ruletris_compiler.dir/baseline.cpp.o.d"
  "CMakeFiles/ruletris_compiler.dir/compose_ops.cpp.o"
  "CMakeFiles/ruletris_compiler.dir/compose_ops.cpp.o.d"
  "CMakeFiles/ruletris_compiler.dir/composed_node.cpp.o"
  "CMakeFiles/ruletris_compiler.dir/composed_node.cpp.o.d"
  "CMakeFiles/ruletris_compiler.dir/covisor.cpp.o"
  "CMakeFiles/ruletris_compiler.dir/covisor.cpp.o.d"
  "CMakeFiles/ruletris_compiler.dir/leaf.cpp.o"
  "CMakeFiles/ruletris_compiler.dir/leaf.cpp.o.d"
  "CMakeFiles/ruletris_compiler.dir/policy_parser.cpp.o"
  "CMakeFiles/ruletris_compiler.dir/policy_parser.cpp.o.d"
  "CMakeFiles/ruletris_compiler.dir/ruletris_compiler.cpp.o"
  "CMakeFiles/ruletris_compiler.dir/ruletris_compiler.cpp.o.d"
  "libruletris_compiler.a"
  "libruletris_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
