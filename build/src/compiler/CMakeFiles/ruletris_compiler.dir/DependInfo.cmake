
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/baseline.cpp" "src/compiler/CMakeFiles/ruletris_compiler.dir/baseline.cpp.o" "gcc" "src/compiler/CMakeFiles/ruletris_compiler.dir/baseline.cpp.o.d"
  "/root/repo/src/compiler/compose_ops.cpp" "src/compiler/CMakeFiles/ruletris_compiler.dir/compose_ops.cpp.o" "gcc" "src/compiler/CMakeFiles/ruletris_compiler.dir/compose_ops.cpp.o.d"
  "/root/repo/src/compiler/composed_node.cpp" "src/compiler/CMakeFiles/ruletris_compiler.dir/composed_node.cpp.o" "gcc" "src/compiler/CMakeFiles/ruletris_compiler.dir/composed_node.cpp.o.d"
  "/root/repo/src/compiler/covisor.cpp" "src/compiler/CMakeFiles/ruletris_compiler.dir/covisor.cpp.o" "gcc" "src/compiler/CMakeFiles/ruletris_compiler.dir/covisor.cpp.o.d"
  "/root/repo/src/compiler/leaf.cpp" "src/compiler/CMakeFiles/ruletris_compiler.dir/leaf.cpp.o" "gcc" "src/compiler/CMakeFiles/ruletris_compiler.dir/leaf.cpp.o.d"
  "/root/repo/src/compiler/policy_parser.cpp" "src/compiler/CMakeFiles/ruletris_compiler.dir/policy_parser.cpp.o" "gcc" "src/compiler/CMakeFiles/ruletris_compiler.dir/policy_parser.cpp.o.d"
  "/root/repo/src/compiler/ruletris_compiler.cpp" "src/compiler/CMakeFiles/ruletris_compiler.dir/ruletris_compiler.cpp.o" "gcc" "src/compiler/CMakeFiles/ruletris_compiler.dir/ruletris_compiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dag/CMakeFiles/ruletris_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/flowspace/CMakeFiles/ruletris_flowspace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ruletris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
