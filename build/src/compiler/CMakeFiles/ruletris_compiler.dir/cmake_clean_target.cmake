file(REMOVE_RECURSE
  "libruletris_compiler.a"
)
