# Empty dependencies file for ruletris_compiler.
# This may be replaced when dependencies are built.
