# Empty compiler generated dependencies file for ruletris_tcam.
# This may be replaced when dependencies are built.
