file(REMOVE_RECURSE
  "libruletris_tcam.a"
)
