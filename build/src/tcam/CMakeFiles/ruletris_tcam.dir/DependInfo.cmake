
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcam/cacheflow.cpp" "src/tcam/CMakeFiles/ruletris_tcam.dir/cacheflow.cpp.o" "gcc" "src/tcam/CMakeFiles/ruletris_tcam.dir/cacheflow.cpp.o.d"
  "/root/repo/src/tcam/dag_scheduler.cpp" "src/tcam/CMakeFiles/ruletris_tcam.dir/dag_scheduler.cpp.o" "gcc" "src/tcam/CMakeFiles/ruletris_tcam.dir/dag_scheduler.cpp.o.d"
  "/root/repo/src/tcam/priority_firmware.cpp" "src/tcam/CMakeFiles/ruletris_tcam.dir/priority_firmware.cpp.o" "gcc" "src/tcam/CMakeFiles/ruletris_tcam.dir/priority_firmware.cpp.o.d"
  "/root/repo/src/tcam/redundancy.cpp" "src/tcam/CMakeFiles/ruletris_tcam.dir/redundancy.cpp.o" "gcc" "src/tcam/CMakeFiles/ruletris_tcam.dir/redundancy.cpp.o.d"
  "/root/repo/src/tcam/tcam.cpp" "src/tcam/CMakeFiles/ruletris_tcam.dir/tcam.cpp.o" "gcc" "src/tcam/CMakeFiles/ruletris_tcam.dir/tcam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dag/CMakeFiles/ruletris_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/flowspace/CMakeFiles/ruletris_flowspace.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/ruletris_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ruletris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
