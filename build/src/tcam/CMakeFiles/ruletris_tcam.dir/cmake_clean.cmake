file(REMOVE_RECURSE
  "CMakeFiles/ruletris_tcam.dir/cacheflow.cpp.o"
  "CMakeFiles/ruletris_tcam.dir/cacheflow.cpp.o.d"
  "CMakeFiles/ruletris_tcam.dir/dag_scheduler.cpp.o"
  "CMakeFiles/ruletris_tcam.dir/dag_scheduler.cpp.o.d"
  "CMakeFiles/ruletris_tcam.dir/priority_firmware.cpp.o"
  "CMakeFiles/ruletris_tcam.dir/priority_firmware.cpp.o.d"
  "CMakeFiles/ruletris_tcam.dir/redundancy.cpp.o"
  "CMakeFiles/ruletris_tcam.dir/redundancy.cpp.o.d"
  "CMakeFiles/ruletris_tcam.dir/tcam.cpp.o"
  "CMakeFiles/ruletris_tcam.dir/tcam.cpp.o.d"
  "libruletris_tcam.a"
  "libruletris_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
