# Empty compiler generated dependencies file for ruletris_util.
# This may be replaced when dependencies are built.
