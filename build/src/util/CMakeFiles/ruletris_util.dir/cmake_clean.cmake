file(REMOVE_RECURSE
  "CMakeFiles/ruletris_util.dir/logging.cpp.o"
  "CMakeFiles/ruletris_util.dir/logging.cpp.o.d"
  "CMakeFiles/ruletris_util.dir/stats.cpp.o"
  "CMakeFiles/ruletris_util.dir/stats.cpp.o.d"
  "libruletris_util.a"
  "libruletris_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
