file(REMOVE_RECURSE
  "libruletris_util.a"
)
