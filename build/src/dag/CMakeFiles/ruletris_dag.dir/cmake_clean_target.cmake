file(REMOVE_RECURSE
  "libruletris_dag.a"
)
