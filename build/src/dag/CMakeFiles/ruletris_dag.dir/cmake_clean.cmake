file(REMOVE_RECURSE
  "CMakeFiles/ruletris_dag.dir/builder.cpp.o"
  "CMakeFiles/ruletris_dag.dir/builder.cpp.o.d"
  "CMakeFiles/ruletris_dag.dir/dependency_graph.cpp.o"
  "CMakeFiles/ruletris_dag.dir/dependency_graph.cpp.o.d"
  "CMakeFiles/ruletris_dag.dir/min_dag_maintainer.cpp.o"
  "CMakeFiles/ruletris_dag.dir/min_dag_maintainer.cpp.o.d"
  "libruletris_dag.a"
  "libruletris_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
