# Empty compiler generated dependencies file for ruletris_dag.
# This may be replaced when dependencies are built.
