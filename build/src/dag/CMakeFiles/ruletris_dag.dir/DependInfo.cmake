
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/builder.cpp" "src/dag/CMakeFiles/ruletris_dag.dir/builder.cpp.o" "gcc" "src/dag/CMakeFiles/ruletris_dag.dir/builder.cpp.o.d"
  "/root/repo/src/dag/dependency_graph.cpp" "src/dag/CMakeFiles/ruletris_dag.dir/dependency_graph.cpp.o" "gcc" "src/dag/CMakeFiles/ruletris_dag.dir/dependency_graph.cpp.o.d"
  "/root/repo/src/dag/min_dag_maintainer.cpp" "src/dag/CMakeFiles/ruletris_dag.dir/min_dag_maintainer.cpp.o" "gcc" "src/dag/CMakeFiles/ruletris_dag.dir/min_dag_maintainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flowspace/CMakeFiles/ruletris_flowspace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ruletris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
