file(REMOVE_RECURSE
  "libruletris_switchsim.a"
)
