file(REMOVE_RECURSE
  "CMakeFiles/ruletris_switchsim.dir/adapters.cpp.o"
  "CMakeFiles/ruletris_switchsim.dir/adapters.cpp.o.d"
  "CMakeFiles/ruletris_switchsim.dir/pipeline_switch.cpp.o"
  "CMakeFiles/ruletris_switchsim.dir/pipeline_switch.cpp.o.d"
  "CMakeFiles/ruletris_switchsim.dir/switch.cpp.o"
  "CMakeFiles/ruletris_switchsim.dir/switch.cpp.o.d"
  "libruletris_switchsim.a"
  "libruletris_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
