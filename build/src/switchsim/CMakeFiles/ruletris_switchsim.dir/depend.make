# Empty dependencies file for ruletris_switchsim.
# This may be replaced when dependencies are built.
