# Empty dependencies file for ruletris_classbench.
# This may be replaced when dependencies are built.
