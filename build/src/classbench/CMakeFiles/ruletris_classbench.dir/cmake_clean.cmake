file(REMOVE_RECURSE
  "CMakeFiles/ruletris_classbench.dir/format.cpp.o"
  "CMakeFiles/ruletris_classbench.dir/format.cpp.o.d"
  "CMakeFiles/ruletris_classbench.dir/generator.cpp.o"
  "CMakeFiles/ruletris_classbench.dir/generator.cpp.o.d"
  "CMakeFiles/ruletris_classbench.dir/trace.cpp.o"
  "CMakeFiles/ruletris_classbench.dir/trace.cpp.o.d"
  "libruletris_classbench.a"
  "libruletris_classbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_classbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
