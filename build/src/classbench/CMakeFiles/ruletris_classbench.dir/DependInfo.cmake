
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classbench/format.cpp" "src/classbench/CMakeFiles/ruletris_classbench.dir/format.cpp.o" "gcc" "src/classbench/CMakeFiles/ruletris_classbench.dir/format.cpp.o.d"
  "/root/repo/src/classbench/generator.cpp" "src/classbench/CMakeFiles/ruletris_classbench.dir/generator.cpp.o" "gcc" "src/classbench/CMakeFiles/ruletris_classbench.dir/generator.cpp.o.d"
  "/root/repo/src/classbench/trace.cpp" "src/classbench/CMakeFiles/ruletris_classbench.dir/trace.cpp.o" "gcc" "src/classbench/CMakeFiles/ruletris_classbench.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flowspace/CMakeFiles/ruletris_flowspace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ruletris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
