file(REMOVE_RECURSE
  "libruletris_classbench.a"
)
