file(REMOVE_RECURSE
  "CMakeFiles/ruletris_sim.dir/ruletris_sim.cpp.o"
  "CMakeFiles/ruletris_sim.dir/ruletris_sim.cpp.o.d"
  "ruletris_sim"
  "ruletris_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruletris_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
