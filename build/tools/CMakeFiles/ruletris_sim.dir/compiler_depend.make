# Empty compiler generated dependencies file for ruletris_sim.
# This may be replaced when dependencies are built.
