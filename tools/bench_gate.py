#!/usr/bin/env python3
"""Perf-regression gate over the checked-in BENCH_*.json baselines.

Compares a freshly generated bench report against a committed baseline:
rows are matched on a key tuple (default: switches/shards/threads, the
fleet harness geometry), numeric fields must agree within a relative
tolerance, and string fields (fingerprints) must match exactly. Fields
that depend on the host rather than the modelled system — wall clock,
steal counts, scheduling diagnostics — are ignored.

The fleet numbers are virtual-time deterministic, so the default
tolerance only absorbs float printing (%.6g) noise; pass --tolerance to
loosen the gate for wall-clock benches.

Row identity defaults to a per-benchmark profile (PROFILES below;
e.g. the chaos harness keys on mode/switches/shards/threads), falling
back to the fleet geometry; --key overrides either.

    tools/bench_gate.py BASELINE FRESH [--key k1,k2,...]
                        [--tolerance 0.02] [--ignore f1,f2,...]

Exit status: 0 = within tolerance, 1 = drift or structural mismatch,
2 = usage/IO error. Baseline rows missing from the fresh report are
fine (smoke runs sweep a subset of the committed full sweep); fresh
rows missing from the baseline fail — they mean the sweep changed and
the baseline must be regenerated and committed alongside.
"""

import argparse
import json
import sys

DEFAULT_KEY = ("switches", "shards", "threads")
DEFAULT_IGNORE = ("wall_ms", "steals", "starved_pumps")

# Per-benchmark row-identity overrides, applied when --key is not passed:
# the chaos harness sweeps fault modes over one geometry, so rows are
# identified by mode first.
PROFILES = {
    "chaos_recovery": ("mode", "switches", "shards", "threads"),
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def row_key(row, key_fields, path):
    try:
        return tuple(row[k] for k in key_fields)
    except KeyError as e:
        print(f"bench_gate: {path}: row missing key field {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_*.json")
    ap.add_argument("fresh", help="just-generated report to validate")
    ap.add_argument("--key", default=None,
                    help="comma-separated row-identity fields (default: "
                         "per-benchmark profile, else switches/shards/threads)")
    ap.add_argument("--tolerance", type=float, default=0.02,
                    help="max relative drift for numeric fields")
    ap.add_argument("--ignore", default=",".join(DEFAULT_IGNORE),
                    help="comma-separated fields excluded from comparison")
    args = ap.parse_args()

    ignored = set(f for f in args.ignore.split(",") if f)

    base = load(args.baseline)
    fresh = load(args.fresh)

    if args.key is not None:
        key_fields = tuple(k for k in args.key.split(",") if k)
    else:
        key_fields = PROFILES.get(base.get("benchmark"), DEFAULT_KEY)

    failures = []

    if base.get("benchmark") != fresh.get("benchmark"):
        failures.append(f"benchmark name differs: {base.get('benchmark')!r} "
                        f"vs {fresh.get('benchmark')!r}")
    if base.get("schema_version") != fresh.get("schema_version"):
        failures.append(f"schema_version differs: {base.get('schema_version')}"
                        f" vs {fresh.get('schema_version')}")
    prov = fresh.get("provenance")
    if not isinstance(prov, dict) or "git_sha" not in prov:
        failures.append("fresh report lacks a provenance object with git_sha")

    base_rows = {row_key(r, key_fields, args.baseline): r
                 for r in base.get("rows", [])}
    fresh_rows = fresh.get("rows", [])
    if not fresh_rows:
        failures.append("fresh report has no rows")

    compared = 0
    for row in fresh_rows:
        key = row_key(row, key_fields, args.fresh)
        tag = "/".join(f"{k}={v:g}" if isinstance(v, (int, float)) else
                       f"{k}={v}" for k, v in zip(key_fields, key))
        ref = base_rows.get(key)
        if ref is None:
            failures.append(f"[{tag}] not in baseline — sweep changed; "
                            f"regenerate and commit {args.baseline}")
            continue
        for field in sorted(set(ref) & set(row)):
            if field in ignored or field in key_fields:
                continue
            want, got = ref[field], row[field]
            if isinstance(want, (int, float)) and isinstance(got, (int, float)):
                scale = max(abs(want), abs(got))
                drift = abs(got - want) / scale if scale > 0 else 0.0
                if drift > args.tolerance:
                    failures.append(
                        f"[{tag}] {field}: {want:g} -> {got:g} "
                        f"({drift:+.1%} > {args.tolerance:.1%})")
            elif want != got:
                failures.append(f"[{tag}] {field}: {want!r} -> {got!r}")
        missing = set(ref) - set(row) - ignored
        if missing:
            failures.append(f"[{tag}] fields dropped: {sorted(missing)}")
        compared += 1

    if failures:
        print(f"bench_gate: {args.fresh} vs {args.baseline}: "
              f"{len(failures)} failure(s)")
        for f in failures:
            print(f"  {f}")
        return 1
    sha = prov.get("git_sha", "?") if isinstance(prov, dict) else "?"
    print(f"bench_gate: {compared} row(s) within {args.tolerance:.1%} of "
          f"{args.baseline} (fresh build {sha})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
