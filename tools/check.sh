#!/usr/bin/env bash
# One-command verification gate: configure + build the plain tree and the
# three sanitizer trees, run the full test suite in each, and finish with
# every --smoke bench (self-checking, non-zero exit on violation) from the
# plain tree.
#
#   tools/check.sh              # everything (slow: four builds + suites)
#   CHECK_TREES=plain tools/check.sh        # just the tier-1 gate
#   CHECK_TREES="plain asan" JOBS=8 tools/check.sh
#
# Trees land in build-check-<name>/ next to the source tree, away from the
# default build/ so a developer's incremental tree is never clobbered.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
CHECK_TREES="${CHECK_TREES:-plain asan tsan ubsan}"

cmake_flags_for() {
  case "$1" in
    plain) echo "" ;;
    asan)  echo "-DRULETRIS_ASAN=ON" ;;
    tsan)  echo "-DRULETRIS_TSAN=ON" ;;
    ubsan) echo "-DRULETRIS_UBSAN=ON" ;;
    *) echo "unknown tree: $1" >&2; exit 2 ;;
  esac
}

for tree in $CHECK_TREES; do
  dir="$ROOT/build-check-$tree"
  echo "=== [$tree] configure + build -> $dir"
  # shellcheck disable=SC2046  # word-splitting the flags is intended
  cmake -S "$ROOT" -B "$dir" $(cmake_flags_for "$tree") \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$dir.configure.log" 2>&1 \
    || { tail -20 "$dir.configure.log"; exit 1; }
  cmake --build "$dir" -j "$JOBS" > "$dir.build.log" 2>&1 \
    || { tail -30 "$dir.build.log"; exit 1; }
  echo "=== [$tree] ctest"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
done

first_tree="${CHECK_TREES%% *}"
bench_dir="$ROOT/build-check-$first_tree/bench"
echo "=== smoke benches ($first_tree tree)"
for bench in chaos_recovery composition_scaling dag_extraction \
             fleet_throughput netplan recovery_latency runtime_scaling \
             tcam_scheduler traffic_engine warm_boot; do
  echo "--- $bench --smoke"
  "$bench_dir/$bench" --smoke > /dev/null \
    || { echo "SMOKE FAILED: $bench"; exit 1; }
done

# Perf gate: the fleet harness is virtual-time deterministic, so a smoke
# sweep must reproduce the committed baseline rows (same geometry cells)
# within float-printing noise. Drift means the modelled system changed —
# regenerate BENCH_fleet.json with `fleet_throughput --json` and commit it
# with the change that moved the numbers.
echo "=== fleet perf gate (smoke sweep vs committed BENCH_fleet.json)"
fleet_fresh="$ROOT/build-check-$first_tree/BENCH_fleet.smoke.json"
"$bench_dir/fleet_throughput" --smoke --json "$fleet_fresh" > /dev/null \
  || { echo "SMOKE FAILED: fleet_throughput (gate run)"; exit 1; }
python3 "$ROOT/tools/bench_gate.py" "$ROOT/BENCH_fleet.json" "$fleet_fresh" \
  || { echo "PERF GATE FAILED: fleet_throughput drifted from baseline"; exit 1; }

# Same gate for the chaos harness (fingerprint-exact, 2% numeric drift):
# clean rows prove the fault layer costs nothing when unused, chaos rows
# pin the recovery counters and latencies. Regenerate BENCH_chaos.json with
# `chaos_recovery --json` when the modelled system legitimately moves.
echo "=== chaos perf gate (vs committed BENCH_chaos.json)"
chaos_fresh="$ROOT/build-check-$first_tree/BENCH_chaos.smoke.json"
"$bench_dir/chaos_recovery" --smoke --json "$chaos_fresh" > /dev/null \
  || { echo "SMOKE FAILED: chaos_recovery (gate run)"; exit 1; }
python3 "$ROOT/tools/bench_gate.py" "$ROOT/BENCH_chaos.json" "$chaos_fresh" \
  || { echo "PERF GATE FAILED: chaos_recovery drifted from baseline"; exit 1; }

echo "=== all checks passed (trees: $CHECK_TREES)"
