// ruletris_sim — command-line driver for the whole pipeline.
//
// Composes named member tables (ClassBench files or synthetic generators)
// under a policy expression, replays a rule-update stream through a chosen
// compiler and switch firmware, and reports the paper's latency metrics.
//
//   ruletris_sim --policy "monitor + router"
//                --table monitor=gen:monitor:100 --table router=gen:router:1000
//                --churn monitor --updates 500 --compiler ruletris
//
//   ruletris_sim --policy "acl" --table acl=file:acl1_1k.rules --updates 100
//
// Table sources:  gen:router:N | gen:monitor:N | gen:firewall:N |
//                 gen:nat:N (requires a router table named "router") |
//                 file:PATH (ClassBench format)
// Compilers:      ruletris (DAG firmware) | covisor | baseline (priority fw)
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "bench/bench_util.h"
#include "classbench/format.h"
#include "classbench/generator.h"
#include "classbench/trace.h"
#include "dag/builder.h"
#include "compiler/baseline.h"
#include "compiler/covisor.h"
#include "compiler/policy_parser.h"
#include "compiler/ruletris_compiler.h"
#include "frozen/frozen.h"
#include "netplan/auditor.h"
#include "netplan/fleet.h"
#include "netplan/materialize.h"
#include "netplan/planner.h"
#include "netplan/policy.h"
#include "netplan/topology.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/sharded_controller.h"
#include "runtime/warm_boot.h"
#include "runtime/workload.h"
#include "switchsim/adapters.h"
#include "switchsim/switch.h"
#include "switchsim/traffic_engine.h"
#include "tcam/cacheflow.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using namespace ruletris;
using compiler::PolicySpec;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;

struct Options {
  std::string policy;
  std::vector<std::pair<std::string, std::string>> tables;  // name -> source
  std::string churn;                // leaf receiving the update stream
  std::string compiler = "ruletris";
  size_t updates = 200;
  uint64_t seed = 1;
  std::string trace_in;    // replay this trace instead of random churn
  std::string trace_out;   // record the generated stream here
  std::optional<size_t> capacity;   // default: sized from the composed table
  size_t dag_threads = 0;  // 0 = serial minimum-DAG extraction
  size_t compile_threads = 0;  // 0 = serial composition full compiles
  std::string json_out;    // machine-readable report path
  std::string freeze_out;  // --freeze: write the final frozen artifact here
  std::string thaw_in;     // --thaw: warm boot from this artifact, no compile
  bool verbose = false;

  // Data-plane traffic mode (--traffic): instead of a rule-update stream,
  // drive a Zipf flow workload through a CacheFlow'd TCAM + tuple-space
  // slow path over the composed table and report hit rate / pkts per sec.
  bool traffic = false;
  size_t flows = 1 << 20;             // --flows
  double zipf_alpha = 1.0;            // --zipf-alpha
  std::optional<double> flow_churn;   // --flow-churn (or numeric --churn)
  size_t packets = 50000;             // --packets (per epoch)
  size_t epochs = 4;                  // --epochs
  size_t threads = 1;                 // --threads (lookup shards)

  // Network-wide update mode (--netplan): project the composed policy onto
  // a topology, plan a consistent update to a mutated version of it, drive
  // the rounds through the fleet-gated runtime and audit per-packet
  // consistency between every round.
  bool netplan = false;
  std::string topology = "random:8:4:3";  // --topology
  std::string planner = "auto";           // --planner

  // Asynchronous runtime mode (--runtime): replicate the compiled epoch log
  // to N concurrent switch sessions instead of one synchronous switch.
  bool runtime = false;
  size_t switches = 8;                    // --switches
  size_t window = 4;                      // --window (in-flight epochs)
  std::optional<uint64_t> fault_seed;     // --fault-seed: enables chaos mix
  std::optional<double> crash_p;          // --crash-p: firmware crash per journaled op
  std::optional<double> corrupt_p;        // --corrupt-p: per-frame bit flip

  // Sharded fleet mode (--fleet): K compile shards churn N switches'
  // policies and publish sealed epochs lock-free to M dispatch threads.
  // Needs no --policy/--table: the fleet builds its own per-switch
  // mon ∥ rtr workload from --seed.
  bool fleet = false;
  size_t shards = 2;                      // --shards (compile shards)
  // Fleet chaos: --chaos arms the default schedule (shard kills + agent
  // blackouts on brownout wires); --shard-kill-ms adds one shard kill per
  // occurrence (shard 1, 2, ... at the given virtual compile time);
  // --quarantine-after overrides the silent-round escalation bound.
  bool chaos = false;
  std::vector<double> shard_kill_ms;      // --shard-kill-ms (repeatable)
  std::optional<size_t> quarantine_after; // --quarantine-after
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --policy EXPR --table NAME=SOURCE [--table ...]\n"
               "          [--churn NAME] [--updates N] [--seed S]\n"
               "          [--compiler ruletris|covisor|baseline]\n"
               "          [--tcam-capacity N] [--dag-threads N]\n"
               "          [--compile-threads N] [--verbose]\n"
               "          [--trace FILE | --emit-trace FILE] [--json FILE]\n"
               "          [--freeze FILE] [--thaw FILE]\n"
               "          [--runtime] [--switches N] [--window W] [--fault-seed S]\n"
               "          [--crash-p P] [--corrupt-p P]\n"
               "          [--traffic] [--flows N] [--zipf-alpha A]\n"
               "          [--flow-churn R] [--packets N] [--epochs N]\n"
               "          [--threads N]\n"
               "          [--netplan] [--topology SPEC]\n"
               "          [--planner rounds|two-phase|auto|oneshot]\n"
               "          [--fleet] [--switches N] [--shards K] [--threads T]\n"
               "          [--chaos] [--shard-kill-ms T ...] [--quarantine-after N]\n"
               "  SOURCE: gen:router:N | gen:monitor:N | gen:firewall:N |\n"
               "          gen:nat:N | file:PATH\n"
               "  --runtime replicates the compiled update stream to N\n"
               "  concurrent switch sessions over a simulated wire; with\n"
               "  --fault-seed the wire drops/duplicates/delays frames and\n"
               "  restarts agents (deterministically, from the seed).\n"
               "  --crash-p makes agent firmware crash mid-transaction with\n"
               "  probability P per journaled op (journal recovery rolls the\n"
               "  torn TCAM back or forward before resync); --corrupt-p flips\n"
               "  a wire bit per frame with probability P (CRC-caught,\n"
               "  NACK-retransmitted). Both imply faults even without\n"
               "  --fault-seed.\n"
               "  --freeze writes the post-churn compiled state + TCAM\n"
               "  layout as a frozen artifact (ruletris compiler only);\n"
               "  --thaw skips compilation entirely: it maps a frozen\n"
               "  artifact and warm-boots a DAG scheduler from it (no\n"
               "  --policy/--table needed).\n"
               "  --netplan projects the composed policy onto a topology\n"
               "  (SPEC: chain:N | diamond | random:N:EXTRA:SEED), plans a\n"
               "  consistent network-wide update to a seeded mutation of it,\n"
               "  drives the barrier-fenced rounds through the fleet runtime\n"
               "  (--fault-seed/--crash-p/--corrupt-p apply) and audits\n"
               "  per-packet consistency between every round; exits non-zero\n"
               "  on any mixed-version observation. --planner picks the\n"
               "  discipline; oneshot is the inconsistent baseline the\n"
               "  auditor is expected to catch.\n"
               "  --fleet runs the sharded compile pipeline: K compile\n"
               "  shards churn N switches' policies (bursty locality-heavy\n"
               "  updates, --updates per switch) and publish sealed epochs\n"
               "  lock-free to T dispatch threads pumping the sessions. No\n"
               "  --policy/--table needed. The run repeats single-threaded\n"
               "  and exits non-zero if any fingerprint differs (cross-\n"
               "  thread determinism violation), a session fails to\n"
               "  converge, or an RTDZ delta replay audit fails. --chaos\n"
               "  arms the fleet fault schedule: shard kills (each\n"
               "  --shard-kill-ms T kills the next shard, starting at shard\n"
               "  1, when its virtual compile clock reaches T; default one\n"
               "  kill at 0.5 ms), agent blackout windows, brownout wires\n"
               "  and quarantine after N silent retry rounds\n"
               "  (--quarantine-after, default 3). Survivors adopt orphaned\n"
               "  switches from the published delta blobs; quarantined\n"
               "  switches re-admit via warm-boot catch-up. Exits non-zero\n"
               "  on any determinism, failover, re-admission or rejoin\n"
               "  audit violation.\n"
               "  --traffic replaces the update stream with a Zipf-skewed\n"
               "  flow workload (N concurrent flows, skew A, flow expiry\n"
               "  rate R per packet) against a CacheFlow'd TCAM backed by\n"
               "  the tuple-space slow path; reports cache hit rate and\n"
               "  packets/s. In traffic mode a numeric --churn value is\n"
               "  read as the flow churn rate.\n",
               argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--policy") {
      opt.policy = need_value(i);
    } else if (arg == "--table") {
      const std::string spec = need_value(i);
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) usage(argv[0]);
      opt.tables.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--churn") {
      opt.churn = need_value(i);
    } else if (arg == "--updates") {
      opt.updates = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value(i));
    } else if (arg == "--compiler") {
      opt.compiler = need_value(i);
    } else if (arg == "--tcam-capacity") {
      opt.capacity = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--dag-threads") {
      opt.dag_threads = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--compile-threads") {
      opt.compile_threads = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--json") {
      opt.json_out = need_value(i);
    } else if (arg == "--freeze") {
      opt.freeze_out = need_value(i);
    } else if (arg == "--thaw") {
      opt.thaw_in = need_value(i);
    } else if (arg == "--trace") {
      opt.trace_in = need_value(i);
    } else if (arg == "--emit-trace") {
      opt.trace_out = need_value(i);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--runtime") {
      opt.runtime = true;
    } else if (arg == "--switches") {
      opt.switches = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--window") {
      opt.window = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--fault-seed") {
      opt.fault_seed = std::stoull(need_value(i));
    } else if (arg == "--crash-p") {
      opt.crash_p = std::stod(need_value(i));
    } else if (arg == "--corrupt-p") {
      opt.corrupt_p = std::stod(need_value(i));
    } else if (arg == "--fleet") {
      opt.fleet = true;
    } else if (arg == "--chaos") {
      opt.chaos = true;
    } else if (arg == "--shard-kill-ms") {
      opt.chaos = true;
      opt.shard_kill_ms.push_back(std::stod(need_value(i)));
    } else if (arg == "--quarantine-after") {
      opt.chaos = true;
      opt.quarantine_after = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--shards") {
      opt.shards = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--netplan") {
      opt.netplan = true;
    } else if (arg == "--topology") {
      opt.topology = need_value(i);
    } else if (arg == "--planner") {
      opt.planner = need_value(i);
    } else if (arg == "--traffic") {
      opt.traffic = true;
    } else if (arg == "--flows") {
      opt.flows = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--zipf-alpha") {
      opt.zipf_alpha = std::stod(need_value(i));
    } else if (arg == "--flow-churn") {
      opt.flow_churn = std::stod(need_value(i));
    } else if (arg == "--packets") {
      opt.packets = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--epochs") {
      opt.epochs = static_cast<size_t>(std::stoul(need_value(i)));
    } else if (arg == "--threads") {
      opt.threads = static_cast<size_t>(std::stoul(need_value(i)));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (opt.thaw_in.empty() && !opt.fleet &&
      (opt.policy.empty() || opt.tables.empty())) {
    usage(argv[0]);
  }
  return opt;
}

std::vector<Rule> make_table(const std::string& source,
                             const std::map<std::string, std::vector<Rule>>& built,
                             util::Rng& rng) {
  if (source.rfind("file:", 0) == 0) {
    auto parsed = classbench::load_classbench_file(source.substr(5));
    std::printf("  loaded %zu filters -> %zu TCAM rules (+%zu range expansion)\n",
                parsed.filters, parsed.rules.size(), parsed.expansion_overhead);
    return std::move(parsed.rules);
  }
  if (source.rfind("gen:", 0) != 0) {
    throw std::runtime_error("bad table source: " + source);
  }
  const size_t second = source.find(':', 4);
  if (second == std::string::npos) throw std::runtime_error("bad gen spec: " + source);
  const std::string kind = source.substr(4, second - 4);
  const size_t n = static_cast<size_t>(std::stoul(source.substr(second + 1)));
  if (kind == "router") return classbench::generate_router(n, rng);
  if (kind == "monitor") return classbench::generate_monitor(n, rng);
  if (kind == "firewall") return classbench::generate_firewall(n, rng);
  if (kind == "nat") {
    auto it = built.find("router");
    if (it == built.end()) {
      throw std::runtime_error("gen:nat needs a table named 'router' defined first");
    }
    return classbench::generate_nat(n, it->second, rng);
  }
  throw std::runtime_error("unknown generator: " + kind);
}

Rule make_replacement(const std::string& source,
                      const std::map<std::string, std::vector<Rule>>& built,
                      util::Rng& rng) {
  if (source.rfind("gen:nat", 0) == 0) {
    return classbench::random_nat_rule(built.at("router"), 100, rng);
  }
  // Monitor-style replacement works for every other profile.
  return classbench::random_monitor_rule(100, rng);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  util::set_log_level(opt.verbose ? util::LogLevel::kInfo : util::LogLevel::kError);
  // Thread count for every minimum-DAG extraction the pipeline performs
  // (LeafNode bootstrap and any full rebuilds). 0 keeps the serial path.
  dag::set_default_build_threads(opt.dag_threads);
  // Worker count for composition full compiles (ComposedNode bootstrap);
  // 0 keeps the serial path.
  {
    compiler::CompileOptions copts;
    copts.n_threads = opt.compile_threads;
    compiler::set_default_compile_options(copts);
  }
  bench::init_json(argc, argv, "ruletris_sim");

  try {
    if (!opt.thaw_in.empty()) {
      // Warm boot: map the artifact, size a TCAM from its frozen layout,
      // and restore a scheduler straight from the blob sections.
      util::Stopwatch map_watch;
      runtime::ThawedController thawed(opt.thaw_in);
      const double map_ms = map_watch.elapsed_ms();

      size_t capacity = opt.capacity.value_or(0);
      if (capacity == 0) {
        for (const auto& l : thawed.image().tables.at(0).layout) {
          capacity = std::max(capacity, static_cast<size_t>(l.addr) + 1);
        }
        capacity += capacity / 8 + 128;  // slack for post-boot inserts
      }
      tcam::Tcam tcam(capacity);
      tcam::DagScheduler sched(tcam);
      util::Stopwatch warm_watch;
      const size_t restored = thawed.restore_scheduler(0, sched);
      const double warm_ms = warm_watch.elapsed_ms();

      std::printf("thawed %s: epoch %llu, %zu entries into a %zu-slot TCAM\n",
                  opt.thaw_in.c_str(),
                  static_cast<unsigned long long>(thawed.epoch()), restored,
                  capacity);
      std::printf("  map+validate %.3f ms | warm boot %.3f ms | layout %s\n",
                  map_ms, warm_ms, sched.layout_valid() ? "valid" : "INVALID");
      if (auto* j = bench::json()) {
        j->meta("mode", "thaw");
        j->begin_row();
        j->field("map_ms", map_ms);
        j->field("warm_boot_ms", warm_ms);
        j->field("restored_entries", static_cast<double>(restored));
        j->field("tcam_capacity", static_cast<double>(capacity));
        bench::write_json();
      }
      return sched.layout_valid() ? 0 : 1;
    }

    if (opt.fleet) {
      // Sharded fleet: self-contained workload, so no --policy/--table.
      // Run at the requested thread count, then repeat single-threaded and
      // require bit-identical fingerprints — the CLI doubles as the
      // determinism gate CI can call directly.
      runtime::FleetSpec fspec;
      fspec.n_switches = opt.switches;
      fspec.n_shards = opt.shards;
      fspec.n_threads = opt.threads;
      fspec.updates_per_switch = opt.updates;
      fspec.seed = opt.seed;
      fspec.knobs.window = opt.window;
      if (opt.fault_seed) {
        fspec.knobs.faults = runtime::FaultSpec::chaos();
        fspec.fault_seed = *opt.fault_seed;
      }
      if (opt.crash_p) fspec.knobs.faults.crash_p = *opt.crash_p;
      if (opt.corrupt_p) fspec.knobs.faults.corrupt_p = *opt.corrupt_p;
      if (opt.capacity) fspec.tcam_capacity = *opt.capacity;
      if (opt.chaos) {
        // Default chaos: brownout wires, quarantine after 3 silent rounds,
        // one shard kill at 0.5 ms (override with --shard-kill-ms, one
        // kill per occurrence on shards 1, 2, ...) and an agent blackout
        // on the last switch.
        fspec.knobs.faults = runtime::FaultSpec::brownout();
        if (opt.crash_p) fspec.knobs.faults.crash_p = *opt.crash_p;
        if (opt.corrupt_p) fspec.knobs.faults.corrupt_p = *opt.corrupt_p;
        fspec.knobs.retry.quarantine_after =
            opt.quarantine_after.value_or(3);
        std::vector<double> kills = opt.shard_kill_ms;
        if (kills.empty()) kills.push_back(0.5);
        for (size_t k = 0; k < kills.size(); ++k) {
          fspec.chaos.shard_kills.push_back({k + 1, kills[k]});
        }
        fspec.chaos.blackouts.push_back(
            {fspec.n_switches - 1, {30.0, 300.0}});
      }

      std::printf("fleet: %zu switches / %zu shards / %zu threads, "
                  "%zu bursty updates per switch%s\n",
                  fspec.n_switches, fspec.n_shards, fspec.n_threads,
                  opt.updates, opt.chaos ? " [chaos]" : "");
      const runtime::FleetReport report =
          runtime::ShardedController(fspec).run();

      bool deterministic = true;
      if (fspec.n_threads > 1) {
        runtime::FleetSpec serial = fspec;
        serial.n_threads = 1;
        const runtime::FleetReport ref =
            runtime::ShardedController(serial).run();
        deterministic = ref.fleet_fingerprint == report.fleet_fingerprint &&
                        ref.delta_fingerprint == report.delta_fingerprint &&
                        ref.layout_fingerprint == report.layout_fingerprint;
      }
      const bool recovery_clean =
          report.failover_ok && report.runtime.readmit_failures == 0 &&
          report.runtime.rejoin_audit_violations == 0 &&
          report.readmissions == report.quarantines;

      std::printf("  %.0f updates/s sustained (%zu rule ops, makespan "
                  "%.1f ms, compile %.1f ms)\n",
                  report.updates_per_s(), report.rule_ops,
                  report.makespan_ms, report.compile_vt_ms);
      std::printf("  ack p50/p99 %.2f/%.2f ms | %zu sealed epochs | "
                  "%zu steals | wall %.0f ms\n",
                  report.runtime.ack_ms.median(), report.runtime.ack_ms.p99(),
                  report.shard_steps, report.steals, report.wall_ms);
      std::printf("  converged %s | replay audits %zu/%s | "
                  "cross-thread determinism %s\n",
                  report.runtime.all_converged ? "yes" : "NO",
                  report.replay_audits, report.replay_ok ? "ok" : "FAILED",
                  deterministic ? "ok" : "VIOLATED");
      if (opt.chaos) {
        std::printf("  chaos: %zu shard kills (%zu escaped), %zu failovers "
                    "(%s), %zu quarantines, %zu re-admissions (%s)\n",
                    report.shard_kills, report.kills_escaped,
                    report.failovers, report.failover_ok ? "ok" : "FAILED",
                    report.quarantines, report.readmissions,
                    recovery_clean ? "clean" : "VIOLATED");
      }
      if (auto* j = bench::json()) {
        j->meta("mode", "fleet");
        j->begin_row();
        j->field("switches", static_cast<double>(report.switches));
        j->field("shards", static_cast<double>(report.shards));
        j->field("threads", static_cast<double>(report.threads));
        j->field("rule_ops", static_cast<double>(report.rule_ops));
        j->field("updates_per_s", report.updates_per_s());
        j->field("makespan_ms", report.makespan_ms);
        j->field("compile_vt_ms", report.compile_vt_ms);
        j->field("ack_p50_ms", report.runtime.ack_ms.median());
        j->field("ack_p99_ms", report.runtime.ack_ms.p99());
        j->field("fleet_fingerprint",
                 util::strfmt("%016llx", static_cast<unsigned long long>(
                                             report.fleet_fingerprint)));
        j->field("delta_fingerprint",
                 util::strfmt("%016llx", static_cast<unsigned long long>(
                                             report.delta_fingerprint)));
        j->field("layout_fingerprint",
                 util::strfmt("%016llx", static_cast<unsigned long long>(
                                             report.layout_fingerprint)));
        j->field("converged", report.runtime.all_converged ? 1.0 : 0.0);
        j->field("replay_ok", report.replay_ok ? 1.0 : 0.0);
        j->field("deterministic", deterministic ? 1.0 : 0.0);
        j->field("shard_kills", static_cast<double>(report.shard_kills));
        j->field("failovers", static_cast<double>(report.failovers));
        j->field("failover_ok", report.failover_ok ? 1.0 : 0.0);
        j->field("quarantines", static_cast<double>(report.quarantines));
        j->field("readmissions", static_cast<double>(report.readmissions));
        j->field("readmit_failures",
                 static_cast<double>(report.runtime.readmit_failures));
        j->field("rejoin_audit_violations",
                 static_cast<double>(report.runtime.rejoin_audit_violations));
        j->field("wall_ms", report.wall_ms);
        bench::write_json();
      }
      return (report.runtime.all_converged && report.replay_ok &&
              deterministic && recovery_clean) ? 0 : 1;
    }

    const PolicySpec spec = compiler::parse_policy(opt.policy);
    std::printf("policy: %s\n", compiler::policy_to_string(spec).c_str());

    // Build member tables.
    util::Rng rng(opt.seed);
    std::map<std::string, std::vector<Rule>> built;
    std::map<std::string, std::string> sources;
    for (const auto& [name, source] : opt.tables) {
      std::printf("table %s <- %s\n", name.c_str(), source.c_str());
      built[name] = make_table(source, built, rng);
      sources[name] = source;
      std::printf("  %zu rules\n", built[name].size());
    }
    for (const std::string& leaf : spec.leaf_names()) {
      if (!built.count(leaf)) {
        std::fprintf(stderr, "error: policy references undefined table '%s'\n",
                     leaf.c_str());
        return 2;
      }
    }

    auto tables_for = [&] {
      std::map<std::string, FlowTable> t;
      for (const auto& [name, rules] : built) t.emplace(name, FlowTable{rules});
      return t;
    };

    if (opt.traffic) {
      // A numeric --churn is the flow churn rate in this mode.
      double churn_rate = opt.flow_churn.value_or(0.0);
      if (!opt.flow_churn && !opt.churn.empty()) {
        try {
          size_t used = 0;
          const double v = std::stod(opt.churn, &used);
          if (used == opt.churn.size()) churn_rate = v;
        } catch (const std::exception&) {
          // a table name; traffic mode ignores it
        }
      }

      compiler::RuleTrisCompiler frontend(spec, tables_for());
      const std::vector<Rule> composed = frontend.root().visible_rules_in_order();
      const FlowTable composed_table{composed};
      // A cache only makes sense when it is smaller than the table.
      const size_t capacity =
          opt.capacity.value_or(std::max<size_t>(64, composed.size() / 4));
      tcam::CacheFlowManager mgr(composed_table.rules(),
                                 frontend.root().visible_graph(),
                                 tcam::CacheFlowManager::Mode::kDagFirmware,
                                 capacity);

      switchsim::TrafficConfig cfg;
      cfg.flows = opt.flows;
      cfg.zipf_alpha = opt.zipf_alpha;
      cfg.churn_rate = churn_rate;
      cfg.packets_per_epoch = opt.packets;
      cfg.epochs = opt.epochs;
      cfg.seed = opt.seed;
      cfg.n_threads = std::max<size_t>(1, opt.threads);
      switchsim::TrafficEngine engine(mgr, composed_table.rules(), cfg);
      const switchsim::TrafficReport report = engine.run();

      std::printf("\ntraffic: %zu flows (alpha %.2f, churn %.3f), "
                  "%zu epochs x %zu packets, %zu lookup threads\n",
                  opt.flows, opt.zipf_alpha, churn_rate, opt.epochs,
                  opt.packets, cfg.n_threads);
      std::printf("  composed table : %zu rules; TCAM capacity %zu "
                  "(%zu cached, %zu covers)\n",
                  composed.size(), capacity, mgr.cached_count(),
                  mgr.cover_count());
      std::printf("  cache hit rate : %.4f  (slow-path tuples: %zu)\n",
                  report.hit_rate(), mgr.soft_table().tuple_count());
      std::printf("  lookup rate    : %.0f pkts/s\n", report.pkts_per_s());
      std::printf("  cache update   : %zu swaps, %zu entry writes, "
                  "%.1f ms total TCAM time\n",
                  report.swaps, report.entry_writes, report.update_ms);
      std::printf("  flow churn     : %zu remaps\n", report.churn_events);
      std::printf("  consistency    : %zu violations (must be 0)\n",
                  report.consistency_violations);

      if (auto* j = bench::json()) {
        j->meta("policy", compiler::policy_to_string(spec));
        j->meta("mode", "traffic");
        j->meta("seed", static_cast<double>(opt.seed));
        j->begin_row();
        j->field("flows", static_cast<double>(opt.flows));
        j->field("zipf_alpha", opt.zipf_alpha);
        j->field("flow_churn", churn_rate);
        j->field("packets", static_cast<double>(report.packets));
        j->field("threads", static_cast<double>(cfg.n_threads));
        j->field("tcam_capacity", static_cast<double>(capacity));
        j->field("hit_rate", report.hit_rate());
        j->field("pkts_per_s", report.pkts_per_s());
        j->field("swaps", static_cast<double>(report.swaps));
        j->field("entry_writes", static_cast<double>(report.entry_writes));
        j->field("update_ms", report.update_ms);
        j->field("churn_events", static_cast<double>(report.churn_events));
        j->field("consistency_violations",
                 static_cast<double>(report.consistency_violations));
        bench::write_json();
      }
      return report.consistency_violations == 0 ? 0 : 1;
    }

    if (opt.netplan) {
      if (opt.compiler != "ruletris") {
        std::fprintf(stderr,
                     "error: --netplan requires the ruletris compiler\n");
        return 2;
      }
      const netplan::Topology topo = netplan::Topology::parse(opt.topology);
      const netplan::Strategy strategy = netplan::parse_strategy(opt.planner);

      compiler::RuleTrisCompiler frontend(spec, tables_for());
      const netplan::NetworkPolicy old_policy = netplan::policy_from_rules(
          topo, frontend.root().visible_rules_in_order(), opt.seed);

      // The "new" policy: a seeded mutation of the projected one — a
      // fraction rerouted, a few flows dropped, a couple added.
      netplan::MutationSpec mut;
      mut.reroute_fraction = 0.4;
      mut.drop_flows = old_policy.flows.size() / 10;
      mut.seed = opt.seed ^ 0x9e77;
      {
        util::Rng add_rng(opt.seed ^ 0xadd5);
        mut.add_matches.push_back(
            classbench::random_monitor_rule(100, add_rng).match);
        mut.add_matches.push_back(
            classbench::random_monitor_rule(100, add_rng).match);
      }
      const netplan::NetworkPolicy new_policy =
          netplan::mutate_policy(topo, old_policy, mut);

      netplan::PlannerConfig pcfg;
      pcfg.strategy = strategy;
      pcfg.tcam_capacity = opt.capacity.value_or(0);
      const netplan::UpdatePlan plan =
          netplan::plan_update(topo, old_policy, new_policy, pcfg);

      netplan::AuditConfig acfg;
      acfg.seed = opt.seed ^ 0xa0d17;
      const auto old_tables = netplan::tables_from(plan.initial);
      const auto new_tables = netplan::tables_from(plan.final_tables);
      const netplan::ConsistencyAuditor auditor(topo, old_policy, new_policy,
                                                old_tables, new_tables, acfg);

      // Planner-side audit: simulated tables at every round boundary.
      size_t sim_audits = 0, sim_mixed = 0;
      {
        auto mid = netplan::tables_from(plan.initial);
        const auto check = [&] {
          const auto rep = auditor.audit(netplan::tables_lookup(mid));
          ++sim_audits;
          sim_mixed += rep.mixed;
          for (const auto& v : rep.violations) {
            util::log_info("sim audit: " + v);
          }
        };
        check();
        for (const auto& round : plan.rounds) {
          netplan::apply_round(round, mid);
          check();
        }
      }

      // Runtime: lower the plan to per-switch epoch logs and drive the
      // fleet-gated sessions, auditing the live TCAMs at every barrier.
      const auto scripts = netplan::materialize(topo, plan);
      netplan::FleetConfig fcfg;
      fcfg.runtime.knobs.window = opt.window;
      if (opt.fault_seed) {
        fcfg.runtime.knobs.faults = runtime::FaultSpec::chaos();
        fcfg.runtime.fault_seed = *opt.fault_seed;
      }
      if (opt.crash_p || opt.corrupt_p) {
        if (!opt.fault_seed) fcfg.runtime.fault_seed = opt.seed;
        if (opt.crash_p) fcfg.runtime.knobs.faults.crash_p = *opt.crash_p;
        if (opt.corrupt_p) fcfg.runtime.knobs.faults.corrupt_p = *opt.corrupt_p;
      }
      fcfg.runtime.n_threads = std::max<size_t>(1, opt.threads);
      fcfg.runtime.tcam_capacity =
          opt.capacity.value_or(plan.peak_switch_rules + 32);

      netplan::FleetController fleet(scripts, fcfg);
      size_t live_audits = 0, live_mixed = 0;
      const netplan::FleetReport freport =
          fleet.run([&](size_t epoch, double barrier_ms) {
            (void)epoch;
            (void)barrier_ms;
            const auto rep = auditor.audit(fleet.lookup());
            ++live_audits;
            live_mixed += rep.mixed;
            for (const auto& v : rep.violations) {
              util::log_info("fleet audit: " + v);
            }
          });

      size_t crashes = 0, restarts = 0;
      for (const auto& s : freport.merged.sessions) {
        crashes += s.crashes;
        restarts += s.restarts;
      }

      std::printf("\nnetplan: %s (%zu switches), planner %s\n",
                  opt.topology.c_str(), topo.switch_count(),
                  netplan::strategy_name(strategy));
      std::printf("  policy    : %zu -> %zu flows (%zu changed: "
                  "%zu two-phase / %zu rounds, %zu forced)\n",
                  old_policy.flows.size(), new_policy.flows.size(),
                  plan.flows_changed, plan.flows_two_phase, plan.flows_rounds,
                  plan.flows_forced_two_phase);
      std::printf("  plan      : %zu rounds; rules %zu -> %zu "
                  "(peak %zu, overhead %.1f%%)\n",
                  plan.rounds.size(), plan.initial_rules, plan.final_rules,
                  plan.peak_rules, plan.overhead_pct());
      std::printf("  sim audit : %zu probes x %zu boundaries, %zu mixed\n",
                  auditor.probe_count(), sim_audits, sim_mixed);
      std::printf("  fleet     : makespan %.2f ms, %zu crashes, %zu restarts, "
                  "completed %s, converged %s\n",
                  freport.makespan_ms(), crashes, restarts,
                  freport.completed ? "yes" : "NO",
                  freport.merged.all_converged ? "yes" : "NO");
      std::printf("  live audit: %zu boundaries, %zu mixed\n", live_audits,
                  live_mixed);
      const bool consistent = sim_mixed == 0 && live_mixed == 0;
      std::printf("  consistency: %s\n",
                  consistent ? "clean" : "VIOLATED (mixed-version traces)");

      if (auto* j = bench::json()) {
        j->meta("policy", compiler::policy_to_string(spec));
        j->meta("mode", "netplan");
        j->meta("topology", opt.topology);
        j->meta("seed", static_cast<double>(opt.seed));
        j->begin_row();
        j->field("planner", netplan::strategy_name(strategy));
        j->field("switches", static_cast<double>(topo.switch_count()));
        j->field("flows_old", static_cast<double>(old_policy.flows.size()));
        j->field("flows_new", static_cast<double>(new_policy.flows.size()));
        j->field("flows_changed", static_cast<double>(plan.flows_changed));
        j->field("flows_two_phase", static_cast<double>(plan.flows_two_phase));
        j->field("rounds", static_cast<double>(plan.rounds.size()));
        j->field("initial_rules", static_cast<double>(plan.initial_rules));
        j->field("final_rules", static_cast<double>(plan.final_rules));
        j->field("peak_rules", static_cast<double>(plan.peak_rules));
        j->field("overhead_pct", plan.overhead_pct());
        j->field("makespan_ms", freport.makespan_ms());
        j->field("sim_audits", static_cast<double>(sim_audits));
        j->field("sim_violations", static_cast<double>(sim_mixed));
        j->field("live_audits", static_cast<double>(live_audits));
        j->field("live_violations", static_cast<double>(live_mixed));
        j->field("crashes", static_cast<double>(crashes));
        j->field("restarts", static_cast<double>(restarts));
        j->field("completed", freport.completed ? 1.0 : 0.0);
        j->field("converged", freport.merged.all_converged ? 1.0 : 0.0);
        bench::write_json();
      }
      return (consistent && freport.completed && freport.merged.all_converged)
                 ? 0
                 : 1;
    }

    if (!opt.freeze_out.empty() && opt.compiler != "ruletris") {
      std::fprintf(stderr,
                   "error: --freeze requires the ruletris compiler\n");
      return 2;
    }
    const std::string churn =
        opt.churn.empty() ? spec.leaf_names().front() : opt.churn;
    if (!built.count(churn)) {
      std::fprintf(stderr, "error: churn table '%s' undefined\n", churn.c_str());
      return 2;
    }

    if (opt.runtime) {
      if (opt.compiler != "ruletris") {
        std::fprintf(stderr,
                     "error: --runtime requires the ruletris compiler "
                     "(DAG firmware)\n");
        return 2;
      }
      runtime::ChurnSpec churn_spec;
      churn_spec.leaf = churn;
      churn_spec.updates = opt.updates;
      churn_spec.seed = opt.seed ^ 0x5eed;
      const std::string churn_source = sources.at(churn);
      churn_spec.make_rule = [&](util::Rng& r) {
        return make_replacement(churn_source, built, r);
      };

      util::Stopwatch compile_watch;
      const runtime::CompiledWorkload workload =
          runtime::compile_churn_workload(spec, tables_for(), churn_spec);
      const double compile_wall_ms = compile_watch.elapsed_ms();

      runtime::RuntimeConfig cfg;
      cfg.n_switches = opt.switches;
      cfg.knobs.window = opt.window;
      if (opt.fault_seed) {
        cfg.knobs.faults = runtime::FaultSpec::chaos();
        cfg.fault_seed = *opt.fault_seed;
      }
      if (opt.crash_p || opt.corrupt_p) {
        // Crash/corruption layer on top of whatever wire mix is active
        // (a clean wire unless --fault-seed picked the chaos mix).
        if (!opt.fault_seed) cfg.fault_seed = opt.seed;
        if (opt.crash_p) cfg.knobs.faults.crash_p = *opt.crash_p;
        if (opt.corrupt_p) cfg.knobs.faults.corrupt_p = *opt.corrupt_p;
      }
      cfg.n_threads = std::min<size_t>(
          opt.switches, std::max(1u, std::thread::hardware_concurrency()));
      cfg.tcam_capacity = opt.capacity.value_or(workload.suggested_capacity());

      runtime::Controller controller(cfg);
      util::Stopwatch wall;
      const runtime::RuntimeReport report =
          controller.run(workload.epochs, workload.final_rules);
      const double wall_ms = wall.elapsed_ms();

      size_t converged = 0, dropped = 0;
      for (const auto& s : report.sessions) {
        if (s.converged) ++converged;
        dropped += s.wire.dropped;
      }
      std::string wire_desc =
          opt.fault_seed
              ? "chaos faults (seed " + std::to_string(*opt.fault_seed) + ")"
              : "fault-free wire";
      if (opt.crash_p) {
        wire_desc += ", crash_p " + std::to_string(*opt.crash_p);
      }
      if (opt.corrupt_p) {
        wire_desc += ", corrupt_p " + std::to_string(*opt.corrupt_p);
      }
      std::printf("\nruntime: %zu switches, window %zu, %zu epochs, %s\n",
                  report.sessions.size(), cfg.knobs.window, report.epochs,
                  wire_desc.c_str());
      std::printf("  compiled %zu epochs in %.1f ms; replicated in %.1f ms wall\n",
                  report.epochs, compile_wall_ms, wall_ms);
      std::printf("  virtual makespan : %.2f ms   throughput : %.0f updates/s\n",
                  report.makespan_ms, report.updates_per_s());
      std::printf("  ack latency  : %s ms (p99 %.3f)\n",
                  report.ack_ms.summary("").c_str(), report.ack_ms.p99());
      std::printf("  channel      : %s ms\n", report.channel_ms.summary("").c_str());
      std::printf("  tcam         : %s ms\n", report.tcam_ms.summary("").c_str());
      std::printf("  tcam writes  : %zu (%zu moves), %.2f writes/epoch\n",
                  report.entry_writes, report.moves,
                  report.entry_writes_per_epoch());
      std::printf("  firmware(wall): %s ms\n",
                  report.firmware_ms.summary("").c_str());
      std::printf("  frames %zu (retransmits %zu, resync replays %zu), "
                  "drops %zu, duplicates %zu\n",
                  report.data_frames_sent, report.retransmits,
                  report.resync_replays, dropped, report.duplicates);
      std::printf("  restarts %zu, resyncs %zu, timeouts %zu\n",
                  report.restarts, report.resyncs, report.timeouts);
      if (cfg.knobs.faults.crash_p > 0 || cfg.knobs.faults.corrupt_p > 0) {
        std::printf("  crashes %zu (roll-forwards %zu, recovered writes %zu); "
                    "nacks %zu (resent %zu)\n",
                    report.crashes, report.roll_forwards,
                    report.recovered_writes, report.nacks,
                    report.nack_retransmits);
      }
      std::printf("  converged: %s (%zu/%zu)\n",
                  report.all_converged ? "yes" : "NO", converged,
                  report.sessions.size());

      if (auto* j = bench::json()) {
        j->meta("policy", compiler::policy_to_string(spec));
        j->meta("mode", "runtime");
        j->meta("churn", churn);
        j->meta("seed", static_cast<double>(opt.seed));
        j->begin_row();
        j->field("switches", static_cast<double>(report.sessions.size()));
        j->field("window", static_cast<double>(cfg.knobs.window));
        j->field("epochs", static_cast<double>(report.epochs));
        j->field("fault_seed",
                 opt.fault_seed ? static_cast<double>(*opt.fault_seed) : -1.0);
        j->field("makespan_ms", report.makespan_ms);
        j->field("updates_per_s", report.updates_per_s());
        j->field("ack_p50_ms", report.ack_ms.median());
        j->field("ack_p99_ms", report.ack_ms.p99());
        j->field("channel_p50_ms", report.channel_ms.median());
        j->field("tcam_p50_ms", report.tcam_ms.median());
        j->field("entry_writes", static_cast<double>(report.entry_writes));
        j->field("moves", static_cast<double>(report.moves));
        j->field("entry_writes_per_epoch", report.entry_writes_per_epoch());
        j->field("frames", static_cast<double>(report.data_frames_sent));
        j->field("retransmits", static_cast<double>(report.retransmits));
        j->field("resyncs", static_cast<double>(report.resyncs));
        j->field("restarts", static_cast<double>(report.restarts));
        j->field("crashes", static_cast<double>(report.crashes));
        j->field("roll_forwards", static_cast<double>(report.roll_forwards));
        j->field("nacks", static_cast<double>(report.nacks));
        j->field("converged", report.all_converged ? 1.0 : 0.0);
        bench::write_json();
      }
      return report.all_converged ? 0 : 1;
    }

    // Build the chosen compiler and its switch.
    util::Samples compile_ms, firmware_ms, tcam_ms, channel_ms;
    util::Stopwatch initial_watch;

    // The churn stream: either replayed from a trace file, or synthesized
    // (and optionally recorded for later replay).
    classbench::UpdateTrace trace;
    if (!opt.trace_in.empty()) {
      std::ifstream in(opt.trace_in);
      if (!in) throw std::runtime_error("cannot open trace " + opt.trace_in);
      trace = classbench::parse_trace(in);
      std::printf("replaying %zu trace steps from %s\n", trace.steps.size(),
                  opt.trace_in.c_str());
    } else {
      const std::string churn_source = sources.at(churn);
      trace = classbench::synthesize_churn_trace(
          built.at(churn).size(), opt.updates, opt.seed ^ 0x5eed,
          [&](util::Rng& r) { return make_replacement(churn_source, built, r); });
      if (!opt.trace_out.empty()) {
        std::ofstream out(opt.trace_out);
        classbench::write_trace(out, trace);
        std::printf("recorded churn trace to %s\n", opt.trace_out.c_str());
      }
    }

    auto run_stream = [&](auto& frontend, auto deliver, size_t composed_size) {
      std::printf("composed table: %zu rules; initial compile %.1f ms\n",
                  composed_size, initial_watch.elapsed_ms());
      std::vector<RuleId> by_add_index;  // 1-based trace add references
      size_t pending_compile_updates = 0;
      double pending_compile_ms = 0.0;
      for (const auto& step : trace.steps) {
        util::Stopwatch watch;
        if (step.kind == classbench::TraceStep::Kind::kDelete) {
          const RuleId victim =
              step.ref < 0
                  ? built.at(churn)[static_cast<size_t>(-step.ref - 1)].id
                  : by_add_index[static_cast<size_t>(step.ref - 1)];
          auto upd = frontend.remove(churn, victim);
          pending_compile_ms += watch.elapsed_ms();
          ++pending_compile_updates;
          deliver(upd);
        } else {
          for (const Rule& r : step.rules) {
            by_add_index.push_back(r.id);
            auto upd = frontend.insert(churn, r);
            pending_compile_ms += watch.elapsed_ms();
            deliver(upd);
            watch.restart();
          }
        }
        // One logical update = one delete + one insert.
        if (pending_compile_updates == 1 &&
            step.kind == classbench::TraceStep::Kind::kAdd) {
          compile_ms.add(pending_compile_ms);
          pending_compile_ms = 0.0;
          pending_compile_updates = 0;
        }
      }
      (void)composed_size;
    };

    if (opt.compiler == "ruletris") {
      compiler::RuleTrisCompiler frontend(spec, tables_for());
      const size_t composed = frontend.root().visible_size();
      switchsim::SimulatedSwitch sw(
          switchsim::FirmwareMode::kDag,
          opt.capacity.value_or(composed + composed / 8 + 128));
      compiler::TableUpdate initial;
      initial.added = frontend.root().visible_rules_in_order();
      for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
      initial.dag.added_edges = frontend.root().visible_graph().edges();
      sw.deliver(switchsim::to_messages(initial));
      run_stream(frontend,
                 [&](const auto& upd) {
                   const auto m = sw.deliver(switchsim::to_messages(upd));
                   firmware_ms.add(m.firmware_ms);
                   tcam_ms.add(m.tcam_ms);
                   channel_ms.add(m.channel_ms);
                 },
                 composed);
      if (!opt.freeze_out.empty()) {
        // Final compiled state + the switch's converged TCAM layout, as a
        // warm-boot artifact for a later --thaw run.
        util::Stopwatch freeze_watch;
        frozen::PolicyImage image =
            frozen::capture_policy(frontend, 1 + trace.steps.size());
        frozen::capture_layout(image.tables[0], sw.tcam());
        const frozen::Bytes blob = frozen::freeze(image);
        frozen::write_blob_file(opt.freeze_out, blob);
        std::printf("froze epoch %zu to %s (%.1f KiB, %.2f ms)\n",
                    1 + trace.steps.size(), opt.freeze_out.c_str(),
                    blob.size() / 1024.0, freeze_watch.elapsed_ms());
      }
    } else if (opt.compiler == "covisor" || opt.compiler == "baseline") {
      auto run_prioritized = [&](auto& frontend) {
        const size_t composed = frontend.compiled().size();
        switchsim::SimulatedSwitch sw(
            switchsim::FirmwareMode::kPriority,
            opt.capacity.value_or(composed + composed / 8 + 128));
        compiler::PrioritizedUpdate initial;
        for (const Rule& r : frontend.compiled()) {
          initial.push_back(compiler::PrioritizedOp::add(r));
        }
        sw.deliver(switchsim::to_messages(initial));
        run_stream(frontend,
                   [&](const auto& upd) {
                     const auto m = sw.deliver(switchsim::to_messages(upd));
                     firmware_ms.add(m.firmware_ms);
                     tcam_ms.add(m.tcam_ms);
                     channel_ms.add(m.channel_ms);
                   },
                   composed);
      };
      if (opt.compiler == "covisor") {
        compiler::CovisorCompiler frontend(spec, tables_for());
        run_prioritized(frontend);
      } else {
        compiler::BaselineCompiler frontend(spec, tables_for());
        run_prioritized(frontend);
      }
    } else {
      std::fprintf(stderr, "error: unknown compiler '%s'\n", opt.compiler.c_str());
      return 2;
    }

    std::printf("\n%zu trace steps through '%s' churning '%s':\n",
                trace.steps.size(), opt.compiler.c_str(), churn.c_str());
    std::printf("  compile  : %s ms\n", compile_ms.summary("").c_str());
    std::printf("  firmware : %s ms\n", firmware_ms.summary("").c_str());
    std::printf("  tcam     : %s ms\n", tcam_ms.summary("").c_str());
    std::printf("  channel  : %s ms (from encoded bytes)\n",
                channel_ms.summary("").c_str());
    std::printf("  total med: %.3f ms/update\n",
                compile_ms.median() + firmware_ms.median() + tcam_ms.median());

    if (auto* j = bench::json()) {
      j->meta("policy", compiler::policy_to_string(spec));
      j->meta("compiler", opt.compiler);
      j->meta("churn", churn);
      j->meta("dag_threads", static_cast<double>(opt.dag_threads));
      j->meta("seed", static_cast<double>(opt.seed));
      j->begin_row();
      j->field("updates", static_cast<double>(trace.steps.size()));
      j->field("compile_med_ms", compile_ms.median());
      j->field("compile_p10_ms", compile_ms.p10());
      j->field("compile_p90_ms", compile_ms.p90());
      j->field("firmware_med_ms", firmware_ms.median());
      j->field("firmware_p10_ms", firmware_ms.p10());
      j->field("firmware_p90_ms", firmware_ms.p90());
      j->field("tcam_med_ms", tcam_ms.median());
      j->field("tcam_p10_ms", tcam_ms.p10());
      j->field("tcam_p90_ms", tcam_ms.p90());
      j->field("channel_med_ms", channel_ms.median());
      j->field("channel_p90_ms", channel_ms.p90());
      j->field("total_med_ms",
               compile_ms.median() + firmware_ms.median() + tcam_ms.median());
      bench::write_json();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
