// Quickstart: the paper's Figure 2, end to end.
//
// Five ternary rules sit in a six-slot TCAM with one free slot at the
// bottom. Rule 6 ("0*0") must be inserted between Rule 1 and Rule 2.
//  * Priority-based firmware preserves every relative position implied by
//    the integer priorities and moves FOUR entries.
//  * The RuleTris DAG scheduler knows Rule 6 is independent of Rules 3 and 4
//    and moves only TWO.
#include <cstdio>
#include <map>

#include "dag/builder.h"
#include "flowspace/rule.h"
#include "tcam/dag_scheduler.h"
#include "tcam/priority_firmware.h"

using namespace ruletris;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;

namespace {

// Three-bit patterns from Fig. 2, embedded in the top bits of dst_ip.
Rule pattern_rule(const char* bits, int priority) {
  TernaryMatch m;
  uint32_t value = 0, mask = 0;
  for (int i = 0; i < 3; ++i) {
    if (bits[i] != '*') {
      mask |= 1u << (2 - i);
      if (bits[i] == '1') value |= 1u << (2 - i);
    }
  }
  m.set_ternary(FieldId::kDstIp, value << 29, mask << 29);
  return Rule::make(m, ActionList{Action::forward(static_cast<uint32_t>(priority))},
                    priority);
}

void dump(const char* title, const tcam::Tcam& tcam,
          const std::map<flowspace::RuleId, const char*>& names) {
  std::printf("%s\n", title);
  for (size_t a = tcam.capacity(); a-- > 0;) {
    if (auto id = tcam.at(a)) {
      std::printf("  [%zu] rule %-3s prio=%d\n", a, names.at(*id),
                  tcam.rule(*id).priority);
    } else {
      std::printf("  [%zu] (free)\n", a);
    }
  }
}

}  // namespace

int main() {
  // The member table of Fig. 2(a), priorities included.
  Rule r1 = pattern_rule("00*", 20);
  Rule r2 = pattern_rule("**0", 15);
  Rule r3 = pattern_rule("0*1", 15);
  Rule r4 = pattern_rule("**1", 10);
  Rule r5 = pattern_rule("***", 5);
  Rule r6 = pattern_rule("0*0", 17);  // to be inserted between 1 and 2

  std::map<flowspace::RuleId, const char*> names{
      {r1.id, "1"}, {r2.id, "2"}, {r3.id, "3"}, {r4.id, "4"}, {r5.id, "5"}, {r6.id, "6"},
  };

  std::printf("== RuleTris quickstart: the Fig. 2 insert ==\n\n");

  // --- Priority-based firmware: four moves (Fig. 2(b)).
  {
    // The paper's starting layout: rules 1..5 from the top, the only free
    // slot at the very bottom.
    tcam::Tcam tcam(6);
    tcam.write(5, r1);
    tcam.write(4, r2);
    tcam.write(3, r3);
    tcam.write(2, r4);
    tcam.write(1, r5);
    tcam::PriorityFirmware firmware(tcam);
    dump("priority firmware, before insert:", tcam, names);
    const auto before = tcam.stats();
    firmware.insert(r6);
    std::printf("priority firmware inserted rule 6 with %zu entry moves (Fig. 2(b))\n\n",
                tcam.stats().moves - before.moves);
    dump("priority firmware, after insert:", tcam, names);
  }

  // --- DAG scheduler: two moves.
  {
    // Build the minimum DAG of the final six-rule table, then install the
    // first five rules and replay the insert.
    FlowTable table{std::vector<Rule>{r1, r2, r3, r4, r5, r6}};
    const auto graph = dag::build_min_dag(table);

    tcam::Tcam tcam(6);
    tcam::DagScheduler scheduler(tcam);
    scheduler.graph() = graph;
    // Same initial layout as the hardware: 1..5 from the top.
    tcam.write(5, r1);
    tcam.write(4, r2);
    tcam.write(3, r3);
    tcam.write(2, r4);
    tcam.write(1, r5);
    tcam::DagScheduler fresh(tcam);  // re-sync occupancy with the layout
    fresh.graph() = graph;

    std::printf("\nminimum DAG of the six rules:\n");
    for (const auto& [u, v] : graph.edges()) {
      std::printf("  %s -> %s   (%s must be matched first)\n", names.at(u),
                  names.at(v), names.at(v));
    }

    dump("\nDAG scheduler, before insert:", tcam, names);
    fresh.insert(r6);
    std::printf("DAG scheduler inserted rule 6 with %zu entry moves (Fig. 2(c))\n\n",
                fresh.last_chain_moves());
    dump("DAG scheduler, after insert:", tcam, names);
  }

  std::printf(
      "\nSame semantics, half the TCAM writes. That asymmetry is the paper's\n"
      "whole point, and it grows to ~20x on real tables and update streams\n"
      "(see bench/fig9_parallel and bench/fig10_sequential).\n");
  return 0;
}
