// Example: sequential composition "NAT > router" — the paper's second
// evaluation scenario, at demo scale.
//
// Highlights the rewrite pull-back of Sec. IV-A: a NAT rule rewrites the
// destination address, so the router rules it sequentially composes with
// must have their matches pulled back through that rewrite.
#include <cstdio>
#include <map>

#include "classbench/generator.h"
#include "compiler/ruletris_compiler.h"
#include "flowspace/field.h"

using namespace ruletris;
using compiler::PolicySpec;
using compiler::RuleTrisCompiler;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;

int main() {
  util::Rng rng(4242);
  const auto router = classbench::generate_router(30, rng);
  const auto nat = classbench::generate_nat(8, router, rng);

  std::printf("== nat(8) > router(30) ==\n\nNAT table:\n");
  const FlowTable nat_table{nat};
  for (const Rule& r : nat_table.rules()) {
    std::printf("  %s\n", r.to_string().c_str());
  }

  std::map<std::string, FlowTable> tables;
  tables.emplace("nat", FlowTable{nat});
  tables.emplace("router", FlowTable{router});
  RuleTrisCompiler compiler(
      PolicySpec::sequential(PolicySpec::leaf("nat"), PolicySpec::leaf("router")),
      tables);

  const auto composed = compiler.root().visible_rules_in_order();
  std::printf("\ncomposed table: %zu rules, DAG: %zu edges\n", composed.size(),
              compiler.root().visible_graph().edge_count());

  // Show the derived rules of one translation: the composed match keeps the
  // public destination, while the actions carry the rewrite plus the
  // forwarding decision the *private* address receives in the router.
  const Rule& translation = nat.front();
  std::printf("\ntranslation %s\nderives:\n", translation.to_string().c_str());
  for (const Rule& r : composed) {
    if (translation.match.subsumes(r.match) && r.match.field(FieldId::kDstIp).mask == 0xffffffffu &&
        r.match.field(FieldId::kDstIp).value ==
            translation.match.field(FieldId::kDstIp).value) {
      std::printf("  %s\n", r.to_string().c_str());
    }
  }

  // The passthrough default replicates the router below everything else.
  std::printf("\nlast rules of the composed table (the untranslated fall-through):\n");
  for (size_t i = composed.size() > 3 ? composed.size() - 3 : 0; i < composed.size(); ++i) {
    std::printf("  %s\n", composed[i].to_string().c_str());
  }

  // Live update: replace one translation and show the delta.
  const Rule fresh = classbench::random_nat_rule(router, 8, rng);
  auto removed = compiler.remove("nat", translation.id);
  auto added = compiler.insert("nat", fresh);
  std::printf("\nreplacing that translation: -%zu composed rules, +%zu composed "
              "rules,\n  DAG delta: -%zu edges +%zu edges\n",
              removed.removed.size(), added.added.size(),
              removed.dag.removed_edges.size() + added.dag.removed_edges.size(),
              removed.dag.added_edges.size() + added.dag.added_edges.size());
  return 0;
}
