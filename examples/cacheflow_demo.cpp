// Example: CacheFlow rule caching with cover sets (Sec. V-C).
//
// A 200-rule forwarding database backs a 16-entry TCAM cache. Caching a rule
// whose dependencies are absent installs punt ("to_software") cover rules
// above it, so the fast path can never return a wrong answer; evicting a
// rule that others still depend on demotes it to a cover instead.
#include <cstdio>

#include "classbench/generator.h"
#include "dag/builder.h"
#include "tcam/cacheflow.h"

using namespace ruletris;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using tcam::CacheFlowManager;

namespace {

void dump(const CacheFlowManager& mgr) {
  const auto& tcam = mgr.tcam();
  std::printf("TCAM (%zu/%zu occupied, %zu covers):\n", tcam.occupied(),
              tcam.capacity(), mgr.cover_count());
  for (size_t a = tcam.capacity(); a-- > 0;) {
    if (auto id = tcam.at(a)) {
      const Rule& r = tcam.rule(*id);
      const bool punt = r.actions.contains(flowspace::ActionType::kToSoftware);
      std::printf("  [%2zu] %s%s\n", a, r.to_string().c_str(),
                  punt ? "   <- cover (punt)" : "");
    }
  }
}

}  // namespace

int main() {
  util::Rng rng(7);
  const FlowTable fib{classbench::generate_router(200, rng)};
  const auto graph = dag::build_min_dag(fib);

  CacheFlowManager mgr(fib.rules(), graph, CacheFlowManager::Mode::kDagFirmware, 16);

  // Find a rule nested a couple of prefixes deep (the default route would
  // need a cover per neighbour — far too many for a 16-entry cache).
  RuleId deep = 0;
  size_t deps = 0;
  for (const Rule& r : fib.rules()) {
    const size_t n = graph.successors(r.id).size();
    if (n >= 2 && n <= 3) {
      deps = n;
      deep = r.id;
      break;
    }
  }
  std::printf("== caching rule with %zu direct dependencies ==\n%s\n\n", deps,
              fib.rule(deep).to_string().c_str());
  mgr.install(deep);
  dump(mgr);

  // Promote one cover to the real rule.
  const RuleId dep = *graph.successors(deep).begin();
  std::printf("\n== installing the real dependency %s ==\n",
              fib.rule(dep).to_string().c_str());
  mgr.install(dep);
  dump(mgr);

  // Evict it again: it must be demoted back to a cover, not dropped.
  std::printf("\n== evicting it again (dependants remain) ==\n");
  mgr.evict(dep);
  dump(mgr);

  // The fast path is always either right or punts.
  size_t punts = 0, hits = 0, misses = 0;
  for (int i = 0; i < 10000; ++i) {
    flowspace::Packet p;
    if (i % 2 == 0) {
      // Half the traffic lands inside the cached prefix.
      const auto& ft = fib.rule(deep).match.field(flowspace::FieldId::kDstIp);
      p.set(flowspace::FieldId::kDstIp, ft.value | (rng.next_u32() & ~ft.mask));
    } else {
      p.set(flowspace::FieldId::kDstIp, rng.next_u32());
    }
    const Rule* r = mgr.tcam().lookup(p);
    if (r == nullptr) {
      ++misses;
    } else if (r->actions.contains(flowspace::ActionType::kToSoftware)) {
      ++punts;
    } else {
      ++hits;
    }
    if (!mgr.lookup_consistent(p)) {
      std::printf("INCONSISTENT fast-path answer — bug!\n");
      return 1;
    }
  }
  std::printf("\n10000 random packets: %zu fast-path hits, %zu punts, %zu misses "
              "(all consistent with the full table)\n",
              hits, punts, misses);
  return 0;
}
