// Example: parallel composition of a monitoring app and an L3 router —
// the paper's first evaluation scenario, at demo scale.
//
// Shows the full RuleTris pipeline: compose two member tables, inspect the
// composed table and its minimum DAG, push everything to a simulated switch,
// then apply one live monitoring-rule update and watch how few TCAM writes
// it takes.
#include <cstdio>
#include <map>

#include "classbench/generator.h"
#include "compiler/ruletris_compiler.h"
#include "switchsim/adapters.h"
#include "switchsim/switch.h"

using namespace ruletris;
using compiler::PolicySpec;
using compiler::RuleTrisCompiler;
using compiler::TableUpdate;
using flowspace::FlowTable;
using flowspace::Rule;

int main() {
  util::Rng rng(2016);

  // Member tables: 12 monitoring filters, a 40-entry router.
  const auto monitor = classbench::generate_monitor(12, rng);
  const auto router = classbench::generate_router(40, rng);

  std::map<std::string, FlowTable> tables;
  tables.emplace("monitor", FlowTable{monitor});
  tables.emplace("router", FlowTable{router});

  // Policy: monitor + router (parallel composition).
  RuleTrisCompiler compiler(
      PolicySpec::parallel(PolicySpec::leaf("monitor"), PolicySpec::leaf("router")),
      tables);

  const auto composed = compiler.root().visible_rules_in_order();
  std::printf("== monitor(12) + router(40) ==\n");
  std::printf("composed table: %zu rules, DAG: %zu edges\n\n", composed.size(),
              compiler.root().visible_graph().edge_count());
  std::printf("first rules of the composed table (matched first):\n");
  for (size_t i = 0; i < composed.size() && i < 6; ++i) {
    std::printf("  %s\n", composed[i].to_string().c_str());
  }

  // Ship the whole thing to a DAG-firmware switch.
  switchsim::SimulatedSwitch sw(switchsim::FirmwareMode::kDag, 96);
  TableUpdate initial;
  initial.added = composed;
  for (const Rule& r : composed) initial.dag.added_vertices.push_back(r.id);
  initial.dag.added_edges = compiler.root().visible_graph().edges();
  const auto install = sw.deliver(switchsim::to_messages(initial));
  std::printf("\ninitial install: %zu entry writes, %.1f ms of TCAM time\n",
              install.entry_writes, install.tcam_ms);

  // One live update: replace a monitoring filter.
  const Rule fresh = classbench::random_monitor_rule(12, rng);
  std::printf("\nreplacing monitor rule with: %s\n", fresh.to_string().c_str());
  const TableUpdate removed = compiler.remove("monitor", monitor[3].id);
  const TableUpdate added = compiler.insert("monitor", fresh);
  const auto m1 = sw.deliver(switchsim::to_messages(removed));
  const auto m2 = sw.deliver(switchsim::to_messages(added));
  std::printf("update removed %zu + added %zu composed rules\n",
              removed.removed.size(), added.added.size());
  std::printf("switch applied it with %zu entry writes (%zu moves): %.1f ms\n",
              m1.entry_writes + m2.entry_writes, m1.moves + m2.moves,
              m1.tcam_ms + m2.tcam_ms);
  std::printf("\n(the same update through a priority-based pipeline shifts "
              "entire blocks;\nrun bench/fig9_parallel for the full comparison)\n");
  return 0;
}
