// Lowers an UpdatePlan into per-switch runtime epoch logs.
//
// Epoch 1 installs each switch's initial projected table plus its full
// minimum DAG; epoch 1 + r carries round r's delta for that switch (an
// empty, barrier-only batch when the round does not touch it — every
// switch's log has the same length, so fleet round r is the same epoch
// number everywhere). DAG deltas are computed per switch per round by
// diffing the minimum DAGs of the before/after tables — exactly the
// update record the RuleTris back-end consumes.
#pragma once

#include <vector>

#include "flowspace/rule.h"
#include "netplan/planner.h"
#include "proto/messages.h"

namespace ruletris::netplan {

struct SwitchScript {
  std::vector<proto::MessageBatch> epochs;  // install + one per round
  std::vector<flowspace::Rule> expected;    // final table (convergence check)
};

std::vector<SwitchScript> materialize(const Topology& topo,
                                      const UpdatePlan& plan);

}  // namespace ruletris::netplan
