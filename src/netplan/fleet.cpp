#include "netplan/fleet.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace ruletris::netplan {

using runtime::SessionConfig;
using runtime::SessionStats;
using runtime::SwitchSession;

FleetController::FleetController(const std::vector<SwitchScript>& scripts,
                                 const FleetConfig& cfg)
    : cfg_(cfg) {
  const size_t n = scripts.size();
  if (n == 0) throw std::invalid_argument("fleet: no switch scripts");
  expected_.reserve(n);
  logs_.reserve(n);
  sessions_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    expected_.push_back(scripts[i].expected);
    logs_.push_back(runtime::encode_log(scripts[i].epochs));
    epochs_ = std::max(epochs_, logs_.back()->size());
  }
  for (const auto& log : logs_) {
    if (log->size() != epochs_) {
      // Round r must be the same epoch number on every switch, or the
      // gate would align different rounds behind one barrier.
      throw std::invalid_argument("fleet: switch scripts differ in length");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    SessionConfig sc;
    sc.knobs = cfg_.runtime.knobs;
    sc.seed = util::hash_pair(cfg_.runtime.fault_seed, i + 1);
    const size_t expected_n = expected_[i].size();
    sc.tcam_capacity = cfg_.runtime.tcam_capacity != 0
                           ? cfg_.runtime.tcam_capacity
                           : expected_n + expected_n / 8 + 128;
    sessions_.push_back(std::make_unique<SwitchSession>(sc, *logs_[i]));
  }
}

FleetController::~FleetController() = default;

LookupFn FleetController::lookup() const {
  return [this](SwitchId sw, const flowspace::Packet& p)
             -> const flowspace::Rule* {
    if (sw >= sessions_.size()) return nullptr;
    return sessions_[sw]->agent().device().tcam().lookup(p);
  };
}

FleetReport FleetController::run(const RoundObserver& between_rounds) {
  if (ran_) throw std::logic_error("fleet: run() called twice");
  ran_ = true;

  const size_t n = sessions_.size();
  FleetReport report;
  report.rounds = epochs_ > 0 ? epochs_ - 1 : 0;

  for (auto& session : sessions_) {
    session->set_send_limit(0);  // nothing leaves before the first gate
    session->start();
  }

  const size_t pool_threads =
      cfg_.runtime.n_threads > 1 ? std::min(cfg_.runtime.n_threads, n) : 0;
  util::ThreadPool* pool = nullptr;
  std::unique_ptr<util::ThreadPool> pool_storage;
  if (pool_threads > 1) {
    pool_storage = std::make_unique<util::ThreadPool>(pool_threads);
    pool = pool_storage.get();
  }

  std::vector<char> ok(n, 1);
  for (size_t epoch = 1; epoch <= epochs_ && report.completed; ++epoch) {
    auto step = [&](size_t i) {
      sessions_[i]->set_send_limit(epoch);
      ok[i] = sessions_[i]->run_until_committed(epoch) ? 1 : 0;
    };
    if (pool) {
      for (size_t i = 0; i < n; ++i) pool->run([&step, i] { step(i); });
      pool->wait_idle();
    } else {
      for (size_t i = 0; i < n; ++i) step(i);
    }

    // Fleet barrier: the round ends when the slowest switch commits; every
    // clock parks there so the next round's sends share a common origin.
    double barrier = 0.0;
    for (const auto& session : sessions_) {
      barrier = std::max(barrier, session->now_ms());
    }
    for (auto& session : sessions_) session->advance_clock(barrier);
    report.round_end_ms.push_back(barrier);

    for (size_t i = 0; i < n; ++i) {
      if (!ok[i]) report.completed = false;
    }
    if (report.completed && between_rounds) between_rounds(epoch, barrier);
  }

  std::vector<SessionStats> results(n);
  auto finish = [&](size_t i) { results[i] = sessions_[i]->finalize(expected_[i]); };
  if (pool) {
    for (size_t i = 0; i < n; ++i) pool->run([&finish, i] { finish(i); });
    pool->wait_idle();
  } else {
    for (size_t i = 0; i < n; ++i) finish(i);
  }

  report.merged = runtime::merge_session_stats(std::move(results));
  return report;
}

}  // namespace ruletris::netplan
