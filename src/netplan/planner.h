// The network-wide consistent-update planner.
//
// Given the old and new NetworkPolicy, plan_update() emits an ordered
// schedule of per-switch, barrier-fenced rounds that transitions the fabric
// without any packet ever observing a mixed old/new policy. Two disciplines
// are available, chosen per flow:
//
//  * kRounds — dependency-ordered rounds. New rules install downstream-
//    first along the flow's new path (the egress-most hop lands in the
//    earliest round), the ingress/divergence hop flips in a single commit
//    round, and old rules garbage-collect upstream-first. At every round
//    boundary each flow's reachable rule suffix is complete, so any packet
//    follows either the full old path or the full new path. Costs rounds
//    proportional to the path depth but only duplicates the *changed* hops.
//
//  * kTwoPhase — versioned rules. All new-version core rules install in one
//    prepare round, pinned to eth_type == version_tag(new) so they are
//    unreachable; the commit round swaps the ingress rule for one that
//    *stamps* the tag (the whole flow atomically jumps versions); one GC
//    round drops the old cores. Three rounds flat, but the entire new path
//    coexists with the old one between prepare and GC — the augmentation
//    half of the augmentation/speed tradeoff.
//
// kAuto picks per flow: flows whose diff touches >= 2 switches with
// modified rules are forced two-phase (no single commit point exists for
// dependency rounds); otherwise two-phase is preferred exactly when every
// switch on the flow's new path still has TCAM headroom for the duplicated
// rules, else the flow falls back to dependency rounds.
//
// kOneShot is the deliberately inconsistent baseline: each switch's entire
// delta applies in its own round, upstream-first — the adversarial
// interleaving an unsynchronized fan-out can produce. The consistency
// auditor must catch it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flowspace/rule.h"
#include "netplan/policy.h"
#include "netplan/topology.h"

namespace ruletris::netplan {

enum class Strategy : uint8_t { kRounds, kTwoPhase, kAuto, kOneShot };

const char* strategy_name(Strategy s);
/// Parses "rounds" | "two-phase" | "auto" | "oneshot"; throws otherwise.
Strategy parse_strategy(const std::string& name);

/// One switch's barrier-fenced batch within a round: removals apply before
/// additions (matching the wire batch layout [deletes..., adds..., fence]).
struct SwitchDelta {
  SwitchId sw = 0;
  std::vector<flowspace::RuleId> removes;
  std::vector<ProjectedRule> adds;
};

struct Round {
  std::string label;  // "add:0", "commit", "gc:1", "oneshot:s3"
  std::vector<SwitchDelta> deltas;  // at most one per switch, sorted by sw
};

struct PlannerConfig {
  Strategy strategy = Strategy::kAuto;
  /// Per-switch TCAM capacity the auto strategy budgets against; 0 means
  /// unbounded headroom (auto then always prefers two-phase).
  size_t tcam_capacity = 0;
};

struct UpdatePlan {
  Strategy strategy = Strategy::kAuto;
  std::vector<Round> rounds;
  SwitchTables initial;       // old projection (round 0 state)
  SwitchTables final_tables;  // state after the last round

  size_t flows_total = 0;
  size_t flows_changed = 0;    // flows with a non-empty diff
  size_t flows_two_phase = 0;  // rendered with version tags
  size_t flows_rounds = 0;     // rendered with dependency rounds
  size_t flows_forced_two_phase = 0;  // >= 2 commit points: no choice

  size_t initial_rules = 0;     // network-wide rule count before
  size_t final_rules = 0;       // and after
  size_t peak_rules = 0;        // max network-wide count at any boundary
  size_t peak_switch_rules = 0; // max single-switch count at any boundary

  /// Transient extra TCAM occupancy the schedule needs, relative to the
  /// larger endpoint — the "augmentation" cost.
  double overhead_pct() const {
    const size_t base = initial_rules > final_rules ? initial_rules : final_rules;
    if (base == 0) return 0.0;
    return 100.0 * static_cast<double>(peak_rules - base) /
           static_cast<double>(base);
  }
};

UpdatePlan plan_update(const Topology& topo, const NetworkPolicy& old_policy,
                       const NetworkPolicy& new_policy,
                       const PlannerConfig& cfg);

// ---- Planner-side simulation (tests and the between-round audit) --------

/// Materializes projected tables as FlowTables, indexed by SwitchId.
std::vector<flowspace::FlowTable> tables_from(const SwitchTables& tables);

/// Applies one round to the simulated per-switch tables (removes, then
/// adds — the order the wire batch applies in).
void apply_round(const Round& round, std::vector<flowspace::FlowTable>& tables);

}  // namespace ruletris::netplan
