#include "netplan/materialize.h"

#include <unordered_set>

#include "compiler/update.h"
#include "dag/builder.h"
#include "switchsim/adapters.h"

namespace ruletris::netplan {

using compiler::TableUpdate;
using dag::DagDelta;
using dag::DependencyGraph;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;

namespace {

/// Minimum-DAG delta between two table states: removed vertices mirror the
/// removed rules, removed edges only name surviving endpoints (removing a
/// vertex drops its incident edges implicitly), added edges cover both new
/// vertices and re-wired survivors.
DagDelta dag_delta(const DependencyGraph& before, const DependencyGraph& after,
                   const std::vector<RuleId>& removed,
                   const std::vector<Rule>& added) {
  DagDelta delta;
  delta.removed_vertices = removed;
  for (const Rule& r : added) delta.added_vertices.push_back(r.id);

  std::unordered_set<RuleId> gone(removed.begin(), removed.end());
  for (const auto& [u, v] : before.edges()) {
    if (gone.count(u) || gone.count(v)) continue;
    if (!after.has_edge(u, v)) delta.removed_edges.emplace_back(u, v);
  }
  for (const auto& [u, v] : after.edges()) {
    if (!before.has_edge(u, v)) delta.added_edges.emplace_back(u, v);
  }
  return delta;
}

}  // namespace

std::vector<SwitchScript> materialize(const Topology& topo,
                                      const UpdatePlan& plan) {
  const size_t n = topo.switch_count();
  std::vector<SwitchScript> scripts(n);

  // Round deltas re-indexed per switch (rounds touch sparse switch sets).
  std::vector<std::vector<const SwitchDelta*>> per_switch(
      n, std::vector<const SwitchDelta*>(plan.rounds.size(), nullptr));
  for (size_t r = 0; r < plan.rounds.size(); ++r) {
    for (const SwitchDelta& delta : plan.rounds[r].deltas) {
      per_switch[delta.sw][r] = &delta;
    }
  }

  for (size_t sw = 0; sw < n; ++sw) {
    SwitchScript& script = scripts[sw];

    std::vector<Rule> rules;
    rules.reserve(plan.initial[sw].size());
    for (const ProjectedRule& pr : plan.initial[sw]) rules.push_back(pr.rule);
    FlowTable table(std::move(rules));
    DependencyGraph graph = dag::build_min_dag(table);

    // Epoch 1: full install.
    TableUpdate install;
    install.added = table.rules();
    for (const Rule& r : install.added) install.dag.added_vertices.push_back(r.id);
    install.dag.added_edges = graph.edges();
    script.epochs.push_back(switchsim::to_messages(install));

    // Epoch 1 + r: round r's delta (possibly a barrier-only no-op).
    for (size_t r = 0; r < plan.rounds.size(); ++r) {
      const SwitchDelta* delta = per_switch[sw][r];
      TableUpdate update;
      if (delta) {
        update.removed = delta->removes;
        for (const ProjectedRule& pr : delta->adds) update.added.push_back(pr.rule);
        FlowTable next = table;
        for (RuleId id : delta->removes) next.erase(id);
        for (const Rule& r2 : update.added) next.insert(r2);
        DependencyGraph next_graph = dag::build_min_dag(next);
        update.dag = dag_delta(graph, next_graph, update.removed, update.added);
        table = std::move(next);
        graph = std::move(next_graph);
      }
      script.epochs.push_back(switchsim::to_messages(update));
    }

    script.expected = table.rules();
  }
  return scripts;
}

}  // namespace ruletris::netplan
