#include "netplan/policy.h"

#include <algorithm>
#include <stdexcept>

#include "util/hash.h"
#include "util/rng.h"

namespace ruletris::netplan {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::Rule;
using flowspace::TernaryMatch;

namespace {

/// True when the match can only fire inside the reserved version-tag
/// eth_type range — such a "policy" would collide with fabric tags.
bool match_inside_tag_range(const TernaryMatch& m) {
  const flowspace::FieldTernary& ft = m.field(FieldId::kEthType);
  return (ft.mask & kVersionTagBase) == kVersionTagBase &&
         (ft.value & kVersionTagBase) == kVersionTagBase;
}

Flow make_flow(const Topology& topo, uint32_t id, TernaryMatch match,
               uint64_t seed) {
  if (match_inside_tag_range(match)) {
    throw std::invalid_argument(
        "policy match constrained to the reserved version-tag eth_type range");
  }
  // The fabric repurposes in_port for path pinning; the policy's flow space
  // is the remaining header fields.
  match.set_wildcard(FieldId::kInPort);

  const std::vector<SwitchId> ingress_set = topo.ingress_switches();
  const uint64_t h1 = util::mix64(match.hash() ^ seed);
  const uint64_t h2 = util::mix64(h1 ^ 0x9e3779b97f4a7c15ull);
  const SwitchId ingress = ingress_set[h1 % ingress_set.size()];
  SwitchId egress = ingress_set[h2 % ingress_set.size()];
  if (egress == ingress && ingress_set.size() > 1) {
    egress = ingress_set[(h2 + 1) % ingress_set.size()];
  }
  Flow flow;
  flow.id = id;
  flow.match = std::move(match);
  flow.path = topo.shortest_path(ingress, egress);
  if (flow.path.empty()) flow.path = {ingress};  // disconnected: self-deliver
  return flow;
}

}  // namespace

SwitchTables project(const Topology& topo, const NetworkPolicy& policy,
                     const std::vector<FlowForm>& forms) {
  if (!forms.empty() && forms.size() != policy.flows.size()) {
    throw std::invalid_argument("project: forms/flows size mismatch");
  }
  SwitchTables tables(topo.switch_count());
  for (size_t i = 0; i < policy.flows.size(); ++i) {
    const Flow& flow = policy.flows[i];
    if (flow.path.empty()) throw std::invalid_argument("project: empty path");
    const bool tagged = !forms.empty() && forms[i] == FlowForm::kTagged;
    const int32_t priority =
        2 * (kFlowPriorityBase - static_cast<int32_t>(flow.id)) + (tagged ? 1 : 0);
    // Tag-matched core rules live in a band above every plain rule: a
    // stamped packet must never be captured by another flow's not-yet-GC'd
    // old rule, which matches it regardless of priority because plain
    // rules leave eth_type unconstrained. Within the band, flow-id order
    // is preserved, mirroring the plain band.
    const int32_t tagged_priority = priority + kTaggedPriorityBand;
    const uint32_t tag = version_tag(policy.version);

    for (size_t k = 0; k < flow.path.size(); ++k) {
      const SwitchId sw = flow.path[k];
      TernaryMatch m = flow.match;
      m.set_wildcard(FieldId::kInPort);
      if (k == 0) {
        m.set_exact(FieldId::kInPort, kHostPort);
      } else {
        const auto port = topo.port_to(sw, flow.path[k - 1]);
        if (!port) throw std::invalid_argument("project: path is not a walk");
        m.set_exact(FieldId::kInPort, *port);
        if (tagged) m.set_exact(FieldId::kEthType, tag);
      }
      ActionList actions;
      if (tagged && k == 0) actions.add(Action::set_field(FieldId::kEthType, tag));
      if (k + 1 < flow.path.size()) {
        const auto out = topo.port_to(sw, flow.path[k + 1]);
        if (!out) throw std::invalid_argument("project: path is not a walk");
        actions.add(Action::forward(*out));
      } else {
        actions.add(Action::forward(kHostPort));
      }

      ProjectedRule pr;
      const bool tagged_core = tagged && k > 0;
      pr.rule = Rule::make(std::move(m), std::move(actions),
                           tagged_core ? tagged_priority : priority);
      pr.flow = flow.id;
      pr.version = policy.version;
      pr.ingress = (k == 0);
      pr.tagged = tagged && k > 0;
      tables[sw].push_back(std::move(pr));
    }
  }
  return tables;
}

NetworkPolicy policy_from_rules(const Topology& topo,
                                const std::vector<flowspace::Rule>& rules,
                                uint64_t seed) {
  NetworkPolicy policy;
  policy.flows.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    policy.flows.push_back(
        make_flow(topo, static_cast<uint32_t>(i), rules[i].match, seed));
  }
  return policy;
}

NetworkPolicy policy_from_snapshot(const Topology& topo,
                                   const compiler::CompileSnapshot& snapshot,
                                   uint64_t seed) {
  NetworkPolicy policy;
  policy.flows.reserve(snapshot.entries.size());
  uint32_t id = 0;
  for (const auto& entry : snapshot.entries) {
    policy.flows.push_back(make_flow(topo, id++, std::get<2>(entry), seed));
  }
  return policy;
}

NetworkPolicy mutate_policy(const Topology& topo, const NetworkPolicy& policy,
                            const MutationSpec& spec) {
  util::Rng rng(util::mix64(spec.seed ^ 0x6e657470ull));
  NetworkPolicy next = policy;
  next.version = policy.version + 1;

  // Drops first: rerouting a flow that is about to disappear would waste
  // the reroute budget.
  for (size_t d = 0; d < spec.drop_flows && !next.flows.empty(); ++d) {
    const size_t victim = static_cast<size_t>(rng.next_below(next.flows.size()));
    next.flows.erase(next.flows.begin() + static_cast<ptrdiff_t>(victim));
  }

  for (Flow& flow : next.flows) {
    if (rng.next_double() >= spec.reroute_fraction) continue;
    const SwitchId ingress = flow.path.front();
    const SwitchId egress = flow.path.back();
    std::vector<SwitchId> repath;
    if (flow.path.size() > 2) {
      // Detour around a random intermediate hop.
      const size_t mid =
          1 + static_cast<size_t>(rng.next_below(flow.path.size() - 2));
      repath = topo.shortest_path_avoiding(ingress, egress, {flow.path[mid]});
    }
    if (repath.empty() || repath == flow.path) {
      // No detour: move the flow to a different egress instead.
      const std::vector<SwitchId> ingress_set = topo.ingress_switches();
      const SwitchId other =
          ingress_set[static_cast<size_t>(rng.next_below(ingress_set.size()))];
      if (other != egress && other != ingress) {
        repath = topo.shortest_path(ingress, other);
      }
    }
    if (!repath.empty() && repath != flow.path) flow.path = std::move(repath);
  }

  uint32_t next_id = 0;
  for (const Flow& f : next.flows) next_id = std::max(next_id, f.id + 1);
  for (const Flow& f : policy.flows) next_id = std::max(next_id, f.id + 1);
  for (const TernaryMatch& match : spec.add_matches) {
    next.flows.push_back(make_flow(topo, next_id++, match, spec.seed));
  }
  return next;
}

}  // namespace ruletris::netplan
