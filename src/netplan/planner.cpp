#include "netplan/planner.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace ruletris::netplan {

using flowspace::RuleId;
using flowspace::TernaryMatch;

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kRounds: return "rounds";
    case Strategy::kTwoPhase: return "two-phase";
    case Strategy::kAuto: return "auto";
    case Strategy::kOneShot: return "oneshot";
  }
  return "?";
}

Strategy parse_strategy(const std::string& name) {
  if (name == "rounds") return Strategy::kRounds;
  if (name == "two-phase" || name == "twophase") return Strategy::kTwoPhase;
  if (name == "auto") return Strategy::kAuto;
  if (name == "oneshot" || name == "one-shot") return Strategy::kOneShot;
  throw std::invalid_argument("unknown planner strategy: " + name +
                              " (want rounds, two-phase, auto, or oneshot)");
}

namespace {

constexpr size_t kNoPos = std::numeric_limits<size_t>::max();

size_t position_on(const Flow* flow, SwitchId sw) {
  if (!flow) return kNoPos;
  for (size_t k = 0; k < flow->path.size(); ++k) {
    if (flow->path[k] == sw) return k;
  }
  return kNoPos;
}

struct SiteDiff {
  enum Kind : uint8_t { kAdd, kRemove, kChange } kind = kAdd;
  SwitchId sw = 0;
  RuleId old_id = 0;    // kRemove / kChange
  size_t new_index = 0; // kAdd / kChange: index into new_tables[sw]
};

struct FlowDiff {
  std::vector<SiteDiff> sites;
  size_t adds = 0, removes = 0, changes = 0;
};

std::unordered_map<uint32_t, std::vector<std::pair<SwitchId, size_t>>>
sites_by_flow(const SwitchTables& tables) {
  std::unordered_map<uint32_t, std::vector<std::pair<SwitchId, size_t>>> by_flow;
  for (size_t sw = 0; sw < tables.size(); ++sw) {
    for (size_t i = 0; i < tables[sw].size(); ++i) {
      by_flow[tables[sw][i].flow].emplace_back(static_cast<SwitchId>(sw), i);
    }
  }
  return by_flow;
}

/// Diffs the two projections flow by flow. Rules identical in match,
/// actions and priority are *relinked*: the new projection adopts the old
/// rule id, so the runtime scripts carry no delta for them. Same-match
/// rules with different actions/priority become kChange (an atomic swap at
/// one switch — the commit point); everything else is kAdd/kRemove.
std::map<uint32_t, FlowDiff> diff_projections(const SwitchTables& old_tables,
                                              SwitchTables& new_tables) {
  auto old_sites = sites_by_flow(old_tables);
  auto new_sites = sites_by_flow(new_tables);

  std::map<uint32_t, FlowDiff> diffs;  // ordered: deterministic iteration
  std::vector<uint32_t> flow_ids;
  for (const auto& [id, _] : old_sites) flow_ids.push_back(id);
  for (const auto& [id, _] : new_sites) flow_ids.push_back(id);
  std::sort(flow_ids.begin(), flow_ids.end());
  flow_ids.erase(std::unique(flow_ids.begin(), flow_ids.end()), flow_ids.end());

  for (uint32_t id : flow_ids) {
    std::map<SwitchId, size_t> olds, news;
    if (auto it = old_sites.find(id); it != old_sites.end()) {
      for (const auto& [sw, i] : it->second) olds[sw] = i;
    }
    if (auto it = new_sites.find(id); it != new_sites.end()) {
      for (const auto& [sw, i] : it->second) news[sw] = i;
    }
    FlowDiff d;
    for (const auto& [sw, oi] : olds) {
      const ProjectedRule& o = old_tables[sw][oi];
      auto nit = news.find(sw);
      if (nit == news.end()) {
        d.sites.push_back({SiteDiff::kRemove, sw, o.rule.id, 0});
        ++d.removes;
        continue;
      }
      ProjectedRule& n = new_tables[sw][nit->second];
      if (o.rule.match == n.rule.match) {
        if (o.rule.actions == n.rule.actions &&
            o.rule.priority == n.rule.priority) {
          n.rule.id = o.rule.id;  // unchanged: no delta at all
        } else {
          d.sites.push_back({SiteDiff::kChange, sw, o.rule.id, nit->second});
          ++d.changes;
        }
      } else {
        d.sites.push_back({SiteDiff::kRemove, sw, o.rule.id, 0});
        d.sites.push_back({SiteDiff::kAdd, sw, 0, nit->second});
        ++d.removes;
        ++d.adds;
      }
    }
    for (const auto& [sw, ni] : news) {
      if (olds.count(sw)) continue;
      d.sites.push_back({SiteDiff::kAdd, sw, 0, ni});
      ++d.adds;
    }
    if (!d.sites.empty()) diffs.emplace(id, std::move(d));
  }
  return diffs;
}

/// Union-find over the *changed* flows: two changed flows whose matches
/// overlap can capture each other's packets mid-update, so their schedules
/// must not interleave — the whole conflict group goes two-phase. Disjoint
/// flows cannot interact (no packet matches both).
std::unordered_map<uint32_t, size_t> conflict_group_sizes(
    const std::vector<uint32_t>& changed,
    const std::unordered_map<uint32_t, TernaryMatch>& matches) {
  std::vector<size_t> parent(changed.size());
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (size_t i = 0; i < changed.size(); ++i) {
    const TernaryMatch& mi = matches.at(changed[i]);
    for (size_t j = i + 1; j < changed.size(); ++j) {
      if (mi.overlaps(matches.at(changed[j]))) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::vector<size_t> sizes(changed.size(), 0);
  for (size_t i = 0; i < changed.size(); ++i) ++sizes[find(i)];
  std::unordered_map<uint32_t, size_t> group_size;
  for (size_t i = 0; i < changed.size(); ++i) {
    group_size[changed[i]] = sizes[find(i)];
  }
  return group_size;
}

}  // namespace

std::vector<flowspace::FlowTable> tables_from(const SwitchTables& tables) {
  std::vector<flowspace::FlowTable> out;
  out.reserve(tables.size());
  for (const std::vector<ProjectedRule>& t : tables) {
    std::vector<flowspace::Rule> rules;
    rules.reserve(t.size());
    for (const ProjectedRule& pr : t) rules.push_back(pr.rule);
    out.emplace_back(std::move(rules));
  }
  return out;
}

void apply_round(const Round& round, std::vector<flowspace::FlowTable>& tables) {
  for (const SwitchDelta& delta : round.deltas) {
    flowspace::FlowTable& table = tables.at(delta.sw);
    for (RuleId id : delta.removes) table.erase(id);
    for (const ProjectedRule& add : delta.adds) table.insert(add.rule);
  }
}

UpdatePlan plan_update(const Topology& topo, const NetworkPolicy& old_policy,
                       const NetworkPolicy& new_policy,
                       const PlannerConfig& cfg) {
  UpdatePlan plan;
  plan.strategy = cfg.strategy;
  plan.initial = project(topo, old_policy);
  plan.flows_total = new_policy.flows.size();

  // Pass 1: plain-vs-plain diff decides which flows change and how.
  SwitchTables new_plain = project(topo, new_policy);
  std::map<uint32_t, FlowDiff> plain_diffs =
      diff_projections(plan.initial, new_plain);
  plan.flows_changed = plain_diffs.size();

  // Flow-space index for conflict grouping.
  std::unordered_map<uint32_t, TernaryMatch> matches;
  for (const Flow& f : old_policy.flows) {
    TernaryMatch m = f.match;
    m.set_wildcard(flowspace::FieldId::kInPort);
    matches.emplace(f.id, std::move(m));
  }
  for (const Flow& f : new_policy.flows) {
    TernaryMatch m = f.match;
    m.set_wildcard(flowspace::FieldId::kInPort);
    matches.emplace(f.id, std::move(m));
  }

  std::vector<uint32_t> changed;
  for (const auto& [id, _] : plain_diffs) changed.push_back(id);
  const std::unordered_map<uint32_t, size_t> group_size =
      cfg.strategy == Strategy::kOneShot
          ? std::unordered_map<uint32_t, size_t>{}
          : conflict_group_sizes(changed, matches);

  // Strategy per changed flow. Two conditions *force* two-phase — the
  // dependency-round discipline has no consistent schedule for them:
  //  * the flow's plain diff modifies rules on >= 2 switches (no single
  //    commit point), or
  //  * the flow shares a conflict group with another changed flow
  //    (cross-flow capture could mix versions mid-update).
  std::unordered_map<uint32_t, bool> two_phase;  // changed flow id -> tagged?
  std::vector<size_t> occupancy(topo.switch_count(), 0);
  for (size_t sw = 0; sw < plan.initial.size(); ++sw) {
    occupancy[sw] = plan.initial[sw].size();
  }
  for (const auto& [id, diff] : plain_diffs) {
    const Flow* new_flow = new_policy.find(id);
    bool tagged = false;
    bool forced = false;
    if (cfg.strategy != Strategy::kOneShot) {
      forced = diff.changes >= 2 ||
               (group_size.count(id) && group_size.at(id) >= 2);
      if (forced) {
        tagged = true;
      } else if (cfg.strategy == Strategy::kTwoPhase) {
        // Deletions project no tagged rules, but still use the two-phase
        // remove staging (commit the ingress, GC the cores in one round).
        tagged = true;
      } else if (cfg.strategy == Strategy::kAuto && new_flow) {
        // The augmentation/speed tradeoff: prefer the 3-round two-phase
        // schedule when every core hop of the new path still has TCAM
        // headroom for the duplicated (tagged) rule.
        tagged = true;
        if (cfg.tcam_capacity != 0) {
          for (size_t k = 1; k < new_flow->path.size(); ++k) {
            if (occupancy[new_flow->path[k]] + 1 > cfg.tcam_capacity) {
              tagged = false;
              break;
            }
          }
        }
      }
    }
    two_phase[id] = tagged;
    if (forced) ++plan.flows_forced_two_phase;
    if (tagged) {
      ++plan.flows_two_phase;
      if (new_flow) {
        for (size_t k = 1; k < new_flow->path.size(); ++k) {
          ++occupancy[new_flow->path[k]];
        }
      }
    } else {
      ++plan.flows_rounds;
      // Transient load of the staged adds (the changed hops only).
      for (const SiteDiff& site : diff.sites) {
        if (site.kind == SiteDiff::kAdd) ++occupancy[site.sw];
      }
    }
  }

  // Pass 2: re-project with the chosen forms and re-diff — the tagged form
  // changes every core rule of a two-phase flow (and relinks unchanged
  // rules of everything else to their old ids).
  std::vector<FlowForm> forms(new_policy.flows.size(), FlowForm::kPlain);
  for (size_t i = 0; i < new_policy.flows.size(); ++i) {
    auto it = two_phase.find(new_policy.flows[i].id);
    if (it != two_phase.end() && it->second) forms[i] = FlowForm::kTagged;
  }
  plan.final_tables = project(topo, new_policy, forms);
  std::map<uint32_t, FlowDiff> diffs =
      diff_projections(plan.initial, plan.final_tables);

  // ---- Round assembly --------------------------------------------------
  // add buckets fill downstream-first (bucket d holds hops d links from the
  // egress), the commit round flips every commit point behind one fleet
  // barrier, gc buckets drain upstream-first.
  std::map<size_t, std::map<SwitchId, SwitchDelta>> add_buckets, gc_buckets;
  std::map<SwitchId, SwitchDelta> commit_bucket;
  std::map<SwitchId, SwitchDelta> oneshot;  // kOneShot only
  std::map<SwitchId, size_t> oneshot_pos;   // min new-path position per switch

  auto delta_of = [](std::map<SwitchId, SwitchDelta>& bucket,
                     SwitchId sw) -> SwitchDelta& {
    SwitchDelta& d = bucket[sw];
    d.sw = sw;
    return d;
  };

  for (const auto& [id, diff] : diffs) {
    const Flow* old_flow = old_policy.find(id);
    const Flow* new_flow = new_policy.find(id);
    const bool tagged = two_phase.count(id) && two_phase.at(id);

    for (const SiteDiff& site : diff.sites) {
      if (cfg.strategy == Strategy::kOneShot) {
        SwitchDelta& d = delta_of(oneshot, site.sw);
        if (site.kind != SiteDiff::kAdd) d.removes.push_back(site.old_id);
        if (site.kind != SiteDiff::kRemove) {
          d.adds.push_back(plan.final_tables[site.sw][site.new_index]);
        }
        size_t pos = position_on(new_flow, site.sw);
        auto [it, inserted] = oneshot_pos.emplace(site.sw, pos);
        if (!inserted && pos < it->second) it->second = pos;
        continue;
      }
      switch (site.kind) {
        case SiteDiff::kChange: {
          SwitchDelta& d = delta_of(commit_bucket, site.sw);
          d.removes.push_back(site.old_id);
          d.adds.push_back(plan.final_tables[site.sw][site.new_index]);
          break;
        }
        case SiteDiff::kAdd: {
          const size_t k = position_on(new_flow, site.sw);
          if (k == kNoPos) throw std::logic_error("added rule off the new path");
          if (k == 0) {
            delta_of(commit_bucket, site.sw)
                .adds.push_back(plan.final_tables[site.sw][site.new_index]);
          } else {
            // Two-phase cores are tag-guarded (unreachable until commit):
            // they all fit in the first prepare round.
            const size_t bucket = tagged ? 0 : new_flow->path.size() - 1 - k;
            delta_of(add_buckets[bucket], site.sw)
                .adds.push_back(plan.final_tables[site.sw][site.new_index]);
          }
          break;
        }
        case SiteDiff::kRemove: {
          const size_t k = position_on(old_flow, site.sw);
          if (k == kNoPos) throw std::logic_error("removed rule off the old path");
          if (k == 0) {
            delta_of(commit_bucket, site.sw).removes.push_back(site.old_id);
          } else {
            // Post-commit the old cores are unreachable as a complete
            // suffix; a two-phase flow drops them all in the first GC
            // round, a rounds flow peels them upstream-first.
            const size_t bucket = tagged ? 0 : k - 1;
            delta_of(gc_buckets[bucket], site.sw).removes.push_back(site.old_id);
          }
          break;
        }
      }
    }
  }

  auto emit = [&plan](const std::string& label,
                      std::map<SwitchId, SwitchDelta>& bucket) {
    if (bucket.empty()) return;
    Round round;
    round.label = label;
    for (auto& [sw, delta] : bucket) {
      std::sort(delta.removes.begin(), delta.removes.end());
      round.deltas.push_back(std::move(delta));
    }
    plan.rounds.push_back(std::move(round));
  };

  if (cfg.strategy == Strategy::kOneShot) {
    // One unsynchronized batch per switch, applied upstream-first (the
    // adversarial order: the commit point flips before downstream rules
    // exist). The auditor is expected to catch this.
    std::vector<SwitchId> order;
    for (const auto& [sw, _] : oneshot) order.push_back(sw);
    std::sort(order.begin(), order.end(), [&](SwitchId a, SwitchId b) {
      const size_t pa = oneshot_pos.at(a), pb = oneshot_pos.at(b);
      if (pa != pb) return pa < pb;
      return a < b;
    });
    for (SwitchId sw : order) {
      std::map<SwitchId, SwitchDelta> single;
      single.emplace(sw, std::move(oneshot.at(sw)));
      emit("oneshot:s" + std::to_string(sw), single);
    }
  } else {
    for (auto& [d, bucket] : add_buckets) {
      emit("add:" + std::to_string(d), bucket);
    }
    emit("commit", commit_bucket);
    for (auto& [d, bucket] : gc_buckets) {
      emit("gc:" + std::to_string(d), bucket);
    }
  }

  // ---- Occupancy accounting (the augmentation cost) --------------------
  std::vector<size_t> occ(topo.switch_count(), 0);
  size_t total = 0;
  for (size_t sw = 0; sw < plan.initial.size(); ++sw) {
    occ[sw] = plan.initial[sw].size();
    total += occ[sw];
  }
  plan.initial_rules = total;
  plan.peak_rules = total;
  for (size_t o : occ) plan.peak_switch_rules = std::max(plan.peak_switch_rules, o);
  for (const Round& round : plan.rounds) {
    for (const SwitchDelta& delta : round.deltas) {
      occ[delta.sw] += delta.adds.size();
      occ[delta.sw] -= delta.removes.size();
      total += delta.adds.size();
      total -= delta.removes.size();
      plan.peak_switch_rules = std::max(plan.peak_switch_rules, occ[delta.sw]);
    }
    plan.peak_rules = std::max(plan.peak_rules, total);
  }
  plan.final_rules = total;

  return plan;
}

}  // namespace ruletris::netplan
