#include "netplan/auditor.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/hash.h"
#include "util/rng.h"

namespace ruletris::netplan {

using flowspace::Action;
using flowspace::ActionType;
using flowspace::FieldId;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::TernaryMatch;

LookupFn tables_lookup(const std::vector<flowspace::FlowTable>& tables) {
  // The caller keeps `tables` alive for the LookupFn's lifetime.
  return [t = &tables](SwitchId sw, const Packet& p) -> const Rule* {
    if (sw >= t->size()) return nullptr;
    return (*t)[sw].lookup(p);
  };
}

const char* outcome_name(TraceOutcome o) {
  switch (o) {
    case TraceOutcome::kDelivered: return "delivered";
    case TraceOutcome::kNoMatch: return "no-match";
    case TraceOutcome::kDropped: return "dropped";
    case TraceOutcome::kDeadPort: return "dead-port";
    case TraceOutcome::kLoop: return "loop";
  }
  return "?";
}

std::string Trace::to_string() const {
  std::ostringstream out;
  for (const auto& [sw, port] : hops) {
    out << "s" << sw << ">p" << port << " ";
  }
  out << outcome_name(outcome);
  return out.str();
}

Trace trace_packet(const Topology& topo, const LookupFn& lookup,
                   SwitchId ingress, Packet packet, size_t max_hops) {
  Trace trace;
  SwitchId sw = ingress;
  uint32_t in_port = kHostPort;
  for (size_t hop = 0; hop < max_hops; ++hop) {
    packet.set(FieldId::kInPort, in_port);
    const Rule* rule = lookup(sw, packet);
    if (!rule) {
      trace.outcome = TraceOutcome::kNoMatch;
      return trace;
    }
    // Header rewrites (version stamping) apply before forwarding.
    packet = rule->actions.apply_rewrites(packet);
    const Action* fwd = nullptr;
    for (const Action& a : rule->actions.actions()) {
      if (a.type == ActionType::kForward) {
        fwd = &a;
        break;
      }
    }
    if (!fwd) {
      trace.outcome = TraceOutcome::kDropped;
      return trace;
    }
    trace.hops.emplace_back(sw, fwd->arg);
    if (fwd->arg == kHostPort) {
      trace.outcome = TraceOutcome::kDelivered;
      return trace;
    }
    const auto next = topo.neighbor_via(sw, fwd->arg);
    if (!next) {
      trace.outcome = TraceOutcome::kDeadPort;
      return trace;
    }
    in_port = *topo.port_to(*next, sw);
    sw = *next;
  }
  trace.outcome = TraceOutcome::kLoop;
  return trace;
}

std::string NetAuditReport::summary() const {
  std::ostringstream out;
  out << probes << " probes: " << matched_both << " both, " << matched_old
      << " old, " << matched_new << " new, " << mixed << " MIXED";
  return out.str();
}

namespace {

/// A seeded packet inside `match`: wildcard bits take random values, with
/// eth_type steered out of the reserved version-tag range (a probe that
/// happened to carry a tag would impersonate fabric-stamped traffic).
Packet random_packet_in(const TernaryMatch& match, util::Rng& rng) {
  Packet p;
  for (FieldId f : flowspace::kAllFields) {
    const flowspace::FieldTernary& ft = match.field(f);
    const uint32_t full = flowspace::field_full_mask(f);
    uint32_t value =
        ft.value | (static_cast<uint32_t>(rng.next_u64()) & full & ~ft.mask);
    if (f == FieldId::kEthType && (value & kVersionTagBase) == kVersionTagBase) {
      value &= ~(kVersionTagBase & ~ft.mask);  // clear free tag bits
    }
    p.set(f, value);
  }
  return p;
}

}  // namespace

ConsistencyAuditor::ConsistencyAuditor(
    const Topology& topo, const NetworkPolicy& old_policy,
    const NetworkPolicy& new_policy,
    const std::vector<flowspace::FlowTable>& old_tables,
    const std::vector<flowspace::FlowTable>& new_tables, const AuditConfig& cfg)
    : topo_(topo),
      max_hops_(cfg.max_hops != 0 ? cfg.max_hops : 4 * topo.switch_count()) {
  const LookupFn old_lookup = tables_lookup(old_tables);
  const LookupFn new_lookup = tables_lookup(new_tables);

  // Flow population: union of both policy versions, keyed by flow id.
  struct FlowInfo {
    const Flow* oldf = nullptr;
    const Flow* newf = nullptr;
  };
  std::map<uint32_t, FlowInfo> flows;
  for (const Flow& f : old_policy.flows) flows[f.id].oldf = &f;
  for (const Flow& f : new_policy.flows) flows[f.id].newf = &f;

  for (const auto& [id, info] : flows) {
    const Flow* any = info.newf ? info.newf : info.oldf;
    TernaryMatch match = any->match;
    match.set_wildcard(FieldId::kInPort);

    std::vector<Packet> packets;
    packets.push_back(match.sample_packet());
    util::Rng rng(util::hash_pair(cfg.seed, id));
    const size_t extra = cfg.packets_per_flow > 0 ? cfg.packets_per_flow - 1 : 0;
    for (size_t i = 0; i < extra; ++i) {
      packets.push_back(random_packet_in(match, rng));
    }

    // Inject at both versions' ingress points: a rerouted-to-new-ingress
    // flow must behave consistently seen from either edge.
    std::vector<SwitchId> ingresses;
    if (info.oldf) ingresses.push_back(info.oldf->path.front());
    if (info.newf && (!info.oldf || info.newf->path.front() != ingresses[0])) {
      ingresses.push_back(info.newf->path.front());
    }

    for (SwitchId ingress : ingresses) {
      for (const Packet& packet : packets) {
        Probe probe;
        probe.flow = id;
        probe.ingress = ingress;
        probe.packet = packet;
        probe.t_old = trace_packet(topo_, old_lookup, ingress, packet, max_hops_);
        probe.t_new = trace_packet(topo_, new_lookup, ingress, packet, max_hops_);
        probes_.push_back(std::move(probe));
      }
    }
  }
}

NetAuditReport ConsistencyAuditor::audit(const LookupFn& mid) const {
  NetAuditReport report;
  report.probes = probes_.size();
  for (const Probe& probe : probes_) {
    const Trace t =
        trace_packet(topo_, mid, probe.ingress, probe.packet, max_hops_);
    const bool is_old = (t == probe.t_old);
    const bool is_new = (t == probe.t_new);
    if (is_old && is_new) {
      ++report.matched_both;
    } else if (is_old) {
      ++report.matched_old;
    } else if (is_new) {
      ++report.matched_new;
    } else {
      ++report.mixed;
      if (report.violations.size() < 16) {
        std::ostringstream out;
        out << "flow " << probe.flow << " @s" << probe.ingress
            << ": mid=[" << t.to_string() << "] old=[" << probe.t_old.to_string()
            << "] new=[" << probe.t_new.to_string() << "]";
        report.violations.push_back(out.str());
      }
    }
  }
  return report;
}

}  // namespace ruletris::netplan
