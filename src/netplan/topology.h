// Network topology model for the network-wide update planner.
//
// A topology is a set of switches connected by bidirectional links. Each
// switch numbers its ports locally: port 0 (kHostPort) faces the attached
// hosts — packets enter the fabric there and leave it there — and ports
// 1..deg face neighbour switches, assigned in link-creation order. Port
// numbers fit the 8-bit in_port header field, which is how projected rules
// pin a hop to the flow's path (see policy.h).
//
// Ingress sets restrict where flows may enter/exit the fabric; by default
// every switch is ingress-capable. Path computation is BFS shortest-path
// with deterministic tie-breaks (lowest neighbour id first), so plans are
// reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ruletris::netplan {

using SwitchId = uint32_t;

/// The host-facing port every switch reserves: fabric ingress and egress.
inline constexpr uint32_t kHostPort = 0;

class Topology {
 public:
  Topology() = default;

  size_t switch_count() const { return adj_.size(); }

  /// Adds one switch; returns its id (dense, starting at 0).
  SwitchId add_switch();

  /// Connects `a` and `b` with a bidirectional link, assigning the next
  /// free port on each side. No-op (returns false) if the link exists;
  /// throws on self-links or unknown switches.
  bool add_link(SwitchId a, SwitchId b);

  /// The port on `from` that faces neighbour `to`; nullopt if not adjacent.
  std::optional<uint32_t> port_to(SwitchId from, SwitchId to) const;

  /// The neighbour reached by leaving `from` through `port`; nullopt for
  /// kHostPort or an unassigned port.
  std::optional<SwitchId> neighbor_via(SwitchId from, uint32_t port) const;

  /// Neighbour ids of `s`, in port order.
  const std::vector<SwitchId>& neighbors(SwitchId s) const;

  /// Restricts fabric entry/exit points. Empty (default) = every switch.
  void set_ingress(std::vector<SwitchId> ingress);
  std::vector<SwitchId> ingress_switches() const;

  /// BFS shortest path `from` -> `to` (inclusive); ties broken toward the
  /// lowest-id predecessor. Empty vector when unreachable.
  std::vector<SwitchId> shortest_path(SwitchId from, SwitchId to) const;

  /// Shortest path that never enters a switch in `avoid` (endpoints must
  /// not be in `avoid`). Empty when no such path exists.
  std::vector<SwitchId> shortest_path_avoiding(
      SwitchId from, SwitchId to, const std::vector<SwitchId>& avoid) const;

  std::string to_string() const;

  // ---- Builders --------------------------------------------------------

  /// s0 - s1 - ... - s(n-1).
  static Topology chain(size_t n);

  /// The 4-switch diamond: s0 -> {s1, s2} -> s3. The smallest topology
  /// with two disjoint paths, used by the round-count optimality tests.
  static Topology diamond();

  /// Random connected graph: a random spanning tree over `n` switches plus
  /// `extra` additional random links, all derived from `seed`.
  static Topology random_connected(size_t n, size_t extra, uint64_t seed);

  /// Parses a topology spec: "chain:N", "diamond", or "random:N:EXTRA:SEED".
  /// Throws std::invalid_argument on malformed specs.
  static Topology parse(const std::string& spec);

 private:
  // adj_[s] holds neighbour ids in port order: adj_[s][k] sits behind port
  // k + 1 (port 0 is the host port).
  std::vector<std::vector<SwitchId>> adj_;
  std::vector<SwitchId> ingress_;  // empty = all switches
};

}  // namespace ruletris::netplan
