// Mid-update packet-consistency auditor.
//
// Extends the tcam/auditor idea (external invariant checking against a
// reference) from one device to the whole fabric: between every planner
// round it replays a fixed population of synthetic packets through the
// topology and demands per-packet consistency in the Reitblatt sense —
// every packet's end-to-end trace must equal its trace under the pure OLD
// tables or its trace under the pure NEW tables. A trace that mixes the
// two (e.g. rerouted at the ingress but black-holed downstream because the
// new core rule is not installed yet) is a violation.
//
// The walk is lookup-function-driven, so the same auditor runs against
//  * planner-side simulated FlowTables (tables_lookup), and
//  * the live TCAMs of runtime switch agents mid-fleet-run — lookups use
//    the device's real highest-address-wins TCAM semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flowspace/rule.h"
#include "netplan/policy.h"
#include "netplan/topology.h"

namespace ruletris::netplan {

/// Resolves the winning rule for `packet` at switch `sw` (nullptr = miss).
/// The packet's in_port field is already set for the hop.
using LookupFn = std::function<const flowspace::Rule*(SwitchId sw,
                                                      const flowspace::Packet&)>;

/// Builds a LookupFn over simulated per-switch FlowTables.
LookupFn tables_lookup(const std::vector<flowspace::FlowTable>& tables);

enum class TraceOutcome : uint8_t {
  kDelivered,  // forwarded out of kHostPort at some switch
  kNoMatch,    // no rule matched at some hop
  kDropped,    // matched a rule with no forward action
  kDeadPort,   // forwarded into an unassigned port
  kLoop,       // exceeded the hop budget
};

const char* outcome_name(TraceOutcome o);

/// An end-to-end packet trace: the (switch, out_port) hops plus how the
/// walk ended. Equality is what "same behaviour" means to the auditor.
struct Trace {
  std::vector<std::pair<SwitchId, uint32_t>> hops;
  TraceOutcome outcome = TraceOutcome::kNoMatch;

  bool operator==(const Trace&) const = default;
  std::string to_string() const;
};

/// Walks `packet` injected at `ingress` (host port) through the fabric.
/// Each hop applies the winning rule's header rewrites (version stamping
/// included) before following its forward action.
Trace trace_packet(const Topology& topo, const LookupFn& lookup,
                   SwitchId ingress, flowspace::Packet packet, size_t max_hops);

struct AuditConfig {
  size_t packets_per_flow = 3;  // 1 canonical sample + seeded variants
  uint64_t seed = 1;
  size_t max_hops = 0;  // 0 = 4 * switch_count
};

struct NetAuditReport {
  size_t probes = 0;         // packets replayed at this observation point
  size_t matched_old = 0;    // traces equal to the OLD reference only
  size_t matched_new = 0;    // traces equal to the NEW reference only
  size_t matched_both = 0;   // references agree (flow unaffected)
  size_t mixed = 0;          // neither: a consistency violation
  std::vector<std::string> violations;  // detail, capped

  bool clean() const { return mixed == 0; }
  std::string summary() const;
};

/// Precomputes a probe population (per flow of either policy: the match's
/// canonical sample packet plus seeded random packets inside the match,
/// steered clear of the reserved version-tag eth_type range) and their
/// reference traces under the pure-old and pure-new tables. audit() then
/// replays every probe against one mid-update observation point.
class ConsistencyAuditor {
 public:
  ConsistencyAuditor(const Topology& topo, const NetworkPolicy& old_policy,
                     const NetworkPolicy& new_policy,
                     const std::vector<flowspace::FlowTable>& old_tables,
                     const std::vector<flowspace::FlowTable>& new_tables,
                     const AuditConfig& cfg);

  /// Replays every probe through `mid` (one observation point between two
  /// rounds). Safe to call any number of times.
  NetAuditReport audit(const LookupFn& mid) const;

  size_t probe_count() const { return probes_.size(); }

 private:
  struct Probe {
    uint32_t flow = 0;
    SwitchId ingress = 0;
    flowspace::Packet packet;
    Trace t_old, t_new;
  };

  const Topology& topo_;
  size_t max_hops_;
  std::vector<Probe> probes_;
};

}  // namespace ruletris::netplan
