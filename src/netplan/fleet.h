// Round-gated fleet controller: drives N per-switch sessions through
// barrier-fenced planner rounds.
//
// Each switch session is the unchanged runtime machinery — private
// virtual-time event loop, seeded faulty wire, go-back-N window, crash
// journal — but the send window is *gated*: epoch e (round e - 1) may not
// leave the controller until every switch has committed epoch e - 1. After
// each round the fleet clock advances to the slowest session's commit time
// (the barrier), and an observer runs — that is where the consistency
// auditor replays packets against the agents' live TCAMs.
//
// Determinism: sessions share nothing mutable and derive independent fault
// streams from (fault_seed, switch index), so the report is bit-identical
// across thread counts, exactly like runtime::Controller.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netplan/auditor.h"
#include "netplan/materialize.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/session.h"

namespace ruletris::netplan {

struct FleetConfig {
  runtime::RuntimeConfig runtime;  // window/faults/seed/threads/capacity
};

struct FleetReport {
  runtime::RuntimeReport merged;
  size_t rounds = 0;                 // planner rounds driven (epochs - 1)
  std::vector<double> round_end_ms;  // fleet barrier time after each epoch
  bool completed = true;             // every switch committed every epoch

  double makespan_ms() const { return merged.makespan_ms; }
};

/// Called between rounds, after the fleet barrier: `epoch` is the committed
/// epoch (1 = install, 1 + r = round r), `barrier_ms` the fleet time. The
/// observer may inspect the live TCAMs via FleetController::lookup().
using RoundObserver = std::function<void(size_t epoch, double barrier_ms)>;

class FleetController {
 public:
  FleetController(const std::vector<SwitchScript>& scripts,
                  const FleetConfig& cfg);
  ~FleetController();

  /// Drives every session through all epochs, one fleet-gated round at a
  /// time. Call once.
  FleetReport run(const RoundObserver& between_rounds = {});

  size_t switches() const { return sessions_.size(); }
  size_t epochs() const { return epochs_; }

  /// Live lookup over the agents' TCAMs (hardware highest-address-wins
  /// semantics) — the auditor's mid-update observation point.
  LookupFn lookup() const;

 private:
  FleetConfig cfg_;
  std::vector<std::vector<flowspace::Rule>> expected_;
  std::vector<std::shared_ptr<const runtime::EncodedLog>> logs_;
  std::vector<std::unique_ptr<runtime::SwitchSession>> sessions_;
  size_t epochs_ = 0;
  bool ran_ = false;
};

}  // namespace ruletris::netplan
