#include "netplan/topology.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace ruletris::netplan {

SwitchId Topology::add_switch() {
  adj_.emplace_back();
  return static_cast<SwitchId>(adj_.size() - 1);
}

bool Topology::add_link(SwitchId a, SwitchId b) {
  if (a >= adj_.size() || b >= adj_.size()) {
    throw std::invalid_argument("add_link: unknown switch");
  }
  if (a == b) throw std::invalid_argument("add_link: self-link");
  if (port_to(a, b)) return false;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  // Port numbers are 8 bits (flowspace::FieldId::kInPort); a switch with
  // more than 254 neighbours would wrap.
  if (adj_[a].size() > 254 || adj_[b].size() > 254) {
    throw std::invalid_argument("add_link: switch degree exceeds port space");
  }
  return true;
}

std::optional<uint32_t> Topology::port_to(SwitchId from, SwitchId to) const {
  const std::vector<SwitchId>& nbrs = adj_.at(from);
  for (size_t k = 0; k < nbrs.size(); ++k) {
    if (nbrs[k] == to) return static_cast<uint32_t>(k + 1);
  }
  return std::nullopt;
}

std::optional<SwitchId> Topology::neighbor_via(SwitchId from, uint32_t port) const {
  const std::vector<SwitchId>& nbrs = adj_.at(from);
  if (port == kHostPort || port > nbrs.size()) return std::nullopt;
  return nbrs[port - 1];
}

const std::vector<SwitchId>& Topology::neighbors(SwitchId s) const {
  return adj_.at(s);
}

void Topology::set_ingress(std::vector<SwitchId> ingress) {
  for (SwitchId s : ingress) {
    if (s >= adj_.size()) throw std::invalid_argument("set_ingress: unknown switch");
  }
  std::sort(ingress.begin(), ingress.end());
  ingress.erase(std::unique(ingress.begin(), ingress.end()), ingress.end());
  ingress_ = std::move(ingress);
}

std::vector<SwitchId> Topology::ingress_switches() const {
  if (!ingress_.empty()) return ingress_;
  std::vector<SwitchId> all(adj_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<SwitchId>(i);
  return all;
}

std::vector<SwitchId> Topology::shortest_path(SwitchId from, SwitchId to) const {
  return shortest_path_avoiding(from, to, {});
}

std::vector<SwitchId> Topology::shortest_path_avoiding(
    SwitchId from, SwitchId to, const std::vector<SwitchId>& avoid) const {
  if (from >= adj_.size() || to >= adj_.size()) return {};
  std::vector<char> blocked(adj_.size(), 0);
  for (SwitchId s : avoid) {
    if (s < adj_.size()) blocked[s] = 1;
  }
  if (blocked[from] || blocked[to]) return {};
  if (from == to) return {from};

  // BFS; scanning neighbours in sorted order makes the predecessor — and
  // therefore the returned path — deterministic.
  constexpr SwitchId kNoPred = static_cast<SwitchId>(-1);
  std::vector<SwitchId> pred(adj_.size(), kNoPred);
  std::deque<SwitchId> queue{from};
  pred[from] = from;
  while (!queue.empty()) {
    const SwitchId u = queue.front();
    queue.pop_front();
    if (u == to) break;
    std::vector<SwitchId> nbrs = adj_[u];
    std::sort(nbrs.begin(), nbrs.end());
    for (SwitchId v : nbrs) {
      if (blocked[v] || pred[v] != kNoPred) continue;
      pred[v] = u;
      queue.push_back(v);
    }
  }
  if (pred[to] == kNoPred) return {};
  std::vector<SwitchId> path;
  for (SwitchId s = to; s != from; s = pred[s]) path.push_back(s);
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Topology::to_string() const {
  std::ostringstream out;
  out << "topology{" << adj_.size() << " switches;";
  for (size_t s = 0; s < adj_.size(); ++s) {
    out << " s" << s << ":[";
    for (size_t k = 0; k < adj_[s].size(); ++k) {
      if (k) out << ",";
      out << adj_[s][k];
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

Topology Topology::chain(size_t n) {
  if (n == 0) throw std::invalid_argument("chain: need at least one switch");
  Topology t;
  for (size_t i = 0; i < n; ++i) t.add_switch();
  for (size_t i = 0; i + 1 < n; ++i) {
    t.add_link(static_cast<SwitchId>(i), static_cast<SwitchId>(i + 1));
  }
  return t;
}

Topology Topology::diamond() {
  Topology t;
  for (int i = 0; i < 4; ++i) t.add_switch();
  t.add_link(0, 1);
  t.add_link(0, 2);
  t.add_link(1, 3);
  t.add_link(2, 3);
  return t;
}

Topology Topology::random_connected(size_t n, size_t extra, uint64_t seed) {
  if (n == 0) throw std::invalid_argument("random_connected: need switches");
  Topology t;
  for (size_t i = 0; i < n; ++i) t.add_switch();
  util::Rng rng(seed);
  // Random spanning tree: attach each switch to a uniformly random earlier
  // one — connected by construction.
  for (size_t i = 1; i < n; ++i) {
    const SwitchId parent = static_cast<SwitchId>(rng.next_below(i));
    t.add_link(static_cast<SwitchId>(i), parent);
  }
  // Extra links create alternate paths (what makes reroutes possible).
  size_t attempts = extra * 8 + 8;
  for (size_t added = 0; added < extra && attempts > 0; --attempts) {
    const SwitchId a = static_cast<SwitchId>(rng.next_below(n));
    const SwitchId b = static_cast<SwitchId>(rng.next_below(n));
    if (a == b) continue;
    if (t.add_link(a, b)) ++added;
  }
  return t;
}

Topology Topology::parse(const std::string& spec) {
  auto split = [](const std::string& s) {
    std::vector<std::string> parts;
    std::string cur;
    for (char c : s) {
      if (c == ':') {
        parts.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    parts.push_back(cur);
    return parts;
  };
  auto to_num = [&spec](const std::string& s) -> uint64_t {
    try {
      return std::stoull(s);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad topology spec: " + spec);
    }
  };
  const std::vector<std::string> parts = split(spec);
  if (parts[0] == "diamond" && parts.size() == 1) return diamond();
  if (parts[0] == "chain" && parts.size() == 2) {
    return chain(static_cast<size_t>(to_num(parts[1])));
  }
  if (parts[0] == "random" && parts.size() == 4) {
    return random_connected(static_cast<size_t>(to_num(parts[1])),
                            static_cast<size_t>(to_num(parts[2])),
                            to_num(parts[3]));
  }
  throw std::invalid_argument(
      "bad topology spec: " + spec +
      " (want chain:N, diamond, or random:N:EXTRA:SEED)");
}

}  // namespace ruletris::netplan
