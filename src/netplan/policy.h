// Network-wide policies and per-switch projection.
//
// A NetworkPolicy is a set of flows, each a ternary match plus the path its
// packets must take through the fabric. Projection splits the policy into
// one rule table per switch:
//
//   * the ingress hop matches the flow's header space AND in_port ==
//     kHostPort (packets entering the fabric), forwarding to the next hop;
//   * every core hop matches the flow's header space AND in_port == the
//     port facing the previous hop, so a rule only fires for packets that
//     actually travelled the flow's path — without this pin, overlapping
//     flows installed on shared switches would capture each other's
//     packets arriving from elsewhere;
//   * the egress hop forwards to kHostPort (the packet leaves the fabric).
//
// Two-phase updates need old- and new-version rules to coexist on core
// switches. The version tag rides the eth_type field: values 0xF000-0xFFFF
// are reserved for the fabric (real policies must not match there — the
// audit packet generator avoids the range). A tagged core rule additionally
// matches eth_type == version_tag(v) exactly; the ingress rule *stamps* the
// tag with a set-field rewrite, atomically moving the whole flow to the new
// version the instant the ingress rule flips.
//
// Priorities encode a single global order: flow f's plain rules sit at
// priority 2*(kFlowPriorityBase - f.id) (lower flow id == higher priority,
// consistently on every switch); the stamping ingress rule sits one higher
// so it shadows the same flow's old ingress. Tag-matched core rules live a
// whole band above every plain rule (+kTaggedPriorityBand, flow-id order
// preserved within the band): only stamped packets can reach them, and a
// stamped packet must win against every not-yet-GC'd old rule — plain
// rules leave eth_type unconstrained, so they would otherwise capture
// stamped packets of higher-id overlapping flows mid-update.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/composed_node.h"
#include "flowspace/rule.h"
#include "netplan/topology.h"

namespace ruletris::netplan {

/// Reserved eth_type range carrying the two-phase version tag.
inline constexpr uint32_t kVersionTagBase = 0xF000;
inline constexpr uint32_t version_tag(uint32_t version) {
  return kVersionTagBase | (version & 0x0FFFu);
}

inline constexpr int32_t kFlowPriorityBase = 1'000'000;

/// Offset lifting tag-matched core rules above the entire plain band.
inline constexpr int32_t kTaggedPriorityBand = 2 * kFlowPriorityBase;

struct Flow {
  uint32_t id = 0;                // stable across policy versions
  flowspace::TernaryMatch match;  // header space (in_port ignored)
  std::vector<SwitchId> path;     // ingress first, egress last; never empty
};

struct NetworkPolicy {
  std::vector<Flow> flows;
  uint32_t version = 1;

  const Flow* find(uint32_t flow_id) const {
    for (const Flow& f : flows) {
      if (f.id == flow_id) return &f;
    }
    return nullptr;
  }
};

/// How a flow's new-version rules are rendered.
enum class FlowForm : uint8_t {
  kPlain,   // untagged; updated in dependency-ordered rounds
  kTagged,  // version-tagged cores + stamping ingress; two-phase
};

/// One projected per-switch rule plus its provenance.
struct ProjectedRule {
  flowspace::Rule rule;
  uint32_t flow = 0;
  uint32_t version = 0;
  bool ingress = false;  // matches in_port == kHostPort
  bool tagged = false;   // core rule pinned to version_tag(version)
};

/// Per-switch projected tables, indexed by SwitchId.
using SwitchTables = std::vector<std::vector<ProjectedRule>>;

/// Projects `policy` onto every switch of `topo`. `forms[i]` selects the
/// rendering of policy.flows[i] (kPlain everywhere when empty). Rule ids
/// are freshly drawn; the planner re-links unchanged rules to their old
/// ids when diffing two projections.
SwitchTables project(const Topology& topo, const NetworkPolicy& policy,
                     const std::vector<FlowForm>& forms = {});

/// Derives a policy from a compiled rule set: each rule becomes one flow
/// whose ingress/egress pair is drawn deterministically from the rule match
/// (hash over the topology's ingress set) and whose path is the shortest
/// one. Rules constraining eth_type inside the reserved version-tag range
/// are rejected with std::invalid_argument.
NetworkPolicy policy_from_rules(const Topology& topo,
                                const std::vector<flowspace::Rule>& rules,
                                uint64_t seed);

/// Same, over the visible entries of a compiled snapshot (the composed
/// policy the front-end produced).
NetworkPolicy policy_from_snapshot(const Topology& topo,
                                   const compiler::CompileSnapshot& snapshot,
                                   uint64_t seed);

/// Mutation recipe for producing the "new" policy of an update.
struct MutationSpec {
  double reroute_fraction = 0.3;  // flows re-pathed around a random mid hop
  size_t drop_flows = 0;          // flows removed outright
  /// Matches for brand-new flows (paths assigned like policy_from_rules).
  std::vector<flowspace::TernaryMatch> add_matches;
  uint64_t seed = 1;
};

/// Builds version + 1 of `policy`: reroutes a seeded fraction of flows
/// (path around a random intermediate hop, or to a different egress when
/// no detour exists), drops `drop_flows` seeded picks, appends a flow per
/// `add_matches` entry. Flow ids are stable for surviving flows.
NetworkPolicy mutate_policy(const Topology& topo, const NetworkPolicy& policy,
                            const MutationSpec& spec);

}  // namespace ruletris::netplan
