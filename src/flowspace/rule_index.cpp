#include "flowspace/rule_index.h"

#include <algorithm>
#include <stdexcept>

namespace ruletris::flowspace {

uint32_t RuleIndex::bucket_of(const TernaryMatch& m) {
  const FieldTernary& ft = m.field(FieldId::kIpProto);
  if (ft.mask == field_full_mask(FieldId::kIpProto)) return ft.value;
  return kWildcardBucket;
}

uint32_t RuleIndex::dst_key_of(const TernaryMatch& m) {
  const FieldTernary& ft = m.field(FieldId::kDstIp);
  if ((ft.mask & kDstOctetMask) == kDstOctetMask) return ft.value >> 24;
  return kAnyDst;
}

void RuleIndex::insert(RuleId id, const TernaryMatch& match) {
  if (by_id_.count(id)) throw std::invalid_argument("RuleIndex::insert: duplicate id");
  const uint32_t bucket = bucket_of(match);
  const uint32_t dst_key = dst_key_of(match);
  buckets_[bucket][dst_key].push_back(Entry{id, match});
  by_id_[id] = {bucket, dst_key};
}

void RuleIndex::erase(RuleId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  const auto [bucket, dst_key] = it->second;
  auto bit = buckets_.find(bucket);
  auto dit = bit->second.find(dst_key);
  auto& vec = dit->second;
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [id](const Entry& e) { return e.id == id; }),
            vec.end());
  // Prune emptied storage so long-lived indexes under churn do not
  // accumulate dead buckets (and wildcard queries do not scan them).
  if (vec.empty()) {
    bit->second.erase(dit);
    if (bit->second.empty()) buckets_.erase(bit);
  }
  by_id_.erase(it);
}

void RuleIndex::clear() {
  buckets_.clear();
  by_id_.clear();
}

std::vector<RuleId> RuleIndex::find_overlapping(const TernaryMatch& m) const {
  std::vector<RuleId> out;
  out.reserve(16);
  for_each_overlapping(m, [&out](RuleId id, const TernaryMatch&) { out.push_back(id); });
  return out;
}

RuleIndex::Stats RuleIndex::stats() const {
  Stats s;
  for (const auto& [proto, dst] : buckets_) {
    (void)proto;
    for (const auto& [key, entries] : dst) {
      (void)key;
      ++s.buckets;
      s.entries += entries.size();
      s.largest_bucket = std::max(s.largest_bucket, entries.size());
    }
  }
  return s;
}

size_t RuleIndex::approx_size() const { return stats().entries; }

}  // namespace ruletris::flowspace
