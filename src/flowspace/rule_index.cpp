#include "flowspace/rule_index.h"

#include <algorithm>
#include <stdexcept>

namespace ruletris::flowspace {

uint32_t RuleIndex::bucket_of(const TernaryMatch& m) {
  const FieldTernary& ft = m.field(FieldId::kIpProto);
  if (ft.mask == field_full_mask(FieldId::kIpProto)) return ft.value;
  return kWildcardBucket;
}

void RuleIndex::insert(RuleId id, const TernaryMatch& match) {
  if (by_id_.count(id)) throw std::invalid_argument("RuleIndex::insert: duplicate id");
  const uint32_t bucket = bucket_of(match);
  buckets_[bucket].push_back(Entry{id, match});
  by_id_[id] = bucket;
}

void RuleIndex::erase(RuleId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  auto& vec = buckets_[it->second];
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [id](const Entry& e) { return e.id == id; }),
            vec.end());
  by_id_.erase(it);
}

void RuleIndex::clear() {
  buckets_.clear();
  by_id_.clear();
}

void RuleIndex::scan_bucket(uint32_t bucket, const TernaryMatch& m,
                            std::vector<RuleId>& out) const {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) return;
  for (const Entry& e : it->second) {
    if (e.match.overlaps(m)) out.push_back(e.id);
  }
}

std::vector<RuleId> RuleIndex::find_overlapping(const TernaryMatch& m) const {
  std::vector<RuleId> out;
  const uint32_t bucket = bucket_of(m);
  if (bucket == kWildcardBucket) {
    // A proto-wildcard query can overlap any bucket.
    for (const auto& [key, entries] : buckets_) {
      (void)key;
      for (const Entry& e : entries) {
        if (e.match.overlaps(m)) out.push_back(e.id);
      }
    }
  } else {
    scan_bucket(bucket, m, out);
    scan_bucket(kWildcardBucket, m, out);
  }
  return out;
}

}  // namespace ruletris::flowspace
