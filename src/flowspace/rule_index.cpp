#include "flowspace/rule_index.h"

#include <algorithm>
#include <stdexcept>

namespace ruletris::flowspace {

uint32_t RuleIndex::bucket_of(const TernaryMatch& m) {
  const FieldTernary& ft = m.field(FieldId::kIpProto);
  if (ft.mask == field_full_mask(FieldId::kIpProto)) return ft.value;
  return kWildcardBucket;
}

uint32_t RuleIndex::dst_key_of(const TernaryMatch& m) {
  const FieldTernary& ft = m.field(FieldId::kDstIp);
  if ((ft.mask & kDstOctetMask) == kDstOctetMask) return ft.value >> 24;
  return kAnyDst;
}

bool RuleIndex::dst_exact(const TernaryMatch& m, uint32_t& value) {
  const FieldTernary& ft = m.field(FieldId::kDstIp);
  if (ft.mask != field_full_mask(FieldId::kDstIp)) return false;
  value = ft.value;
  return true;
}

void RuleIndex::insert(RuleId id, const TernaryMatch& match) {
  if (by_id_.count(id)) throw std::invalid_argument("RuleIndex::insert: duplicate id");
  const uint32_t bucket = bucket_of(match);
  const uint32_t dst_key = dst_key_of(match);
  DstBucket& db = buckets_[bucket][dst_key];
  uint32_t value = 0;
  const bool is_exact = dst_exact(match, value);
  (is_exact ? db.exact[value] : db.coarse).push_back(Entry{id, match});
  by_id_[id] = Slot{bucket, dst_key, is_exact, value};
}

void RuleIndex::erase(RuleId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  const Slot slot = it->second;
  auto bit = buckets_.find(slot.bucket);
  auto dit = bit->second.find(slot.dst_key);
  DstBucket& db = dit->second;
  auto& vec = slot.is_exact ? db.exact.at(slot.exact_value) : db.coarse;
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [id](const Entry& e) { return e.id == id; }),
            vec.end());
  // Prune emptied storage so long-lived indexes under churn do not
  // accumulate dead buckets (and wildcard queries do not scan them).
  if (vec.empty() && slot.is_exact) db.exact.erase(slot.exact_value);
  if (db.empty()) {
    bit->second.erase(dit);
    if (bit->second.empty()) buckets_.erase(bit);
  }
  by_id_.erase(it);
}

void RuleIndex::clear() {
  buckets_.clear();
  by_id_.clear();
}

std::vector<RuleId> RuleIndex::find_overlapping(const TernaryMatch& m) const {
  std::vector<RuleId> out;
  out.reserve(16);
  for_each_overlapping(m, [&out](RuleId id, const TernaryMatch&) { out.push_back(id); });
  return out;
}

RuleIndex::Stats RuleIndex::stats() const {
  Stats s;
  for (const auto& [proto, dst] : buckets_) {
    (void)proto;
    for (const auto& [key, db] : dst) {
      (void)key;
      // Each exact-address group and each coarse vector is one contiguous
      // scan unit, so count them as separate buckets.
      for (const auto& [addr, entries] : db.exact) {
        (void)addr;
        ++s.buckets;
        s.entries += entries.size();
        s.largest_bucket = std::max(s.largest_bucket, entries.size());
      }
      if (!db.coarse.empty()) {
        ++s.buckets;
        s.entries += db.coarse.size();
        s.largest_bucket = std::max(s.largest_bucket, db.coarse.size());
      }
    }
  }
  return s;
}

size_t RuleIndex::approx_size() const { return stats().entries; }

}  // namespace ruletris::flowspace
