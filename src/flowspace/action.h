// Rule actions and the action-set algebra used by modular composition.
//
// Parallel composition unions action sets; sequential composition threads a
// packet through the left rule's header rewrites before the right rule acts
// (Sec. IV-A). Both operations, plus the rewrite pre-image needed to compute
// sequential match composition, live here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flowspace/field.h"
#include "flowspace/ternary.h"

namespace ruletris::flowspace {

enum class ActionType : uint8_t {
  kForward = 0,       // arg = output port
  kDrop = 1,
  kToController = 2,  // punt to the SDN controller
  kToSoftware = 3,    // CacheFlow cover-set punt to the software switch
  kCount = 4,         // monitoring: bump a flow counter (arg = counter id)
  kSetField = 5,      // rewrite `field` to `arg`
};

struct Action {
  ActionType type = ActionType::kDrop;
  FieldId field = FieldId::kInPort;  // meaningful for kSetField only
  uint32_t arg = 0;

  static Action forward(uint32_t port) { return {ActionType::kForward, FieldId::kInPort, port}; }
  static Action drop() { return {ActionType::kDrop, FieldId::kInPort, 0}; }
  static Action to_controller() { return {ActionType::kToController, FieldId::kInPort, 0}; }
  static Action to_software() { return {ActionType::kToSoftware, FieldId::kInPort, 0}; }
  static Action count(uint32_t counter) { return {ActionType::kCount, FieldId::kInPort, counter}; }
  static Action set_field(FieldId f, uint32_t v) { return {ActionType::kSetField, f, v}; }

  bool is_set_field() const { return type == ActionType::kSetField; }

  auto operator<=>(const Action&) const = default;

  std::string to_string() const;
};

/// A canonically ordered, duplicate-free set of actions. Canonical form
/// makes action-set equality (needed by floating-rule elimination and by
/// key-vertex handling) a plain vector compare.
class ActionList {
 public:
  ActionList() = default;
  ActionList(std::initializer_list<Action> actions);
  explicit ActionList(std::vector<Action> actions);

  const std::vector<Action>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  size_t size() const { return actions_.size(); }

  void add(const Action& a);

  bool contains(ActionType t) const;

  /// The set-field rewrites contained in this list, in field order.
  std::vector<Action> set_fields() const;

  /// Parallel composition: union of the two sets (Sec. IV-A).
  static ActionList parallel_union(const ActionList& a, const ActionList& b);

  /// Sequential composition: left's rewrites applied first, right's rewrites
  /// override on the same field; all terminal actions are unioned
  /// (the paper's "union of actions" with rewrite-override semantics).
  static ActionList sequential_merge(const ActionList& left, const ActionList& right);

  /// Applies this list's set-field rewrites to a concrete packet.
  Packet apply_rewrites(const Packet& p) const;

  /// Applies this list's rewrites to a match: rewritten fields become exact.
  TernaryMatch apply_rewrites(const TernaryMatch& m) const;

  /// The pre-image of `m` under this list's rewrites: the set of headers
  /// that, after rewriting, land in `m`. nullopt when no header does (a
  /// rewrite conflicts with `m`'s constraint on that field).
  std::optional<TernaryMatch> rewrite_preimage(const TernaryMatch& m) const;

  bool operator==(const ActionList&) const = default;

  size_t hash() const;
  std::string to_string() const;

 private:
  void canonicalize();
  std::vector<Action> actions_;
};

}  // namespace ruletris::flowspace
