#include "flowspace/ternary.h"

#include <bit>
#include <stdexcept>

#include "util/strfmt.h"

namespace ruletris::flowspace {

using util::strfmt;

std::string ip_to_string(uint32_t ip) {
  return strfmt("%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
}

TernaryMatch& TernaryMatch::set_exact(FieldId f, uint32_t value) {
  return set_ternary(f, value, field_full_mask(f));
}

TernaryMatch& TernaryMatch::set_prefix(FieldId f, uint32_t value, uint32_t prefix_len) {
  const uint32_t w = field_width(f);
  if (prefix_len > w) throw std::invalid_argument("prefix_len exceeds field width");
  const uint32_t mask =
      prefix_len == 0 ? 0u
                      : (field_full_mask(f) & ~((prefix_len >= w) ? 0u : ((1u << (w - prefix_len)) - 1u)));
  return set_ternary(f, value, mask);
}

TernaryMatch& TernaryMatch::set_ternary(FieldId f, uint32_t value, uint32_t mask) {
  const uint32_t full = field_full_mask(f);
  if ((mask & ~full) != 0) throw std::invalid_argument("mask exceeds field width");
  fields_[field_index(f)] = FieldTernary{value & mask, mask};
  return *this;
}

TernaryMatch& TernaryMatch::set_wildcard(FieldId f) {
  fields_[field_index(f)] = FieldTernary{};
  return *this;
}

bool TernaryMatch::is_wildcard() const {
  for (const auto& ft : fields_) {
    if (ft.mask != 0) return false;
  }
  return true;
}

bool TernaryMatch::matches(const Packet& p) const {
  for (size_t i = 0; i < kNumFields; ++i) {
    if (((p.fields[i] ^ fields_[i].value) & fields_[i].mask) != 0) return false;
  }
  return true;
}

bool TernaryMatch::overlaps(const TernaryMatch& other) const {
  for (size_t i = 0; i < kNumFields; ++i) {
    const uint32_t common = fields_[i].mask & other.fields_[i].mask;
    if (((fields_[i].value ^ other.fields_[i].value) & common) != 0) return false;
  }
  return true;
}

std::optional<TernaryMatch> TernaryMatch::intersect(const TernaryMatch& other) const {
  if (!overlaps(other)) return std::nullopt;
  TernaryMatch out;
  for (size_t i = 0; i < kNumFields; ++i) {
    out.fields_[i].mask = fields_[i].mask | other.fields_[i].mask;
    out.fields_[i].value =
        (fields_[i].value & fields_[i].mask) | (other.fields_[i].value & other.fields_[i].mask);
  }
  return out;
}

bool TernaryMatch::subsumes(const TernaryMatch& other) const {
  for (size_t i = 0; i < kNumFields; ++i) {
    // Every bit we care about must be cared about by `other` with the same
    // value; otherwise `other` has packets outside us (or disagrees).
    if ((fields_[i].mask & other.fields_[i].mask) != fields_[i].mask) return false;
    if (((fields_[i].value ^ other.fields_[i].value) & fields_[i].mask) != 0) return false;
  }
  return true;
}

uint32_t TernaryMatch::specified_bits() const {
  uint32_t n = 0;
  for (const auto& ft : fields_) n += static_cast<uint32_t>(std::popcount(ft.mask));
  return n;
}

std::vector<TernaryMatch> TernaryMatch::subtract(const TernaryMatch& other) const {
  if (!overlaps(other)) return {*this};
  std::vector<TernaryMatch> pieces;
  subtract_into(other, pieces);
  return pieces;
}

void TernaryMatch::subtract_into(const TernaryMatch& other,
                                 std::vector<TernaryMatch>& out) const {
  if (!overlaps(other)) {
    out.push_back(*this);
    return;
  }
  // Orthogonal split: enumerate bit positions that `other` constrains but we
  // do not. For the k-th such position, emit the piece of `this` that agrees
  // with `other` on positions 0..k-1 and disagrees on position k. The pieces
  // are pairwise disjoint and their union is exactly `this \ other`.
  TernaryMatch agreed = *this;  // progressively constrained to agree with `other`
  for (size_t i = 0; i < kNumFields; ++i) {
    uint32_t extra = other.fields_[i].mask & ~fields_[i].mask;
    while (extra != 0) {
      const uint32_t bit = extra & (~extra + 1);  // lowest set bit
      extra &= ~bit;
      TernaryMatch piece = agreed;
      piece.fields_[i].mask |= bit;
      piece.fields_[i].value =
          (piece.fields_[i].value & ~bit) | (~other.fields_[i].value & bit);
      out.push_back(piece);
      agreed.fields_[i].mask |= bit;
      agreed.fields_[i].value =
          (agreed.fields_[i].value & ~bit) | (other.fields_[i].value & bit);
    }
  }
  // If no extra positions exist, `other` subsumes us given the overlap and
  // nothing is emitted.
}

Packet TernaryMatch::sample_packet() const {
  Packet p;
  for (size_t i = 0; i < kNumFields; ++i) p.fields[i] = fields_[i].value;
  return p;
}

size_t TernaryMatch::hash() const {
  // FNV-1a over the field words.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint32_t w) {
    h ^= w;
    h *= 0x100000001b3ULL;
  };
  for (const auto& ft : fields_) {
    mix(ft.value);
    mix(ft.mask);
  }
  return static_cast<size_t>(h);
}

std::string TernaryMatch::to_string() const {
  std::string out = "{";
  bool first = true;
  for (FieldId f : kAllFields) {
    const auto& ft = fields_[field_index(f)];
    if (ft.mask == 0) continue;
    if (!first) out += ", ";
    first = false;
    if (f == FieldId::kSrcIp || f == FieldId::kDstIp) {
      const uint32_t prefix_len = static_cast<uint32_t>(std::popcount(ft.mask));
      out += strfmt("%s=%s/%u", field_name(f), ip_to_string(ft.value).c_str(), prefix_len);
    } else if (ft.mask == field_full_mask(f)) {
      out += strfmt("%s=%u", field_name(f), ft.value);
    } else {
      out += strfmt("%s=0x%x/0x%x", field_name(f), ft.value, ft.mask);
    }
  }
  if (first) out += "*";
  out += "}";
  return out;
}

CoverResult try_cover(const TernaryMatch& m, std::span<const TernaryMatch> cover,
                      CoverScratch& scratch, size_t fragment_limit) {
  scratch.last_fragments_ = 1;
  if (cover.empty()) return CoverResult::kNotCovered;
  // A single subsuming cover element settles the test without fragmenting —
  // by far the most common "covered" case in DAG construction.
  for (const TernaryMatch& c : cover) {
    if (c.subsumes(m)) return CoverResult::kCovered;
  }

  // Depth-first residue search. Each pending entry is a fragment of `m`
  // disjoint from cover[0 .. next_cover); a fragment that survives the whole
  // cover list is a witness packet set, so the search stops immediately.
  auto& stack = scratch.stack_;
  auto& pieces = scratch.pieces_;
  stack.clear();
  stack.push_back({m, 0});
  size_t generated = 1;
  while (!stack.empty()) {
    auto [frag, i] = stack.back();
    stack.pop_back();
    while (i < cover.size() && !frag.overlaps(cover[i])) ++i;
    if (i == cover.size()) {
      scratch.last_fragments_ = generated;
      return CoverResult::kNotCovered;
    }
    if (cover[i].subsumes(frag)) continue;  // fragment fully absorbed
    pieces.clear();
    frag.subtract_into(cover[i], pieces);
    generated += pieces.size();
    if (generated > fragment_limit) {
      scratch.last_fragments_ = generated;
      return CoverResult::kOverflow;
    }
    for (const TernaryMatch& p : pieces) stack.push_back({p, i + 1});
  }
  scratch.last_fragments_ = generated;
  return CoverResult::kCovered;
}

bool is_covered_by(const TernaryMatch& m, const std::vector<TernaryMatch>& cover,
                   size_t fragment_limit) {
  CoverScratch scratch;
  switch (try_cover(m, {cover.data(), cover.size()}, scratch, fragment_limit)) {
    case CoverResult::kCovered: return true;
    case CoverResult::kNotCovered: return false;
    case CoverResult::kOverflow: break;
  }
  throw std::runtime_error("is_covered_by: fragment limit exceeded");
}

}  // namespace ruletris::flowspace
