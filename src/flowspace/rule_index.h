// Overlap index over rule matches.
//
// Incremental composition (Sec. IV-C) and bulk DAG extraction repeatedly ask
// "which rules overlap this match?". Following CoVisor, we keep an index
// instead of scanning the whole table. The index is two-level:
//
//   1. ip_proto bucket — the proto value when exactly matched, else a
//      wildcard bucket (the most selective exactly-matched field in the
//      paper's workloads);
//   2. dst_ip /8 sub-bucket — the top octet of dst_ip when the match
//      specifies all eight of those bits, else a catch-all sub-bucket;
//   3. within a /8 sub-bucket, exact (/32) dst_ip matches are hashed by
//      their full address, everything coarser stays in a scan vector.
//
// Two matches whose dst_ip top octets are both fully specified can only
// overlap when the octets are equal, so a query visits exactly one /8
// sub-bucket plus the catch-all — on prefix-heavy tables (FIBs, monitors)
// this prunes candidate scans by two orders of magnitude. The third level
// covers host-route-shaped tables (NAT pools, exact-match caches) whose
// addresses share one /8: two exact dsts only overlap when equal, so an
// exact-dst query probes a single hash group plus the coarse vector instead
// of scanning the whole octet's population. Candidates are then confirmed
// with the cheap per-field overlap test, so bucketing never affects the
// result set.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flowspace/rule.h"

namespace ruletris::flowspace {

class RuleIndex {
 public:
  void insert(RuleId id, const TernaryMatch& match);
  void erase(RuleId id);
  void clear();

  size_t size() const { return by_id_.size(); }

  /// Ids of all indexed matches that overlap `m` (unordered).
  std::vector<RuleId> find_overlapping(const TernaryMatch& m) const;

  /// Calls `fn(id, match)` for every indexed match that overlaps `m`, in no
  /// particular order. Allocation-free variant of find_overlapping for hot
  /// paths that immediately filter or copy the candidates.
  template <typename Fn>
  void for_each_overlapping(const TernaryMatch& m, Fn&& fn) const;

  /// Shape of the index, for bench reporting and hygiene tests.
  struct Stats {
    size_t entries = 0;         // total indexed matches
    size_t buckets = 0;         // non-empty (proto, dst) bucket vectors
    size_t largest_bucket = 0;  // worst-case single-bucket scan length
  };
  Stats stats() const;

  /// Total entries held in bucket storage. Equal to size() by invariant —
  /// erase() prunes emptied buckets — and recomputed from the buckets so
  /// tests and benches can assert that invariant cheaply.
  size_t approx_size() const;

 private:
  struct Entry {
    RuleId id;
    TernaryMatch match;
  };

  // Bucket keys. Proto: ip_proto value when exactly matched, else wildcard.
  // Dst: top octet of dst_ip when those 8 bits are all specified, else the
  // catch-all. Values are chosen outside the fields' 8-bit ranges.
  static constexpr uint32_t kWildcardBucket = 0xffffffffu;
  static constexpr uint32_t kAnyDst = 0xffffffffu;
  static constexpr uint32_t kDstOctetMask = 0xff000000u;

  static uint32_t bucket_of(const TernaryMatch& m);
  static uint32_t dst_key_of(const TernaryMatch& m);
  static bool dst_exact(const TernaryMatch& m, uint32_t& value);

  /// One (proto, /8) sub-bucket: exact /32 dsts hashed by address, coarser
  /// matches in the scan vector.
  struct DstBucket {
    std::unordered_map<uint32_t, std::vector<Entry>> exact;
    std::vector<Entry> coarse;
    bool empty() const { return exact.empty() && coarse.empty(); }
  };

  using DstBuckets = std::unordered_map<uint32_t, DstBucket>;

  /// Where an id lives, so erase() can find it without re-deriving keys.
  struct Slot {
    uint32_t bucket;
    uint32_t dst_key;
    bool is_exact;
    uint32_t exact_value;
  };

  template <typename Fn>
  void scan_vector(const std::vector<Entry>& entries, const TernaryMatch& m,
                   Fn&& fn) const;
  template <typename Fn>
  void scan_bucket(const DstBucket& bucket, const TernaryMatch& m, Fn&& fn) const;
  template <typename Fn>
  void scan_dst(const DstBuckets& dst, uint32_t dst_key, const TernaryMatch& m,
                Fn&& fn) const;

  std::unordered_map<uint32_t, DstBuckets> buckets_;
  std::unordered_map<RuleId, Slot> by_id_;
};

template <typename Fn>
void RuleIndex::scan_vector(const std::vector<Entry>& entries, const TernaryMatch& m,
                            Fn&& fn) const {
  for (const Entry& e : entries) {
    if (e.match.overlaps(m)) fn(e.id, e.match);
  }
}

template <typename Fn>
void RuleIndex::scan_bucket(const DstBucket& bucket, const TernaryMatch& m,
                            Fn&& fn) const {
  uint32_t value;
  if (dst_exact(m, value)) {
    // Exact-dst query: an exact-dst entry overlaps only on an equal address,
    // so probe that one hash group; the coarse vector still needs the scan.
    if (auto it = bucket.exact.find(value); it != bucket.exact.end()) {
      scan_vector(it->second, m, fn);
    }
  } else {
    // Coarser query: prune each exact group with one dst test (the group
    // shares its address) before confirming entries field-by-field.
    const FieldTernary& ft = m.field(FieldId::kDstIp);
    for (const auto& [addr, entries] : bucket.exact) {
      if ((addr & ft.mask) == (ft.value & ft.mask)) scan_vector(entries, m, fn);
    }
  }
  scan_vector(bucket.coarse, m, fn);
}

template <typename Fn>
void RuleIndex::scan_dst(const DstBuckets& dst, uint32_t dst_key, const TernaryMatch& m,
                         Fn&& fn) const {
  if (dst_key == kAnyDst) {
    // A dst-wildcard-ish query can overlap every sub-bucket.
    for (const auto& [key, bucket] : dst) {
      (void)key;
      scan_bucket(bucket, m, fn);
    }
    return;
  }
  if (auto it = dst.find(dst_key); it != dst.end()) scan_bucket(it->second, m, fn);
  if (auto it = dst.find(kAnyDst); it != dst.end()) scan_bucket(it->second, m, fn);
}

template <typename Fn>
void RuleIndex::for_each_overlapping(const TernaryMatch& m, Fn&& fn) const {
  const uint32_t bucket = bucket_of(m);
  const uint32_t dst_key = dst_key_of(m);
  if (bucket == kWildcardBucket) {
    // A proto-wildcard query can overlap any proto bucket.
    for (const auto& [key, dst] : buckets_) {
      (void)key;
      scan_dst(dst, dst_key, m, fn);
    }
    return;
  }
  if (auto it = buckets_.find(bucket); it != buckets_.end()) {
    scan_dst(it->second, dst_key, m, fn);
  }
  if (auto it = buckets_.find(kWildcardBucket); it != buckets_.end()) {
    scan_dst(it->second, dst_key, m, fn);
  }
}

}  // namespace ruletris::flowspace
