// Overlap index over rule matches.
//
// Incremental composition (Sec. IV-C) repeatedly asks "which rules of the
// other member table overlap this new rule?". Following CoVisor, we keep an
// index instead of scanning the whole table: rules are bucketed by their
// ip_proto constraint (the most selective exactly-matched field in the
// paper's workloads), and candidates are rejected with the cheap per-field
// overlap test.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flowspace/rule.h"

namespace ruletris::flowspace {

class RuleIndex {
 public:
  void insert(RuleId id, const TernaryMatch& match);
  void erase(RuleId id);
  void clear();

  size_t size() const { return by_id_.size(); }

  /// Ids of all indexed matches that overlap `m` (unordered).
  std::vector<RuleId> find_overlapping(const TernaryMatch& m) const;

 private:
  struct Entry {
    RuleId id;
    TernaryMatch match;
  };

  // Bucket key: ip_proto value when exactly matched, or the wildcard bucket.
  static constexpr uint32_t kWildcardBucket = 0xffffffffu;
  static uint32_t bucket_of(const TernaryMatch& m);

  void scan_bucket(uint32_t bucket, const TernaryMatch& m,
                   std::vector<RuleId>& out) const;

  std::unordered_map<uint32_t, std::vector<Entry>> buckets_;
  std::unordered_map<RuleId, uint32_t> by_id_;  // id -> bucket
};

}  // namespace ruletris::flowspace
