// Multi-field ternary matches: the flow-space elements of RuleTris.
//
// A TernaryMatch constrains each header field with a (value, mask) pair,
// where mask bits select the cared-about positions. The algebra implemented
// here — overlap, intersection, subsumption, subtraction — is exactly what
// the paper's DAG construction (Sec. IV-B) and redundancy elimination
// (Sec. V-B) require.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flowspace/field.h"

namespace ruletris::flowspace {

/// Ternary constraint on a single field. Canonical form: value bits outside
/// the mask are zero, and both stay within the field width.
struct FieldTernary {
  uint32_t value = 0;
  uint32_t mask = 0;  // 0 == fully wildcarded

  bool operator==(const FieldTernary&) const = default;
};

class TernaryMatch {
 public:
  /// Constructs the all-wildcard match (matches every packet).
  TernaryMatch() = default;

  /// The universe match "*".
  static TernaryMatch wildcard() { return TernaryMatch(); }

  const FieldTernary& field(FieldId f) const { return fields_[field_index(f)]; }

  /// Constrains `f` to exactly `value`.
  TernaryMatch& set_exact(FieldId f, uint32_t value);

  /// Constrains `f` to the `prefix_len` high bits of `value` (CIDR style).
  TernaryMatch& set_prefix(FieldId f, uint32_t value, uint32_t prefix_len);

  /// Constrains `f` with an arbitrary ternary (value, mask) pair.
  TernaryMatch& set_ternary(FieldId f, uint32_t value, uint32_t mask);

  /// Removes any constraint on `f`.
  TernaryMatch& set_wildcard(FieldId f);

  bool is_wildcard() const;
  bool matches(const Packet& p) const;

  /// True iff some packet matches both.
  bool overlaps(const TernaryMatch& other) const;

  /// Intersection of the two flow spaces; nullopt when disjoint.
  std::optional<TernaryMatch> intersect(const TernaryMatch& other) const;

  /// True iff this match's flow space contains `other`'s entirely.
  bool subsumes(const TernaryMatch& other) const;

  /// Total number of cared-about (masked) bits; 0 for "*". A coarse
  /// specificity measure used by generators and diagnostics.
  uint32_t specified_bits() const;

  /// `this \ other` as a set of pairwise-disjoint ternary matches. Empty
  /// result means this ⊆ other.
  std::vector<TernaryMatch> subtract(const TernaryMatch& other) const;

  /// A packet contained in this match (all wildcard bits zeroed).
  Packet sample_packet() const;

  bool operator==(const TernaryMatch&) const = default;

  /// Stable hash for use as an unordered-map key (the compiler's nested
  /// key-vertex structure indexes vertices by match).
  size_t hash() const;

  std::string to_string() const;

 private:
  std::array<FieldTernary, kNumFields> fields_{};
};

struct TernaryMatchHash {
  size_t operator()(const TernaryMatch& m) const { return m.hash(); }
};

/// True iff `m` is entirely covered by the union of `cover`.
/// Exact (performs iterative subtraction). `fragment_limit` bounds the
/// intermediate fragment count; exceeding it throws std::runtime_error —
/// callers in this repository stay far below the default.
bool is_covered_by(const TernaryMatch& m, const std::vector<TernaryMatch>& cover,
                   size_t fragment_limit = 1 << 20);

}  // namespace ruletris::flowspace
