// Rules and flow tables.
//
// A FlowTable is a prioritized rule list with first-match-wins semantics on
// priority (ties broken by insertion order, matching OpenFlow's undefined
// tie behaviour deterministically). It is the common abstraction shared by
// the front-end compilers and by the switch-side table image.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flowspace/action.h"
#include "flowspace/ternary.h"

namespace ruletris::flowspace {

using RuleId = uint64_t;
inline constexpr RuleId kInvalidRuleId = 0;

/// Process-wide monotonic rule-id source. Ids are never reused, which lets
/// provenance maps and DAG deltas refer to rules unambiguously across
/// updates.
RuleId next_rule_id();

/// Raises the id counter so that every future next_rule_id() exceeds
/// `floor`. Thawing a frozen snapshot must call this with the highest id the
/// snapshot references, or fresh rules would collide with restored ones.
/// Idempotent; never lowers the counter. Applies to the active scoped
/// namespace when one is installed (see ScopedRuleIdNamespace).
void ensure_rule_id_floor(RuleId floor);

/// Redirects this thread's next_rule_id() to a caller-owned counter while
/// in scope (restores the previous redirect — scopes nest).
///
/// The process-global counter makes ids depend on everything the process
/// allocated before — across threads, on scheduling. The sharded fleet
/// controller compiles hundreds of independent per-switch policies
/// concurrently and requires their wire images, TCAM layouts and RTDZ
/// deltas to be bit-identical for every thread count, so it gives each
/// switch a private id namespace (a disjoint base like (switch+1) << 32)
/// and wraps every compile step touching that switch in this scope. The
/// counter is caller-owned and unsynchronized: the caller must serialize
/// scopes over the same counter (the fleet's shard locks do).
class ScopedRuleIdNamespace {
 public:
  explicit ScopedRuleIdNamespace(RuleId* counter);
  ~ScopedRuleIdNamespace();
  ScopedRuleIdNamespace(const ScopedRuleIdNamespace&) = delete;
  ScopedRuleIdNamespace& operator=(const ScopedRuleIdNamespace&) = delete;

 private:
  RuleId* prev_;
};

struct Rule {
  RuleId id = kInvalidRuleId;
  TernaryMatch match;
  ActionList actions;
  int32_t priority = 0;

  static Rule make(TernaryMatch match, ActionList actions, int32_t priority) {
    return Rule{next_rule_id(), std::move(match), std::move(actions), priority};
  }

  std::string to_string() const;
};

class FlowTable {
 public:
  FlowTable() = default;

  /// Builds a table from rules; keeps them sorted by descending priority
  /// (stable on ties).
  explicit FlowTable(std::vector<Rule> rules);

  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  /// Rules in descending priority order (index 0 = matched first).
  const std::vector<Rule>& rules() const { return rules_; }

  bool contains(RuleId id) const { return index_.count(id) != 0; }
  const Rule& rule(RuleId id) const;

  /// Inserts keeping the priority order; returns the rule's id.
  RuleId insert(Rule rule);

  /// Removes by id; returns the removed rule, or nullopt if absent.
  std::optional<Rule> erase(RuleId id);

  /// First-match lookup; nullptr when no rule matches.
  const Rule* lookup(const Packet& p) const;

  /// Position of the rule in priority order (0 = highest).
  size_t position(RuleId id) const;

  std::string to_string() const;

 private:
  void reindex();

  std::vector<Rule> rules_;                     // descending priority
  std::unordered_map<RuleId, size_t> index_;    // id -> position
};

}  // namespace ruletris::flowspace
