#include "flowspace/rule.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/strfmt.h"

namespace ruletris::flowspace {

using util::strfmt;

namespace {
std::atomic<RuleId>& rule_id_counter() {
  static std::atomic<RuleId> counter{1};
  return counter;
}
// Active per-thread id namespace; null = the process-global counter.
thread_local RuleId* tl_id_counter = nullptr;
}  // namespace

RuleId next_rule_id() {
  if (tl_id_counter != nullptr) return (*tl_id_counter)++;
  return rule_id_counter().fetch_add(1, std::memory_order_relaxed);
}

void ensure_rule_id_floor(RuleId floor) {
  if (tl_id_counter != nullptr) {
    *tl_id_counter = std::max(*tl_id_counter, floor + 1);
    return;
  }
  auto& counter = rule_id_counter();
  RuleId cur = counter.load(std::memory_order_relaxed);
  while (cur <= floor &&
         !counter.compare_exchange_weak(cur, floor + 1, std::memory_order_relaxed)) {
  }
}

ScopedRuleIdNamespace::ScopedRuleIdNamespace(RuleId* counter) : prev_(tl_id_counter) {
  tl_id_counter = counter;
}

ScopedRuleIdNamespace::~ScopedRuleIdNamespace() { tl_id_counter = prev_; }

std::string Rule::to_string() const {
  return strfmt("#%llu prio=%d %s -> %s", static_cast<unsigned long long>(id),
                priority, match.to_string().c_str(), actions.to_string().c_str());
}

FlowTable::FlowTable(std::vector<Rule> rules) : rules_(std::move(rules)) {
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const Rule& a, const Rule& b) { return a.priority > b.priority; });
  reindex();
}

void FlowTable::reindex() {
  index_.clear();
  index_.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) index_[rules_[i].id] = i;
}

const Rule& FlowTable::rule(RuleId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("FlowTable::rule: unknown id");
  return rules_[it->second];
}

RuleId FlowTable::insert(Rule rule) {
  const RuleId id = rule.id;
  if (id == kInvalidRuleId) throw std::invalid_argument("FlowTable::insert: invalid id");
  if (index_.count(id)) throw std::invalid_argument("FlowTable::insert: duplicate id");
  // Insert after all existing rules with >= priority (stable tie order).
  auto it = std::upper_bound(
      rules_.begin(), rules_.end(), rule.priority,
      [](int32_t p, const Rule& r) { return p > r.priority; });
  rules_.insert(it, std::move(rule));
  reindex();
  return id;
}

std::optional<Rule> FlowTable::erase(RuleId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  Rule removed = std::move(rules_[it->second]);
  rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(it->second));
  reindex();
  return removed;
}

const Rule* FlowTable::lookup(const Packet& p) const {
  for (const Rule& r : rules_) {
    if (r.match.matches(p)) return &r;
  }
  return nullptr;
}

size_t FlowTable::position(RuleId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("FlowTable::position: unknown id");
  return it->second;
}

std::string FlowTable::to_string() const {
  std::string out;
  for (const Rule& r : rules_) {
    out += r.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace ruletris::flowspace
