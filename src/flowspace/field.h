// Header-field vocabulary for the flow-space algebra.
//
// RuleTris composes OpenFlow-style rules over a fixed multi-field header.
// We model the classic 5-tuple plus ingress port and EtherType, which covers
// every workload in the paper (L3-L4 monitoring, L3 routing, L3-L4 NAT).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ruletris::flowspace {

enum class FieldId : uint8_t {
  kInPort = 0,
  kEthType = 1,
  kIpProto = 2,
  kSrcIp = 3,
  kDstIp = 4,
  kSrcPort = 5,
  kDstPort = 6,
};

inline constexpr size_t kNumFields = 7;

inline constexpr std::array<FieldId, kNumFields> kAllFields = {
    FieldId::kInPort, FieldId::kEthType, FieldId::kIpProto, FieldId::kSrcIp,
    FieldId::kDstIp,  FieldId::kSrcPort, FieldId::kDstPort,
};

/// Bit width of each field.
constexpr uint32_t field_width(FieldId f) {
  switch (f) {
    case FieldId::kInPort: return 8;
    case FieldId::kEthType: return 16;
    case FieldId::kIpProto: return 8;
    case FieldId::kSrcIp: return 32;
    case FieldId::kDstIp: return 32;
    case FieldId::kSrcPort: return 16;
    case FieldId::kDstPort: return 16;
  }
  return 0;
}

/// All-ones mask of the field's width (the "fully specified" mask).
constexpr uint32_t field_full_mask(FieldId f) {
  const uint32_t w = field_width(f);
  return w >= 32 ? 0xffffffffu : ((1u << w) - 1u);
}

constexpr const char* field_name(FieldId f) {
  switch (f) {
    case FieldId::kInPort: return "in_port";
    case FieldId::kEthType: return "eth_type";
    case FieldId::kIpProto: return "ip_proto";
    case FieldId::kSrcIp: return "src_ip";
    case FieldId::kDstIp: return "dst_ip";
    case FieldId::kSrcPort: return "src_port";
    case FieldId::kDstPort: return "dst_port";
  }
  return "?";
}

constexpr size_t field_index(FieldId f) { return static_cast<size_t>(f); }

/// A concrete packet header: one value per field. Used by lookup semantics
/// and the semantic-equivalence property tests.
struct Packet {
  std::array<uint32_t, kNumFields> fields{};

  uint32_t get(FieldId f) const { return fields[field_index(f)]; }
  void set(FieldId f, uint32_t v) { fields[field_index(f)] = v & field_full_mask(f); }
};

std::string ip_to_string(uint32_t ip);

}  // namespace ruletris::flowspace
