#include "flowspace/action.h"

#include <algorithm>

#include "util/strfmt.h"

namespace ruletris::flowspace {

using util::strfmt;

std::string Action::to_string() const {
  switch (type) {
    case ActionType::kForward: return strfmt("fwd(%u)", arg);
    case ActionType::kDrop: return "drop";
    case ActionType::kToController: return "to_controller";
    case ActionType::kToSoftware: return "to_software";
    case ActionType::kCount: return strfmt("count(%u)", arg);
    case ActionType::kSetField:
      if (field == FieldId::kSrcIp || field == FieldId::kDstIp) {
        return strfmt("set(%s=%s)", field_name(field), ip_to_string(arg).c_str());
      }
      return strfmt("set(%s=%u)", field_name(field), arg);
  }
  return "?";
}

ActionList::ActionList(std::initializer_list<Action> actions)
    : actions_(actions) {
  canonicalize();
}

ActionList::ActionList(std::vector<Action> actions) : actions_(std::move(actions)) {
  canonicalize();
}

void ActionList::canonicalize() {
  std::sort(actions_.begin(), actions_.end());
  actions_.erase(std::unique(actions_.begin(), actions_.end()), actions_.end());
}

void ActionList::add(const Action& a) {
  actions_.push_back(a);
  canonicalize();
}

bool ActionList::contains(ActionType t) const {
  return std::any_of(actions_.begin(), actions_.end(),
                     [t](const Action& a) { return a.type == t; });
}

std::vector<Action> ActionList::set_fields() const {
  std::vector<Action> out;
  for (const Action& a : actions_) {
    if (a.is_set_field()) out.push_back(a);
  }
  return out;
}

ActionList ActionList::parallel_union(const ActionList& a, const ActionList& b) {
  std::vector<Action> merged = a.actions_;
  merged.insert(merged.end(), b.actions_.begin(), b.actions_.end());
  return ActionList(std::move(merged));
}

ActionList ActionList::sequential_merge(const ActionList& left, const ActionList& right) {
  std::vector<Action> merged;
  // Left's rewrites survive unless the right rewrites the same field.
  for (const Action& a : left.actions_) {
    if (!a.is_set_field()) {
      if (a.type != ActionType::kForward) merged.push_back(a);  // terminals union;
      // a left Forward is consumed by feeding the packet to the right stage.
      continue;
    }
    const bool overridden =
        std::any_of(right.actions_.begin(), right.actions_.end(), [&](const Action& b) {
          return b.is_set_field() && b.field == a.field;
        });
    if (!overridden) merged.push_back(a);
  }
  merged.insert(merged.end(), right.actions_.begin(), right.actions_.end());
  return ActionList(std::move(merged));
}

Packet ActionList::apply_rewrites(const Packet& p) const {
  Packet out = p;
  for (const Action& a : actions_) {
    if (a.is_set_field()) out.set(a.field, a.arg);
  }
  return out;
}

TernaryMatch ActionList::apply_rewrites(const TernaryMatch& m) const {
  TernaryMatch out = m;
  for (const Action& a : actions_) {
    if (a.is_set_field()) out.set_exact(a.field, a.arg);
  }
  return out;
}

std::optional<TernaryMatch> ActionList::rewrite_preimage(const TernaryMatch& m) const {
  TernaryMatch out = m;
  for (const Action& a : actions_) {
    if (!a.is_set_field()) continue;
    const FieldTernary& ft = m.field(a.field);
    // After the rewrite the field equals a.arg; `m` accepts that iff its
    // constraint is compatible. If so, the original value is unconstrained.
    if (((a.arg ^ ft.value) & ft.mask) != 0) return std::nullopt;
    out.set_wildcard(a.field);
  }
  return out;
}

size_t ActionList::hash() const {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const Action& a : actions_) {
    h ^= (static_cast<uint64_t>(a.type) << 40) ^
         (static_cast<uint64_t>(a.field) << 32) ^ a.arg;
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(h);
}

std::string ActionList::to_string() const {
  if (actions_.empty()) return "[]";
  std::string out = "[";
  for (size_t i = 0; i < actions_.size(); ++i) {
    if (i) out += ", ";
    out += actions_[i].to_string();
  }
  out += "]";
  return out;
}

}  // namespace ruletris::flowspace
