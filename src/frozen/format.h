// On-disk record layout of frozen policy snapshots and epoch deltas.
//
// Everything here is a trivially-copyable POD with explicit padding, laid
// out so that an mmap'ed blob can be read in place through util::ArenaView
// (see util/arena.h for the container framing). Cross-references are entry
// *indices* (u32, position in the table's entry section) or rule ids (u64,
// the process-global ids the epoch log already ships), never pointers —
// the blob is position-independent by construction.
//
// A policy snapshot holds `n_tables` tables; table t's sections live at
// kind = table_section(t, k*). One table freezes the full compiled state of
// one composed root: every member entry (including obscured ones — they are
// what future removals promote), the key-vertex representatives, the
// visible minimum-DAG edges, the matched-first visible order, and
// optionally the TCAM layout of a scheduler that had the table installed.
//
// Version history: 1 = initial format.
#pragma once

#include <cstdint>
#include <type_traits>

#include "flowspace/field.h"

namespace ruletris::frozen {

inline constexpr uint32_t kPolicyMagic = 0x5A465452u;  // "RTFZ" on disk
inline constexpr uint32_t kDeltaMagic = 0x5A445452u;   // "RTDZ" on disk
inline constexpr uint16_t kFormatVersion = 1;

// --- section kinds ---------------------------------------------------------

/// Blob-global sections.
inline constexpr uint32_t kMetaSection = 1;

/// Per-table section slots; table t's slot k lives at table_section(t, k).
enum TableSlot : uint32_t {
  kEntriesSlot = 0,       // FrozenEntry[]
  kActionsSlot = 1,       // FrozenAction[], referenced by entry action ranges
  kRepsSlot = 2,          // u32 entry indices (key-vertex representatives)
  kVisibleEdgesSlot = 3,  // FrozenEdge[] (entry-index pairs, u -> v)
  kVisibleOrderSlot = 4,  // u32 entry indices, matched-first order
  kLayoutSlot = 5,        // FrozenLayout[] (optional TCAM placements)
};

/// Per-table delta section slots (same stride, kDeltaMagic blobs).
enum DeltaSlot : uint32_t {
  kRemovedEntriesSlot = 0,  // u64 entry ids
  kAddedEntriesSlot = 1,    // FrozenEntry[] (action ranges into slot 2)
  kAddedActionsSlot = 2,    // FrozenAction[]
  kRepsRemovedSlot = 3,     // u64 entry ids
  kRepsAddedSlot = 4,       // u64 entry ids
  kEdgesRemovedSlot = 5,    // FrozenIdEdge[]
  kEdgesAddedSlot = 6,      // FrozenIdEdge[]
  kOrderInsertsSlot = 7,    // FrozenOrderInsert[], ascending position
};

inline constexpr uint32_t kTableSectionBase = 16;
inline constexpr uint32_t kTableSectionStride = 16;

constexpr uint32_t table_section(uint32_t table, uint32_t slot) {
  return kTableSectionBase + table * kTableSectionStride + slot;
}

// --- records ---------------------------------------------------------------

struct FrozenMeta {
  uint64_t epoch = 0;     // compiler epoch the snapshot was taken at
  uint64_t id_floor = 0;  // highest rule id referenced anywhere in the blob
  uint32_t n_tables = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(FrozenMeta) == 24);

/// Global meta record of a delta blob (kDeltaMagic).
struct FrozenDeltaMeta {
  uint64_t from_epoch = 0;  // snapshot epoch the delta applies on top of
  uint64_t to_epoch = 0;    // resulting epoch
  uint64_t id_floor = 0;    // highest rule id introduced by the delta
  uint32_t n_tables = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(FrozenDeltaMeta) == 32);

/// One composed member entry (Sec. IV-B state), match inlined field-major.
struct FrozenEntry {
  uint64_t id = 0;
  uint64_t left_src = 0;
  uint64_t right_src = 0;
  uint32_t value[flowspace::kNumFields] = {};
  uint32_t mask[flowspace::kNumFields] = {};
  uint32_t action_begin = 0;  // range into the actions section
  uint32_t action_count = 0;
};
static_assert(sizeof(FrozenEntry) == 24 + 8 * flowspace::kNumFields + 8);

struct FrozenAction {
  uint8_t type = 0;
  uint8_t field = 0;
  uint16_t reserved = 0;
  uint32_t arg = 0;
};
static_assert(sizeof(FrozenAction) == 8);

/// Visible minimum-DAG edge u -> v ("v matched before u"), entry indices.
struct FrozenEdge {
  uint32_t u = 0;
  uint32_t v = 0;
};
static_assert(sizeof(FrozenEdge) == 8);

/// Same edge, endpoint rule ids (delta blobs reference ids, not indices —
/// indices shift as entries come and go).
struct FrozenIdEdge {
  uint64_t u = 0;
  uint64_t v = 0;
};
static_assert(sizeof(FrozenIdEdge) == 16);

/// TCAM placement of an installed visible rule. References the entry by
/// index so restore is one array hop, no id map build on the warm path.
/// Priority is carried so a restored entry is byte-for-byte the rule the
/// live install wrote (the TCAM encodes match order in the address, but
/// entries retain the controller-assigned priority field).
struct FrozenLayout {
  uint32_t entry_index = 0;
  uint32_t addr = 0;
  int32_t priority = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(FrozenLayout) == 16);

/// "Insert rule `id` at position `pos` of the final visible order."
/// Applied ascending by pos after removals, this reconstructs the new
/// order exactly, because surviving rules never reorder relative to each
/// other (MinDagMaintainer keeps insertion-positioned total order).
struct FrozenOrderInsert {
  uint64_t id = 0;
  uint64_t pos = 0;
};
static_assert(sizeof(FrozenOrderInsert) == 16);

static_assert(std::is_trivially_copyable_v<FrozenMeta> &&
              std::is_trivially_copyable_v<FrozenDeltaMeta> &&
              std::is_trivially_copyable_v<FrozenEntry> &&
              std::is_trivially_copyable_v<FrozenAction> &&
              std::is_trivially_copyable_v<FrozenEdge> &&
              std::is_trivially_copyable_v<FrozenIdEdge> &&
              std::is_trivially_copyable_v<FrozenLayout> &&
              std::is_trivially_copyable_v<FrozenOrderInsert>);

}  // namespace ruletris::frozen
