// Epoch deltas between consecutive PolicyImages.
//
// A PolicyDelta is the minimal edit script taking a frozen snapshot at
// epoch E to the snapshot at epoch E+1: entry removals/additions (member
// entries are immutable per id — the compiler only ever adds or removes
// them), representative churn, visible-edge churn, and the visible-order
// edit. Order is encoded as (id, final position) inserts applied ascending
// after the removals, which reconstructs the new order exactly because the
// compiler never reorders surviving rules relative to each other
// (MinDagMaintainer keeps an insertion-positioned total order) — diff()
// verifies that invariant against both images and throws if it ever breaks.
//
// Deltas intentionally do not carry TCAM layout: a delta updates the
// *compiled* image (what snapshot() compares); the device layout evolves on
// the switch via the normal scheduled updates. apply_delta() therefore
// clears the stale layout of the image it patches.
//
// encode_delta() serializes to an arena blob (kDeltaMagic) small enough to
// ship as a proto::SnapshotPatch message over the CRC32-framed codec;
// encoding is deterministic, so re-encoding a decoded delta is bit-identical.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "frozen/frozen.h"

namespace ruletris::frozen {

struct TableDelta {
  std::vector<RuleId> removed_entries;     // ids, ascending
  std::vector<MemberEntry> added_entries;  // full records, provenance-sorted
  std::vector<RuleId> reps_removed;        // ids, ascending
  std::vector<RuleId> reps_added;          // ids, ascending
  std::vector<std::pair<RuleId, RuleId>> edges_removed;  // sorted
  std::vector<std::pair<RuleId, RuleId>> edges_added;    // sorted
  /// (id, final position) pairs, ascending by position.
  std::vector<std::pair<RuleId, uint64_t>> order_inserts;

  bool empty() const {
    return removed_entries.empty() && added_entries.empty() &&
           reps_removed.empty() && reps_added.empty() && edges_removed.empty() &&
           edges_added.empty() && order_inserts.empty();
  }

  bool operator==(const TableDelta&) const = default;
};

struct PolicyDelta {
  uint64_t from_epoch = 0;
  uint64_t to_epoch = 0;
  std::vector<TableDelta> tables;

  bool operator==(const PolicyDelta&) const = default;
};

/// Structural diff from `from` to `to`. Throws when the images have
/// different table counts or when the surviving-order invariant does not
/// hold (it always does for images captured from the compiler).
PolicyDelta diff(const PolicyImage& from, const PolicyImage& to);

/// Applies a delta in place. Epochs must chain (image.epoch ==
/// delta.from_epoch); every removal must name present state. Keeps the
/// image canonical (sorted forms) and clears stale TCAM layouts. Throws
/// std::runtime_error on any mismatch, leaving the image unspecified.
void apply_delta(PolicyImage& image, const PolicyDelta& delta);

/// Serializes to an arena blob (kDeltaMagic / kFormatVersion).
/// Deterministic: decode_delta(encode_delta(d)) re-encodes bit-identically.
Bytes encode_delta(const PolicyDelta& delta);

/// Parses a delta blob; throws std::runtime_error on corruption. Bumps the
/// process rule-id counter past every id the delta introduces.
PolicyDelta decode_delta(const uint8_t* data, size_t size);
inline PolicyDelta decode_delta(const Bytes& bytes) {
  return decode_delta(bytes.data(), bytes.size());
}

}  // namespace ruletris::frozen
