// Frozen compile artifacts: capture, freeze, thaw.
//
// The live compiler keeps its state in pointer-rich heap structures
// (unordered maps, key vertices, a MinDagMaintainer). This layer decouples
// that state from the heap: PolicyImage is a flat, value-typed image of one
// compiled policy (member entries, key-vertex representatives, visible
// minimum-DAG edges, visible order, and optionally the TCAM layout a
// DagScheduler had installed); freeze() serializes it into an offset-based
// arena blob (util/arena.h + format.h) and thaw() reads one back. A
// restarted controller maps the blob, rebuilds the scheduler graph and TCAM
// layout straight from the sections, and is update-ready without paying the
// cold compile — the ROADMAP item 3 warm-boot path.
//
// Two read paths exist on purpose:
//  * thaw(bytes) materializes a full PolicyImage (value types, easy to
//    diff/compare; used by the delta layer and the equality tests).
//  * FrozenPolicy wraps the validated blob zero-copy and restores a
//    DagScheduler directly from the frozen sections — the restart critical
//    path, where materializing heap vectors first would burn the latency
//    budget the format exists to save.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "compiler/composed_node.h"
#include "compiler/ruletris_compiler.h"
#include "dag/dependency_graph.h"
#include "flowspace/rule.h"
#include "frozen/format.h"
#include "tcam/dag_scheduler.h"
#include "util/arena.h"

namespace ruletris::frozen {

using flowspace::ActionList;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;

using Bytes = std::vector<uint8_t>;

/// One member entry of a composed table, by value.
struct MemberEntry {
  RuleId id = 0;
  RuleId left_src = 0;
  RuleId right_src = 0;
  TernaryMatch match;
  ActionList actions;

  bool operator==(const MemberEntry&) const = default;
};

/// TCAM placement of one installed rule.
struct LayoutEntry {
  RuleId id = 0;
  uint32_t addr = 0;
  int32_t priority = 0;

  bool operator==(const LayoutEntry&) const = default;
};

/// Value-typed image of one compiled table (one composed root).
/// Canonical form — maintained by capture/thaw/delta-apply alike so that
/// operator== is meaningful: entries sorted by (left_src, right_src), reps
/// sorted by id, visible_edges sorted, layout sorted by id. visible_order
/// is semantic order (matched first), not sorted.
struct TableImage {
  std::vector<MemberEntry> entries;
  std::vector<RuleId> reps;
  std::vector<std::pair<RuleId, RuleId>> visible_edges;  // (u, v): u -> v
  std::vector<RuleId> visible_order;                     // matched-first
  std::vector<LayoutEntry> layout;                       // may be empty

  /// Id-independent snapshot, comparable against a live
  /// ComposedNode::snapshot() (thaw ≡ recompile equality).
  compiler::CompileSnapshot snapshot() const;

  /// Visible rules in matched-first order with the descending priorities
  /// the live node would assign.
  std::vector<Rule> visible_rules() const;

  /// Visible minimum DAG over rule ids (vertices = visible order).
  dag::DependencyGraph visible_graph() const;

  /// Highest rule id referenced by this table (0 when empty).
  RuleId max_rule_id() const;

  bool operator==(const TableImage&) const = default;
};

/// Whole-policy image at one compiler epoch.
struct PolicyImage {
  uint64_t epoch = 0;
  std::vector<TableImage> tables;

  RuleId max_rule_id() const;

  bool operator==(const PolicyImage&) const = default;
};

/// Captures the compiled state of one composed node (no TCAM layout).
TableImage capture_table(const compiler::ComposedNode& node);

/// Fills `image.layout` from a scheduler's TCAM (every occupied slot).
void capture_layout(TableImage& image, const tcam::Tcam& tcam);

/// Captures a single-table policy at `epoch` from a compiler root. Throws
/// when the root is not a ComposedNode (leaf-only policies have no frozen
/// state worth saving).
PolicyImage capture_policy(const compiler::RuleTrisCompiler& frontend, uint64_t epoch);

/// Serializes to an arena blob (kPolicyMagic / kFormatVersion).
Bytes freeze(const PolicyImage& image);

/// Parses and fully materializes a blob; throws std::runtime_error on any
/// corruption (magic, version, bounds, CRC, dangling cross-references).
/// Bumps the process rule-id counter past every id in the blob.
PolicyImage thaw(const uint8_t* data, size_t size);
inline PolicyImage thaw(const Bytes& bytes) { return thaw(bytes.data(), bytes.size()); }

/// Zero-copy view over a validated frozen blob: the warm-boot fast path.
/// Does not own the bytes; keep the buffer or mapping alive while in use.
class FrozenPolicy {
 public:
  FrozenPolicy(const uint8_t* data, size_t size);

  uint64_t epoch() const { return meta_.epoch; }
  RuleId id_floor() const { return meta_.id_floor; }
  size_t n_tables() const { return meta_.n_tables; }

  /// Restores a scheduler to the frozen state of table `t`: loads the
  /// visible DAG into scheduler.graph(), writes every layout entry at its
  /// frozen TCAM address, and rebuilds the search caches. The scheduler
  /// must be empty (fresh TCAM). Returns the number of entries written.
  size_t restore(size_t t, tcam::DagScheduler& scheduler) const;

  /// Materializes table `t` by value (slow path; equality checks, deltas).
  TableImage materialize(size_t t) const;

 private:
  std::span<const FrozenEntry> entries(size_t t) const;
  std::span<const FrozenAction> actions(size_t t) const;

  util::ArenaView view_;
  FrozenMeta meta_;
};

/// Read-only mmap of a blob file; unmaps on destruction. Falls back to a
/// heap read if mmap is unavailable.
class MappedBlob {
 public:
  explicit MappedBlob(const std::string& path);
  ~MappedBlob();

  MappedBlob(const MappedBlob&) = delete;
  MappedBlob& operator=(const MappedBlob&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  void* mapping_ = nullptr;  // non-null iff mmap'ed
  std::vector<uint8_t> fallback_;
};

/// Writes a blob to `path` (truncating); throws on I/O failure.
void write_blob_file(const std::string& path, const Bytes& bytes);

namespace detail {

// Record packing shared by the snapshot writer and the delta encoder.

/// Packs one member entry; its actions go to `actions_out` and the entry's
/// range fields point at them.
FrozenEntry pack_entry(const MemberEntry& e, std::vector<FrozenAction>& actions_out);

TernaryMatch unpack_match(const FrozenEntry& e);

/// Unpacks the action range; throws on an out-of-bounds range.
ActionList unpack_actions(const FrozenEntry& e, std::span<const FrozenAction> pool);

MemberEntry unpack_entry(const FrozenEntry& e, std::span<const FrozenAction> pool);

}  // namespace detail

}  // namespace ruletris::frozen
