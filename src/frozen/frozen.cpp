#include "frozen/frozen.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "flowspace/field.h"

namespace ruletris::frozen {

using flowspace::Action;
using flowspace::ActionType;
using flowspace::FieldId;
using flowspace::kAllFields;
using flowspace::kNumFields;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("frozen: " + what);
}

}  // namespace

namespace detail {

FrozenEntry pack_entry(const MemberEntry& e, std::vector<FrozenAction>& actions_out) {
  FrozenEntry out;
  out.id = e.id;
  out.left_src = e.left_src;
  out.right_src = e.right_src;
  for (size_t f = 0; f < kNumFields; ++f) {
    const auto& ft = e.match.field(kAllFields[f]);
    out.value[f] = ft.value;
    out.mask[f] = ft.mask;
  }
  out.action_begin = static_cast<uint32_t>(actions_out.size());
  out.action_count = static_cast<uint32_t>(e.actions.size());
  for (const Action& a : e.actions.actions()) {
    FrozenAction fa;
    fa.type = static_cast<uint8_t>(a.type);
    fa.field = static_cast<uint8_t>(a.field);
    fa.arg = a.arg;
    actions_out.push_back(fa);
  }
  return out;
}

TernaryMatch unpack_match(const FrozenEntry& e) {
  TernaryMatch m;
  for (size_t f = 0; f < kNumFields; ++f) {
    if (e.mask[f] != 0) m.set_ternary(kAllFields[f], e.value[f], e.mask[f]);
  }
  return m;
}

ActionList unpack_actions(const FrozenEntry& e, std::span<const FrozenAction> pool) {
  const size_t begin = e.action_begin;
  const size_t count = e.action_count;
  if (begin > pool.size() || count > pool.size() - begin) {
    fail("entry action range out of bounds");
  }
  std::vector<Action> list;
  list.reserve(count);
  for (size_t i = begin; i < begin + count; ++i) {
    Action a;
    a.type = static_cast<ActionType>(pool[i].type);
    a.field = static_cast<FieldId>(pool[i].field);
    a.arg = pool[i].arg;
    list.push_back(a);
  }
  return ActionList(std::move(list));
}

MemberEntry unpack_entry(const FrozenEntry& e, std::span<const FrozenAction> pool) {
  MemberEntry out;
  out.id = e.id;
  out.left_src = e.left_src;
  out.right_src = e.right_src;
  out.match = unpack_match(e);
  out.actions = unpack_actions(e, pool);
  return out;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// TableImage / PolicyImage
// ---------------------------------------------------------------------------

compiler::CompileSnapshot TableImage::snapshot() const {
  compiler::CompileSnapshot snap;
  std::unordered_map<RuleId, compiler::CompileSnapshot::Prov> prov;
  prov.reserve(entries.size());
  snap.entries.reserve(entries.size());
  for (const MemberEntry& e : entries) {
    prov.emplace(e.id, compiler::CompileSnapshot::Prov{e.left_src, e.right_src});
    snap.entries.emplace_back(e.left_src, e.right_src, e.match, e.actions);
  }
  // `entries` is provenance-sorted (canonical form), so snap.entries is too.
  snap.reps.reserve(reps.size());
  for (RuleId id : reps) {
    auto it = prov.find(id);
    if (it == prov.end()) fail("representative references unknown entry");
    snap.reps.push_back(it->second);
  }
  std::sort(snap.reps.begin(), snap.reps.end());
  snap.visible_edges.reserve(visible_edges.size());
  for (const auto& [u, v] : visible_edges) {
    auto iu = prov.find(u);
    auto iv = prov.find(v);
    if (iu == prov.end() || iv == prov.end()) fail("edge references unknown entry");
    snap.visible_edges.emplace_back(iu->second, iv->second);
  }
  std::sort(snap.visible_edges.begin(), snap.visible_edges.end());
  return snap;
}

std::vector<Rule> TableImage::visible_rules() const {
  std::unordered_map<RuleId, const MemberEntry*> by_id;
  by_id.reserve(entries.size());
  for (const MemberEntry& e : entries) by_id.emplace(e.id, &e);
  std::vector<Rule> out;
  out.reserve(visible_order.size());
  int32_t priority = static_cast<int32_t>(visible_order.size());
  for (RuleId id : visible_order) {
    auto it = by_id.find(id);
    if (it == by_id.end()) fail("visible order references unknown entry");
    const MemberEntry& e = *it->second;
    out.push_back(Rule{e.id, e.match, e.actions, priority--});
  }
  return out;
}

dag::DependencyGraph TableImage::visible_graph() const {
  dag::DependencyGraph g;
  for (RuleId id : visible_order) g.add_vertex(id);
  for (const auto& [u, v] : visible_edges) g.add_edge(u, v);
  return g;
}

RuleId TableImage::max_rule_id() const {
  RuleId floor = 0;
  for (const MemberEntry& e : entries) {
    floor = std::max({floor, e.id, e.left_src, e.right_src});
  }
  return floor;
}

RuleId PolicyImage::max_rule_id() const {
  RuleId floor = 0;
  for (const TableImage& t : tables) floor = std::max(floor, t.max_rule_id());
  return floor;
}

// ---------------------------------------------------------------------------
// Capture
// ---------------------------------------------------------------------------

TableImage capture_table(const compiler::ComposedNode& node) {
  TableImage image;
  const auto members = node.export_members();
  image.entries.reserve(members.size());
  for (const auto& m : members) {
    image.entries.push_back(
        MemberEntry{m.id, m.left_src, m.right_src, *m.match, *m.actions});
  }
  image.reps = node.representative_ids();
  image.visible_edges = node.visible_graph().edges();
  std::sort(image.visible_edges.begin(), image.visible_edges.end());
  image.visible_order = node.visible_order();
  return image;
}

void capture_layout(TableImage& image, const tcam::Tcam& tcam) {
  image.layout.clear();
  image.layout.reserve(tcam.occupied());
  for (size_t addr = 0; addr < tcam.capacity(); ++addr) {
    const auto id = tcam.at(addr);
    if (!id) continue;
    const Rule& r = tcam.rule(*id);
    image.layout.push_back(
        LayoutEntry{*id, static_cast<uint32_t>(addr), r.priority});
  }
  std::sort(image.layout.begin(), image.layout.end(),
            [](const LayoutEntry& a, const LayoutEntry& b) { return a.id < b.id; });
}

PolicyImage capture_policy(const compiler::RuleTrisCompiler& frontend, uint64_t epoch) {
  const auto* root = dynamic_cast<const compiler::ComposedNode*>(&frontend.root());
  if (root == nullptr) fail("policy root is not a composed node");
  PolicyImage image;
  image.epoch = epoch;
  image.tables.push_back(capture_table(*root));
  return image;
}

// ---------------------------------------------------------------------------
// Freeze
// ---------------------------------------------------------------------------

Bytes freeze(const PolicyImage& image) {
  util::ArenaWriter w(kPolicyMagic, kFormatVersion);

  FrozenMeta meta;
  meta.epoch = image.epoch;
  meta.id_floor = image.max_rule_id();
  meta.n_tables = static_cast<uint32_t>(image.tables.size());
  w.add_section(kMetaSection, std::span<const FrozenMeta>(&meta, 1));

  for (uint32_t t = 0; t < image.tables.size(); ++t) {
    const TableImage& table = image.tables[t];

    std::unordered_map<RuleId, uint32_t> index;
    index.reserve(table.entries.size());
    std::vector<FrozenEntry> entries;
    entries.reserve(table.entries.size());
    std::vector<FrozenAction> actions;
    for (const MemberEntry& e : table.entries) {
      if (!index.emplace(e.id, static_cast<uint32_t>(entries.size())).second) {
        fail("duplicate entry id while freezing");
      }
      entries.push_back(detail::pack_entry(e, actions));
    }
    const auto idx = [&index](RuleId id) {
      auto it = index.find(id);
      if (it == index.end()) fail("dangling rule id while freezing");
      return it->second;
    };

    std::vector<uint32_t> reps;
    reps.reserve(table.reps.size());
    for (RuleId id : table.reps) reps.push_back(idx(id));

    std::vector<FrozenEdge> edges;
    edges.reserve(table.visible_edges.size());
    for (const auto& [u, v] : table.visible_edges) {
      edges.push_back(FrozenEdge{idx(u), idx(v)});
    }

    std::vector<uint32_t> order;
    order.reserve(table.visible_order.size());
    for (RuleId id : table.visible_order) order.push_back(idx(id));

    std::vector<FrozenLayout> layout;
    layout.reserve(table.layout.size());
    for (const LayoutEntry& l : table.layout) {
      layout.push_back(FrozenLayout{idx(l.id), l.addr, l.priority, 0});
    }

    w.add_section(table_section(t, kEntriesSlot), entries);
    w.add_section(table_section(t, kActionsSlot), actions);
    w.add_section(table_section(t, kRepsSlot), reps);
    w.add_section(table_section(t, kVisibleEdgesSlot), edges);
    w.add_section(table_section(t, kVisibleOrderSlot), order);
    w.add_section(table_section(t, kLayoutSlot), layout);
  }
  return w.finish();
}

// ---------------------------------------------------------------------------
// FrozenPolicy (zero-copy read path)
// ---------------------------------------------------------------------------

FrozenPolicy::FrozenPolicy(const uint8_t* data, size_t size)
    : view_(data, size, kPolicyMagic, kFormatVersion) {
  const auto metas = view_.section<FrozenMeta>(kMetaSection);
  if (metas.size() != 1) fail("meta section must hold exactly one record");
  meta_ = metas[0];
  for (uint32_t t = 0; t < meta_.n_tables; ++t) {
    // Presence check up front; index bounds are validated on use.
    (void)view_.section<FrozenEntry>(table_section(t, kEntriesSlot));
    (void)view_.section<FrozenAction>(table_section(t, kActionsSlot));
  }
}

std::span<const FrozenEntry> FrozenPolicy::entries(size_t t) const {
  if (t >= meta_.n_tables) fail("table index out of range");
  return view_.section<FrozenEntry>(
      table_section(static_cast<uint32_t>(t), kEntriesSlot));
}

std::span<const FrozenAction> FrozenPolicy::actions(size_t t) const {
  return view_.section<FrozenAction>(
      table_section(static_cast<uint32_t>(t), kActionsSlot));
}

size_t FrozenPolicy::restore(size_t t, tcam::DagScheduler& scheduler) const {
  const auto entry_pool = entries(t);
  const auto action_pool = actions(t);
  const uint32_t ts = static_cast<uint32_t>(t);
  const auto order = view_.section_or_empty<uint32_t>(table_section(ts, kVisibleOrderSlot));
  const auto edges = view_.section_or_empty<FrozenEdge>(table_section(ts, kVisibleEdgesSlot));
  const auto layout = view_.section_or_empty<FrozenLayout>(table_section(ts, kLayoutSlot));

  const auto entry_at = [&](uint32_t i) -> const FrozenEntry& {
    if (i >= entry_pool.size()) fail("entry index out of bounds");
    return entry_pool[i];
  };

  // Everything below works off flat arrays indexed by entry-pool position —
  // the restart critical path pays hash lookups only where the scheduler's
  // own structures require them.
  const uint32_t kNotVisible = UINT32_MAX;
  std::vector<uint32_t> pos(entry_pool.size(), kNotVisible);
  std::vector<RuleId> ids(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    if (pos[order[k]] != kNotVisible) fail("duplicate entry in visible order");
    pos[order[k]] = static_cast<uint32_t>(k);
    ids[k] = entry_at(order[k]).id;
  }

  std::vector<std::pair<uint32_t, uint32_t>> idx_edges;
  idx_edges.reserve(edges.size());
  for (const FrozenEdge& e : edges) {
    if (e.u >= pos.size() || e.v >= pos.size() || pos[e.u] == kNotVisible ||
        pos[e.v] == kNotVisible) {
      fail("edge references an entry outside the visible order");
    }
    idx_edges.emplace_back(pos[e.u], pos[e.v]);
  }
  scheduler.graph().bulk_load_indexed(ids, idx_edges);

  std::vector<long long> addr_of(entry_pool.size(), -1);
  for (const FrozenLayout& l : layout) {
    const FrozenEntry& e = entry_at(l.entry_index);
    scheduler.restore_entry(
        Rule{e.id, detail::unpack_match(e),
             detail::unpack_actions(e, action_pool), l.priority},
        l.addr);
    addr_of[l.entry_index] = static_cast<long long>(l.addr);
  }

  // The cap cells fall straight out of the frozen edges + layout (the same
  // values CapIndex::rebuild would derive from the loaded graph + TCAM, at
  // flat-array cost); hand them to the scheduler so it is update-ready
  // without a rebuild.
  const size_t cap = scheduler.capacity();
  std::vector<long long> lo_succ(cap, static_cast<long long>(cap));
  std::vector<long long> hi_pred(cap, -1);
  for (const FrozenEdge& e : edges) {
    const long long au = addr_of[e.u];
    const long long av = addr_of[e.v];
    if (au >= 0 && av >= 0) {
      lo_succ[au] = std::min(lo_succ[au], av);
      hi_pred[av] = std::max(hi_pred[av], au);
    }
  }
  scheduler.restore_caps(std::move(lo_succ), std::move(hi_pred));
  return layout.size();
}

TableImage FrozenPolicy::materialize(size_t t) const {
  const auto entry_pool = entries(t);
  const auto action_pool = actions(t);
  const uint32_t ts = static_cast<uint32_t>(t);

  const auto id_at = [&](uint32_t i) {
    if (i >= entry_pool.size()) fail("entry index out of bounds");
    return entry_pool[i].id;
  };

  TableImage image;
  image.entries.reserve(entry_pool.size());
  for (const FrozenEntry& e : entry_pool) {
    image.entries.push_back(detail::unpack_entry(e, action_pool));
  }
  for (uint32_t i : view_.section_or_empty<uint32_t>(table_section(ts, kRepsSlot))) {
    image.reps.push_back(id_at(i));
  }
  for (const FrozenEdge& e :
       view_.section_or_empty<FrozenEdge>(table_section(ts, kVisibleEdgesSlot))) {
    image.visible_edges.emplace_back(id_at(e.u), id_at(e.v));
  }
  for (uint32_t i :
       view_.section_or_empty<uint32_t>(table_section(ts, kVisibleOrderSlot))) {
    image.visible_order.push_back(id_at(i));
  }
  for (const FrozenLayout& l :
       view_.section_or_empty<FrozenLayout>(table_section(ts, kLayoutSlot))) {
    image.layout.push_back(LayoutEntry{id_at(l.entry_index), l.addr, l.priority});
  }
  return image;
}

PolicyImage thaw(const uint8_t* data, size_t size) {
  FrozenPolicy frozen(data, size);
  PolicyImage image;
  image.epoch = frozen.epoch();
  image.tables.reserve(frozen.n_tables());
  for (size_t t = 0; t < frozen.n_tables(); ++t) {
    image.tables.push_back(frozen.materialize(t));
  }
  flowspace::ensure_rule_id_floor(frozen.id_floor());
  return image;
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

MappedBlob::MappedBlob(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open " + path + ": " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat " + path);
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ != 0) {
    void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (m != MAP_FAILED) {
      mapping_ = m;
      data_ = static_cast<const uint8_t*>(m);
    } else {
      fallback_.resize(size_);
      size_t got = 0;
      while (got < size_) {
        const ssize_t n = ::read(fd, fallback_.data() + got, size_ - got);
        if (n <= 0) {
          ::close(fd);
          fail("cannot read " + path);
        }
        got += static_cast<size_t>(n);
      }
      data_ = fallback_.data();
    }
  }
  ::close(fd);
}

MappedBlob::~MappedBlob() {
  if (mapping_ != nullptr) ::munmap(mapping_, size_);
}

void write_blob_file(const std::string& path, const Bytes& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) fail("cannot write " + path + ": " + std::strerror(errno));
  const size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) fail("short write to " + path);
}

}  // namespace ruletris::frozen
