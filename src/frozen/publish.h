// Lock-free epoch publication: the shard-handoff half of the frozen format.
//
// A compile shard seals each epoch into an immutable record — the RTDZ
// delta blob plus whatever wire image the consumer needs — and publishes it
// by storing a pointer into a pre-sized slot array and bumping an atomic
// epoch counter. Consumers (switch sessions, replay checkers) poll the
// counter with an acquire load and read any sealed slot without taking a
// lock; the release store on the counter is the only synchronization point,
// so publication is wait-free for the producer and readers never contend.
//
// The ring owns every published record until destruction: records are
// immutable once sealed and sessions keep raw references across their whole
// run, so no reclamation protocol is needed (a fleet run is bounded by its
// epoch budget, not open-ended).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace ruletris::frozen {

/// Single-producer, multi-consumer publication ring of immutable records.
/// `T` is the sealed-epoch payload (the fleet runtime uses a record holding
/// the RTDZ delta blob, the encoded wire image and the shard's virtual
/// publish time). Epochs are 1-based and must be published in order.
template <typename T>
class PublishRing {
 public:
  /// `capacity` is the total number of epochs this ring will ever carry
  /// (known upfront: a fleet workload fixes its per-switch epoch budget).
  explicit PublishRing(size_t capacity) : slots_(capacity) {
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
  }

  PublishRing(const PublishRing&) = delete;
  PublishRing& operator=(const PublishRing&) = delete;

  ~PublishRing() {
    for (auto& s : slots_) delete s.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return slots_.size(); }

  /// Seals epoch `sealed() + 1`. Producer-only; publication order is the
  /// epoch order. The release store on sealed_ makes every write to *rec
  /// visible to consumers that observe the new count.
  void publish(std::unique_ptr<T> rec) {
    const uint64_t epoch = sealed_.load(std::memory_order_relaxed) + 1;
    if (epoch > slots_.size()) {
      throw std::runtime_error("PublishRing: published past capacity");
    }
    slots_[epoch - 1].store(rec.release(), std::memory_order_release);
    sealed_.store(epoch, std::memory_order_release);
  }

  /// Marks the stream final: no further epochs will be sealed. Consumers
  /// that have drained every sealed epoch of a closed ring are done.
  void close() { closed_.store(true, std::memory_order_release); }

  /// Number of sealed epochs (acquire: slots up to the count are readable).
  uint64_t sealed() const { return sealed_.load(std::memory_order_acquire); }

  /// True once the producer has closed the ring. Check sealed() again
  /// *after* observing closed() — the final epochs may have landed between
  /// the two loads.
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Sealed record for 1-based `epoch`; epoch must be <= sealed().
  const T& get(uint64_t epoch) const {
    const T* rec = slots_[epoch - 1].load(std::memory_order_acquire);
    if (rec == nullptr) {
      throw std::runtime_error("PublishRing: read of unsealed epoch");
    }
    return *rec;
  }

 private:
  std::vector<std::atomic<const T*>> slots_;
  std::atomic<uint64_t> sealed_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace ruletris::frozen
