#include "frozen/delta.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/arena.h"

namespace ruletris::frozen {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("frozen delta: ") + what);
}

bool prov_less(const MemberEntry& a, const MemberEntry& b) {
  if (a.left_src != b.left_src) return a.left_src < b.left_src;
  return a.right_src < b.right_src;
}

TableDelta diff_table(const TableImage& from, const TableImage& to) {
  TableDelta d;

  std::unordered_set<RuleId> from_ids;
  from_ids.reserve(from.entries.size());
  for (const MemberEntry& e : from.entries) from_ids.insert(e.id);
  std::unordered_set<RuleId> to_ids;
  to_ids.reserve(to.entries.size());
  for (const MemberEntry& e : to.entries) to_ids.insert(e.id);

  for (const MemberEntry& e : from.entries) {
    if (to_ids.count(e.id) == 0) d.removed_entries.push_back(e.id);
  }
  std::sort(d.removed_entries.begin(), d.removed_entries.end());
  for (const MemberEntry& e : to.entries) {  // provenance order preserved
    if (from_ids.count(e.id) == 0) d.added_entries.push_back(e);
  }

  std::set_difference(from.reps.begin(), from.reps.end(), to.reps.begin(),
                      to.reps.end(), std::back_inserter(d.reps_removed));
  std::set_difference(to.reps.begin(), to.reps.end(), from.reps.begin(),
                      from.reps.end(), std::back_inserter(d.reps_added));

  std::set_difference(from.visible_edges.begin(), from.visible_edges.end(),
                      to.visible_edges.begin(), to.visible_edges.end(),
                      std::back_inserter(d.edges_removed));
  std::set_difference(to.visible_edges.begin(), to.visible_edges.end(),
                      from.visible_edges.begin(), from.visible_edges.end(),
                      std::back_inserter(d.edges_added));

  // Visible order: removals are implied (ids absent from `to`); additions
  // are (id, final position) inserts. Verify the surviving-order invariant
  // while we are the one place that holds both sides.
  std::unordered_set<RuleId> to_visible(to.visible_order.begin(),
                                        to.visible_order.end());
  std::vector<RuleId> reconstructed;
  reconstructed.reserve(to.visible_order.size());
  for (RuleId id : from.visible_order) {
    if (to_visible.count(id) != 0) reconstructed.push_back(id);
  }
  std::unordered_set<RuleId> from_visible(from.visible_order.begin(),
                                          from.visible_order.end());
  for (uint64_t pos = 0; pos < to.visible_order.size(); ++pos) {
    const RuleId id = to.visible_order[pos];
    if (from_visible.count(id) != 0) continue;
    d.order_inserts.emplace_back(id, pos);
    if (pos > reconstructed.size()) fail("order insert position out of range");
    reconstructed.insert(reconstructed.begin() + static_cast<ptrdiff_t>(pos), id);
  }
  if (reconstructed != to.visible_order) {
    fail("surviving rules reordered between epochs");
  }
  return d;
}

void apply_table(TableImage& table, const TableDelta& d) {
  if (!d.removed_entries.empty()) {
    std::unordered_set<RuleId> removed(d.removed_entries.begin(),
                                       d.removed_entries.end());
    const size_t before = table.entries.size();
    table.entries.erase(
        std::remove_if(table.entries.begin(), table.entries.end(),
                       [&removed](const MemberEntry& e) {
                         return removed.count(e.id) != 0;
                       }),
        table.entries.end());
    if (before - table.entries.size() != removed.size()) {
      fail("removal names an absent entry");
    }
  }
  if (!d.added_entries.empty()) {
    std::vector<MemberEntry> merged;
    merged.reserve(table.entries.size() + d.added_entries.size());
    std::merge(table.entries.begin(), table.entries.end(),
               d.added_entries.begin(), d.added_entries.end(),
               std::back_inserter(merged), prov_less);
    table.entries = std::move(merged);
  }

  const auto apply_sorted_ids = [](std::vector<RuleId>& ids,
                                   const std::vector<RuleId>& removed,
                                   const std::vector<RuleId>& added) {
    std::vector<RuleId> next;
    next.reserve(ids.size() + added.size());
    std::set_difference(ids.begin(), ids.end(), removed.begin(), removed.end(),
                        std::back_inserter(next));
    if (ids.size() - next.size() != removed.size()) {
      fail("removal names an absent element");
    }
    std::vector<RuleId> out;
    out.reserve(next.size() + added.size());
    std::merge(next.begin(), next.end(), added.begin(), added.end(),
               std::back_inserter(out));
    ids = std::move(out);
  };
  apply_sorted_ids(table.reps, d.reps_removed, d.reps_added);

  {
    std::vector<std::pair<RuleId, RuleId>> next;
    next.reserve(table.visible_edges.size() + d.edges_added.size());
    std::set_difference(table.visible_edges.begin(), table.visible_edges.end(),
                        d.edges_removed.begin(), d.edges_removed.end(),
                        std::back_inserter(next));
    if (table.visible_edges.size() - next.size() != d.edges_removed.size()) {
      fail("edge removal names an absent edge");
    }
    std::vector<std::pair<RuleId, RuleId>> out;
    out.reserve(next.size() + d.edges_added.size());
    std::merge(next.begin(), next.end(), d.edges_added.begin(),
               d.edges_added.end(), std::back_inserter(out));
    table.visible_edges = std::move(out);
  }

  {
    std::unordered_set<RuleId> alive;
    alive.reserve(table.entries.size());
    for (const MemberEntry& e : table.entries) alive.insert(e.id);
    std::vector<RuleId> order;
    order.reserve(table.visible_order.size() + d.order_inserts.size());
    for (RuleId id : table.visible_order) {
      if (alive.count(id) != 0) order.push_back(id);
    }
    // Rep churn among surviving entries: an id can leave the visible order
    // without its entry being removed (its key got a different rep).
    if (!d.reps_removed.empty()) {
      std::unordered_set<RuleId> dropped(d.reps_removed.begin(),
                                         d.reps_removed.end());
      order.erase(std::remove_if(order.begin(), order.end(),
                                 [&dropped](RuleId id) {
                                   return dropped.count(id) != 0;
                                 }),
                  order.end());
    }
    for (const auto& [id, pos] : d.order_inserts) {
      if (pos > order.size()) fail("order insert position out of range");
      order.insert(order.begin() + static_cast<ptrdiff_t>(pos), id);
    }
    table.visible_order = std::move(order);
  }

  // The frozen layout described the base snapshot's device; stale now.
  table.layout.clear();
}

}  // namespace

PolicyDelta diff(const PolicyImage& from, const PolicyImage& to) {
  if (from.tables.size() != to.tables.size()) fail("table count changed");
  PolicyDelta delta;
  delta.from_epoch = from.epoch;
  delta.to_epoch = to.epoch;
  delta.tables.reserve(from.tables.size());
  for (size_t t = 0; t < from.tables.size(); ++t) {
    delta.tables.push_back(diff_table(from.tables[t], to.tables[t]));
  }
  return delta;
}

void apply_delta(PolicyImage& image, const PolicyDelta& delta) {
  if (image.epoch != delta.from_epoch) fail("epoch chain mismatch");
  if (image.tables.size() != delta.tables.size()) fail("table count mismatch");
  for (size_t t = 0; t < delta.tables.size(); ++t) {
    apply_table(image.tables[t], delta.tables[t]);
  }
  image.epoch = delta.to_epoch;
}

Bytes encode_delta(const PolicyDelta& delta) {
  util::ArenaWriter w(kDeltaMagic, kFormatVersion);

  FrozenDeltaMeta meta;
  meta.from_epoch = delta.from_epoch;
  meta.to_epoch = delta.to_epoch;
  meta.n_tables = static_cast<uint32_t>(delta.tables.size());
  for (const TableDelta& td : delta.tables) {
    for (const MemberEntry& e : td.added_entries) {
      meta.id_floor = std::max({meta.id_floor, e.id, e.left_src, e.right_src});
    }
  }
  w.add_section(kMetaSection, std::span<const FrozenDeltaMeta>(&meta, 1));

  for (uint32_t t = 0; t < delta.tables.size(); ++t) {
    const TableDelta& td = delta.tables[t];

    std::vector<FrozenEntry> added;
    added.reserve(td.added_entries.size());
    std::vector<FrozenAction> actions;
    for (const MemberEntry& e : td.added_entries) {
      added.push_back(detail::pack_entry(e, actions));
    }
    const auto id_edges = [](const std::vector<std::pair<RuleId, RuleId>>& in) {
      std::vector<FrozenIdEdge> out;
      out.reserve(in.size());
      for (const auto& [u, v] : in) out.push_back(FrozenIdEdge{u, v});
      return out;
    };
    std::vector<FrozenOrderInsert> inserts;
    inserts.reserve(td.order_inserts.size());
    for (const auto& [id, pos] : td.order_inserts) {
      inserts.push_back(FrozenOrderInsert{id, pos});
    }

    w.add_section(table_section(t, kRemovedEntriesSlot), td.removed_entries);
    w.add_section(table_section(t, kAddedEntriesSlot), added);
    w.add_section(table_section(t, kAddedActionsSlot), actions);
    w.add_section(table_section(t, kRepsRemovedSlot), td.reps_removed);
    w.add_section(table_section(t, kRepsAddedSlot), td.reps_added);
    w.add_section(table_section(t, kEdgesRemovedSlot), id_edges(td.edges_removed));
    w.add_section(table_section(t, kEdgesAddedSlot), id_edges(td.edges_added));
    w.add_section(table_section(t, kOrderInsertsSlot), inserts);
  }
  return w.finish();
}

PolicyDelta decode_delta(const uint8_t* data, size_t size) {
  util::ArenaView view(data, size, kDeltaMagic, kFormatVersion);
  const auto metas = view.section<FrozenDeltaMeta>(kMetaSection);
  if (metas.size() != 1) fail("meta section must hold exactly one record");
  const FrozenDeltaMeta& meta = metas[0];

  PolicyDelta delta;
  delta.from_epoch = meta.from_epoch;
  delta.to_epoch = meta.to_epoch;
  delta.tables.resize(meta.n_tables);
  for (uint32_t t = 0; t < meta.n_tables; ++t) {
    TableDelta& td = delta.tables[t];
    const auto ids = [&view, t](uint32_t slot) {
      const auto s = view.section_or_empty<RuleId>(table_section(t, slot));
      return std::vector<RuleId>(s.begin(), s.end());
    };
    td.removed_entries = ids(kRemovedEntriesSlot);
    const auto added =
        view.section_or_empty<FrozenEntry>(table_section(t, kAddedEntriesSlot));
    const auto actions =
        view.section_or_empty<FrozenAction>(table_section(t, kAddedActionsSlot));
    td.added_entries.reserve(added.size());
    for (const FrozenEntry& e : added) {
      td.added_entries.push_back(detail::unpack_entry(e, actions));
    }
    td.reps_removed = ids(kRepsRemovedSlot);
    td.reps_added = ids(kRepsAddedSlot);
    const auto edges = [&view, t](uint32_t slot) {
      std::vector<std::pair<RuleId, RuleId>> out;
      for (const FrozenIdEdge& e :
           view.section_or_empty<FrozenIdEdge>(table_section(t, slot))) {
        out.emplace_back(e.u, e.v);
      }
      return out;
    };
    td.edges_removed = edges(kEdgesRemovedSlot);
    td.edges_added = edges(kEdgesAddedSlot);
    for (const FrozenOrderInsert& oi : view.section_or_empty<FrozenOrderInsert>(
             table_section(t, kOrderInsertsSlot))) {
      td.order_inserts.emplace_back(oi.id, oi.pos);
    }
  }
  flowspace::ensure_rule_id_floor(meta.id_floor);
  return delta;
}

}  // namespace ruletris::frozen
