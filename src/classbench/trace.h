// Update-trace file format: replayable rule-churn streams.
//
// The paper's update streams ("each update contains one rule delete and one
// rule insert") are random; for regression comparisons and for driving the
// CLI from recorded workloads, traces can be serialized and replayed:
//
//   # comment
//   del 17
//   add 23 @0.0.0.0/0 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF
//
// `del N` removes the rule introduced by the N-th `add` of the trace (or,
// for N < 0, the (-N)-th rule of the initial table). `add K <filter>` adds a
// ClassBench-syntax filter with priority K (range-expanded adds replay as a
// group). Traces are plain text, diffable, and seed-independent.
#pragma once

#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "flowspace/rule.h"
#include "util/rng.h"

namespace ruletris::classbench {

struct TraceStep {
  enum class Kind { kAdd, kDelete };
  Kind kind = Kind::kAdd;
  // kDelete: reference to the rule being removed (see file-format comment).
  long long ref = 0;
  // kAdd: the expanded rules (one filter may expand to several).
  std::vector<flowspace::Rule> rules;
};

struct UpdateTrace {
  std::vector<TraceStep> steps;
};

/// Parses a trace; throws std::runtime_error with line numbers on errors.
UpdateTrace parse_trace(std::istream& in);

/// Serializes a trace (adds are written in ClassBench filter syntax; only
/// prefix-expressible port matches can be serialized).
void write_trace(std::ostream& out, const UpdateTrace& trace);

/// Materializes a random delete+insert churn trace over `initial_size`
/// seed rules, for `updates` steps, reproducibly from `seed`. Replacement
/// rules come from `make_rule` (default: monitoring-profile rules).
UpdateTrace synthesize_churn_trace(
    size_t initial_size, size_t updates, uint64_t seed,
    const std::function<flowspace::Rule(util::Rng&)>& make_rule = {});

}  // namespace ruletris::classbench
