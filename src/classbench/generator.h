// ClassBench-style synthetic rule generation (Sec. VII-A(b) substitute).
//
// The paper generates monitoring rules with ClassBench's firewall seed,
// router rules with its IP-chain seed, and NAT tables derived from the
// router rules' addresses. This generator reproduces the structural
// properties those seeds give the workloads — prefix-length mixtures,
// nested prefixes (which create rule dependencies), port/protocol
// selectivity — with a deterministic RNG so every experiment is exactly
// reproducible.
#pragma once

#include <vector>

#include "flowspace/rule.h"
#include "util/rng.h"

namespace ruletris::classbench {

using flowspace::FlowTable;
using flowspace::Rule;

/// L3 router table (IP-chain profile): dst_ip prefixes with a realistic
/// length mixture and deliberate nesting (more-specific child prefixes), a
/// default route, forwarding actions. Priorities realize longest-prefix
/// match and are pairwise distinct.
std::vector<Rule> generate_router(size_t count, util::Rng& rng);

/// L3-L4 monitoring table (firewall profile): src/dst prefixes, protocol
/// and port selectors; actions bump flow counters.
std::vector<Rule> generate_monitor(size_t count, util::Rng& rng);

/// A fresh monitoring rule for update streams, with a priority drawn from
/// the same band as generate_monitor uses.
Rule random_monitor_rule(size_t table_size, util::Rng& rng);

/// L3-L4 firewall/ACL table: like monitor but with accept/drop actions.
std::vector<Rule> generate_firewall(size_t count, util::Rng& rng);

/// L3-L4 NAT table derived from router rules: exact public dst_ip (+port)
/// matches rewritten to private addresses that fall inside the router's
/// prefixes (so sequential composition is non-trivial), plus a passthrough
/// default.
std::vector<Rule> generate_nat(size_t count, const std::vector<Rule>& router_rules,
                               util::Rng& rng);

/// A fresh NAT rule for update streams.
Rule random_nat_rule(const std::vector<Rule>& router_rules, size_t table_size,
                     util::Rng& rng);

}  // namespace ruletris::classbench
