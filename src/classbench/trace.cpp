#include "classbench/trace.h"

#include <sstream>
#include <stdexcept>

#include "classbench/format.h"
#include "classbench/generator.h"
#include "util/rng.h"
#include "util/strfmt.h"

namespace ruletris::classbench {

using flowspace::Rule;
using util::strfmt;

UpdateTrace parse_trace(std::istream& in) {
  UpdateTrace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string verb;
    if (!(tokens >> verb) || verb[0] == '#') continue;

    if (verb == "del") {
      long long ref;
      if (!(tokens >> ref)) {
        throw std::runtime_error(strfmt("trace: line %zu: del needs a reference", line_no));
      }
      TraceStep step;
      step.kind = TraceStep::Kind::kDelete;
      step.ref = ref;
      trace.steps.push_back(std::move(step));
    } else if (verb == "add") {
      int priority;
      if (!(tokens >> priority)) {
        throw std::runtime_error(strfmt("trace: line %zu: add needs a priority", line_no));
      }
      std::string filter;
      std::getline(tokens, filter);
      std::istringstream filter_stream(filter);
      ParsedFilterSet parsed;
      try {
        parsed = parse_classbench(filter_stream);
      } catch (const std::exception& e) {
        throw std::runtime_error(strfmt("trace: line %zu: %s", line_no, e.what()));
      }
      if (parsed.rules.empty()) {
        throw std::runtime_error(strfmt("trace: line %zu: add carries no filter", line_no));
      }
      TraceStep step;
      step.kind = TraceStep::Kind::kAdd;
      for (Rule& r : parsed.rules) {
        r.priority = priority;
        step.rules.push_back(std::move(r));
      }
      trace.steps.push_back(std::move(step));
    } else {
      throw std::runtime_error(strfmt("trace: line %zu: unknown verb '%s'", line_no,
                                      verb.c_str()));
    }
  }
  return trace;
}

void write_trace(std::ostream& out, const UpdateTrace& trace) {
  for (const TraceStep& step : trace.steps) {
    if (step.kind == TraceStep::Kind::kDelete) {
      out << "del " << step.ref << "\n";
      continue;
    }
    for (const Rule& r : step.rules) {
      out << "add " << r.priority << " ";
      write_classbench(out, {r});
    }
  }
}

UpdateTrace synthesize_churn_trace(
    size_t initial_size, size_t updates, uint64_t seed,
    const std::function<Rule(util::Rng&)>& make_rule) {
  util::Rng rng(seed);
  UpdateTrace trace;
  trace.steps.reserve(2 * updates);

  // Live references: negative = initial-table position, positive = add index.
  std::vector<long long> live;
  live.reserve(initial_size);
  for (size_t i = 0; i < initial_size; ++i) {
    live.push_back(-static_cast<long long>(i) - 1);
  }
  long long add_counter = 0;

  for (size_t u = 0; u < updates; ++u) {
    const size_t victim = rng.next_below(live.size());
    TraceStep del;
    del.kind = TraceStep::Kind::kDelete;
    del.ref = live[victim];
    trace.steps.push_back(del);

    TraceStep add;
    add.kind = TraceStep::Kind::kAdd;
    Rule r = make_rule ? make_rule(rng) : random_monitor_rule(initial_size, rng);
    add.rules.push_back(std::move(r));
    trace.steps.push_back(std::move(add));
    live[victim] = ++add_counter;
  }
  return trace;
}

}  // namespace ruletris::classbench
