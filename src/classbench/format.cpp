#include "classbench/format.h"

#include <bit>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "flowspace/action.h"
#include "util/strfmt.h"

namespace ruletris::classbench {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::Rule;
using flowspace::TernaryMatch;
using util::strfmt;

std::vector<std::pair<uint32_t, uint32_t>> range_to_prefixes(uint32_t lo, uint32_t hi,
                                                             uint32_t width) {
  if (width == 0 || width > 32) throw std::invalid_argument("bad field width");
  const uint64_t bound = width == 32 ? 0x100000000ULL : (1ULL << width);
  if (lo > hi || hi >= bound) throw std::invalid_argument("bad range");

  // Greedy: repeatedly take the largest aligned power-of-two block starting
  // at `lo` that does not overshoot `hi` — the classic minimal prefix cover.
  std::vector<std::pair<uint32_t, uint32_t>> out;
  uint64_t cur = lo;
  const uint64_t end = static_cast<uint64_t>(hi) + 1;
  while (cur < end) {
    uint64_t block = 1;
    // Largest power of two aligned at cur...
    while (block < bound && (cur & ((block << 1) - 1)) == 0 && cur + (block << 1) <= end) {
      block <<= 1;
    }
    const uint32_t mask =
        static_cast<uint32_t>((bound - block)) & static_cast<uint32_t>(bound - 1);
    out.emplace_back(static_cast<uint32_t>(cur), mask);
    cur += block;
  }
  return out;
}

namespace {

struct LineParser {
  std::string line;
  size_t pos = 0;
  size_t line_no = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(strfmt("classbench: line %zu: %s", line_no, what.c_str()));
  }

  void skip_space() {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  }

  bool done() {
    skip_space();
    return pos >= line.size();
  }

  void expect(char c) {
    skip_space();
    if (pos >= line.size() || line[pos] != c) fail(strfmt("expected '%c'", c));
    ++pos;
  }

  uint64_t number() {
    skip_space();
    if (pos >= line.size()) fail("expected a number");
    uint64_t value = 0;
    if (line.compare(pos, 2, "0x") == 0 || line.compare(pos, 2, "0X") == 0) {
      pos += 2;
      size_t digits = 0;
      while (pos < line.size() && std::isxdigit(static_cast<unsigned char>(line[pos]))) {
        const char c = static_cast<char>(std::tolower(line[pos]));
        value = value * 16 + static_cast<uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
        ++pos;
        ++digits;
      }
      if (digits == 0) fail("expected hex digits");
    } else {
      size_t digits = 0;
      while (pos < line.size() && std::isdigit(static_cast<unsigned char>(line[pos]))) {
        value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
        ++pos;
        ++digits;
      }
      if (digits == 0) fail("expected digits");
    }
    return value;
  }

  /// a.b.c.d/len
  std::pair<uint32_t, uint32_t> ip_prefix() {
    const uint64_t a = number();
    expect('.');
    const uint64_t b = number();
    expect('.');
    const uint64_t c = number();
    expect('.');
    const uint64_t d = number();
    expect('/');
    const uint64_t len = number();
    if (a > 255 || b > 255 || c > 255 || d > 255) fail("IP octet out of range");
    if (len > 32) fail("prefix length out of range");
    const uint32_t ip = static_cast<uint32_t>(a << 24 | b << 16 | c << 8 | d);
    return {ip, static_cast<uint32_t>(len)};
  }

  /// lo : hi
  std::pair<uint32_t, uint32_t> port_range() {
    const uint64_t lo = number();
    expect(':');
    const uint64_t hi = number();
    if (lo > 0xffff || hi > 0xffff || lo > hi) fail("bad port range");
    return {static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)};
  }

  /// value/mask (hex or decimal)
  std::pair<uint32_t, uint32_t> value_mask() {
    const uint64_t value = number();
    expect('/');
    const uint64_t mask = number();
    return {static_cast<uint32_t>(value), static_cast<uint32_t>(mask)};
  }
};

}  // namespace

ParsedFilterSet parse_classbench(std::istream& in, uint32_t ports) {
  ParsedFilterSet result;
  std::string raw;
  size_t line_no = 0;
  uint32_t next_port = 0;

  struct Expanded {
    TernaryMatch match;
    ActionList actions;
  };
  std::vector<Expanded> expanded;

  while (std::getline(in, raw)) {
    ++line_no;
    LineParser p{raw, 0, line_no};
    p.skip_space();
    if (p.pos >= raw.size() || raw[p.pos] == '#') continue;  // blank/comment
    if (raw[p.pos] != '@') p.fail("filter must start with '@'");
    ++p.pos;

    const auto [src_ip, src_len] = p.ip_prefix();
    const auto [dst_ip, dst_len] = p.ip_prefix();
    const auto [sport_lo, sport_hi] = p.port_range();
    const auto [dport_lo, dport_hi] = p.port_range();
    const auto [proto, proto_mask] = p.value_mask();
    // Optional trailing flags column (ignored, validated syntactically).
    if (!p.done()) p.value_mask();
    if (!p.done()) p.fail("trailing tokens");

    TernaryMatch base;
    base.set_prefix(FieldId::kSrcIp, src_ip, src_len);
    base.set_prefix(FieldId::kDstIp, dst_ip, dst_len);
    base.set_ternary(FieldId::kIpProto, proto, proto_mask & 0xff);

    const ActionList actions{Action::forward(1 + (next_port++ % ports))};

    const auto sport_prefixes = range_to_prefixes(sport_lo, sport_hi, 16);
    const auto dport_prefixes = range_to_prefixes(dport_lo, dport_hi, 16);
    size_t produced = 0;
    for (const auto& [sv, sm] : sport_prefixes) {
      for (const auto& [dv, dm] : dport_prefixes) {
        TernaryMatch m = base;
        m.set_ternary(FieldId::kSrcPort, sv, sm);
        m.set_ternary(FieldId::kDstPort, dv, dm);
        expanded.push_back(Expanded{std::move(m), actions});
        ++produced;
      }
    }
    ++result.filters;
    result.expansion_overhead += produced - 1;
  }

  // Priorities: line order is matched-first order.
  int32_t priority = static_cast<int32_t>(expanded.size());
  result.rules.reserve(expanded.size());
  for (Expanded& e : expanded) {
    result.rules.push_back(Rule::make(std::move(e.match), std::move(e.actions), priority--));
  }
  return result;
}

ParsedFilterSet load_classbench_file(const std::string& path, uint32_t ports) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("classbench: cannot open " + path);
  return parse_classbench(in, ports);
}

namespace {

/// Converts a ternary port match back to its [lo, hi] range. Only prefix
/// masks (contiguous leading ones) round-trip; others throw.
std::pair<uint32_t, uint32_t> port_to_range(const flowspace::FieldTernary& ft) {
  const uint32_t full = 0xffff;
  const uint32_t mask = ft.mask & full;
  // Must be a prefix mask within 16 bits.
  const uint32_t inverted = (~mask) & full;
  if ((inverted & (inverted + 1)) != 0) {
    throw std::runtime_error("classbench: non-prefix port mask cannot be serialized");
  }
  return {ft.value, ft.value | inverted};
}

}  // namespace

void write_classbench(std::ostream& out, const std::vector<Rule>& rules) {
  for (const Rule& r : rules) {
    const auto& src = r.match.field(FieldId::kSrcIp);
    const auto& dst = r.match.field(FieldId::kDstIp);
    const auto [slo, shi] = port_to_range(r.match.field(FieldId::kSrcPort));
    const auto [dlo, dhi] = port_to_range(r.match.field(FieldId::kDstPort));
    const auto& proto = r.match.field(FieldId::kIpProto);
    out << strfmt("@%s/%u\t%s/%u\t%u : %u\t%u : %u\t0x%02X/0x%02X\n",
                  flowspace::ip_to_string(src.value).c_str(),
                  static_cast<unsigned>(std::popcount(src.mask)),
                  flowspace::ip_to_string(dst.value).c_str(),
                  static_cast<unsigned>(std::popcount(dst.mask)), slo, shi, dlo, dhi,
                  proto.value, proto.mask);
  }
}

}  // namespace ruletris::classbench
