// ClassBench filter-set file format (Taylor & Turner, ToN 2007).
//
// Reads/writes the de-facto standard packet-classifier text format emitted
// by the ClassBench tool (and db_generator), so real published filter sets
// can drive every compiler and bench in this repository:
//
//   @210.45.0.0/16  10.2.3.0/24  0 : 65535  80 : 80  0x06/0xFF  0x0/0x0
//    ^srcIP/len     ^dstIP/len   ^src port  ^dst port ^proto     ^flags(opt)
//
// Port ranges are converted to ternary port prefixes with the classic
// range-to-prefix expansion (one TCAM entry per prefix), which is also how
// hardware ingests them. Line order encodes priority (first = matched
// first), as ClassBench consumers conventionally assume.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "flowspace/rule.h"

namespace ruletris::classbench {

/// Minimal cover of [lo, hi] by ternary (value, mask) prefixes over a
/// `width`-bit field. lo <= hi < 2^width required.
std::vector<std::pair<uint32_t, uint32_t>> range_to_prefixes(uint32_t lo, uint32_t hi,
                                                             uint32_t width);

struct ParsedFilterSet {
  /// Expanded TCAM rules, matched-first order, distinct priorities assigned.
  std::vector<flowspace::Rule> rules;
  /// Original filter count (before range expansion).
  size_t filters = 0;
  /// Rules produced by range expansion beyond one-per-filter.
  size_t expansion_overhead = 0;
};

/// Parses a ClassBench filter set. Throws std::runtime_error with the line
/// number on malformed input. Filters get forwarding actions round-robin
/// over `ports` unless the file carries an action column (non-standard).
ParsedFilterSet parse_classbench(std::istream& in, uint32_t ports = 16);

/// Convenience: parse from a file path.
ParsedFilterSet load_classbench_file(const std::string& path, uint32_t ports = 16);

/// Writes rules in ClassBench syntax. Rules whose port matches are ternary
/// prefixes are emitted as the corresponding [lo, hi] range.
void write_classbench(std::ostream& out, const std::vector<flowspace::Rule>& rules);

}  // namespace ruletris::classbench
