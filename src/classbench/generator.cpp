#include "classbench/generator.h"

#include <algorithm>
#include <unordered_set>

#include "flowspace/action.h"

namespace ruletris::classbench {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::TernaryMatch;
using flowspace::TernaryMatchHash;
using util::Rng;

namespace {

constexpr uint32_t kTcp = 6;
constexpr uint32_t kUdp = 17;

constexpr uint32_t kWellKnownPorts[] = {80, 443, 22, 53, 25, 110, 143, 3306, 8080, 123};

uint32_t random_port(Rng& rng) {
  return kWellKnownPorts[rng.next_below(std::size(kWellKnownPorts))];
}

uint32_t random_ip(Rng& rng) { return rng.next_u32(); }

/// Prefix length mixture resembling a production FIB / IP-chain seed.
uint32_t router_prefix_len(Rng& rng) {
  static constexpr double weights[] = {0.03, 0.05, 0.22, 0.15, 0.45, 0.05, 0.05};
  static constexpr uint32_t lens[] = {8, 12, 16, 20, 24, 28, 32};
  return lens[rng.next_weighted(weights, std::size(weights))];
}

/// Shorter, blockier prefixes for firewall-style sources/destinations.
uint32_t firewall_prefix_len(Rng& rng) {
  static constexpr double weights[] = {0.25, 0.35, 0.30, 0.10};
  static constexpr uint32_t lens[] = {8, 16, 24, 32};
  return lens[rng.next_weighted(weights, std::size(weights))];
}

/// Priority in the specificity band: more specified bits -> matched earlier.
/// Stays well below the CoVisor sequential width (8192).
int32_t specificity_priority(const TernaryMatch& m, Rng& rng) {
  return static_cast<int32_t>(m.specified_bits()) * 16 +
         static_cast<int32_t>(rng.next_below(16)) + 1;
}

// Every monitoring filter anchors on a destination block. ClassBench
// firewall seeds contain a minority of destination-wildcard (port/protocol
// only) filters; we omit them because, against a destination-prefix router,
// each such filter cross-produces with the *whole* router table and the
// composed table degenerates to O(|monitor| x |router|) — the bounded
// profile keeps the emulation at realistic composed sizes (see DESIGN.md).
TernaryMatch random_monitor_match(Rng& rng) {
  TernaryMatch m;
  const double shape = rng.next_double();
  if (shape < 0.35) {
    // Service monitor: destination block + protocol + well-known port.
    m.set_prefix(FieldId::kDstIp, random_ip(rng), rng.next_bool(0.5) ? 8 : 16);
    m.set_exact(FieldId::kIpProto, rng.next_bool(0.8) ? kTcp : kUdp);
    m.set_exact(FieldId::kDstPort, random_port(rng));
  } else if (shape < 0.65) {
    // Site pair monitor: source and destination blocks.
    m.set_prefix(FieldId::kSrcIp, random_ip(rng), firewall_prefix_len(rng));
    m.set_prefix(FieldId::kDstIp, random_ip(rng), firewall_prefix_len(rng));
  } else if (shape < 0.85) {
    // Destination service monitor.
    m.set_prefix(FieldId::kDstIp, random_ip(rng), firewall_prefix_len(rng));
    m.set_exact(FieldId::kIpProto, rng.next_bool(0.8) ? kTcp : kUdp);
    if (rng.next_bool(0.6)) m.set_exact(FieldId::kDstPort, random_port(rng));
  } else {
    // Broad sweep: a destination /8, optionally protocol-qualified.
    m.set_prefix(FieldId::kDstIp, random_ip(rng), 8);
    if (rng.next_bool(0.5)) {
      m.set_exact(FieldId::kIpProto, rng.next_bool(0.5) ? kTcp : kUdp);
    }
  }
  return m;
}

}  // namespace

std::vector<Rule> generate_router(size_t count, Rng& rng) {
  std::vector<Rule> rules;
  rules.reserve(count);
  std::unordered_set<TernaryMatch, TernaryMatchHash> seen;
  std::vector<std::pair<uint32_t, uint32_t>> prefixes;  // (value, len)

  while (rules.size() + 1 < count) {
    uint32_t value, len;
    if (!prefixes.empty() && rng.next_bool(0.3)) {
      // Nest inside an existing prefix: this is what creates dependency
      // chains (LPM ordering constraints) in the DAG.
      const auto& [pv, pl] = prefixes[rng.next_below(prefixes.size())];
      len = std::min<uint32_t>(32, pl + 2 + static_cast<uint32_t>(rng.next_below(7)));
      const uint32_t host = rng.next_u32() & (len >= 32 ? 0u : ((1u << (32 - pl)) - 1u));
      value = pv | (host & ~(len >= 32 ? 0u : ((1u << (32 - len)) - 1u)));
    } else {
      len = router_prefix_len(rng);
      value = random_ip(rng);
    }
    TernaryMatch m;
    m.set_prefix(FieldId::kDstIp, value, len);
    if (!seen.insert(m).second) continue;
    prefixes.emplace_back(m.field(FieldId::kDstIp).value, len);
    rules.push_back(Rule::make(
        m, ActionList{Action::forward(1 + static_cast<uint32_t>(rng.next_below(16)))},
        0));
  }
  // Default route.
  rules.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 0));

  // Longest-prefix-match order with pairwise distinct priorities.
  std::stable_sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    return a.match.specified_bits() > b.match.specified_bits();
  });
  int32_t priority = static_cast<int32_t>(rules.size());
  for (Rule& r : rules) r.priority = priority--;
  return rules;
}

std::vector<Rule> generate_monitor(size_t count, Rng& rng) {
  std::vector<Rule> rules;
  rules.reserve(count);
  std::unordered_set<TernaryMatch, TernaryMatchHash> seen;
  uint32_t counter = 0;
  while (rules.size() + 1 < count) {
    TernaryMatch m = random_monitor_match(rng);
    if (!seen.insert(m).second) continue;
    rules.push_back(
        Rule::make(m, ActionList{Action::count(counter++)}, specificity_priority(m, rng)));
  }
  // Match-all no-op default: composition frameworks compose *total* member
  // functions, so unmonitored traffic must still flow through the other
  // member's rules untouched.
  rules.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{}, 1));
  return rules;
}

Rule random_monitor_rule(size_t table_size, Rng& rng) {
  TernaryMatch m = random_monitor_match(rng);
  return Rule::make(m,
                    ActionList{Action::count(static_cast<uint32_t>(
                        table_size + rng.next_below(1u << 20)))},
                    specificity_priority(m, rng));
}

std::vector<Rule> generate_firewall(size_t count, Rng& rng) {
  std::vector<Rule> rules;
  rules.reserve(count);
  std::unordered_set<TernaryMatch, TernaryMatchHash> seen;
  while (rules.size() + 1 < count) {
    TernaryMatch m = random_monitor_match(rng);
    if (!seen.insert(m).second) continue;
    ActionList actions = rng.next_bool(0.4) ? ActionList{Action::drop()}
                                            : ActionList{Action::forward(1)};
    rules.push_back(Rule::make(m, std::move(actions), specificity_priority(m, rng)));
  }
  // Default-deny backstop, as firewall policies end.
  rules.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 1));
  return rules;
}

Rule random_nat_rule(const std::vector<Rule>& router_rules, size_t table_size, Rng& rng) {
  (void)table_size;
  // Public-facing exact destination, optionally port-qualified.
  TernaryMatch m;
  m.set_exact(FieldId::kDstIp, 0xc8000000u | (rng.next_u32() & 0x00ffffffu));  // 200/8 pool
  const bool has_port = rng.next_bool(0.5);
  if (has_port) {
    m.set_exact(FieldId::kIpProto, kTcp);
    m.set_exact(FieldId::kDstPort, random_port(rng));
  }

  // Translate to a private address inside some router prefix, so the
  // sequential composition with the router is non-trivial.
  const Rule& target = router_rules[rng.next_below(router_rules.size())];
  const auto& dst = target.match.field(FieldId::kDstIp);
  const uint32_t private_ip = dst.value | (rng.next_u32() & ~dst.mask);

  std::vector<Action> actions{Action::set_field(FieldId::kDstIp, private_ip)};
  if (has_port && rng.next_bool(0.4)) {
    actions.push_back(Action::set_field(FieldId::kDstPort,
                                        1024 + static_cast<uint32_t>(rng.next_below(0xfc00))));
  }
  const int32_t priority =
      (has_port ? 2000 : 1000) + static_cast<int32_t>(rng.next_below(512));
  return Rule::make(m, ActionList(std::move(actions)), priority);
}

std::vector<Rule> generate_nat(size_t count, const std::vector<Rule>& router_rules,
                               Rng& rng) {
  std::vector<Rule> rules;
  rules.reserve(count);
  std::unordered_set<TernaryMatch, TernaryMatchHash> seen;
  while (rules.size() + 1 < count) {
    Rule r = random_nat_rule(router_rules, count, rng);
    if (!seen.insert(r.match).second) continue;
    rules.push_back(std::move(r));
  }
  // Passthrough default: untranslated traffic flows to the router unchanged.
  rules.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{}, 1));
  return rules;
}

}  // namespace ruletris::classbench
