#include "proto/codec.h"

#include <cstring>
#include <stdexcept>

#include "util/crc32.h"

namespace ruletris::proto {

using dag::DagDelta;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::ActionType;
using flowspace::FieldId;
using flowspace::kAllFields;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;

namespace {

enum class MsgType : uint8_t {
  kAdd = 1,
  kDelete = 2,
  kModify = 3,
  kDagUpdate = 4,
  kBarrier = 5,
  kSnapshotPatch = 6,
};

class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v) { raw(&v, 2); }
  void u32(uint32_t v) { raw(&v, 4); }
  void u64(uint64_t v) { raw(&v, 8); }
  void i32(int32_t v) { raw(&v, 4); }

  void match(const TernaryMatch& m) {
    for (FieldId f : kAllFields) {
      u32(m.field(f).value);
      u32(m.field(f).mask);
    }
  }

  void actions(const ActionList& list) {
    u16(static_cast<uint16_t>(list.size()));
    for (const Action& a : list.actions()) {
      u8(static_cast<uint8_t>(a.type));
      u8(static_cast<uint8_t>(a.field));
      u32(a.arg);
    }
  }

  void rule(const Rule& r) {
    u64(r.id);
    i32(r.priority);
    match(r.match);
    actions(r.actions);
  }

  /// Length-prefixed opaque byte string (frozen-layer blobs).
  void bytes(const Bytes& b) {
    u32(static_cast<uint32_t>(b.size()));
    if (!b.empty()) raw(b.data(), b.size());
  }

  void delta(const DagDelta& d) {
    u32(static_cast<uint32_t>(d.removed_vertices.size()));
    for (RuleId v : d.removed_vertices) u64(v);
    u32(static_cast<uint32_t>(d.removed_edges.size()));
    for (const auto& [a, b] : d.removed_edges) {
      u64(a);
      u64(b);
    }
    u32(static_cast<uint32_t>(d.added_vertices.size()));
    for (RuleId v : d.added_vertices) u64(v);
    u32(static_cast<uint32_t>(d.added_edges.size()));
    for (const auto& [a, b] : d.added_edges) {
      u64(a);
      u64(b);
    }
  }

 private:
  void raw(const void* p, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(p);
    out_.insert(out_.end(), bytes, bytes + n);  // host is little-endian
  }

  Bytes& out_;
};

class Reader {
 public:
  /// Parses `in[0, limit)`; the bytes past `limit` are the CRC trailer.
  Reader(const Bytes& in, size_t limit) : in_(in), limit_(limit) {}

  bool done() const { return pos_ == limit_; }

  uint8_t u8() { return in_.at(require(1)); }
  uint16_t u16() { return read<uint16_t>(); }
  uint32_t u32() { return read<uint32_t>(); }
  uint64_t u64() { return read<uint64_t>(); }
  int32_t i32() { return read<int32_t>(); }

  TernaryMatch match() {
    TernaryMatch m;
    for (FieldId f : kAllFields) {
      const uint32_t value = u32();
      const uint32_t mask = u32();
      m.set_ternary(f, value, mask);
    }
    return m;
  }

  ActionList actions() {
    const uint16_t n = u16();
    std::vector<Action> list;
    list.reserve(n);
    for (uint16_t i = 0; i < n; ++i) {
      Action a;
      a.type = static_cast<ActionType>(u8());
      a.field = static_cast<FieldId>(u8());
      a.arg = u32();
      list.push_back(a);
    }
    return ActionList(std::move(list));
  }

  Rule rule() {
    Rule r;
    r.id = u64();
    r.priority = i32();
    r.match = match();
    r.actions = actions();
    return r;
  }

  Bytes bytes() {
    const uint32_t n = u32();
    const size_t at = require(n);
    return Bytes(in_.begin() + static_cast<ptrdiff_t>(at),
                 in_.begin() + static_cast<ptrdiff_t>(at + n));
  }

  DagDelta delta() {
    DagDelta d;
    for (uint32_t i = 0, n = u32(); i < n; ++i) d.removed_vertices.push_back(u64());
    for (uint32_t i = 0, n = u32(); i < n; ++i) {
      const RuleId a = u64();
      const RuleId b = u64();
      d.removed_edges.emplace_back(a, b);
    }
    for (uint32_t i = 0, n = u32(); i < n; ++i) d.added_vertices.push_back(u64());
    for (uint32_t i = 0, n = u32(); i < n; ++i) {
      const RuleId a = u64();
      const RuleId b = u64();
      d.added_edges.emplace_back(a, b);
    }
    return d;
  }

 private:
  template <typename T>
  T read() {
    T v;
    std::memcpy(&v, in_.data() + require(sizeof(T)), sizeof(T));
    return v;
  }

  size_t require(size_t n) {
    if (pos_ + n > limit_) throw std::runtime_error("codec: truncated message");
    const size_t at = pos_;
    pos_ += n;
    return at;
  }

  const Bytes& in_;
  size_t limit_;
  size_t pos_ = 0;
};

}  // namespace

uint32_t crc32(const uint8_t* data, size_t len) {
  // Shared sliced-table implementation (util/crc32.h) — same polynomial and
  // values as the byte-at-a-time loop this codec originally carried, but
  // fast enough for the multi-MB frozen snapshots that reuse this framing.
  return util::crc32(data, len);
}

bool checksum_ok(const Bytes& bytes) {
  if (bytes.size() < 4) return false;
  const size_t body = bytes.size() - 4;
  uint32_t stored;
  std::memcpy(&stored, bytes.data() + body, 4);
  return stored == crc32(bytes.data(), body);
}

Bytes encode_batch(const MessageBatch& batch) {
  Bytes out;
  Writer w(out);
  w.u32(static_cast<uint32_t>(batch.size()));
  for (const Message& msg : batch) {
    std::visit(
        [&w](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, FlowModAdd>) {
            w.u8(static_cast<uint8_t>(MsgType::kAdd));
            w.rule(m.rule);
          } else if constexpr (std::is_same_v<T, FlowModDelete>) {
            w.u8(static_cast<uint8_t>(MsgType::kDelete));
            w.u64(m.id);
          } else if constexpr (std::is_same_v<T, FlowModModify>) {
            w.u8(static_cast<uint8_t>(MsgType::kModify));
            w.rule(m.rule);
          } else if constexpr (std::is_same_v<T, DagUpdate>) {
            w.u8(static_cast<uint8_t>(MsgType::kDagUpdate));
            w.delta(m.delta);
          } else if constexpr (std::is_same_v<T, SnapshotPatch>) {
            w.u8(static_cast<uint8_t>(MsgType::kSnapshotPatch));
            w.u64(m.epoch);
            w.bytes(m.blob);
          } else {
            w.u8(static_cast<uint8_t>(MsgType::kBarrier));
          }
        },
        msg);
  }
  const uint32_t crc = crc32(out.data(), out.size());
  Writer(out).u32(crc);
  return out;
}

MessageBatch decode_batch(const Bytes& bytes) {
  // Verify the frame before parsing a single field: a flipped bit anywhere
  // (body or trailer) fails here instead of reaching the message decoders.
  if (!checksum_ok(bytes)) throw std::runtime_error("codec: checksum mismatch");
  Reader r(bytes, bytes.size() - 4);
  MessageBatch batch;
  const uint32_t count = r.u32();
  batch.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    switch (static_cast<MsgType>(r.u8())) {
      case MsgType::kAdd:
        batch.push_back(FlowModAdd{r.rule()});
        break;
      case MsgType::kDelete:
        batch.push_back(FlowModDelete{r.u64()});
        break;
      case MsgType::kModify:
        batch.push_back(FlowModModify{r.rule()});
        break;
      case MsgType::kDagUpdate:
        batch.push_back(DagUpdate{r.delta()});
        break;
      case MsgType::kBarrier:
        batch.push_back(Barrier{});
        break;
      case MsgType::kSnapshotPatch: {
        SnapshotPatch p;
        p.epoch = r.u64();
        p.blob = r.bytes();
        batch.push_back(std::move(p));
        break;
      }
      default:
        throw std::runtime_error("codec: unknown message type");
    }
  }
  if (!r.done()) throw std::runtime_error("codec: trailing bytes");
  return batch;
}

}  // namespace ruletris::proto
