// Control-channel messages: OpenFlow-style flow-mods plus the RuleTris DAG
// extension (Sec. III-B(c), VI).
//
// RuleTris extends OpenFlow v1.3 with experimenter messages that carry the
// DAG or incremental DAG updates from the front-end compiler to the switch
// firmware. We model the same message vocabulary: prioritized flow-mods for
// the baseline compilers, and flow-mods + DagUpdate for RuleTris.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"

namespace ruletris::proto {

struct FlowModAdd {
  flowspace::Rule rule;  // priority used by priority firmware, ignored by DAG firmware
};

struct FlowModDelete {
  flowspace::RuleId id = 0;
};

struct FlowModModify {
  flowspace::Rule rule;
};

/// Experimenter message carrying an incremental DAG update.
struct DagUpdate {
  dag::DagDelta delta;
};

/// Fences a batch; the switch replies when everything before is applied.
struct Barrier {};

using Message =
    std::variant<FlowModAdd, FlowModDelete, FlowModModify, DagUpdate, Barrier>;

using MessageBatch = std::vector<Message>;

}  // namespace ruletris::proto
