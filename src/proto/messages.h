// Control-channel messages: OpenFlow-style flow-mods plus the RuleTris DAG
// extension (Sec. III-B(c), VI).
//
// RuleTris extends OpenFlow v1.3 with experimenter messages that carry the
// DAG or incremental DAG updates from the front-end compiler to the switch
// firmware. We model the same message vocabulary: prioritized flow-mods for
// the baseline compilers, and flow-mods + DagUpdate for RuleTris.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"

namespace ruletris::proto {

struct FlowModAdd {
  flowspace::Rule rule;  // priority used by priority firmware, ignored by DAG firmware
};

struct FlowModDelete {
  flowspace::RuleId id = 0;
};

struct FlowModModify {
  flowspace::Rule rule;
};

/// Experimenter message carrying an incremental DAG update.
struct DagUpdate {
  dag::DagDelta delta;
};

/// Fences a batch; the switch replies when everything before is applied.
struct Barrier {};

/// Experimenter message carrying a frozen-layer epoch delta (an opaque
/// kDeltaMagic arena blob, see src/frozen/delta.h). Shipped controller to
/// controller (warm standby / shard handoff), so switch-side consumers
/// ignore it; the codec frames and CRC-checks it like any other message.
struct SnapshotPatch {
  uint64_t epoch = 0;  // epoch the patch produces when applied
  std::vector<uint8_t> blob;
};

using Message = std::variant<FlowModAdd, FlowModDelete, FlowModModify,
                             DagUpdate, Barrier, SnapshotPatch>;

using MessageBatch = std::vector<Message>;

}  // namespace ruletris::proto
