// Control-channel latency model.
//
// The paper's end-to-end latency decomposes into compilation + channel +
// firmware + TCAM time; the channel component for an OpenFlow TCP session is
// dominated by a per-batch RTT plus serialization at line rate. The model is
// deliberately simple and configurable; figures default to the same
// decomposition the paper plots (channel excluded from the three bars).
#pragma once

#include <cstddef>

namespace ruletris::proto {

struct ChannelModel {
  double per_batch_ms = 0.5;      // one RTT-ish cost per message batch
  double per_byte_us = 0.0083;    // ~1 Gbps control link: 0.0083 us/byte
  double per_message_us = 2.0;    // switch-agent parse/dispatch per message

  double batch_latency_ms(size_t messages, size_t bytes) const {
    return per_batch_ms + static_cast<double>(bytes) * per_byte_us / 1000.0 +
           static_cast<double>(messages) * per_message_us / 1000.0;
  }
};

}  // namespace ruletris::proto
