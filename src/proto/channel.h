// Control-channel latency model.
//
// The paper's end-to-end latency decomposes into compilation + channel +
// firmware + TCAM time; the channel component for an OpenFlow TCP session is
// dominated by a per-batch RTT plus serialization at line rate. Every charge
// is computed from the *actual* number of bytes proto::codec produced for
// the batch (callers pass the encoded wire image's size, never an estimate),
// so the decomposition reflects real serialization cost. The model is
// deliberately simple and configurable; figures default to the same
// decomposition the paper plots.
#pragma once

#include <cstddef>

namespace ruletris::proto {

struct ChannelModel {
  double per_batch_ms = 0.5;      // one RTT-ish cost per message batch
  double per_byte_us = 0.0083;    // ~1 Gbps control link: 0.0083 us/byte
  double per_message_us = 2.0;    // switch-agent parse/dispatch per message

  /// Line-rate serialization of an encoded frame of `bytes` bytes.
  double serialize_ms(size_t bytes) const {
    return static_cast<double>(bytes) * per_byte_us / 1000.0;
  }

  /// Switch-agent parse/dispatch cost for a decoded batch.
  double parse_ms(size_t messages) const {
    return static_cast<double>(messages) * per_message_us / 1000.0;
  }

  /// One-way delivery latency of an encoded frame: half the per-batch RTT
  /// (propagation) plus serialization of the actual bytes. The asynchronous
  /// runtime charges this per direction, so a windowed session overlaps
  /// transfers instead of paying the full RTT per batch.
  double one_way_ms(size_t bytes) const {
    return per_batch_ms / 2.0 + serialize_ms(bytes);
  }

  /// Synchronous round-trip latency of one barrier-fenced batch, as the
  /// blocking SimulatedSwitch::deliver path charges it. `bytes` is the size
  /// of the encoded wire image.
  double batch_latency_ms(size_t messages, size_t bytes) const {
    return per_batch_ms + serialize_ms(bytes) + parse_ms(messages);
  }
};

}  // namespace ruletris::proto
