// Binary wire codec for control messages.
//
// Little-endian, length-prefixed encoding so channel latency can be modeled
// from real byte counts and so the protocol layer is actually exercised
// end-to-end (serialize -> byte stream -> parse) rather than passed by
// reference. Format (all integers little-endian):
//   batch   := u32 count, count * message
//   message := u8 type, payload
//   rule    := u64 id, i32 priority, match, actions
//   match   := 7 * (u32 value, u32 mask)
//   actions := u16 count, count * (u8 type, u8 field, u32 arg)
//   delta   := 4 length-prefixed sections (vertices/edges removed/added)
//   patch   := u64 epoch, u32 len, len opaque bytes (frozen epoch delta)
//
// Every encoded batch carries a trailing u32 CRC32 over the body, verified
// before any parsing: a corrupted frame (CRC32 detects all single-bit and
// single-byte errors) fails fast with "codec: checksum mismatch" instead of
// being decoded into garbage rules.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/messages.h"

namespace ruletris::proto {

using Bytes = std::vector<uint8_t>;

/// CRC32 (IEEE 802.3, reflected 0xEDB88320) over `len` bytes.
uint32_t crc32(const uint8_t* data, size_t len);

/// Whether `bytes` ends in a valid CRC32 trailer for its body. Cheap
/// pre-parse validation for receivers that want to NACK corrupted frames
/// without paying for (or throwing from) a full decode.
bool checksum_ok(const Bytes& bytes);

Bytes encode_batch(const MessageBatch& batch);

/// Throws std::runtime_error on malformed input; the CRC trailer is
/// verified before the body is parsed.
MessageBatch decode_batch(const Bytes& bytes);

}  // namespace ruletris::proto
