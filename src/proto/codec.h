// Binary wire codec for control messages.
//
// Little-endian, length-prefixed encoding so channel latency can be modeled
// from real byte counts and so the protocol layer is actually exercised
// end-to-end (serialize -> byte stream -> parse) rather than passed by
// reference. Format (all integers little-endian):
//   batch   := u32 count, count * message
//   message := u8 type, payload
//   rule    := u64 id, i32 priority, match, actions
//   match   := 7 * (u32 value, u32 mask)
//   actions := u16 count, count * (u8 type, u8 field, u32 arg)
//   delta   := 4 length-prefixed sections (vertices/edges removed/added)
#pragma once

#include <cstdint>
#include <vector>

#include "proto/messages.h"

namespace ruletris::proto {

using Bytes = std::vector<uint8_t>;

Bytes encode_batch(const MessageBatch& batch);

/// Throws std::runtime_error on malformed input.
MessageBatch decode_batch(const Bytes& bytes);

}  // namespace ruletris::proto
