#include "switchsim/pipeline_switch.h"

#include <algorithm>

#include "proto/codec.h"
#include "tcam/backend_update.h"
#include "util/timer.h"

namespace ruletris::switchsim {

using flowspace::ActionList;
using flowspace::Packet;
using proto::Message;
using proto::MessageBatch;

MultiTableSwitch::MultiTableSwitch(std::vector<size_t> stage_capacities,
                                   proto::ChannelModel channel)
    : channel_(channel) {
  stages_.reserve(stage_capacities.size());
  for (size_t capacity : stage_capacities) {
    Stage stage;
    stage.tcam = std::make_unique<tcam::Tcam>(capacity);
    stage.scheduler = std::make_unique<tcam::DagScheduler>(*stage.tcam);
    stages_.push_back(std::move(stage));
  }
}

UpdateMetrics MultiTableSwitch::deliver(size_t stage_idx, const MessageBatch& batch) {
  return apply_to_stage(stages_.at(stage_idx), batch);
}

UpdateMetrics MultiTableSwitch::apply_to_stage(Stage& stage, const MessageBatch& batch) {
  const proto::Bytes wire = proto::encode_batch(batch);
  const MessageBatch decoded = proto::decode_batch(wire);

  UpdateMetrics metrics;
  const auto before = stage.tcam->stats();
  util::Stopwatch watch;

  tcam::BackendUpdate update;
  for (const Message& msg : decoded) {
    if (const auto* del = std::get_if<proto::FlowModDelete>(&msg)) {
      update.removed.push_back(del->id);
    } else if (const auto* add = std::get_if<proto::FlowModAdd>(&msg)) {
      update.added.push_back(add->rule);
    } else if (const auto* mod = std::get_if<proto::FlowModModify>(&msg)) {
      update.removed.push_back(mod->rule.id);
      update.added.push_back(mod->rule);
    } else if (const auto* dag = std::get_if<proto::DagUpdate>(&msg)) {
      auto& d = update.dag;
      const auto& in = dag->delta;
      d.removed_vertices.insert(d.removed_vertices.end(), in.removed_vertices.begin(),
                                in.removed_vertices.end());
      d.removed_edges.insert(d.removed_edges.end(), in.removed_edges.begin(),
                             in.removed_edges.end());
      d.added_vertices.insert(d.added_vertices.end(), in.added_vertices.begin(),
                              in.added_vertices.end());
      d.added_edges.insert(d.added_edges.end(), in.added_edges.begin(),
                           in.added_edges.end());
    }
  }
  metrics.status = stage.scheduler->apply_status(update);
  metrics.ok = metrics.status == tcam::ApplyStatus::kOk;
  metrics.firmware_ms = watch.elapsed_ms();

  const auto after = stage.tcam->stats();
  metrics.entry_writes = after.entry_writes - before.entry_writes;
  metrics.moves = after.moves - before.moves;
  metrics.tcam_ms = static_cast<double>(metrics.entry_writes) * tcam::kEntryWriteMs;
  metrics.wire_bytes = wire.size();
  metrics.channel_ms = channel_.batch_latency_ms(batch.size(), wire.size());
  return metrics;
}

void MultiTableSwitch::set_apply_threads(size_t n, bool clamp_to_hardware) {
  if (n == 0) n = 1;
  if (clamp_to_hardware) n = util::effective_workers(n);
  if (n == apply_threads_) return;
  apply_threads_ = n;
  pool_.reset();  // rebuilt lazily by the next parallel deliver_all
}

MultiTableSwitch::PipelineUpdateMetrics MultiTableSwitch::deliver_all(
    const std::vector<MessageBatch>& batches) {
  const size_t n = std::min(batches.size(), stages_.size());
  PipelineUpdateMetrics report;
  report.stages.resize(n);

  if (apply_threads_ <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      report.stages[i] = apply_to_stage(stages_[i], batches[i]);
    }
  } else {
    if (!pool_) pool_ = std::make_unique<util::ThreadPool>(apply_threads_);
    util::ChunkCursor cursor(0, n, 1);  // stages are coarse units already
    util::run_on_workers(*pool_, [&] {
      return [this, &batches, &report, &cursor] {
        size_t b = 0, e = 0;
        while (cursor.next(b, e)) {
          for (size_t i = b; i < e; ++i) {
            report.stages[i] = apply_to_stage(stages_[i], batches[i]);
          }
        }
      };
    });
  }

  // Deterministic stage-order merge: per-stage slots were filled race-free,
  // so the sums (and the critical path) are independent of thread count.
  for (const UpdateMetrics& m : report.stages) {
    report.ok = report.ok && m.ok;
    report.total.ok = report.ok;
    if (m.status != tcam::ApplyStatus::kOk &&
        report.total.status == tcam::ApplyStatus::kOk) {
      report.total.status = m.status;  // first failing stage wins
    }
    report.total.entry_writes += m.entry_writes;
    report.total.moves += m.moves;
    report.total.wire_bytes += m.wire_bytes;
    report.total.channel_ms += m.channel_ms;
    report.total.firmware_ms += m.firmware_ms;
    report.total.tcam_ms += m.tcam_ms;
    report.critical_path_ms =
        std::max(report.critical_path_ms, m.channel_ms + m.tcam_ms);
  }
  return report;
}

ActionList MultiTableSwitch::process(const Packet& packet) const {
  Packet current = packet;
  ActionList accumulated;
  for (const Stage& stage : stages_) {
    const flowspace::Rule* hit = stage.tcam->lookup(current);
    if (hit == nullptr) continue;  // stage miss: identity
    accumulated = ActionList::sequential_merge(accumulated, hit->actions);
    current = hit->actions.apply_rewrites(current);
  }
  return accumulated;
}

}  // namespace ruletris::switchsim
