#include "switchsim/switch.h"

#include <stdexcept>

#include "tcam/backend_update.h"
#include "util/timer.h"

namespace ruletris::switchsim {

using proto::Barrier;
using proto::DagUpdate;
using proto::FlowModAdd;
using proto::FlowModDelete;
using proto::FlowModModify;
using proto::Message;
using proto::MessageBatch;

SimulatedSwitch::SimulatedSwitch(FirmwareMode mode, size_t tcam_capacity,
                                 proto::ChannelModel channel)
    : mode_(mode), channel_(channel), tcam_(std::make_unique<tcam::Tcam>(tcam_capacity)) {
  if (mode_ == FirmwareMode::kDag) {
    dag_ = std::make_unique<tcam::DagScheduler>(*tcam_);
  } else {
    priority_ = std::make_unique<tcam::PriorityFirmware>(*tcam_);
  }
}

tcam::DagScheduler& SimulatedSwitch::dag_firmware() {
  if (!dag_) throw std::logic_error("switch runs the priority firmware");
  return *dag_;
}

const tcam::DagScheduler& SimulatedSwitch::dag_firmware() const {
  if (!dag_) throw std::logic_error("switch runs the priority firmware");
  return *dag_;
}

tcam::PriorityFirmware& SimulatedSwitch::priority_firmware() {
  if (!priority_) throw std::logic_error("switch runs the DAG firmware");
  return *priority_;
}

UpdateMetrics SimulatedSwitch::deliver(const MessageBatch& batch) {
  const proto::Bytes wire = proto::encode_batch(batch);
  const MessageBatch decoded = proto::decode_batch(wire);

  UpdateMetrics metrics = apply(decoded);
  metrics.wire_bytes = wire.size();
  metrics.channel_ms = channel_.batch_latency_ms(batch.size(), wire.size());
  return metrics;
}

UpdateMetrics SimulatedSwitch::apply(const MessageBatch& batch) {
  UpdateMetrics metrics;
  const auto before = tcam_->stats();
  util::Stopwatch watch;

  if (mode_ == FirmwareMode::kDag) {
    // One barrier-fenced transaction: fold the flow-mods and DAG updates
    // into a single back-end update so inserts are scheduled with full
    // dependency knowledge.
    tcam::BackendUpdate update;
    for (const Message& msg : batch) {
      if (const auto* del = std::get_if<FlowModDelete>(&msg)) {
        update.removed.push_back(del->id);
      } else if (const auto* add = std::get_if<FlowModAdd>(&msg)) {
        update.added.push_back(add->rule);
      } else if (const auto* mod = std::get_if<FlowModModify>(&msg)) {
        update.removed.push_back(mod->rule.id);
        update.added.push_back(mod->rule);
      } else if (const auto* dag = std::get_if<DagUpdate>(&msg)) {
        auto& d = update.dag;
        const auto& in = dag->delta;
        d.removed_vertices.insert(d.removed_vertices.end(),
                                  in.removed_vertices.begin(), in.removed_vertices.end());
        d.removed_edges.insert(d.removed_edges.end(), in.removed_edges.begin(),
                               in.removed_edges.end());
        d.added_vertices.insert(d.added_vertices.end(), in.added_vertices.begin(),
                                in.added_vertices.end());
        d.added_edges.insert(d.added_edges.end(), in.added_edges.begin(),
                             in.added_edges.end());
      }
    }
    metrics.status = dag_->apply_status(update);
    metrics.ok = metrics.status == tcam::ApplyStatus::kOk;
  } else {
    compiler::PrioritizedUpdate update;
    for (const Message& msg : batch) {
      if (const auto* del = std::get_if<FlowModDelete>(&msg)) {
        update.push_back(compiler::PrioritizedOp::del(del->id));
      } else if (const auto* add = std::get_if<FlowModAdd>(&msg)) {
        update.push_back(compiler::PrioritizedOp::add(add->rule));
      } else if (const auto* mod = std::get_if<FlowModModify>(&msg)) {
        update.push_back(compiler::PrioritizedOp::mod(mod->rule));
      }
    }
    metrics.ok = priority_->apply(update);
    // The priority firmware only fails on exhaustion; surface it as such.
    metrics.status =
        metrics.ok ? tcam::ApplyStatus::kOk : tcam::ApplyStatus::kTableFull;
  }

  metrics.firmware_ms = watch.elapsed_ms();
  const auto after = tcam_->stats();
  metrics.entry_writes = after.entry_writes - before.entry_writes;
  metrics.moves = after.moves - before.moves;
  metrics.tcam_ms = static_cast<double>(metrics.entry_writes) * tcam::kEntryWriteMs;
  return metrics;
}

}  // namespace ruletris::switchsim
