// Simulated hardware switch: control channel + firmware + TCAM.
//
// Substitutes for the paper's ONetSwitch prototype (Sec. VI). A switch runs
// one of two firmwares: the RuleTris DAG back-end (DagScheduler) or the
// stock priority-based firmware (PriorityFirmware). Updates arrive as
// encoded protocol batches; the switch decodes and applies them, reporting
// the same latency decomposition the paper measures — channel time, firmware
// computation time (wall clock), and TCAM update time (entry writes x
// 0.6 ms).
#pragma once

#include <memory>
#include <optional>

#include "proto/channel.h"
#include "proto/codec.h"
#include "proto/messages.h"
#include "tcam/dag_scheduler.h"
#include "tcam/priority_firmware.h"
#include "tcam/tcam.h"

namespace ruletris::switchsim {

enum class FirmwareMode { kDag, kPriority };

struct UpdateMetrics {
  bool ok = true;  // status == kOk; kept for the many boolean call sites
  /// Structured firmware outcome: kTableFull / kRolledBack distinguish a
  /// capacity rejection (reportable) from a corrupted request (rolled back).
  tcam::ApplyStatus status = tcam::ApplyStatus::kOk;
  double channel_ms = 0.0;   // modelled transfer latency (actual encoded bytes)
  double firmware_ms = 0.0;  // measured schedule computation time
  double tcam_ms = 0.0;      // modelled: entry writes x 0.6 ms
  size_t entry_writes = 0;
  size_t moves = 0;
  size_t wire_bytes = 0;     // size of the encoded wire image (0 via apply())

  double total_ms() const { return channel_ms + firmware_ms + tcam_ms; }
};

class SimulatedSwitch {
 public:
  SimulatedSwitch(FirmwareMode mode, size_t tcam_capacity,
                  proto::ChannelModel channel = {});

  /// Encodes, "transfers", decodes and applies a batch; one barrier-fenced
  /// update transaction. Channel latency is charged from the actual encoded
  /// byte count of the batch.
  UpdateMetrics deliver(const proto::MessageBatch& batch);

  /// Applies an already-decoded batch to the firmware without charging any
  /// channel latency. The asynchronous runtime uses this: it owns the wire
  /// (encoding, faults, delivery timing) and hands the switch the decoded
  /// batch at delivery time.
  UpdateMetrics apply(const proto::MessageBatch& batch);

  FirmwareMode mode() const { return mode_; }
  tcam::Tcam& tcam() { return *tcam_; }
  const tcam::Tcam& tcam() const { return *tcam_; }

  tcam::DagScheduler& dag_firmware();
  const tcam::DagScheduler& dag_firmware() const;
  tcam::PriorityFirmware& priority_firmware();

 private:
  FirmwareMode mode_;
  proto::ChannelModel channel_;
  std::unique_ptr<tcam::Tcam> tcam_;
  std::unique_ptr<tcam::DagScheduler> dag_;
  std::unique_ptr<tcam::PriorityFirmware> priority_;
};

}  // namespace ruletris::switchsim
