#include "switchsim/adapters.h"

namespace ruletris::switchsim {

using proto::MessageBatch;

MessageBatch to_messages(const compiler::TableUpdate& update) {
  MessageBatch batch;
  batch.reserve(update.removed.size() + update.added.size() + 2);
  for (flowspace::RuleId id : update.removed) {
    batch.push_back(proto::FlowModDelete{id});
  }
  batch.push_back(proto::DagUpdate{update.dag});
  for (const flowspace::Rule& r : update.added) {
    batch.push_back(proto::FlowModAdd{r});
  }
  batch.push_back(proto::Barrier{});
  return batch;
}

MessageBatch to_messages(const compiler::PrioritizedUpdate& update) {
  MessageBatch batch;
  batch.reserve(update.size() + 1);
  for (const compiler::PrioritizedOp& op : update) {
    switch (op.kind) {
      case compiler::PrioritizedOp::Kind::kAdd:
        batch.push_back(proto::FlowModAdd{op.rule});
        break;
      case compiler::PrioritizedOp::Kind::kDelete:
        batch.push_back(proto::FlowModDelete{op.rule.id});
        break;
      case compiler::PrioritizedOp::Kind::kModify:
        batch.push_back(proto::FlowModModify{op.rule});
        break;
    }
  }
  batch.push_back(proto::Barrier{});
  return batch;
}

}  // namespace ruletris::switchsim
