// Adapters from compiler outputs to protocol message batches.
#pragma once

#include "compiler/prioritized.h"
#include "compiler/update.h"
#include "proto/messages.h"

namespace ruletris::switchsim {

/// RuleTris update -> [deletes..., DagUpdate, adds..., Barrier].
proto::MessageBatch to_messages(const compiler::TableUpdate& update);

/// Baseline/CoVisor update -> prioritized flow-mods + Barrier.
proto::MessageBatch to_messages(const compiler::PrioritizedUpdate& update);

}  // namespace ruletris::switchsim
