// Data-plane traffic engine: the "millions of users" workload.
//
// Synthesizes a Zipf-skewed flow arrival stream (util::FlowStream), maps
// each flow to a concrete packet header targeted at the full rule table,
// and performs real lookups against the two-level cache: TCAM fast path
// first, tuple-space SoftTable on a miss or cover punt. Lookups are sharded
// across util::ThreadPool; the stream is counter-based and the cache is
// read-only during a lookup phase, so per-rule hit counts — and everything
// derived from them, including the FDRC swap plans — are bit-identical
// across runs and thread counts.
//
// Epoch loop (the serial points that make parallel lookups safe):
//   lookup phase (parallel, const)  ->  merge shard hit counts (additive)
//   -> flow churn (expiry/arrival remaps)  ->  admission rebalance under
//   traffic (swaps measured in TCAM entry writes x 0.6 ms)  ->  consistency
//   sampling (lookup_consistent on fresh packets)  ->  hit aging.
#pragma once

#include <cstdint>
#include <vector>

#include "flowspace/rule.h"
#include "tcam/cacheflow.h"
#include "util/flow_stream.h"

namespace ruletris::switchsim {

struct TrafficConfig {
  size_t flows = 1 << 20;          // concurrent-flow universe
  double zipf_alpha = 1.0;         // flow popularity skew
  double churn_rate = 0.0;         // expected flow remaps per packet
  size_t packets_per_epoch = 50000;
  size_t epochs = 4;
  uint64_t seed = 1;
  size_t n_threads = 1;            // lookup shards (1 = serial)
  tcam::CacheFlowManager::AdmissionPolicy policy =
      tcam::CacheFlowManager::AdmissionPolicy::kFlowDriven;
  size_t rebalance_swaps = 64;     // per-epoch FDRC swap budget
  double warm_fill = 0.85;         // initial fill fraction of TCAM capacity
  size_t consistency_samples = 32; // packets audited per epoch
};

struct EpochStats {
  uint64_t packets = 0;
  uint64_t fast_hits = 0;
  size_t churn_events = 0;
  size_t swaps = 0;
  size_t entry_writes = 0;     // TCAM writes caused by this epoch's rebalance
  double update_ms = 0.0;      // entry_writes x 0.6 ms, under live traffic
  double lookup_wall_ms = 0.0; // wall clock of the sharded lookup phase
  double hit_rate() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(fast_hits) /
                              static_cast<double>(packets);
  }
};

struct TrafficReport {
  std::vector<EpochStats> epochs;
  uint64_t packets = 0;
  uint64_t fast_hits = 0;
  size_t churn_events = 0;
  size_t swaps = 0;
  size_t entry_writes = 0;
  size_t consistency_violations = 0;  // must be 0
  double update_ms = 0.0;
  double lookup_wall_ms = 0.0;
  // Determinism fingerprints: per-rule hit counts folded in rule order, and
  // the final TCAM layout folded by address. Equal across runs and thread
  // counts for a fixed seed.
  uint64_t hit_checksum = 0;
  uint64_t layout_checksum = 0;

  double hit_rate() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(fast_hits) /
                              static_cast<double>(packets);
  }
  double pkts_per_s() const {
    return lookup_wall_ms <= 0.0
               ? 0.0
               : static_cast<double>(packets) / (lookup_wall_ms / 1000.0);
  }
};

/// Deterministic packet for a flow identity over `rules`: the flow picks a
/// rule (uniformly by identity hash) and fills that rule's wildcard bits
/// from its own hash stream, so every packet of a flow is identical and may
/// legitimately land in a more specific overlapping rule.
flowspace::Packet synth_packet(const std::vector<flowspace::Rule>& rules,
                               uint64_t flow_id);

class TrafficEngine {
 public:
  /// `rules` must be the same full table (same order) the manager holds.
  TrafficEngine(tcam::CacheFlowManager& manager,
                const std::vector<flowspace::Rule>& rules, TrafficConfig config);

  /// Warm (per policy) + the full epoch loop.
  TrafficReport run();

  /// One sharded lookup phase + churn for epoch `e`, crediting hit counters
  /// but performing no admission work — the building block fig11 uses to
  /// source flow-driven swap streams while timing the swaps itself.
  EpochStats run_lookup_epoch(uint64_t e);

  /// synth_packet over the engine's table.
  flowspace::Packet packet_for(uint64_t flow_id) const {
    return synth_packet(rules_, flow_id);
  }

  const util::FlowStream& stream() const { return stream_; }

 private:
  void finalize(TrafficReport& report) const;

  tcam::CacheFlowManager& manager_;
  const std::vector<flowspace::Rule>& rules_;
  TrafficConfig config_;
  util::FlowStream stream_;
  std::unordered_map<flowspace::RuleId, size_t> dense_;  // id -> rules_ index
};

}  // namespace ruletris::switchsim
