// Multi-table pipeline switch — the paper's Sec. VIII extension.
//
// "If we have two TCAM tables in a pipeline, the dependencies between the
// two modules in a sequential composition can be decoupled by placing the
// first one in the first TCAM and the second module in the second TCAM."
//
// Each stage is an independent TCAM driven by its own DAG scheduler; a
// packet traverses the stages left to right, each stage's winning rule
// rewriting the header before the next stage matches (exactly the
// sequential-composition semantics of Sec. IV-A). A member-table update
// then touches only its own stage: no cross-product recompilation, no
// cross-module dependencies, member-sized flow tables.
#pragma once

#include <memory>
#include <vector>

#include "flowspace/action.h"
#include "proto/channel.h"
#include "proto/messages.h"
#include "switchsim/switch.h"
#include "tcam/dag_scheduler.h"
#include "tcam/tcam.h"

namespace ruletris::switchsim {

class MultiTableSwitch {
 public:
  /// One capacity per pipeline stage (matching the composition's members,
  /// left to right).
  explicit MultiTableSwitch(std::vector<size_t> stage_capacities,
                            proto::ChannelModel channel = {});

  size_t stage_count() const { return stages_.size(); }
  tcam::Tcam& tcam(size_t stage) { return *stages_.at(stage).tcam; }
  const tcam::Tcam& tcam(size_t stage) const { return *stages_.at(stage).tcam; }
  tcam::DagScheduler& firmware(size_t stage) { return *stages_.at(stage).scheduler; }

  /// Applies a barrier-fenced update batch to one stage.
  UpdateMetrics deliver(size_t stage, const proto::MessageBatch& batch);

  /// End-to-end pipeline decision: the packet flows through every stage,
  /// each stage's winner rewriting the header for the next; the returned
  /// action list merges the stages with sequential semantics. A stage miss
  /// contributes nothing (identity).
  flowspace::ActionList process(const flowspace::Packet& packet) const;

 private:
  struct Stage {
    std::unique_ptr<tcam::Tcam> tcam;
    std::unique_ptr<tcam::DagScheduler> scheduler;
  };

  proto::ChannelModel channel_;
  std::vector<Stage> stages_;
};

}  // namespace ruletris::switchsim
