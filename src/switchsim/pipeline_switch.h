// Multi-table pipeline switch — the paper's Sec. VIII extension.
//
// "If we have two TCAM tables in a pipeline, the dependencies between the
// two modules in a sequential composition can be decoupled by placing the
// first one in the first TCAM and the second module in the second TCAM."
//
// Each stage is an independent TCAM driven by its own DAG scheduler; a
// packet traverses the stages left to right, each stage's winning rule
// rewriting the header before the next stage matches (exactly the
// sequential-composition semantics of Sec. IV-A). A member-table update
// then touches only its own stage: no cross-product recompilation, no
// cross-module dependencies, member-sized flow tables.
#pragma once

#include <memory>
#include <vector>

#include "flowspace/action.h"
#include "proto/channel.h"
#include "proto/messages.h"
#include "switchsim/switch.h"
#include "tcam/dag_scheduler.h"
#include "tcam/tcam.h"
#include "util/thread_pool.h"

namespace ruletris::switchsim {

class MultiTableSwitch {
 public:
  /// One capacity per pipeline stage (matching the composition's members,
  /// left to right).
  explicit MultiTableSwitch(std::vector<size_t> stage_capacities,
                            proto::ChannelModel channel = {});

  size_t stage_count() const { return stages_.size(); }
  tcam::Tcam& tcam(size_t stage) { return *stages_.at(stage).tcam; }
  const tcam::Tcam& tcam(size_t stage) const { return *stages_.at(stage).tcam; }
  tcam::DagScheduler& firmware(size_t stage) { return *stages_.at(stage).scheduler; }

  /// Applies a barrier-fenced update batch to one stage.
  UpdateMetrics deliver(size_t stage, const proto::MessageBatch& batch);

  /// Per-pipeline update report from deliver_all: metrics index-aligned
  /// with the stages, plus their deterministic stage-order sum and the
  /// modelled critical path (stages update concurrently in hardware, so the
  /// pipeline-wide latency is the slowest stage, not the sum).
  struct PipelineUpdateMetrics {
    std::vector<UpdateMetrics> stages;
    UpdateMetrics total;
    double critical_path_ms = 0.0;  // max over stages of channel_ms + tcam_ms
    bool ok = true;                 // every stage applied cleanly
  };

  /// Applies one update batch per stage (index-aligned; `batches` may be
  /// shorter than the stage count — missing stages are skipped). Stages are
  /// independent — each owns its TCAM and scheduler — so when
  /// set_apply_threads(n > 1) was called the per-stage applies run on a
  /// ThreadPool; results land in per-stage slots and are merged in stage
  /// order, so everything except the wall-clock firmware_ms diagnostic is
  /// bit-identical across thread counts.
  PipelineUpdateMetrics deliver_all(const std::vector<proto::MessageBatch>& batches);

  /// Worker count for deliver_all (1 = serial, the default). By default the
  /// count is clamped to the machine's core count (util::effective_workers):
  /// stage applies are CPU-bound, so oversubscription can only lose, and on
  /// a single-core host the pool path degenerates to the serial loop.
  /// Determinism tests pass clamp_to_hardware = false to force the pool and
  /// its interleavings regardless of the hardware.
  void set_apply_threads(size_t n, bool clamp_to_hardware = true);

  /// End-to-end pipeline decision: the packet flows through every stage,
  /// each stage's winner rewriting the header for the next; the returned
  /// action list merges the stages with sequential semantics. A stage miss
  /// contributes nothing (identity).
  flowspace::ActionList process(const flowspace::Packet& packet) const;

 private:
  struct Stage {
    std::unique_ptr<tcam::Tcam> tcam;
    std::unique_ptr<tcam::DagScheduler> scheduler;
  };

  UpdateMetrics apply_to_stage(Stage& stage, const proto::MessageBatch& batch);

  proto::ChannelModel channel_;
  std::vector<Stage> stages_;
  size_t apply_threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace ruletris::switchsim
