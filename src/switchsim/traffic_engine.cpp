#include "switchsim/traffic_engine.h"

#include <cmath>
#include <stdexcept>

#include "util/hash.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ruletris::switchsim {

using flowspace::FieldId;
using flowspace::kAllFields;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;

TrafficEngine::TrafficEngine(tcam::CacheFlowManager& manager,
                             const std::vector<Rule>& rules, TrafficConfig config)
    : manager_(manager),
      rules_(rules),
      config_(config),
      stream_(config.seed, config.flows, config.zipf_alpha) {
  if (rules_.empty()) throw std::invalid_argument("TrafficEngine: empty table");
  dense_.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) dense_[rules_[i].id] = i;
}

Packet synth_packet(const std::vector<Rule>& rules, uint64_t flow_id) {
  const size_t idx = static_cast<size_t>(flow_id % rules.size());
  const Rule& target = rules[idx];
  Packet p = target.match.sample_packet();
  // Fill the wildcard bits from the flow's hash stream: flows targeting the
  // same rule stay distinguishable, and a filled packet may legitimately
  // fall into a more specific overlapping rule — realistic, and exactly the
  // ambiguity the cover-set machinery must punt correctly.
  util::Rng bits(util::hash_pair(flow_id, 0xb17f111ULL));
  for (FieldId f : kAllFields) {
    const auto& t = target.match.field(f);
    const uint32_t full = flowspace::field_full_mask(f);
    const uint32_t noise = bits.next_u32() & ~t.mask & full;
    p.set(f, (p.get(f) & t.mask) | noise);
  }
  return p;
}

EpochStats TrafficEngine::run_lookup_epoch(uint64_t e) {
  EpochStats stats;
  stats.packets = config_.packets_per_epoch;

  const size_t n_threads = std::max<size_t>(1, config_.n_threads);
  const size_t n_rules = rules_.size();
  // Per-worker dense hit counters; sums are order-independent integers, so
  // any merge order gives the same totals as a serial run.
  std::vector<std::vector<uint64_t>> shard_hits(
      n_threads, std::vector<uint64_t>(n_rules, 0));
  std::vector<uint64_t> shard_fast(n_threads, 0);

  util::Stopwatch watch;
  auto lookup_range = [&](size_t slot, size_t begin, size_t end) {
    auto& hits = shard_hits[slot];
    uint64_t fast = 0;
    for (size_t i = begin; i < end; ++i) {
      const util::FlowStream::Event ev = stream_.at(e, i);
      const Packet p = packet_for(ev.flow_id);
      const auto out = manager_.classify(p);
      if (out.rule != nullptr) ++hits[dense_.find(out.rule->id)->second];
      if (out.fast_path) ++fast;
    }
    shard_fast[slot] += fast;
  };
  if (n_threads == 1) {
    lookup_range(0, 0, config_.packets_per_epoch);
  } else {
    util::ThreadPool pool(n_threads);
    util::ChunkCursor cursor(
        0, config_.packets_per_epoch,
        util::ChunkCursor::suggest_chunk(config_.packets_per_epoch, n_threads));
    std::atomic<size_t> next_slot{0};
    util::run_on_workers(pool, [&] {
      return [&, slot = next_slot.fetch_add(1)] {
        size_t b = 0, fin = 0;
        while (cursor.next(b, fin)) lookup_range(slot, b, fin);
      };
    });
  }
  stats.lookup_wall_ms = watch.elapsed_ms();

  // Deterministic merge: rule order, shard order.
  for (size_t r = 0; r < n_rules; ++r) {
    uint64_t total = 0;
    for (size_t s = 0; s < n_threads; ++s) total += shard_hits[s][r];
    if (total != 0) manager_.add_hits(rules_[r].id, total);
  }
  for (size_t s = 0; s < n_threads; ++s) stats.fast_hits += shard_fast[s];

  // Flow expiry/arrival churn at the epoch boundary.
  const size_t churn_events = static_cast<size_t>(
      std::llround(config_.churn_rate * static_cast<double>(stats.packets)));
  stats.churn_events = stream_.churn(e, churn_events);
  return stats;
}

TrafficReport TrafficEngine::run() {
  TrafficReport report;
  manager_.warm(config_.policy,
                static_cast<size_t>(config_.warm_fill *
                                    static_cast<double>(manager_.tcam().capacity())));

  for (uint64_t e = 0; e < config_.epochs; ++e) {
    EpochStats stats = run_lookup_epoch(e);

    // Admission maintenance under live traffic: the swap cost (TCAM entry
    // writes x 0.6 ms) is the update latency the data plane experiences
    // between this epoch and the next.
    const size_t writes_before = manager_.tcam().stats().entry_writes;
    stats.swaps = manager_.rebalance(config_.policy, config_.rebalance_swaps);
    stats.entry_writes = manager_.tcam().stats().entry_writes - writes_before;
    stats.update_ms = static_cast<double>(stats.entry_writes) * tcam::kEntryWriteMs;

    // Fast-path/slow-path consistency on packets from the *post-churn,
    // post-rebalance* state — the moment a stale cache would be caught.
    for (size_t s = 0; s < config_.consistency_samples; ++s) {
      const auto ev = stream_.at(e ^ 0x5a5a5a5aULL, s);
      if (!manager_.lookup_consistent(packet_for(ev.flow_id))) {
        ++report.consistency_violations;
      }
    }

    manager_.age_hits();

    report.packets += stats.packets;
    report.fast_hits += stats.fast_hits;
    report.churn_events += stats.churn_events;
    report.swaps += stats.swaps;
    report.entry_writes += stats.entry_writes;
    report.update_ms += stats.update_ms;
    report.lookup_wall_ms += stats.lookup_wall_ms;
    report.epochs.push_back(stats);
  }
  finalize(report);
  return report;
}

void TrafficEngine::finalize(TrafficReport& report) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Rule& r : rules_) {
    h = util::hash_pair(h, util::hash_pair(r.id, manager_.hits(r.id)));
  }
  report.hit_checksum = h;

  uint64_t l = 0x2545f4914f6cdd1dULL;
  const tcam::Tcam& t = manager_.tcam();
  for (size_t addr = 0; addr < t.capacity(); ++addr) {
    const auto id = t.at(addr);
    // Covers are canonicalized to (target id, cover flag): their own ids
    // come from the process-wide counter and vary run to run.
    uint64_t canonical = 0, is_cover = 0;
    if (id) {
      const RuleId target = manager_.cover_target(*id);
      is_cover = target != flowspace::kInvalidRuleId;
      canonical = is_cover ? target : *id;
    }
    l = util::hash_pair(l, util::hash_pair(addr, canonical ^ (is_cover << 63)));
  }
  report.layout_checksum = l;
}

}  // namespace ruletris::switchsim
