// CacheFlow manager (Sec. V-C; Katta et al., HotSDN'14).
//
// Maintains a two-level rule cache: the TCAM holds a hot subset of a large
// rule table, and correctness is preserved by installing "cover-set" rules —
// for every direct DAG dependency of a cached rule whose target is not
// itself cached, a punt rule with the target's match and a to-software
// action sits above the cached rule, redirecting ambiguous packets to the
// slow path. Swaps (evict one rule, install another) are driven either by
// the DAG scheduler (RuleTris back-end) or by the priority firmware
// (baseline), which is exactly the comparison of Fig. 11.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"
#include "tcam/dag_scheduler.h"
#include "tcam/priority_firmware.h"
#include "tcam/tcam.h"

namespace ruletris::tcam {

class CacheFlowManager {
 public:
  enum class Mode { kDagFirmware, kPriorityFirmware };

  /// `rules` is the full rule set (matched-first order with priorities set);
  /// `graph` its minimum DAG.
  CacheFlowManager(std::vector<Rule> rules, dag::DependencyGraph graph, Mode mode,
                   size_t tcam_capacity);

  /// Installs `id` (and any cover rules its dependencies require).
  bool install(flowspace::RuleId id);

  /// Evicts `id`. If cached rules still depend on it, it is demoted to a
  /// cover rule instead of vanishing.
  void evict(flowspace::RuleId id);

  /// One cache swap: evict `out_id`, install `in_id`.
  bool swap(flowspace::RuleId out_id, flowspace::RuleId in_id);

  bool is_cached(flowspace::RuleId id) const { return cached_.count(id) != 0; }
  size_t cached_count() const { return cached_.size(); }
  size_t cover_count() const { return cover_ids_.size(); }

  Tcam& tcam() { return *tcam_; }
  const Tcam& tcam() const { return *tcam_; }

  std::vector<flowspace::RuleId> cached_rules() const;

  /// Semantic check: for `packet`, the TCAM either returns the same decision
  /// as the full table or punts to software (never a wrong fast-path hit).
  bool lookup_consistent(const flowspace::Packet& packet) const;

 private:
  const Rule& full_rule(flowspace::RuleId id) const { return rules_.at(id); }

  /// Ensures a cover for `dep` exists (or that `dep` is cached); bumps the
  /// reference count held by `dependent`.
  bool ensure_cover(flowspace::RuleId dep);
  void release_cover(flowspace::RuleId dep);

  bool firmware_insert(const Rule& rule,
                       const std::vector<flowspace::RuleId>& above_ids,
                       const std::vector<flowspace::RuleId>& below_ids);
  void firmware_remove(flowspace::RuleId id);

  std::unordered_map<flowspace::RuleId, Rule> rules_;  // the full table
  dag::DependencyGraph full_graph_;
  Mode mode_;

  std::unique_ptr<Tcam> tcam_;
  std::unique_ptr<DagScheduler> dag_firmware_;
  std::unique_ptr<PriorityFirmware> priority_firmware_;

  std::unordered_set<flowspace::RuleId> cached_;             // real rules in TCAM
  std::unordered_map<flowspace::RuleId, flowspace::RuleId> cover_ids_;  // dep -> cover id
  std::unordered_map<flowspace::RuleId, size_t> cover_refs_;            // dep -> refcount
};

}  // namespace ruletris::tcam
