// CacheFlow manager (Sec. V-C; Katta et al., HotSDN'14).
//
// Maintains a two-level rule cache: the TCAM holds a hot subset of a large
// rule table, and correctness is preserved by installing "cover-set" rules —
// for every direct DAG dependency of a cached rule whose target is not
// itself cached, a punt rule with the target's match and a to-software
// action sits above the cached rule, redirecting ambiguous packets to the
// slow path. Swaps (evict one rule, install another) are driven either by
// the DAG scheduler (RuleTris back-end) or by the priority firmware
// (baseline), which is exactly the comparison of Fig. 11.
//
// The slow path is a SoftTable (tuple-space search), so a miss costs
// O(#tuples) hash probes instead of a linear scan over the full table, and
// admission is flow-driven per FDRC (PAPERS.md): per-rule hit counters from
// real lookups, weighed against the cover-set installation cost of caching
// the rule, pick what the TCAM holds — replacing the static DAG-position
// ranking, which survives as the ablation baseline.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"
#include "tcam/dag_scheduler.h"
#include "tcam/priority_firmware.h"
#include "tcam/soft_table.h"
#include "tcam/tcam.h"

namespace ruletris::tcam {

class CacheFlowManager {
 public:
  enum class Mode { kDagFirmware, kPriorityFirmware };

  /// What picks the cached subset. kStaticDag ranks rules by DAG position
  /// only (cover-set size, i.e. how cheaply they cache) — traffic-blind.
  /// kFlowDriven ranks by measured hit density (hits / install cost), FDRC
  /// style, and keeps adapting through rebalance().
  enum class AdmissionPolicy { kStaticDag, kFlowDriven };

  /// `rules` is the full rule set (matched-first order with priorities set);
  /// `graph` its minimum DAG.
  CacheFlowManager(std::vector<Rule> rules, dag::DependencyGraph graph, Mode mode,
                   size_t tcam_capacity);

  /// Installs `id` (and any cover rules its dependencies require).
  bool install(flowspace::RuleId id);

  /// Evicts `id`. If cached rules still depend on it, it is demoted to a
  /// cover rule instead of vanishing.
  void evict(flowspace::RuleId id);

  /// One cache swap: evict `out_id`, install `in_id`.
  bool swap(flowspace::RuleId out_id, flowspace::RuleId in_id);

  bool is_cached(flowspace::RuleId id) const { return cached_.count(id) != 0; }
  size_t cached_count() const { return cached_.size(); }
  size_t cover_count() const { return cover_ids_.size(); }

  /// For a cover (punt) rule: the full-table rule it stands in for;
  /// kInvalidRuleId otherwise. Cover rule ids come from the process-wide id
  /// counter, so layout fingerprints canonicalize covers through this.
  flowspace::RuleId cover_target(flowspace::RuleId cover_id) const {
    auto it = cover_targets_.find(cover_id);
    return it == cover_targets_.end() ? flowspace::kInvalidRuleId : it->second;
  }

  Tcam& tcam() { return *tcam_; }
  const Tcam& tcam() const { return *tcam_; }

  /// The software slow path over the full table.
  const SoftTable& soft_table() const { return soft_; }

  std::vector<flowspace::RuleId> cached_rules() const;

  /// Full rule set in the matched-first order the manager was built with —
  /// the deterministic iteration order for policies and reports.
  const std::vector<flowspace::RuleId>& rule_order() const { return rule_order_; }

  // --- data-plane lookup -----------------------------------------------

  struct LookupOutcome {
    const Rule* rule = nullptr;  // the table's decision (never a cover)
    bool fast_path = false;      // true: TCAM answered without punting
  };

  /// Classifies `packet` without touching hit counters: TCAM first; a miss
  /// or a cover punt falls through to the tuple-space slow path. Strictly
  /// const — reader shards may call it concurrently as long as no cache
  /// mutation (install/evict/swap/rebalance) races.
  LookupOutcome classify(const flowspace::Packet& packet) const;

  /// classify() that also credits the winning rule's hit counter.
  LookupOutcome lookup(const flowspace::Packet& packet);

  /// Bulk hit credit — the traffic engine counts per shard and merges here.
  void add_hits(flowspace::RuleId id, uint64_t n) { hits_[id] += n; }
  uint64_t hits(flowspace::RuleId id) const;
  /// Exponential aging: halves every counter (integer, deterministic).
  void age_hits();

  // --- admission policies -----------------------------------------------

  /// Marginal TCAM cost of caching `id` right now: 1 entry for the rule
  /// plus one cover entry per direct dependency that is neither cached nor
  /// already covered. For a cached rule: the entries an eviction reclaims.
  size_t install_cost(flowspace::RuleId id) const;

  /// Fills the cache from the current state until the TCAM holds at least
  /// `target_occupied` entries (covers included) or candidates run out.
  /// kStaticDag installs in DAG-position order (cheapest cover-set first);
  /// kFlowDriven in hit-density order. Returns rules installed.
  size_t warm(AdmissionPolicy policy, size_t target_occupied);

  struct SwapPlan {
    flowspace::RuleId out = flowspace::kInvalidRuleId;
    flowspace::RuleId in = flowspace::kInvalidRuleId;
  };

  /// FDRC plan: up to `max_swaps` (victim, candidate) pairs where the
  /// candidate's hit density (hits / install cost) strictly beats the
  /// victim's. Deterministic (integer cross-multiplied densities, id
  /// tie-breaks); does not mutate the cache.
  std::vector<SwapPlan> plan_swaps(size_t max_swaps) const;

  /// Executes plan_swaps for kFlowDriven (kStaticDag is a no-op: its layout
  /// is fixed by construction). Returns swaps performed; a failed install
  /// (TCAM full of covers) restores the victim and moves on.
  size_t rebalance(AdmissionPolicy policy, size_t max_swaps);

  /// Semantic check: for `packet`, the TCAM either returns the same decision
  /// as the full table or punts to software (never a wrong fast-path hit).
  bool lookup_consistent(const flowspace::Packet& packet) const;

 private:
  const Rule& full_rule(flowspace::RuleId id) const { return rules_.at(id); }

  /// Ensures a cover for `dep` exists (or that `dep` is cached); bumps the
  /// reference count held by `dependent`.
  bool ensure_cover(flowspace::RuleId dep);
  void release_cover(flowspace::RuleId dep);

  bool firmware_insert(const Rule& rule,
                       const std::vector<flowspace::RuleId>& above_ids,
                       const std::vector<flowspace::RuleId>& below_ids);
  void firmware_remove(flowspace::RuleId id);

  std::unordered_map<flowspace::RuleId, Rule> rules_;  // the full table
  std::vector<flowspace::RuleId> rule_order_;          // matched-first order
  dag::DependencyGraph full_graph_;
  Mode mode_;

  std::unique_ptr<Tcam> tcam_;
  std::unique_ptr<DagScheduler> dag_firmware_;
  std::unique_ptr<PriorityFirmware> priority_firmware_;
  SoftTable soft_;  // slow path == full-table truth

  std::unordered_set<flowspace::RuleId> cached_;             // real rules in TCAM
  std::unordered_map<flowspace::RuleId, flowspace::RuleId> cover_ids_;  // dep -> cover id
  std::unordered_map<flowspace::RuleId, flowspace::RuleId> cover_targets_;  // cover id -> dep
  std::unordered_map<flowspace::RuleId, size_t> cover_refs_;            // dep -> refcount
  std::unordered_map<flowspace::RuleId, uint64_t> hits_;                // measured traffic
};

}  // namespace ruletris::tcam
