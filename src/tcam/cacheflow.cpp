#include "tcam/cacheflow.h"

#include <stdexcept>

#include "util/logging.h"

namespace ruletris::tcam {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::ActionType;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;

CacheFlowManager::CacheFlowManager(std::vector<Rule> rules, dag::DependencyGraph graph,
                                   Mode mode, size_t tcam_capacity)
    : full_graph_(std::move(graph)), mode_(mode), tcam_(std::make_unique<Tcam>(tcam_capacity)) {
  for (Rule& r : rules) {
    full_graph_.add_vertex(r.id);
    rules_.emplace(r.id, std::move(r));
  }
  if (mode_ == Mode::kDagFirmware) {
    dag_firmware_ = std::make_unique<DagScheduler>(*tcam_);
  } else {
    priority_firmware_ = std::make_unique<PriorityFirmware>(*tcam_);
  }
}

bool CacheFlowManager::firmware_insert(const Rule& rule,
                                       const std::vector<RuleId>& above_ids,
                                       const std::vector<RuleId>& below_ids) {
  if (mode_ == Mode::kDagFirmware) {
    dag_firmware_->graph().add_vertex(rule.id);
    for (RuleId a : above_ids) dag_firmware_->graph().add_edge(rule.id, a);
    for (RuleId b : below_ids) dag_firmware_->graph().add_edge(b, rule.id);
    if (dag_firmware_->insert(rule)) return true;
    dag_firmware_->graph().remove_vertex(rule.id);  // keep state rollback-clean
    return false;
  }
  return priority_firmware_->insert(rule);
}

void CacheFlowManager::firmware_remove(RuleId id) {
  if (mode_ == Mode::kDagFirmware) {
    dag_firmware_->remove(id);
  } else {
    priority_firmware_->remove(id);
  }
}

bool CacheFlowManager::ensure_cover(RuleId dep) {
  auto [it, inserted] = cover_refs_.try_emplace(dep, 0);
  ++it->second;
  if (!inserted) return true;  // cover already installed

  const Rule& target = full_rule(dep);
  Rule cover{flowspace::next_rule_id(), target.match,
             ActionList{Action::to_software()}, target.priority};
  cover_ids_[dep] = cover.id;
  // A cover only punts, so it needs no constraints of its own; the edges
  // from future dependents are added at their insert time.
  if (!firmware_insert(cover, {}, {})) {
    util::log_warn("CacheFlow: TCAM full while installing cover rule");
    cover_ids_.erase(dep);
    cover_refs_.erase(dep);
    return false;
  }
  return true;
}

void CacheFlowManager::release_cover(RuleId dep) {
  auto it = cover_refs_.find(dep);
  if (it == cover_refs_.end()) return;
  if (--it->second > 0) return;
  firmware_remove(cover_ids_.at(dep));
  cover_ids_.erase(dep);
  cover_refs_.erase(it);
}

bool CacheFlowManager::install(RuleId id) {
  if (cached_.count(id)) return true;
  auto rit = rules_.find(id);
  if (rit == rules_.end()) throw std::out_of_range("CacheFlow: unknown rule");

  // Cover-set: every direct dependency must be present (really or as punt).
  // Cover acquisitions are rolled back if anything fails (full TCAM), so a
  // failed install leaves the cache state untouched.
  std::vector<RuleId> above;
  std::vector<RuleId> acquired;
  auto rollback = [this, &acquired] {
    for (RuleId dep : acquired) release_cover(dep);
  };
  for (RuleId dep : full_graph_.successors(id)) {
    if (cached_.count(dep)) {
      above.push_back(dep);
      continue;
    }
    if (!ensure_cover(dep)) {
      rollback();
      return false;
    }
    acquired.push_back(dep);
    above.push_back(cover_ids_.at(dep));
  }
  // Cached rules that depend on `id` must sit below it.
  std::vector<RuleId> below;
  for (RuleId pred : full_graph_.predecessors(id)) {
    if (cached_.count(pred)) below.push_back(pred);
  }

  if (!firmware_insert(rit->second, above, below)) {
    rollback();
    return false;
  }
  cached_.insert(id);

  // If a cover was standing in for `id`, the real rule supersedes it.
  auto cit = cover_ids_.find(id);
  if (cit != cover_ids_.end()) {
    firmware_remove(cit->second);
    cover_ids_.erase(cit);
    cover_refs_.erase(id);
  }
  return true;
}

void CacheFlowManager::evict(RuleId id) {
  if (!cached_.count(id)) return;

  std::vector<RuleId> cached_dependents;
  for (RuleId pred : full_graph_.predecessors(id)) {
    if (cached_.count(pred)) cached_dependents.push_back(pred);
  }

  firmware_remove(id);
  cached_.erase(id);

  if (!cached_dependents.empty()) {
    // Demote to a cover: dependents still need the ambiguity resolved.
    const Rule& target = full_rule(id);
    Rule cover{flowspace::next_rule_id(), target.match,
               ActionList{Action::to_software()}, target.priority};
    cover_ids_[id] = cover.id;
    cover_refs_[id] = cached_dependents.size();
    if (!firmware_insert(cover, {}, cached_dependents)) {
      util::log_warn("CacheFlow: TCAM full while demoting rule to cover");
      cover_ids_.erase(id);
      cover_refs_.erase(id);
    }
  }

  for (RuleId dep : full_graph_.successors(id)) {
    if (!cached_.count(dep)) release_cover(dep);
  }
}

bool CacheFlowManager::swap(RuleId out_id, RuleId in_id) {
  evict(out_id);
  return install(in_id);
}

std::vector<RuleId> CacheFlowManager::cached_rules() const {
  return {cached_.begin(), cached_.end()};
}

bool CacheFlowManager::lookup_consistent(const Packet& packet) const {
  const Rule* hit = tcam_->lookup(packet);
  if (hit == nullptr) return true;  // TCAM miss: default punt to software
  if (hit->actions.contains(ActionType::kToSoftware)) return true;  // explicit punt

  // Fast-path hit: must agree with the full table's decision.
  const Rule* truth = nullptr;
  int32_t best = INT32_MIN;
  for (const auto& [id, r] : rules_) {
    (void)id;
    if (r.priority > best && r.match.matches(packet)) {
      truth = &r;
      best = r.priority;
    }
  }
  return truth != nullptr && truth->id == hit->id;
}

}  // namespace ruletris::tcam
