#include "tcam/cacheflow.h"

#include <algorithm>
#include <stdexcept>

#include "util/logging.h"

namespace ruletris::tcam {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::ActionType;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;

CacheFlowManager::CacheFlowManager(std::vector<Rule> rules, dag::DependencyGraph graph,
                                   Mode mode, size_t tcam_capacity)
    : full_graph_(std::move(graph)), mode_(mode), tcam_(std::make_unique<Tcam>(tcam_capacity)) {
  rule_order_.reserve(rules.size());
  for (Rule& r : rules) {
    full_graph_.add_vertex(r.id);
    rule_order_.push_back(r.id);
    soft_.insert(r);  // ctor order == FlowTable tie order
    rules_.emplace(r.id, std::move(r));
  }
  if (mode_ == Mode::kDagFirmware) {
    dag_firmware_ = std::make_unique<DagScheduler>(*tcam_);
  } else {
    priority_firmware_ = std::make_unique<PriorityFirmware>(*tcam_);
  }
}

bool CacheFlowManager::firmware_insert(const Rule& rule,
                                       const std::vector<RuleId>& above_ids,
                                       const std::vector<RuleId>& below_ids) {
  if (mode_ == Mode::kDagFirmware) {
    dag_firmware_->graph().add_vertex(rule.id);
    for (RuleId a : above_ids) dag_firmware_->graph().add_edge(rule.id, a);
    for (RuleId b : below_ids) dag_firmware_->graph().add_edge(b, rule.id);
    if (dag_firmware_->insert(rule)) return true;
    dag_firmware_->graph().remove_vertex(rule.id);  // keep state rollback-clean
    return false;
  }
  return priority_firmware_->insert(rule);
}

void CacheFlowManager::firmware_remove(RuleId id) {
  if (mode_ == Mode::kDagFirmware) {
    dag_firmware_->remove(id);
  } else {
    priority_firmware_->remove(id);
  }
}

bool CacheFlowManager::ensure_cover(RuleId dep) {
  auto [it, inserted] = cover_refs_.try_emplace(dep, 0);
  ++it->second;
  if (!inserted) return true;  // cover already installed

  const Rule& target = full_rule(dep);
  Rule cover{flowspace::next_rule_id(), target.match,
             ActionList{Action::to_software()}, target.priority};
  cover_ids_[dep] = cover.id;
  // A cover only punts, so it needs no constraints of its own; the edges
  // from future dependents are added at their insert time.
  if (!firmware_insert(cover, {}, {})) {
    util::log_warn("CacheFlow: TCAM full while installing cover rule");
    cover_ids_.erase(dep);
    cover_refs_.erase(dep);
    return false;
  }
  cover_targets_[cover.id] = dep;
  return true;
}

void CacheFlowManager::release_cover(RuleId dep) {
  auto it = cover_refs_.find(dep);
  if (it == cover_refs_.end()) return;
  if (--it->second > 0) return;
  firmware_remove(cover_ids_.at(dep));
  cover_targets_.erase(cover_ids_.at(dep));
  cover_ids_.erase(dep);
  cover_refs_.erase(it);
}

bool CacheFlowManager::install(RuleId id) {
  if (cached_.count(id)) return true;
  auto rit = rules_.find(id);
  if (rit == rules_.end()) throw std::out_of_range("CacheFlow: unknown rule");

  // Cover-set: every direct dependency must be present (really or as punt).
  // Cover acquisitions are rolled back if anything fails (full TCAM), so a
  // failed install leaves the cache state untouched.
  std::vector<RuleId> above;
  std::vector<RuleId> acquired;
  auto rollback = [this, &acquired] {
    for (RuleId dep : acquired) release_cover(dep);
  };
  for (RuleId dep : full_graph_.successors(id)) {
    if (cached_.count(dep)) {
      above.push_back(dep);
      continue;
    }
    if (!ensure_cover(dep)) {
      rollback();
      return false;
    }
    acquired.push_back(dep);
    above.push_back(cover_ids_.at(dep));
  }
  // Cached rules that depend on `id` must sit below it.
  std::vector<RuleId> below;
  for (RuleId pred : full_graph_.predecessors(id)) {
    if (cached_.count(pred)) below.push_back(pred);
  }

  if (!firmware_insert(rit->second, above, below)) {
    rollback();
    return false;
  }
  cached_.insert(id);

  // If a cover was standing in for `id`, the real rule supersedes it.
  auto cit = cover_ids_.find(id);
  if (cit != cover_ids_.end()) {
    firmware_remove(cit->second);
    cover_targets_.erase(cit->second);
    cover_ids_.erase(cit);
    cover_refs_.erase(id);
  }
  return true;
}

void CacheFlowManager::evict(RuleId id) {
  if (!cached_.count(id)) return;

  std::vector<RuleId> cached_dependents;
  for (RuleId pred : full_graph_.predecessors(id)) {
    if (cached_.count(pred)) cached_dependents.push_back(pred);
  }

  firmware_remove(id);
  cached_.erase(id);

  if (!cached_dependents.empty()) {
    // Demote to a cover: dependents still need the ambiguity resolved.
    const Rule& target = full_rule(id);
    Rule cover{flowspace::next_rule_id(), target.match,
               ActionList{Action::to_software()}, target.priority};
    cover_ids_[id] = cover.id;
    cover_refs_[id] = cached_dependents.size();
    if (!firmware_insert(cover, {}, cached_dependents)) {
      util::log_warn("CacheFlow: TCAM full while demoting rule to cover");
      cover_ids_.erase(id);
      cover_refs_.erase(id);
    } else {
      cover_targets_[cover.id] = id;
    }
  }

  for (RuleId dep : full_graph_.successors(id)) {
    if (!cached_.count(dep)) release_cover(dep);
  }
}

bool CacheFlowManager::swap(RuleId out_id, RuleId in_id) {
  evict(out_id);
  return install(in_id);
}

std::vector<RuleId> CacheFlowManager::cached_rules() const {
  return {cached_.begin(), cached_.end()};
}

bool CacheFlowManager::lookup_consistent(const Packet& packet) const {
  const Rule* hit = tcam_->lookup(packet);
  if (hit == nullptr) return true;  // TCAM miss: default punt to software
  if (hit->actions.contains(ActionType::kToSoftware)) return true;  // explicit punt

  // Fast-path hit: must agree with the full table's decision. The tuple-
  // space slow path *is* the full table (FlowTable-equivalent semantics),
  // so it serves as the oracle at O(#tuples) instead of O(rules).
  const Rule* truth = soft_.lookup(packet);
  return truth != nullptr && truth->id == hit->id;
}

CacheFlowManager::LookupOutcome CacheFlowManager::classify(const Packet& packet) const {
  const Rule* hit = tcam_->lookup(packet);
  if (hit != nullptr && !hit->actions.contains(ActionType::kToSoftware)) {
    return LookupOutcome{hit, true};
  }
  // Miss or cover punt: the software path answers from the full table.
  return LookupOutcome{soft_.lookup(packet), false};
}

CacheFlowManager::LookupOutcome CacheFlowManager::lookup(const Packet& packet) {
  const LookupOutcome out = classify(packet);
  if (out.rule != nullptr) ++hits_[out.rule->id];
  return out;
}

uint64_t CacheFlowManager::hits(RuleId id) const {
  auto it = hits_.find(id);
  return it == hits_.end() ? 0 : it->second;
}

void CacheFlowManager::age_hits() {
  for (auto& [id, h] : hits_) {
    (void)id;
    h >>= 1;
  }
}

size_t CacheFlowManager::install_cost(RuleId id) const {
  if (cached_.count(id)) {
    // Entries an eviction reclaims: the rule itself plus every cover held
    // solely on its behalf (refcount 1 covers of its dependencies). A
    // demotion-to-cover on evict would win one back, but dependents are the
    // exception in hot sets, so the symmetric estimate keeps densities
    // comparable in both directions.
    size_t reclaim = 1;
    for (RuleId dep : full_graph_.successors(id)) {
      if (cached_.count(dep)) continue;
      auto it = cover_refs_.find(dep);
      if (it != cover_refs_.end() && it->second == 1) ++reclaim;
    }
    return reclaim;
  }
  size_t cost = 1;
  for (RuleId dep : full_graph_.successors(id)) {
    if (!cached_.count(dep) && !cover_refs_.count(dep)) ++cost;
  }
  return cost;
}

namespace {

/// density(a) > density(b) with density(x) = hits(x) / cost(x), exactly and
/// deterministically: cross-multiplied in 128 bits, no floating point.
bool density_greater(uint64_t hits_a, size_t cost_a, uint64_t hits_b,
                     size_t cost_b) {
  return static_cast<unsigned __int128>(hits_a) * cost_b >
         static_cast<unsigned __int128>(hits_b) * cost_a;
}

}  // namespace

size_t CacheFlowManager::warm(AdmissionPolicy policy, size_t target_occupied) {
  // Candidate order over uncached rules, in rule_order_ for determinism.
  std::vector<RuleId> candidates;
  candidates.reserve(rule_order_.size());
  for (RuleId id : rule_order_) {
    if (!cached_.count(id)) candidates.push_back(id);
  }
  if (policy == AdmissionPolicy::kStaticDag) {
    // DAG position only: rules whose cover set is small cache cheaply; ties
    // keep the matched-first order. Traffic never enters the ranking.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [this](RuleId a, RuleId b) {
                       return full_graph_.successors(a).size() <
                              full_graph_.successors(b).size();
                     });
  } else {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [this](RuleId a, RuleId b) {
                       return density_greater(hits(a), install_cost(a), hits(b),
                                              install_cost(b));
                     });
  }
  size_t installed = 0;
  for (RuleId id : candidates) {
    if (tcam_->occupied() >= target_occupied) break;
    if (tcam_->occupied() + install_cost(id) > tcam_->capacity()) continue;
    if (install(id)) ++installed;
  }
  return installed;
}

std::vector<CacheFlowManager::SwapPlan> CacheFlowManager::plan_swaps(
    size_t max_swaps) const {
  std::vector<RuleId> in_rules, out_rules;
  for (RuleId id : rule_order_) {
    if (cached_.count(id)) {
      out_rules.push_back(id);
    } else if (hits(id) > 0) {
      in_rules.push_back(id);
    }
  }
  std::stable_sort(in_rules.begin(), in_rules.end(), [this](RuleId a, RuleId b) {
    return density_greater(hits(a), install_cost(a), hits(b), install_cost(b));
  });
  std::stable_sort(out_rules.begin(), out_rules.end(), [this](RuleId a, RuleId b) {
    return density_greater(hits(b), install_cost(b), hits(a), install_cost(a));
  });

  std::vector<SwapPlan> plan;
  const size_t pairs = std::min({max_swaps, in_rules.size(), out_rules.size()});
  for (size_t i = 0; i < pairs; ++i) {
    const RuleId in = in_rules[i];
    const RuleId out = out_rules[i];
    // Swap only while the incoming density strictly beats the victim's —
    // both lists are sorted, so the first non-improving pair ends the plan.
    if (!density_greater(hits(in), install_cost(in), hits(out),
                         install_cost(out))) {
      break;
    }
    plan.push_back(SwapPlan{out, in});
  }
  return plan;
}

size_t CacheFlowManager::rebalance(AdmissionPolicy policy, size_t max_swaps) {
  if (policy == AdmissionPolicy::kStaticDag) return 0;
  size_t done = 0;
  size_t consecutive_failures = 0;
  for (const SwapPlan& s : plan_swaps(max_swaps)) {
    if (swap(s.out, s.in)) {
      ++done;
      consecutive_failures = 0;
      continue;
    }
    // Full TCAM (cover blow-up): restore the victim; a couple of failures
    // in a row means the remaining (denser-cover) candidates won't fit.
    install(s.out);
    if (++consecutive_failures >= 2) break;
  }
  return done;
}

}  // namespace ruletris::tcam
