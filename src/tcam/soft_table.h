// Software slow-path classifier: tuple-space search with priority chaining.
//
// CacheFlow punts TCAM misses to software, where the full rule table lives.
// A linear scan is O(rules) per packet — hopeless at the table sizes the
// traffic engine drives (10^5..10^6 rules). This is the TupleChain-style
// alternative (PAPERS.md): rules are partitioned by their mask *tuple* (the
// per-field mask vector), and within a tuple every rule is an exact match on
// the masked header bits, so one hash probe per tuple finds all candidates.
// Real OpenFlow-ish tables have tens of distinct tuples for 10^5+ rules, and
// the probe order is chained by per-tuple max priority with early exit —
// once the best hit so far outranks every remaining tuple, the lookup stops.
// Lookup is strictly const (no lazy caches), so concurrent reader shards in
// the traffic engine need no synchronization.
//
// Semantics match FlowTable exactly: highest priority wins, ties broken by
// insertion order (earlier insert wins).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flowspace/rule.h"

namespace ruletris::tcam {

class SoftTable {
 public:
  SoftTable() = default;

  /// Builds from `rules`; vector order defines the priority-tie order,
  /// matching FlowTable's stable sort.
  explicit SoftTable(const std::vector<flowspace::Rule>& rules);

  size_t size() const { return by_id_.size(); }
  bool empty() const { return by_id_.empty(); }
  /// Distinct mask tuples — the per-lookup probe bound.
  size_t tuple_count() const { return tuples_.size(); }
  bool contains(flowspace::RuleId id) const { return by_id_.count(id) != 0; }

  void insert(const flowspace::Rule& rule);
  /// Removes by id; false when absent.
  bool erase(flowspace::RuleId id);

  /// Highest-priority match (FlowTable-equivalent), nullptr on miss.
  const flowspace::Rule* lookup(const flowspace::Packet& p) const;

  struct Stats {
    uint64_t lookups = 0;
    uint64_t tuples_probed = 0;  // hash probes actually issued
    double probes_per_lookup() const {
      return lookups == 0 ? 0.0 : static_cast<double>(tuples_probed) /
                                      static_cast<double>(lookups);
    }
  };
  /// Cumulative probe accounting from `lookup_counted`.
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// lookup() that also updates stats(); single-threaded callers only.
  const flowspace::Rule* lookup_counted(const flowspace::Packet& p);

 private:
  using MaskKey = std::array<uint32_t, flowspace::kNumFields>;

  struct ArrayHash {
    size_t operator()(const MaskKey& k) const;
  };

  struct Entry {
    flowspace::Rule rule;
    uint64_t seq = 0;  // insertion order; lower wins priority ties
  };

  struct Tuple {
    MaskKey masks{};
    // Masked header values -> rules with exactly those values. Nearly always
    // a single entry; duplicates (identical matches at different priorities)
    // share a bucket.
    std::unordered_map<MaskKey, std::vector<Entry>, ArrayHash> buckets;
    int32_t max_priority = 0;
    size_t entries = 0;
  };

  void refresh_order();
  void recompute_max(Tuple& t);

  std::vector<Tuple> tuples_;
  std::unordered_map<MaskKey, size_t, ArrayHash> tuple_index_;  // masks -> idx
  // Tuple indexes sorted by descending max_priority: the probe chain.
  // Maintained eagerly on every mutation so lookup stays const.
  std::vector<size_t> order_;
  struct Locator {
    size_t tuple = 0;
    MaskKey key{};
  };
  std::unordered_map<flowspace::RuleId, Locator> by_id_;
  uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace ruletris::tcam
