// Fenwick-tree occupancy index over TCAM addresses.
//
// Both firmwares repeatedly ask "nearest free slot above/below X" and
// "k-th occupied slot"; a binary-indexed tree answers these in O(log n)
// without scanning the slot array, which matters when emulating multi-
// thousand-entry TCAMs under thousands of updates.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

namespace ruletris::tcam {

class OccupancyIndex {
 public:
  explicit OccupancyIndex(size_t capacity)
      : capacity_(capacity), tree_(capacity + 1, 0), occupied_(capacity, false) {
    if (capacity == 0) throw std::invalid_argument("OccupancyIndex: zero capacity");
    compute_highest_bit();
  }

  size_t capacity() const { return capacity_; }
  size_t occupied_count() const { return prefix(capacity_); }

  // DagScheduler's chain search probes this in its inner loop; callers stay
  // inside [0, capacity) by construction, so pay for the bounds check only
  // in debug builds.
  bool occupied(size_t addr) const {
    assert(addr < capacity_ && "OccupancyIndex: address out of range");
    return occupied_[addr];
  }

  void set_occupied(size_t addr, bool value) {
    if (addr >= capacity_) throw std::out_of_range("OccupancyIndex: bad address");
    if (occupied_[addr] == value) return;
    occupied_[addr] = value;
    add(addr, value ? +1 : -1);
  }

  /// Number of occupied slots in [0, addr) — i.e. strictly below `addr`.
  size_t occupied_below(size_t addr) const { return prefix(addr); }

  /// Number of occupied slots in [lo, hi] inclusive.
  size_t occupied_in(size_t lo, size_t hi) const {
    if (lo > hi) return 0;
    return prefix(hi + 1) - prefix(lo);
  }

  /// Address of the k-th occupied slot (0-based, ascending); nullopt if
  /// fewer than k+1 slots are occupied.
  std::optional<size_t> kth_occupied(size_t k) const {
    if (k >= occupied_count()) return std::nullopt;
    // Standard Fenwick descent.
    size_t pos = 0;
    size_t remaining = k + 1;
    size_t mask = highest_bit_;
    while (mask != 0) {
      const size_t next = pos + mask;
      if (next <= capacity_ && tree_[next] < remaining) {
        pos = next;
        remaining -= tree_[next];
      }
      mask >>= 1;
    }
    return pos;  // pos is the 0-based address (tree is 1-indexed internally)
  }

  /// Smallest free address >= `from`; nullopt when everything above is full.
  std::optional<size_t> nearest_free_at_or_above(size_t from) const {
    if (from >= capacity_) return std::nullopt;
    // Free slots below `from`: from - occupied_below(from). We want the
    // first address a >= from with (a+1 - prefix(a+1)) > free_below_from.
    const size_t free_before = from - prefix(from);
    const size_t total_free = capacity_ - occupied_count();
    if (free_before >= total_free) return std::nullopt;
    return kth_free(free_before);
  }

  /// Largest free address <= `from`; nullopt when everything below is full.
  std::optional<size_t> nearest_free_at_or_below(size_t from) const {
    if (from >= capacity_) from = capacity_ - 1;
    const size_t free_through = (from + 1) - prefix(from + 1);
    if (free_through == 0) return std::nullopt;
    return kth_free(free_through - 1);
  }

 private:
  /// Address of the k-th free slot (0-based ascending). Fenwick descent:
  /// a node at pos+mask covers the address range (pos, pos+mask], which
  /// holds mask - tree_[pos+mask] free slots, so the search walks down the
  /// implicit tree in O(log n) instead of binary-searching over O(log n)
  /// prefix sums.
  std::optional<size_t> kth_free(size_t k) const {
    const size_t total_free = capacity_ - occupied_count();
    if (k >= total_free) return std::nullopt;
    size_t pos = 0;
    size_t remaining = k + 1;
    size_t mask = highest_bit_;
    while (mask != 0) {
      const size_t next = pos + mask;
      if (next <= capacity_) {
        const size_t free_in_subtree = mask - tree_[next];
        if (free_in_subtree < remaining) {
          pos = next;
          remaining -= free_in_subtree;
        }
      }
      mask >>= 1;
    }
    return pos;  // pos is the 0-based address (tree is 1-indexed internally)
  }

  size_t prefix(size_t n) const {  // occupied in [0, n)
    size_t sum = 0;
    for (size_t i = n; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  void add(size_t addr, int delta) {
    for (size_t i = addr + 1; i <= capacity_; i += i & (~i + 1)) {
      tree_[i] = static_cast<size_t>(static_cast<long long>(tree_[i]) + delta);
    }
  }

  void compute_highest_bit() {
    highest_bit_ = 1;
    while ((highest_bit_ << 1) <= capacity_) highest_bit_ <<= 1;
  }

  size_t capacity_;
  std::vector<size_t> tree_;
  std::vector<bool> occupied_;
  size_t highest_bit_ = 0;
};

}  // namespace ruletris::tcam
