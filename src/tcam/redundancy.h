// Redundancy eliminator (Sec. V-B, Claim 2).
//
// One topological scan over the DAG, in matched-first order, removes the two
// redundancy classes modular composition produces:
//  * obscured rules — entirely covered by the union of rules matched before
//    them (no packet can ever reach them);
//  * floating rules — a rule whose DAG-adjacent lower-priority neighbour has
//    the same actions and a more general match (removing the higher one
//    leaves behaviour unchanged).
#pragma once

#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"

namespace ruletris::tcam {

struct EliminationResult {
  std::vector<flowspace::Rule> kept;  // matched-first order
  std::vector<flowspace::RuleId> obscured;
  std::vector<flowspace::RuleId> floating;
  /// DAG over the kept rules: edges of the input graph restricted to
  /// survivors, patched through removed vertices where the endpoints still
  /// overlap.
  dag::DependencyGraph graph;
};

/// `rules` may be in any order; the scan uses the DAG's topological order
/// (ties broken by the given order).
EliminationResult eliminate_redundancy(const std::vector<flowspace::Rule>& rules,
                                       const dag::DependencyGraph& graph);

}  // namespace ruletris::tcam
