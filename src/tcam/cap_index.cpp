#include "tcam/cap_index.h"

#include <algorithm>
#include <stdexcept>

namespace ruletris::tcam {

using flowspace::RuleId;

CapIndex::CapIndex(size_t capacity)
    : capacity_(capacity),
      lo_succ_(capacity, static_cast<long long>(capacity)),
      hi_pred_(capacity, -1) {}

void CapIndex::rebuild(const Tcam& tcam, const dag::DependencyGraph& graph) {
  caps_.clear();
  lo_succ_.assign(capacity_, static_cast<long long>(capacity_));
  hi_pred_.assign(capacity_, -1);
  // One pass over the out-adjacency covers both cell arrays: edge u -> v
  // caps u from above (lo_succ) and v from below (hi_pred). No per-vertex
  // sets are built — they hydrate on first touch.
  for (const RuleId u : graph.vertices()) {
    const auto au = tcam.address_if(u);
    for (const RuleId v : graph.successors(u)) {
      const auto av = tcam.address_if(v);
      if (au && av) {
        lo_succ_[*au] = std::min(lo_succ_[*au], static_cast<long long>(*av));
        hi_pred_[*av] = std::max(hi_pred_[*av], static_cast<long long>(*au));
      }
    }
  }
}

void CapIndex::load_cells(std::vector<long long> lo_succ,
                          std::vector<long long> hi_pred) {
  if (lo_succ.size() != capacity_ || hi_pred.size() != capacity_) {
    throw std::invalid_argument("CapIndex: cell arrays must match capacity");
  }
  caps_.clear();
  lo_succ_ = std::move(lo_succ);
  hi_pred_ = std::move(hi_pred);
}

CapIndex::VertexCaps& CapIndex::hydrate(RuleId id,
                                        const dag::DependencyGraph& graph,
                                        const Tcam& tcam) {
  const auto [it, fresh] = caps_.try_emplace(id);
  VertexCaps& c = it->second;
  if (fresh) {
    for (const RuleId succ : graph.successors(id)) {
      if (const auto a = tcam.address_if(succ)) c.succ_addrs.insert(*a);
    }
    for (const RuleId pred : graph.predecessors(id)) {
      if (const auto a = tcam.address_if(pred)) c.pred_addrs.insert(*a);
    }
  }
  return c;
}

std::pair<long long, long long> CapIndex::bounds_of(
    RuleId id, const dag::DependencyGraph& graph, const Tcam& tcam) {
  const VertexCaps& c = hydrate(id, graph, tcam);
  const long long lo =
      c.pred_addrs.empty() ? -1 : static_cast<long long>(*c.pred_addrs.rbegin());
  const long long hi = c.succ_addrs.empty()
                           ? static_cast<long long>(capacity_)
                           : static_cast<long long>(*c.succ_addrs.begin());
  return {lo, hi};
}

void CapIndex::refresh_cells_at(size_t addr, const VertexCaps& caps) {
  lo_succ_[addr] = caps.succ_addrs.empty()
                       ? static_cast<long long>(capacity_)
                       : static_cast<long long>(*caps.succ_addrs.begin());
  hi_pred_[addr] = caps.pred_addrs.empty()
                       ? -1
                       : static_cast<long long>(*caps.pred_addrs.rbegin());
}

void CapIndex::refresh_cells(RuleId id, const VertexCaps& caps, const Tcam& tcam) {
  if (const auto a = tcam.address_if(id)) refresh_cells_at(*a, caps);
}

void CapIndex::on_write(RuleId id, size_t addr,
                        const dag::DependencyGraph& graph, const Tcam& tcam) {
  // `id` became an installed predecessor of its successors and an installed
  // successor of its predecessors. A write only *tightens* neighbour caps,
  // so unhydrated neighbours take a direct min/max on their cells; hydrated
  // ones keep their sets exact. The new entry's own cells fall out of the
  // same neighbour scan.
  long long own_lo = static_cast<long long>(capacity_);
  long long own_hi = -1;
  for (const RuleId succ : graph.successors(id)) {
    // Hydrated sets track installed-neighbour addresses even for vertices
    // that are currently evicted, so the set update must not hinge on the
    // neighbour being installed.
    if (const auto it = caps_.find(succ); it != caps_.end()) {
      it->second.pred_addrs.insert(addr);
    }
    if (const auto as = tcam.address_if(succ)) {
      own_lo = std::min(own_lo, static_cast<long long>(*as));
      hi_pred_[*as] = std::max(hi_pred_[*as], static_cast<long long>(addr));
    }
  }
  for (const RuleId pred : graph.predecessors(id)) {
    if (const auto it = caps_.find(pred); it != caps_.end()) {
      it->second.succ_addrs.insert(addr);
    }
    if (const auto ap = tcam.address_if(pred)) {
      own_hi = std::max(own_hi, static_cast<long long>(*ap));
      lo_succ_[*ap] = std::min(lo_succ_[*ap], static_cast<long long>(addr));
    }
  }
  lo_succ_[addr] = own_lo;
  hi_pred_[addr] = own_hi;
}

void CapIndex::on_move(size_t from, size_t to, const dag::DependencyGraph& graph,
                       const Tcam& tcam) {
  const RuleId id = *tcam.at(to);
  long long own_lo = static_cast<long long>(capacity_);
  long long own_hi = -1;
  for (const RuleId succ : graph.successors(id)) {
    const auto as = tcam.address_if(succ);
    if (as) own_lo = std::min(own_lo, static_cast<long long>(*as));
    if (const auto it = caps_.find(succ); it != caps_.end()) {
      it->second.pred_addrs.erase(from);
      it->second.pred_addrs.insert(to);
      if (as) refresh_cells_at(*as, it->second);
    } else if (as) {
      if (hi_pred_[*as] == static_cast<long long>(from)) {
        // The cap may drop; hydrating post-move already reflects `to`.
        refresh_cells_at(*as, hydrate(succ, graph, tcam));
      } else {
        hi_pred_[*as] = std::max(hi_pred_[*as], static_cast<long long>(to));
      }
    }
  }
  for (const RuleId pred : graph.predecessors(id)) {
    const auto ap = tcam.address_if(pred);
    if (ap) own_hi = std::max(own_hi, static_cast<long long>(*ap));
    if (const auto it = caps_.find(pred); it != caps_.end()) {
      it->second.succ_addrs.erase(from);
      it->second.succ_addrs.insert(to);
      if (ap) refresh_cells_at(*ap, it->second);
    } else if (ap) {
      if (lo_succ_[*ap] == static_cast<long long>(from)) {
        refresh_cells_at(*ap, hydrate(pred, graph, tcam));
      } else {
        lo_succ_[*ap] = std::min(lo_succ_[*ap], static_cast<long long>(to));
      }
    }
  }
  lo_succ_[from] = static_cast<long long>(capacity_);
  hi_pred_[from] = -1;
  lo_succ_[to] = own_lo;
  hi_pred_[to] = own_hi;
}

void CapIndex::on_erase(RuleId id, size_t addr,
                        const dag::DependencyGraph& graph, const Tcam& tcam) {
  // An erase can only *loosen* neighbour caps, and only when the erased
  // address was the binding one — that is the case that needs the ordered
  // set (the next-best address), so it is where unhydrated vertices get
  // hydrated. Post-erase hydration no longer sees `addr`, making the
  // follow-up erase a no-op.
  for (const RuleId succ : graph.successors(id)) {
    const auto as = tcam.address_if(succ);
    if (const auto it = caps_.find(succ); it != caps_.end()) {
      it->second.pred_addrs.erase(addr);
      if (as) refresh_cells_at(*as, it->second);
    } else if (as && hi_pred_[*as] == static_cast<long long>(addr)) {
      VertexCaps& c = hydrate(succ, graph, tcam);
      c.pred_addrs.erase(addr);
      refresh_cells_at(*as, c);
    }
  }
  for (const RuleId pred : graph.predecessors(id)) {
    const auto ap = tcam.address_if(pred);
    if (const auto it = caps_.find(pred); it != caps_.end()) {
      it->second.succ_addrs.erase(addr);
      if (ap) refresh_cells_at(*ap, it->second);
    } else if (ap && lo_succ_[*ap] == static_cast<long long>(addr)) {
      VertexCaps& c = hydrate(pred, graph, tcam);
      c.succ_addrs.erase(addr);
      refresh_cells_at(*ap, c);
    }
  }
  lo_succ_[addr] = static_cast<long long>(capacity_);
  hi_pred_[addr] = -1;
  // caps_[id] survives if hydrated: the addresses of still-installed
  // neighbours stay valid, so a later reinsert gets O(1) bounds.
}

void CapIndex::on_add_edge(RuleId u, RuleId v, const dag::DependencyGraph&,
                           const Tcam& tcam) {
  // A new edge only tightens caps: direct cell min/max; sets only if
  // already hydrated (insert is idempotent whether the graph mutation has
  // happened yet or not).
  const auto au = tcam.address_if(u);
  const auto av = tcam.address_if(v);
  if (av) {
    if (const auto it = caps_.find(u); it != caps_.end()) {
      it->second.succ_addrs.insert(*av);
    }
    if (au) lo_succ_[*au] = std::min(lo_succ_[*au], static_cast<long long>(*av));
  }
  if (au) {
    if (const auto it = caps_.find(v); it != caps_.end()) {
      it->second.pred_addrs.insert(*au);
    }
    if (av) hi_pred_[*av] = std::max(hi_pred_[*av], static_cast<long long>(*au));
  }
}

void CapIndex::on_remove_edge(RuleId u, RuleId v,
                              const dag::DependencyGraph& graph,
                              const Tcam& tcam) {
  const auto au = tcam.address_if(u);
  const auto av = tcam.address_if(v);
  if (av) {
    if (const auto it = caps_.find(u); it != caps_.end()) {
      it->second.succ_addrs.erase(*av);
      refresh_cells(u, it->second, tcam);
    } else if (au && lo_succ_[*au] == static_cast<long long>(*av)) {
      // The binding cap went away; hydrate and drop the stale address (a
      // no-op when the graph edge was already removed before this call).
      VertexCaps& c = hydrate(u, graph, tcam);
      c.succ_addrs.erase(*av);
      refresh_cells_at(*au, c);
    }
  }
  if (au) {
    if (const auto it = caps_.find(v); it != caps_.end()) {
      it->second.pred_addrs.erase(*au);
      refresh_cells(v, it->second, tcam);
    } else if (av && hi_pred_[*av] == static_cast<long long>(*au)) {
      VertexCaps& c = hydrate(v, graph, tcam);
      c.pred_addrs.erase(*au);
      refresh_cells_at(*av, c);
    }
  }
}

}  // namespace ruletris::tcam
