#include "tcam/cap_index.h"

namespace ruletris::tcam {

using flowspace::RuleId;

CapIndex::CapIndex(size_t capacity)
    : capacity_(capacity),
      lo_succ_(capacity, static_cast<long long>(capacity)),
      hi_pred_(capacity, -1) {}

void CapIndex::rebuild(const Tcam& tcam, const dag::DependencyGraph& graph) {
  caps_.clear();
  lo_succ_.assign(capacity_, static_cast<long long>(capacity_));
  hi_pred_.assign(capacity_, -1);
  for (const auto& [u, v] : graph.edges()) {
    if (tcam.contains(v)) caps_[u].succ_addrs.insert(tcam.address_of(v));
    if (tcam.contains(u)) caps_[v].pred_addrs.insert(tcam.address_of(u));
  }
  for (const auto& [id, caps] : caps_) {
    if (tcam.contains(id)) refresh_cells_at(tcam.address_of(id), caps);
  }
}

std::pair<long long, long long> CapIndex::bounds_of(RuleId id) const {
  auto it = caps_.find(id);
  if (it == caps_.end()) return {-1, static_cast<long long>(capacity_)};
  const VertexCaps& c = it->second;
  const long long lo =
      c.pred_addrs.empty() ? -1 : static_cast<long long>(*c.pred_addrs.rbegin());
  const long long hi = c.succ_addrs.empty()
                           ? static_cast<long long>(capacity_)
                           : static_cast<long long>(*c.succ_addrs.begin());
  return {lo, hi};
}

void CapIndex::refresh_cells_at(size_t addr, const VertexCaps& caps) {
  lo_succ_[addr] = caps.succ_addrs.empty()
                       ? static_cast<long long>(capacity_)
                       : static_cast<long long>(*caps.succ_addrs.begin());
  hi_pred_[addr] = caps.pred_addrs.empty()
                       ? -1
                       : static_cast<long long>(*caps.pred_addrs.rbegin());
}

void CapIndex::refresh_cells(RuleId id, const Tcam& tcam) {
  if (!tcam.contains(id)) return;
  refresh_cells_at(tcam.address_of(id), caps_[id]);
}

void CapIndex::on_write(RuleId id, size_t addr,
                        const dag::DependencyGraph& graph, const Tcam& tcam) {
  // `id` became an installed predecessor of its successors and an installed
  // successor of its predecessors.
  for (RuleId succ : graph.successors(id)) {
    caps_[succ].pred_addrs.insert(addr);
    refresh_cells(succ, tcam);
  }
  for (RuleId pred : graph.predecessors(id)) {
    caps_[pred].succ_addrs.insert(addr);
    refresh_cells(pred, tcam);
  }
  refresh_cells_at(addr, caps_[id]);
}

void CapIndex::on_move(size_t from, size_t to, const dag::DependencyGraph& graph,
                       const Tcam& tcam) {
  const RuleId id = *tcam.at(to);
  for (RuleId succ : graph.successors(id)) {
    VertexCaps& c = caps_[succ];
    c.pred_addrs.erase(from);
    c.pred_addrs.insert(to);
    refresh_cells(succ, tcam);
  }
  for (RuleId pred : graph.predecessors(id)) {
    VertexCaps& c = caps_[pred];
    c.succ_addrs.erase(from);
    c.succ_addrs.insert(to);
    refresh_cells(pred, tcam);
  }
  lo_succ_[from] = static_cast<long long>(capacity_);
  hi_pred_[from] = -1;
  refresh_cells_at(to, caps_[id]);
}

void CapIndex::on_erase(RuleId id, size_t addr,
                        const dag::DependencyGraph& graph, const Tcam& tcam) {
  for (RuleId succ : graph.successors(id)) {
    caps_[succ].pred_addrs.erase(addr);
    refresh_cells(succ, tcam);
  }
  for (RuleId pred : graph.predecessors(id)) {
    caps_[pred].succ_addrs.erase(addr);
    refresh_cells(pred, tcam);
  }
  lo_succ_[addr] = static_cast<long long>(capacity_);
  hi_pred_[addr] = -1;
  // caps_[id] survives: the addresses of still-installed neighbours stay
  // valid, so a later reinsert gets O(1) bounds.
}

void CapIndex::on_add_edge(RuleId u, RuleId v, const Tcam& tcam) {
  if (tcam.contains(v)) {
    caps_[u].succ_addrs.insert(tcam.address_of(v));
    refresh_cells(u, tcam);
  }
  if (tcam.contains(u)) {
    caps_[v].pred_addrs.insert(tcam.address_of(u));
    refresh_cells(v, tcam);
  }
}

void CapIndex::on_remove_edge(RuleId u, RuleId v, const Tcam& tcam) {
  if (tcam.contains(v)) {
    auto it = caps_.find(u);
    if (it != caps_.end()) {
      it->second.succ_addrs.erase(tcam.address_of(v));
      refresh_cells(u, tcam);
    }
  }
  if (tcam.contains(u)) {
    auto it = caps_.find(v);
    if (it != caps_.end()) {
      it->second.pred_addrs.erase(tcam.address_of(u));
      refresh_cells(v, tcam);
    }
  }
}

}  // namespace ruletris::tcam
