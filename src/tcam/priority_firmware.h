// Priority-based switch firmware — the behaviour RuleTris replaces.
//
// Commodity firmware only knows integer priorities, so it must keep the
// TCAM totally ordered by priority (higher priority at a higher address).
// On insert it binary-searches the allowed address band; if no free slot
// lies inside the band it shifts the contiguous block of entries between
// the band and the nearest free slot by one position each — the "massive
// redundant TCAM moves" of Sec. II-a / Sec. V-A. Deletes just invalidate.
// A modify that changes priority is a delete + insert (naive firmware).
#pragma once

#include "compiler/prioritized.h"
#include "tcam/occupancy.h"
#include "tcam/tcam.h"

namespace ruletris::tcam {

class PriorityFirmware {
 public:
  explicit PriorityFirmware(Tcam& tcam);

  /// Applies a compiler's prioritized update stream; false if the TCAM is
  /// full on some insert.
  bool apply(const compiler::PrioritizedUpdate& update);

  bool insert(const Rule& rule);
  void remove(flowspace::RuleId id);
  bool modify(const Rule& rule);

  /// True iff occupied entries are totally ordered by priority (ties free).
  bool layout_sorted() const;

 private:
  /// Exclusive address bounds implied by priorities: every installed rule
  /// with a strictly higher priority sits above `hi`, strictly lower below
  /// `lo`. O(log^2 n) via the occupancy index (layout is priority-sorted).
  std::pair<long long, long long> priority_bounds(int32_t priority) const;

  int32_t priority_at(size_t addr) const;

  /// Shifts the block [from, free_slot) up / (free_slot, from] down by one,
  /// opening `from` for the new entry.
  void shift_up(size_t from, size_t free_slot);
  void shift_down(size_t from, size_t free_slot);

  Tcam& tcam_;
  OccupancyIndex occupancy_;
};

}  // namespace ruletris::tcam
