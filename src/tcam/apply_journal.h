// Write-ahead move journal for crash-consistent TCAM updates.
//
// Algorithm 1's move chains are only hitless while they run to completion:
// a firmware crash halfway through a chain leaves entries parked at
// addresses that violate the DAG order the chain was about to restore. The
// journal makes every scheduler transaction recoverable: the log always
// lists exactly the primitives (slot writes, moves, erases, DAG mutations)
// that completed. The scheduler consults the crash hook before each
// primitive and journals it immediately after it executes — crashes are
// injected only at hook consultations, so nothing can tear between a
// primitive and its journal entry, and the post-execution log is
// observationally identical to write-ahead intent (the record/mark_applied
// split stays available for callers that log intent first). On recovery a
// torn transaction is undone in reverse — every journaled op has an exact
// inverse (write/erase, move(from,to)/move(to,from), each graph delta
// mirrored) — so the TCAM lands in the state equivalent to "update never
// started". A transaction whose every op executed is sealed before the
// commit point; a crash between seal and commit rolls *forward* (the
// device already holds the fully-applied state, only the journal is
// discarded).
//
// The journal is an in-memory stand-in for the persistent log a real
// firmware would keep in NVRAM; ops_ keeps its capacity across
// transactions, so steady-state journaling allocates nothing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "flowspace/rule.h"

namespace ruletris::tcam {

/// Thrown by the scheduler's crash-injection hook: models the firmware
/// process dying mid-transaction. The TCAM/journal are left exactly as the
/// crash found them; the owner (test or switch agent) runs recover().
struct CrashError : std::runtime_error {
  explicit CrashError(const char* what) : std::runtime_error(what) {}
};

class ApplyJournal {
 public:
  enum class OpKind : uint8_t {
    kWrite,         // install rule `u` into slot `to`
    kMove,          // relocate slot `from` -> slot `to`
    kErase,         // invalidate slot `from`; `rule` snapshots the entry
    kAddVertex,     // DAG: add vertex `u`
    kRemoveVertex,  // DAG: remove vertex `u` (incident edges journaled first)
    kAddEdge,       // DAG: add edge u -> v
    kRemoveEdge,    // DAG: remove edge u -> v
  };

  static constexpr uint32_t kNoSnapshot = UINT32_MAX;

  /// A journaled primitive. Kept a small trivially-copyable record — the
  /// journal sits on the scheduler's per-op fast path, so recording one
  /// must cost a push_back, not a Rule copy. The kErase entry snapshot
  /// (the one inverse that needs data the device no longer holds) lives in
  /// a side table, referenced by index.
  struct Op {
    flowspace::RuleId u = 0;
    flowspace::RuleId v = 0;
    /// Slot addresses; 32 bits bound the journal at 4G TCAM slots, three
    /// orders of magnitude beyond any real device.
    uint32_t from = 0;
    uint32_t to = 0;
    uint32_t snapshot = kNoSnapshot;  // index into the erase-snapshot table
    OpKind kind = OpKind::kWrite;
    /// False = intent logged but the hardware op never completed (the crash
    /// point); recovery skips it.
    bool applied = false;
  };
  static_assert(sizeof(Op) == 32, "Op sits on the apply fast path");

  /// Opens a transaction. Exactly one may be open at a time.
  void begin(uint64_t txn_id) {
    if (open_) throw std::logic_error("ApplyJournal: transaction already open");
    ops_.clear();
    snapshots_.clear();
    txn_id_ = txn_id;
    open_ = true;
    sealed_ = false;
  }

  /// Records intent for the next primitive. Call immediately before the op
  /// executes; pair with mark_applied() immediately after.
  void record(Op op) {
    ops_.push_back(op);
    ++total_recorded_;
  }

  /// record() plus an entry snapshot, for kErase: the inverse write needs
  /// the full rule the device is about to drop.
  void record(Op op, flowspace::Rule snapshot) {
    op.snapshot = static_cast<uint32_t>(snapshots_.size());
    snapshots_.push_back(std::move(snapshot));
    ops_.push_back(op);
    ++total_recorded_;
  }

  /// The erase snapshot an op recorded (op.snapshot != kNoSnapshot).
  const flowspace::Rule& snapshot(const Op& op) const {
    return snapshots_.at(op.snapshot);
  }

  /// Marks the most recently recorded op as executed.
  void mark_applied() { ops_.back().applied = true; }

  /// Marks every not-yet-applied trailing op as executed — for composite
  /// primitives (vertex removal with its implicit edge drops) that record
  /// several intents and then execute atomically. Ops before the trailing
  /// run are applied already by invariant: an op is always resolved before
  /// the next one is recorded.
  void mark_applied_all() {
    for (size_t i = ops_.size(); i-- > 0 && !ops_[i].applied;) {
      ops_[i].applied = true;
    }
  }

  /// Every op of the transaction has executed; only the commit is pending.
  /// A crash after seal() recovers by rolling forward, not back.
  void seal() { sealed_ = true; }

  /// Closes the transaction and discards its log. clear() keeps both
  /// vectors' capacity, so steady-state journaling allocates nothing.
  void commit() {
    ops_.clear();
    snapshots_.clear();
    open_ = false;
    sealed_ = false;
  }

  bool open() const { return open_; }
  bool sealed() const { return sealed_; }
  uint64_t txn_id() const { return txn_id_; }
  size_t size() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }
  /// Lifetime count of recorded ops, across transactions (diagnostics).
  size_t total_recorded() const { return total_recorded_; }

 private:
  std::vector<Op> ops_;
  std::vector<flowspace::Rule> snapshots_;
  size_t total_recorded_ = 0;
  uint64_t txn_id_ = 0;
  bool open_ = false;
  bool sealed_ = false;
};

/// Debug renderings, used by the auditor and the recovery tests.
const char* to_string(ApplyJournal::OpKind kind);
std::string to_string(const ApplyJournal& journal);

}  // namespace ruletris::tcam
