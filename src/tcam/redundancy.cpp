#include "tcam/redundancy.h"

#include <stdexcept>
#include <unordered_map>

#include <algorithm>

#include "dag/min_dag_maintainer.h"

namespace ruletris::tcam {

using dag::DependencyGraph;
using dag::MinDagMaintainer;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;

namespace {

/// Cover test that degrades conservatively: only covers overlapping `m` are
/// considered, most-general first (they collapse fragments fastest), and a
/// fragment-budget overflow counts as "not covered" — keeping a possibly-
/// redundant rule never changes semantics. Scratch buffers are reused across
/// the whole elimination scan.
struct CoverTester {
  std::vector<TernaryMatch> relevant;
  flowspace::CoverScratch scratch;

  bool covered(const TernaryMatch& m, const std::vector<TernaryMatch>& covers) {
    relevant.clear();
    for (const TernaryMatch& c : covers) {
      if (c.overlaps(m)) relevant.push_back(c);
    }
    std::sort(relevant.begin(), relevant.end(),
              [](const TernaryMatch& a, const TernaryMatch& b) {
                return a.specified_bits() < b.specified_bits();
              });
    return flowspace::try_cover(m, {relevant.data(), relevant.size()}, scratch) ==
           flowspace::CoverResult::kCovered;
  }
};

}  // namespace

EliminationResult eliminate_redundancy(const std::vector<Rule>& rules,
                                       const DependencyGraph& graph) {
  EliminationResult result;

  std::unordered_map<RuleId, const Rule*> by_id;
  for (const Rule& r : rules) by_id[r.id] = &r;

  // Scan order: the DAG's matched-first topological order restricted to the
  // given rules.
  std::vector<RuleId> scan;
  DependencyGraph padded = graph;
  for (const Rule& r : rules) padded.add_vertex(r.id);
  for (RuleId id : padded.topo_order_high_to_low()) {
    if (by_id.count(id)) scan.push_back(id);
  }

  // The surviving DAG is maintained exactly: every removal's patch edges are
  // recomputed with the cover test, so the result graph is the minimum DAG
  // of the kept rules (not just an overlap-verified approximation).
  MinDagMaintainer survivors([](RuleId, RuleId) { return true; });
  {
    std::vector<std::pair<RuleId, TernaryMatch>> ordered;
    ordered.reserve(scan.size());
    for (RuleId id : scan) ordered.emplace_back(id, by_id.at(id)->match);
    survivors.bulk_load(ordered);
  }

  CoverTester tester;
  std::vector<TernaryMatch> accumulated;  // matches of kept rules so far
  for (RuleId id : scan) {
    const Rule& r = *by_id.at(id);

    // Obscured: covered by the union of everything kept above (Sec. V-B).
    if (tester.covered(r.match, accumulated)) {
      result.obscured.push_back(id);
      survivors.remove(id);
      continue;
    }

    // Floating: every packet of r falls through to direct predecessors that
    // all carry identical actions, so r itself adds nothing. (The paper's
    // single-predecessor "more general match, same actions" case is the
    // common instance; the cover test generalizes it soundly.)
    const auto& preds = survivors.graph().predecessors(id);
    if (!preds.empty()) {
      bool all_same_actions = true;
      std::vector<TernaryMatch> pred_matches;
      pred_matches.reserve(preds.size());
      for (RuleId p : preds) {
        const Rule& pr = *by_id.at(p);
        if (pr.actions != r.actions) {
          all_same_actions = false;
          break;
        }
        pred_matches.push_back(pr.match);
      }
      if (all_same_actions && tester.covered(r.match, pred_matches)) {
        result.floating.push_back(id);
        survivors.remove(id);
        continue;
      }
    }

    accumulated.push_back(r.match);
    result.kept.push_back(r);
  }

  result.graph = survivors.graph();
  return result;
}

}  // namespace ruletris::tcam
