#include "tcam/dag_scheduler.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace ruletris::tcam {

using flowspace::RuleId;

DagScheduler::DagScheduler(Tcam& tcam, Placement placement, SearchMode mode)
    : tcam_(tcam),
      occupancy_(tcam.capacity()),
      placement_(placement),
      mode_(mode),
      caps_(tcam.capacity()) {
  for (size_t a = 0; a < tcam.capacity(); ++a) {
    if (!tcam.is_free(a)) occupancy_.set_occupied(a, true);
  }
  if (mode_ == SearchMode::kCached) caps_.rebuild(tcam_, graph_);
}

void DagScheduler::sync_caps() {
  if (mode_ == SearchMode::kCached && caps_dirty_) {
    caps_.rebuild(tcam_, graph_);
    caps_dirty_ = false;
  }
}

void DagScheduler::restore_entry(const Rule& rule, size_t addr) {
  do_write(addr, rule);
}

void DagScheduler::restore_caps(std::vector<long long> lo_succ,
                                std::vector<long long> hi_pred) {
  caps_.load_cells(std::move(lo_succ), std::move(hi_pred));
  caps_dirty_ = false;
}

void DagScheduler::fire_crash_hook() {
  if (crash_hook_()) {
    throw CrashError("DagScheduler: injected crash inside transaction");
  }
}

// Journaled funnels all follow the same shape: consult the crash hook,
// execute the primitive, then journal it as applied. Crashes are injected
// only at hook consultations, so nothing can tear between the execution
// and its journal entry — the log a crash finds always lists exactly the
// completed prefix, which is what write-ahead intent guarantees, without
// paying existence pre-probes or a second journal touch per op.

void DagScheduler::do_write(size_t addr, const Rule& rule) {
  const bool journaled = journaling();
  if (journaled) maybe_crash();
  tcam_.write(addr, rule);
  occupancy_.set_occupied(addr, true);
  if (caps_live()) caps_.on_write(rule.id, addr, graph_, tcam_);
  if (journaled) {
    ApplyJournal::Op op;
    op.kind = ApplyJournal::OpKind::kWrite;
    op.applied = true;
    op.to = addr;
    op.u = rule.id;
    journal_->record(op);
  }
}

void DagScheduler::do_move(size_t from, size_t to) {
  const bool journaled = journaling();
  if (journaled) maybe_crash();
  tcam_.move(from, to);
  occupancy_.set_occupied(from, false);
  occupancy_.set_occupied(to, true);
  if (caps_live()) caps_.on_move(from, to, graph_, tcam_);
  if (journaled) {
    ApplyJournal::Op op;
    op.kind = ApplyJournal::OpKind::kMove;
    op.applied = true;
    op.from = from;
    op.to = to;
    journal_->record(op);
  }
}

void DagScheduler::do_erase(size_t addr) {
  const RuleId id = *tcam_.at(addr);
  if (journaling()) {
    maybe_crash();
    // take() moves the dropped entry straight into the journal: the
    // inverse is a fresh write of data the device no longer holds.
    Rule snapshot = tcam_.take(addr);
    occupancy_.set_occupied(addr, false);
    if (caps_live()) caps_.on_erase(id, addr, graph_, tcam_);
    ApplyJournal::Op op;
    op.kind = ApplyJournal::OpKind::kErase;
    op.applied = true;
    op.from = addr;
    op.u = id;
    journal_->record(op, std::move(snapshot));
    return;
  }
  tcam_.erase(addr);
  occupancy_.set_occupied(addr, false);
  if (caps_live()) caps_.on_erase(id, addr, graph_, tcam_);
}

void DagScheduler::add_vertex_internal(RuleId v) {
  if (journaling()) {
    maybe_crash();
    if (graph_.add_vertex(v)) {
      ApplyJournal::Op op;
      op.kind = ApplyJournal::OpKind::kAddVertex;
      op.applied = true;
      op.u = v;
      journal_->record(op);
    }
    return;
  }
  graph_.add_vertex(v);
}

void DagScheduler::add_edge_internal(RuleId u, RuleId v) {
  if (journaling()) {
    maybe_crash();
    // add_edge reports exactly what it changed; implicit endpoint creation
    // is journaled as explicit vertex adds (before the edge, so the
    // reverse-order rollback removes the edge first) and a no-op add
    // journals nothing — its rollback must not strip a pre-existing edge.
    const dag::DependencyGraph::EdgeAdd added = graph_.add_edge(u, v);
    ApplyJournal::Op op;
    op.applied = true;
    if (added.created_u) {
      op.kind = ApplyJournal::OpKind::kAddVertex;
      op.u = u;
      journal_->record(op);
    }
    if (added.created_v) {
      op.kind = ApplyJournal::OpKind::kAddVertex;
      op.u = v;
      journal_->record(op);
    }
    if (added.added) {
      if (caps_live()) caps_.on_add_edge(u, v, graph_, tcam_);
      op.kind = ApplyJournal::OpKind::kAddEdge;
      op.u = u;
      op.v = v;
      journal_->record(op);
    }
    return;
  }
  graph_.add_edge(u, v);
  if (caps_live()) caps_.on_add_edge(u, v, graph_, tcam_);
}

void DagScheduler::remove_edge_internal(RuleId u, RuleId v) {
  if (journaling()) {
    maybe_crash();
    if (graph_.remove_edge(u, v)) {
      if (caps_live()) caps_.on_remove_edge(u, v, graph_, tcam_);
      ApplyJournal::Op op;
      op.kind = ApplyJournal::OpKind::kRemoveEdge;
      op.applied = true;
      op.u = u;
      op.v = v;
      journal_->record(op);
    }
    return;
  }
  graph_.remove_edge(u, v);
  if (caps_live()) caps_.on_remove_edge(u, v, graph_, tcam_);
}

void DagScheduler::remove_vertex_internal(RuleId v) {
  if (journaling()) {
    if (!graph_.has_vertex(v)) return;
    // remove_vertex drops incident edges implicitly; journal each one as an
    // explicit removal first so the rollback can restore them exactly. The
    // removal itself then executes wholesale as one composite primitive —
    // recording does not mutate the graph, so the edge sets are iterated in
    // place, and the bulk cap-cache update is the same one the unjournaled
    // path pays (not a per-edge teardown).
    for (RuleId p : graph_.predecessors(v)) {
      ApplyJournal::Op op;
      op.kind = ApplyJournal::OpKind::kRemoveEdge;
      op.u = p;
      op.v = v;
      journal_->record(op);
    }
    for (RuleId s : graph_.successors(v)) {
      ApplyJournal::Op op;
      op.kind = ApplyJournal::OpKind::kRemoveEdge;
      op.u = v;
      op.v = s;
      journal_->record(op);
    }
    ApplyJournal::Op op;
    op.kind = ApplyJournal::OpKind::kRemoveVertex;
    op.u = v;
    journal_->record(op);
    maybe_crash();
    graph_.remove_vertex(v);
    if (caps_live()) caps_.on_remove_vertex(v);
    journal_->mark_applied_all();
    return;
  }
  graph_.remove_vertex(v);
  if (caps_live()) caps_.on_remove_vertex(v);
}

bool DagScheduler::begin_txn() {
  if (journal_ == nullptr || journal_->open()) return false;
  journal_->begin(++txn_counter_);
  return true;
}

void DagScheduler::commit_txn(bool owns) {
  if (!owns) return;
  journal_->seal();
  // Crash point at the frame boundary: every op executed, commit pending.
  // Recovery rolls forward (the device already holds the final state).
  maybe_crash();
  journal_->commit();
}

ApplyStatus DagScheduler::fail_txn(bool owns) {
  if (!owns) return ApplyStatus::kTableFull;
  return rollback_open_txn() > 0 ? ApplyStatus::kRolledBack
                                 : ApplyStatus::kTableFull;
}

size_t DagScheduler::rollback_open_txn(size_t* undone_writes) {
  const std::vector<ApplyJournal::Op>& ops = journal_->ops();
  size_t undone = 0;
  size_t writes = 0;
  // The undo uses the raw device/graph (not the do_* funnels): undo ops are
  // not re-journaled and must not re-fire the crash hook. The cap cache is
  // rebuilt lazily instead of tracking each inverse op.
  caps_dirty_ = true;
  for (size_t i = ops.size(); i-- > 0;) {
    const ApplyJournal::Op& op = ops[i];
    if (!op.applied) continue;
    ++undone;
    switch (op.kind) {
      case ApplyJournal::OpKind::kWrite:
        tcam_.erase(op.to);
        occupancy_.set_occupied(op.to, false);
        break;
      case ApplyJournal::OpKind::kMove:
        tcam_.move(op.to, op.from);
        occupancy_.set_occupied(op.to, false);
        occupancy_.set_occupied(op.from, true);
        ++writes;
        break;
      case ApplyJournal::OpKind::kErase:
        tcam_.write(op.from, journal_->snapshot(op));
        occupancy_.set_occupied(op.from, true);
        ++writes;
        break;
      case ApplyJournal::OpKind::kAddVertex:
        // Later-journaled incident edges were already undone above, so the
        // vertex is isolated again.
        graph_.remove_vertex(op.u);
        break;
      case ApplyJournal::OpKind::kRemoveVertex:
        graph_.add_vertex(op.u);
        break;
      case ApplyJournal::OpKind::kAddEdge:
        graph_.remove_edge(op.u, op.v);
        break;
      case ApplyJournal::OpKind::kRemoveEdge:
        graph_.add_edge(op.u, op.v);
        break;
    }
  }
  journal_->commit();
  if (undone_writes != nullptr) *undone_writes = writes;
  return undone;
}

DagScheduler::RecoveryResult DagScheduler::recover() {
  RecoveryResult result;
  if (journal_ == nullptr || !journal_->open()) return result;
  if (journal_->sealed()) {
    // Crash fell between seal and commit: every op executed, so the device
    // already holds the fully-applied state. Discard the log.
    journal_->commit();
    result.outcome = RecoveryResult::Outcome::kRolledForward;
    return result;
  }
  result.undone_ops = rollback_open_txn(&result.undone_writes);
  result.outcome = RecoveryResult::Outcome::kRolledBack;
  return result;
}

std::pair<long long, long long> DagScheduler::insert_bounds(RuleId id) const {
  long long lo = -1;
  long long hi = static_cast<long long>(tcam_.capacity());
  for (RuleId pred : graph_.predecessors(id)) {
    if (!tcam_.contains(pred)) continue;
    lo = std::max(lo, static_cast<long long>(tcam_.address_of(pred)));
  }
  for (RuleId succ : graph_.successors(id)) {
    if (!tcam_.contains(succ)) continue;
    hi = std::min(hi, static_cast<long long>(tcam_.address_of(succ)));
  }
  return {lo, hi};
}

long long DagScheduler::lowest_successor_addr(size_t addr) const {
  const RuleId id = *tcam_.at(addr);
  long long out = static_cast<long long>(tcam_.capacity());
  for (RuleId succ : graph_.successors(id)) {
    if (!tcam_.contains(succ)) continue;
    out = std::min(out, static_cast<long long>(tcam_.address_of(succ)));
  }
  return out;
}

long long DagScheduler::highest_predecessor_addr(size_t addr) const {
  const RuleId id = *tcam_.at(addr);
  long long out = -1;
  for (RuleId pred : graph_.predecessors(id)) {
    if (!tcam_.contains(pred)) continue;
    out = std::max(out, static_cast<long long>(tcam_.address_of(pred)));
  }
  return out;
}

std::optional<DagScheduler::Chain> DagScheduler::find_chain_up(
    long long lo_bound, long long hi_bound) const {
  return caps_live() ? find_chain_up_cached(lo_bound, hi_bound)
                     : find_chain_up_legacy(lo_bound, hi_bound);
}

std::optional<DagScheduler::Chain> DagScheduler::find_chain_down(
    long long lo_bound, long long hi_bound) const {
  return caps_live() ? find_chain_down_cached(lo_bound, hi_bound)
                     : find_chain_down_legacy(lo_bound, hi_bound);
}

std::optional<DagScheduler::Chain> DagScheduler::find_chain_up_legacy(
    long long lo_bound, long long hi_bound) const {
  // Nearest free slot above the (full) insert range.
  auto d_opt = occupancy_.nearest_free_at_or_above(static_cast<size_t>(lo_bound + 1));
  if (!d_opt) return std::nullopt;
  const long long d = static_cast<long long>(*d_opt);
  // The chain may start by displacing any entry in the range, *including*
  // the lowest successor itself (Algorithm 1's base cases span
  // [r_pre.addr, r_succ.addr]).
  const long long start_hi = std::min(hi_bound, d - 1);
  if (start_hi <= lo_bound) return std::nullopt;

  // Layered jump-BFS: the entry at address a may land on any slot in
  // (a, lowest_successor_addr(a)). The high-water mark keeps this O(span).
  std::unordered_map<long long, long long> parent;  // addr -> previous hop
  std::deque<long long> queue;
  for (long long a = lo_bound + 1; a <= start_hi; ++a) {
    parent[a] = -1;  // chain start: displaced directly by the new rule
    queue.push_back(a);
  }
  long long hwm = start_hi;
  while (!queue.empty()) {
    const long long a = queue.front();
    queue.pop_front();
    // The entry may land on any slot up to and *including* its lowest
    // successor's (Algorithm 1 line 15 is inclusive): landing there
    // displaces the successor, which then continues the chain upward.
    const long long cap = std::min(lowest_successor_addr(static_cast<size_t>(a)), d);
    if (cap >= d) {
      // This entry can land on the free slot: chain complete.
      Chain chain;
      for (long long cur = a; cur != -1; cur = parent.at(cur)) {
        chain.hops.push_back(static_cast<size_t>(cur));
      }
      std::reverse(chain.hops.begin(), chain.hops.end());
      chain.free_slot = static_cast<size_t>(d);
      return chain;
    }
    for (long long j = hwm + 1; j <= cap; ++j) {
      parent[j] = a;
      queue.push_back(j);
    }
    hwm = std::max(hwm, cap);
  }
  return std::nullopt;
}

std::optional<DagScheduler::Chain> DagScheduler::find_chain_down_legacy(
    long long lo_bound, long long hi_bound) const {
  if (hi_bound <= 0) return std::nullopt;
  auto d_opt = occupancy_.nearest_free_at_or_below(static_cast<size_t>(hi_bound - 1));
  if (!d_opt) return std::nullopt;
  const long long d = static_cast<long long>(*d_opt);
  const long long start_lo = std::max(lo_bound, d + 1);
  if (start_lo >= hi_bound) return std::nullopt;

  std::unordered_map<long long, long long> parent;
  std::deque<long long> queue;
  for (long long a = hi_bound - 1; a >= start_lo; --a) {
    parent[a] = -2;  // chain start sentinel (−1 is a valid address bound here)
    queue.push_back(a);
  }
  long long lwm = start_lo;
  while (!queue.empty()) {
    const long long a = queue.front();
    queue.pop_front();
    // Inclusive of the highest predecessor's slot (Algorithm 1 line 23):
    // landing there displaces the predecessor further down the chain.
    const long long cap =
        std::max(highest_predecessor_addr(static_cast<size_t>(a)), d);
    if (cap <= d) {
      Chain chain;
      for (long long cur = a; cur != -2; cur = parent.at(cur)) {
        chain.hops.push_back(static_cast<size_t>(cur));
      }
      std::reverse(chain.hops.begin(), chain.hops.end());
      chain.free_slot = static_cast<size_t>(d);
      return chain;
    }
    for (long long j = lwm - 1; j >= cap; --j) {
      parent[j] = a;
      queue.push_back(j);
    }
    lwm = std::min(lwm, cap);
  }
  return std::nullopt;
}

// The cached searches mirror the legacy traversal order exactly — same
// seeds, same FIFO discipline, same water-mark extension — so both modes
// discover the same chains. They differ only in the data structures:
//
//   * each probe is one CapIndex array load instead of an O(degree) scan;
//   * parent links live in an offset-indexed arena (address − range base)
//     and the FIFO is a flat vector with a head cursor. Addresses get their
//     parent written before being enqueued and only enqueued addresses are
//     ever read back, so the arena needs no clearing between searches —
//     resize-only reuse makes steady-state inserts allocation-free.
std::optional<DagScheduler::Chain> DagScheduler::find_chain_up_cached(
    long long lo_bound, long long hi_bound) const {
  auto d_opt = occupancy_.nearest_free_at_or_above(static_cast<size_t>(lo_bound + 1));
  if (!d_opt) return std::nullopt;
  const long long d = static_cast<long long>(*d_opt);
  const long long start_hi = std::min(hi_bound, d - 1);
  if (start_hi <= lo_bound) return std::nullopt;

  const long long base = lo_bound + 1;  // candidate hop addresses: [base, d)
  const size_t span = static_cast<size_t>(d - base);
  if (arena_parent_.size() < span) arena_parent_.resize(span);
  arena_queue_.clear();
  for (long long a = base; a <= start_hi; ++a) {
    arena_parent_[static_cast<size_t>(a - base)] = -1;
    arena_queue_.push_back(a);
  }
  long long hwm = start_hi;
  for (size_t head = 0; head < arena_queue_.size(); ++head) {
    const long long a = arena_queue_[head];
    const long long cap = std::min(caps_.lo_succ_at(static_cast<size_t>(a)), d);
    if (cap >= d) {
      Chain chain;
      for (long long cur = a; cur != -1;
           cur = arena_parent_[static_cast<size_t>(cur - base)]) {
        chain.hops.push_back(static_cast<size_t>(cur));
      }
      std::reverse(chain.hops.begin(), chain.hops.end());
      chain.free_slot = static_cast<size_t>(d);
      return chain;
    }
    for (long long j = hwm + 1; j <= cap; ++j) {
      arena_parent_[static_cast<size_t>(j - base)] = a;
      arena_queue_.push_back(j);
    }
    hwm = std::max(hwm, cap);
  }
  return std::nullopt;
}

std::optional<DagScheduler::Chain> DagScheduler::find_chain_down_cached(
    long long lo_bound, long long hi_bound) const {
  if (hi_bound <= 0) return std::nullopt;
  auto d_opt = occupancy_.nearest_free_at_or_below(static_cast<size_t>(hi_bound - 1));
  if (!d_opt) return std::nullopt;
  const long long d = static_cast<long long>(*d_opt);
  const long long start_lo = std::max(lo_bound, d + 1);
  if (start_lo >= hi_bound) return std::nullopt;

  const long long base = d + 1;  // candidate hop addresses: (d, hi_bound)
  const size_t span = static_cast<size_t>(hi_bound - base);
  if (arena_parent_.size() < span) arena_parent_.resize(span);
  arena_queue_.clear();
  for (long long a = hi_bound - 1; a >= start_lo; --a) {
    arena_parent_[static_cast<size_t>(a - base)] = -2;
    arena_queue_.push_back(a);
  }
  long long lwm = start_lo;
  for (size_t head = 0; head < arena_queue_.size(); ++head) {
    const long long a = arena_queue_[head];
    const long long cap = std::max(caps_.hi_pred_at(static_cast<size_t>(a)), d);
    if (cap <= d) {
      Chain chain;
      for (long long cur = a; cur != -2;
           cur = arena_parent_[static_cast<size_t>(cur - base)]) {
        chain.hops.push_back(static_cast<size_t>(cur));
      }
      std::reverse(chain.hops.begin(), chain.hops.end());
      chain.free_slot = static_cast<size_t>(d);
      return chain;
    }
    for (long long j = lwm - 1; j >= cap; --j) {
      arena_parent_[static_cast<size_t>(j - base)] = a;
      arena_queue_.push_back(j);
    }
    lwm = std::min(lwm, cap);
  }
  return std::nullopt;
}

void DagScheduler::execute_up(const Chain& chain, const Rule& rule) {
  size_t target = chain.free_slot;
  for (size_t i = chain.hops.size(); i-- > 0;) {
    do_move(chain.hops[i], target);
    target = chain.hops[i];
  }
  do_write(target, rule);
  last_chain_moves_ = chain.hops.size();
}

void DagScheduler::execute_down(const Chain& chain, const Rule& rule) {
  // Identical mechanics; the hop addresses simply descend.
  execute_up(chain, rule);
}

ApplyStatus DagScheduler::insert_status(const Rule& rule) {
  sync_caps();
  const bool owns = begin_txn();
  if (!insert_impl(rule, 0)) return fail_txn(owns);
  commit_txn(owns);
  return ApplyStatus::kOk;
}

bool DagScheduler::evict(RuleId id) {
  if (!tcam_.contains(id)) return false;
  const bool owns = begin_txn();
  do_erase(tcam_.address_of(id));
  commit_txn(owns);
  return true;
}

bool DagScheduler::insert_impl(const Rule& rule, int depth) {
  add_vertex_internal(rule.id);
  const auto [lo, hi] =
      caps_live() ? caps_.bounds_of(rule.id, graph_, tcam_) : insert_bounds(rule.id);
  last_chain_moves_ = 0;

  if (lo >= hi) {
    // Inverted range: some predecessor sits at or above the lowest
    // successor. The two are mutually unconstrained, so the layout is
    // legal, but Algorithm 1 has no chain for it (it assumes
    // r_pre.addr < r_succ.addr). Repair by displacing the offending
    // predecessors and re-inserting them below the new rule.
    if (depth > 32) {
      util::log_error("DagScheduler: displacement recursion limit hit");
      return false;
    }
    std::vector<Rule> displaced;
    for (RuleId pred : graph_.predecessors(rule.id)) {
      if (!tcam_.contains(pred)) continue;
      if (static_cast<long long>(tcam_.address_of(pred)) >= hi) {
        displaced.push_back(tcam_.rule(pred));
      }
    }
    for (const Rule& d : displaced) {
      do_erase(tcam_.address_of(d.id));
    }
    if (!insert_impl(rule, depth + 1)) return false;
    // Re-insert in dependency order among the displaced rules: a rule whose
    // dependencies (successors) are all already placed goes first.
    std::unordered_set<RuleId> remaining;
    for (const Rule& d : displaced) remaining.insert(d.id);
    while (!remaining.empty()) {
      bool progressed = false;
      for (const Rule& d : displaced) {
        if (!remaining.count(d.id)) continue;
        bool blocked = false;
        for (RuleId succ : graph_.successors(d.id)) {
          if (remaining.count(succ)) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
        if (!insert_impl(d, depth + 1)) return false;
        remaining.erase(d.id);
        progressed = true;
      }
      if (!progressed) {
        util::log_error("DagScheduler: cyclic displacement set");
        return false;
      }
    }
    return true;
  }

  // Fast path: a free slot inside the open interval (lo, hi). Prefer the
  // slot nearest the interval midpoint so remaining slack stays balanced for
  // future inserts.
  if (hi - lo > 1) {
    const long long mid = (lo + hi) / 2;
    std::optional<size_t> best;
    auto above = occupancy_.nearest_free_at_or_above(static_cast<size_t>(std::max(lo + 1, 0LL)));
    if (above && static_cast<long long>(*above) < hi) best = *above;
    if (placement_ == Placement::kBalanced && mid >= 0) {
      auto below = occupancy_.nearest_free_at_or_below(static_cast<size_t>(mid));
      if (below && static_cast<long long>(*below) > lo &&
          static_cast<long long>(*below) < hi) {
        if (!best || std::llabs(static_cast<long long>(*below) - mid) <
                         std::llabs(static_cast<long long>(*best) - mid)) {
          best = *below;
        }
      }
      auto above_mid = occupancy_.nearest_free_at_or_above(static_cast<size_t>(mid));
      if (above_mid && static_cast<long long>(*above_mid) < hi &&
          static_cast<long long>(*above_mid) > lo) {
        if (!best || std::llabs(static_cast<long long>(*above_mid) - mid) <
                         std::llabs(static_cast<long long>(*best) - mid)) {
          best = *above_mid;
        }
      }
    }
    if (best) {
      do_write(*best, rule);
      return true;
    }
  }

  auto up = find_chain_up(lo, hi);
  auto down = find_chain_down(lo, hi);
  if (!up && !down) {
    util::log_warn("DagScheduler: TCAM full or no feasible chain for insert");
    return false;
  }
  if (up && (!down || up->hops.size() <= down->hops.size())) {
    execute_up(*up, rule);
  } else {
    execute_down(*down, rule);
  }
  return true;
}

void DagScheduler::remove(RuleId id) {
  const bool owns = begin_txn();
  if (tcam_.contains(id)) {
    do_erase(tcam_.address_of(id));
  }
  remove_vertex_internal(id);
  commit_txn(owns);
}

ApplyStatus DagScheduler::apply_status(const BackendUpdate& update) {
  sync_caps();
  const bool owns = begin_txn();
  for (const auto& [u, v] : update.dag.removed_edges) remove_edge_internal(u, v);
  for (RuleId id : update.removed) {
    if (tcam_.contains(id)) do_erase(tcam_.address_of(id));
    remove_vertex_internal(id);
  }
  for (RuleId v : update.dag.added_vertices) add_vertex_internal(v);
  for (const auto& [u, v] : update.dag.added_edges) add_edge_internal(u, v);

  if (update.added.size() <= 1) {
    for (const Rule& r : update.added) {
      if (!insert_impl(r, 0)) return fail_txn(owns);
    }
    commit_txn(owns);
    return ApplyStatus::kOk;
  }

  // Install in dependency order: if a -> b among the new rules, b must be
  // matched first and therefore installed first (local Kahn over the batch).
  std::unordered_map<RuleId, const Rule*> pending;
  for (const Rule& r : update.added) pending[r.id] = &r;
  std::unordered_map<RuleId, size_t> deps;  // # uninstalled successors in batch
  std::deque<RuleId> ready;
  for (const Rule& r : update.added) {
    size_t n = 0;
    for (RuleId succ : graph_.successors(r.id)) {
      if (pending.count(succ)) ++n;
    }
    deps[r.id] = n;
    if (n == 0) ready.push_back(r.id);
  }
  size_t installed = 0;
  while (!ready.empty()) {
    const RuleId id = ready.front();
    ready.pop_front();
    if (!insert_impl(*pending.at(id), 0)) return fail_txn(owns);
    ++installed;
    for (RuleId pred : graph_.predecessors(id)) {
      auto it = deps.find(pred);
      if (it != deps.end() && --it->second == 0) ready.push_back(pred);
    }
  }
  if (installed != update.added.size()) {
    util::log_error("DagScheduler: cyclic dependency among inserted rules");
    return fail_txn(owns);
  }
  commit_txn(owns);
  return ApplyStatus::kOk;
}

bool DagScheduler::layout_valid() const {
  for (const auto& [u, v] : graph_.edges()) {
    // Constraints only bind once both rules are installed (the graph may
    // already know rules that a pending batch will insert later).
    if (!tcam_.contains(u) || !tcam_.contains(v)) continue;
    if (tcam_.address_of(v) <= tcam_.address_of(u)) return false;
  }
  return true;
}

}  // namespace ruletris::tcam
