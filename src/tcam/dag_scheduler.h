// DAG-guided TCAM update scheduler — Algorithm 1 (Sec. V-A, Claim 1).
//
// Keeps the firmware-side copy of the minimum DAG and maps each rule insert
// to the provably shortest chain of entry moves:
//   1. The insert range is bounded by the rule's highest-addressed
//      predecessor (must stay below the rule) and lowest-addressed successor
//      (must stay above it).
//   2. A free slot inside the range costs a single entry write.
//   3. Otherwise the scheduler runs the shortest-moving-chain search in both
//      directions — a BFS where an entry at address a may hop to any slot
//      strictly below its own lowest successor (upward) or strictly above
//      its highest predecessor (downward) — and executes the shorter chain.
#pragma once

#include <optional>
#include <vector>

#include "dag/dependency_graph.h"
#include "tcam/backend_update.h"
#include "tcam/occupancy.h"
#include "tcam/tcam.h"

namespace ruletris::tcam {

using dag::DependencyGraph;

class DagScheduler {
 public:
  /// Free-slot placement policy for inserts whose range holds several free
  /// slots. kBalanced (default) picks the slot nearest the range midpoint,
  /// preserving slack for future chains; kFirstFree takes the lowest slot
  /// (naive firmware behaviour, kept for the ablation bench).
  enum class Placement { kBalanced, kFirstFree };

  explicit DagScheduler(Tcam& tcam, Placement placement = Placement::kBalanced);

  /// Applies one incremental update: edge removals, rule deletions, DAG
  /// additions, then rule inserts in dependency order. Returns false (and
  /// stops) if the TCAM cannot fit an insert.
  bool apply(const BackendUpdate& update);

  /// Inserts one rule whose vertex/edges are already in the graph.
  bool insert(const Rule& rule);



  void remove(flowspace::RuleId id);

  const DependencyGraph& graph() const { return graph_; }
  DependencyGraph& graph() { return graph_; }

  /// Length (number of entry moves, excluding the final new-entry write) of
  /// the chain the last insert executed. For diagnostics and optimality
  /// tests.
  size_t last_chain_moves() const { return last_chain_moves_; }

  /// Verifies that the current layout satisfies every DAG constraint
  /// (every edge u->v has addr(v) > addr(u)). For tests.
  bool layout_valid() const;

 private:
  struct Chain {
    // Addresses whose entries move one hop along the chain, ordered from
    // the insert-range slot outward; `free_slot` terminates it.
    std::vector<size_t> hops;
    size_t free_slot = 0;
  };

  /// Bounds (exclusive) for where `id` may sit, from its graph neighbours.
  std::pair<long long, long long> insert_bounds(flowspace::RuleId id) const;

  /// insert() body; `depth` bounds the displace-and-reinsert repair used
  /// when the insert range is inverted (predecessor above successor).
  bool insert_impl(const Rule& rule, int depth);

  std::optional<Chain> find_chain_up(long long lo_bound, long long hi_bound) const;
  std::optional<Chain> find_chain_down(long long lo_bound, long long hi_bound) const;

  /// Lowest successor address of the entry at `addr` (upward landing cap).
  long long lowest_successor_addr(size_t addr) const;
  /// Highest predecessor address of the entry at `addr` (downward cap).
  long long highest_predecessor_addr(size_t addr) const;

  void execute_up(const Chain& chain, const Rule& rule);
  void execute_down(const Chain& chain, const Rule& rule);

  Tcam& tcam_;
  OccupancyIndex occupancy_;
  DependencyGraph graph_;
  Placement placement_ = Placement::kBalanced;
  size_t last_chain_moves_ = 0;
};

}  // namespace ruletris::tcam
