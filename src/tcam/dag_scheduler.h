// DAG-guided TCAM update scheduler — Algorithm 1 (Sec. V-A, Claim 1).
//
// Keeps the firmware-side copy of the minimum DAG and maps each rule insert
// to the provably shortest chain of entry moves:
//   1. The insert range is bounded by the rule's highest-addressed
//      predecessor (must stay below the rule) and lowest-addressed successor
//      (must stay above it).
//   2. A free slot inside the range costs a single entry write.
//   3. Otherwise the scheduler runs the shortest-moving-chain search in both
//      directions — a BFS where an entry at address a may hop to any slot
//      strictly below its own lowest successor (upward) or strictly above
//      its highest predecessor (downward) — and executes the shorter chain.
//
// Two search implementations coexist (see DESIGN.md "TCAM firmware fast
// path"). kCached (default) answers every bound/probe from an incrementally
// maintained CapIndex in O(1) and runs the BFS in a reusable flat arena;
// kLegacy scans the graph per probe (O(degree)) and BFSes through an
// unordered_map — kept for the --legacy-search ablation and the equivalence
// tests. Both produce bit-identical chains and layouts.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dag/dependency_graph.h"
#include "tcam/apply_journal.h"
#include "tcam/backend_update.h"
#include "tcam/cap_index.h"
#include "tcam/occupancy.h"
#include "tcam/tcam.h"

namespace ruletris::tcam {

using dag::DependencyGraph;

/// Structured outcome of an update transaction. kTableFull: the update was
/// infeasible and the device was left untouched (with a journal attached) or
/// partially applied up to the failing insert (legacy, journal-less mode).
/// kRolledBack: part of the update had executed before it failed; the
/// journal undid it, so the device equals its pre-update state.
enum class ApplyStatus : uint8_t { kOk = 0, kTableFull = 1, kRolledBack = 2 };

inline const char* to_string(ApplyStatus s) {
  switch (s) {
    case ApplyStatus::kOk: return "ok";
    case ApplyStatus::kTableFull: return "table_full";
    case ApplyStatus::kRolledBack: return "rolled_back";
  }
  return "?";
}

class DagScheduler {
 public:
  /// Free-slot placement policy for inserts whose range holds several free
  /// slots. kBalanced (default) picks the slot nearest the range midpoint,
  /// preserving slack for future chains; kFirstFree takes the lowest slot
  /// (naive firmware behaviour, kept for the ablation bench).
  enum class Placement { kBalanced, kFirstFree };

  /// kCached: O(1) cap probes + flat-arena BFS. kLegacy: the original
  /// O(degree)-per-probe search, for ablation/equivalence.
  enum class SearchMode { kCached, kLegacy };

  explicit DagScheduler(Tcam& tcam, Placement placement = Placement::kBalanced,
                        SearchMode mode = SearchMode::kCached);

  /// Applies one incremental update: edge removals, rule deletions, DAG
  /// additions, then rule inserts in dependency order. With a journal
  /// attached the whole update is one recoverable transaction: on an
  /// infeasible insert every executed op is undone (kRolledBack, or
  /// kTableFull when nothing had executed) and the device is exactly its
  /// pre-update state. Without a journal a failure stops mid-update
  /// (kTableFull), preserving the legacy partial-stop behaviour.
  ApplyStatus apply_status(const BackendUpdate& update);
  bool apply(const BackendUpdate& update) {
    return apply_status(update) == ApplyStatus::kOk;
  }

  /// Inserts one rule whose vertex/edges are already in the graph.
  ApplyStatus insert_status(const Rule& rule);
  bool insert(const Rule& rule) {
    return insert_status(rule) == ApplyStatus::kOk;
  }

  /// Attaches (or detaches, with nullptr) the write-ahead journal; not
  /// owned. With a journal every apply/insert/evict/remove runs as a
  /// recoverable transaction. Direct graph() edits bypass the journal and
  /// are not crash-protected.
  void set_journal(ApplyJournal* journal) { journal_ = journal; }
  ApplyJournal* journal() const { return journal_; }

  /// Crash-injection hook, consulted once per journaled op (after its
  /// intent is recorded, before it executes) and once at the commit point
  /// (after seal). Returning true throws CrashError, leaving the torn
  /// transaction for recover(). Only consulted while a journal transaction
  /// is open.
  void set_crash_hook(std::function<bool()> hook) {
    crash_hook_ = std::move(hook);
  }

  struct RecoveryResult {
    enum class Outcome {
      kClean,          // no torn transaction; nothing to do
      kRolledBack,     // unsealed txn undone; device == pre-update state
      kRolledForward,  // sealed txn committed; device == fully-applied state
    };
    Outcome outcome = Outcome::kClean;
    size_t undone_ops = 0;     // journal ops undone (TCAM + DAG)
    size_t undone_writes = 0;  // TCAM entry writes the undo cost (x 0.6 ms)
  };

  /// Replays the journal after a crash: commits a sealed transaction
  /// (roll-forward) or undoes an unsealed one in reverse (rollback),
  /// restoring occupancy and invalidating the cap cache for lazy rebuild.
  RecoveryResult recover();

  /// Warm-boot restore: writes `rule` at exactly `addr` (which must be
  /// free), keeping occupancy exact. No chain search, no journal — the
  /// address comes from a frozen layout that already satisfied every DAG
  /// constraint. Callers load the graph first (via graph()) and finish with
  /// rebuild_caches().
  void restore_entry(const Rule& rule, size_t addr);

  /// Rebuilds the O(1) search caches after external graph() edits or a
  /// restore_entry() sequence. No-op in kLegacy mode or when already clean.
  void rebuild_caches() { sync_caps(); }

  /// Warm-boot fast path: adopts externally computed cap cells (one pair of
  /// entries per TCAM address, see CapIndex::load_cells) instead of
  /// recomputing them from the graph, and marks the caches clean. The cells
  /// must exactly describe the current graph() + TCAM state — frozen
  /// restore derives them from the blob's flat index/address arrays.
  void restore_caps(std::vector<long long> lo_succ,
                    std::vector<long long> hi_pred);

  /// Erases the rule's TCAM entry but keeps its vertex and edges — the
  /// CacheFlow-style eviction primitive. Returns false if not installed.
  bool evict(flowspace::RuleId id);

  void remove(flowspace::RuleId id);

  size_t capacity() const { return tcam_.capacity(); }

  const DependencyGraph& graph() const { return graph_; }
  /// Mutable graph access for tests/adapters that edit the DAG directly.
  /// Invalidates the cap cache; the next insert/apply rebuilds it.
  DependencyGraph& graph() {
    caps_dirty_ = true;
    return graph_;
  }

  SearchMode search_mode() const { return mode_; }

  /// Length (number of entry moves, excluding the final new-entry write) of
  /// the chain the last insert executed. For diagnostics and optimality
  /// tests.
  size_t last_chain_moves() const { return last_chain_moves_; }

  /// Verifies that the current layout satisfies every DAG constraint
  /// (every edge u->v has addr(v) > addr(u)). For tests.
  bool layout_valid() const;

 private:
  struct Chain {
    // Addresses whose entries move one hop along the chain, ordered from
    // the insert-range slot outward; `free_slot` terminates it.
    std::vector<size_t> hops;
    size_t free_slot = 0;
  };

  /// Bounds (exclusive) for where `id` may sit, from its graph neighbours.
  std::pair<long long, long long> insert_bounds(flowspace::RuleId id) const;

  /// insert() body; `depth` bounds the displace-and-reinsert repair used
  /// when the insert range is inverted (predecessor above successor).
  bool insert_impl(const Rule& rule, int depth);

  std::optional<Chain> find_chain_up(long long lo_bound, long long hi_bound) const;
  std::optional<Chain> find_chain_down(long long lo_bound, long long hi_bound) const;
  std::optional<Chain> find_chain_up_legacy(long long lo_bound,
                                            long long hi_bound) const;
  std::optional<Chain> find_chain_down_legacy(long long lo_bound,
                                              long long hi_bound) const;
  std::optional<Chain> find_chain_up_cached(long long lo_bound,
                                            long long hi_bound) const;
  std::optional<Chain> find_chain_down_cached(long long lo_bound,
                                              long long hi_bound) const;

  /// Lowest successor address of the entry at `addr` (upward landing cap).
  long long lowest_successor_addr(size_t addr) const;
  /// Highest predecessor address of the entry at `addr` (downward cap).
  long long highest_predecessor_addr(size_t addr) const;

  void execute_up(const Chain& chain, const Rule& rule);
  void execute_down(const Chain& chain, const Rule& rule);

  // All TCAM/graph mutations funnel through these so occupancy and the cap
  // cache stay exact (hooks no-op in kLegacy mode or while the cache is
  // dirty from external graph() edits) and so every op is journaled while a
  // transaction is open.
  void do_write(size_t addr, const Rule& rule);
  void do_move(size_t from, size_t to);
  void do_erase(size_t addr);
  void add_vertex_internal(flowspace::RuleId v);
  void add_edge_internal(flowspace::RuleId u, flowspace::RuleId v);
  void remove_edge_internal(flowspace::RuleId u, flowspace::RuleId v);
  void remove_vertex_internal(flowspace::RuleId v);
  bool caps_live() const { return mode_ == SearchMode::kCached && !caps_dirty_; }
  void sync_caps();

  bool journaling() const { return journal_ != nullptr && journal_->open(); }
  /// Fires the crash hook inside an open transaction; throws CrashError.
  /// Inline fast path: the hook is usually unset, and this sits on every
  /// journaled primitive.
  void maybe_crash() {
    if (crash_hook_) fire_crash_hook();
  }
  void fire_crash_hook();
  /// Opens a journal transaction if a journal is attached and none is open.
  /// Returns whether this call owns (and must close) the transaction.
  bool begin_txn();
  /// Seals and commits an owned transaction; the seal->commit gap is a
  /// crash point (recovery then rolls forward).
  void commit_txn(bool owns);
  /// Failure path: rolls back an owned open transaction and maps the result
  /// to kRolledBack (work was undone) or kTableFull (nothing had executed).
  ApplyStatus fail_txn(bool owns);
  /// Undoes every applied op of the open transaction in reverse, then
  /// clears it. Returns the op count undone; `undone_writes` (optional)
  /// receives the TCAM entry writes the undo itself cost.
  size_t rollback_open_txn(size_t* undone_writes = nullptr);

  Tcam& tcam_;
  OccupancyIndex occupancy_;
  DependencyGraph graph_;
  Placement placement_ = Placement::kBalanced;
  SearchMode mode_ = SearchMode::kCached;
  CapIndex caps_;
  bool caps_dirty_ = false;
  size_t last_chain_moves_ = 0;
  ApplyJournal* journal_ = nullptr;  // not owned
  std::function<bool()> crash_hook_;
  uint64_t txn_counter_ = 0;

  // Reusable flat-arena BFS state: offset-indexed parent slots plus a flat
  // FIFO (head cursor instead of pop_front). assign()/clear() never shrink
  // capacity, so steady-state inserts allocate nothing.
  mutable std::vector<long long> arena_parent_;
  mutable std::vector<long long> arena_queue_;
};

}  // namespace ruletris::tcam
