// Firmware state auditor: post-recovery invariant checks.
//
// After any crash recovery (and after rejected updates roll back) the
// TCAM + DAG pair must still satisfy the three invariants RuleTris's
// correctness rests on:
//   1. Every DAG edge u -> v with both endpoints installed is
//      address-ordered: addr(v) > addr(u) (dependency priority is encoded
//      in physical addresses, Sec. II).
//   2. When the caller knows the expected rule set, the installed entries
//      match it exactly — same ids, same match fields, same actions; no
//      rule silently lost or resurrected by a torn chain.
//   3. No duplicate or orphan slots: each rule id occupies exactly one
//      slot, the slot/index maps agree, and every installed entry has a
//      DAG vertex.
// The auditor reads only the public device/graph API — it is the external
// checker a recovery path must satisfy, not part of the path itself.
#pragma once

#include <string>
#include <vector>

#include "dag/dependency_graph.h"
#include "tcam/tcam.h"

namespace ruletris::tcam {

struct AuditReport {
  std::vector<std::string> violations;
  size_t entries_checked = 0;
  size_t edges_checked = 0;

  bool clean() const { return violations.empty(); }
  std::string to_string() const;
};

/// Structural audit: invariants (1) and (3).
AuditReport audit_state(const Tcam& tcam, const dag::DependencyGraph& graph);

/// Full audit: additionally checks invariant (2) against `expected`.
AuditReport audit_state(const Tcam& tcam, const dag::DependencyGraph& graph,
                        const std::vector<flowspace::Rule>& expected);

}  // namespace ruletris::tcam
