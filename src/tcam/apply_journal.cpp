#include "tcam/apply_journal.h"

#include <sstream>

namespace ruletris::tcam {

const char* to_string(ApplyJournal::OpKind kind) {
  switch (kind) {
    case ApplyJournal::OpKind::kWrite: return "write";
    case ApplyJournal::OpKind::kMove: return "move";
    case ApplyJournal::OpKind::kErase: return "erase";
    case ApplyJournal::OpKind::kAddVertex: return "add_vertex";
    case ApplyJournal::OpKind::kRemoveVertex: return "remove_vertex";
    case ApplyJournal::OpKind::kAddEdge: return "add_edge";
    case ApplyJournal::OpKind::kRemoveEdge: return "remove_edge";
  }
  return "?";
}

std::string to_string(const ApplyJournal& journal) {
  std::ostringstream out;
  out << "txn " << journal.txn_id() << (journal.open() ? " open" : " closed")
      << (journal.sealed() ? " sealed" : "") << ", " << journal.size()
      << " ops\n";
  for (const ApplyJournal::Op& op : journal.ops()) {
    out << "  " << to_string(op.kind);
    switch (op.kind) {
      case ApplyJournal::OpKind::kWrite:
        out << " rule " << op.u << " -> slot " << op.to;
        break;
      case ApplyJournal::OpKind::kMove:
        out << " slot " << op.from << " -> " << op.to;
        break;
      case ApplyJournal::OpKind::kErase:
        out << " slot " << op.from << " (rule " << op.u << ")";
        break;
      case ApplyJournal::OpKind::kAddVertex:
      case ApplyJournal::OpKind::kRemoveVertex:
        out << " " << op.u;
        break;
      case ApplyJournal::OpKind::kAddEdge:
      case ApplyJournal::OpKind::kRemoveEdge:
        out << " " << op.u << " -> " << op.v;
        break;
    }
    out << (op.applied ? "" : " [not applied]") << "\n";
  }
  return out.str();
}

}  // namespace ruletris::tcam
