#include "tcam/tcam.h"

#include <stdexcept>

#include "util/strfmt.h"

namespace ruletris::tcam {

Tcam::Tcam(size_t capacity) : slots_(capacity) {
  if (capacity == 0) throw std::invalid_argument("Tcam: zero capacity");
  // The id index will eventually hold up to `capacity` entries; sizing the
  // bucket array once keeps bulk installs and warm-boot restores rehash-free.
  by_id_.reserve(capacity);
}

bool Tcam::is_free(size_t addr) const {
  if (addr >= slots_.size()) throw std::out_of_range("Tcam: bad address");
  return !slots_[addr].has_value();
}

std::optional<RuleId> Tcam::at(size_t addr) const {
  if (addr >= slots_.size()) throw std::out_of_range("Tcam: bad address");
  if (!slots_[addr]) return std::nullopt;
  return slots_[addr]->id;
}

size_t Tcam::address_of(RuleId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) throw std::out_of_range("Tcam: rule not installed");
  return it->second;
}

const Rule& Tcam::rule(RuleId id) const { return *slots_[address_of(id)]; }

void Tcam::write(size_t addr, Rule rule) {
  if (!is_free(addr)) throw std::logic_error("Tcam::write: slot occupied");
  if (by_id_.count(rule.id)) throw std::logic_error("Tcam::write: duplicate rule id");
  by_id_[rule.id] = addr;
  slots_[addr] = std::move(rule);
  ++stats_.entry_writes;
  notify(Op::kWrite, addr);
}

void Tcam::move(size_t from, size_t to) {
  if (is_free(from)) throw std::logic_error("Tcam::move: source slot free");
  if (!is_free(to)) throw std::logic_error("Tcam::move: target slot occupied");
  by_id_[slots_[from]->id] = to;
  slots_[to] = std::move(slots_[from]);
  slots_[from].reset();
  ++stats_.entry_writes;
  ++stats_.moves;
  notify(Op::kMove, to);
}

void Tcam::erase(size_t addr) {
  if (is_free(addr)) return;
  by_id_.erase(slots_[addr]->id);
  slots_[addr].reset();
  ++stats_.erases;
  notify(Op::kErase, addr);
}

Rule Tcam::take(size_t addr) {
  if (is_free(addr)) throw std::logic_error("Tcam::take: slot free");
  Rule out = std::move(*slots_[addr]);
  by_id_.erase(out.id);
  slots_[addr].reset();
  ++stats_.erases;
  notify(Op::kErase, addr);
  return out;
}

void Tcam::modify_actions(RuleId id, flowspace::ActionList actions) {
  const size_t addr = address_of(id);
  slots_[addr]->actions = std::move(actions);
  ++stats_.entry_writes;
  notify(Op::kModify, addr);
}

const Rule* Tcam::lookup(const Packet& p) const {
  for (size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i] && slots_[i]->match.matches(p)) return &*slots_[i];
  }
  return nullptr;
}

std::vector<Rule> Tcam::entries_high_to_low() const {
  std::vector<Rule> out;
  out.reserve(by_id_.size());
  for (size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i]) out.push_back(*slots_[i]);
  }
  return out;
}

std::string Tcam::to_string() const {
  std::string out = util::strfmt("TCAM %zu/%zu (top first)\n", occupied(), capacity());
  for (size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i]) {
      out += util::strfmt("  [%4zu] %s\n", i, slots_[i]->to_string().c_str());
    }
  }
  return out;
}

}  // namespace ruletris::tcam
