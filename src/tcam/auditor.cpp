#include "tcam/auditor.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ruletris::tcam {

using flowspace::Rule;
using flowspace::RuleId;

namespace {

void append(AuditReport& report, const std::string& violation) {
  report.violations.push_back(violation);
}

std::string slot_str(size_t addr) {
  return "slot " + std::to_string(addr);
}

}  // namespace

std::string AuditReport::to_string() const {
  std::ostringstream out;
  out << "audit: " << entries_checked << " entries, " << edges_checked
      << " edges, "
      << (clean() ? "clean" : std::to_string(violations.size()) + " violations");
  for (const std::string& v : violations) out << "\n  " << v;
  return out.str();
}

AuditReport audit_state(const Tcam& tcam, const dag::DependencyGraph& graph) {
  AuditReport report;

  // Invariant 3: one slot per id, consistent slot/index maps, no entry
  // without a DAG vertex.
  std::unordered_set<RuleId> seen;
  size_t occupied_slots = 0;
  for (size_t addr = 0; addr < tcam.capacity(); ++addr) {
    const std::optional<RuleId> id = tcam.at(addr);
    if (!id) continue;
    ++occupied_slots;
    ++report.entries_checked;
    if (!seen.insert(*id).second) {
      append(report, "duplicate rule " + std::to_string(*id) + " at " +
                         slot_str(addr));
      continue;
    }
    if (!tcam.contains(*id) || tcam.address_of(*id) != addr) {
      append(report, "index mismatch for rule " + std::to_string(*id) +
                         " at " + slot_str(addr));
    }
    if (!graph.has_vertex(*id)) {
      append(report, "orphan entry: rule " + std::to_string(*id) + " at " +
                         slot_str(addr) + " has no DAG vertex");
    }
  }
  if (occupied_slots != tcam.occupied()) {
    append(report, "occupancy mismatch: " + std::to_string(occupied_slots) +
                       " occupied slots vs occupied() = " +
                       std::to_string(tcam.occupied()));
  }

  // Invariant 1: installed dependency endpoints are address-ordered.
  for (const auto& [u, v] : graph.edges()) {
    if (!tcam.contains(u) || !tcam.contains(v)) continue;
    ++report.edges_checked;
    if (tcam.address_of(v) <= tcam.address_of(u)) {
      append(report, "edge " + std::to_string(u) + " -> " + std::to_string(v) +
                         " violates address order: " +
                         slot_str(tcam.address_of(u)) + " !< " +
                         slot_str(tcam.address_of(v)));
    }
  }
  return report;
}

AuditReport audit_state(const Tcam& tcam, const dag::DependencyGraph& graph,
                        const std::vector<Rule>& expected) {
  AuditReport report = audit_state(tcam, graph);

  // Invariant 2: installed entries are exactly the expected set.
  std::unordered_map<RuleId, const Rule*> want;
  for (const Rule& r : expected) want.emplace(r.id, &r);
  if (tcam.occupied() != want.size()) {
    append(report, "entry count " + std::to_string(tcam.occupied()) +
                       " != expected " + std::to_string(want.size()));
  }
  for (const auto& [id, rule] : want) {
    if (!tcam.contains(id)) {
      append(report, "expected rule " + std::to_string(id) + " not installed");
      continue;
    }
    const Rule& installed = tcam.rule(id);
    if (!(installed.match == rule->match) ||
        !(installed.actions == rule->actions)) {
      append(report, "rule " + std::to_string(id) +
                         " installed with different match/actions");
    }
  }
  for (size_t addr = 0; addr < tcam.capacity(); ++addr) {
    const std::optional<RuleId> id = tcam.at(addr);
    if (id && !want.count(*id)) {
      append(report, "unexpected rule " + std::to_string(*id) + " at " +
                         slot_str(addr));
    }
  }
  return report;
}

}  // namespace ruletris::tcam
