// The update message consumed by the DAG-aware back-end: incremental rule
// removals and additions plus the minimum-DAG delta (Sec. III-B). Mirrors
// compiler::TableUpdate, re-declared here so the back-end stays independent
// of the front-end library (in deployment it sits on the switch and receives
// this via the OpenFlow DAG extension, src/proto).
#pragma once

#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"

namespace ruletris::tcam {

struct BackendUpdate {
  std::vector<flowspace::RuleId> removed;
  std::vector<flowspace::Rule> added;  // priorities ignored by the DAG back-end
  dag::DagDelta dag;
};

}  // namespace ruletris::tcam
