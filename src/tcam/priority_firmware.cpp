#include "tcam/priority_firmware.h"

#include <stdexcept>

#include "util/logging.h"

namespace ruletris::tcam {

using compiler::PrioritizedOp;
using flowspace::RuleId;

PriorityFirmware::PriorityFirmware(Tcam& tcam)
    : tcam_(tcam), occupancy_(tcam.capacity()) {
  for (size_t a = 0; a < tcam.capacity(); ++a) {
    if (!tcam.is_free(a)) occupancy_.set_occupied(a, true);
  }
  if (!layout_sorted()) {
    throw std::invalid_argument("PriorityFirmware: initial layout not priority-sorted");
  }
}

int32_t PriorityFirmware::priority_at(size_t addr) const {
  return tcam_.rule(*tcam_.at(addr)).priority;
}

std::pair<long long, long long> PriorityFirmware::priority_bounds(int32_t priority) const {
  const size_t n = occupancy_.occupied_count();
  long long lo = -1;
  long long hi = static_cast<long long>(tcam_.capacity());

  // Smallest rank with priority > `priority` (ranks ascend with address, and
  // the layout keeps priorities non-decreasing with address).
  {
    size_t lo_rank = 0, hi_rank = n;
    while (lo_rank < hi_rank) {
      const size_t mid = lo_rank + (hi_rank - lo_rank) / 2;
      const size_t addr = *occupancy_.kth_occupied(mid);
      if (priority_at(addr) > priority) {
        hi_rank = mid;
      } else {
        lo_rank = mid + 1;
      }
    }
    if (lo_rank < n) hi = static_cast<long long>(*occupancy_.kth_occupied(lo_rank));
  }
  // Largest rank with priority < `priority`.
  {
    size_t lo_rank = 0, hi_rank = n;  // first rank with priority >= `priority`
    while (lo_rank < hi_rank) {
      const size_t mid = lo_rank + (hi_rank - lo_rank) / 2;
      const size_t addr = *occupancy_.kth_occupied(mid);
      if (priority_at(addr) >= priority) {
        hi_rank = mid;
      } else {
        lo_rank = mid + 1;
      }
    }
    if (lo_rank > 0) lo = static_cast<long long>(*occupancy_.kth_occupied(lo_rank - 1));
  }
  return {lo, hi};
}

void PriorityFirmware::shift_up(size_t from, size_t free_slot) {
  for (size_t a = free_slot; a-- > from;) {
    tcam_.move(a, a + 1);
    occupancy_.set_occupied(a, false);
    occupancy_.set_occupied(a + 1, true);
  }
}

void PriorityFirmware::shift_down(size_t from, size_t free_slot) {
  for (size_t a = free_slot + 1; a <= from; ++a) {
    tcam_.move(a, a - 1);
    occupancy_.set_occupied(a, false);
    occupancy_.set_occupied(a - 1, true);
  }
}

bool PriorityFirmware::insert(const Rule& rule) {
  const auto [lo, hi] = priority_bounds(rule.priority);

  // Free slot inside the allowed band: single write.
  if (hi - lo > 1) {
    auto free_in_band =
        occupancy_.nearest_free_at_or_above(static_cast<size_t>(lo + 1));
    if (free_in_band && static_cast<long long>(*free_in_band) < hi) {
      tcam_.write(*free_in_band, rule);
      occupancy_.set_occupied(*free_in_band, true);
      return true;
    }
  }

  // Otherwise shift the contiguous block toward the nearest free slot.
  std::optional<size_t> hole_up, hole_down;
  if (hi < static_cast<long long>(tcam_.capacity())) {
    hole_up = occupancy_.nearest_free_at_or_above(static_cast<size_t>(hi));
  }
  if (lo >= 0) {
    hole_down = occupancy_.nearest_free_at_or_below(static_cast<size_t>(lo));
  }
  if (!hole_up && !hole_down) {
    util::log_warn("PriorityFirmware: TCAM full on insert");
    return false;
  }
  const long long cost_up =
      hole_up ? static_cast<long long>(*hole_up) - hi : -1;
  const long long cost_down = hole_down ? lo - static_cast<long long>(*hole_down) : -1;

  if (hole_up && (!hole_down || cost_up <= cost_down)) {
    shift_up(static_cast<size_t>(hi), *hole_up);
    tcam_.write(static_cast<size_t>(hi), rule);
    occupancy_.set_occupied(static_cast<size_t>(hi), true);
  } else {
    shift_down(static_cast<size_t>(lo), *hole_down);
    tcam_.write(static_cast<size_t>(lo), rule);
    occupancy_.set_occupied(static_cast<size_t>(lo), true);
  }
  return true;
}

void PriorityFirmware::remove(RuleId id) {
  if (!tcam_.contains(id)) return;
  const size_t addr = tcam_.address_of(id);
  tcam_.erase(addr);
  occupancy_.set_occupied(addr, false);
}

bool PriorityFirmware::modify(const Rule& rule) {
  if (!tcam_.contains(rule.id)) return insert(rule);
  const Rule& installed = tcam_.rule(rule.id);
  if (installed.priority == rule.priority) {
    // Same band: an in-place entry rewrite suffices (OpenFlow modify keeps
    // the match; only actions can change).
    if (installed.actions != rule.actions) {
      tcam_.modify_actions(rule.id, rule.actions);
    }
    return true;
  }
  // Naive firmware reprioritizes by delete + insert.
  remove(rule.id);
  return insert(rule);
}

bool PriorityFirmware::apply(const compiler::PrioritizedUpdate& update) {
  for (const PrioritizedOp& op : update) {
    switch (op.kind) {
      case PrioritizedOp::Kind::kAdd:
        if (!insert(op.rule)) return false;
        break;
      case PrioritizedOp::Kind::kDelete:
        remove(op.rule.id);
        break;
      case PrioritizedOp::Kind::kModify:
        if (!modify(op.rule)) return false;
        break;
    }
  }
  return true;
}

bool PriorityFirmware::layout_sorted() const {
  const size_t n = occupancy_.occupied_count();
  int32_t prev = INT32_MIN;
  for (size_t k = 0; k < n; ++k) {
    const int32_t p = priority_at(*occupancy_.kth_occupied(k));
    if (p < prev) return false;
    prev = p;
  }
  return true;
}

}  // namespace ruletris::tcam
