// TCAM device model.
//
// The TCAM is an addressed array of rule entries where, on a lookup that
// matches several entries, the entry at the HIGHEST physical address wins —
// the physical-location priority encoding used by commodity switching ASICs
// (Sec. II-a). Entry writes are serialized and each costs a fairly constant
// time; the paper's emulation estimates TCAM update time as
// (#entry writes) x 0.6 ms, which this model reproduces. A delete is a mask
// invalidation and is treated as free.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flowspace/rule.h"

namespace ruletris::tcam {

using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;

/// Average latency of one TCAM entry write/move (paper Sec. VII-A(c)).
inline constexpr double kEntryWriteMs = 0.6;

class Tcam {
 public:
  explicit Tcam(size_t capacity);

  size_t capacity() const { return slots_.size(); }
  size_t occupied() const { return by_id_.size(); }
  size_t free_slots() const { return capacity() - occupied(); }

  bool is_free(size_t addr) const;
  /// Rule id stored at `addr`, or nullopt for a free slot.
  std::optional<RuleId> at(size_t addr) const;
  bool contains(RuleId id) const { return by_id_.count(id) != 0; }
  size_t address_of(RuleId id) const;
  /// Address of `id`, or nullopt when not installed — one hash probe where
  /// a contains() + address_of() pair would pay two.
  std::optional<size_t> address_if(RuleId id) const {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) return std::nullopt;
    return it->second;
  }
  const Rule& rule(RuleId id) const;

  /// Installs a new entry into a free slot (1 entry write).
  void write(size_t addr, Rule rule);

  /// Moves the entry at `from` to the free slot `to` (1 entry write; the old
  /// slot is invalidated for free).
  void move(size_t from, size_t to);

  /// Invalidates the entry at `addr` (free).
  void erase(size_t addr);

  /// erase() that moves the dropped entry out — the journal snapshots it
  /// for the inverse write without a rule copy on the apply fast path.
  Rule take(size_t addr);

  /// Rewrites the actions of an installed entry in place (1 entry write).
  void modify_actions(RuleId id, flowspace::ActionList actions);

  /// Highest-address match wins (hardware lookup semantics).
  const Rule* lookup(const Packet& p) const;

  /// Entries from highest address (matched first) to lowest.
  std::vector<Rule> entries_high_to_low() const;

  struct Stats {
    size_t entry_writes = 0;  // moves + new installs + in-place modifies
    size_t moves = 0;         // subset of entry_writes caused by relocation
    size_t erases = 0;

    double update_time_ms() const {
      return static_cast<double>(entry_writes) * kEntryWriteMs;
    }
  };

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Primitive-operation kinds reported to the observer.
  enum class Op { kWrite, kMove, kErase, kModify };

  /// Observer invoked after every primitive completes, with the device in
  /// its new state. Lets tests verify per-operation atomicity: lookups stay
  /// semantically correct at *every* intermediate step of an update
  /// schedule, which is what makes the paper's move chains hitless.
  using OpObserver = std::function<void(Op op, size_t addr)>;
  void set_op_observer(OpObserver observer) { observer_ = std::move(observer); }

  std::string to_string() const;

 private:
  void notify(Op op, size_t addr) {
    if (observer_) observer_(op, addr);
  }

  std::vector<std::optional<Rule>> slots_;  // index == physical address
  std::unordered_map<RuleId, size_t> by_id_;
  Stats stats_;
  OpObserver observer_;
};

}  // namespace ruletris::tcam
