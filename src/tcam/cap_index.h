// Incrementally maintained dependency caps for the DAG scheduler.
//
// Algorithm 1's chain search probes, for the entry at address a, the lowest
// installed-successor address (upward landing cap) and the highest
// installed-predecessor address (downward cap). Scanning the graph on every
// probe costs O(degree) — fatal when a default-like rule has degree O(n).
// This index keeps, per vertex, the ordered set of its installed neighbour
// addresses, and mirrors the min/max into two address-indexed arrays, so
//
//   * every BFS probe is one array load (O(1)),
//   * insert_bounds() is one hash lookup + set min/max (O(1)),
//   * each TCAM primitive (write/move/erase) and each graph-edge change
//     costs O(degree_of_touched_vertex · log) to maintain — paid once per
//     mutation instead of once per probe.
//
// The per-vertex sets are kept for *uninstalled* vertices too: an
// evict + reinsert of a high-degree rule then re-derives its insert bounds
// in O(1) instead of rescanning every neighbour.
#pragma once

#include <cstddef>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dag/dependency_graph.h"
#include "tcam/tcam.h"

namespace ruletris::tcam {

class CapIndex {
 public:
  explicit CapIndex(size_t capacity);

  /// Recomputes everything from scratch — used after external (test-driven)
  /// mutation of the scheduler's graph, and at construction. O(V + E log).
  void rebuild(const Tcam& tcam, const dag::DependencyGraph& graph);

  /// Lowest installed-successor address of the entry at `addr`
  /// (capacity sentinel when unconstrained). The entry must be installed.
  long long lo_succ_at(size_t addr) const { return lo_succ_[addr]; }
  /// Highest installed-predecessor address of the entry at `addr`
  /// (-1 sentinel when unconstrained).
  long long hi_pred_at(size_t addr) const { return hi_pred_[addr]; }

  /// Exclusive insert bounds (highest predecessor, lowest successor) for a
  /// rule that may or may not be installed.
  std::pair<long long, long long> bounds_of(flowspace::RuleId id) const;

  // Entry lifecycle — call AFTER the corresponding Tcam mutation.
  void on_write(flowspace::RuleId id, size_t addr,
                const dag::DependencyGraph& graph, const Tcam& tcam);
  void on_move(size_t from, size_t to, const dag::DependencyGraph& graph,
               const Tcam& tcam);
  void on_erase(flowspace::RuleId id, size_t addr,
                const dag::DependencyGraph& graph, const Tcam& tcam);

  // Graph deltas — order relative to the graph mutation does not matter
  // (only TCAM addresses are consulted).
  void on_add_edge(flowspace::RuleId u, flowspace::RuleId v, const Tcam& tcam);
  void on_remove_edge(flowspace::RuleId u, flowspace::RuleId v, const Tcam& tcam);
  /// Call after the entry was erased (if installed) and the graph vertex
  /// removed; drops the per-vertex record.
  void on_remove_vertex(flowspace::RuleId v) { caps_.erase(v); }

 private:
  struct VertexCaps {
    std::set<size_t> succ_addrs;  // addresses of installed successors
    std::set<size_t> pred_addrs;  // addresses of installed predecessors
  };

  /// Refreshes the address-array cells for `id` if it is installed.
  void refresh_cells(flowspace::RuleId id, const Tcam& tcam);
  void refresh_cells_at(size_t addr, const VertexCaps& caps);

  size_t capacity_;
  std::unordered_map<flowspace::RuleId, VertexCaps> caps_;
  std::vector<long long> lo_succ_;  // per address; capacity_ when unconstrained
  std::vector<long long> hi_pred_;  // per address; -1 when unconstrained
};

}  // namespace ruletris::tcam
