// Incrementally maintained dependency caps for the DAG scheduler.
//
// Algorithm 1's chain search probes, for the entry at address a, the lowest
// installed-successor address (upward landing cap) and the highest
// installed-predecessor address (downward cap). Scanning the graph on every
// probe costs O(degree) — fatal when a default-like rule has degree O(n).
// This index keeps two address-indexed cell arrays (lo_succ_/hi_pred_) that
// are *always exact* for installed entries, so every BFS probe is one array
// load (O(1)).
//
// Per-vertex ordered neighbour-address sets back the cells, but they are
// hydrated lazily: a vertex's set is built from the graph + TCAM the first
// time an operation actually needs it (a cap can *decrease* — erase, move,
// edge removal — or insert bounds are requested for the vertex), and is
// maintained incrementally from then on. Operations that only tighten a cap
// (writes, edge additions) fold the new address into the cells directly and
// touch only already-hydrated sets. This keeps the amortized per-mutation
// cost at the documented O(degree_of_touched_vertex · log) while making
// rebuild() — and the warm-boot restore path, which adopts externally
// computed cells via load_cells() — allocation-free O(V + E) instead of an
// O(E log) full set construction.
#pragma once

#include <cstddef>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dag/dependency_graph.h"
#include "tcam/tcam.h"

namespace ruletris::tcam {

class CapIndex {
 public:
  explicit CapIndex(size_t capacity);

  /// Recomputes the cells from scratch and drops all hydrated per-vertex
  /// state — used after external (test-driven) mutation of the scheduler's
  /// graph, and at construction. O(V + E), no per-edge allocation.
  void rebuild(const Tcam& tcam, const dag::DependencyGraph& graph);

  /// Warm-boot fast path: adopts externally computed cap cells (e.g. derived
  /// from a frozen layout's flat index/address arrays) and drops all
  /// hydrated per-vertex state. Both vectors must have exactly `capacity`
  /// entries; free slots use the sentinels (capacity, -1).
  void load_cells(std::vector<long long> lo_succ, std::vector<long long> hi_pred);

  /// Lowest installed-successor address of the entry at `addr`
  /// (capacity sentinel when unconstrained). The entry must be installed.
  long long lo_succ_at(size_t addr) const { return lo_succ_[addr]; }
  /// Highest installed-predecessor address of the entry at `addr`
  /// (-1 sentinel when unconstrained).
  long long hi_pred_at(size_t addr) const { return hi_pred_[addr]; }

  /// Exclusive insert bounds (highest predecessor, lowest successor) for a
  /// rule that may or may not be installed. Hydrates the rule's set, so a
  /// follow-up evict + reinsert answers in O(1).
  std::pair<long long, long long> bounds_of(flowspace::RuleId id,
                                            const dag::DependencyGraph& graph,
                                            const Tcam& tcam);

  // Entry lifecycle — call AFTER the corresponding Tcam mutation.
  void on_write(flowspace::RuleId id, size_t addr,
                const dag::DependencyGraph& graph, const Tcam& tcam);
  void on_move(size_t from, size_t to, const dag::DependencyGraph& graph,
               const Tcam& tcam);
  void on_erase(flowspace::RuleId id, size_t addr,
                const dag::DependencyGraph& graph, const Tcam& tcam);

  // Graph deltas. Safe to call just before or just after the graph mutation
  // itself (hydration folds the delta in idempotently); the scheduler calls
  // them after.
  void on_add_edge(flowspace::RuleId u, flowspace::RuleId v,
                   const dag::DependencyGraph& graph, const Tcam& tcam);
  void on_remove_edge(flowspace::RuleId u, flowspace::RuleId v,
                      const dag::DependencyGraph& graph, const Tcam& tcam);
  /// Call after the entry was erased (if installed) and the graph vertex
  /// removed; drops the per-vertex record.
  void on_remove_vertex(flowspace::RuleId v) { caps_.erase(v); }

 private:
  struct VertexCaps {
    std::set<size_t> succ_addrs;  // addresses of installed successors
    std::set<size_t> pred_addrs;  // addresses of installed predecessors
  };

  /// Returns the vertex's caps, building them from the graph + TCAM on
  /// first touch. Presence in caps_ == hydrated.
  VertexCaps& hydrate(flowspace::RuleId id, const dag::DependencyGraph& graph,
                      const Tcam& tcam);

  /// Refreshes the cells for `id` from its hydrated caps, if installed.
  void refresh_cells(flowspace::RuleId id, const VertexCaps& caps,
                     const Tcam& tcam);
  void refresh_cells_at(size_t addr, const VertexCaps& caps);

  size_t capacity_;
  std::unordered_map<flowspace::RuleId, VertexCaps> caps_;
  std::vector<long long> lo_succ_;  // per address; capacity_ when unconstrained
  std::vector<long long> hi_pred_;  // per address; -1 when unconstrained
};

}  // namespace ruletris::tcam
