#include "tcam/soft_table.h"

#include <algorithm>
#include <limits>

#include "util/hash.h"

namespace ruletris::tcam {

using flowspace::FieldId;
using flowspace::kAllFields;
using flowspace::kNumFields;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;

size_t SoftTable::ArrayHash::operator()(const MaskKey& k) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < kNumFields; i += 2) {
    const uint64_t word =
        (static_cast<uint64_t>(k[i]) << 32) |
        (i + 1 < kNumFields ? static_cast<uint64_t>(k[i + 1]) : 0u);
    h = util::hash_pair(h, word);
  }
  return h;
}

namespace {

std::array<uint32_t, kNumFields> mask_key_of(const Rule& r) {
  std::array<uint32_t, kNumFields> k{};
  for (FieldId f : kAllFields) {
    k[flowspace::field_index(f)] = r.match.field(f).mask;
  }
  return k;
}

std::array<uint32_t, kNumFields> value_key_of(const Rule& r) {
  std::array<uint32_t, kNumFields> k{};
  for (FieldId f : kAllFields) {
    k[flowspace::field_index(f)] = r.match.field(f).value;
  }
  return k;
}

}  // namespace

SoftTable::SoftTable(const std::vector<Rule>& rules) {
  for (const Rule& r : rules) insert(r);
}

void SoftTable::refresh_order() {
  order_.resize(tuples_.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
    if (tuples_[a].max_priority != tuples_[b].max_priority) {
      return tuples_[a].max_priority > tuples_[b].max_priority;
    }
    return a < b;  // stable, deterministic chain
  });
}

void SoftTable::recompute_max(Tuple& t) {
  t.max_priority = std::numeric_limits<int32_t>::min();
  for (const auto& [key, entries] : t.buckets) {
    (void)key;
    for (const Entry& e : entries) {
      t.max_priority = std::max(t.max_priority, e.rule.priority);
    }
  }
}

void SoftTable::insert(const Rule& rule) {
  if (by_id_.count(rule.id)) return;  // ids are unique table-wide
  const MaskKey masks = mask_key_of(rule);
  auto [it, created] = tuple_index_.try_emplace(masks, tuples_.size());
  if (created) {
    tuples_.emplace_back();
    tuples_.back().masks = masks;
    tuples_.back().max_priority = std::numeric_limits<int32_t>::min();
  }
  Tuple& t = tuples_[it->second];
  const MaskKey values = value_key_of(rule);
  t.buckets[values].push_back(Entry{rule, next_seq_++});
  ++t.entries;
  by_id_[rule.id] = Locator{it->second, values};
  const bool order_stale = created || rule.priority > t.max_priority;
  t.max_priority = std::max(t.max_priority, rule.priority);
  if (order_stale) refresh_order();
}

bool SoftTable::erase(RuleId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  Tuple& t = tuples_[it->second.tuple];
  auto bit = t.buckets.find(it->second.key);
  auto& entries = bit->second;
  int32_t erased_priority = std::numeric_limits<int32_t>::min();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].rule.id == id) {
      erased_priority = entries[i].rule.priority;
      entries.erase(entries.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (entries.empty()) t.buckets.erase(bit);
  --t.entries;
  by_id_.erase(it);
  if (erased_priority == t.max_priority) {
    recompute_max(t);
    refresh_order();
  }
  return true;
}

const Rule* SoftTable::lookup(const Packet& p) const {
  const Rule* best = nullptr;
  uint64_t best_seq = 0;
  int32_t best_priority = std::numeric_limits<int32_t>::min();
  for (size_t idx : order_) {
    const Tuple& t = tuples_[idx];
    if (t.entries == 0) continue;
    // Chain early exit: every later tuple has max_priority <= this one's, so
    // nothing downstream can beat an established strictly-higher hit. An
    // equal-priority entry could still win on lower insertion seq, so the
    // cut is on strict inequality only.
    if (best != nullptr && best_priority > t.max_priority) break;
    MaskKey key{};
    for (size_t f = 0; f < kNumFields; ++f) key[f] = p.fields[f] & t.masks[f];
    auto it = t.buckets.find(key);
    if (it == t.buckets.end()) continue;
    for (const Entry& e : it->second) {
      if (best == nullptr || e.rule.priority > best_priority ||
          (e.rule.priority == best_priority && e.seq < best_seq)) {
        best = &e.rule;
        best_priority = e.rule.priority;
        best_seq = e.seq;
      }
    }
  }
  return best;
}

const Rule* SoftTable::lookup_counted(const Packet& p) {
  ++stats_.lookups;
  const Rule* best = nullptr;
  uint64_t best_seq = 0;
  int32_t best_priority = std::numeric_limits<int32_t>::min();
  for (size_t idx : order_) {
    const Tuple& t = tuples_[idx];
    if (t.entries == 0) continue;
    if (best != nullptr && best_priority > t.max_priority) break;
    ++stats_.tuples_probed;
    MaskKey key{};
    for (size_t f = 0; f < kNumFields; ++f) key[f] = p.fields[f] & t.masks[f];
    auto it = t.buckets.find(key);
    if (it == t.buckets.end()) continue;
    for (const Entry& e : it->second) {
      if (best == nullptr || e.rule.priority > best_priority ||
          (e.rule.priority == best_priority && e.seq < best_seq)) {
        best = &e.rule;
        best_priority = e.rule.priority;
        best_seq = e.seq;
      }
    }
  }
  return best;
}

}  // namespace ruletris::tcam
