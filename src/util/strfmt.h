// Minimal printf-style string formatting helper.
//
// GCC 12 does not ship std::format, so the project uses this thin,
// type-checked (via -Wformat through the attribute) snprintf wrapper for the
// few places that need formatted strings (logging, bench report rows).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace ruletris::util {

#if defined(__GNUC__)
#define RULETRIS_PRINTF_LIKE(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define RULETRIS_PRINTF_LIKE(fmt_idx, arg_idx)
#endif

/// Formats like printf and returns a std::string.
RULETRIS_PRINTF_LIKE(1, 2)
inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ruletris::util
