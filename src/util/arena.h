// Offset-based binary arena: the container format under frozen artifacts.
//
// An arena blob is a self-contained, position-independent byte image:
//
//   ArenaHeader | section table | 8-aligned payload sections | u32 CRC32
//
// Payloads are flat arrays of trivially-copyable PODs addressed by a
// (kind, elem_size, offset, count) section table; every cross-reference
// inside a payload is an index or a byte offset, never a pointer. The blob
// can therefore be written to disk, mmap'ed back at any address, and read
// *in place* — ArenaView hands out std::span views straight into the
// mapping, no deserialization pass. All integers are little-endian (the
// only hosts we build for; enforced with a static_assert where available).
//
// Safety: ArenaView's constructor validates everything a hostile or
// truncated blob could get wrong — magic, version, declared vs. actual
// size, section-table bounds, per-section bounds/alignment/elem_size, and
// the trailing CRC32 over the whole body — and throws std::runtime_error
// before any payload is interpreted. Writer output is deterministic:
// identical sections produce identical bytes (alignment gaps are zeroed).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/crc32.h"

namespace ruletris::util {

#ifdef __BYTE_ORDER__
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "arena blobs are little-endian");
#endif

struct ArenaHeader {
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t reserved0 = 0;
  uint32_t section_count = 0;
  uint32_t reserved1 = 0;
  uint64_t total_size = 0;  // full blob size, CRC trailer included
};
static_assert(sizeof(ArenaHeader) == 24);
static_assert(std::is_trivially_copyable_v<ArenaHeader>);

struct ArenaSection {
  uint32_t kind = 0;
  uint32_t elem_size = 0;
  uint64_t offset = 0;  // bytes from blob start; multiple of 8
  uint64_t count = 0;   // elements, not bytes
};
static_assert(sizeof(ArenaSection) == 24);
static_assert(std::is_trivially_copyable_v<ArenaSection>);

/// Builds an arena blob section by section. Sections keep insertion order;
/// kinds must be unique within one blob.
class ArenaWriter {
 public:
  ArenaWriter(uint32_t magic, uint16_t version)
      : magic_(magic), version_(version) {}

  template <typename T>
  void add_section(uint32_t kind, std::span<const T> elems) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= 8, "payload elements must be 8-alignable");
    for (const Pending& p : sections_) {
      if (p.kind == kind) {
        throw std::runtime_error("arena: duplicate section kind " +
                                 std::to_string(kind));
      }
    }
    Pending p;
    p.kind = kind;
    p.elem_size = static_cast<uint32_t>(sizeof(T));
    p.count = elems.size();
    p.bytes.resize(elems.size() * sizeof(T));
    if (!elems.empty()) {
      std::memcpy(p.bytes.data(), elems.data(), p.bytes.size());
    }
    sections_.push_back(std::move(p));
  }

  template <typename T>
  void add_section(uint32_t kind, const std::vector<T>& elems) {
    add_section(kind, std::span<const T>(elems));
  }

  /// Assembles header + table + aligned payloads + CRC trailer.
  std::vector<uint8_t> finish() const {
    const size_t table_at = sizeof(ArenaHeader);
    size_t cursor = table_at + sections_.size() * sizeof(ArenaSection);

    std::vector<ArenaSection> table(sections_.size());
    for (size_t i = 0; i < sections_.size(); ++i) {
      cursor = (cursor + 7) & ~size_t{7};
      table[i].kind = sections_[i].kind;
      table[i].elem_size = sections_[i].elem_size;
      table[i].offset = cursor;
      table[i].count = sections_[i].count;
      cursor += sections_[i].bytes.size();
    }
    const size_t total = cursor + 4;  // CRC trailer

    ArenaHeader header;
    header.magic = magic_;
    header.version = version_;
    header.section_count = static_cast<uint32_t>(sections_.size());
    header.total_size = total;

    std::vector<uint8_t> out(total, 0);  // alignment gaps stay zeroed
    std::memcpy(out.data(), &header, sizeof(header));
    if (!table.empty()) {
      std::memcpy(out.data() + table_at, table.data(),
                  table.size() * sizeof(ArenaSection));
    }
    for (size_t i = 0; i < sections_.size(); ++i) {
      if (!sections_[i].bytes.empty()) {
        std::memcpy(out.data() + table[i].offset, sections_[i].bytes.data(),
                    sections_[i].bytes.size());
      }
    }
    const uint32_t crc = crc32(out.data(), total - 4);
    std::memcpy(out.data() + total - 4, &crc, 4);
    return out;
  }

 private:
  struct Pending {
    uint32_t kind = 0;
    uint32_t elem_size = 0;
    uint64_t count = 0;
    std::vector<uint8_t> bytes;
  };

  uint32_t magic_;
  uint16_t version_;
  std::vector<Pending> sections_;
};

/// Zero-copy, fully validated read view over an arena blob. Does not own
/// the bytes; the caller keeps the buffer (or mapping) alive.
class ArenaView {
 public:
  ArenaView(const uint8_t* data, size_t size, uint32_t magic, uint16_t version)
      : data_(data), size_(size) {
    if (size < sizeof(ArenaHeader) + 4) fail("blob shorter than header");
    ArenaHeader header;
    std::memcpy(&header, data, sizeof(header));
    if (header.magic != magic) fail("bad magic");
    if (header.version != version) fail("unsupported version");
    if (header.total_size != size) fail("declared size != actual size");

    const size_t table_bytes =
        size_t{header.section_count} * sizeof(ArenaSection);
    if (sizeof(ArenaHeader) + table_bytes + 4 > size) {
      fail("section table out of bounds");
    }
    uint32_t stored = 0;
    std::memcpy(&stored, data + size - 4, 4);
    if (stored != crc32(data, size - 4)) fail("checksum mismatch");

    table_.resize(header.section_count);
    if (header.section_count != 0) {
      std::memcpy(table_.data(), data + sizeof(ArenaHeader), table_bytes);
    }
    const size_t body_end = size - 4;
    for (const ArenaSection& s : table_) {
      if (s.offset % 8 != 0) fail("misaligned section");
      if (s.elem_size == 0 && s.count != 0) fail("zero-sized elements");
      if (s.offset > body_end ||
          s.count > (body_end - s.offset) / (s.elem_size ? s.elem_size : 1)) {
        fail("section out of bounds");
      }
      for (const ArenaSection& other : table_) {
        if (&other != &s && other.kind == s.kind) fail("duplicate section kind");
      }
    }
  }

  bool has(uint32_t kind) const { return find(kind) != nullptr; }

  /// Typed view of a section's payload; throws when the section is missing
  /// or was written with a different element size.
  template <typename T>
  std::span<const T> section(uint32_t kind) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const ArenaSection* s = find(kind);
    if (s == nullptr) {
      throw std::runtime_error("arena: missing section kind " +
                               std::to_string(kind));
    }
    return typed<T>(*s);
  }

  /// Like section(), but a missing section reads as empty.
  template <typename T>
  std::span<const T> section_or_empty(uint32_t kind) const {
    const ArenaSection* s = find(kind);
    if (s == nullptr) return {};
    return typed<T>(*s);
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  template <typename T>
  std::span<const T> typed(const ArenaSection& s) const {
    if (s.elem_size != sizeof(T)) {
      throw std::runtime_error("arena: element size mismatch in section " +
                               std::to_string(s.kind));
    }
    static_assert(alignof(T) <= 8);
    return {reinterpret_cast<const T*>(data_ + s.offset),
            static_cast<size_t>(s.count)};
  }

  const ArenaSection* find(uint32_t kind) const {
    for (const ArenaSection& s : table_) {
      if (s.kind == kind) return &s;
    }
    return nullptr;
  }

  [[noreturn]] static void fail(const char* what) {
    throw std::runtime_error(std::string("arena: ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  std::vector<ArenaSection> table_;
};

}  // namespace ruletris::util
