// Deterministic Zipf-skewed flow arrival stream with expiry churn.
//
// The traffic engine's packet source, kept abstract (ranks and 64-bit flow
// identities only — mapping a flow to a concrete packet header is the
// engine's job, so util stays free of flowspace dependencies). The stream is
// counter-based: packet `i` of epoch `e` is a pure function of
// (seed, e, i, generation[rank]), never of a shared sequential RNG, so
// worker threads can claim arbitrary index ranges and still produce the
// bit-identical stream a single thread would. Churn — a flow expiring and a
// new flow arriving in its popularity slot — bumps the slot's generation
// counter at epoch boundaries, which keeps the in-epoch lookup phase
// read-only and therefore safely shardable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace ruletris::util {

class FlowStream {
 public:
  FlowStream(uint64_t seed, size_t n_flows, double alpha)
      : seed_(seed), zipf_(n_flows, alpha), generation_(zipf_.universe(), 0) {}

  size_t flows() const { return generation_.size(); }
  double alpha() const { return zipf_.alpha(); }

  struct Event {
    size_t rank = 0;       // popularity slot (0 = hottest)
    uint64_t flow_id = 0;  // identity of the flow currently in that slot
  };

  /// Packet `index` of `epoch`. Thread-safe while no churn() call is racing.
  Event at(uint64_t epoch, uint64_t index) const {
    Rng rng(hash_pair(seed_, hash_pair(epoch, index)));
    Event ev;
    ev.rank = zipf_.sample(rng);
    ev.flow_id = flow_id(ev.rank);
    return ev;
  }

  /// Identity of the flow occupying `rank` right now.
  uint64_t flow_id(size_t rank) const {
    return hash_pair(seed_ ^ 0xf10af10aULL, hash_pair(rank, generation_[rank]));
  }

  /// Applies `events` expiry/arrival pairs for the boundary after `epoch`:
  /// each picks a uniformly random slot — any active flow completes with
  /// equal probability, so hot "elephant" slots persist for many epochs
  /// while the long tail turns over, which is what gives a flow-driven
  /// cache a target worth learning — and replaces its occupant with a fresh
  /// flow identity. Returns the number of slots remapped.
  size_t churn(uint64_t epoch, size_t events) {
    Rng rng(hash_pair(seed_ ^ 0xc4c4c4c4ULL, epoch));
    size_t remapped = 0;
    for (size_t i = 0; i < events; ++i) {
      ++generation_[rng.next_below(generation_.size())];
      ++remapped;
    }
    return remapped;
  }

 private:
  uint64_t seed_;
  ZipfSampler zipf_;
  std::vector<uint32_t> generation_;
};

}  // namespace ruletris::util
