#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/strfmt.h"

namespace ruletris::util {

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::mean() const {
  if (values_.empty()) throw std::logic_error("Samples::mean on empty set");
  return sum() / static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min on empty set");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max on empty set");
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double q) const {
  if (values_.empty()) throw std::logic_error("Samples::percentile on empty set");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string Samples::summary(const char* unit) const {
  if (values_.empty()) return "n/a";
  return strfmt("%.3f [%.3f, %.3f] %s", median(), p10(), p90(), unit);
}

size_t Histogram::bucket_of(double v) {
  // Zero, negatives and NaN land in the underflow bucket together with
  // everything at or below the 1e-3 floor.
  if (!(v > 1e-3)) return 0;
  const double idx = std::floor((std::log10(v) - kMinExp) * kPerDecade);
  if (idx < 0.0) return 1;
  if (idx >= static_cast<double>(kSpan)) return kSpan + 1;
  return 1 + static_cast<size_t>(idx);
}

double Histogram::lower_edge(size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::pow(10.0, kMinExp + static_cast<double>(bucket - 1) / kPerDecade);
}

double Histogram::upper_edge(size_t bucket) const {
  if (bucket >= kSpan + 1) return max_;
  return std::pow(10.0, kMinExp + static_cast<double>(bucket) / kPerDecade);
}

void Histogram::add(double v) {
  ++counts_[bucket_of(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const {
  if (count_ == 0) throw std::logic_error("Histogram::mean on empty set");
  return sum_ / static_cast<double>(count_);
}

double Histogram::min() const {
  if (count_ == 0) throw std::logic_error("Histogram::min on empty set");
  return min_;
}

double Histogram::max() const {
  if (count_ == 0) throw std::logic_error("Histogram::max on empty set");
  return max_;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) throw std::logic_error("Histogram::percentile on empty set");
  // Same rank convention as Samples::percentile over the sorted multiset.
  const double rank = q / 100.0 * static_cast<double>(count_ - 1);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t c = counts_[b];
    if (c == 0) continue;
    if (rank < static_cast<double>(seen + c)) {
      const double frac =
          (rank - static_cast<double>(seen) + 0.5) / static_cast<double>(c);
      const double lo = lower_edge(b);
      const double hi = upper_edge(b);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min_, max_);
    }
    seen += c;
  }
  return max_;
}

std::string Histogram::summary(const char* unit) const {
  if (count_ == 0) return "n/a";
  return strfmt("%.3f [%.3f, %.3f] %s", median(), percentile(10.0),
                percentile(90.0), unit);
}

}  // namespace ruletris::util
