#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/strfmt.h"

namespace ruletris::util {

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::mean() const {
  if (values_.empty()) throw std::logic_error("Samples::mean on empty set");
  return sum() / static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min on empty set");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max on empty set");
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double q) const {
  if (values_.empty()) throw std::logic_error("Samples::percentile on empty set");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string Samples::summary(const char* unit) const {
  if (values_.empty()) return "n/a";
  return strfmt("%.3f [%.3f, %.3f] %s", median(), p10(), p90(), unit);
}

}  // namespace ruletris::util
