// Minimal fixed-size worker pool.
//
// Built for the parallel minimum-DAG builder: a handful of long-lived
// workers pull coarse row chunks off an atomic counter, so the pool only
// needs enqueue + drain. Jobs must not throw (workers would terminate);
// callers catch inside the job and report through their own channels.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ruletris::util {

/// Workers that can actually run concurrently: `requested` clamped to the
/// machine's core count (hardware_concurrency() == 0 reads as 1). Data-
/// parallel perf paths clamp through this — oversubscribing cores only adds
/// context-switch and cache-migration cost — while determinism tests build
/// oversubscribed pools deliberately to widen the interleaving space.
inline size_t effective_workers(size_t requested) {
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  return std::min(std::max<size_t>(1, requested), hw);
}

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t n_threads) {
    if (n_threads == 0) n_threads = 1;
    workers_.reserve(n_threads);
    for (size_t i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock lock(mu_);
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for (auto& w : workers_) w.join();
  }

  size_t size() const { return workers_.size(); }

  /// Enqueues a job for any worker.
  void run(std::function<void()> job) {
    {
      std::unique_lock lock(mu_);
      queue_.push_back(std::move(job));
      ++outstanding_;
    }
    wake_workers_.notify_one();
  }

  /// Blocks until every job enqueued so far has finished.
  void wait_idle() {
    std::unique_lock lock(mu_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock lock(mu_);
        wake_workers_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with a drained queue
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
      {
        std::unique_lock lock(mu_);
        if (--outstanding_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t outstanding_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Shared work cursor for data-parallel loops: workers claim half-open
/// [begin, end) chunks off an atomic counter until the range is exhausted.
/// This is the coarse-chunk pattern the parallel DAG builder and the
/// parallel composition compile both use — results written to per-index
/// slots stay order-independent while load stays balanced.
class ChunkCursor {
 public:
  ChunkCursor(size_t begin, size_t end, size_t chunk)
      : next_(begin), end_(end), chunk_(chunk == 0 ? 1 : chunk) {}

  /// Claims the next chunk; false when the range is exhausted.
  bool next(size_t& chunk_begin, size_t& chunk_end) {
    const size_t b = next_.fetch_add(chunk_);
    if (b >= end_) return false;
    chunk_begin = b;
    chunk_end = std::min(end_, b + chunk_);
    return true;
  }

  /// Chunk size heuristic: coarse enough to amortize the atomic claim,
  /// fine enough to balance ~8 chunks per worker.
  static size_t suggest_chunk(size_t n, size_t n_threads) {
    if (n_threads == 0) n_threads = 1;
    return std::max<size_t>(16, n / (n_threads * 8));
  }

 private:
  std::atomic<size_t> next_;
  size_t end_;
  size_t chunk_;
};

/// Runs one instance of `make_job()` per pool worker and blocks until all
/// finish. Each job owns its per-thread scratch (arenas, cover buffers) in
/// its closure and drains a ChunkCursor, so callers express "parallel for
/// with per-thread state" without touching the pool internals.
template <typename JobFactory>
void run_on_workers(ThreadPool& pool, JobFactory&& make_job) {
  for (size_t t = 0; t < pool.size(); ++t) pool.run(make_job());
  pool.wait_idle();
}

}  // namespace ruletris::util
