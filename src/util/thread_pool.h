// Minimal fixed-size worker pool.
//
// Built for the parallel minimum-DAG builder: a handful of long-lived
// workers pull coarse row chunks off an atomic counter, so the pool only
// needs enqueue + drain. Jobs must not throw (workers would terminate);
// callers catch inside the job and report through their own channels.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ruletris::util {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t n_threads) {
    if (n_threads == 0) n_threads = 1;
    workers_.reserve(n_threads);
    for (size_t i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock lock(mu_);
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for (auto& w : workers_) w.join();
  }

  size_t size() const { return workers_.size(); }

  /// Enqueues a job for any worker.
  void run(std::function<void()> job) {
    {
      std::unique_lock lock(mu_);
      queue_.push_back(std::move(job));
      ++outstanding_;
    }
    wake_workers_.notify_one();
  }

  /// Blocks until every job enqueued so far has finished.
  void wait_idle() {
    std::unique_lock lock(mu_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock lock(mu_);
        wake_workers_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with a drained queue
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
      {
        std::unique_lock lock(mu_);
        if (--outstanding_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t outstanding_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ruletris::util
