// Deterministic pseudo-random number generator (SplitMix64).
//
// Every stochastic component in the repository (ClassBench generator, update
// streams, randomized property tests) draws from this generator with an
// explicit seed so that experiments are exactly reproducible across runs.
#pragma once

#include <cstdint>
#include <limits>

namespace ruletris::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t next_below(uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all far below 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t next_between(uint64_t lo, uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p`.
  bool next_bool(double p) { return next_double() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (size_t i = c.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Picks a weighted index given cumulative weights summing to `total`.
  size_t next_weighted(const double* weights, size_t n) {
    double x = next_double();
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += weights[i];
      if (x < acc) return i;
    }
    return n - 1;
  }

 private:
  uint64_t state_;
};

}  // namespace ruletris::util
