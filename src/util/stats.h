// Sample accumulator with percentile reporting.
//
// The paper reports median with 10th/90th-percentile error bars for every
// figure; this accumulator produces exactly that summary.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ruletris::util {

class Samples {
 public:
  void add(double v) { values_.push_back(v); }
  void clear() { values_.clear(); }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;

  /// Linear-interpolated percentile, `q` in [0, 100].
  double percentile(double q) const;

  double median() const { return percentile(50.0); }
  double p10() const { return percentile(10.0); }
  double p90() const { return percentile(90.0); }

  /// "median [p10, p90]" with the given unit suffix, e.g. "1.20 [0.60, 2.40] ms".
  std::string summary(const char* unit) const;

 private:
  // Kept unsorted until queried; queries sort a copy so add() stays O(1).
  std::vector<double> values_;
};

}  // namespace ruletris::util
