// Sample accumulator with percentile reporting.
//
// The paper reports median with 10th/90th-percentile error bars for every
// figure; this accumulator produces exactly that summary. The Histogram
// variant trades exact percentiles for O(1) memory and lock-free
// mergeability: each thread/session owns its own instance and the owners
// merge at report time, so the hot path never takes a lock.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ruletris::util {

class Samples {
 public:
  void add(double v) { values_.push_back(v); }
  void clear() { values_.clear(); }

  /// Appends every sample of `other` (per-thread accumulators merged at
  /// report time).
  void merge(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;

  /// Linear-interpolated percentile, `q` in [0, 100].
  double percentile(double q) const;

  double median() const { return percentile(50.0); }
  double p10() const { return percentile(10.0); }
  double p90() const { return percentile(90.0); }

  /// "median [p10, p90]" with the given unit suffix, e.g. "1.20 [0.60, 2.40] ms".
  std::string summary(const char* unit) const;

 private:
  // Kept unsorted until queried; queries sort a copy so add() stays O(1).
  std::vector<double> values_;
};

/// Fixed-footprint log-bucketed histogram for latency samples (ms scale).
///
/// Buckets are geometric — kPerDecade per decade over [1e-3, 1e9) ms, with
/// an underflow and an overflow bucket — so percentile queries carry a
/// bounded relative error (one bucket width, ~15%) while add() is a single
/// array increment with no allocation and no synchronization. Sessions and
/// worker threads each own a Histogram and the report path merges them;
/// merging is exact (bucket-wise addition), so merged percentiles equal the
/// percentiles of one histogram fed every sample.
class Histogram {
 public:
  void add(double v);

  /// Bucket-wise addition; equivalent to replaying other's samples here.
  void merge(const Histogram& other);

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;

  /// Percentile estimate, `q` in [0, 100]: linear interpolation inside the
  /// bucket holding the rank, clamped to the exact [min, max] envelope.
  double percentile(double q) const;

  double median() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }

  /// "p50 [p10, p90] unit", matching Samples::summary.
  std::string summary(const char* unit) const;

  /// Exact equality of the merged state (used by determinism tests).
  bool operator==(const Histogram&) const = default;

 private:
  static constexpr int kMinExp = -3;    // bucket 1 starts at 1e-3
  static constexpr int kMaxExp = 9;     // overflow above 1e9
  static constexpr int kPerDecade = 16; // 10^(1/16) ≈ 1.15 bucket width
  static constexpr size_t kSpan =
      static_cast<size_t>(kMaxExp - kMinExp) * kPerDecade;
  static constexpr size_t kBuckets = kSpan + 2;  // + underflow + overflow

  static size_t bucket_of(double v);
  static double lower_edge(size_t bucket);
  double upper_edge(size_t bucket) const;

  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ruletris::util
