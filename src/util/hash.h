// Hash mixing for composite hash-map keys.
//
// Several hot maps key on a *pair* of 64-bit rule ids (the compiler's
// by-pair provenance map, tentative-edge visited sets, the update builder's
// edge ledger). The obvious `h(a)*C + h(b)` combiner collides badly on the
// structured id grids these maps actually see — consecutive id blocks from
// the monotonic rule-id source make (a, b) and (a+1, b-C') land in the same
// slot family. The mixers here finalize each half through splitmix64 and
// fold a full 128-bit product, so grid structure in either coordinate is
// destroyed before the table reduces the hash modulo its bucket count.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ruletris::util {

/// splitmix64 finalizer: bijective avalanche over 64 bits.
inline uint64_t mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-sensitive pair hash: mixes both halves, then folds their 128-bit
/// product so every output bit depends on every input bit of both ids.
/// (`| 1` keeps the multiplier odd and in particular non-zero, so no value
/// of `b` can collapse the product.)
inline size_t hash_pair(uint64_t a, uint64_t b) {
  const unsigned __int128 product =
      static_cast<unsigned __int128>(mix64(a) ^ 0x9e3779b97f4a7c15ULL) *
      static_cast<unsigned __int128>(mix64(b) | 1);
  return static_cast<size_t>(static_cast<uint64_t>(product) ^
                             static_cast<uint64_t>(product >> 64));
}

}  // namespace ruletris::util
