// Zipf-distributed rank sampling for the traffic plane.
//
// Flow popularity in real networks is heavy-tailed; the traffic engine
// models it as Zipf(alpha) over a universe of N concurrent flows. N reaches
// into the millions, so the sampler cannot precompute a CDF table — it uses
// Hörmann's rejection-inversion method, which draws in O(1) expected time
// and O(1) memory for any N and any alpha >= 0 (alpha == 0 degenerates to
// uniform). Sampling is a pure function of the Rng stream handed in, so
// callers that seed a private Rng per packet index get a bit-identical
// arrival stream regardless of how packets are sharded across threads.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/rng.h"

namespace ruletris::util {

class ZipfSampler {
 public:
  /// Zipf over ranks [0, n) with exponent `alpha` (P(rank r) ~ 1/(r+1)^alpha).
  ZipfSampler(size_t n, double alpha)
      : n_(n == 0 ? 1 : n), alpha_(alpha < 0.0 ? 0.0 : alpha) {
    h_x1_ = h_integral(1.5) - 1.0;
    h_n_ = h_integral(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  }

  size_t universe() const { return n_; }
  double alpha() const { return alpha_; }

  /// Draws one rank in [0, n). Expected draws from `rng`: ~1.1.
  size_t sample(Rng& rng) const {
    for (;;) {
      const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
      const double x = h_integral_inverse(u);
      double k = std::floor(x + 0.5);
      if (k < 1.0) k = 1.0;
      if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
      if (k - x <= s_ || u >= h_integral(k + 0.5) - h(k)) {
        return static_cast<size_t>(k) - 1;  // external ranks are 0-based
      }
    }
  }

 private:
  // H(x) = integral of h, with h(x) = x^-alpha; stable near alpha == 1.
  double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - alpha_) * log_x) * log_x;
  }
  double h(double x) const { return std::exp(-alpha_ * std::log(x)); }
  double h_integral_inverse(double x) const {
    double t = x * (1.0 - alpha_);
    if (t < -1.0) t = -1.0;  // fp round-off guard near the left boundary
    return std::exp(helper1(t) * x);
  }
  // log1p(x)/x and expm1(x)/x with series fallbacks at tiny |x|.
  static double helper1(double x) {
    if (std::abs(x) > 1e-8) return std::log1p(x) / x;
    return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
  }
  static double helper2(double x) {
    if (std::abs(x) > 1e-8) return std::expm1(x) / x;
    return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x));
  }

  size_t n_;
  double alpha_;
  double h_x1_ = 0.0;  // H(1.5) - 1
  double h_n_ = 0.0;   // H(n + 0.5)
  double s_ = 0.0;     // rejection shortcut threshold
};

}  // namespace ruletris::util
