// Lightweight leveled logger.
//
// The library itself logs sparingly (warnings for unusual states such as a
// full TCAM); benches and examples use INFO for progress lines. The level is
// a process-global so test binaries can silence output.
#pragma once

#include <string>

namespace ruletris::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-global minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr as "[LEVEL] message" if `level` passes the filter.
void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace ruletris::util
