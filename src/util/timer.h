// Wall-clock timers for the paper's "compilation time" and "firmware time"
// metrics, which are measured computation times.
#pragma once

#include <chrono>

namespace ruletris::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ruletris::util
