// Table-driven CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Shared by the proto codec (frame trailers, a few KB each) and the frozen
// artifact layer (multi-MB policy snapshots whose warm-boot validation sits
// on the restart critical path). Slicing-by-8: eight constexpr-built lookup
// tables let the hot loop fold 8 input bytes per iteration, ~20x faster than
// the bitwise loop the codec used to carry, with identical values.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ruletris::util {

namespace detail {

struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  constexpr Crc32Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

inline constexpr Crc32Tables kCrc32Tables{};

}  // namespace detail

/// CRC32 over `len` bytes. Matches the classic zlib/IEEE value for any
/// implementation of the same polynomial, so callers can switch between the
/// bitwise and sliced loops without invalidating stored checksums.
inline uint32_t crc32(const uint8_t* data, size_t len) {
  const auto& t = detail::kCrc32Tables.t;
  uint32_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    uint32_t a;
    uint32_t b;
    std::memcpy(&a, data, 4);
    std::memcpy(&b, data + 4, 4);  // host is little-endian
    a ^= crc;
    crc = t[7][a & 0xFFu] ^ t[6][(a >> 8) & 0xFFu] ^ t[5][(a >> 16) & 0xFFu] ^
          t[4][a >> 24] ^ t[3][b & 0xFFu] ^ t[2][(b >> 8) & 0xFFu] ^
          t[1][(b >> 16) & 0xFFu] ^ t[0][b >> 24];
    data += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *data++) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ruletris::util
