// Sharded compile pipeline + switch fleet, the cbench-style scale-out path.
//
// The classic Controller replays a pre-compiled log; the ShardedController
// removes the "compile first, replicate after" barrier. K compile shards
// each run the full incremental min-DAG pipeline over the switches they
// own, one ChurnEngine per switch stepped round-robin under a per-shard
// virtual compile clock. Every sealed epoch is published lock-free through
// a frozen::PublishRing — the RTDZ delta blob is the shard-handoff
// currency: the shard captures the policy image after each step, diffs it
// against the previous epoch, seals (wire image, ops, ready time, delta)
// and bumps the ring's atomic epoch counter; switch sessions consume with
// acquire loads and zero locks.
//
// Dispatch is work-stealing over a util::ThreadPool: every worker sweeps
// every session (pump as far as the sealed horizon allows) and every shard
// (compile a quantum of epochs), claiming each via an atomic try-lock.
// A worker that finds its sessions starved steals compile steps from any
// shard; nothing is pinned, nothing blocks.
//
// Determinism: the whole report — per-switch TCAM layouts, wire bytes,
// RTDZ delta chains, virtual makespans — is a pure function of FleetSpec,
// bit-identical for every n_threads. Three mechanisms carry that property:
//   * per-switch rule-id namespaces (flowspace::ScopedRuleIdNamespace), so
//     id allocation never observes cross-switch interleaving;
//   * per-shard virtual compile clocks advanced by a modelled cost per
//     epoch, stepped in a fixed round-robin order, so sealed ready times
//     are schedule-independent;
//   * the session-side horizon rule (SwitchSession::pump_published), so
//     wall-clock publication timing decides only where a session blocks,
//     never the virtual order of its events.
// run() self-checks the sharding (cross-shard delta replay) and the bench
// harness cross-checks whole-fleet fingerprints across thread counts.
//
// Fault tolerance (see DESIGN.md §15): a ChaosSchedule kills compile shards
// at virtual times — surviving shards adopt the orphaned switches by
// verifying the hash-chained RTDZ delta blobs already published, rebuilding
// the compile engine from the pristine task (ids replay identically inside
// the switch's namespace), and resuming publication into a fresh ring the
// session's source splices in at the published frontier. Adoption points
// are virtual-time deterministic via a compile-side horizon rule: an
// adoptable shard never steps past an unresolved kill time, so wall-clock
// kill processing decides only where a shard blocks, never what it seals.
// Sessions quarantine unreachable switches (SessionKnobs.retry) and
// re-admit them through the warm-boot path; quarantined switches are
// excluded from the fleet makespan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/policy_spec.h"
#include "flowspace/rule.h"
#include "frozen/frozen.h"
#include "proto/channel.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/session.h"
#include "runtime/workload.h"

namespace ruletris::runtime {

/// One sealed fleet epoch — the unit a compile shard hands a session.
struct SealedEpoch {
  EncodedEpoch wire;         // encoded batch + message count
  size_t ops = 0;            // rule-level operations the epoch carries
  double ready_vt_ms = 0.0;  // shard virtual compile clock at seal
  uint64_t delta_hash = 0;   // mix of the epoch's RTDZ delta blob bytes
  /// The delta blob itself, retained for replay-audited switches (every
  /// spec.audit_stride-th) and for switches that may need it for failover
  /// reconstruction or quarantine re-admission (chaos targets); empty
  /// elsewhere — the hash chain still covers every epoch of every switch.
  std::shared_ptr<const frozen::Bytes> delta;
};

/// One switch's compile job: policy shape, initial tables, churn stream.
struct SwitchTask {
  compiler::PolicySpec spec;
  std::map<std::string, flowspace::FlowTable> tables;
  ChurnSpec churn;
};

struct FleetSpec {
  size_t n_switches = 8;
  size_t n_shards = 2;   // compile shards; switch i belongs to shard i % K
  size_t n_threads = 1;  // dispatch workers (compile + session pumping)

  // Default workload (used when make_task is unset): per-switch
  // monitor ∥ router composition churned on the monitor leaf with bursty,
  // locality-heavy updates. Fully determined by (seed, switch index).
  size_t updates_per_switch = 32;  // churn epochs; each a burst when enabled
  size_t initial_monitor = 24;     // initial monitor-leaf rules
  size_t initial_router = 16;      // initial router-leaf rules
  BurstSpec burst{.enabled = true};
  uint64_t seed = 1;

  /// Overrides the default workload; called once per switch at init (cheap:
  /// table generation only, compilation happens on the shards). Runs inside
  /// the switch's private rule-id namespace.
  std::function<SwitchTask(size_t sw)> make_task;

  /// Session / wire knobs shared with RuntimeConfig (window, retry policy,
  /// channel, faults, deadline) — the one place backoff parameters live.
  /// Default: clean wire, window 8 (throughput mode).
  SessionKnobs knobs = [] { SessionKnobs k; k.window = 8; return k; }();
  uint64_t fault_seed = 1;
  size_t tcam_capacity = 2048;

  // Modelled compile cost, advancing the owning shard's virtual clock per
  // sealed epoch. Strictly positive so per-ring ready times strictly
  // increase (the horizon rule requires it).
  double compile_base_ms = 0.05;
  double compile_per_op_ms = 0.02;

  /// Every audit_stride-th switch keeps its RTDZ delta blobs and replays
  /// them against the epoch-1 base image when its stream closes; a mismatch
  /// fails the run. 0 disables the audit.
  size_t audit_stride = 16;

  /// Seeded fault schedule: shard kills on virtual compile clocks, agent
  /// blackouts on session virtual clocks. Empty = clean run; the fault
  /// layer costs nothing when unused.
  ChaosSchedule chaos;
  /// Fraction of the modelled compile cost an adopting shard pays per
  /// epoch to re-step an orphaned switch's engine to its published
  /// frontier (replaying known updates is cheaper than compiling fresh).
  double failover_replay_factor = 0.25;
};

struct FleetReport {
  RuntimeReport runtime;  // merged per-session stats (fault counters, hists)
  size_t switches = 0;
  size_t shards = 0;
  size_t threads = 0;

  size_t rule_ops = 0;        // total rule-level updates compiled fleet-wide
  /// Slowest *active* session's virtual commit time. Quarantined switches
  /// are excluded — one dead box may not hold the fleet number hostage;
  /// their own rejoin latencies are reported separately.
  double makespan_ms = 0.0;
  double compile_vt_ms = 0.0; // slowest shard's final virtual compile clock
  double wall_ms = 0.0;       // real time the run took (diagnostic)

  size_t shard_steps = 0;   // epochs sealed across all shards
  size_t steals = 0;        // shard steps run by a non-home worker
  size_t starved_pumps = 0; // session pumps that hit the sealed horizon

  /// Order-independent digest of every switch's final TCAM layout plus its
  /// deterministic session counters — the value the determinism self-check
  /// compares across thread counts.
  uint64_t fleet_fingerprint = 0;
  /// Digest of every switch's RTDZ delta-hash chain (covers the full
  /// compile output, sealed epoch by sealed epoch).
  uint64_t delta_fingerprint = 0;

  size_t replay_audits = 0;  // switches whose delta chain was replayed
  bool replay_ok = true;     // every audited replay reproduced the final image

  // Fault-tolerance outcome (all zero / true on a clean run).
  size_t shard_kills = 0;     // scheduled kills that actually fired
  size_t kills_escaped = 0;   // shards that finished before their kill time
  size_t failovers = 0;       // orphaned switches adopted by survivors
  bool failover_ok = true;    // every adoption: blob chain verified and the
                              // rebuilt engine matched the replayed image
  size_t failover_epochs = 0; // epochs re-stepped during adoptions
  size_t quarantines = 0;     // sessions benched after silent escalation
  size_t readmissions = 0;    // quarantined switches brought back
  size_t active_switches = 0; // never-quarantined sessions (makespan basis)
  size_t active_rule_ops = 0; // their compiled rule ops (throughput basis)
  util::Histogram failover_ms;  // shard kill -> adoption complete (virtual)
  util::Histogram rejoin_ms;    // quarantine entry -> re-admission (virtual)

  /// Order-independent digest of every switch's final TCAM layout alone
  /// (no counters): the value chaos runs compare against clean runs — the
  /// bit-identical-convergence claim.
  uint64_t layout_fingerprint = 0;

  /// Aggregate sustained rule-update throughput in virtual time: active
  /// switches' compiled rule-level operations over the slowest active
  /// switch's commit time (on a clean run that is every switch).
  double updates_per_s() const {
    if (makespan_ms <= 0.0) return 0.0;
    const size_t ops = quarantines > 0 ? active_rule_ops : rule_ops;
    return static_cast<double>(ops) / (makespan_ms / 1000.0);
  }
};

class ShardedController {
 public:
  explicit ShardedController(FleetSpec spec) : spec_(std::move(spec)) {}

  /// Compiles, ships and commits the whole fleet; throws
  /// std::invalid_argument on a malformed spec (validate()) and
  /// std::runtime_error on internal errors. A failed replay audit or
  /// failover verification sets report.replay_ok / report.failover_ok
  /// instead of throwing — the run completes and reports.
  FleetReport run();

  /// Spec sanity: n_switches/n_shards/n_threads > 0, n_shards <= n_switches,
  /// strictly positive compile costs (ready times must strictly increase),
  /// kills on valid shards (at most one each, at least one shard spared),
  /// blackouts on valid switches. Throws std::invalid_argument.
  static void validate(const FleetSpec& spec);

 private:
  FleetSpec spec_;
};

}  // namespace ruletris::runtime
