// Compile half of the runtime: an incremental update stream -> epoch log.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "compiler/policy_spec.h"
#include "flowspace/rule.h"
#include "proto/messages.h"
#include "util/rng.h"

namespace ruletris::compiler {
class RuleTrisCompiler;
}

namespace ruletris::runtime {

/// A compiled controller workload: epoch 1 installs the initial composed
/// table, every later epoch is one incrementally-compiled, barrier-fenced
/// update batch. The controller fans this log out to every switch session.
struct CompiledWorkload {
  std::vector<proto::MessageBatch> epochs;
  /// Composed table the compiler holds after the last epoch — the state
  /// every switch TCAM must converge to.
  std::vector<flowspace::Rule> final_rules;
  /// High-water mark of the composed table across the stream.
  size_t peak_visible = 0;

  size_t suggested_capacity() const {
    return peak_visible + peak_visible / 8 + 128;
  }
};

/// Randomized churn parameters for compile_churn_workload.
struct ChurnSpec {
  std::string leaf;      // member table receiving the churn; "" = first leaf
  size_t updates = 200;  // insert/delete/modify operations
  uint64_t seed = 1;
  double insert_p = 0.35;  // op mix; remainder after insert+delete is modify
  double delete_p = 0.30;
  /// Replacement-rule source; default: monitoring-profile rules.
  std::function<flowspace::Rule(util::Rng&)> make_rule;
  /// Called after each epoch is pushed — after the initial compile (epoch 1)
  /// and after every incremental update — with the epoch number and the live
  /// front-end. The warm-boot freezer (runtime/warm_boot.h) hangs off this
  /// to capture per-epoch frozen images without the workload layer knowing
  /// about serialization.
  std::function<void(size_t epoch, const compiler::RuleTrisCompiler&)> observer;
};

/// Runs the RuleTris front-end over a randomized insert/delete/modify
/// stream against `spec`, packaging the initial compile plus every
/// incremental update as one epoch each. Deterministic in (spec, tables,
/// churn.seed).
CompiledWorkload compile_churn_workload(
    const compiler::PolicySpec& spec,
    std::map<std::string, flowspace::FlowTable> tables, const ChurnSpec& churn);

}  // namespace ruletris::runtime
