// Compile half of the runtime: an incremental update stream -> epoch log.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/policy_spec.h"
#include "flowspace/rule.h"
#include "proto/messages.h"
#include "util/rng.h"

namespace ruletris::compiler {
class RuleTrisCompiler;
}

namespace ruletris::runtime {

/// A compiled controller workload: epoch 1 installs the initial composed
/// table, every later epoch is one incrementally-compiled, barrier-fenced
/// update batch. The controller fans this log out to every switch session.
struct CompiledWorkload {
  std::vector<proto::MessageBatch> epochs;
  /// Composed table the compiler holds after the last epoch — the state
  /// every switch TCAM must converge to.
  std::vector<flowspace::Rule> final_rules;
  /// High-water mark of the composed table across the stream.
  size_t peak_visible = 0;
  /// Rule-level operations per epoch (insert/delete = 1, modify = 2; the
  /// initial install counts one per installed rule; a burst counts its
  /// length). epoch_ops[e - 1] belongs to epoch e; rule_ops is the total —
  /// the numerator of the fleet harness's updates/s.
  std::vector<size_t> epoch_ops;
  size_t rule_ops = 0;

  size_t suggested_capacity() const {
    return peak_visible + peak_visible / 8 + 128;
  }
};

/// Bursty, locality-heavy churn. Real controller update streams are not
/// one-op-per-epoch Poisson processes: a route flap or tenant deploy lands
/// as a correlated burst of rules sharing an address block, then often tears
/// the same block down. With `enabled`, each churn epoch becomes one
/// geometric-length burst compiled incrementally and chained into a single
/// barrier-fenced batch: insert bursts share a dst /locality_bits block
/// (hammering one compile shard, the worst case for prefix sharding), and
/// with probability delete_burst_p a burst instead deletes the most recently
/// inserted rules (LIFO teardown locality).
struct BurstSpec {
  bool enabled = false;
  double continue_p = 0.75;      // geometric length: mean 1 / (1 - p)
  size_t max_burst = 32;         // hard cap on ops per burst
  uint32_t locality_bits = 12;   // inserts share a dst /locality_bits block
  double delete_burst_p = 0.25;  // burst tears down the newest live rules
};

/// Randomized churn parameters for compile_churn_workload.
struct ChurnSpec {
  std::string leaf;      // member table receiving the churn; "" = first leaf
  size_t updates = 200;  // insert/delete/modify operations
  uint64_t seed = 1;
  double insert_p = 0.35;  // op mix; remainder after insert+delete is modify
  double delete_p = 0.30;
  BurstSpec burst;         // off by default: classic one-op epochs
  /// Replacement-rule source; default: monitoring-profile rules.
  std::function<flowspace::Rule(util::Rng&)> make_rule;
  /// Called after each epoch is pushed — after the initial compile (epoch 1)
  /// and after every incremental update — with the epoch number and the live
  /// front-end. The warm-boot freezer (runtime/warm_boot.h) hangs off this
  /// to capture per-epoch frozen images without the workload layer knowing
  /// about serialization.
  std::function<void(size_t epoch, const compiler::RuleTrisCompiler&)> observer;
};

/// Stepwise churn compiler: produces exactly the epoch stream
/// compile_churn_workload packages, but one epoch per step() call. The
/// sharded controller's compile shards hold one engine per switch and
/// interleave steps from many switches under one shard clock — an epoch can
/// be sealed, shipped and even committed on its switch while later epochs
/// are still uncompiled. Deterministic in (spec, tables, churn.seed);
/// compile_churn_workload below is just "step until done".
class ChurnEngine {
 public:
  /// Compiles the initial tables (epoch 1 is not produced yet — the first
  /// step() packages it, so shard clocks can charge it like any epoch).
  ChurnEngine(const compiler::PolicySpec& spec,
              std::map<std::string, flowspace::FlowTable> tables,
              const ChurnSpec& churn);
  ~ChurnEngine();

  /// Epochs this engine will produce: the initial install + one per update.
  size_t total_epochs() const { return churn_.updates + 1; }
  size_t produced() const { return produced_; }
  bool done() const { return produced_ >= total_epochs(); }

  struct Step {
    proto::MessageBatch batch;
    size_t ops = 0;  // rule-level operations the epoch carries
  };
  /// Compiles and packages the next epoch. Must not be called when done().
  Step step();

  /// Live front-end (for frozen capture after each step).
  const compiler::RuleTrisCompiler& frontend() const { return *frontend_; }
  /// Composed table after the steps so far.
  std::vector<flowspace::Rule> current_rules() const;
  size_t peak_visible() const { return peak_visible_; }

 private:
  ChurnSpec churn_;  // make_rule resolved to a concrete generator
  std::string leaf_;
  std::unique_ptr<compiler::RuleTrisCompiler> frontend_;
  std::vector<flowspace::RuleId> live_;
  util::Rng rng_;
  size_t produced_ = 0;
  size_t peak_visible_ = 0;
};

/// Runs the RuleTris front-end over a randomized insert/delete/modify
/// stream against `spec`, packaging the initial compile plus every
/// incremental update as one epoch each. Deterministic in (spec, tables,
/// churn.seed).
CompiledWorkload compile_churn_workload(
    const compiler::PolicySpec& spec,
    std::map<std::string, flowspace::FlowTable> tables, const ChurnSpec& churn);

}  // namespace ruletris::runtime
