// Switch-agent endpoint of the asynchronous runtime.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "proto/channel.h"
#include "proto/codec.h"
#include "switchsim/switch.h"

namespace ruletris::runtime {

/// The firmware-side half of a session. Decodes data frames and applies the
/// barrier-fenced epoch batches to the DAG firmware strictly in epoch order:
/// out-of-order arrivals wait in a reorder buffer, duplicates and
/// already-applied epochs are discarded (and re-acked, so lost acks heal).
/// The cumulative applied epoch anchors both acks and resync. A restart
/// models the agent process dying: the volatile reorder buffer is lost, the
/// applied TCAM/firmware state — hardware — survives.
class SwitchAgent {
 public:
  SwitchAgent(size_t tcam_capacity, const proto::ChannelModel& channel);

  struct AppliedEpoch {
    uint64_t epoch = 0;
    double firmware_ms = 0.0;  // wall-clock schedule computation (diagnostic)
    double tcam_ms = 0.0;      // modelled entry writes x 0.6 ms
    double apply_ms = 0.0;     // virtual time the application occupied
    size_t entry_writes = 0;   // real per-epoch TCAM writes (installs + moves)
    size_t moves = 0;          // relocation subset — the schedule-dependent cost
    size_t messages = 0;
    bool ok = true;
  };

  struct Ingest {
    std::vector<AppliedEpoch> applied;  // epochs applied by this frame, in order
    bool duplicate = false;  // frame carried an epoch at or below last_applied
    double done_ms = 0.0;    // virtual time the agent finished (ack send time)
  };

  /// Handles a data frame delivered at virtual `now_ms`. Application is
  /// serialized on the agent: work starts at max(now, busy-until) and each
  /// applied epoch charges its parse + TCAM time.
  Ingest on_data(uint64_t epoch, const std::shared_ptr<const proto::Bytes>& payload,
                 double now_ms);

  /// Restart: drops the reorder buffer; applied state survives.
  void restart();

  uint64_t last_applied() const { return last_applied_; }
  size_t buffered() const { return buffer_.size(); }
  size_t restarts() const { return restarts_; }
  size_t duplicates() const { return duplicates_; }

  const switchsim::SimulatedSwitch& device() const { return switch_; }
  switchsim::SimulatedSwitch& device() { return switch_; }

 private:
  switchsim::SimulatedSwitch switch_;
  proto::ChannelModel channel_;
  std::map<uint64_t, std::shared_ptr<const proto::Bytes>> buffer_;
  uint64_t last_applied_ = 0;
  double busy_until_ms_ = 0.0;
  size_t restarts_ = 0;
  size_t duplicates_ = 0;
};

}  // namespace ruletris::runtime
