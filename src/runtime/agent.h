// Switch-agent endpoint of the asynchronous runtime.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "proto/channel.h"
#include "proto/codec.h"
#include "switchsim/switch.h"
#include "tcam/apply_journal.h"
#include "util/rng.h"

namespace ruletris::runtime {

/// The firmware-side half of a session. Decodes data frames and applies the
/// barrier-fenced epoch batches to the DAG firmware strictly in epoch order:
/// out-of-order arrivals wait in a reorder buffer, duplicates and
/// already-applied epochs are discarded (and re-acked, so lost acks heal).
/// The cumulative applied epoch anchors both acks and resync. A restart
/// models the agent process dying: the volatile reorder buffer is lost, the
/// applied TCAM/firmware state — hardware — survives.
///
/// Crash consistency: every apply runs as a write-ahead-journaled firmware
/// transaction. With crash_p > 0 a seeded per-op crash can tear a move
/// chain mid-flight; the agent goes down (dropping frames) until its
/// restart path runs journal recovery — rollback for a torn chain,
/// roll-forward for a sealed one — before the barrier-anchored resync.
/// Frames whose CRC32 fails are NACKed for retransmission, never parsed.
class SwitchAgent {
 public:
  SwitchAgent(size_t tcam_capacity, const proto::ChannelModel& channel,
              double crash_p = 0.0, uint64_t crash_seed = 0);

  struct AppliedEpoch {
    uint64_t epoch = 0;
    double firmware_ms = 0.0;  // wall-clock schedule computation (diagnostic)
    double tcam_ms = 0.0;      // modelled entry writes x 0.6 ms
    double apply_ms = 0.0;     // virtual time the application occupied
    size_t entry_writes = 0;   // real per-epoch TCAM writes (installs + moves)
    size_t moves = 0;          // relocation subset — the schedule-dependent cost
    size_t messages = 0;
    bool ok = true;
    tcam::ApplyStatus status = tcam::ApplyStatus::kOk;
  };

  struct Ingest {
    std::vector<AppliedEpoch> applied;  // epochs applied by this frame, in order
    bool duplicate = false;  // frame carried an epoch at or below last_applied
    bool corrupt = false;    // frame failed its CRC32; NACK for retransmit
    bool crashed = false;    // firmware died mid-apply; recovery required
    bool dropped = false;    // agent is down (crashed, not yet recovered)
    double done_ms = 0.0;    // virtual time the agent finished (ack send time)
  };

  /// Handles a data frame delivered at virtual `now_ms`. Application is
  /// serialized on the agent: work starts at max(now, busy-until) and each
  /// applied epoch charges its parse + TCAM time.
  Ingest on_data(uint64_t epoch, const std::shared_ptr<const proto::Bytes>& payload,
                 double now_ms);

  /// Restart: drops the reorder buffer; applied state survives. The restart
  /// path always runs journal recovery first (a no-op when the journal is
  /// clean) — a restart racing a torn transaction must repair it before the
  /// resync anchor is read.
  void restart();

  struct Recovery {
    bool rolled_forward = false;  // sealed txn: crashed epoch counts applied
    size_t undone_ops = 0;
    size_t undone_writes = 0;     // TCAM writes spent undoing the torn chain
    double recovery_ms = 0.0;     // modelled cost: undone writes x 0.6 ms
  };

  /// Crash recovery (phase 1): replays the journal, repairs the TCAM and
  /// advances last_applied on roll-forward. The agent stays down — call
  /// power_on() once the modelled recovery time has elapsed.
  Recovery recover_and_restart();

  /// Crash recovery (phase 2): the rebooted agent accepts frames again at
  /// virtual time `now_ms` (the crash time plus the modelled recovery cost).
  void power_on(double now_ms) {
    down_ = false;
    busy_until_ms_ = std::max(busy_until_ms_, now_ms);
  }
  bool down() const { return down_; }

  uint64_t last_applied() const { return last_applied_; }
  size_t buffered() const { return buffer_.size(); }
  size_t restarts() const { return restarts_; }
  size_t duplicates() const { return duplicates_; }
  size_t crashes() const { return crashes_; }
  size_t corrupt_frames() const { return corrupt_frames_; }

  const switchsim::SimulatedSwitch& device() const { return switch_; }
  switchsim::SimulatedSwitch& device() { return switch_; }

 private:
  switchsim::SimulatedSwitch switch_;
  proto::ChannelModel channel_;
  tcam::ApplyJournal journal_;
  std::map<uint64_t, std::shared_ptr<const proto::Bytes>> buffer_;
  uint64_t last_applied_ = 0;
  double busy_until_ms_ = 0.0;
  size_t restarts_ = 0;
  size_t duplicates_ = 0;
  size_t crashes_ = 0;
  size_t corrupt_frames_ = 0;
  bool down_ = false;
  uint64_t crash_epoch_ = 0;  // epoch being applied when the crash hit
  double crash_p_ = 0.0;
  util::Rng crash_rng_;
};

}  // namespace ruletris::runtime
