// Wire frames of the asynchronous runtime.
//
// The runtime speaks proto::codec on the payload and adds a fixed 9-byte
// header (u8 kind + u64 epoch) that carries the session sequencing state:
// which epoch a data frame installs, up to which epoch an ack commits, and
// where a restarted agent asks the controller to resync from. Data payloads
// are encoded once by the controller and shared read-only across sessions
// and retransmits, so charging channel latency from `wire_bytes()` always
// reflects the actual serialized size.
#pragma once

#include <cstdint>
#include <memory>

#include "proto/codec.h"

namespace ruletris::runtime {

enum class FrameKind : uint8_t {
  kData = 1,    // controller -> agent: one barrier-fenced epoch batch
  kAck = 2,     // agent -> controller: cumulative "applied through epoch"
  kResync = 3,  // agent -> controller: restarted; last applied epoch enclosed
  kNack = 4,    // agent -> controller: epoch frame failed its CRC; resend
};

inline constexpr size_t kFrameHeaderBytes = 9;  // u8 kind + u64 epoch

struct Frame {
  FrameKind kind = FrameKind::kData;
  /// kData: epoch the payload installs; kAck: cumulative applied epoch;
  /// kResync: the agent's last applied epoch after a restart.
  uint64_t epoch = 0;
  std::shared_ptr<const proto::Bytes> payload;  // kData only

  size_t wire_bytes() const {
    return kFrameHeaderBytes + (payload ? payload->size() : 0);
  }
};

}  // namespace ruletris::runtime
