#include "runtime/warm_boot.h"

#include <stdexcept>
#include <utility>

namespace ruletris::runtime {

void EpochFreezer::observe(uint64_t epoch, const compiler::RuleTrisCompiler& frontend) {
  frozen::PolicyImage image = frozen::capture_policy(frontend, epoch);
  if (!has_base()) {
    base_epoch_ = epoch;
    base_blob_ = frozen::freeze(image);
  } else {
    const frozen::PolicyDelta delta = frozen::diff(latest_, image);
    proto::SnapshotPatch patch;
    patch.epoch = epoch;
    patch.blob = frozen::encode_delta(delta);
    proto::MessageBatch batch;
    batch.push_back(std::move(patch));
    patch_frames_.push_back(proto::encode_batch(batch));
  }
  latest_ = std::move(image);
}

ThawedController::ThawedController(frozen::Bytes base_blob)
    : owned_(std::move(base_blob)), frozen_(owned_.data(), owned_.size()) {}

ThawedController::ThawedController(const std::string& path)
    : mapped_(std::in_place, path),
      frozen_(mapped_->data(), mapped_->size()) {}

size_t ThawedController::restore_scheduler(size_t t,
                                           tcam::DagScheduler& scheduler) const {
  return frozen_.restore(t, scheduler);
}

const frozen::PolicyImage& ThawedController::image() const {
  if (!image_) {
    frozen::PolicyImage image;
    image.epoch = frozen_.epoch();
    image.tables.reserve(frozen_.n_tables());
    for (size_t t = 0; t < frozen_.n_tables(); ++t) {
      image.tables.push_back(frozen_.materialize(t));
    }
    flowspace::ensure_rule_id_floor(frozen_.id_floor());
    image_ = std::move(image);
  }
  return *image_;
}

frozen::PolicyImage& ThawedController::mutable_image() {
  image();  // force materialization
  return *image_;
}

uint64_t ThawedController::apply_patch_frame(const proto::Bytes& frame) {
  const proto::MessageBatch batch = proto::decode_batch(frame);
  const proto::SnapshotPatch* patch = nullptr;
  for (const proto::Message& msg : batch) {
    if (const auto* p = std::get_if<proto::SnapshotPatch>(&msg)) {
      if (patch != nullptr) {
        throw std::runtime_error("warm boot: frame carries multiple patches");
      }
      patch = p;
    }
  }
  if (patch == nullptr) {
    throw std::runtime_error("warm boot: frame carries no snapshot patch");
  }
  const frozen::PolicyDelta delta = frozen::decode_delta(patch->blob);
  if (delta.to_epoch != patch->epoch) {
    throw std::runtime_error("warm boot: patch epoch disagrees with its blob");
  }
  frozen::apply_delta(mutable_image(), delta);
  return image_->epoch;
}

}  // namespace ruletris::runtime
