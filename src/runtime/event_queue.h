// Virtual-time event loop.
//
// A min-heap of (due, seq) closures drives each switch session: frame
// deliveries, retransmit timers and agent restarts are all events. Time is
// virtual — it advances to the due time of the event being run, never by
// wall clock — so a session's entire behaviour is a pure function of the
// events posted and the order they were posted in. Ties on `due` break by
// push order, which makes runs bit-identical across machines, optimization
// levels and thread counts (each session owns a private queue).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

namespace ruletris::runtime {

class EventQueue {
 public:
  using Fn = std::function<void()>;

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Due time of the earliest queued event; +inf when the queue is empty.
  /// The sharded controller's pump uses this to order gated sends against
  /// events without popping anything.
  double next_due() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : std::max(heap_.top().due, now_);
  }

  /// Schedules `fn` at virtual time `due`; a due time in the past fires
  /// "now" (no time travel).
  void post(double due, Fn fn) {
    if (due < now_) due = now_;
    heap_.push(Event{due, seq_++, std::move(fn)});
  }

  /// Pops and runs the earliest event; false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    // priority_queue::top() is const; moving the closure out before pop is
    // safe because the heap order does not depend on the closure.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    // max(): after an external advance_to() the heap may still hold events
    // that were due before the new now; they run late, time never rewinds.
    if (ev.due > now_) now_ = ev.due;
    ev.fn();
    return true;
  }

  /// Advances the clock to `t` without running anything — fleet round
  /// barriers park a session here until the slowest peer commits. Events
  /// already queued with due < t fire "late" at t, in due order.
  void advance_to(double t) {
    if (t > now_) now_ = t;
  }

  void clear() { heap_ = {}; }

 private:
  struct Event {
    double due;
    uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t seq_ = 0;
  double now_ = 0.0;
};

}  // namespace ruletris::runtime
