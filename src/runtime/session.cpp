#include "runtime/session.h"

#include <algorithm>

#include "tcam/auditor.h"
#include "tcam/tcam.h"
#include "util/hash.h"

namespace ruletris::runtime {

SwitchSession::SwitchSession(const SessionConfig& config,
                             const std::vector<EncodedEpoch>& epochs)
    : cfg_(config),
      owned_source_(std::make_unique<VectorEpochSource>(epochs)),
      source_(owned_source_.get()),
      wire_(config.knobs.channel, config.knobs.faults,
            util::mix64(config.seed ^ 0x71c3)),
      // A separate restart stream: restart times must not shift when the
      // frame count changes (different window sizes, retransmit patterns).
      restart_rng_(util::mix64(config.seed ^ 0x7e57a27)),
      // Backoff jitter has its own stream too: escalated retries must not
      // perturb restart or wire draws (and vice versa).
      backoff_rng_(util::mix64(config.seed ^ 0xbacc0ff5)),
      // The crash stream is separate again: one Bernoulli per journaled
      // firmware op, a pure function of the session seed and the op
      // sequence, independent of wire traffic.
      agent_(config.tcam_capacity, config.knobs.channel,
             config.knobs.faults.crash_p, util::mix64(config.seed ^ 0xc4a54)) {
  if (cfg_.knobs.window == 0) cfg_.knobs.window = 1;
  first_send_ms_.assign(source_->available() + 1, -1.0);
  stats_.epochs = source_->available();
}

SwitchSession::SwitchSession(const SessionConfig& config, const EpochSource& source)
    : cfg_(config),
      source_(&source),
      wire_(config.knobs.channel, config.knobs.faults,
            util::mix64(config.seed ^ 0x71c3)),
      restart_rng_(util::mix64(config.seed ^ 0x7e57a27)),
      backoff_rng_(util::mix64(config.seed ^ 0xbacc0ff5)),
      agent_(config.tcam_capacity, config.knobs.channel,
             config.knobs.faults.crash_p, util::mix64(config.seed ^ 0xc4a54)) {
  if (cfg_.knobs.window == 0) cfg_.knobs.window = 1;
  first_send_ms_.assign(source_->available() + 1, -1.0);
  stats_.epochs = source_->available();
}

SessionStats SwitchSession::run(const std::vector<flowspace::Rule>& expected) {
  start();
  while (!done_ && events_.run_next()) {
    if (events_.now() > cfg_.knobs.deadline_ms) break;  // safety net, not control
  }
  return finalize(expected);
}

void SwitchSession::start() {
  if (source_->complete() && source_->available() == 0) {
    finish();
    return;
  }
  send_window();
  arm_timer();
  schedule_restart();
}

void SwitchSession::set_send_limit(uint64_t max_epoch) {
  send_limit_ = max_epoch;
  // Raising the gate opens window slots immediately (the retry timer is
  // already armed; a lost first send is retransmitted like any other).
  if (!done_) send_window();
}

bool SwitchSession::run_until_committed(uint64_t epoch) {
  while (!done_ && base_ <= epoch) {
    if (!events_.run_next()) return false;        // stalled: nothing queued
    if (events_.now() > cfg_.knobs.deadline_ms) return false;
  }
  return done_ || base_ > epoch;
}

SessionStats SwitchSession::finalize(const std::vector<flowspace::Rule>& expected) {
  stats_.epochs = source_->available();
  stats_.makespan_ms = done_ ? stats_.makespan_ms : events_.now();
  stats_.wire = wire_.counters();
  stats_.restarts = agent_.restarts();
  stats_.duplicates = agent_.duplicates();
  stats_.quarantined_end = quarantined_;
  verify(expected);
  return stats_;
}

uint64_t SwitchSession::highest_sendable() const {
  return std::min<uint64_t>(source_->available(), send_limit_);
}

void SwitchSession::send_window() {
  if (quarantined_) return;  // probes own the wire until re-admission
  const uint64_t highest = highest_sendable();
  while (next_to_send_ <= highest && next_to_send_ < base_ + cfg_.knobs.window) {
    // A sealed-but-not-yet-virtually-ready epoch stays gated here; the
    // pump_published() loop sends it once the clock reaches its ready time.
    // Complete vector logs have ready 0, so this never gates the classic
    // path.
    if (source_->ready_ms(next_to_send_) > events_.now()) break;
    send_epoch(next_to_send_, SendKind::kFirst);
    ++next_to_send_;
  }
}

void SwitchSession::send_epoch(uint64_t epoch, SendKind kind) {
  ++stats_.data_frames_sent;
  if (kind == SendKind::kRetransmit) ++stats_.retransmits;
  if (kind == SendKind::kResyncReplay) ++stats_.resync_replays;
  if (kind == SendKind::kNackResend) ++stats_.nack_retransmits;

  const double now = events_.now();
  if (first_send_ms_.size() <= epoch) first_send_ms_.resize(epoch + 1, -1.0);
  if (first_send_ms_[epoch] < 0.0) first_send_ms_[epoch] = now;

  Frame frame;
  frame.kind = FrameKind::kData;
  frame.epoch = epoch;
  frame.payload = source_->at(epoch).wire;
  for (const FaultyWire::Delivery& d : wire_.arrivals(now, frame.wire_bytes())) {
    if (d.corrupted) {
      // The frame arrives damaged: one seeded bit of the wire image is
      // flipped in a private copy (the shared log bytes stay pristine for
      // every other delivery and retransmit).
      const uint64_t bits = d.corrupt_bits;
      events_.post(d.at_ms, [this, epoch, now, bits] {
        const proto::Bytes& pristine = *source_->at(epoch).wire;
        auto damaged = std::make_shared<proto::Bytes>(pristine);
        if (!damaged->empty()) {
          const size_t bit = static_cast<size_t>(bits % (damaged->size() * 8));
          (*damaged)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        }
        on_data_delivered(epoch, now, std::move(damaged));
      });
    } else {
      events_.post(d.at_ms, [this, epoch, now] {
        on_data_delivered(epoch, now, source_->at(epoch).wire);
      });
    }
  }
}

void SwitchSession::send_ack_frame(FrameKind kind, uint64_t epoch, double at_ms) {
  for (const FaultyWire::Delivery& d : wire_.arrivals(at_ms, kFrameHeaderBytes)) {
    // A corrupted header-only frame fails its integrity check at the
    // controller and is discarded: corruption degenerates to loss.
    if (d.corrupted) continue;
    switch (kind) {
      case FrameKind::kAck:
        events_.post(d.at_ms, [this, epoch] { on_ack(epoch); });
        break;
      case FrameKind::kResync:
        events_.post(d.at_ms, [this, epoch] { on_resync(epoch); });
        break;
      case FrameKind::kNack:
        events_.post(d.at_ms, [this, epoch] { on_nack(epoch); });
        break;
      case FrameKind::kData:
        break;  // not an agent->controller frame
    }
  }
}

void SwitchSession::on_data_delivered(
    uint64_t epoch, double send_ms,
    const std::shared_ptr<const proto::Bytes>& payload) {
  if (done_) return;
  const double now = events_.now();
  if (agent_dark(now)) {
    // The agent's box is dark: the frame is gone, no NACK, no ack.
    ++stats_.blackout_drops;
    return;
  }
  stats_.channel_ms.add(now - send_ms);
  handle_ingest(epoch, agent_.on_data(epoch, payload, now));
}

void SwitchSession::handle_ingest(uint64_t epoch,
                                  const SwitchAgent::Ingest& ingest) {
  if (ingest.dropped) return;  // agent down mid-recovery; the frame is gone
  if (ingest.corrupt) {
    // Caught by the CRC before parsing: ask for the pristine bytes again
    // instead of waiting out a full retry timeout.
    ++stats_.nacks;
    send_ack_frame(FrameKind::kNack, epoch, ingest.done_ms);
    return;
  }
  // Epochs that applied before a crash in the same drain still count.
  for (const SwitchAgent::AppliedEpoch& applied : ingest.applied) {
    stats_.firmware_ms.add(applied.firmware_ms);
    stats_.tcam_ms.add(applied.tcam_ms);
    stats_.entry_writes += applied.entry_writes;
    stats_.moves += applied.moves;
    if (!applied.ok) ++stats_.apply_failures;
    if (applied.status == tcam::ApplyStatus::kTableFull) ++stats_.table_full;
    if (applied.status == tcam::ApplyStatus::kRolledBack) ++stats_.rolled_back;
  }
  if (ingest.crashed) {
    on_crash(ingest.done_ms);
    return;
  }
  // Cumulative ack after every data frame, barrier-anchored at the last
  // applied fence. Duplicates re-ack so a lost ack cannot wedge the window.
  send_ack_frame(FrameKind::kAck, agent_.last_applied(), ingest.done_ms);
}

void SwitchSession::on_crash(double crash_ms) {
  ++stats_.crashes;
  // Journal recovery runs as the first step of the agent's restart path:
  // rollback restores the pre-update TCAM (each undone move is a real
  // entry write), roll-forward just commits a sealed transaction.
  const SwitchAgent::Recovery recovery = agent_.recover_and_restart();
  stats_.recovered_writes += recovery.undone_writes;
  if (recovery.rolled_forward) ++stats_.roll_forwards;
  // The agent stays down for the modelled repair time; frames delivered in
  // the gap are dropped like against any dead process.
  events_.post(crash_ms + recovery.recovery_ms, [this] { on_recovered(); });
}

void SwitchSession::on_recovered() {
  if (done_) return;
  agent_.power_on(events_.now());
  // A recovery completing inside a blackout window cannot announce itself;
  // the quarantine probe (or the next restart) picks the agent up later.
  if (agent_dark(events_.now())) return;
  // Only after recovery does the resync anchor mean anything: the TCAM now
  // equals a committed prefix of the epoch log.
  send_ack_frame(FrameKind::kResync, agent_.last_applied(), events_.now());
}

void SwitchSession::on_ack(uint64_t acked) {
  if (done_) return;
  ++stats_.acks;
  const bool progress = acked >= base_;
  // A progressing ack reaching a quarantined session is proof of life —
  // re-admit before the normal bookkeeping resumes the window.
  if (quarantined_ && progress) readmit(acked);
  advance_base(acked);
  if (done_) return;
  if (progress) {
    send_window();
    arm_timer();
  }
}

void SwitchSession::on_nack(uint64_t epoch) {
  if (done_ || quarantined_) return;
  // Resend only if the epoch is still in flight; a NACK for a committed
  // epoch is stale (a duplicate of the pristine frame got through first).
  if (epoch >= base_ && epoch < next_to_send_) {
    send_epoch(epoch, SendKind::kNackResend);
  }
}

void SwitchSession::advance_base(uint64_t acked) {
  if (acked < base_) return;  // stale or duplicate ack
  silent_rounds_ = 0;
  loss_ewma_ *= 1.0 - cfg_.knobs.retry.loss_alpha;  // progress: decay estimate
  const double now = events_.now();
  for (uint64_t e = base_; e <= acked; ++e) {
    stats_.ack_ms.add(now - first_send_ms_[e]);
  }
  base_ = acked + 1;
  maybe_finish();
}

void SwitchSession::maybe_finish() {
  // Done only when the log is final *and* fully committed. With a growing
  // source the completion flag may flip after the last ack was processed
  // (the producer's close races the consumer in wall time, never in
  // virtual time) — pump_published() re-checks via this path.
  if (done_) return;
  if (source_->complete() && base_ > source_->available() &&
      next_to_send_ > source_->available()) {
    finish();
  }
}

double SwitchSession::retry_interval_ms() {
  const RetryPolicy& rp = cfg_.knobs.retry;
  // Round 0 always equals the configured timeout — exactly the historical
  // fixed timer, so fault-free virtual trajectories never move. Only a
  // *consecutive* silent round escalates.
  if (!rp.adaptive || silent_rounds_ == 0) return rp.timeout_ms;
  double t = rp.timeout_ms * (1.0 + rp.loss_gain * loss_ewma_);
  for (size_t r = 0; r < silent_rounds_ && t < rp.max_timeout_ms; ++r) {
    t *= rp.backoff;
  }
  t = std::min(t, rp.max_timeout_ms);
  // Seeded jitter desynchronizes the retransmit storms of many sessions
  // backing off through the same brownout window.
  return t * (1.0 + rp.jitter * (2.0 * backoff_rng_.next_double() - 1.0));
}

void SwitchSession::arm_timer() {
  const uint64_t generation = ++timer_generation_;
  events_.post(events_.now() + retry_interval_ms(),
               [this, generation] { on_timer(generation); });
}

void SwitchSession::on_timer(uint64_t generation) {
  if (done_ || generation != timer_generation_) return;
  if (base_ < next_to_send_) {
    // No ack movement for a full retry interval: go-back-N over the
    // in-flight window. The agent discards epochs it already applied and
    // re-acks, so over-retransmission only costs wire time.
    ++stats_.timeouts;
    ++silent_rounds_;
    // One loss observation per silent round, not per lost frame: the
    // estimator tracks "is this wire currently swallowing whole windows".
    const RetryPolicy& rp = cfg_.knobs.retry;
    loss_ewma_ += rp.loss_alpha * (1.0 - loss_ewma_);
    if (rp.quarantine_after > 0 && silent_rounds_ >= rp.quarantine_after) {
      enter_quarantine();
      return;
    }
    for (uint64_t e = base_; e < next_to_send_; ++e) {
      send_epoch(e, SendKind::kRetransmit);
    }
  }
  arm_timer();
}

void SwitchSession::enter_quarantine() {
  quarantined_ = true;
  ++stats_.quarantines;
  quarantine_enter_ms_ = events_.now();
  ++timer_generation_;  // park the retry timer; probes own liveness now
  arm_probe();
}

void SwitchSession::readmit(uint64_t anchor) {
  quarantined_ = false;
  ++stats_.readmissions;
  stats_.rejoin_ms.add(events_.now() - quarantine_enter_ms_);
  ++probe_generation_;  // cancel the probe loop
  silent_rounds_ = 0;
  // Warm-boot catch-up check: the fleet verifies the frozen base image plus
  // the hash-chained delta blobs that bring the switch to its anchor.
  if (cfg_.on_readmit && !cfg_.on_readmit(anchor)) ++stats_.readmit_failures;
  // The TCAM the switch rejoins with must already satisfy every structural
  // invariant — re-admission may not launder a torn table back in.
  const tcam::AuditReport audit = tcam::audit_state(
      agent_.device().tcam(), agent_.device().dag_firmware().graph());
  if (!audit.clean()) ++stats_.rejoin_audit_violations;
}

void SwitchSession::arm_probe() {
  const uint64_t generation = ++probe_generation_;
  const RetryPolicy& rp = cfg_.knobs.retry;
  const double gap = rp.probe_interval_ms *
                     (1.0 + rp.jitter * (2.0 * backoff_rng_.next_double() - 1.0));
  events_.post(events_.now() + gap, [this, generation] { on_probe(generation); });
}

void SwitchSession::on_probe(uint64_t generation) {
  if (done_ || !quarantined_ || generation != probe_generation_) return;
  ++stats_.probe_sends;
  // Header-only liveness probe through the same faulty wire as everything
  // else (it can be dropped, delayed or corrupted like any frame).
  for (const FaultyWire::Delivery& d :
       wire_.arrivals(events_.now(), kFrameHeaderBytes)) {
    if (d.corrupted) continue;
    events_.post(d.at_ms, [this] { on_probe_delivered(); });
  }
  arm_probe();
}

void SwitchSession::on_probe_delivered() {
  if (done_ || !quarantined_) return;
  const double now = events_.now();
  if (agent_dark(now) || agent_.down()) return;  // still dark; keep probing
  // The agent answers with its resync anchor; on_resync() re-admits.
  send_ack_frame(FrameKind::kResync, agent_.last_applied(), now);
}

bool SwitchSession::agent_dark(double t) const {
  for (const BlackoutWindow& b : cfg_.blackouts) {
    if (b.covers(t)) return true;
  }
  return false;
}

void SwitchSession::schedule_restart() {
  if (cfg_.knobs.faults.restart_every_ms <= 0.0) return;
  const double gap =
      cfg_.knobs.faults.restart_every_ms * (0.5 + restart_rng_.next_double());
  events_.post(events_.now() + gap, [this] { on_restart(); });
}

void SwitchSession::on_restart() {
  if (done_) return;
  if (agent_.down()) {
    // The agent is already dead, mid crash-recovery: restarting a dead
    // process is a no-op, and the recovery path will send the resync.
    schedule_restart();
    return;
  }
  agent_.restart();
  // The restarted agent announces where it stands; frames that were in its
  // reorder buffer are gone and will be replayed from the log. Inside a
  // blackout window the announcement cannot leave the box.
  if (!agent_dark(events_.now())) {
    send_ack_frame(FrameKind::kResync, agent_.last_applied(), events_.now());
  }
  schedule_restart();
}

void SwitchSession::on_resync(uint64_t last_applied) {
  if (done_) return;
  ++stats_.resyncs;
  if (quarantined_) readmit(last_applied);
  // A resync anchored below the committed frontier lost a race: the agent
  // restarted again (or reordering inverted two resyncs) while an earlier
  // replay was still in flight.
  if (last_applied + 1 < base_) ++stats_.stale_resyncs;
  // The report doubles as a cumulative ack: everything at or below it is
  // durably applied.
  advance_base(last_applied);
  if (done_) return;
  // Replay from the *min* anchor: a racing second restart may have wiped a
  // reorder buffer that held epochs the first resync's replay already
  // covered, so replaying only [base_, next) could strand them until a
  // timeout. Epochs the agent does hold are discarded as duplicates.
  const uint64_t replay_from = std::min<uint64_t>(last_applied + 1, base_);
  for (uint64_t e = replay_from; e < next_to_send_; ++e) {
    send_epoch(e, SendKind::kResyncReplay);
  }
  send_window();
  arm_timer();
}

bool SwitchSession::pump_published() {
  // Events and gated first sends interleave in strict virtual-time order,
  // bounded by the sealed horizon: ready_ms is strictly increasing, so any
  // still-unsealed epoch's send lies strictly beyond ready_ms(available()),
  // and no event at or past that bound may run until more epochs seal.
  // Wall-clock publication timing therefore only decides *where the session
  // blocks*, never the virtual order of anything — which is what keeps the
  // fleet report bit-identical across thread counts.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  bool progress = false;
  for (;;) {
    maybe_finish();
    if (done_) return progress;
    if (events_.now() > cfg_.knobs.deadline_ms) return false;  // safety net
    // Read complete() before available(): the source's contract makes a
    // count read after a true completion flag final, so a racing "publish
    // last epoch, then close" can never yield (complete, stale count) here.
    const bool complete = source_->complete();
    const uint64_t avail = source_->available();
    const double horizon =
        complete ? kInf : (avail == 0 ? 0.0 : source_->ready_ms(avail));
    double t_send = kInf;
    if (!quarantined_ &&
        next_to_send_ <= std::min<uint64_t>(avail, send_limit_) &&
        next_to_send_ < base_ + cfg_.knobs.window) {
      t_send = std::max(events_.now(), source_->ready_ms(next_to_send_));
    }
    const double t_event = events_.next_due();
    if (t_send <= t_event) {  // tie resolves send-first, deterministically
      if (t_send == kInf) return progress;  // idle: starved on the compiler
      // A sealed epoch's send never exceeds the horizon (ready monotone),
      // so advancing the clock to it is always safe.
      events_.advance_to(t_send);
      send_epoch(next_to_send_, SendKind::kFirst);
      ++next_to_send_;
      progress = true;
      continue;
    }
    if (t_event >= horizon) return progress;  // beyond sealed horizon: starve
    events_.run_next();
    progress = true;
  }
}

void SwitchSession::finish() {
  done_ = true;
  stats_.completed = true;
  stats_.makespan_ms = events_.now();
  events_.clear();
}

void SwitchSession::verify(const std::vector<flowspace::Rule>& expected) {
  bool ok = stats_.completed && stats_.apply_failures == 0 &&
            stats_.readmit_failures == 0 &&
            stats_.rejoin_audit_violations == 0;
  // The firmware state auditor checks all three invariants: address-ordered
  // DAG edges, exact expected-set match, no duplicate/orphan slots.
  const tcam::AuditReport audit =
      tcam::audit_state(agent_.device().tcam(),
                        agent_.device().dag_firmware().graph(), expected);
  ok = ok && audit.clean();
  ok = ok && agent_.device().dag_firmware().layout_valid();
  stats_.converged = ok;
}

}  // namespace ruletris::runtime
