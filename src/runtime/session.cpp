#include "runtime/session.h"

#include <algorithm>

#include "tcam/tcam.h"
#include "util/hash.h"

namespace ruletris::runtime {

SwitchSession::SwitchSession(const SessionConfig& config,
                             const std::vector<EncodedEpoch>& epochs)
    : cfg_(config),
      epochs_(epochs),
      wire_(config.channel, config.faults, util::mix64(config.seed ^ 0x71c3)),
      // A separate restart stream: restart times must not shift when the
      // frame count changes (different window sizes, retransmit patterns).
      restart_rng_(util::mix64(config.seed ^ 0x7e57a27)),
      agent_(config.tcam_capacity, config.channel) {
  if (cfg_.window == 0) cfg_.window = 1;
  first_send_ms_.assign(epochs_.size() + 1, -1.0);
  stats_.epochs = epochs_.size();
}

SessionStats SwitchSession::run(const std::vector<flowspace::Rule>& expected) {
  if (epochs_.empty()) {
    finish();
  } else {
    send_window();
    arm_timer();
    schedule_restart();
    while (!done_ && events_.run_next()) {
      if (events_.now() > cfg_.deadline_ms) break;  // safety net, not control
    }
  }
  stats_.makespan_ms = done_ ? stats_.makespan_ms : events_.now();
  stats_.wire = wire_.counters();
  stats_.restarts = agent_.restarts();
  stats_.duplicates = agent_.duplicates();
  verify(expected);
  return stats_;
}

void SwitchSession::send_window() {
  while (next_to_send_ <= epochs_.size() &&
         next_to_send_ < base_ + cfg_.window) {
    send_epoch(next_to_send_, SendKind::kFirst);
    ++next_to_send_;
  }
}

void SwitchSession::send_epoch(uint64_t epoch, SendKind kind) {
  ++stats_.data_frames_sent;
  if (kind == SendKind::kRetransmit) ++stats_.retransmits;
  if (kind == SendKind::kResyncReplay) ++stats_.resync_replays;

  const double now = events_.now();
  if (first_send_ms_[epoch] < 0.0) first_send_ms_[epoch] = now;

  Frame frame;
  frame.kind = FrameKind::kData;
  frame.epoch = epoch;
  frame.payload = epochs_[epoch - 1].wire;
  for (double at : wire_.arrivals(now, frame.wire_bytes())) {
    events_.post(at, [this, epoch, now] { on_data_delivered(epoch, now); });
  }
}

void SwitchSession::send_ack_frame(FrameKind kind, uint64_t epoch, double at_ms) {
  for (double at : wire_.arrivals(at_ms, kFrameHeaderBytes)) {
    if (kind == FrameKind::kAck) {
      events_.post(at, [this, epoch] { on_ack(epoch); });
    } else {
      events_.post(at, [this, epoch] { on_resync(epoch); });
    }
  }
}

void SwitchSession::on_data_delivered(uint64_t epoch, double send_ms) {
  if (done_) return;
  const double now = events_.now();
  stats_.channel_ms.add(now - send_ms);

  const SwitchAgent::Ingest ingest =
      agent_.on_data(epoch, epochs_[epoch - 1].wire, now);
  for (const SwitchAgent::AppliedEpoch& applied : ingest.applied) {
    stats_.firmware_ms.add(applied.firmware_ms);
    stats_.tcam_ms.add(applied.tcam_ms);
    stats_.entry_writes += applied.entry_writes;
    stats_.moves += applied.moves;
    if (!applied.ok) ++stats_.apply_failures;
  }
  // Cumulative ack after every data frame, barrier-anchored at the last
  // applied fence. Duplicates re-ack so a lost ack cannot wedge the window.
  send_ack_frame(FrameKind::kAck, agent_.last_applied(), ingest.done_ms);
}

void SwitchSession::on_ack(uint64_t acked) {
  if (done_) return;
  ++stats_.acks;
  const bool progress = acked >= base_;
  advance_base(acked);
  if (done_) return;
  if (progress) {
    send_window();
    arm_timer();
  }
}

void SwitchSession::advance_base(uint64_t acked) {
  if (acked < base_) return;  // stale or duplicate ack
  const double now = events_.now();
  for (uint64_t e = base_; e <= acked; ++e) {
    stats_.ack_ms.add(now - first_send_ms_[e]);
  }
  base_ = acked + 1;
  if (base_ > epochs_.size() && next_to_send_ > epochs_.size()) finish();
}

void SwitchSession::arm_timer() {
  const uint64_t generation = ++timer_generation_;
  events_.post(events_.now() + cfg_.retry_timeout_ms,
               [this, generation] { on_timer(generation); });
}

void SwitchSession::on_timer(uint64_t generation) {
  if (done_ || generation != timer_generation_) return;
  if (base_ < next_to_send_) {
    // No ack movement for a full retry interval: go-back-N over the
    // in-flight window. The agent discards epochs it already applied and
    // re-acks, so over-retransmission only costs wire time.
    ++stats_.timeouts;
    for (uint64_t e = base_; e < next_to_send_; ++e) {
      send_epoch(e, SendKind::kRetransmit);
    }
  }
  arm_timer();
}

void SwitchSession::schedule_restart() {
  if (cfg_.faults.restart_every_ms <= 0.0) return;
  const double gap =
      cfg_.faults.restart_every_ms * (0.5 + restart_rng_.next_double());
  events_.post(events_.now() + gap, [this] { on_restart(); });
}

void SwitchSession::on_restart() {
  if (done_) return;
  agent_.restart();
  // The restarted agent announces where it stands; frames that were in its
  // reorder buffer are gone and will be replayed from the log.
  send_ack_frame(FrameKind::kResync, agent_.last_applied(), events_.now());
  schedule_restart();
}

void SwitchSession::on_resync(uint64_t last_applied) {
  if (done_) return;
  ++stats_.resyncs;
  // The report doubles as a cumulative ack: everything at or below it is
  // durably applied.
  advance_base(last_applied);
  if (done_) return;
  // Replay every uncommitted epoch already sent; the window then refills
  // from the log as usual.
  for (uint64_t e = base_; e < next_to_send_; ++e) {
    send_epoch(e, SendKind::kResyncReplay);
  }
  send_window();
  arm_timer();
}

void SwitchSession::finish() {
  done_ = true;
  stats_.completed = true;
  stats_.makespan_ms = events_.now();
  events_.clear();
}

void SwitchSession::verify(const std::vector<flowspace::Rule>& expected) {
  bool ok = stats_.completed && stats_.apply_failures == 0;
  const tcam::Tcam& tcam = agent_.device().tcam();
  ok = ok && tcam.occupied() == expected.size();
  if (ok) {
    for (const flowspace::Rule& rule : expected) {
      if (!tcam.contains(rule.id)) {
        ok = false;
        break;
      }
      const flowspace::Rule& installed = tcam.rule(rule.id);
      if (!(installed.match == rule.match) ||
          !(installed.actions == rule.actions)) {
        ok = false;
        break;
      }
    }
  }
  ok = ok && agent_.device().dag_firmware().layout_valid();
  stats_.converged = ok;
}

}  // namespace ruletris::runtime
