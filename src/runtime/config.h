// Configuration for the asynchronous control-plane runtime.
#pragma once

#include <cstddef>
#include <cstdint>

#include "proto/channel.h"

namespace ruletris::runtime {

/// Seeded fault mix applied per frame on the simulated wire, in both
/// directions (data frames and acks alike). Reordering emerges from delay
/// jitter: a delayed frame lands after frames that were sent later.
struct FaultSpec {
  double drop_p = 0.0;       // frame silently lost
  double duplicate_p = 0.0;  // frame delivered twice
  double delay_p = 0.0;      // frame delayed by uniform(0, delay_ms)
  double delay_ms = 0.0;
  /// Rough virtual-ms interval between switch-agent restarts (0 = never).
  /// A restart drops the agent's volatile reorder buffer and triggers the
  /// barrier-anchored resync path; applied TCAM state survives (hardware).
  double restart_every_ms = 0.0;
  /// Per-journaled-op probability that the agent's firmware crashes
  /// mid-transaction (mid move chain included). The torn TCAM persists
  /// until journal recovery runs on the agent's restart path.
  double crash_p = 0.0;
  /// Per-frame probability of a single-bit flip in transit. Corrupted data
  /// frames fail the codec CRC32 and are NACKed for retransmission;
  /// corrupted header-only frames (acks/resyncs/nacks) are discarded.
  double corrupt_p = 0.0;

  bool any() const {
    return drop_p > 0 || duplicate_p > 0 || delay_p > 0 ||
           restart_every_ms > 0 || crash_p > 0 || corrupt_p > 0;
  }

  /// The default non-trivial mix used by `--fault-seed` and the soak test.
  static FaultSpec chaos() {
    FaultSpec f;
    f.drop_p = 0.12;
    f.duplicate_p = 0.10;
    f.delay_p = 0.25;
    f.delay_ms = 6.0;
    f.restart_every_ms = 400.0;
    return f;
  }

  /// chaos() plus firmware crashes and frame corruption — the full
  /// robustness gauntlet the recovery soak runs.
  static FaultSpec crashy() {
    FaultSpec f = chaos();
    f.crash_p = 0.002;
    f.corrupt_p = 0.05;
    return f;
  }
};

/// Per-switch session parameters (the Controller derives one per session).
struct SessionConfig {
  size_t window = 4;               // max unacked epochs in flight (>= 1)
  double retry_timeout_ms = 25.0;  // retransmit timer for unacked epochs
  proto::ChannelModel channel;
  FaultSpec faults;
  uint64_t seed = 1;               // fault/restart randomness for this session
  size_t tcam_capacity = 1024;
  /// Virtual-time budget: a session that has not drained its epoch log by
  /// then reports non-completion instead of looping. A safety net for
  /// pathological fault settings, not a tuning knob.
  double deadline_ms = 1e7;
};

struct RuntimeConfig {
  size_t n_switches = 8;
  size_t window = 4;
  double retry_timeout_ms = 25.0;
  /// Worker threads the session event loops are fanned across; <= 1 runs
  /// them serially. Results are bit-identical either way: sessions share
  /// nothing mutable, and each is deterministic given its own seed.
  size_t n_threads = 0;
  proto::ChannelModel channel;
  FaultSpec faults;
  uint64_t fault_seed = 1;   // base seed; session i derives an independent stream
  size_t tcam_capacity = 0;  // per-switch TCAM size; 0 = sized from the workload
  double deadline_ms = 1e7;
};

}  // namespace ruletris::runtime
