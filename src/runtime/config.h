// Configuration for the asynchronous control-plane runtime.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "proto/channel.h"

namespace ruletris::runtime {

/// Seeded fault mix applied per frame on the simulated wire, in both
/// directions (data frames and acks alike). Reordering emerges from delay
/// jitter: a delayed frame lands after frames that were sent later.
struct FaultSpec {
  double drop_p = 0.0;       // frame silently lost
  double duplicate_p = 0.0;  // frame delivered twice
  double delay_p = 0.0;      // frame delayed by uniform(0, delay_ms)
  double delay_ms = 0.0;
  /// Rough virtual-ms interval between switch-agent restarts (0 = never).
  /// A restart drops the agent's volatile reorder buffer and triggers the
  /// barrier-anchored resync path; applied TCAM state survives (hardware).
  double restart_every_ms = 0.0;
  /// Per-journaled-op probability that the agent's firmware crashes
  /// mid-transaction (mid move chain included). The torn TCAM persists
  /// until journal recovery runs on the agent's restart path.
  double crash_p = 0.0;
  /// Per-frame probability of a single-bit flip in transit. Corrupted data
  /// frames fail the codec CRC32 and are NACKed for retransmission;
  /// corrupted header-only frames (acks/resyncs/nacks) are discarded.
  double corrupt_p = 0.0;

  // Brownout: a periodic square wave on the drop rate. For the first
  // `brownout_duty` fraction of every `brownout_period_ms` window the wire
  // drops at `brownout_drop_p` instead of drop_p — the time-varying loss
  // the adaptive retry backoff is sized against. Virtual-time driven, so
  // the elevated windows are deterministic like every other fault.
  double brownout_drop_p = 0.0;
  double brownout_period_ms = 0.0;
  double brownout_duty = 0.0;

  /// Effective drop probability at virtual time `now_ms`.
  double drop_at(double now_ms) const {
    if (brownout_period_ms <= 0.0 || brownout_duty <= 0.0) return drop_p;
    const double phase =
        now_ms - brownout_period_ms * std::floor(now_ms / brownout_period_ms);
    return phase < brownout_period_ms * brownout_duty ? brownout_drop_p
                                                      : drop_p;
  }

  bool any() const {
    return drop_p > 0 || duplicate_p > 0 || delay_p > 0 ||
           restart_every_ms > 0 || crash_p > 0 || corrupt_p > 0 ||
           (brownout_period_ms > 0 && brownout_duty > 0 && brownout_drop_p > 0);
  }

  /// The default non-trivial mix used by `--fault-seed` and the soak test.
  static FaultSpec chaos() {
    FaultSpec f;
    f.drop_p = 0.12;
    f.duplicate_p = 0.10;
    f.delay_p = 0.25;
    f.delay_ms = 6.0;
    f.restart_every_ms = 400.0;
    return f;
  }

  /// chaos() plus firmware crashes and frame corruption — the full
  /// robustness gauntlet the recovery soak runs.
  static FaultSpec crashy() {
    FaultSpec f = chaos();
    f.crash_p = 0.002;
    f.corrupt_p = 0.05;
    return f;
  }

  /// crashy() plus periodic brownout windows where the wire swallows most
  /// frames — the chaos harness's wire profile.
  static FaultSpec brownout() {
    FaultSpec f = crashy();
    f.drop_p = 0.05;
    f.brownout_drop_p = 0.55;
    f.brownout_period_ms = 120.0;
    f.brownout_duty = 0.35;
    return f;
  }
};

/// Retransmission policy. Round 0 of a silent stretch always fires after
/// exactly `timeout_ms` — bit-identical to the historical fixed timer, so
/// fault-free virtual trajectories (and the committed fleet baselines) are
/// unchanged. From the second consecutive silent round on, the adaptive
/// path escalates the interval exponentially, scales it by a per-session
/// loss estimate, and applies seeded jitter so retransmit storms from many
/// sessions desynchronize. All of it is a pure function of the session's
/// seed and event sequence — deterministic across thread counts.
struct RetryPolicy {
  double timeout_ms = 25.0;     // round-0 retransmit timer (legacy knob)
  bool adaptive = true;         // escalate on consecutive silent rounds
  double backoff = 2.0;         // interval multiplier per silent round
  double max_timeout_ms = 250.0;  // escalation cap
  double jitter = 0.15;         // +-fraction applied to escalated rounds
  double loss_alpha = 0.25;     // EWMA step per silent-round / progress event
  double loss_gain = 3.0;       // interval inflation at loss estimate 1.0
  /// Consecutive silent rounds before the session quarantines the switch
  /// instead of retransmitting into a void. 0 = never quarantine.
  size_t quarantine_after = 0;
  /// Liveness probe cadence while quarantined (header-only frames).
  double probe_interval_ms = 150.0;
};

/// One window of agent unreachability (power loss, upgrade, line cut): the
/// wire still "delivers", but every frame landing inside the window is
/// gone, and the agent cannot speak. Virtual-time anchored, deterministic.
struct BlackoutWindow {
  double at_ms = 0.0;
  double duration_ms = 0.0;

  bool covers(double t) const { return t >= at_ms && t < at_ms + duration_ms; }
};

/// Session knobs shared verbatim by RuntimeConfig, FleetSpec and the
/// per-session SessionConfig — one struct so parameters like the retry
/// policy live in exactly one place instead of three hand-copied fields.
struct SessionKnobs {
  size_t window = 4;  // max unacked epochs in flight (>= 1)
  RetryPolicy retry;
  proto::ChannelModel channel;
  FaultSpec faults;
  /// Virtual-time budget: a session that has not drained its epoch log by
  /// then reports non-completion instead of looping. A safety net for
  /// pathological fault settings, not a tuning knob.
  double deadline_ms = 1e7;
};

/// Kills compile shard `shard` at the first epoch boundary where its
/// virtual compile clock reaches `at_vt_ms` — its in-memory engines are
/// lost and its unfinished switches are orphaned for adoption.
struct ShardKill {
  size_t shard = 0;
  double at_vt_ms = 0.0;
};

/// Takes switch `sw`'s agent off the network for a window of the session's
/// virtual clock.
struct AgentBlackout {
  size_t sw = 0;
  BlackoutWindow window;
};

/// Seeded fault schedule for a fleet run: which shards die when, which
/// agents go dark when. Virtual-time anchored on deterministic clocks, so a
/// chaos run is exactly as reproducible as a clean one.
struct ChaosSchedule {
  std::vector<ShardKill> shard_kills;
  std::vector<AgentBlackout> blackouts;

  bool any() const { return !shard_kills.empty() || !blackouts.empty(); }
};

/// Per-switch session parameters (the Controller derives one per session).
struct SessionConfig {
  SessionKnobs knobs;
  uint64_t seed = 1;  // fault/restart randomness for this session
  size_t tcam_capacity = 1024;
  /// Windows during which this switch's agent is unreachable (from the
  /// fleet ChaosSchedule; empty outside chaos runs).
  std::vector<BlackoutWindow> blackouts;
  /// Re-admission hook, run when a quarantined session's switch comes back
  /// (anchor = the agent's last applied epoch). The sharded controller
  /// verifies the warm-boot catch-up material here: frozen base image plus
  /// the hash-chained delta blobs up to the anchor. Returning false marks
  /// the re-admission failed (counted, fails convergence).
  std::function<bool(uint64_t anchor)> on_readmit;
};

struct RuntimeConfig {
  size_t n_switches = 8;
  /// Worker threads the session event loops are fanned across; <= 1 runs
  /// them serially. Results are bit-identical either way: sessions share
  /// nothing mutable, and each is deterministic given its own seed.
  size_t n_threads = 0;
  SessionKnobs knobs;
  uint64_t fault_seed = 1;   // base seed; session i derives an independent stream
  size_t tcam_capacity = 0;  // per-switch TCAM size; 0 = sized from the workload
};

}  // namespace ruletris::runtime
