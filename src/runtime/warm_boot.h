// Controller warm-boot lifecycle: freeze() after compile, thaw() on
// restart, delta apply per epoch.
//
// Two halves, designed to sit on opposite sides of a restart (or of a
// controller/standby pair):
//
//  * EpochFreezer runs next to the live compiler (hooked into
//    ChurnSpec::observer). The first epoch it sees becomes the full frozen
//    base snapshot; every later epoch is diffed against the previous image
//    and shipped as a binary patch wrapped in a proto::SnapshotPatch
//    message inside a CRC32-framed codec batch — the same framing every
//    other control message uses, so patches ride the existing channel.
//
//  * ThawedController is the restarted side: it maps (or adopts) the base
//    blob, restores a DagScheduler straight from the frozen sections —
//    update-ready without recompiling — and replays patch frames to roll
//    its image forward one epoch at a time. After replay,
//    image().tables[t].snapshot() must equal a fresh compile's snapshot;
//    the frozen tests and bench/warm_boot assert exactly that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "frozen/delta.h"
#include "frozen/frozen.h"
#include "proto/codec.h"

namespace ruletris::runtime {

/// Captures a frozen base snapshot plus one encoded patch frame per
/// subsequent epoch. Deterministic: the same epoch stream produces
/// bit-identical blobs and frames.
class EpochFreezer {
 public:
  /// Observe the live front-end after `epoch` was compiled. Epochs must be
  /// observed in increasing order. Matches ChurnSpec::observer's signature.
  void observe(uint64_t epoch, const compiler::RuleTrisCompiler& frontend);

  bool has_base() const { return !base_blob_.empty(); }
  uint64_t base_epoch() const { return base_epoch_; }
  /// Full frozen snapshot of the first observed epoch.
  const frozen::Bytes& base_blob() const { return base_blob_; }
  /// One CRC32-framed codec batch per epoch after the base, in order; each
  /// carries a single proto::SnapshotPatch.
  const std::vector<proto::Bytes>& patch_frames() const { return patch_frames_; }
  /// Image of the most recently observed epoch.
  const frozen::PolicyImage& latest() const { return latest_; }

 private:
  uint64_t base_epoch_ = 0;
  frozen::Bytes base_blob_;
  std::vector<proto::Bytes> patch_frames_;
  frozen::PolicyImage latest_;
};

/// The restart side: thaws a base snapshot and replays patch frames.
class ThawedController {
 public:
  /// Adopts an in-memory base blob.
  explicit ThawedController(frozen::Bytes base_blob);
  /// Maps a blob file (the ruletris_sim --freeze artifact).
  explicit ThawedController(const std::string& path);

  uint64_t epoch() const { return image_ ? image_->epoch : frozen_.epoch(); }
  size_t n_tables() const { return frozen_.n_tables(); }

  /// Restores `scheduler` (fresh, empty TCAM) to the *base* snapshot's
  /// frozen layout of table `t`: DAG loaded, entries written at their
  /// frozen addresses, caches rebuilt. Returns entries written. This is the
  /// warm-boot critical path — it reads the blob sections zero-copy and
  /// never materializes the value-typed image.
  size_t restore_scheduler(size_t t, tcam::DagScheduler& scheduler) const;

  /// Decodes one CRC32-framed patch batch and rolls the image forward.
  /// Throws on corruption, on a frame without a SnapshotPatch, or on an
  /// epoch-chain mismatch. Returns the new epoch.
  uint64_t apply_patch_frame(const proto::Bytes& frame);

  /// Materialized image at the current epoch (lazy: first call pays the
  /// materialization; apply_patch_frame forces it too).
  const frozen::PolicyImage& image() const;

 private:
  frozen::PolicyImage& mutable_image();

  frozen::Bytes owned_;                       // one of owned_/mapped_ holds the blob
  std::optional<frozen::MappedBlob> mapped_;
  frozen::FrozenPolicy frozen_;
  mutable std::optional<frozen::PolicyImage> image_;
};

}  // namespace ruletris::runtime
