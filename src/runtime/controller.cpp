#include "runtime/controller.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "proto/codec.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace ruletris::runtime {

std::shared_ptr<const EncodedLog> encode_log(
    const std::vector<proto::MessageBatch>& epoch_batches) {
  auto log = std::make_shared<EncodedLog>();
  log->reserve(epoch_batches.size());
  for (const proto::MessageBatch& batch : epoch_batches) {
    EncodedEpoch epoch;
    epoch.wire = std::make_shared<const proto::Bytes>(proto::encode_batch(batch));
    epoch.messages = batch.size();
    log->push_back(std::move(epoch));
  }
  return log;
}

RuntimeReport merge_session_stats(std::vector<SessionStats> results) {
  RuntimeReport report;
  report.sessions = std::move(results);
  for (const SessionStats& s : report.sessions) {
    report.epochs = std::max(report.epochs, s.epochs);
    report.data_frames_sent += s.data_frames_sent;
    report.retransmits += s.retransmits;
    report.resync_replays += s.resync_replays;
    report.resyncs += s.resyncs;
    report.stale_resyncs += s.stale_resyncs;
    report.restarts += s.restarts;
    report.timeouts += s.timeouts;
    report.duplicates += s.duplicates;
    report.nacks += s.nacks;
    report.nack_retransmits += s.nack_retransmits;
    report.crashes += s.crashes;
    report.roll_forwards += s.roll_forwards;
    report.recovered_writes += s.recovered_writes;
    report.apply_failures += s.apply_failures;
    report.table_full += s.table_full;
    report.rolled_back += s.rolled_back;
    report.entry_writes += s.entry_writes;
    report.moves += s.moves;
    report.quarantines += s.quarantines;
    report.readmissions += s.readmissions;
    report.probe_sends += s.probe_sends;
    report.blackout_drops += s.blackout_drops;
    report.readmit_failures += s.readmit_failures;
    report.rejoin_audit_violations += s.rejoin_audit_violations;
    report.makespan_ms = std::max(report.makespan_ms, s.makespan_ms);
    report.all_converged = report.all_converged && s.converged;
    report.ack_ms.merge(s.ack_ms);
    report.channel_ms.merge(s.channel_ms);
    report.firmware_ms.merge(s.firmware_ms);
    report.tcam_ms.merge(s.tcam_ms);
    report.rejoin_ms.merge(s.rejoin_ms);
  }
  return report;
}

RuntimeReport Controller::run(const std::vector<proto::MessageBatch>& epoch_batches,
                              const std::vector<flowspace::Rule>& expected) {
  // Encode each epoch once; every session, retransmit and latency charge
  // reuses the same immutable bytes.
  const std::shared_ptr<const EncodedLog> log = encode_log(epoch_batches);
  const size_t n = std::max<size_t>(cfg_.n_switches, 1);
  std::vector<SwitchWorkload> fleet(n);
  for (SwitchWorkload& w : fleet) {
    w.log = log;
    w.expected = expected;
  }
  return run_fleet(fleet);
}

RuntimeReport Controller::run_fleet(const std::vector<SwitchWorkload>& fleet) {
  const size_t n = fleet.size();
  if (n == 0) return RuntimeReport{};

  auto session_config = [&](size_t i) {
    SessionConfig sc;
    sc.knobs = cfg_.knobs;
    // Independent per-session stream: the fault behaviour of switch i never
    // depends on how many switches run or on scheduling.
    sc.seed = util::hash_pair(cfg_.fault_seed, i + 1);
    const size_t expected_n = fleet[i].expected.size();
    sc.tcam_capacity = cfg_.tcam_capacity != 0
                           ? cfg_.tcam_capacity
                           : expected_n + expected_n / 8 + 128;
    return sc;
  };

  std::vector<SessionStats> results(n);
  std::vector<std::string> errors(n);
  auto run_session = [&](size_t i) {
    try {
      SwitchSession session(session_config(i), *fleet[i].log);
      results[i] = session.run(fleet[i].expected);
    } catch (const std::exception& e) {  // pool jobs must not throw
      errors[i] = e.what();
    }
  };

  if (cfg_.n_threads > 1 && n > 1) {
    util::ThreadPool pool(std::min(cfg_.n_threads, n));
    for (size_t i = 0; i < n; ++i) {
      pool.run([&run_session, i] { run_session(i); });
    }
    pool.wait_idle();
  } else {
    for (size_t i = 0; i < n; ++i) run_session(i);
  }
  for (const std::string& error : errors) {
    if (!error.empty()) throw std::runtime_error("runtime session: " + error);
  }

  return merge_session_stats(std::move(results));
}

}  // namespace ruletris::runtime
