// Controller of the asynchronous runtime: N switch sessions, each driven by
// an epoch log. Historically every session replayed one shared log; the
// netplan planner projects *different* rules onto different switches, so the
// fleet entry point takes one (log, expected) workload per switch. The
// shared-log run() is now a thin wrapper: encode once, hand every switch
// the same immutable bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flowspace/rule.h"
#include "proto/messages.h"
#include "runtime/config.h"
#include "runtime/session.h"
#include "util/stats.h"

namespace ruletris::runtime {

/// A switch's encoded epoch log. Encoding happens once per distinct log;
/// switches sharing a log share the bytes (retransmits and latency charges
/// all operate on the same immutable buffers).
using EncodedLog = std::vector<EncodedEpoch>;

/// Encodes each batch of `epoch_batches` exactly once.
std::shared_ptr<const EncodedLog> encode_log(
    const std::vector<proto::MessageBatch>& epoch_batches);

/// Per-switch fleet workload: the switch's own epoch log plus the rule set
/// its TCAM must converge to.
struct SwitchWorkload {
  std::shared_ptr<const EncodedLog> log;
  std::vector<flowspace::Rule> expected;
};

/// Fleet-level report: per-session stats plus merged aggregates. Histograms
/// are merged here, at report time — the sessions filled them without any
/// synchronization.
struct RuntimeReport {
  std::vector<SessionStats> sessions;
  size_t epochs = 0;

  // Aggregates over every session.
  size_t data_frames_sent = 0;
  size_t retransmits = 0;
  size_t resync_replays = 0;
  size_t resyncs = 0;
  size_t stale_resyncs = 0;
  size_t restarts = 0;
  size_t timeouts = 0;
  size_t duplicates = 0;
  size_t nacks = 0;             // corrupted data frames NACKed fleet-wide
  size_t nack_retransmits = 0;
  size_t crashes = 0;           // firmware crashes mid-transaction
  size_t roll_forwards = 0;     // recoveries that committed a sealed txn
  size_t recovered_writes = 0;  // TCAM writes spent undoing torn chains
  size_t apply_failures = 0;
  size_t table_full = 0;        // updates rejected with ApplyStatus::kTableFull
  size_t rolled_back = 0;       // updates undone with ApplyStatus::kRolledBack
  size_t entry_writes = 0;   // fleet-wide TCAM writes actually performed
  size_t moves = 0;          // relocation subset (the DAG-schedule cost)
  size_t quarantines = 0;       // sessions benched after silent escalation
  size_t readmissions = 0;      // quarantined sessions brought back
  size_t probe_sends = 0;       // liveness probes sent while quarantined
  size_t blackout_drops = 0;    // frames lost to agent blackout windows
  size_t readmit_failures = 0;  // failed warm-boot catch-up verifications
  size_t rejoin_audit_violations = 0;  // structural audits failed on rejoin
  double makespan_ms = 0.0;  // max session makespan (virtual)
  bool all_converged = true;
  util::Histogram ack_ms;
  util::Histogram channel_ms;
  util::Histogram firmware_ms;
  util::Histogram tcam_ms;
  util::Histogram rejoin_ms;  // quarantine entry -> re-admission (virtual)

  /// Sum of per-session log lengths (== sessions * epochs when every switch
  /// replays the same log; per-switch logs may differ in length).
  size_t epochs_applied() const {
    size_t applied = 0;
    for (const SessionStats& s : sessions) applied += s.epochs;
    return applied;
  }

  /// Fleet update throughput in virtual time: committed epoch batches per
  /// second across every switch, over the slowest session's makespan.
  double updates_per_s() const {
    if (makespan_ms <= 0.0) return 0.0;
    return static_cast<double>(epochs_applied()) / (makespan_ms / 1000.0);
  }

  /// Average TCAM entry writes one committed epoch cost — the real,
  /// schedule-dependent charge behind the tcam_ms histogram (writes x
  /// 0.6 ms), not a flat per-update constant.
  double entry_writes_per_epoch() const {
    const size_t applied = epochs_applied();
    if (applied == 0) return 0.0;
    return static_cast<double>(entry_writes) / static_cast<double>(applied);
  }
};

/// Folds per-session stats into the merged fleet report (aggregate counters,
/// max makespan, histogram merges). Shared by Controller and by the netplan
/// FleetController, which produces its SessionStats via gated stepping.
RuntimeReport merge_session_stats(std::vector<SessionStats> results);

/// Runs the fan-out half of the runtime. The controller encodes each epoch
/// batch exactly once (the encoded bytes are the unit both the channel
/// charge and the wire faults operate on), replicates the log to every
/// switch session — each session a private virtual-time event loop — and
/// merges the per-session reports. Session loops execute on a ThreadPool
/// when cfg.n_threads > 1; because sessions share nothing mutable and each
/// derives its own fault stream from (fault_seed, session index), the
/// report is bit-identical for every thread count.
class Controller {
 public:
  explicit Controller(const RuntimeConfig& cfg) : cfg_(cfg) {}

  /// `epoch_batches[0]` is epoch 1 (normally the initial table install);
  /// `expected` is the composed table every switch must converge to. All
  /// cfg.n_switches sessions replay the same encoded log.
  RuntimeReport run(const std::vector<proto::MessageBatch>& epoch_batches,
                    const std::vector<flowspace::Rule>& expected);

  /// Per-switch logs: session i replays fleet[i].log and must converge to
  /// fleet[i].expected. cfg.n_switches is ignored (the fleet size rules);
  /// cfg.tcam_capacity == 0 sizes each switch from its own expected set.
  RuntimeReport run_fleet(const std::vector<SwitchWorkload>& fleet);

 private:
  RuntimeConfig cfg_;
};

}  // namespace ruletris::runtime
