#include "runtime/wire.h"

#include <algorithm>

namespace ruletris::runtime {

std::vector<double> FaultyWire::arrivals(double now_ms, size_t wire_bytes) {
  ++counters_.sent;
  // Fixed draw count per send: fault decisions stay aligned with the send
  // sequence no matter which faults fire.
  const double drop_d = rng_.next_double();
  const double dup_d = rng_.next_double();
  const double delay_d = rng_.next_double();
  const double jitter_d = rng_.next_double();
  const double dup_jitter_d = rng_.next_double();

  if (drop_d < faults_.drop_p) {
    ++counters_.dropped;
    return {};
  }

  const double base = now_ms + channel_.one_way_ms(wire_bytes);
  double arrive = base;
  if (delay_d < faults_.delay_p) {
    ++counters_.delayed;
    arrive += jitter_d * faults_.delay_ms;
  }

  std::vector<double> out{arrive};
  if (dup_d < faults_.duplicate_p) {
    ++counters_.duplicated;
    // The stray copy trails the original by up to one delay quantum (at
    // least a millisecond, so the duplicate path is exercised even when
    // delay_ms is configured to 0).
    out.push_back(arrive + dup_jitter_d * std::max(faults_.delay_ms, 1.0));
  }
  return out;
}

}  // namespace ruletris::runtime
