#include "runtime/wire.h"

#include <algorithm>

namespace ruletris::runtime {

std::vector<FaultyWire::Delivery> FaultyWire::arrivals(double now_ms,
                                                       size_t wire_bytes) {
  ++counters_.sent;
  // Fixed draw count per send: fault decisions stay aligned with the send
  // sequence no matter which faults fire. Corruption draws are consumed for
  // the primary and the duplicate copy even when neither fires.
  const double drop_d = rng_.next_double();
  const double dup_d = rng_.next_double();
  const double delay_d = rng_.next_double();
  const double jitter_d = rng_.next_double();
  const double dup_jitter_d = rng_.next_double();
  const double corrupt_d = rng_.next_double();
  const uint64_t corrupt_bits = rng_.next_u64();
  const double dup_corrupt_d = rng_.next_double();
  const uint64_t dup_corrupt_bits = rng_.next_u64();

  // Brownout-aware: the drop threshold may vary with virtual time, but the
  // draw count per send never does, so the fault stream stays a function of
  // (seed, send sequence) alone.
  if (drop_d < faults_.drop_at(now_ms)) {
    ++counters_.dropped;
    return {};
  }

  const double base = now_ms + channel_.one_way_ms(wire_bytes);
  double arrive = base;
  if (delay_d < faults_.delay_p) {
    ++counters_.delayed;
    arrive += jitter_d * faults_.delay_ms;
  }

  Delivery primary{arrive, false, 0};
  if (corrupt_d < faults_.corrupt_p) {
    ++counters_.corrupted;
    primary.corrupted = true;
    primary.corrupt_bits = corrupt_bits;
  }

  std::vector<Delivery> out{primary};
  if (dup_d < faults_.duplicate_p) {
    ++counters_.duplicated;
    // The stray copy trails the original by up to one delay quantum (at
    // least a millisecond, so the duplicate path is exercised even when
    // delay_ms is configured to 0). It rolls its own corruption fate.
    Delivery copy{arrive + dup_jitter_d * std::max(faults_.delay_ms, 1.0),
                  false, 0};
    if (dup_corrupt_d < faults_.corrupt_p) {
      ++counters_.corrupted;
      copy.corrupted = true;
      copy.corrupt_bits = dup_corrupt_bits;
    }
    out.push_back(copy);
  }
  return out;
}

}  // namespace ruletris::runtime
