#include "runtime/agent.h"

#include <algorithm>
#include <variant>

#include "proto/messages.h"

namespace ruletris::runtime {

SwitchAgent::SwitchAgent(size_t tcam_capacity, const proto::ChannelModel& channel)
    : switch_(switchsim::FirmwareMode::kDag, tcam_capacity), channel_(channel) {}

SwitchAgent::Ingest SwitchAgent::on_data(
    uint64_t epoch, const std::shared_ptr<const proto::Bytes>& payload,
    double now_ms) {
  Ingest result;
  if (epoch <= last_applied_) {
    // Duplicate or timeout-driven retransmit of an epoch already committed:
    // discard, but let the session re-ack so a lost ack heals.
    ++duplicates_;
    result.duplicate = true;
    result.done_ms = std::max(now_ms, busy_until_ms_);
    return result;
  }

  // emplace keeps the first buffered copy if a duplicate is already waiting.
  buffer_.emplace(epoch, payload);

  double t = std::max(now_ms, busy_until_ms_);
  for (auto it = buffer_.find(last_applied_ + 1); it != buffer_.end();
       it = buffer_.find(last_applied_ + 1)) {
    const proto::MessageBatch batch = proto::decode_batch(*it->second);

    AppliedEpoch applied;
    applied.epoch = it->first;
    applied.messages = batch.size();
    // Acks are barrier-anchored: every epoch batch the controller emits is
    // fenced, and the ack fires only once the fence has been applied.
    const bool fenced =
        !batch.empty() && std::holds_alternative<proto::Barrier>(batch.back());

    const switchsim::UpdateMetrics m = switch_.apply(batch);
    applied.ok = m.ok && fenced;
    applied.firmware_ms = m.firmware_ms;
    applied.tcam_ms = m.tcam_ms;
    applied.entry_writes = m.entry_writes;
    applied.moves = m.moves;
    // Virtual cost of applying: per-message parse/dispatch plus the
    // modelled TCAM write time (wall-clock firmware time stays diagnostic
    // so virtual timelines are reproducible).
    applied.apply_ms = channel_.parse_ms(batch.size()) + m.tcam_ms;
    t += applied.apply_ms;

    result.applied.push_back(applied);
    last_applied_ = it->first;
    buffer_.erase(it);
  }

  busy_until_ms_ = std::max(busy_until_ms_, t);
  result.done_ms = t;
  return result;
}

void SwitchAgent::restart() {
  buffer_.clear();
  ++restarts_;
}

}  // namespace ruletris::runtime
