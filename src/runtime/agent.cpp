#include "runtime/agent.h"

#include <algorithm>
#include <variant>

#include "proto/messages.h"
#include "tcam/tcam.h"

namespace ruletris::runtime {

SwitchAgent::SwitchAgent(size_t tcam_capacity, const proto::ChannelModel& channel,
                         double crash_p, uint64_t crash_seed)
    : switch_(switchsim::FirmwareMode::kDag, tcam_capacity),
      channel_(channel),
      crash_p_(crash_p),
      crash_rng_(crash_seed) {
  // Every apply is a recoverable write-ahead transaction on this agent's
  // firmware; the crash hook draws one seeded Bernoulli per journaled op,
  // so a session's crash schedule is a pure function of its seed.
  tcam::DagScheduler& dag = switch_.dag_firmware();
  dag.set_journal(&journal_);
  if (crash_p_ > 0.0) {
    dag.set_crash_hook([this] { return crash_rng_.next_double() < crash_p_; });
  }
}

SwitchAgent::Ingest SwitchAgent::on_data(
    uint64_t epoch, const std::shared_ptr<const proto::Bytes>& payload,
    double now_ms) {
  Ingest result;
  if (down_) {
    // The agent process is dead between the crash and the end of recovery:
    // frames fall on the floor exactly like a powered-off switch.
    result.dropped = true;
    result.done_ms = now_ms;
    return result;
  }
  if (!proto::checksum_ok(*payload)) {
    // Bit-flipped in transit: never parsed, never buffered. The session
    // NACKs the epoch so the controller retransmits the pristine bytes.
    ++corrupt_frames_;
    result.corrupt = true;
    result.done_ms = std::max(now_ms, busy_until_ms_);
    return result;
  }
  if (epoch <= last_applied_) {
    // Duplicate or timeout-driven retransmit of an epoch already committed:
    // discard, but let the session re-ack so a lost ack heals.
    ++duplicates_;
    result.duplicate = true;
    result.done_ms = std::max(now_ms, busy_until_ms_);
    return result;
  }

  // emplace keeps the first buffered copy if a duplicate is already waiting.
  buffer_.emplace(epoch, payload);

  double t = std::max(now_ms, busy_until_ms_);
  for (auto it = buffer_.find(last_applied_ + 1); it != buffer_.end();
       it = buffer_.find(last_applied_ + 1)) {
    const proto::MessageBatch batch = proto::decode_batch(*it->second);

    AppliedEpoch applied;
    applied.epoch = it->first;
    applied.messages = batch.size();
    // Acks are barrier-anchored: every epoch batch the controller emits is
    // fenced, and the ack fires only once the fence has been applied.
    const bool fenced =
        !batch.empty() && std::holds_alternative<proto::Barrier>(batch.back());

    switchsim::UpdateMetrics m;
    try {
      m = switch_.apply(batch);
    } catch (const tcam::CrashError&) {
      // Firmware died mid-transaction: the TCAM is torn (the journal holds
      // the open transaction), the volatile reorder buffer is gone, and no
      // ack leaves for this epoch. The session drives recovery.
      ++crashes_;
      down_ = true;
      crash_epoch_ = it->first;
      buffer_.clear();
      result.crashed = true;
      result.done_ms = t;
      busy_until_ms_ = std::max(busy_until_ms_, t);
      return result;
    }
    applied.ok = m.ok && fenced;
    applied.status = m.status;
    applied.firmware_ms = m.firmware_ms;
    applied.tcam_ms = m.tcam_ms;
    applied.entry_writes = m.entry_writes;
    applied.moves = m.moves;
    // Virtual cost of applying: per-message parse/dispatch plus the
    // modelled TCAM write time (wall-clock firmware time stays diagnostic
    // so virtual timelines are reproducible).
    applied.apply_ms = channel_.parse_ms(batch.size()) + m.tcam_ms;
    t += applied.apply_ms;

    result.applied.push_back(applied);
    last_applied_ = it->first;
    buffer_.erase(it);
  }

  busy_until_ms_ = std::max(busy_until_ms_, t);
  result.done_ms = t;
  return result;
}

void SwitchAgent::restart() {
  // Recovery before anything else: if a crash tore a transaction and a
  // scheduled restart wins the race, the restart path must still repair the
  // TCAM before its resync anchor (last_applied) means anything.
  switch_.dag_firmware().recover();
  buffer_.clear();
  ++restarts_;
}

SwitchAgent::Recovery SwitchAgent::recover_and_restart() {
  Recovery recovery;
  const tcam::DagScheduler::RecoveryResult r = switch_.dag_firmware().recover();
  recovery.undone_ops = r.undone_ops;
  recovery.undone_writes = r.undone_writes;
  recovery.recovery_ms =
      static_cast<double>(r.undone_writes) * tcam::kEntryWriteMs;
  if (r.outcome == tcam::DagScheduler::RecoveryResult::Outcome::kRolledForward) {
    // The torn transaction had fully executed: the crashed epoch is durably
    // applied, so the resync anchor must include it.
    recovery.rolled_forward = true;
    last_applied_ = std::max(last_applied_, crash_epoch_);
  }
  buffer_.clear();
  ++restarts_;
  return recovery;
}

}  // namespace ruletris::runtime
