#include "runtime/workload.h"

#include <stdexcept>
#include <utility>

#include "classbench/generator.h"
#include "compiler/ruletris_compiler.h"
#include "switchsim/adapters.h"

namespace ruletris::runtime {

using compiler::TableUpdate;
using flowspace::Rule;
using flowspace::RuleId;

CompiledWorkload compile_churn_workload(
    const compiler::PolicySpec& spec,
    std::map<std::string, flowspace::FlowTable> tables, const ChurnSpec& churn) {
  const std::string leaf =
      churn.leaf.empty() ? spec.leaf_names().front() : churn.leaf;
  auto leaf_it = tables.find(leaf);
  if (leaf_it == tables.end()) {
    throw std::runtime_error("churn leaf has no table: " + leaf);
  }

  // Member rules currently live in the churned leaf (delete/modify victims).
  std::vector<RuleId> live;
  for (const Rule& r : leaf_it->second.rules()) live.push_back(r.id);

  auto make_rule = churn.make_rule;
  if (!make_rule) {
    make_rule = [](util::Rng& r) { return classbench::random_monitor_rule(100, r); };
  }

  compiler::RuleTrisCompiler frontend(spec, std::move(tables));

  CompiledWorkload workload;
  workload.peak_visible = frontend.root().visible_size();

  // Epoch 1: install the initial composed table and its minimum DAG.
  TableUpdate initial;
  initial.added = frontend.root().visible_rules_in_order();
  for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
  initial.dag.added_edges = frontend.root().visible_graph().edges();
  workload.epochs.push_back(switchsim::to_messages(initial));
  if (churn.observer) churn.observer(workload.epochs.size(), frontend);

  util::Rng rng(churn.seed);
  for (size_t u = 0; u < churn.updates; ++u) {
    const double op = rng.next_double();
    TableUpdate update;
    if (op < churn.insert_p || live.empty()) {
      const Rule fresh = make_rule(rng);
      update = frontend.insert(leaf, fresh);
      live.push_back(fresh.id);
    } else if (op < churn.insert_p + churn.delete_p) {
      const size_t victim = rng.next_below(live.size());
      update = frontend.remove(leaf, live[victim]);
      live[victim] = live.back();
      live.pop_back();
    } else {
      const size_t victim = rng.next_below(live.size());
      const Rule fresh = make_rule(rng);
      update = frontend.modify(leaf, live[victim], fresh);
      live[victim] = fresh.id;
    }
    // Empty updates still become (cheap) epochs: the agent must tolerate
    // batches that only carry a DAG no-op and a barrier.
    workload.epochs.push_back(switchsim::to_messages(update));
    if (churn.observer) churn.observer(workload.epochs.size(), frontend);
    workload.peak_visible =
        std::max(workload.peak_visible, frontend.root().visible_size());
  }

  workload.final_rules = frontend.root().visible_rules_in_order();
  return workload;
}

}  // namespace ruletris::runtime
