#include "runtime/workload.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "classbench/generator.h"
#include "compiler/ruletris_compiler.h"
#include "switchsim/adapters.h"

namespace ruletris::runtime {

using compiler::TableUpdate;
using compiler::chain_updates;
using flowspace::Rule;
using flowspace::RuleId;

namespace {

/// Moves `r`'s dst_ip match into the burst's /bits block: the high `bits`
/// come from `base`, any deeper prefix bits the rule already had are kept,
/// and prefixes coarser than the block are deepened to exactly the block —
/// so the ClassBench length mixture survives below the block boundary.
Rule localize(Rule r, uint32_t base, uint32_t bits) {
  const flowspace::FieldTernary& dst = r.match.field(flowspace::FieldId::kDstIp);
  const uint32_t len = static_cast<uint32_t>(__builtin_popcount(dst.mask));
  const uint32_t top = 0xffffffffu << (32 - bits);
  r.match.set_prefix(flowspace::FieldId::kDstIp,
                     (base & top) | (dst.value & ~top), std::max(len, bits));
  return r;
}

}  // namespace

ChurnEngine::ChurnEngine(const compiler::PolicySpec& spec,
                         std::map<std::string, flowspace::FlowTable> tables,
                         const ChurnSpec& churn)
    : churn_(churn),
      leaf_(churn.leaf.empty() ? spec.leaf_names().front() : churn.leaf),
      rng_(churn.seed) {
  auto leaf_it = tables.find(leaf_);
  if (leaf_it == tables.end()) {
    throw std::runtime_error("churn leaf has no table: " + leaf_);
  }
  // Member rules currently live in the churned leaf (delete/modify victims).
  for (const Rule& r : leaf_it->second.rules()) live_.push_back(r.id);
  if (!churn_.make_rule) {
    churn_.make_rule = [](util::Rng& r) {
      return classbench::random_monitor_rule(100, r);
    };
  }
  frontend_ = std::make_unique<compiler::RuleTrisCompiler>(spec, std::move(tables));
  peak_visible_ = frontend_->root().visible_size();
}

ChurnEngine::~ChurnEngine() = default;

std::vector<Rule> ChurnEngine::current_rules() const {
  return frontend_->root().visible_rules_in_order();
}

ChurnEngine::Step ChurnEngine::step() {
  if (done()) throw std::runtime_error("ChurnEngine: step past the last epoch");
  Step out;
  if (produced_ == 0) {
    // Epoch 1: install the initial composed table and its minimum DAG.
    TableUpdate initial;
    initial.added = frontend_->root().visible_rules_in_order();
    for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
    initial.dag.added_edges = frontend_->root().visible_graph().edges();
    out.ops = initial.added.size();
    out.batch = switchsim::to_messages(initial);
    ++produced_;
    return out;
  }

  const BurstSpec& burst = churn_.burst;
  TableUpdate update;
  if (!burst.enabled) {
    // Classic one-op epochs. This branch's RNG draw sequence is frozen:
    // every pre-burst workload must replay byte-identically.
    const double op = rng_.next_double();
    if (op < churn_.insert_p || live_.empty()) {
      const Rule fresh = churn_.make_rule(rng_);
      update = frontend_->insert(leaf_, fresh);
      live_.push_back(fresh.id);
      out.ops = 1;
    } else if (op < churn_.insert_p + churn_.delete_p) {
      const size_t victim = rng_.next_below(live_.size());
      update = frontend_->remove(leaf_, live_[victim]);
      live_[victim] = live_.back();
      live_.pop_back();
      out.ops = 1;
    } else {
      const size_t victim = rng_.next_below(live_.size());
      const Rule fresh = churn_.make_rule(rng_);
      update = frontend_->modify(leaf_, live_[victim], fresh);
      live_[victim] = fresh.id;
      out.ops = 2;  // modify = delete + insert
    }
  } else {
    // One geometric-length burst, compiled op by op and chained into a
    // single barrier-fenced epoch.
    size_t len = 1;
    while (len < std::max<size_t>(burst.max_burst, 1) &&
           rng_.next_bool(burst.continue_p)) {
      ++len;
    }
    const bool teardown =
        rng_.next_bool(burst.delete_burst_p) && live_.size() >= len;
    if (teardown) {
      // Correlated teardown: the newest live rules go first (LIFO), which
      // concentrates the burst in recently-installed address blocks.
      for (size_t i = 0; i < len; ++i) {
        const RuleId victim = live_.back();
        live_.pop_back();
        TableUpdate one = frontend_->remove(leaf_, victim);
        update = out.ops == 0 ? std::move(one) : chain_updates(update, one);
        ++out.ops;
      }
    } else {
      const uint32_t bits = std::clamp<uint32_t>(burst.locality_bits, 1, 32);
      const uint32_t base = rng_.next_u32();
      for (size_t i = 0; i < len; ++i) {
        const Rule fresh = localize(churn_.make_rule(rng_), base, bits);
        TableUpdate one = frontend_->insert(leaf_, fresh);
        live_.push_back(fresh.id);
        update = out.ops == 0 ? std::move(one) : chain_updates(update, one);
        ++out.ops;
      }
    }
  }
  // Empty updates still become (cheap) epochs: the agent must tolerate
  // batches that only carry a DAG no-op and a barrier.
  out.batch = switchsim::to_messages(update);
  ++produced_;
  peak_visible_ = std::max(peak_visible_, frontend_->root().visible_size());
  return out;
}

CompiledWorkload compile_churn_workload(
    const compiler::PolicySpec& spec,
    std::map<std::string, flowspace::FlowTable> tables, const ChurnSpec& churn) {
  ChurnEngine engine(spec, std::move(tables), churn);
  CompiledWorkload workload;
  while (!engine.done()) {
    ChurnEngine::Step step = engine.step();
    workload.epochs.push_back(std::move(step.batch));
    workload.epoch_ops.push_back(step.ops);
    workload.rule_ops += step.ops;
    if (churn.observer) churn.observer(workload.epochs.size(), engine.frontend());
  }
  workload.peak_visible = engine.peak_visible();
  workload.final_rules = engine.current_rules();
  return workload;
}

}  // namespace ruletris::runtime
