#include "runtime/sharded_controller.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "classbench/generator.h"
#include "compiler/ruletris_compiler.h"
#include "frozen/delta.h"
#include "frozen/publish.h"
#include "proto/codec.h"
#include "tcam/tcam.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace ruletris::runtime {

using compiler::PolicySpec;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;

namespace {

uint64_t hash_bytes(const frozen::Bytes& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, mixed at the end
  for (uint8_t b : bytes) h = (h ^ b) * 0x100000001b3ULL;
  return util::mix64(h);
}

/// EpochSource over a shard's publication ring: acquire loads, no locks.
class RingEpochSource final : public EpochSource {
 public:
  explicit RingEpochSource(const frozen::PublishRing<SealedEpoch>& ring)
      : ring_(ring) {}
  uint64_t available() const override { return ring_.sealed(); }
  bool complete() const override { return ring_.closed(); }
  const EncodedEpoch& at(uint64_t e) const override { return ring_.get(e).wire; }
  double ready_ms(uint64_t e) const override {
    return ring_.get(e).ready_vt_ms;
  }

 private:
  const frozen::PublishRing<SealedEpoch>& ring_;
};

/// One-owner-at-a-time claim for the work-stealing sweep.
class TryLock {
 public:
  bool try_acquire() {
    bool expected = false;
    return locked_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire);
  }
  void release() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

struct SwitchSlot {
  size_t index = 0;
  /// Private rule-id namespace: every id this switch's tables, compiler and
  /// deltas ever see is allocated here, so ids are a function of the switch,
  /// not of cross-switch scheduling. Touched only under the owning shard's
  /// lock (task generation at init is serial).
  RuleId id_counter = 0;
  SwitchTask task;  // tables consumed when the engine is built

  // Compile side — guarded by the owning CompileShard's lock.
  std::unique_ptr<ChurnEngine> engine;
  frozen::PolicyImage base_image;  // epoch-1 capture (replay-audit anchor)
  frozen::PolicyImage prev_image;  // previous epoch's capture (diff source)
  std::vector<std::shared_ptr<const frozen::Bytes>> audit_blobs;
  bool audited = false;
  bool audit_passed = true;
  uint64_t delta_chain = 0;  // hash chain over every sealed delta blob
  size_t rule_ops = 0;
  std::vector<Rule> expected;  // final composed table; written before close()

  // Handoff: the shard publishes here, the session consumes lock-free.
  std::unique_ptr<frozen::PublishRing<SealedEpoch>> ring;
  std::unique_ptr<RingEpochSource> source;

  // Session side — guarded by `lock`.
  std::unique_ptr<SwitchSession> session;
  TryLock lock;
  bool started = false;
  size_t starved = 0;
  SessionStats stats;
  std::string error;
  std::atomic<bool> finished{false};
};

struct CompileShard {
  size_t index = 0;
  std::vector<SwitchSlot*> owned;  // fixed round-robin order
  size_t cursor = 0;
  size_t remaining = 0;  // engines not yet complete
  double vt_ms = 0.0;    // the shard's virtual compile clock
  size_t steps = 0;
  std::string error;
  TryLock lock;
  std::atomic<bool> done{false};
};

struct Fleet {
  std::vector<std::unique_ptr<SwitchSlot>> slots;
  std::vector<std::unique_ptr<CompileShard>> shards;
  std::atomic<size_t> live_sessions{0};
  std::atomic<size_t> steals{0};
  std::atomic<bool> failed{false};
};

SwitchTask default_task(const FleetSpec& spec, size_t sw) {
  SwitchTask task;
  util::Rng rng(util::hash_pair(spec.seed, sw + 1));
  task.tables.emplace(
      "mon", FlowTable{classbench::generate_monitor(spec.initial_monitor, rng)});
  task.tables.emplace(
      "rtr", FlowTable{classbench::generate_router(spec.initial_router, rng)});
  task.spec = PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  task.churn.leaf = "mon";
  task.churn.updates = spec.updates_per_switch;
  task.churn.seed = util::hash_pair(spec.seed ^ 0x9e3779b97f4a7c15ULL, sw + 1);
  task.churn.burst = spec.burst;
  return task;
}

/// Replays the switch's retained RTDZ delta blobs over its epoch-1 base
/// image; true iff the chain reproduces the final captured image exactly.
bool replay_audit(const SwitchSlot& slot) {
  frozen::PolicyImage replay = slot.base_image;
  for (const auto& blob : slot.audit_blobs) {
    frozen::apply_delta(replay, frozen::decode_delta(*blob));
  }
  return replay == slot.prev_image;
}

/// Compiles and seals one epoch for the shard's next unfinished switch.
/// Caller holds the shard lock. Returns false when every engine is done.
bool seal_next(CompileShard& shard, const FleetSpec& spec) {
  SwitchSlot* slot = nullptr;
  for (size_t probe = 0; probe < shard.owned.size(); ++probe) {
    SwitchSlot* cand = shard.owned[(shard.cursor + probe) % shard.owned.size()];
    if (!cand->engine || !cand->engine->done()) {
      slot = cand;
      shard.cursor = (shard.cursor + probe + 1) % shard.owned.size();
      break;
    }
  }
  if (slot == nullptr) return false;

  flowspace::ScopedRuleIdNamespace ns(&slot->id_counter);
  if (!slot->engine) {
    slot->engine = std::make_unique<ChurnEngine>(
        slot->task.spec, std::move(slot->task.tables), slot->task.churn);
  }
  ChurnEngine::Step step = slot->engine->step();
  const uint64_t epoch = slot->engine->produced();

  // The modelled compile cost is what the shard's clock advances by — the
  // sealed ready time is a function of the step sequence alone, never of
  // which worker ran the step or when.
  shard.vt_ms += spec.compile_base_ms +
                 spec.compile_per_op_ms * static_cast<double>(step.ops);
  ++shard.steps;
  slot->rule_ops += step.ops;

  SealedEpoch sealed;
  sealed.wire.wire =
      std::make_shared<const proto::Bytes>(proto::encode_batch(step.batch));
  sealed.wire.messages = step.batch.size();
  sealed.ops = step.ops;
  sealed.ready_vt_ms = shard.vt_ms;

  frozen::PolicyImage image =
      frozen::capture_policy(slot->engine->frontend(), epoch);
  if (epoch == 1) {
    // No predecessor to diff against: the chain anchors on the base image.
    sealed.delta_hash = hash_bytes(frozen::freeze(image));
    slot->base_image = image;
  } else {
    auto blob = std::make_shared<const frozen::Bytes>(
        frozen::encode_delta(frozen::diff(slot->prev_image, image)));
    sealed.delta_hash = hash_bytes(*blob);
    if (slot->audited) {
      sealed.delta = blob;
      slot->audit_blobs.push_back(std::move(blob));
    }
  }
  slot->delta_chain = util::hash_pair(slot->delta_chain, sealed.delta_hash);
  slot->prev_image = std::move(image);

  const bool last = slot->engine->done();
  if (last) {
    // Everything the session will read after observing closed() must be in
    // place before close()'s release store.
    slot->expected = slot->engine->current_rules();
    if (slot->audited) slot->audit_passed = replay_audit(*slot);
  }
  slot->ring->publish(std::make_unique<SealedEpoch>(std::move(sealed)));
  if (last) {
    slot->ring->close();
    --shard.remaining;
    if (shard.remaining == 0) shard.done.store(true, std::memory_order_release);
  }
  return true;
}

/// Pumps one session as far as its sealed horizon allows. Caller holds the
/// slot lock. Returns true if the session made progress.
bool pump_slot(SwitchSlot& slot, const FleetSpec& spec, Fleet& fleet) {
  if (slot.finished.load(std::memory_order_relaxed)) return false;
  try {
    if (!slot.started) {
      slot.session->start();
      slot.started = true;
    }
    const bool progress = slot.session->pump_published();
    if (slot.session->done()) {
      // done ⇒ the session observed closed(), so slot.expected is visible
      // and the shard will never write this slot again.
      slot.stats = slot.session->finalize(slot.expected);
    } else if (!progress) {
      if (slot.session->now_ms() > spec.deadline_ms) {
        // Deadline miss with the compile possibly still running: finalize
        // against nothing (reports non-convergence) rather than racing the
        // shard for slot.expected.
        slot.stats = slot.session->finalize({});
      } else {
        ++slot.starved;  // sealed horizon reached; go compile instead
        return false;
      }
    } else {
      return true;
    }
  } catch (const std::exception& e) {  // workers must not throw
    slot.error = e.what();
    fleet.failed.store(true, std::memory_order_relaxed);
  }
  slot.finished.store(true, std::memory_order_relaxed);
  fleet.live_sessions.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

/// One dispatch worker: sweep sessions, then steal compile work. Workers
/// are symmetric — "stealing" is just running a quantum for a shard whose
/// home worker (index % n_threads) is someone else.
void worker_loop(Fleet& fleet, const FleetSpec& spec, size_t worker,
                 size_t n_threads) {
  constexpr int kQuantum = 8;  // epochs sealed per shard claim
  const size_t n_slots = fleet.slots.size();
  const size_t n_shards = fleet.shards.size();
  const size_t slot_offset = n_slots == 0 ? 0 : (worker * n_slots) / n_threads;
  while (fleet.live_sessions.load(std::memory_order_acquire) > 0 &&
         !fleet.failed.load(std::memory_order_relaxed)) {
    bool progress = false;
    for (size_t k = 0; k < n_slots; ++k) {
      SwitchSlot& slot = *fleet.slots[(slot_offset + k) % n_slots];
      if (slot.finished.load(std::memory_order_relaxed)) continue;
      if (!slot.lock.try_acquire()) continue;
      progress |= pump_slot(slot, spec, fleet);
      slot.lock.release();
    }
    for (size_t k = 0; k < n_shards; ++k) {
      CompileShard& shard = *fleet.shards[(worker + k) % n_shards];
      if (shard.done.load(std::memory_order_acquire)) continue;
      if (!shard.lock.try_acquire()) continue;
      if (shard.index % n_threads != worker) {
        fleet.steals.fetch_add(1, std::memory_order_relaxed);
      }
      try {
        for (int q = 0; q < kQuantum; ++q) {
          if (!seal_next(shard, spec)) break;
          progress = true;
        }
      } catch (const std::exception& e) {
        shard.error = e.what();
        shard.done.store(true, std::memory_order_release);
        fleet.failed.store(true, std::memory_order_relaxed);
      }
      shard.lock.release();
    }
    if (!progress) std::this_thread::yield();
  }
}

}  // namespace

FleetReport ShardedController::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  const size_t n = std::max<size_t>(spec_.n_switches, 1);
  const size_t n_shards = std::clamp<size_t>(spec_.n_shards, 1, n);
  const size_t n_threads = std::max<size_t>(spec_.n_threads, 1);

  Fleet fleet;
  fleet.slots.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto slot = std::make_unique<SwitchSlot>();
    slot->index = i;
    slot->id_counter = static_cast<RuleId>(i + 1) << 32;
    {
      flowspace::ScopedRuleIdNamespace ns(&slot->id_counter);
      slot->task = spec_.make_task ? spec_.make_task(i) : default_task(spec_, i);
    }
    slot->audited = spec_.audit_stride != 0 && i % spec_.audit_stride == 0;
    slot->ring = std::make_unique<frozen::PublishRing<SealedEpoch>>(
        slot->task.churn.updates + 1);
    slot->source = std::make_unique<RingEpochSource>(*slot->ring);

    SessionConfig sc;
    sc.window = spec_.window;
    sc.retry_timeout_ms = spec_.retry_timeout_ms;
    sc.channel = spec_.channel;
    sc.faults = spec_.faults;
    sc.seed = util::hash_pair(spec_.fault_seed, i + 1);
    sc.tcam_capacity = spec_.tcam_capacity;
    sc.deadline_ms = spec_.deadline_ms;
    slot->session = std::make_unique<SwitchSession>(sc, *slot->source);
    fleet.slots.push_back(std::move(slot));
  }
  fleet.live_sessions.store(n, std::memory_order_relaxed);

  fleet.shards.reserve(n_shards);
  for (size_t k = 0; k < n_shards; ++k) {
    auto shard = std::make_unique<CompileShard>();
    shard->index = k;
    for (size_t i = k; i < n; i += n_shards) {
      shard->owned.push_back(fleet.slots[i].get());
    }
    shard->remaining = shard->owned.size();
    if (shard->owned.empty()) shard->done.store(true, std::memory_order_relaxed);
    fleet.shards.push_back(std::move(shard));
  }

  if (n_threads == 1) {
    worker_loop(fleet, spec_, 0, 1);
  } else {
    util::ThreadPool pool(n_threads);
    for (size_t t = 0; t < n_threads; ++t) {
      pool.run([&fleet, this, t, n_threads] {
        worker_loop(fleet, spec_, t, n_threads);
      });
    }
    pool.wait_idle();
  }

  for (const auto& shard : fleet.shards) {
    if (!shard->error.empty()) {
      throw std::runtime_error("fleet shard " + std::to_string(shard->index) +
                               ": " + shard->error);
    }
  }
  for (const auto& slot : fleet.slots) {
    if (!slot->error.empty()) {
      throw std::runtime_error("fleet switch " + std::to_string(slot->index) +
                               ": " + slot->error);
    }
  }

  FleetReport report;
  report.switches = n;
  report.shards = n_shards;
  report.threads = n_threads;
  std::vector<SessionStats> stats;
  stats.reserve(n);
  for (const auto& slot : fleet.slots) {
    stats.push_back(slot->stats);
    report.rule_ops += slot->rule_ops;
    if (slot->audited) {
      ++report.replay_audits;
      report.replay_ok = report.replay_ok && slot->audit_passed;
    }
    report.starved_pumps += slot->starved;

    // Per-switch digest: deterministic session counters plus the final TCAM
    // layout, combined order-independently (wrapping sum) across switches.
    uint64_t h = util::hash_pair(slot->index + 1, slot->stats.epochs);
    h = util::hash_pair(h, slot->stats.entry_writes);
    h = util::hash_pair(h, slot->stats.moves);
    h = util::hash_pair(h, slot->stats.data_frames_sent);
    h = util::hash_pair(h, std::bit_cast<uint64_t>(slot->stats.makespan_ms));
    const tcam::Tcam& device = slot->session->agent().device().tcam();
    for (size_t addr = 0; addr < device.capacity(); ++addr) {
      if (auto id = device.at(addr)) {
        h = util::hash_pair(h, util::hash_pair(addr, *id));
      }
    }
    report.fleet_fingerprint += h;
    report.delta_fingerprint +=
        util::hash_pair(slot->index + 1, slot->delta_chain);
  }
  for (const auto& shard : fleet.shards) {
    report.compile_vt_ms = std::max(report.compile_vt_ms, shard->vt_ms);
    report.shard_steps += shard->steps;
  }
  report.steals = fleet.steals.load(std::memory_order_relaxed);
  report.runtime = merge_session_stats(std::move(stats));
  report.makespan_ms = report.runtime.makespan_ms;
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return report;
}

}  // namespace ruletris::runtime
