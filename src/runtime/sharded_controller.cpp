#include "runtime/sharded_controller.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "classbench/generator.h"
#include "compiler/ruletris_compiler.h"
#include "frozen/delta.h"
#include "frozen/publish.h"
#include "proto/codec.h"
#include "tcam/tcam.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace ruletris::runtime {

using compiler::PolicySpec;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t hash_bytes(const frozen::Bytes& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, mixed at the end
  for (uint8_t b : bytes) h = (h ^ b) * 0x100000001b3ULL;
  return util::mix64(h);
}

/// EpochSource over a shard's publication ring, with failover splicing:
/// after an adoption the stream continues in a fresh ring owned by the
/// adopting shard. splice() is called exactly once, before the adopter
/// publishes anything into the continuation; the release store on cont_
/// orders primary_count_ for lock-free readers. available() stays monotone:
/// the primary's sealed count is frozen at the splice point.
class RingEpochSource final : public EpochSource {
 public:
  explicit RingEpochSource(const frozen::PublishRing<SealedEpoch>& ring)
      : primary_(&ring) {}

  void splice(uint64_t primary_epochs,
              const frozen::PublishRing<SealedEpoch>* cont) {
    primary_count_.store(primary_epochs, std::memory_order_relaxed);
    cont_.store(cont, std::memory_order_release);
  }

  /// Full sealed record (sessions need wire + ready; the re-admission
  /// verifier needs delta blobs too).
  const SealedEpoch& rec(uint64_t e) const {
    const auto* c = cont_.load(std::memory_order_acquire);
    if (c == nullptr) return primary_->get(e);
    const uint64_t p = primary_count_.load(std::memory_order_relaxed);
    return e <= p ? primary_->get(e) : c->get(e - p);
  }

  uint64_t available() const override {
    const auto* c = cont_.load(std::memory_order_acquire);
    if (c == nullptr) return primary_->sealed();
    return primary_count_.load(std::memory_order_relaxed) + c->sealed();
  }
  bool complete() const override {
    const auto* c = cont_.load(std::memory_order_acquire);
    return c == nullptr ? primary_->closed() : c->closed();
  }
  const EncodedEpoch& at(uint64_t e) const override { return rec(e).wire; }
  double ready_ms(uint64_t e) const override { return rec(e).ready_vt_ms; }

 private:
  const frozen::PublishRing<SealedEpoch>* primary_;
  std::atomic<const frozen::PublishRing<SealedEpoch>*> cont_{nullptr};
  std::atomic<uint64_t> primary_count_{0};
};

/// One-owner-at-a-time claim for the work-stealing sweep.
class TryLock {
 public:
  bool try_acquire() {
    bool expected = false;
    return locked_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire);
  }
  void release() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

struct SwitchSlot {
  size_t index = 0;
  /// Private rule-id namespace: every id this switch's tables, compiler and
  /// deltas ever see is allocated here, so ids are a function of the switch,
  /// not of cross-switch scheduling. Touched only under the owning shard's
  /// lock (task generation at init is serial).
  RuleId id_counter = 0;
  SwitchTask task;  // tables consumed when the engine is built

  // Failover provisions, set at init for switches whose home shard is
  // scheduled to die: a pristine task copy and the id-counter checkpoint
  // taken right after task generation, so an adopting shard can rebuild the
  // compile state with bit-identical rule ids.
  SwitchTask task_backup;
  RuleId id_rebuild_base = 0;
  bool at_risk = false;
  /// Keep delta blobs in the sealed ring records (failover reconstruction
  /// or quarantine re-admission needs the bytes, not just the hashes).
  bool retain_blobs = false;

  // Compile side — guarded by the owning CompileShard's lock; ownership
  // moves wholesale to the adopting shard on failover.
  std::unique_ptr<ChurnEngine> engine;
  frozen::PolicyImage base_image;  // epoch-1 capture (replay-audit anchor)
  frozen::PolicyImage prev_image;  // previous epoch's capture (diff source)
  std::vector<std::shared_ptr<const frozen::Bytes>> audit_blobs;
  bool audited = false;
  bool audit_passed = true;
  uint64_t delta_chain = 0;  // hash chain over every sealed delta blob
  size_t rule_ops = 0;
  std::vector<Rule> expected;  // final composed table; written before close()

  // Failover outcome (written by the adopting shard under its lock).
  bool adopted = false;
  bool failover_ok = true;
  size_t failover_epochs = 0;
  double failover_ms = 0.0;  // kill time -> adoption complete (virtual)

  // Handoff: the shard publishes here, the session consumes lock-free.
  std::unique_ptr<frozen::PublishRing<SealedEpoch>> ring;
  /// Failover continuation ring; the source splices it in at the published
  /// frontier before the adopter seals anything into it.
  std::unique_ptr<frozen::PublishRing<SealedEpoch>> cont_ring;
  std::unique_ptr<RingEpochSource> source;

  // Session side — guarded by `lock`.
  std::unique_ptr<SwitchSession> session;
  TryLock lock;
  bool started = false;
  size_t starved = 0;
  SessionStats stats;
  std::string error;
  std::atomic<bool> finished{false};
};

/// A switch orphaned by a shard kill, queued for adoption. kill_at gates
/// *when* (on the adopter's virtual clock) the orphan integrates; floor is
/// the dead shard's clock at death — the adopter clamps up to it so the
/// continued ready times stay strictly above everything already published.
struct Orphan {
  SwitchSlot* slot = nullptr;
  double kill_at = 0.0;
  double floor = 0.0;
};

struct CompileShard {
  size_t index = 0;
  std::vector<SwitchSlot*> owned;  // fixed round-robin order; grows on adoption
  size_t cursor = 0;
  size_t remaining = 0;  // engines not yet complete
  double vt_ms = 0.0;    // the shard's virtual compile clock
  size_t steps = 0;
  std::string error;
  TryLock lock;
  std::atomic<bool> done{false};

  // Chaos state.
  bool adoptable = false;     // never scheduled to die; may inherit orphans
  double kill_at_ms = -1.0;   // scheduled kill time; < 0 = none pending
  bool killed = false;
  std::mutex adopt_mu;
  std::vector<Orphan> pending;  // guarded by adopt_mu
};

struct Fleet {
  std::vector<std::unique_ptr<SwitchSlot>> slots;
  std::vector<std::unique_ptr<CompileShard>> shards;
  std::atomic<size_t> live_sessions{0};
  std::atomic<size_t> steals{0};
  std::atomic<bool> failed{false};

  /// One entry per scheduled kill; resolved once the kill fired or the
  /// shard escaped by finishing first. The release store happens after the
  /// orphans are queued, so an adopter that observes resolution sees them.
  struct KillState {
    size_t shard = 0;
    double at_ms = 0.0;
    std::atomic<bool> resolved{false};
  };
  std::vector<std::unique_ptr<KillState>> kills;
  std::atomic<size_t> shard_kills{0};
  std::atomic<size_t> kills_escaped{0};

  /// Earliest kill time not yet resolved — the compile-side horizon no
  /// adoptable shard may step past (its orphans must integrate exactly
  /// there for the continued streams to be schedule-independent).
  double min_unresolved_kill() const {
    double t = kInf;
    for (const auto& k : kills) {
      if (!k->resolved.load(std::memory_order_acquire)) {
        t = std::min(t, k->at_ms);
      }
    }
    return t;
  }

  void resolve_kill(size_t shard_index) {
    for (auto& k : kills) {
      if (k->shard == shard_index) {
        k->resolved.store(true, std::memory_order_release);
      }
    }
  }
};

SwitchTask default_task(const FleetSpec& spec, size_t sw) {
  SwitchTask task;
  util::Rng rng(util::hash_pair(spec.seed, sw + 1));
  task.tables.emplace(
      "mon", FlowTable{classbench::generate_monitor(spec.initial_monitor, rng)});
  task.tables.emplace(
      "rtr", FlowTable{classbench::generate_router(spec.initial_router, rng)});
  task.spec = PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  task.churn.leaf = "mon";
  task.churn.updates = spec.updates_per_switch;
  task.churn.seed = util::hash_pair(spec.seed ^ 0x9e3779b97f4a7c15ULL, sw + 1);
  task.churn.burst = spec.burst;
  return task;
}

/// Replays the switch's retained RTDZ delta blobs over its epoch-1 base
/// image; true iff the chain reproduces the final captured image exactly.
bool replay_audit(const SwitchSlot& slot) {
  frozen::PolicyImage replay = slot.base_image;
  for (const auto& blob : slot.audit_blobs) {
    frozen::apply_delta(replay, frozen::decode_delta(*blob));
  }
  return replay == slot.prev_image;
}

/// Compiles and seals one epoch for the shard's next unfinished switch.
/// Caller holds the shard lock. Returns false when every engine is done.
bool seal_next(CompileShard& shard, const FleetSpec& spec) {
  SwitchSlot* slot = nullptr;
  for (size_t probe = 0; probe < shard.owned.size(); ++probe) {
    SwitchSlot* cand = shard.owned[(shard.cursor + probe) % shard.owned.size()];
    if (!cand->engine || !cand->engine->done()) {
      slot = cand;
      shard.cursor = (shard.cursor + probe + 1) % shard.owned.size();
      break;
    }
  }
  if (slot == nullptr) return false;

  flowspace::ScopedRuleIdNamespace ns(&slot->id_counter);
  if (!slot->engine) {
    slot->engine = std::make_unique<ChurnEngine>(
        slot->task.spec, std::move(slot->task.tables), slot->task.churn);
  }
  ChurnEngine::Step step = slot->engine->step();
  const uint64_t epoch = slot->engine->produced();

  // The modelled compile cost is what the shard's clock advances by — the
  // sealed ready time is a function of the step sequence alone, never of
  // which worker ran the step or when.
  shard.vt_ms += spec.compile_base_ms +
                 spec.compile_per_op_ms * static_cast<double>(step.ops);
  ++shard.steps;
  slot->rule_ops += step.ops;

  SealedEpoch sealed;
  sealed.wire.wire =
      std::make_shared<const proto::Bytes>(proto::encode_batch(step.batch));
  sealed.wire.messages = step.batch.size();
  sealed.ops = step.ops;
  sealed.ready_vt_ms = shard.vt_ms;

  frozen::PolicyImage image =
      frozen::capture_policy(slot->engine->frontend(), epoch);
  if (epoch == 1) {
    // No predecessor to diff against: the chain anchors on the base image.
    sealed.delta_hash = hash_bytes(frozen::freeze(image));
    slot->base_image = image;
  } else {
    auto blob = std::make_shared<const frozen::Bytes>(
        frozen::encode_delta(frozen::diff(slot->prev_image, image)));
    sealed.delta_hash = hash_bytes(*blob);
    if (slot->audited || slot->retain_blobs) sealed.delta = blob;
    if (slot->audited) slot->audit_blobs.push_back(std::move(blob));
  }
  slot->delta_chain = util::hash_pair(slot->delta_chain, sealed.delta_hash);
  slot->prev_image = std::move(image);

  frozen::PublishRing<SealedEpoch>& ring =
      slot->cont_ring ? *slot->cont_ring : *slot->ring;
  const bool last = slot->engine->done();
  if (last) {
    // Everything the session will read after observing closed() must be in
    // place before close()'s release store.
    slot->expected = slot->engine->current_rules();
    if (slot->audited) slot->audit_passed = replay_audit(*slot);
  }
  ring.publish(std::make_unique<SealedEpoch>(std::move(sealed)));
  if (last) {
    ring.close();
    --shard.remaining;
  }
  return true;
}

/// Fires a scheduled kill: the shard's in-memory compile state is lost and
/// its unfinished switches queue for adoption, round-robin across the
/// shards the schedule spares. Caller holds the dead shard's lock.
void process_kill(CompileShard& dead, Fleet& fleet) {
  dead.killed = true;
  fleet.shard_kills.fetch_add(1, std::memory_order_relaxed);
  std::vector<CompileShard*> survivors;
  for (const auto& s : fleet.shards) {
    if (s->adoptable) survivors.push_back(s.get());
  }
  size_t rr = 0;
  for (SwitchSlot* slot : dead.owned) {
    if (slot->engine && slot->engine->done()) continue;  // already finished
    // The engine dies with its shard; only the published ring, the pristine
    // task copy and the id checkpoint survive.
    slot->engine.reset();
    Orphan o{slot, dead.kill_at_ms, dead.vt_ms};
    CompileShard& target = *survivors[rr++ % survivors.size()];
    std::lock_guard<std::mutex> g(target.adopt_mu);
    target.pending.push_back(o);
  }
  dead.remaining = 0;
  dead.done.store(true, std::memory_order_release);
  fleet.resolve_kill(dead.index);  // release: after the orphans are queued
}

/// Adopts one orphan: verify the published blob chain, rebuild the engine
/// from the pristine task (ids replay identically), charge the replay to
/// this shard's clock, splice a fresh continuation ring into the session's
/// source. Caller holds the adopting shard's lock.
void adopt_slot(CompileShard& shard, const Orphan& o, const FleetSpec& spec) {
  SwitchSlot& slot = *o.slot;
  // Clamp to the dead shard's final clock: every epoch already published is
  // ready at or below the floor, so the continued ready times stay strictly
  // increasing on the spliced stream.
  shard.vt_ms = std::max(shard.vt_ms, o.floor);
  flowspace::ScopedRuleIdNamespace ns(&slot.id_counter);
  const uint64_t published = slot.ring->sealed();

  // 1. Reconstruct the authoritative compile state from the hash-chained
  // RTDZ delta blobs — the shard-handoff currency — verifying every link.
  bool ok = true;
  frozen::PolicyImage replayed;
  if (published >= 1) {
    replayed = slot.base_image;
    ok = hash_bytes(frozen::freeze(slot.base_image)) ==
         slot.ring->get(1).delta_hash;
    uint64_t chain = util::hash_pair(0, slot.ring->get(1).delta_hash);
    for (uint64_t e = 2; e <= published && ok; ++e) {
      const SealedEpoch& rec = slot.ring->get(e);
      if (!rec.delta || hash_bytes(*rec.delta) != rec.delta_hash) {
        ok = false;
        break;
      }
      frozen::apply_delta(replayed, frozen::decode_delta(*rec.delta));
      chain = util::hash_pair(chain, rec.delta_hash);
    }
    ok = ok && chain == slot.delta_chain;
  }

  // 2. Rebuild the engine from the pristine task and re-step it to the
  // published frontier. The id counter rewinds to its post-task checkpoint,
  // so inside the switch's namespace the replayed compile allocates exactly
  // the ids the dead shard allocated.
  slot.id_counter = slot.id_rebuild_base;
  SwitchTask task = slot.task_backup;
  slot.engine = std::make_unique<ChurnEngine>(
      task.spec, std::move(task.tables), task.churn);
  double replay_cost = 0.0;
  for (uint64_t e = 1; e <= published; ++e) {
    const ChurnEngine::Step step = slot.engine->step();
    replay_cost += spec.failover_replay_factor *
                   (spec.compile_base_ms +
                    spec.compile_per_op_ms * static_cast<double>(step.ops));
  }
  slot.failover_epochs += static_cast<size_t>(published);
  shard.vt_ms += replay_cost;

  // 3. The rebuilt state must equal the blob replay bit for bit — this is
  // the adopted-stream-equals-never-failed-stream guarantee.
  if (published >= 1) {
    frozen::PolicyImage recompiled =
        frozen::capture_policy(slot.engine->frontend(), published);
    ok = ok && recompiled == replayed;
    slot.prev_image = std::move(recompiled);
  }
  slot.failover_ok = ok;
  slot.adopted = true;
  slot.failover_ms = shard.vt_ms - o.kill_at;

  // 4. Fresh continuation ring, spliced in before anything is sealed into
  // it; the session keeps consuming without ever noticing the handoff.
  const uint64_t total = slot.engine->total_epochs();
  slot.cont_ring =
      std::make_unique<frozen::PublishRing<SealedEpoch>>(total - published);
  slot.source->splice(published, slot.cont_ring.get());
  shard.owned.push_back(&slot);
  ++shard.remaining;
}

/// Moves eligible orphans from the pending queue into the shard. An orphan
/// integrates once its kill is the earliest unresolved-or-resolved event at
/// or below this shard's clock: kills integrate in kill-time order, each at
/// the first step boundary where the adopter's clock has reached it (or at
/// the floor directly when the adopter is idle). Caller holds the shard
/// lock. Returns true if anything was adopted.
bool adopt_ready_orphans(CompileShard& shard, Fleet& fleet,
                         const FleetSpec& spec) {
  const double min_unresolved = fleet.min_unresolved_kill();
  std::vector<Orphan> take;
  {
    std::lock_guard<std::mutex> g(shard.adopt_mu);
    for (auto it = shard.pending.begin(); it != shard.pending.end();) {
      // Never integrate a later kill's orphans while an earlier kill is
      // still unresolved — processing order must be the kill-time order.
      const bool in_order = it->kill_at < min_unresolved;
      const bool due = shard.remaining == 0 || it->kill_at <= shard.vt_ms;
      if (in_order && due) {
        take.push_back(*it);
        it = shard.pending.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (take.empty()) return false;
  std::sort(take.begin(), take.end(), [](const Orphan& a, const Orphan& b) {
    if (a.kill_at != b.kill_at) return a.kill_at < b.kill_at;
    return a.slot->index < b.slot->index;
  });
  for (const Orphan& o : take) adopt_slot(shard, o, spec);
  return true;
}

/// Marks the shard done when nothing can ever land on it again. Caller
/// holds the shard lock.
void maybe_retire_shard(CompileShard& shard, Fleet& fleet) {
  if (shard.killed || shard.remaining != 0) return;
  if (shard.kill_at_ms >= 0.0) return;  // kill pending: stay claimable
  if (shard.adoptable) {
    if (fleet.min_unresolved_kill() < kInf) return;  // may inherit orphans
    std::lock_guard<std::mutex> g(shard.adopt_mu);
    if (!shard.pending.empty()) return;
  }
  shard.done.store(true, std::memory_order_release);
}

/// One claimed quantum of compile work: fire due kills, integrate due
/// orphans, seal epochs — never stepping past an unresolved kill time (the
/// compile-side horizon rule that keeps adoption points schedule-
/// independent). Caller holds the shard lock.
bool run_shard_quantum(CompileShard& shard, Fleet& fleet,
                       const FleetSpec& spec) {
  constexpr int kQuantum = 8;  // epochs sealed per shard claim
  bool progress = false;
  for (int q = 0; q < kQuantum; ++q) {
    if (!shard.killed && shard.kill_at_ms >= 0.0) {
      // A kill fires at the first step boundary at or past its virtual
      // time — a pure function of the shard's own step sequence.
      if (shard.vt_ms >= shard.kill_at_ms) {
        process_kill(shard, fleet);
        return true;
      }
      if (shard.remaining == 0) {
        // Every owned stream sealed before the kill time: the kill misses.
        fleet.resolve_kill(shard.index);
        fleet.kills_escaped.fetch_add(1, std::memory_order_relaxed);
        shard.kill_at_ms = -1.0;
        progress = true;
        continue;
      }
    }
    if (shard.adoptable) {
      if (adopt_ready_orphans(shard, fleet, spec)) {
        progress = true;
        continue;
      }
      if (shard.remaining > 0 && shard.vt_ms >= fleet.min_unresolved_kill()) {
        break;  // compile horizon: wall-block until the kill resolves
      }
    }
    if (shard.remaining == 0) break;
    if (!seal_next(shard, spec)) break;
    progress = true;
  }
  maybe_retire_shard(shard, fleet);
  return progress;
}

/// Pumps one session as far as its sealed horizon allows. Caller holds the
/// slot lock. Returns true if the session made progress.
bool pump_slot(SwitchSlot& slot, const FleetSpec& spec, Fleet& fleet) {
  if (slot.finished.load(std::memory_order_relaxed)) return false;
  try {
    if (!slot.started) {
      slot.session->start();
      slot.started = true;
    }
    const bool progress = slot.session->pump_published();
    if (slot.session->done()) {
      // done ⇒ the session observed closed(), so slot.expected is visible
      // and the shard will never write this slot again.
      slot.stats = slot.session->finalize(slot.expected);
    } else if (!progress) {
      if (slot.session->now_ms() > spec.knobs.deadline_ms) {
        // Deadline miss with the compile possibly still running: finalize
        // against nothing (reports non-convergence) rather than racing the
        // shard for slot.expected.
        slot.stats = slot.session->finalize({});
      } else {
        ++slot.starved;  // sealed horizon reached; go compile instead
        return false;
      }
    } else {
      return true;
    }
  } catch (const std::exception& e) {  // workers must not throw
    slot.error = e.what();
    fleet.failed.store(true, std::memory_order_relaxed);
  }
  slot.finished.store(true, std::memory_order_relaxed);
  fleet.live_sessions.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

/// One dispatch worker: sweep sessions, then steal compile work. Workers
/// are symmetric — "stealing" is just running a quantum for a shard whose
/// home worker (index % n_threads) is someone else.
void worker_loop(Fleet& fleet, const FleetSpec& spec, size_t worker,
                 size_t n_threads) {
  const size_t n_slots = fleet.slots.size();
  const size_t n_shards = fleet.shards.size();
  const size_t slot_offset = n_slots == 0 ? 0 : (worker * n_slots) / n_threads;
  while (fleet.live_sessions.load(std::memory_order_acquire) > 0 &&
         !fleet.failed.load(std::memory_order_relaxed)) {
    bool progress = false;
    for (size_t k = 0; k < n_slots; ++k) {
      SwitchSlot& slot = *fleet.slots[(slot_offset + k) % n_slots];
      if (slot.finished.load(std::memory_order_relaxed)) continue;
      if (!slot.lock.try_acquire()) continue;
      progress |= pump_slot(slot, spec, fleet);
      slot.lock.release();
    }
    for (size_t k = 0; k < n_shards; ++k) {
      CompileShard& shard = *fleet.shards[(worker + k) % n_shards];
      if (shard.done.load(std::memory_order_acquire)) continue;
      if (!shard.lock.try_acquire()) continue;
      if (shard.index % n_threads != worker) {
        fleet.steals.fetch_add(1, std::memory_order_relaxed);
      }
      try {
        progress |= run_shard_quantum(shard, fleet, spec);
      } catch (const std::exception& e) {
        shard.error = e.what();
        shard.done.store(true, std::memory_order_release);
        fleet.failed.store(true, std::memory_order_relaxed);
      }
      shard.lock.release();
    }
    if (!progress) std::this_thread::yield();
  }
}

}  // namespace

void ShardedController::validate(const FleetSpec& spec) {
  if (spec.n_switches == 0) {
    throw std::invalid_argument("FleetSpec: n_switches must be > 0");
  }
  if (spec.n_shards == 0) {
    throw std::invalid_argument("FleetSpec: n_shards must be > 0");
  }
  if (spec.n_shards > spec.n_switches) {
    throw std::invalid_argument(
        "FleetSpec: n_shards must not exceed n_switches (" +
        std::to_string(spec.n_shards) + " > " +
        std::to_string(spec.n_switches) + ")");
  }
  if (spec.n_threads == 0) {
    throw std::invalid_argument("FleetSpec: n_threads must be > 0");
  }
  if (spec.compile_base_ms <= 0.0 || spec.compile_per_op_ms <= 0.0) {
    throw std::invalid_argument(
        "FleetSpec: compile costs must be strictly positive (per-ring ready "
        "times must strictly increase)");
  }
  if (spec.failover_replay_factor < 0.0) {
    throw std::invalid_argument(
        "FleetSpec: failover_replay_factor must be >= 0");
  }
  std::vector<bool> killed(spec.n_shards, false);
  for (const ShardKill& k : spec.chaos.shard_kills) {
    if (k.shard >= spec.n_shards) {
      throw std::invalid_argument(
          "FleetSpec: chaos kill targets shard " + std::to_string(k.shard) +
          " of " + std::to_string(spec.n_shards));
    }
    if (k.at_vt_ms <= 0.0) {
      throw std::invalid_argument(
          "FleetSpec: chaos kill times must be strictly positive");
    }
    if (killed[k.shard]) {
      throw std::invalid_argument(
          "FleetSpec: at most one scheduled kill per shard");
    }
    killed[k.shard] = true;
  }
  if (!spec.chaos.shard_kills.empty() &&
      spec.chaos.shard_kills.size() >= spec.n_shards) {
    throw std::invalid_argument(
        "FleetSpec: at least one shard must be spared to adopt orphans");
  }
  for (const AgentBlackout& b : spec.chaos.blackouts) {
    if (b.sw >= spec.n_switches) {
      throw std::invalid_argument(
          "FleetSpec: chaos blackout targets switch " + std::to_string(b.sw) +
          " of " + std::to_string(spec.n_switches));
    }
    if (b.window.duration_ms <= 0.0 || b.window.at_ms < 0.0) {
      throw std::invalid_argument(
          "FleetSpec: blackout windows need at_ms >= 0 and duration_ms > 0");
    }
  }
}

FleetReport ShardedController::run() {
  validate(spec_);
  const auto wall_start = std::chrono::steady_clock::now();
  const size_t n = spec_.n_switches;
  const size_t n_shards = spec_.n_shards;
  const size_t n_threads = std::max<size_t>(spec_.n_threads, 1);

  std::vector<double> kill_at(n_shards, -1.0);
  for (const ShardKill& k : spec_.chaos.shard_kills) {
    kill_at[k.shard] = k.at_vt_ms;
  }

  Fleet fleet;
  fleet.slots.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto slot = std::make_unique<SwitchSlot>();
    slot->index = i;
    slot->id_counter = static_cast<RuleId>(i + 1) << 32;
    {
      flowspace::ScopedRuleIdNamespace ns(&slot->id_counter);
      slot->task = spec_.make_task ? spec_.make_task(i) : default_task(spec_, i);
    }
    slot->audited = spec_.audit_stride != 0 && i % spec_.audit_stride == 0;
    slot->at_risk = kill_at[i % n_shards] >= 0.0;
    if (slot->at_risk) {
      // Failover provisions: the pristine task and the id checkpoint the
      // adopting shard rewinds to when it rebuilds the engine.
      slot->task_backup = slot->task;
      slot->id_rebuild_base = slot->id_counter;
    }
    slot->retain_blobs = slot->at_risk;
    slot->ring = std::make_unique<frozen::PublishRing<SealedEpoch>>(
        slot->task.churn.updates + 1);
    slot->source = std::make_unique<RingEpochSource>(*slot->ring);
    fleet.slots.push_back(std::move(slot));
  }
  for (const AgentBlackout& b : spec_.chaos.blackouts) {
    // A blackout target may quarantine and re-admit: keep its blobs so the
    // warm-boot catch-up material is verifiable.
    fleet.slots[b.sw]->retain_blobs = true;
  }
  for (size_t i = 0; i < n; ++i) {
    SwitchSlot* raw = fleet.slots[i].get();
    SessionConfig sc;
    sc.knobs = spec_.knobs;
    sc.seed = util::hash_pair(spec_.fault_seed, i + 1);
    sc.tcam_capacity = spec_.tcam_capacity;
    for (const AgentBlackout& b : spec_.chaos.blackouts) {
      if (b.sw == i) sc.blackouts.push_back(b.window);
    }
    // Warm-boot catch-up verification at re-admission: replay the frozen
    // base image through the published, hash-chained delta blobs up to the
    // agent's anchor. Lock-free: only ring records (acquire-published) and
    // base_image (ordered by the epoch-1 publish the anchor implies) are
    // read. Without retained blobs (switch never scheduled for chaos) the
    // check passes trivially.
    sc.on_readmit = [raw](uint64_t anchor) {
      if (!raw->retain_blobs) return true;
      const uint64_t upto = std::min<uint64_t>(anchor, raw->source->available());
      if (upto < 1) return true;
      // Scratch namespace: decoding deltas bumps the active rule-id
      // counter, and this replay must not perturb the switch's real stream.
      RuleId scratch = (static_cast<RuleId>(raw->index) + 1) << 48;
      flowspace::ScopedRuleIdNamespace ns(&scratch);
      if (hash_bytes(frozen::freeze(raw->base_image)) !=
          raw->source->rec(1).delta_hash) {
        return false;
      }
      frozen::PolicyImage img = raw->base_image;
      for (uint64_t e = 2; e <= upto; ++e) {
        const SealedEpoch& rec = raw->source->rec(e);
        if (!rec.delta || hash_bytes(*rec.delta) != rec.delta_hash) {
          return false;
        }
        frozen::apply_delta(img, frozen::decode_delta(*rec.delta));
      }
      return true;
    };
    raw->session = std::make_unique<SwitchSession>(sc, *raw->source);
  }
  fleet.live_sessions.store(n, std::memory_order_relaxed);

  fleet.shards.reserve(n_shards);
  for (size_t k = 0; k < n_shards; ++k) {
    auto shard = std::make_unique<CompileShard>();
    shard->index = k;
    shard->kill_at_ms = kill_at[k];
    shard->adoptable = kill_at[k] < 0.0;
    for (size_t i = k; i < n; i += n_shards) {
      shard->owned.push_back(fleet.slots[i].get());
    }
    shard->remaining = shard->owned.size();
    if (shard->owned.empty() && shard->kill_at_ms < 0.0 &&
        spec_.chaos.shard_kills.empty()) {
      shard->done.store(true, std::memory_order_relaxed);
    }
    fleet.shards.push_back(std::move(shard));
  }
  for (const ShardKill& k : spec_.chaos.shard_kills) {
    auto ks = std::make_unique<Fleet::KillState>();
    ks->shard = k.shard;
    ks->at_ms = k.at_vt_ms;
    fleet.kills.push_back(std::move(ks));
  }

  if (n_threads == 1) {
    worker_loop(fleet, spec_, 0, 1);
  } else {
    util::ThreadPool pool(n_threads);
    for (size_t t = 0; t < n_threads; ++t) {
      pool.run([&fleet, this, t, n_threads] {
        worker_loop(fleet, spec_, t, n_threads);
      });
    }
    pool.wait_idle();
  }

  for (const auto& shard : fleet.shards) {
    if (!shard->error.empty()) {
      throw std::runtime_error("fleet shard " + std::to_string(shard->index) +
                               ": " + shard->error);
    }
  }
  for (const auto& slot : fleet.slots) {
    if (!slot->error.empty()) {
      throw std::runtime_error("fleet switch " + std::to_string(slot->index) +
                               ": " + slot->error);
    }
  }

  FleetReport report;
  report.switches = n;
  report.shards = n_shards;
  report.threads = n_threads;
  double active_makespan = 0.0;
  std::vector<SessionStats> stats;
  stats.reserve(n);
  for (const auto& slot : fleet.slots) {
    stats.push_back(slot->stats);
    report.rule_ops += slot->rule_ops;
    if (slot->audited) {
      ++report.replay_audits;
      report.replay_ok = report.replay_ok && slot->audit_passed;
    }
    if (slot->adopted) {
      ++report.failovers;
      report.failover_ok = report.failover_ok && slot->failover_ok;
      report.failover_epochs += slot->failover_epochs;
      report.failover_ms.add(slot->failover_ms);
    }
    report.starved_pumps += slot->starved;
    if (slot->stats.quarantines == 0) {
      ++report.active_switches;
      report.active_rule_ops += slot->rule_ops;
      active_makespan = std::max(active_makespan, slot->stats.makespan_ms);
    }

    // Per-switch digest: deterministic session counters plus the final TCAM
    // layout, combined order-independently (wrapping sum) across switches.
    uint64_t h = util::hash_pair(slot->index + 1, slot->stats.epochs);
    h = util::hash_pair(h, slot->stats.entry_writes);
    h = util::hash_pair(h, slot->stats.moves);
    h = util::hash_pair(h, slot->stats.data_frames_sent);
    h = util::hash_pair(h, std::bit_cast<uint64_t>(slot->stats.makespan_ms));
    // Layout-only digest alongside: the chaos harness compares final TCAM
    // contents against a clean run's, where counters legitimately differ.
    uint64_t lh = util::hash_pair(slot->index + 1, 0x1a707u);
    const tcam::Tcam& device = slot->session->agent().device().tcam();
    for (size_t addr = 0; addr < device.capacity(); ++addr) {
      if (auto id = device.at(addr)) {
        h = util::hash_pair(h, util::hash_pair(addr, *id));
        lh = util::hash_pair(lh, util::hash_pair(addr, *id));
      }
    }
    report.fleet_fingerprint += h;
    report.layout_fingerprint += lh;
    report.delta_fingerprint +=
        util::hash_pair(slot->index + 1, slot->delta_chain);
  }
  for (const auto& shard : fleet.shards) {
    report.compile_vt_ms = std::max(report.compile_vt_ms, shard->vt_ms);
    report.shard_steps += shard->steps;
  }
  report.steals = fleet.steals.load(std::memory_order_relaxed);
  report.shard_kills = fleet.shard_kills.load(std::memory_order_relaxed);
  report.kills_escaped = fleet.kills_escaped.load(std::memory_order_relaxed);
  report.runtime = merge_session_stats(std::move(stats));
  report.quarantines = report.runtime.quarantines;
  report.readmissions = report.runtime.readmissions;
  report.rejoin_ms = report.runtime.rejoin_ms;
  // Quarantined switches are excluded from the fleet makespan (their rejoin
  // latencies are reported on their own); with every switch quarantined the
  // full merged makespan is all that is left.
  report.makespan_ms = report.active_switches > 0 ? active_makespan
                                                  : report.runtime.makespan_ms;
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return report;
}

}  // namespace ruletris::runtime
