// Controller-side switch session: windowed, barrier-acked, fault-tolerant
// replication of the shared epoch log to one switch agent.
//
// State machine (see DESIGN.md "Runtime"):
//
//   [base, next) = unacked epochs in flight, |in flight| <= window
//
//   send      : while next < base + window, transmit epoch `next++`
//   ack(a)    : cumulative — commits every epoch <= a, slides `base`,
//               refills the window (backpressure lives here: epoch e cannot
//               leave the controller before epoch e - window is committed)
//   timeout   : retry timer on the oldest unacked epoch; on firing, every
//               epoch in [base, next) is retransmitted (the agent discards
//               what it already applied and re-acks)
//   restart   : the agent loses its reorder buffer and reports its last
//               applied epoch L via a resync frame; the controller treats L
//               as a cumulative ack and replays (L, next) — the
//               barrier-anchored resync path
//   quarantine: after retry.quarantine_after consecutive silent rounds the
//               session stops retransmitting into the void and probes on a
//               slow cadence instead; the first resync (or progressing ack)
//               that makes it back re-admits the switch through the normal
//               replay machinery, after the warm-boot catch-up check
//
// The whole session runs on a private virtual-time EventQueue with a
// private seeded FaultyWire, so a session's entire life — including every
// fault — is a deterministic function of (config, epoch log), independent
// of other sessions, wall clock and thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flowspace/rule.h"
#include "proto/codec.h"
#include "runtime/agent.h"
#include "runtime/config.h"
#include "runtime/event_queue.h"
#include "runtime/frame.h"
#include "runtime/wire.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ruletris::runtime {

/// One pre-encoded controller epoch: the shared wire payload plus the
/// message count (for the agent's modelled parse cost). Epoch number e maps
/// to epochs[e - 1]; epoch numbers are 1-based so 0 can mean "nothing
/// applied yet" in acks and resyncs.
struct EncodedEpoch {
  std::shared_ptr<const proto::Bytes> wire;
  size_t messages = 0;
};

/// Where a session's epochs come from. Historically a session replayed a
/// fixed pre-encoded vector; the sharded controller instead feeds sessions
/// from lock-free publication rings that grow while the session runs, so
/// the log is an interface: a monotone count of sealed epochs, a completion
/// flag, and a per-epoch *virtual ready time* — the compile shard's virtual
/// clock when it sealed the epoch. A session never sends epoch e before
/// ready_ms(e) on its own virtual clock, which is what makes the pipelined
/// compile→transmit overlap show up in virtual time, deterministically.
///
/// Contract: available() is monotone non-decreasing; an available() call
/// *after* complete() returned true returns the final count (callers read
/// complete() first, then available()); ready_ms must be strictly
/// increasing in the epoch number (the horizon rule in pump_published()
/// relies on it to keep event order independent of wall-clock publication
/// timing).
class EpochSource {
 public:
  virtual ~EpochSource() = default;
  /// Number of sealed epochs so far (epoch numbers are 1-based).
  virtual uint64_t available() const = 0;
  /// True once no further epochs will be sealed.
  virtual bool complete() const = 0;
  /// Sealed epoch `e`, e <= available().
  virtual const EncodedEpoch& at(uint64_t e) const = 0;
  /// Virtual time epoch `e` became sendable; strictly increasing in e.
  virtual double ready_ms(uint64_t e) const = 0;
};

/// A fully materialized log: every epoch available and ready at t=0. This
/// is the classic shared-log path; sessions on a VectorEpochSource behave
/// exactly as they did before the source abstraction existed.
class VectorEpochSource final : public EpochSource {
 public:
  explicit VectorEpochSource(const std::vector<EncodedEpoch>& epochs)
      : epochs_(epochs) {}
  uint64_t available() const override { return epochs_.size(); }
  bool complete() const override { return true; }
  const EncodedEpoch& at(uint64_t e) const override { return epochs_[e - 1]; }
  double ready_ms(uint64_t) const override { return 0.0; }

 private:
  const std::vector<EncodedEpoch>& epochs_;
};

struct SessionStats {
  size_t epochs = 0;
  size_t data_frames_sent = 0;  // first sends + retransmits + resync replays
  size_t retransmits = 0;       // timeout-driven re-sends
  size_t resync_replays = 0;    // frames re-sent on the resync path
  size_t resyncs = 0;           // resync requests received
  size_t stale_resyncs = 0;     // resyncs anchored below base_ (racing restarts)
  size_t restarts = 0;          // agent restarts
  size_t timeouts = 0;          // retry timer firings that found unacked epochs
  size_t duplicates = 0;        // frames the agent discarded as already applied
  size_t acks = 0;              // ack frames received
  size_t nacks = 0;             // corrupted data frames the agent NACKed
  size_t nack_retransmits = 0;  // re-sends triggered by NACKs
  size_t crashes = 0;           // firmware crashes mid-transaction
  size_t roll_forwards = 0;     // recoveries that committed a sealed txn
  size_t recovered_writes = 0;  // TCAM writes spent undoing torn chains
  size_t apply_failures = 0;    // firmware rejections (should be 0)
  size_t table_full = 0;        // updates rejected with ApplyStatus::kTableFull
  size_t rolled_back = 0;       // updates undone with ApplyStatus::kRolledBack
  size_t entry_writes = 0;      // total TCAM entry writes across applied epochs
  size_t moves = 0;             // relocation subset: what the DAG schedule costs
  size_t quarantines = 0;       // silent-round escalations that benched the switch
  size_t readmissions = 0;      // quarantined sessions brought back via resync
  size_t probe_sends = 0;       // liveness probes sent while quarantined
  size_t blackout_drops = 0;    // frames that arrived while the agent was dark
  size_t readmit_failures = 0;  // warm-boot catch-up verifications that failed
  size_t rejoin_audit_violations = 0;  // structural audits failed on rejoin
  FaultyWire::Counters wire;    // raw wire-level fault counters
  double makespan_ms = 0.0;     // virtual time until every epoch was committed
  bool completed = false;       // log drained before the virtual deadline
  bool converged = false;       // final TCAM == expected rules, layout valid
  bool quarantined_end = false;  // still quarantined when the run ended

  // Latency decomposition, one Histogram per session: lock-free on the hot
  // path, merged by the controller at report time.
  util::Histogram ack_ms;       // first send of an epoch -> ack committing it
  util::Histogram channel_ms;   // per delivered data frame: send -> arrival
  util::Histogram firmware_ms;  // wall clock (diagnostic, not deterministic)
  util::Histogram tcam_ms;      // modelled entry writes x 0.6 ms
  util::Histogram rejoin_ms;    // quarantine entry -> re-admission (virtual)
};

class SwitchSession {
 public:
  /// `epochs` is the controller's shared encoded log; it must outlive the
  /// session and is read-only here.
  SwitchSession(const SessionConfig& config, const std::vector<EncodedEpoch>& epochs);

  /// Feeds the session from a growing source (the sharded-controller path).
  /// `source` must outlive the session. Drive with start() +
  /// pump_published(); run() also works once the source is complete.
  SwitchSession(const SessionConfig& config, const EpochSource& source);

  /// Drives the session to completion (every epoch acked) or to the virtual
  /// deadline, then verifies convergence: the agent's TCAM must hold
  /// exactly `expected` (id, match and actions) and satisfy every DAG
  /// constraint.
  SessionStats run(const std::vector<flowspace::Rule>& expected);

  // ---- Stepped (fleet-gated) driving -----------------------------------
  // The netplan FleetController paces N sessions through barrier-fenced
  // rounds: raise the send gate to round e, pump each session until e is
  // committed, then park every clock at the slowest peer's commit time.
  // run() above is exactly start() + pump-everything + finalize().

  /// Arms timers/restarts and opens the initial window (bounded by the send
  /// gate). Call once, before any run_until_committed().
  void start();

  /// Epochs above `max_epoch` may not leave the controller. Raising the
  /// gate refills the window immediately. Default: no gate.
  void set_send_limit(uint64_t max_epoch);

  /// Pumps the event loop until epoch `epoch` is committed (cumulatively
  /// acked). Returns false if the session stalled or hit its deadline
  /// first. Epochs beyond the send gate never commit — gate first.
  bool run_until_committed(uint64_t epoch);

  /// Parks the session's virtual clock at `t` (a fleet round barrier).
  void advance_clock(double t) { events_.advance_to(t); }

  // ---- Pipelined (growing-source) driving ------------------------------
  // The sharded controller's dispatch workers pump sessions whose logs are
  // still being compiled. pump_published() runs events and gated first
  // sends in strict virtual-time order, but never past the source's sealed
  // horizon: with epochs still unsealed, their (strictly later) ready times
  // could demand a send below any event beyond the horizon, so the session
  // *wall-blocks* there instead of guessing — which is exactly what makes
  // the virtual trajectory a pure function of the workload, bit-identical
  // across thread counts and scheduling. Ties between a gated send and an
  // event at the same virtual time resolve send-first, deterministically.

  /// Makes as much progress as the sealed horizon allows. Returns true if
  /// any event ran or any epoch was sent; false means the session is done,
  /// starved on an unsealed epoch (caller should go compile), or past its
  /// deadline.
  bool pump_published();

  /// Collects final stats and verifies convergence against `expected`.
  SessionStats finalize(const std::vector<flowspace::Rule>& expected);

  double now_ms() const { return events_.now(); }
  uint64_t committed() const { return base_ - 1; }
  bool done() const { return done_; }

  const SwitchAgent& agent() const { return agent_; }

 private:
  void send_window();
  uint64_t highest_sendable() const;
  void maybe_finish();
  enum class SendKind { kFirst, kRetransmit, kResyncReplay, kNackResend };
  void send_epoch(uint64_t epoch, SendKind kind);
  void send_ack_frame(FrameKind kind, uint64_t epoch, double at_ms);
  void on_data_delivered(uint64_t epoch, double send_ms,
                         const std::shared_ptr<const proto::Bytes>& payload);
  void handle_ingest(uint64_t epoch, const SwitchAgent::Ingest& ingest);
  void on_crash(double crash_ms);
  void on_recovered();
  void on_ack(uint64_t acked);
  void on_nack(uint64_t epoch);
  void on_resync(uint64_t last_applied);
  void advance_base(uint64_t acked);
  double retry_interval_ms();
  void arm_timer();
  void on_timer(uint64_t generation);
  void enter_quarantine();
  void readmit(uint64_t anchor);
  void arm_probe();
  void on_probe(uint64_t generation);
  void on_probe_delivered();
  bool agent_dark(double t) const;
  void schedule_restart();
  void on_restart();
  void finish();
  void verify(const std::vector<flowspace::Rule>& expected);

  SessionConfig cfg_;
  std::unique_ptr<VectorEpochSource> owned_source_;  // vector-log convenience
  const EpochSource* source_;
  EventQueue events_;
  FaultyWire wire_;
  util::Rng restart_rng_;
  util::Rng backoff_rng_;  // jitter for escalated retries and probes
  SwitchAgent agent_;
  uint64_t base_ = 1;          // oldest uncommitted epoch
  uint64_t next_to_send_ = 1;  // next epoch to leave the controller
  uint64_t send_limit_ = UINT64_MAX;  // fleet round gate (inclusive)
  std::vector<double> first_send_ms_;  // per epoch, for ack latency
  uint64_t timer_generation_ = 0;
  size_t silent_rounds_ = 0;   // consecutive retry rounds without ack progress
  double loss_ewma_ = 0.0;     // per-session loss estimate in [0, 1]
  bool quarantined_ = false;
  double quarantine_enter_ms_ = 0.0;
  uint64_t probe_generation_ = 0;
  bool done_ = false;
  SessionStats stats_;
};

}  // namespace ruletris::runtime
