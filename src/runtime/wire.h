// Fault-injecting simulated wire.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/channel.h"
#include "runtime/config.h"
#include "util/rng.h"

namespace ruletris::runtime {

/// One direction-agnostic control link. Base latency comes from the
/// ChannelModel's one-way cost over the *actual* encoded frame size; the
/// seeded fault mix then drops, duplicates or delays the frame. Every send
/// consumes a fixed number of RNG draws whichever faults fire, so a
/// session's fault stream depends only on its seed and its own send count —
/// never on other sessions, wall clock, or which branches earlier sends
/// took. That per-session isolation is what makes the whole runtime
/// deterministic across thread counts.
class FaultyWire {
 public:
  FaultyWire(const proto::ChannelModel& channel, const FaultSpec& faults,
             uint64_t seed)
      : channel_(channel), faults_(faults), rng_(seed) {}

  /// One far-end delivery of a sent frame. A corrupted delivery arrives on
  /// time but damaged: `corrupt_bits` seeds which bit of the frame flipped
  /// in transit (the receiver decides what that means for its frame type).
  struct Delivery {
    double at_ms = 0.0;
    bool corrupted = false;
    uint64_t corrupt_bits = 0;

    bool operator==(const Delivery&) const = default;
  };

  /// Far-end deliveries for a frame of `wire_bytes` sent at `now_ms`:
  /// empty = dropped, two entries = duplicated. Arrivals of successive
  /// sends may interleave (delay jitter => reordering).
  std::vector<Delivery> arrivals(double now_ms, size_t wire_bytes);

  struct Counters {
    size_t sent = 0;
    size_t dropped = 0;
    size_t duplicated = 0;
    size_t delayed = 0;
    size_t corrupted = 0;

    bool operator==(const Counters&) const = default;
  };
  const Counters& counters() const { return counters_; }

 private:
  proto::ChannelModel channel_;
  FaultSpec faults_;
  util::Rng rng_;
  Counters counters_;
};

}  // namespace ruletris::runtime
