// Prefix-sharded compile partitioning.
//
// One incremental compile pipeline serializes every update to its policy;
// the fleet controller's path past that bottleneck is to split the rule
// space itself. A ShardPlan routes rules to K compile shards by dst-IP
// prefix bucket — the same top-octet geometry RuleIndex exploits — so each
// shard runs the full incremental min-DAG pipeline over a disjoint slice of
// the policy and the slices compile with zero cross-shard coordination.
//
// Soundness: two rules can interact in composition (produce an intersection
// entry, a DAG edge, or shadow each other) only when their matches overlap,
// and two matches whose dst buckets differ cannot overlap. Rules too coarse
// to bucket (dst prefix shorter than bucket_bits) are routed to shard 0,
// the catch-all; cross_shard_overlaps() verifies the closure so callers can
// check that a concrete table set really does split cleanly. When it does,
// the union of the per-shard CompileSnapshots equals the unsharded
// snapshot — merge_shard_snapshots() builds that union in canonical order
// and tests/fleet_test asserts the equality property.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/composed_node.h"
#include "flowspace/rule.h"

namespace ruletris::compiler {

struct ShardPlan {
  size_t n_shards = 1;
  /// Rules whose dst_ip prefix covers at least this many bits are bucketed
  /// by those bits; coarser rules land in the catch-all shard 0.
  uint32_t bucket_bits = 8;

  static ShardPlan make(size_t n_shards, uint32_t bucket_bits = 8);

  /// True when `m` is too coarse to bucket (routes to shard 0).
  bool catch_all(const flowspace::TernaryMatch& m) const;

  /// Deterministic shard for a match: splitmix of the dst bucket value
  /// modulo n_shards, or 0 for catch-all matches.
  size_t shard_of(const flowspace::TernaryMatch& m) const;
  size_t shard_of(const flowspace::Rule& r) const { return shard_of(r.match); }

  /// Splits every named table by shard_of. Result[k] holds, for each table
  /// name, the sub-table of rules routed to shard k (possibly empty). Rule
  /// ids, priorities and relative order are preserved, so per-shard
  /// compiles see exactly the slices of the original tables.
  std::vector<std::map<std::string, flowspace::FlowTable>> split(
      const std::map<std::string, flowspace::FlowTable>& tables) const;

  /// Number of rule pairs that overlap across different shards of `parts`
  /// (0 == the partition is closed and per-shard compiles compose exactly).
  /// RuleIndex-pruned: one index per shard, each rule probed against the
  /// indexes of later shards only.
  static size_t cross_shard_overlaps(
      const std::vector<std::map<std::string, flowspace::FlowTable>>& parts);
};

/// Union of per-shard snapshots in the canonical sorted order
/// CompileSnapshot uses, for sharded ≡ unsharded equality checks.
CompileSnapshot merge_shard_snapshots(std::vector<CompileSnapshot> parts);

}  // namespace ruletris::compiler
