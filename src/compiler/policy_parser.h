// Textual policy expressions, e.g. "(monitor + router) $ fallback".
//
// Grammar (left-associative; '>' binds tighter than '+' and '$'):
//   expr   := term (('+' | '$') term)*
//   term   := factor ('>' factor)*
//   factor := IDENT | '(' expr ')'
//   IDENT  := [A-Za-z_][A-Za-z0-9_-]*
// Used by the CLI driver and handy for configuration files.
#pragma once

#include <stdexcept>
#include <string>

#include "compiler/policy_spec.h"

namespace ruletris::compiler {

class PolicyParseError : public std::runtime_error {
 public:
  PolicyParseError(const std::string& message, size_t position)
      : std::runtime_error(message + " (at offset " + std::to_string(position) + ")"),
        position_(position) {}

  size_t position() const { return position_; }

 private:
  size_t position_;
};

/// Parses `text` into a PolicySpec; throws PolicyParseError on bad input.
PolicySpec parse_policy(const std::string& text);

/// Renders a spec back to its textual form (fully parenthesized).
std::string policy_to_string(const PolicySpec& spec);

}  // namespace ruletris::compiler
