#include "compiler/shard_plan.h"

#include <algorithm>
#include <stdexcept>

#include "flowspace/rule_index.h"
#include "util/hash.h"

namespace ruletris::compiler {

using flowspace::FieldId;
using flowspace::FieldTernary;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleIndex;
using flowspace::TernaryMatch;

ShardPlan ShardPlan::make(size_t n_shards, uint32_t bucket_bits) {
  if (n_shards == 0) throw std::runtime_error("ShardPlan: n_shards must be >= 1");
  if (bucket_bits == 0 || bucket_bits > 32) {
    throw std::runtime_error("ShardPlan: bucket_bits must be in [1, 32]");
  }
  ShardPlan plan;
  plan.n_shards = n_shards;
  plan.bucket_bits = bucket_bits;
  return plan;
}

bool ShardPlan::catch_all(const TernaryMatch& m) const {
  const FieldTernary& dst = m.field(FieldId::kDstIp);
  const uint32_t top = 0xffffffffu << (32 - bucket_bits);
  return (dst.mask & top) != top;
}

size_t ShardPlan::shard_of(const TernaryMatch& m) const {
  if (catch_all(m)) return 0;
  const FieldTernary& dst = m.field(FieldId::kDstIp);
  const uint32_t bucket = dst.value >> (32 - bucket_bits);
  return static_cast<size_t>(util::mix64(bucket) % n_shards);
}

std::vector<std::map<std::string, FlowTable>> ShardPlan::split(
    const std::map<std::string, FlowTable>& tables) const {
  std::vector<std::map<std::string, FlowTable>> parts(n_shards);
  for (const auto& [name, table] : tables) {
    std::vector<std::vector<Rule>> slices(n_shards);
    for (const Rule& r : table.rules()) slices[shard_of(r)].push_back(r);
    for (size_t k = 0; k < n_shards; ++k) {
      parts[k].emplace(name, FlowTable{std::move(slices[k])});
    }
  }
  return parts;
}

size_t ShardPlan::cross_shard_overlaps(
    const std::vector<std::map<std::string, FlowTable>>& parts) {
  // One index over each shard's whole rule population (all tables pooled:
  // composition can relate rules from different member tables).
  std::vector<RuleIndex> indexes(parts.size());
  std::vector<std::vector<TernaryMatch>> matches(parts.size());
  for (size_t k = 0; k < parts.size(); ++k) {
    for (const auto& [name, table] : parts[k]) {
      (void)name;
      for (const Rule& r : table.rules()) {
        matches[k].push_back(r.match);
        indexes[k].insert(static_cast<flowspace::RuleId>(matches[k].size()),
                          r.match);
      }
    }
  }
  size_t violations = 0;
  for (size_t k = 0; k < parts.size(); ++k) {
    for (const TernaryMatch& m : matches[k]) {
      for (size_t other = k + 1; other < parts.size(); ++other) {
        indexes[other].for_each_overlapping(
            m, [&](flowspace::RuleId, const TernaryMatch&) { ++violations; });
      }
    }
  }
  return violations;
}

CompileSnapshot merge_shard_snapshots(std::vector<CompileSnapshot> parts) {
  CompileSnapshot merged;
  for (CompileSnapshot& part : parts) {
    merged.entries.insert(merged.entries.end(),
                          std::make_move_iterator(part.entries.begin()),
                          std::make_move_iterator(part.entries.end()));
    merged.reps.insert(merged.reps.end(), part.reps.begin(), part.reps.end());
    merged.visible_edges.insert(merged.visible_edges.end(),
                                part.visible_edges.begin(),
                                part.visible_edges.end());
  }
  // Provenance pairs are unique per entry and shards are disjoint slices of
  // one rule population, so sorting by provenance alone restores the
  // canonical order an unsharded snapshot uses.
  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const auto& a, const auto& b) {
              return std::make_pair(std::get<0>(a), std::get<1>(a)) <
                     std::make_pair(std::get<0>(b), std::get<1>(b));
            });
  std::sort(merged.reps.begin(), merged.reps.end());
  std::sort(merged.visible_edges.begin(), merged.visible_edges.end());
  return merged;
}

}  // namespace ruletris::compiler
