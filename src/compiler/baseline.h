// Baseline composition compiler (Sec. VI, VII-A).
//
// "The baseline compiler recompiles the new flow table from scratch for
// every rule update and assigns sequential priority values to the new flow
// table." Its output stream therefore contains a large number of updates
// that only change rule priorities — the behaviour the paper uses to show
// why naive compilation murders TCAM update latency.
#pragma once

#include <map>
#include <string>

#include "compiler/policy_spec.h"
#include "compiler/prioritized.h"
#include "flowspace/rule.h"

namespace ruletris::compiler {

/// From-scratch composition of the spec over the given member tables, with
/// sequential priorities (size .. 1) and first-wins dedup of equal matches.
/// Also used by tests as the reference semantics for composed tables.
std::vector<flowspace::Rule> compose_from_scratch(
    const PolicySpec& spec, const std::map<std::string, flowspace::FlowTable>& tables);

class BaselineCompiler {
 public:
  BaselineCompiler(PolicySpec spec,
                   std::map<std::string, flowspace::FlowTable> initial_tables);

  /// Current compiled output (descending priority order).
  const std::vector<flowspace::Rule>& compiled() const { return output_; }

  PrioritizedUpdate insert(const std::string& leaf, flowspace::Rule rule);
  PrioritizedUpdate remove(const std::string& leaf, flowspace::RuleId id);

 private:
  /// Recompiles everything and diffs against the previous output by match:
  /// new matches become adds, vanished matches become deletes, and matches
  /// whose priority or actions changed become modifies (ids are kept stable
  /// for persistent matches so the diff is well-defined).
  PrioritizedUpdate recompile_and_diff();

  PolicySpec spec_;
  std::map<std::string, flowspace::FlowTable> tables_;
  std::vector<flowspace::Rule> output_;
};

}  // namespace ruletris::compiler
