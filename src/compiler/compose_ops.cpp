#include "compiler/compose_ops.h"

#include <stdexcept>

#include "compiler/composed_node.h"

namespace ruletris::compiler {

using flowspace::ActionList;
using flowspace::Rule;
using flowspace::TernaryMatch;

std::optional<std::pair<TernaryMatch, ActionList>> compose_rule_pair(OpKind op,
                                                                     const Rule& l,
                                                                     const Rule& r) {
  switch (op) {
    case OpKind::kParallel: {
      auto match = l.match.intersect(r.match);
      if (!match) return std::nullopt;
      return std::make_pair(*match, ActionList::parallel_union(l.actions, r.actions));
    }
    case OpKind::kSequential: {
      auto preimage = l.actions.rewrite_preimage(r.match);
      if (!preimage) return std::nullopt;
      auto match = l.match.intersect(*preimage);
      if (!match) return std::nullopt;
      return std::make_pair(*match,
                            ActionList::sequential_merge(l.actions, r.actions));
    }
    case OpKind::kPriority:
      break;
  }
  throw std::invalid_argument("compose_rule_pair: priority op does not compose pairs");
}

TernaryMatch right_probe_match(OpKind op, const TernaryMatch& left_match,
                               const ActionList& left_actions) {
  if (op == OpKind::kSequential) return left_actions.apply_rewrites(left_match);
  return left_match;
}

}  // namespace ruletris::compiler
