// CoVisor-style incremental composition compiler (Jin et al., NSDI'15;
// paper Sec. VI baseline).
//
// CoVisor compiles incrementally using an overlap index (so its compilation
// time is excellent) and assigns priorities with a convenient algebra that
// never reprioritizes existing rules:
//   parallel:   p = p_left + p_right
//   sequential: p = p_left * kSeqWidth + p_right
//   priority:   left rules get a large offset above right rules
// It ships prioritized adds/deletes only — no dependency information — which
// is exactly why the switch firmware must over-conservatively move TCAM
// entries for it (the effect RuleTris eliminates).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "compiler/policy_spec.h"
#include "compiler/prioritized.h"
#include "flowspace/rule.h"
#include "flowspace/rule_index.h"

namespace ruletris::compiler {

/// Priority-space width reserved for a sequential right member. Leaf
/// priorities must stay below this for the algebra to be order-preserving.
inline constexpr int32_t kCovisorSeqWidth = 1 << 13;
/// Offset stacking a priority-operator's left member above its right member.
inline constexpr int32_t kCovisorPriorityOffset = 1 << 26;

class CovisorCompiler {
 public:
  CovisorCompiler(const PolicySpec& spec,
                  std::map<std::string, flowspace::FlowTable> initial_tables);
  ~CovisorCompiler();

  PrioritizedUpdate insert(const std::string& leaf, flowspace::Rule rule);
  PrioritizedUpdate remove(const std::string& leaf, flowspace::RuleId id);

  /// The current composed table, descending priority order.
  std::vector<flowspace::Rule> compiled() const;

 private:
  struct Node;
  std::unique_ptr<Node> build(const PolicySpec& spec,
                              std::map<std::string, flowspace::FlowTable>& tables);
  PrioritizedUpdate propagate(const std::string& leaf, PrioritizedUpdate update);

  std::unique_ptr<Node> root_;
  struct LeafRef {
    Node* node = nullptr;
    std::vector<std::pair<Node*, bool>> path;  // parent chain with side flag
  };
  std::map<std::string, LeafRef> leaves_;
};

}  // namespace ruletris::compiler
