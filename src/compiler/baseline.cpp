#include "compiler/baseline.h"

#include <unordered_map>

#include "compiler/compose_ops.h"
#include "compiler/composed_node.h"

namespace ruletris::compiler {

using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using flowspace::TernaryMatchHash;

namespace {

// Composes two rule lists (already in match order) under `op`, returning the
// result in match order. Lexicographic (left, right) pair order realizes the
// "descending priority order" iteration of Sec. IV-A.
std::vector<Rule> compose_lists(OpKind op, const std::vector<Rule>& left,
                                const std::vector<Rule>& right) {
  std::vector<Rule> out;
  if (op == OpKind::kPriority) {
    out = left;
    out.insert(out.end(), right.begin(), right.end());
    return out;
  }
  for (const Rule& l : left) {
    for (const Rule& r : right) {
      auto composed = compose_rule_pair(op, l, r);
      if (!composed) continue;
      out.push_back(Rule{flowspace::next_rule_id(), std::move(composed->first),
                         std::move(composed->second), 0});
    }
  }
  return out;
}

std::vector<Rule> compose_spec(const PolicySpec& spec,
                               const std::map<std::string, FlowTable>& tables) {
  if (spec.is_leaf) {
    auto it = tables.find(spec.leaf_name);
    return it == tables.end() ? std::vector<Rule>{} : it->second.rules();
  }
  return compose_lists(static_cast<OpKind>(spec.op),
                       compose_spec(*spec.left, tables),
                       compose_spec(*spec.right, tables));
}

}  // namespace

std::vector<Rule> compose_from_scratch(const PolicySpec& spec,
                                       const std::map<std::string, FlowTable>& tables) {
  std::vector<Rule> raw = compose_spec(spec, tables);
  // First-wins dedup of identical matches: the earlier rule obscures the
  // later one for every packet, so dropping the latter is semantics-free.
  std::vector<Rule> out;
  out.reserve(raw.size());
  std::unordered_map<TernaryMatch, bool, TernaryMatchHash> seen;
  for (Rule& r : raw) {
    if (!seen.emplace(r.match, true).second) continue;
    out.push_back(std::move(r));
  }
  int32_t priority = static_cast<int32_t>(out.size());
  for (Rule& r : out) r.priority = priority--;
  return out;
}

BaselineCompiler::BaselineCompiler(PolicySpec spec,
                                   std::map<std::string, FlowTable> initial_tables)
    : spec_(std::move(spec)), tables_(std::move(initial_tables)) {
  output_ = compose_from_scratch(spec_, tables_);
}

PrioritizedUpdate BaselineCompiler::recompile_and_diff() {
  std::vector<Rule> fresh = compose_from_scratch(spec_, tables_);

  std::unordered_map<TernaryMatch, const Rule*, TernaryMatchHash> old_by_match;
  for (const Rule& r : output_) old_by_match[r.match] = &r;

  PrioritizedUpdate ops;
  for (Rule& r : fresh) {
    auto it = old_by_match.find(r.match);
    if (it == old_by_match.end()) {
      ops.push_back(PrioritizedOp::add(r));
      continue;
    }
    // Keep the id stable for a persistent match.
    r.id = it->second->id;
    if (r.actions != it->second->actions || r.priority != it->second->priority) {
      ops.push_back(PrioritizedOp::mod(r));
    }
    old_by_match.erase(it);
  }
  for (const auto& [match, rule] : old_by_match) {
    (void)match;
    ops.push_back(PrioritizedOp::del(rule->id));
  }
  output_ = std::move(fresh);
  return ops;
}

PrioritizedUpdate BaselineCompiler::insert(const std::string& leaf, Rule rule) {
  tables_.at(leaf).insert(std::move(rule));
  return recompile_and_diff();
}

PrioritizedUpdate BaselineCompiler::remove(const std::string& leaf, RuleId id) {
  tables_.at(leaf).erase(id);
  return recompile_and_diff();
}

}  // namespace ruletris::compiler
