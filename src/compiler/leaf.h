// Leaf table node: a prioritized member flow table with incrementally
// maintained minimum DAG.
//
// Applications and guest controllers are not required to be dependency-aware
// (Sec. III-B): they populate ordinary prioritized tables, and the leaf node
// extracts and incrementally maintains the minimum DAG. The per-update
// maintenance here is exact — it recomputes direct-dependency only for the
// pairs whose "between" set changed, found via the overlap index — so the
// leaf DAG always equals the brute-force minimum DAG (tested).
#pragma once

#include "compiler/node.h"
#include "compiler/update.h"
#include "flowspace/rule_index.h"

namespace ruletris::compiler {

class LeafNode final : public PolicyNode {
 public:
  LeafNode() = default;

  /// Bulk-loads an initial prioritized table and builds its DAG.
  explicit LeafNode(flowspace::FlowTable table);

  /// Inserts a prioritized rule; returns the visible update (the rule plus
  /// the DAG delta: new direct dependencies and edges it now covers).
  TableUpdate insert(Rule rule);

  /// Removes a rule by id; returns the visible update.
  TableUpdate remove(RuleId id);

  const flowspace::FlowTable& table() const { return table_; }

  // PolicyNode interface.
  std::vector<Rule> visible_rules_in_order() const override;
  const DependencyGraph& visible_graph() const override { return graph_; }
  bool has_visible(RuleId id) const override { return table_.contains(id); }
  const TernaryMatch& visible_match(RuleId id) const override {
    return table_.rule(id).match;
  }
  const ActionList& visible_actions(RuleId id) const override {
    return table_.rule(id).actions;
  }
  size_t visible_size() const override { return table_.size(); }
  bool visible_before(RuleId a, RuleId b) const override {
    // Dead ids (mid-deletion in a propagating update) get a stable
    // arbitrary order; see ComposedNode::entry_before.
    if (!table_.contains(a) || !table_.contains(b)) return a < b;
    return table_.position(a) < table_.position(b);
  }
  std::vector<RuleId> visible_overlapping(const TernaryMatch& m) const override {
    return index_.find_overlapping(m);
  }

 private:
  /// True iff the pair (lo_pos, hi_pos) is a *direct* dependency: their
  /// overlap is not entirely covered by the rules strictly between them
  /// (prefiltered through the overlap index; fragment-budget overflow keeps
  /// a conservative edge — see flowspace::kDefaultFragmentLimit).
  bool is_direct(size_t hi_pos, size_t lo_pos) const;

  flowspace::FlowTable table_;
  DependencyGraph graph_;
  flowspace::RuleIndex index_;

  // Reusable cover-test arenas for is_direct (hot on every update).
  mutable std::vector<TernaryMatch> between_scratch_;
  mutable flowspace::CoverScratch cover_scratch_;
};

}  // namespace ruletris::compiler
