// Operator semantics shared by all three compilers (Sec. IV-A).
//
// para(r1, r2): match intersection, action union.
// seq(r1, r2):  r2's match pulled back through r1's rewrites, intersected
//               with r1's match; actions merged with rewrite override.
#pragma once

#include <optional>
#include <utility>

#include "flowspace/rule.h"

namespace ruletris::compiler {

enum class OpKind;  // composed_node.h

/// Composes one left rule with one right rule under `op` (parallel or
/// sequential); nullopt when the result match is empty. Priorities are
/// ignored — callers assign DAG edges or algebra priorities themselves.
std::optional<std::pair<flowspace::TernaryMatch, flowspace::ActionList>>
compose_rule_pair(OpKind op, const flowspace::Rule& l, const flowspace::Rule& r);

/// The flow space a left rule hands to the right member table: identity for
/// parallel, the rewritten match for sequential. Used to probe the right
/// member's overlap index.
flowspace::TernaryMatch right_probe_match(OpKind op,
                                          const flowspace::TernaryMatch& left_match,
                                          const flowspace::ActionList& left_actions);

}  // namespace ruletris::compiler
