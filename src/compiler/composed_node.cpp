#include "compiler/composed_node.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "compiler/compose_ops.h"

namespace ruletris::compiler {

using flowspace::Action;

const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::kParallel: return "parallel";
    case OpKind::kSequential: return "sequential";
    case OpKind::kPriority: return "priority";
  }
  return "?";
}

ComposedNode::ComposedNode(OpKind op, std::unique_ptr<PolicyNode> left,
                           std::unique_ptr<PolicyNode> right)
    : op_(op),
      left_(std::move(left)),
      right_(std::move(right)),
      visible_dag_([this](RuleId existing, RuleId incoming) {
        return visible_before(existing, incoming);
      }) {
  full_rebuild();
}

const ComposedNode::Entry& ComposedNode::entry(RuleId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) throw std::out_of_range("ComposedNode: unknown entry");
  return it->second;
}

bool ComposedNode::entry_before(const Entry& a, const Entry& b) const {
  // Sources may be mid-deletion (their entries are removed within the same
  // update); the child comparators fall back to a stable arbitrary order for
  // dead ids, which is harmless because every entry with a dead source is
  // itself removed before the update completes.
  if (op_ == OpKind::kPriority) {
    const bool a_left = a.left_src != 0;
    const bool b_left = b.left_src != 0;
    if (a_left != b_left) return a_left;  // whole left table stacks on top
    return a_left ? left_->visible_before(a.left_src, b.left_src)
                  : right_->visible_before(a.right_src, b.right_src);
  }
  if (a.left_src != b.left_src) return left_->visible_before(a.left_src, b.left_src);
  return right_->visible_before(a.right_src, b.right_src);
}

std::optional<std::pair<TernaryMatch, ActionList>> ComposedNode::compose_pair(
    const Rule& l, const Rule& r) const {
  return compose_rule_pair(op_, l, r);
}

TernaryMatch ComposedNode::right_probe(const TernaryMatch& left_match,
                                       const ActionList& left_actions) const {
  return right_probe_match(op_, left_match, left_actions);
}

// ---------------------------------------------------------------------------
// Visible-level helpers
// ---------------------------------------------------------------------------

void ComposedNode::forward_delta(const dag::DagDelta& delta, UpdateBuilder& out) {
  for (const auto& [u, v] : delta.removed_edges) out.remove_edge(u, v);
  for (const auto& [u, v] : delta.added_edges) out.add_edge(u, v);
}

void ComposedNode::make_visible(RuleId rep_id, UpdateBuilder& out) {
  const Entry& rep = entry(rep_id);
  if (!bulk_building_) {
    forward_delta(visible_dag_.insert(rep_id, rep.match), out);
  }
  out.add_rule(Rule{rep_id, rep.match, rep.actions, 0});
}

void ComposedNode::make_invisible(RuleId rep_id, UpdateBuilder& out) {
  if (!bulk_building_) {
    forward_delta(visible_dag_.remove(rep_id), out);
  }
  out.remove_rule(rep_id);
}

void ComposedNode::promote_pending(UpdateBuilder& out) {
  for (const TernaryMatch& match : pending_promotions_) {
    auto it = keys_.find(match);
    if (it == keys_.end()) continue;  // key vertex fully drained
    KeyVertex& kv = it->second;
    if (kv.rep != 0 || kv.members.empty()) continue;
    RuleId best = kv.members.front();
    for (RuleId m : kv.members) {
      if (m != best && entry_before(entry(m), entry(best))) best = m;
    }
    kv.rep = best;
    make_visible(best, out);
  }
  pending_promotions_.clear();
}

// ---------------------------------------------------------------------------
// Member/visible state mutation
// ---------------------------------------------------------------------------

RuleId ComposedNode::add_entry(TernaryMatch match, ActionList actions,
                               RuleId left_src, RuleId right_src, UpdateBuilder& out) {
  const RuleId eid = flowspace::next_rule_id();
  Entry e{eid, std::move(match), std::move(actions), left_src, right_src};
  const TernaryMatch key_match = e.match;

  by_pair_[PairKey{left_src, right_src}] = eid;
  if (left_src != 0) by_left_[left_src].push_back(eid);
  if (right_src != 0) by_right_[right_src].push_back(eid);
  member_graph_.add_vertex(eid);

  KeyVertex& kv = keys_[key_match];
  kv.members.push_back(eid);
  auto [it, inserted] = entries_.emplace(eid, std::move(e));
  const Entry& stored = it->second;

  if (kv.members.size() == 1) {
    kv.rep = eid;
    make_visible(eid, out);
  } else if (kv.rep != 0 && entry_before(stored, entry(kv.rep))) {
    set_representative(kv, eid, out);
  }
  // kv.rep == 0 (promotion pending) cannot coexist with additions: removals
  // and promote_pending always complete before adds in apply_child_update.
  return eid;
}

void ComposedNode::set_representative(KeyVertex& key, RuleId new_rep, UpdateBuilder& out) {
  const RuleId old_rep = key.rep;
  if (old_rep == new_rep) return;
  if (bulk_building_) {
    key.rep = new_rep;
    return;
  }
  make_invisible(old_rep, out);
  key.rep = new_rep;
  make_visible(new_rep, out);
}

void ComposedNode::add_member_edge(RuleId u, RuleId v, UpdateBuilder& out) {
  (void)out;  // visible DAG is maintained exactly; member edges never leak
  if (u == v || member_graph_.has_edge(u, v)) return;
  member_graph_.add_edge(u, v);
}

void ComposedNode::remove_member_edge(RuleId u, RuleId v, UpdateBuilder& out) {
  (void)out;
  member_graph_.remove_edge(u, v);
}

void ComposedNode::remove_entry(RuleId eid, UpdateBuilder& out) {
  const Entry e = entry(eid);  // copy: we are about to erase it

  member_graph_.remove_vertex(eid);

  KeyVertex& kv = keys_.at(e.match);
  kv.members.erase(std::remove(kv.members.begin(), kv.members.end(), eid),
                   kv.members.end());
  if (kv.rep == eid) {
    make_invisible(eid, out);
    if (kv.members.empty()) {
      keys_.erase(e.match);
    } else {
      // Defer picking the replacement until every removal of the current
      // update has been applied (the comparator needs live sources).
      kv.rep = 0;
      pending_promotions_.push_back(e.match);
    }
  } else if (kv.members.empty()) {
    // rep == 0 (promotion was pending) and the last member just vanished.
    keys_.erase(e.match);
  }

  by_pair_.erase(PairKey{e.left_src, e.right_src});
  auto drop_from = [eid](std::vector<RuleId>& vec) {
    vec.erase(std::remove(vec.begin(), vec.end(), eid), vec.end());
  };
  if (e.left_src != 0) {
    auto it = by_left_.find(e.left_src);
    if (it != by_left_.end()) {
      drop_from(it->second);
      if (it->second.empty()) by_left_.erase(it);
    }
  }
  if (e.right_src != 0) {
    auto it = by_right_.find(e.right_src);
    if (it != by_right_.end()) {
      drop_from(it->second);
      if (it->second.empty()) by_right_.erase(it);
    }
  }
  entries_.erase(eid);
}

void ComposedNode::remove_entry_with_patch(RuleId eid, UpdateBuilder& out) {
  std::vector<std::pair<RuleId, RuleId>> seeds;
  for (RuleId p : member_graph_.predecessors(eid)) {
    for (RuleId s : member_graph_.successors(eid)) seeds.emplace_back(p, s);
  }
  remove_entry(eid, out);
  resolve_tentative(std::move(seeds), nullptr, nullptr, out);
}

void ComposedNode::resolve_tentative(std::vector<std::pair<RuleId, RuleId>> seeds,
                                     const std::unordered_set<RuleId>* lower_set,
                                     const std::unordered_set<RuleId>* upper_set,
                                     UpdateBuilder& out) {
  std::unordered_set<PairKey, PairKeyHash> visited;
  std::deque<std::pair<RuleId, RuleId>> queue(seeds.begin(), seeds.end());
  while (!queue.empty()) {
    auto [u, v] = queue.front();
    queue.pop_front();
    if (u == v) continue;
    if (!visited.insert(PairKey{u, v}).second) continue;
    auto iu = entries_.find(u);
    auto iv = entries_.find(v);
    if (iu == entries_.end() || iv == entries_.end()) continue;
    if (member_graph_.has_edge(u, v)) continue;  // already a real dependency
    if (iu->second.match.overlaps(iv->second.match)) {
      add_member_edge(u, v, out);
      continue;
    }
    // No overlap: the constraint may instead bind u's more general
    // predecessors, or v's successors. (The paper prunes successors that v
    // subsumes — such a successor cannot overlap u either — but pruning the
    // *expansion* would also hide that successor's own successors, which can
    // stick out of v's flow space; we keep walking and let the overlap test
    // fail cheaply instead.)
    for (RuleId p : member_graph_.predecessors(u)) {
      if (lower_set != nullptr && lower_set->count(p) == 0) continue;
      queue.emplace_back(p, v);
    }
    for (RuleId s : member_graph_.successors(v)) {
      if (upper_set != nullptr && upper_set->count(s) == 0) continue;
      queue.emplace_back(u, s);
    }
  }
}

void ComposedNode::resolve_mega(const std::unordered_set<RuleId>& lower_set,
                                const std::unordered_set<RuleId>& upper_set,
                                UpdateBuilder& out) {
  // Tops of the lower set: vertices with no successor inside the set (they
  // are matched first within it). Bottoms of the upper set: vertices with no
  // predecessor inside it (matched last within it).
  std::vector<RuleId> tops, bottoms;
  for (RuleId u : lower_set) {
    bool top = true;
    for (RuleId s : member_graph_.successors(u)) {
      if (lower_set.count(s)) {
        top = false;
        break;
      }
    }
    if (top) tops.push_back(u);
  }
  for (RuleId v : upper_set) {
    bool bottom = true;
    for (RuleId p : member_graph_.predecessors(v)) {
      if (upper_set.count(p)) {
        bottom = false;
        break;
      }
    }
    if (bottom) bottoms.push_back(v);
  }
  std::vector<std::pair<RuleId, RuleId>> seeds;
  seeds.reserve(tops.size() * bottoms.size());
  for (RuleId u : tops) {
    for (RuleId v : bottoms) seeds.emplace_back(u, v);
  }
  resolve_tentative(std::move(seeds), &lower_set, &upper_set, out);
}

std::unordered_set<RuleId> ComposedNode::entry_set_of_left(RuleId left_src) const {
  std::unordered_set<RuleId> out;
  auto it = by_left_.find(left_src);
  if (it != by_left_.end()) out.insert(it->second.begin(), it->second.end());
  return out;
}

std::unordered_set<RuleId> ComposedNode::entry_set_of_right(RuleId right_src) const {
  std::unordered_set<RuleId> out;
  auto it = by_right_.find(right_src);
  if (it != by_right_.end()) out.insert(it->second.begin(), it->second.end());
  return out;
}

// ---------------------------------------------------------------------------
// Full compilation (Sec. IV-B)
// ---------------------------------------------------------------------------

void ComposedNode::full_rebuild() {
  entries_.clear();
  by_pair_.clear();
  by_left_.clear();
  by_right_.clear();
  member_graph_ = DependencyGraph();
  keys_.clear();
  pending_promotions_.clear();

  UpdateBuilder sink;  // initial compile: the whole table is the "update"
  bulk_building_ = true;

  const std::vector<Rule> left_rules = left_->visible_rules_in_order();

  if (op_ == OpKind::kPriority) {
    const std::vector<Rule> right_rules = right_->visible_rules_in_order();
    for (const Rule& l : left_rules) {
      add_entry(l.match, l.actions, l.id, 0, sink);
    }
    for (const Rule& r : right_rules) {
      add_entry(r.match, r.actions, 0, r.id, sink);
    }
    for (const auto& [a, b] : left_->visible_graph().edges()) {
      add_member_edge(by_pair_.at(PairKey{a, 0}), by_pair_.at(PairKey{b, 0}), sink);
    }
    for (const auto& [a, b] : right_->visible_graph().edges()) {
      add_member_edge(by_pair_.at(PairKey{0, a}), by_pair_.at(PairKey{0, b}), sink);
    }
    // The mega dependency: everything in the right table yields to the left.
    std::unordered_set<RuleId> lower, upper;
    for (const auto& [id, e] : entries_) {
      (e.left_src != 0 ? upper : lower).insert(id);
    }
    if (!lower.empty() && !upper.empty()) resolve_mega(lower, upper, sink);
  } else {
    // Parallel / sequential: cross product guided by the overlap index.
    for (const Rule& l : left_rules) {
      const TernaryMatch probe = right_probe(l.match, l.actions);
      for (RuleId rid : right_->visible_overlapping(probe)) {
        const Rule r{rid, right_->visible_match(rid), right_->visible_actions(rid), 0};
        auto composed = compose_pair(l, r);
        if (!composed) continue;
        add_entry(std::move(composed->first), std::move(composed->second), l.id, rid,
                  sink);
      }
    }

    // Edges inherited from the right member DAG (within one left rule).
    for (const auto& [eid, e] : entries_) {
      for (RuleId n : right_->visible_graph().successors(e.right_src)) {
        auto it = by_pair_.find(PairKey{e.left_src, n});
        if (it != by_pair_.end()) add_member_edge(eid, it->second, sink);
      }
    }

    if (op_ == OpKind::kParallel) {
      // Edges inherited from the left member DAG (within one right rule):
      // the full graph cross-product of Sec. IV-B1.
      for (const auto& [eid, e] : entries_) {
        for (RuleId lj : left_->visible_graph().successors(e.left_src)) {
          auto it = by_pair_.find(PairKey{lj, e.right_src});
          if (it != by_pair_.end()) add_member_edge(eid, it->second, sink);
        }
      }
    } else {
      // Sequential: partial DAGs are stitched with mega-dependency
      // resolution (Sec. IV-B2). The paper stitches along left-DAG edges,
      // which suffices when every partial table covers its left rule's flow
      // space (true with a default rule in the right member). In general a
      // packet can fall *through* an intermediate partial, so we stitch
      // every ordered left pair whose overlap is not covered by the partial
      // tables in between.
      for (size_t j = 1; j < left_rules.size(); ++j) {
        for (size_t i = 0; i < j; ++i) {
          maybe_resolve_sequential_pair(left_rules, i, j, sink);
        }
      }
    }
  }

  bulk_building_ = false;

  // Bulk-load the exact visible DAG over the representatives.
  std::vector<const Entry*> reps;
  reps.reserve(keys_.size());
  for (const auto& [match, kv] : keys_) {
    (void)match;
    reps.push_back(&entry(kv.rep));
  }
  std::sort(reps.begin(), reps.end(),
            [this](const Entry* a, const Entry* b) { return entry_before(*a, *b); });
  std::vector<std::pair<RuleId, TernaryMatch>> ordered;
  ordered.reserve(reps.size());
  for (const Entry* e : reps) ordered.emplace_back(e->id, e->match);
  visible_dag_.bulk_load(ordered);
}

void ComposedNode::maybe_resolve_sequential_pair(const std::vector<Rule>& left_rules,
                                                 size_t upper_idx, size_t lower_idx,
                                                 UpdateBuilder& out) {
  const Rule& upper = left_rules[upper_idx];  // matched first
  const Rule& lower = left_rules[lower_idx];
  auto overlap = lower.match.intersect(upper.match);
  if (!overlap) return;
  const auto lower_set = entry_set_of_left(lower.id);
  const auto upper_set = entry_set_of_left(upper.id);
  if (lower_set.empty() || upper_set.empty()) return;
  // Coverage by the *composed entries* of the partials strictly in between:
  // those are matched before anything in lower's partial, so packets they
  // cover never reach the lower partial inside this overlap.
  std::vector<TernaryMatch> cover;
  for (size_t k = upper_idx + 1; k < lower_idx; ++k) {
    auto it = by_left_.find(left_rules[k].id);
    if (it == by_left_.end()) continue;
    for (RuleId eid : it->second) cover.push_back(entry(eid).match);
  }
  if (flowspace::is_covered_by(*overlap, cover)) return;
  resolve_mega(lower_set, upper_set, out);
}

void ComposedNode::resolve_sequential_megas_around(RuleId left_src, UpdateBuilder& out) {
  const std::vector<Rule> left_rules = left_->visible_rules_in_order();
  size_t at = left_rules.size();
  for (size_t i = 0; i < left_rules.size(); ++i) {
    if (left_rules[i].id == left_src) {
      at = i;
      break;
    }
  }
  if (at == left_rules.size()) return;  // source no longer visible
  for (size_t i = 0; i < at; ++i) maybe_resolve_sequential_pair(left_rules, i, at, out);
  for (size_t j = at + 1; j < left_rules.size(); ++j) {
    maybe_resolve_sequential_pair(left_rules, at, j, out);
  }
}

// ---------------------------------------------------------------------------
// Incremental compilation (Sec. IV-C)
// ---------------------------------------------------------------------------

TableUpdate ComposedNode::apply_child_update(bool from_left, const TableUpdate& update) {
  UpdateBuilder out;

  // 1. Edge removals between surviving child rules (removals referencing
  //    deleted rules are handled by entry removal below).
  for (const auto& [a, b] : update.dag.removed_edges) {
    if (op_ == OpKind::kPriority) {
      auto ia = by_pair_.find(from_left ? PairKey{a, 0} : PairKey{0, a});
      auto ib = by_pair_.find(from_left ? PairKey{b, 0} : PairKey{0, b});
      if (ia != by_pair_.end() && ib != by_pair_.end()) {
        remove_member_edge(ia->second, ib->second, out);
      }
    } else if (from_left) {
      on_left_edge_removed(a, b, out);
    } else {
      on_right_edge_removed(a, b, out);
    }
  }

  // 2. Rule removals, then the deferred representative promotions.
  for (RuleId removed : update.removed) {
    if (op_ == OpKind::kPriority) {
      auto it = by_pair_.find(from_left ? PairKey{removed, 0} : PairKey{0, removed});
      if (it != by_pair_.end()) remove_entry_with_patch(it->second, out);
    } else if (from_left) {
      on_left_removed(removed, out);
    } else {
      on_right_removed(removed, out);
    }
  }
  promote_pending(out);

  // 3. Rule additions.
  std::vector<RuleId> added_ids;
  for (const Rule& added : update.added) {
    added_ids.push_back(added.id);
    if (op_ == OpKind::kPriority) {
      if (from_left) {
        add_entry(added.match, added.actions, added.id, 0, out);
      } else {
        add_entry(added.match, added.actions, 0, added.id, out);
      }
    } else if (from_left) {
      on_left_added(added, out);
    } else {
      on_right_added(added, out);
    }
  }

  // 4. Edge additions (may reference freshly added rules).
  for (const auto& [a, b] : update.dag.added_edges) {
    if (op_ == OpKind::kPriority) {
      auto ia = by_pair_.find(from_left ? PairKey{a, 0} : PairKey{0, a});
      auto ib = by_pair_.find(from_left ? PairKey{b, 0} : PairKey{0, b});
      if (ia != by_pair_.end() && ib != by_pair_.end()) {
        add_member_edge(ia->second, ib->second, out);
      }
    } else if (from_left) {
      on_left_edge_added(a, b, out);
    } else {
      on_right_edge_added(a, b, out);
    }
  }

  // 5. Priority op: re-resolve the table-level mega dependency around the
  //    freshly inserted rules (Sec. IV-C).
  if (op_ == OpKind::kPriority && !added_ids.empty()) {
    std::unordered_set<RuleId> lower, upper;
    for (const auto& [id, e] : entries_) {
      (e.left_src != 0 ? upper : lower).insert(id);
    }
    if (!lower.empty() && !upper.empty()) {
      std::vector<std::pair<RuleId, RuleId>> seeds;
      if (from_left) {
        // New upper rules: every top of the lower set may need to yield.
        for (RuleId added : added_ids) {
          auto it = by_pair_.find(PairKey{added, 0});
          if (it == by_pair_.end()) continue;
          for (RuleId u : lower) {
            bool top = true;
            for (RuleId s : member_graph_.successors(u)) {
              if (lower.count(s)) {
                top = false;
                break;
              }
            }
            if (top) seeds.emplace_back(u, it->second);
          }
        }
      } else {
        // New lower rules: they must yield to the bottoms of the upper set.
        for (RuleId added : added_ids) {
          auto it = by_pair_.find(PairKey{0, added});
          if (it == by_pair_.end()) continue;
          for (RuleId v : upper) {
            bool bottom = true;
            for (RuleId p : member_graph_.predecessors(v)) {
              if (upper.count(p)) {
                bottom = false;
                break;
              }
            }
            if (bottom) seeds.emplace_back(it->second, v);
          }
        }
      }
      resolve_tentative(std::move(seeds), &lower, &upper, out);
    }
  }

  return out.build();
}

void ComposedNode::on_left_removed(RuleId left_src, UpdateBuilder& out) {
  const auto doomed = entry_set_of_left(left_src);
  for (RuleId eid : doomed) remove_entry_with_patch(eid, out);
}

void ComposedNode::on_right_removed(RuleId right_src, UpdateBuilder& out) {
  const auto doomed = entry_set_of_right(right_src);
  for (RuleId eid : doomed) remove_entry_with_patch(eid, out);
}

void ComposedNode::on_left_added(const Rule& rule, UpdateBuilder& out) {
  const TernaryMatch probe = right_probe(rule.match, rule.actions);
  std::vector<RuleId> new_entries;
  for (RuleId rid : right_->visible_overlapping(probe)) {
    const Rule r{rid, right_->visible_match(rid), right_->visible_actions(rid), 0};
    auto composed = compose_pair(rule, r);
    if (!composed) continue;
    new_entries.push_back(add_entry(std::move(composed->first),
                                    std::move(composed->second), rule.id, rid, out));
  }
  // Within-partial edges inherited from the right DAG.
  for (RuleId eid : new_entries) {
    const Entry& e = entry(eid);
    for (RuleId n : right_->visible_graph().successors(e.right_src)) {
      auto it = by_pair_.find(PairKey{e.left_src, n});
      if (it != by_pair_.end()) add_member_edge(eid, it->second, out);
    }
    for (RuleId p : right_->visible_graph().predecessors(e.right_src)) {
      auto it = by_pair_.find(PairKey{e.left_src, p});
      if (it != by_pair_.end()) add_member_edge(it->second, eid, out);
    }
  }
  // Cross-partial constraints: stitch the new partial table against every
  // ordered left pair whose overlap it participates in.
  if (op_ == OpKind::kSequential) {
    resolve_sequential_megas_around(rule.id, out);
  }
  // For parallel composition, cross-partial edges arrive with the child's
  // DAG delta (the edges incident to `rule`), handled by on_left_edge_added.
}

void ComposedNode::on_right_added(const Rule& rule, UpdateBuilder& out) {
  std::vector<RuleId> new_entries;
  std::unordered_set<RuleId> touched_left;
  if (op_ == OpKind::kParallel) {
    for (RuleId lid : left_->visible_overlapping(rule.match)) {
      const Rule l{lid, left_->visible_match(lid), left_->visible_actions(lid), 0};
      auto composed = compose_pair(l, rule);
      if (!composed) continue;
      new_entries.push_back(add_entry(std::move(composed->first),
                                      std::move(composed->second), lid, rule.id, out));
      touched_left.insert(lid);
    }
  } else {
    // Sequential right insert composes against every left rule whose
    // rewritten flow space can reach the new rule (Sec. IV-C).
    for (const Rule& l : left_->visible_rules_in_order()) {
      if (!right_probe(l.match, l.actions).overlaps(rule.match)) continue;
      auto composed = compose_pair(l, rule);
      if (!composed) continue;
      new_entries.push_back(add_entry(std::move(composed->first),
                                      std::move(composed->second), l.id, rule.id, out));
      touched_left.insert(l.id);
    }
  }

  // Left-DAG-derived edges among/around the new entries (parallel cross
  // product; for sequential these arise from the mega stitching below).
  if (op_ == OpKind::kParallel) {
    for (RuleId eid : new_entries) {
      const Entry& e = entry(eid);
      for (RuleId lj : left_->visible_graph().successors(e.left_src)) {
        auto it = by_pair_.find(PairKey{lj, e.right_src});
        if (it != by_pair_.end()) add_member_edge(eid, it->second, out);
      }
      for (RuleId li : left_->visible_graph().predecessors(e.left_src)) {
        auto it = by_pair_.find(PairKey{li, e.right_src});
        if (it != by_pair_.end()) add_member_edge(it->second, eid, out);
      }
    }
  } else {
    for (RuleId l : touched_left) resolve_sequential_megas_around(l, out);
  }
}

void ComposedNode::on_left_edge_added(RuleId li, RuleId lj, UpdateBuilder& out) {
  if (op_ == OpKind::kParallel) {
    auto it = by_left_.find(li);
    if (it == by_left_.end()) return;
    for (RuleId eid : it->second) {
      auto jt = by_pair_.find(PairKey{lj, entry(eid).right_src});
      if (jt != by_pair_.end()) add_member_edge(eid, jt->second, out);
    }
  } else {
    const auto lower = entry_set_of_left(li);
    const auto upper = entry_set_of_left(lj);
    if (!lower.empty() && !upper.empty()) resolve_mega(lower, upper, out);
  }
}

void ComposedNode::on_left_edge_removed(RuleId li, RuleId lj, UpdateBuilder& out) {
  if (op_ != OpKind::kParallel) {
    // Sequential: member edges between the two partial tables were verified
    // by overlap, so they remain valid (possibly redundant) constraints.
    return;
  }
  auto it = by_left_.find(li);
  if (it == by_left_.end()) return;
  for (RuleId eid : std::vector<RuleId>(it->second)) {
    auto jt = by_pair_.find(PairKey{lj, entry(eid).right_src});
    if (jt != by_pair_.end()) remove_member_edge(eid, jt->second, out);
  }
}

void ComposedNode::on_right_edge_added(RuleId m, RuleId n, UpdateBuilder& out) {
  auto it = by_right_.find(m);
  if (it == by_right_.end()) return;
  for (RuleId eid : it->second) {
    auto jt = by_pair_.find(PairKey{entry(eid).left_src, n});
    if (jt != by_pair_.end()) add_member_edge(eid, jt->second, out);
  }
}

void ComposedNode::on_right_edge_removed(RuleId m, RuleId n, UpdateBuilder& out) {
  auto it = by_right_.find(m);
  if (it == by_right_.end()) return;
  for (RuleId eid : std::vector<RuleId>(it->second)) {
    auto jt = by_pair_.find(PairKey{entry(eid).left_src, n});
    if (jt != by_pair_.end()) remove_member_edge(eid, jt->second, out);
  }
}

// ---------------------------------------------------------------------------
// PolicyNode interface
// ---------------------------------------------------------------------------

std::vector<Rule> ComposedNode::visible_rules_in_order() const {
  std::vector<Rule> out;
  out.reserve(visible_dag_.size());
  int32_t priority = static_cast<int32_t>(visible_dag_.size());
  for (RuleId id : visible_dag_.order()) {
    const Entry& e = entry(id);
    out.push_back(Rule{e.id, e.match, e.actions, priority--});
  }
  return out;
}

bool ComposedNode::has_visible(RuleId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  return keys_.at(it->second.match).rep == id;
}

const TernaryMatch& ComposedNode::visible_match(RuleId id) const {
  return entry(id).match;
}

const ActionList& ComposedNode::visible_actions(RuleId id) const {
  return entry(id).actions;
}

bool ComposedNode::visible_before(RuleId a, RuleId b) const {
  const auto ia = entries_.find(a);
  const auto ib = entries_.find(b);
  if (ia == entries_.end() || ib == entries_.end()) return a < b;  // dead ids
  return entry_before(ia->second, ib->second);
}

std::vector<RuleId> ComposedNode::visible_overlapping(const TernaryMatch& m) const {
  return visible_dag_.overlapping(m);
}

}  // namespace ruletris::compiler
