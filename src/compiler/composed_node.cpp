#include "compiler/composed_node.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "compiler/compose_ops.h"
#include "util/thread_pool.h"

namespace ruletris::compiler {

using flowspace::Action;
using flowspace::CoverResult;

const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::kParallel: return "parallel";
    case OpKind::kSequential: return "sequential";
    case OpKind::kPriority: return "priority";
  }
  return "?";
}

namespace {
std::mutex g_default_opts_mutex;
CompileOptions g_default_compile_options;
}  // namespace

void set_default_compile_options(const CompileOptions& opts) {
  std::scoped_lock lock(g_default_opts_mutex);
  g_default_compile_options = opts;
}

CompileOptions default_compile_options() {
  std::scoped_lock lock(g_default_opts_mutex);
  return g_default_compile_options;
}

ComposedNode::ComposedNode(OpKind op, std::unique_ptr<PolicyNode> left,
                           std::unique_ptr<PolicyNode> right)
    : ComposedNode(op, std::move(left), std::move(right), default_compile_options()) {}

ComposedNode::ComposedNode(OpKind op, std::unique_ptr<PolicyNode> left,
                           std::unique_ptr<PolicyNode> right,
                           const CompileOptions& opts)
    : op_(op),
      opts_(opts),
      left_(std::move(left)),
      right_(std::move(right)),
      visible_dag_([this](RuleId existing, RuleId incoming) {
        return visible_before(existing, incoming);
      }) {
  full_rebuild();
}

const ComposedNode::Entry& ComposedNode::entry(RuleId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) throw std::out_of_range("ComposedNode: unknown entry");
  return it->second;
}

bool ComposedNode::entry_before(const Entry& a, const Entry& b) const {
  // Sources may be mid-deletion (their entries are removed within the same
  // update); the child comparators fall back to a stable arbitrary order for
  // dead ids, which is harmless because every entry with a dead source is
  // itself removed before the update completes.
  if (op_ == OpKind::kPriority) {
    const bool a_left = a.left_src != 0;
    const bool b_left = b.left_src != 0;
    if (a_left != b_left) return a_left;  // whole left table stacks on top
    return a_left ? left_->visible_before(a.left_src, b.left_src)
                  : right_->visible_before(a.right_src, b.right_src);
  }
  if (a.left_src != b.left_src) return left_->visible_before(a.left_src, b.left_src);
  return right_->visible_before(a.right_src, b.right_src);
}

std::optional<std::pair<TernaryMatch, ActionList>> ComposedNode::compose_pair(
    const Rule& l, const Rule& r) const {
  return compose_rule_pair(op_, l, r);
}

TernaryMatch ComposedNode::right_probe(const TernaryMatch& left_match,
                                       const ActionList& left_actions) const {
  return right_probe_match(op_, left_match, left_actions);
}

// ---------------------------------------------------------------------------
// Visible-level helpers
// ---------------------------------------------------------------------------

void ComposedNode::forward_delta(const dag::DagDelta& delta, UpdateBuilder& out) {
  for (const auto& [u, v] : delta.removed_edges) out.remove_edge(u, v);
  for (const auto& [u, v] : delta.added_edges) out.add_edge(u, v);
}

void ComposedNode::make_visible(RuleId rep_id, UpdateBuilder& out) {
  const Entry& rep = entry(rep_id);
  if (!bulk_building_) {
    forward_delta(visible_dag_.insert(rep_id, rep.match), out);
  }
  out.add_rule(Rule{rep_id, rep.match, rep.actions, 0});
}

void ComposedNode::make_invisible(RuleId rep_id, UpdateBuilder& out) {
  if (!bulk_building_) {
    forward_delta(visible_dag_.remove(rep_id), out);
  }
  out.remove_rule(rep_id);
}

void ComposedNode::promote_pending(UpdateBuilder& out) {
  for (const TernaryMatch& match : pending_promotions_) {
    auto it = keys_.find(match);
    if (it == keys_.end()) continue;  // key vertex fully drained
    KeyVertex& kv = it->second;
    if (kv.rep != 0 || kv.members.empty()) continue;
    RuleId best = kv.members.front();
    for (RuleId m : kv.members) {
      if (m != best && entry_before(entry(m), entry(best))) best = m;
    }
    kv.rep = best;
    make_visible(best, out);
  }
  pending_promotions_.clear();
}

// ---------------------------------------------------------------------------
// Member/visible state mutation
// ---------------------------------------------------------------------------

RuleId ComposedNode::add_entry(TernaryMatch match, ActionList actions,
                               RuleId left_src, RuleId right_src, UpdateBuilder& out) {
  const RuleId eid = flowspace::next_rule_id();
  Entry e{eid, std::move(match), std::move(actions), left_src, right_src};
  const TernaryMatch key_match = e.match;

  by_pair_[PairKey{left_src, right_src}] = eid;
  if (left_src != 0) by_left_[left_src].push_back(eid);
  if (right_src != 0) by_right_[right_src].push_back(eid);
  member_graph_.add_vertex(eid);

  KeyVertex& kv = keys_[key_match];
  kv.members.push_back(eid);
  auto [it, inserted] = entries_.emplace(eid, std::move(e));
  const Entry& stored = it->second;

  if (kv.members.size() == 1) {
    kv.rep = eid;
    make_visible(eid, out);
  } else if (kv.rep != 0 && entry_before(stored, entry(kv.rep))) {
    set_representative(kv, eid, out);
  }
  // kv.rep == 0 (promotion pending) cannot coexist with additions: removals
  // and promote_pending always complete before adds in apply_child_update.
  return eid;
}

void ComposedNode::set_representative(KeyVertex& key, RuleId new_rep, UpdateBuilder& out) {
  const RuleId old_rep = key.rep;
  if (old_rep == new_rep) return;
  if (bulk_building_) {
    key.rep = new_rep;
    return;
  }
  make_invisible(old_rep, out);
  key.rep = new_rep;
  make_visible(new_rep, out);
}

void ComposedNode::add_member_edge(RuleId u, RuleId v, UpdateBuilder& out) {
  (void)out;  // visible DAG is maintained exactly; member edges never leak
  if (u == v || member_graph_.has_edge(u, v)) return;
  member_graph_.add_edge(u, v);
}

void ComposedNode::remove_member_edge(RuleId u, RuleId v, UpdateBuilder& out) {
  (void)out;
  member_graph_.remove_edge(u, v);
}

void ComposedNode::remove_entry(RuleId eid, UpdateBuilder& out) {
  const Entry e = entry(eid);  // copy: we are about to erase it

  member_graph_.remove_vertex(eid);

  KeyVertex& kv = keys_.at(e.match);
  kv.members.erase(std::remove(kv.members.begin(), kv.members.end(), eid),
                   kv.members.end());
  if (kv.rep == eid) {
    make_invisible(eid, out);
    if (kv.members.empty()) {
      keys_.erase(e.match);
    } else {
      // Defer picking the replacement until every removal of the current
      // update has been applied (the comparator needs live sources).
      kv.rep = 0;
      pending_promotions_.push_back(e.match);
    }
  } else if (kv.members.empty()) {
    // rep == 0 (promotion was pending) and the last member just vanished.
    keys_.erase(e.match);
  }

  by_pair_.erase(PairKey{e.left_src, e.right_src});
  auto drop_from = [eid](std::vector<RuleId>& vec) {
    vec.erase(std::remove(vec.begin(), vec.end(), eid), vec.end());
  };
  if (e.left_src != 0) {
    auto it = by_left_.find(e.left_src);
    if (it != by_left_.end()) {
      drop_from(it->second);
      if (it->second.empty()) by_left_.erase(it);
    }
  }
  if (e.right_src != 0) {
    auto it = by_right_.find(e.right_src);
    if (it != by_right_.end()) {
      drop_from(it->second);
      if (it->second.empty()) by_right_.erase(it);
    }
  }
  entries_.erase(eid);
}

void ComposedNode::remove_entry_with_patch(RuleId eid, UpdateBuilder& out) {
  auto& seeds = seed_scratch_;
  seeds.clear();
  for (RuleId p : member_graph_.predecessors(eid)) {
    for (RuleId s : member_graph_.successors(eid)) seeds.emplace_back(p, s);
  }
  remove_entry(eid, out);
  resolve_tentative(seeds, nullptr, nullptr, out);
}

void ComposedNode::resolve_tentative(const std::vector<std::pair<RuleId, RuleId>>& seeds,
                                     const std::unordered_set<RuleId>* lower_set,
                                     const std::unordered_set<RuleId>* upper_set,
                                     UpdateBuilder& out) {
  auto& visited = tentative_visited_;
  auto& queue = tentative_queue_;
  visited.clear();
  queue.assign(seeds.begin(), seeds.end());
  while (!queue.empty()) {
    auto [u, v] = queue.front();
    queue.pop_front();
    if (u == v) continue;
    if (!visited.insert(PairKey{u, v}).second) continue;
    auto iu = entries_.find(u);
    auto iv = entries_.find(v);
    if (iu == entries_.end() || iv == entries_.end()) continue;
    if (member_graph_.has_edge(u, v)) continue;  // already a real dependency
    if (iu->second.match.overlaps(iv->second.match)) {
      add_member_edge(u, v, out);
      continue;
    }
    // No overlap: the constraint may instead bind u's more general
    // predecessors, or v's successors. (The paper prunes successors that v
    // subsumes — such a successor cannot overlap u either — but pruning the
    // *expansion* would also hide that successor's own successors, which can
    // stick out of v's flow space; we keep walking and let the overlap test
    // fail cheaply instead.)
    for (RuleId p : member_graph_.predecessors(u)) {
      if (lower_set != nullptr && lower_set->count(p) == 0) continue;
      queue.emplace_back(p, v);
    }
    for (RuleId s : member_graph_.successors(v)) {
      if (upper_set != nullptr && upper_set->count(s) == 0) continue;
      queue.emplace_back(u, s);
    }
  }
}

void ComposedNode::resolve_mega(const std::unordered_set<RuleId>& lower_set,
                                const std::unordered_set<RuleId>& upper_set,
                                UpdateBuilder& out) {
  // Tops of the lower set: vertices with no successor inside the set (they
  // are matched first within it). Bottoms of the upper set: vertices with no
  // predecessor inside it (matched last within it).
  auto& tops = tops_scratch_;
  auto& bottoms = bottoms_scratch_;
  tops.clear();
  bottoms.clear();
  for (RuleId u : lower_set) {
    bool top = true;
    for (RuleId s : member_graph_.successors(u)) {
      if (lower_set.count(s)) {
        top = false;
        break;
      }
    }
    if (top) tops.push_back(u);
  }
  for (RuleId v : upper_set) {
    bool bottom = true;
    for (RuleId p : member_graph_.predecessors(v)) {
      if (upper_set.count(p)) {
        bottom = false;
        break;
      }
    }
    if (bottom) bottoms.push_back(v);
  }
  resolve_mega_seeded(lower_set, upper_set, tops, bottoms, out);
}

void ComposedNode::resolve_mega_seeded(const std::unordered_set<RuleId>& lower_set,
                                       const std::unordered_set<RuleId>& upper_set,
                                       const std::vector<RuleId>& tops,
                                       const std::vector<RuleId>& bottoms,
                                       UpdateBuilder& out) {
  auto& seeds = seed_scratch_;
  seeds.clear();
  seeds.reserve(tops.size() * bottoms.size());
  for (RuleId u : tops) {
    for (RuleId v : bottoms) seeds.emplace_back(u, v);
  }
  resolve_tentative(seeds, &lower_set, &upper_set, out);
}

// ---------------------------------------------------------------------------
// Full compilation (Sec. IV-B)
// ---------------------------------------------------------------------------

void ComposedNode::full_rebuild() {
  entries_.clear();
  by_pair_.clear();
  by_left_.clear();
  by_right_.clear();
  member_graph_ = DependencyGraph();
  keys_.clear();
  pending_promotions_.clear();

  UpdateBuilder sink;  // initial compile: the whole table is the "update"
  bulk_building_ = true;

  const std::vector<Rule> left_rules = left_->visible_rules_in_order();

  if (op_ == OpKind::kPriority) {
    const std::vector<Rule> right_rules = right_->visible_rules_in_order();
    for (const Rule& l : left_rules) {
      add_entry(l.match, l.actions, l.id, 0, sink);
    }
    for (const Rule& r : right_rules) {
      add_entry(r.match, r.actions, 0, r.id, sink);
    }
    for (const auto& [a, b] : left_->visible_graph().edges()) {
      add_member_edge(by_pair_.at(PairKey{a, 0}), by_pair_.at(PairKey{b, 0}), sink);
    }
    for (const auto& [a, b] : right_->visible_graph().edges()) {
      add_member_edge(by_pair_.at(PairKey{0, a}), by_pair_.at(PairKey{0, b}), sink);
    }
    // The mega dependency: everything in the right table yields to the left.
    mega_lower_.clear();
    mega_upper_.clear();
    for (const auto& [id, e] : entries_) {
      (e.left_src != 0 ? mega_upper_ : mega_lower_).insert(id);
    }
    if (!mega_lower_.empty() && !mega_upper_.empty()) {
      resolve_mega(mega_lower_, mega_upper_, sink);
    }
  } else {
    // Parallel / sequential: cross product guided by the overlap index,
    // sharded across workers when opts_ asks for it.
    build_cross_product(left_rules, sink);

    // Edges inherited from the right member DAG (within one left rule).
    for (const auto& [eid, e] : entries_) {
      for (RuleId n : right_->visible_graph().successors(e.right_src)) {
        auto it = by_pair_.find(PairKey{e.left_src, n});
        if (it != by_pair_.end()) add_member_edge(eid, it->second, sink);
      }
    }

    if (op_ == OpKind::kParallel) {
      // Edges inherited from the left member DAG (within one right rule):
      // the full graph cross-product of Sec. IV-B1.
      for (const auto& [eid, e] : entries_) {
        for (RuleId lj : left_->visible_graph().successors(e.left_src)) {
          auto it = by_pair_.find(PairKey{lj, e.right_src});
          if (it != by_pair_.end()) add_member_edge(eid, it->second, sink);
        }
      }
    } else {
      // Sequential: partial DAGs are stitched with mega-dependency
      // resolution (Sec. IV-B2). The paper stitches along left-DAG edges,
      // which suffices when every partial table covers its left rule's flow
      // space (true with a default rule in the right member). In general a
      // packet can fall *through* an intermediate partial, so we stitch
      // every ordered left pair whose overlap is not covered by the partial
      // tables in between.
      stitch_sequential(left_rules, sink);
    }
  }

  bulk_building_ = false;

  // Bulk-load the exact visible DAG over the representatives.
  std::vector<const Entry*> reps;
  reps.reserve(keys_.size());
  for (const auto& [match, kv] : keys_) {
    (void)match;
    reps.push_back(&entry(kv.rep));
  }
  std::sort(reps.begin(), reps.end(),
            [this](const Entry* a, const Entry* b) { return entry_before(*a, *b); });
  std::vector<std::pair<RuleId, TernaryMatch>> ordered;
  ordered.reserve(reps.size());
  for (const Entry* e : reps) ordered.emplace_back(e->id, e->match);
  visible_dag_.bulk_load(ordered);
}

bool ComposedNode::sequential_pair_needs_mega(const std::vector<Rule>& left_rules,
                                              size_t upper_idx, size_t lower_idx,
                                              StitchScratch& scratch,
                                              const StitchIndex* index) const {
  const Rule& upper = left_rules[upper_idx];  // matched first
  const Rule& lower = left_rules[lower_idx];
  auto overlap = lower.match.intersect(upper.match);
  if (!overlap) return false;
  auto lo = by_left_.find(lower.id);
  if (lo == by_left_.end() || lo->second.empty()) return false;
  auto up = by_left_.find(upper.id);
  if (up == by_left_.end() || up->second.empty()) return false;
  // Coverage by the *composed entries* of the partials strictly in between:
  // those are matched before anything in lower's partial, so packets they
  // cover never reach the lower partial inside this overlap. Entries that
  // miss the overlap region subtract nothing; most-general covers go first
  // so the subtraction stays shallow (same discipline as the DAG builders).
  //
  // Without an index this scans every in-between partial — O(members) per
  // pair, quadratic overall once a broad rule (a NAT/route default) overlaps
  // everything. With one, the candidates come from an overlap query and only
  // the handful of entries actually touching the overlap region are visited.
  // Both collections are sorted by (specified bits, entry id), so the cover
  // sequence fed to try_cover — and therefore the verdict, including on
  // fragment overflow — is identical either way.
  auto& keyed = scratch.cover_keyed;
  keyed.clear();
  if (index != nullptr) {
    index->entries.for_each_overlapping(
        *overlap, [&](RuleId eid, const TernaryMatch& m) {
          auto pit = index->entry_left_pos.find(eid);
          if (pit == index->entry_left_pos.end()) return;
          if (pit->second > upper_idx && pit->second < lower_idx) {
            keyed.emplace_back(eid, &m);
          }
        });
  } else {
    for (size_t k = upper_idx + 1; k < lower_idx; ++k) {
      auto it = by_left_.find(left_rules[k].id);
      if (it == by_left_.end()) continue;
      for (RuleId eid : it->second) {
        const TernaryMatch& m = entry(eid).match;
        if (m.overlaps(*overlap)) keyed.emplace_back(eid, &m);
      }
    }
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const std::pair<RuleId, const TernaryMatch*>& a,
               const std::pair<RuleId, const TernaryMatch*>& b) {
              const uint32_t sa = a.second->specified_bits();
              const uint32_t sb = b.second->specified_bits();
              if (sa != sb) return sa < sb;
              return a.first < b.first;
            });
  auto& cover = scratch.cover;
  cover.clear();
  cover.reserve(keyed.size());
  for (const auto& [eid, m] : keyed) cover.push_back(*m);
  const CoverResult r =
      flowspace::try_cover(*overlap, {cover.data(), cover.size()},
                           scratch.cover_scratch, flowspace::kDefaultFragmentLimit);
  return r != CoverResult::kCovered;  // overflow: stitch conservatively
}

void ComposedNode::resolve_sequential_pair(RuleId upper_left, RuleId lower_left,
                                           UpdateBuilder& out) {
  auto lo = by_left_.find(lower_left);
  auto up = by_left_.find(upper_left);
  if (lo == by_left_.end() || up == by_left_.end()) return;
  mega_lower_.clear();
  mega_upper_.clear();
  mega_lower_.insert(lo->second.begin(), lo->second.end());
  mega_upper_.insert(up->second.begin(), up->second.end());
  resolve_mega(mega_lower_, mega_upper_, out);
}

void ComposedNode::maybe_resolve_sequential_pair(const std::vector<Rule>& left_rules,
                                                 size_t upper_idx, size_t lower_idx,
                                                 UpdateBuilder& out) {
  if (!sequential_pair_needs_mega(left_rules, upper_idx, lower_idx, stitch_scratch_)) {
    return;
  }
  resolve_sequential_pair(left_rules[upper_idx].id, left_rules[lower_idx].id, out);
}

void ComposedNode::resolve_sequential_megas_around(RuleId left_src, UpdateBuilder& out) {
  const std::vector<Rule> left_rules = left_->visible_rules_in_order();
  size_t at = left_rules.size();
  for (size_t i = 0; i < left_rules.size(); ++i) {
    if (left_rules[i].id == left_src) {
      at = i;
      break;
    }
  }
  if (at == left_rules.size()) return;  // source no longer visible
  // Only partners whose left match overlaps this one can need a stitch; pull
  // them from the left child's overlap index instead of testing every pair.
  std::unordered_map<RuleId, size_t> pos;
  pos.reserve(left_rules.size());
  for (size_t i = 0; i < left_rules.size(); ++i) pos.emplace(left_rules[i].id, i);
  std::vector<size_t> partners;
  for (RuleId lid : left_->visible_overlapping(left_rules[at].match)) {
    auto it = pos.find(lid);
    if (it != pos.end() && it->second != at) partners.push_back(it->second);
  }
  std::sort(partners.begin(), partners.end());
  for (size_t p : partners) {
    if (p < at) {
      maybe_resolve_sequential_pair(left_rules, p, at, out);
    } else {
      maybe_resolve_sequential_pair(left_rules, at, p, out);
    }
  }
}

// ---------------------------------------------------------------------------
// Full-compile phases: compose fan-out and sequential stitch
// ---------------------------------------------------------------------------

void ComposedNode::build_cross_product(const std::vector<Rule>& left_rules,
                                       UpdateBuilder& out) {
  const size_t n = left_rules.size();
  const size_t workers = opts_.clamp_to_hardware
                             ? util::effective_workers(opts_.n_threads)
                             : opts_.n_threads;
  const bool parallel = workers > 1 && n >= opts_.parallel_cutoff;
  if (!parallel) {
    for (const Rule& l : left_rules) {
      const TernaryMatch probe = right_probe(l.match, l.actions);
      for (RuleId rid : right_->visible_overlapping(probe)) {
        const Rule r{rid, right_->visible_match(rid), right_->visible_actions(rid), 0};
        auto composed = compose_pair(l, r);
        if (!composed) continue;
        add_entry(std::move(composed->first), std::move(composed->second), l.id, rid,
                  out);
      }
    }
    return;
  }

  // The fan-out (probe, index query, pair composition) only reads the
  // children, so workers claim left-rule chunks off an atomic cursor and
  // buffer their compositions per left row. Entry materialization — id
  // assignment, maps, key vertices — runs on this thread in left order, so
  // the resulting state is identical to the serial build's.
  struct Composed {
    TernaryMatch match;
    ActionList actions;
    RuleId right_src;
  };
  std::vector<std::vector<Composed>> per_left(n);
  util::ChunkCursor cursor(0, n, util::ChunkCursor::suggest_chunk(n, workers));
  util::ThreadPool pool(workers);
  util::run_on_workers(pool, [&] {
    return [&] {
      size_t begin, end;
      while (cursor.next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          const Rule& l = left_rules[i];
          const TernaryMatch probe = right_probe(l.match, l.actions);
          for (RuleId rid : right_->visible_overlapping(probe)) {
            const Rule r{rid, right_->visible_match(rid), right_->visible_actions(rid),
                         0};
            auto composed = compose_pair(l, r);
            if (!composed) continue;
            per_left[i].push_back(
                {std::move(composed->first), std::move(composed->second), rid});
          }
        }
      }
    };
  });
  for (size_t i = 0; i < n; ++i) {
    for (Composed& c : per_left[i]) {
      add_entry(std::move(c.match), std::move(c.actions), left_rules[i].id,
                c.right_src, out);
    }
  }
}

void ComposedNode::stitch_sequential(const std::vector<Rule>& left_rules,
                                     UpdateBuilder& out) {
  const size_t n = left_rules.size();
  if (n < 2) return;

  if (opts_.legacy_stitch) {
    // Ablation baseline: every ordered pair, predicate and resolution
    // interleaved. The predicate never reads the member graph, so the
    // pruned/parallel path below reproduces this exact resolution sequence.
    for (size_t j = 1; j < n; ++j) {
      for (size_t i = 0; i < j; ++i) {
        maybe_resolve_sequential_pair(left_rules, i, j, out);
      }
    }
    return;
  }

  // Candidate uppers per row come from an overlap index over the left
  // matches: a pair the index skips fails the predicate's overlap test, i.e.
  // was a no-op in the legacy loop. Positions are stored shifted by one
  // because RuleId 0 is reserved.
  flowspace::RuleIndex left_index;
  for (size_t i = 0; i < n; ++i) {
    left_index.insert(static_cast<RuleId>(i + 1), left_rules[i].match);
  }

  // Overlap index over the member entries themselves, so each pair's cover
  // set is a bucket query instead of a walk over every in-between partial.
  // Built once per rebuild; read-only during the predicate sweep.
  StitchIndex stitch_index;
  stitch_index.entry_left_pos.reserve(member_size());
  for (size_t i = 0; i < n; ++i) {
    auto it = by_left_.find(left_rules[i].id);
    if (it == by_left_.end()) continue;
    for (RuleId eid : it->second) {
      stitch_index.entries.insert(eid, entry(eid).match);
      stitch_index.entry_left_pos.emplace(eid, i);
    }
  }
  auto collect_uppers = [&](size_t j, std::vector<size_t>& cand) {
    cand.clear();
    left_index.for_each_overlapping(left_rules[j].match,
                                    [&](RuleId id, const TernaryMatch&) {
                                      const size_t p = static_cast<size_t>(id) - 1;
                                      if (p < j) cand.push_back(p);
                                    });
    std::sort(cand.begin(), cand.end());
  };

  // Phase 1: evaluate the (read-only) predicate for every candidate pair,
  // sharded across workers when opts_ asks for it.
  std::vector<std::vector<size_t>> uppers(n);
  const size_t workers = opts_.clamp_to_hardware
                             ? util::effective_workers(opts_.n_threads)
                             : opts_.n_threads;
  const bool parallel = workers > 1 && n >= opts_.parallel_cutoff;
  if (!parallel) {
    std::vector<size_t> cand;
    for (size_t j = 1; j < n; ++j) {
      collect_uppers(j, cand);
      for (size_t i : cand) {
        if (sequential_pair_needs_mega(left_rules, i, j, stitch_scratch_,
                                       &stitch_index)) {
          uppers[j].push_back(i);
        }
      }
    }
  } else {
    util::ChunkCursor cursor(1, n, util::ChunkCursor::suggest_chunk(n, workers));
    util::ThreadPool pool(workers);
    util::run_on_workers(pool, [&] {
      return [&] {
        StitchScratch scratch;
        std::vector<size_t> cand;
        size_t begin, end;
        while (cursor.next(begin, end)) {
          for (size_t j = begin; j < end; ++j) {
            collect_uppers(j, cand);
            for (size_t i : cand) {
              if (sequential_pair_needs_mega(left_rules, i, j, scratch,
                                             &stitch_index)) {
                uppers[j].push_back(i);
              }
            }
          }
        }
      };
    });
  }

  // Phase 2: resolve the surviving pairs serially, in the legacy loop's
  // (lower ascending, upper ascending) order. Tops/bottoms of each partial
  // depend only on its intra-partial edges (a mega always joins two distinct
  // partials), so compute them once up front: the live rescan inside
  // resolve_mega walks adjacency lists that grow with every resolved mega,
  // which is the second quadratic term once a broad rule stitches against
  // every other row.
  struct PartialEnds {
    std::vector<RuleId> tops, bottoms;
  };
  std::unordered_map<RuleId, PartialEnds> ends;
  std::unordered_set<RuleId> in_partial;
  auto compute_ends = [&](RuleId left_id) {
    if (ends.count(left_id) != 0) return;
    auto it = by_left_.find(left_id);
    if (it == by_left_.end()) return;
    PartialEnds pe;
    in_partial.clear();
    in_partial.insert(it->second.begin(), it->second.end());
    for (RuleId u : it->second) {
      bool top = true;
      for (RuleId s : member_graph_.successors(u)) {
        if (in_partial.count(s) != 0) {
          top = false;
          break;
        }
      }
      if (top) pe.tops.push_back(u);
      bool bottom = true;
      for (RuleId p : member_graph_.predecessors(u)) {
        if (in_partial.count(p) != 0) {
          bottom = false;
          break;
        }
      }
      if (bottom) pe.bottoms.push_back(u);
    }
    ends.emplace(left_id, std::move(pe));
  };
  for (size_t j = 1; j < n; ++j) {
    if (uppers[j].empty()) continue;
    compute_ends(left_rules[j].id);
    for (size_t i : uppers[j]) compute_ends(left_rules[i].id);
  }

  for (size_t j = 1; j < n; ++j) {
    for (size_t i : uppers[j]) {
      auto lo = by_left_.find(left_rules[j].id);
      auto up = by_left_.find(left_rules[i].id);
      if (lo == by_left_.end() || up == by_left_.end()) continue;
      mega_lower_.clear();
      mega_upper_.clear();
      mega_lower_.insert(lo->second.begin(), lo->second.end());
      mega_upper_.insert(up->second.begin(), up->second.end());
      resolve_mega_seeded(mega_lower_, mega_upper_, ends.at(left_rules[j].id).tops,
                          ends.at(left_rules[i].id).bottoms, out);
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental compilation (Sec. IV-C)
// ---------------------------------------------------------------------------

TableUpdate ComposedNode::apply_child_update(bool from_left, const TableUpdate& update) {
  UpdateBuilder out;

  // 1. Edge removals between surviving child rules (removals referencing
  //    deleted rules are handled by entry removal below).
  for (const auto& [a, b] : update.dag.removed_edges) {
    if (op_ == OpKind::kPriority) {
      auto ia = by_pair_.find(from_left ? PairKey{a, 0} : PairKey{0, a});
      auto ib = by_pair_.find(from_left ? PairKey{b, 0} : PairKey{0, b});
      if (ia != by_pair_.end() && ib != by_pair_.end()) {
        remove_member_edge(ia->second, ib->second, out);
      }
    } else if (from_left) {
      on_left_edge_removed(a, b, out);
    } else {
      on_right_edge_removed(a, b, out);
    }
  }

  // 2. Rule removals, then the deferred representative promotions.
  for (RuleId removed : update.removed) {
    if (op_ == OpKind::kPriority) {
      auto it = by_pair_.find(from_left ? PairKey{removed, 0} : PairKey{0, removed});
      if (it != by_pair_.end()) remove_entry_with_patch(it->second, out);
    } else if (from_left) {
      on_left_removed(removed, out);
    } else {
      on_right_removed(removed, out);
    }
  }
  promote_pending(out);

  // 3. Rule additions.
  std::vector<RuleId> added_ids;
  for (const Rule& added : update.added) {
    added_ids.push_back(added.id);
    if (op_ == OpKind::kPriority) {
      if (from_left) {
        add_entry(added.match, added.actions, added.id, 0, out);
      } else {
        add_entry(added.match, added.actions, 0, added.id, out);
      }
    } else if (from_left) {
      on_left_added(added, out);
    } else {
      on_right_added(added, out);
    }
  }

  // 4. Edge additions (may reference freshly added rules).
  for (const auto& [a, b] : update.dag.added_edges) {
    if (op_ == OpKind::kPriority) {
      auto ia = by_pair_.find(from_left ? PairKey{a, 0} : PairKey{0, a});
      auto ib = by_pair_.find(from_left ? PairKey{b, 0} : PairKey{0, b});
      if (ia != by_pair_.end() && ib != by_pair_.end()) {
        add_member_edge(ia->second, ib->second, out);
      }
    } else if (from_left) {
      on_left_edge_added(a, b, out);
    } else {
      on_right_edge_added(a, b, out);
    }
  }

  // 5. Priority op: re-resolve the table-level mega dependency around the
  //    freshly inserted rules (Sec. IV-C).
  if (op_ == OpKind::kPriority && !added_ids.empty()) {
    auto& lower = mega_lower_;
    auto& upper = mega_upper_;
    lower.clear();
    upper.clear();
    for (const auto& [id, e] : entries_) {
      (e.left_src != 0 ? upper : lower).insert(id);
    }
    if (!lower.empty() && !upper.empty()) {
      auto& seeds = seed_scratch_;
      seeds.clear();
      if (from_left) {
        // New upper rules: every top of the lower set may need to yield.
        for (RuleId added : added_ids) {
          auto it = by_pair_.find(PairKey{added, 0});
          if (it == by_pair_.end()) continue;
          for (RuleId u : lower) {
            bool top = true;
            for (RuleId s : member_graph_.successors(u)) {
              if (lower.count(s)) {
                top = false;
                break;
              }
            }
            if (top) seeds.emplace_back(u, it->second);
          }
        }
      } else {
        // New lower rules: they must yield to the bottoms of the upper set.
        for (RuleId added : added_ids) {
          auto it = by_pair_.find(PairKey{0, added});
          if (it == by_pair_.end()) continue;
          for (RuleId v : upper) {
            bool bottom = true;
            for (RuleId p : member_graph_.predecessors(v)) {
              if (upper.count(p)) {
                bottom = false;
                break;
              }
            }
            if (bottom) seeds.emplace_back(it->second, v);
          }
        }
      }
      resolve_tentative(seeds, &lower, &upper, out);
    }
  }

  return out.build();
}

void ComposedNode::on_left_removed(RuleId left_src, UpdateBuilder& out) {
  auto it = by_left_.find(left_src);
  if (it == by_left_.end()) return;
  auto& doomed = removal_scratch_;  // removal edits by_left_ under us
  doomed.assign(it->second.begin(), it->second.end());
  for (RuleId eid : doomed) remove_entry_with_patch(eid, out);
}

void ComposedNode::on_right_removed(RuleId right_src, UpdateBuilder& out) {
  auto it = by_right_.find(right_src);
  if (it == by_right_.end()) return;
  auto& doomed = removal_scratch_;
  doomed.assign(it->second.begin(), it->second.end());
  for (RuleId eid : doomed) remove_entry_with_patch(eid, out);
}

void ComposedNode::on_left_added(const Rule& rule, UpdateBuilder& out) {
  const TernaryMatch probe = right_probe(rule.match, rule.actions);
  std::vector<RuleId> new_entries;
  for (RuleId rid : right_->visible_overlapping(probe)) {
    const Rule r{rid, right_->visible_match(rid), right_->visible_actions(rid), 0};
    auto composed = compose_pair(rule, r);
    if (!composed) continue;
    new_entries.push_back(add_entry(std::move(composed->first),
                                    std::move(composed->second), rule.id, rid, out));
  }
  // Within-partial edges inherited from the right DAG.
  for (RuleId eid : new_entries) {
    const Entry& e = entry(eid);
    for (RuleId n : right_->visible_graph().successors(e.right_src)) {
      auto it = by_pair_.find(PairKey{e.left_src, n});
      if (it != by_pair_.end()) add_member_edge(eid, it->second, out);
    }
    for (RuleId p : right_->visible_graph().predecessors(e.right_src)) {
      auto it = by_pair_.find(PairKey{e.left_src, p});
      if (it != by_pair_.end()) add_member_edge(it->second, eid, out);
    }
  }
  // Cross-partial constraints: stitch the new partial table against every
  // ordered left pair whose overlap it participates in.
  if (op_ == OpKind::kSequential) {
    resolve_sequential_megas_around(rule.id, out);
  }
  // For parallel composition, cross-partial edges arrive with the child's
  // DAG delta (the edges incident to `rule`), handled by on_left_edge_added.
}

void ComposedNode::on_right_added(const Rule& rule, UpdateBuilder& out) {
  std::vector<RuleId> new_entries;
  std::unordered_set<RuleId> touched_left;
  if (op_ == OpKind::kParallel) {
    for (RuleId lid : left_->visible_overlapping(rule.match)) {
      const Rule l{lid, left_->visible_match(lid), left_->visible_actions(lid), 0};
      auto composed = compose_pair(l, rule);
      if (!composed) continue;
      new_entries.push_back(add_entry(std::move(composed->first),
                                      std::move(composed->second), lid, rule.id, out));
      touched_left.insert(lid);
    }
  } else {
    // Sequential right insert composes against every left rule whose
    // rewritten flow space can reach the new rule (Sec. IV-C).
    for (const Rule& l : left_->visible_rules_in_order()) {
      if (!right_probe(l.match, l.actions).overlaps(rule.match)) continue;
      auto composed = compose_pair(l, rule);
      if (!composed) continue;
      new_entries.push_back(add_entry(std::move(composed->first),
                                      std::move(composed->second), l.id, rule.id, out));
      touched_left.insert(l.id);
    }
  }

  // Left-DAG-derived edges among/around the new entries (parallel cross
  // product; for sequential these arise from the mega stitching below).
  if (op_ == OpKind::kParallel) {
    for (RuleId eid : new_entries) {
      const Entry& e = entry(eid);
      for (RuleId lj : left_->visible_graph().successors(e.left_src)) {
        auto it = by_pair_.find(PairKey{lj, e.right_src});
        if (it != by_pair_.end()) add_member_edge(eid, it->second, out);
      }
      for (RuleId li : left_->visible_graph().predecessors(e.left_src)) {
        auto it = by_pair_.find(PairKey{li, e.right_src});
        if (it != by_pair_.end()) add_member_edge(it->second, eid, out);
      }
    }
  } else {
    for (RuleId l : touched_left) resolve_sequential_megas_around(l, out);
  }
}

void ComposedNode::on_left_edge_added(RuleId li, RuleId lj, UpdateBuilder& out) {
  if (op_ == OpKind::kParallel) {
    auto it = by_left_.find(li);
    if (it == by_left_.end()) return;
    for (RuleId eid : it->second) {
      auto jt = by_pair_.find(PairKey{lj, entry(eid).right_src});
      if (jt != by_pair_.end()) add_member_edge(eid, jt->second, out);
    }
  } else {
    resolve_sequential_pair(lj, li, out);  // li yields to lj (matched first)
  }
}

void ComposedNode::on_left_edge_removed(RuleId li, RuleId lj, UpdateBuilder& out) {
  if (op_ != OpKind::kParallel) {
    // Sequential: member edges between the two partial tables were verified
    // by overlap, so they remain valid (possibly redundant) constraints.
    return;
  }
  auto it = by_left_.find(li);
  if (it == by_left_.end()) return;
  for (RuleId eid : std::vector<RuleId>(it->second)) {
    auto jt = by_pair_.find(PairKey{lj, entry(eid).right_src});
    if (jt != by_pair_.end()) remove_member_edge(eid, jt->second, out);
  }
}

void ComposedNode::on_right_edge_added(RuleId m, RuleId n, UpdateBuilder& out) {
  auto it = by_right_.find(m);
  if (it == by_right_.end()) return;
  for (RuleId eid : it->second) {
    auto jt = by_pair_.find(PairKey{entry(eid).left_src, n});
    if (jt != by_pair_.end()) add_member_edge(eid, jt->second, out);
  }
}

void ComposedNode::on_right_edge_removed(RuleId m, RuleId n, UpdateBuilder& out) {
  auto it = by_right_.find(m);
  if (it == by_right_.end()) return;
  for (RuleId eid : std::vector<RuleId>(it->second)) {
    auto jt = by_pair_.find(PairKey{entry(eid).left_src, n});
    if (jt != by_pair_.end()) remove_member_edge(eid, jt->second, out);
  }
}

// ---------------------------------------------------------------------------
// Snapshot (id-independent equivalence image)
// ---------------------------------------------------------------------------

CompileSnapshot ComposedNode::snapshot() const {
  CompileSnapshot snap;
  std::unordered_map<RuleId, CompileSnapshot::Prov> prov;
  prov.reserve(entries_.size());
  snap.entries.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    prov.emplace(id, CompileSnapshot::Prov{e.left_src, e.right_src});
    snap.entries.emplace_back(e.left_src, e.right_src, e.match, e.actions);
  }
  // (left_src, right_src) is unique per entry (by_pair_ invariant), so the
  // provenance prefix is a total order over the entries.
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) {
              if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
              return std::get<1>(a) < std::get<1>(b);
            });
  snap.reps.reserve(keys_.size());
  for (const auto& [match, kv] : keys_) {
    (void)match;
    if (kv.rep == 0) continue;  // promotion pending mid-update
    const Entry& e = entry(kv.rep);
    snap.reps.emplace_back(e.left_src, e.right_src);
  }
  std::sort(snap.reps.begin(), snap.reps.end());
  for (const auto& [u, v] : visible_dag_.graph().edges()) {
    snap.visible_edges.emplace_back(prov.at(u), prov.at(v));
  }
  std::sort(snap.visible_edges.begin(), snap.visible_edges.end());
  return snap;
}

std::vector<ComposedNode::MemberView> ComposedNode::export_members() const {
  std::vector<MemberView> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    out.push_back(MemberView{id, e.left_src, e.right_src, &e.match, &e.actions});
  }
  std::sort(out.begin(), out.end(), [](const MemberView& a, const MemberView& b) {
    if (a.left_src != b.left_src) return a.left_src < b.left_src;
    return a.right_src < b.right_src;
  });
  return out;
}

std::vector<RuleId> ComposedNode::representative_ids() const {
  std::vector<RuleId> out;
  out.reserve(keys_.size());
  for (const auto& [match, kv] : keys_) {
    (void)match;
    if (kv.rep != 0) out.push_back(kv.rep);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// PolicyNode interface
// ---------------------------------------------------------------------------

std::vector<Rule> ComposedNode::visible_rules_in_order() const {
  std::vector<Rule> out;
  out.reserve(visible_dag_.size());
  int32_t priority = static_cast<int32_t>(visible_dag_.size());
  for (RuleId id : visible_dag_.order()) {
    const Entry& e = entry(id);
    out.push_back(Rule{e.id, e.match, e.actions, priority--});
  }
  return out;
}

bool ComposedNode::has_visible(RuleId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  return keys_.at(it->second.match).rep == id;
}

const TernaryMatch& ComposedNode::visible_match(RuleId id) const {
  return entry(id).match;
}

const ActionList& ComposedNode::visible_actions(RuleId id) const {
  return entry(id).actions;
}

bool ComposedNode::visible_before(RuleId a, RuleId b) const {
  const auto ia = entries_.find(a);
  const auto ib = entries_.find(b);
  if (ia == entries_.end() || ib == entries_.end()) return a < b;  // dead ids
  return entry_before(ia->second, ib->second);
}

std::vector<RuleId> ComposedNode::visible_overlapping(const TernaryMatch& m) const {
  return visible_dag_.overlapping(m);
}

}  // namespace ruletris::compiler
