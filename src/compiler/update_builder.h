// Chronological update recorder with net-effect normalization.
//
// A single child update can make a composed node's visible state churn: a
// key vertex's representative may be demoted and later restored, an edge
// added and then removed again. Parents and the back-end consume
// *normalized* TableUpdates (removals, then additions), so this builder
// records mutation events in order and emits only the net difference
// between the pre- and post-update visible state.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "compiler/update.h"
#include "util/hash.h"

namespace ruletris::compiler {

class UpdateBuilder {
 public:
  /// Records that visible rule `rule.id` became visible.
  void add_rule(const Rule& rule) {
    cancelled_.erase(rule.id);  // an id may come back after cancelling out
    auto it = verts_.find(rule.id);
    if (it == verts_.end()) {
      verts_.emplace(rule.id, VertexState{false, true, rule});
    } else {
      it->second.present_now = true;
      it->second.rule = rule;
    }
  }

  /// Records that visible rule `id` is no longer visible.
  void remove_rule(RuleId id) {
    auto it = verts_.find(id);
    if (it == verts_.end()) {
      verts_.emplace(id, VertexState{true, false, Rule{}});
    } else if (!it->second.present_before) {
      // Added earlier in this very update: cancels out entirely.
      verts_.erase(it);
      cancelled_.insert(id);
    } else {
      it->second.present_now = false;
    }
  }

  void add_edge(RuleId u, RuleId v) { bump_edge(u, v, +1); }
  void remove_edge(RuleId u, RuleId v) { bump_edge(u, v, -1); }

  /// Emits the net update. Edge changes implied by vertex removal are
  /// omitted (DagDelta vertex removal removes incident edges), and edges
  /// touching cancelled or removed vertices are dropped.
  TableUpdate build() const {
    TableUpdate out;
    for (const auto& [id, st] : verts_) {
      if (st.present_before && !st.present_now) {
        out.removed.push_back(id);
        out.dag.removed_vertices.push_back(id);
      } else if (st.present_now) {
        if (st.present_before) {
          // Removed and re-added within the update: surface as both so the
          // consumer refreshes match/actions.
          out.removed.push_back(id);
          out.dag.removed_vertices.push_back(id);
        }
        out.added.push_back(st.rule);
        out.dag.added_vertices.push_back(id);
      }
    }
    for (const auto& [key, net] : edges_) {
      if (net == 0) continue;
      if (!endpoint_live(key.first) || !endpoint_live(key.second)) continue;
      if (net > 0) {
        out.dag.added_edges.emplace_back(key.first, key.second);
      } else {
        // A net-removed edge between two still-visible rules.
        out.dag.removed_edges.emplace_back(key.first, key.second);
      }
    }
    return out;
  }

 private:
  struct VertexState {
    bool present_before;
    bool present_now;
    Rule rule;
  };
  struct EdgeKey {
    RuleId first, second;
    bool operator==(const EdgeKey&) const = default;
  };
  // Full 128-bit mix (util/hash.h): rule ids come in consecutive runs from
  // the global counter, and the multiply-add combiner collided on exactly
  // those structured grids.
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      return util::hash_pair(k.first, k.second);
    }
  };

  bool endpoint_live(RuleId id) const {
    if (cancelled_.count(id)) return false;
    auto it = verts_.find(id);
    return it == verts_.end() || it->second.present_now;
  }

  void bump_edge(RuleId u, RuleId v, int delta) {
    const EdgeKey key{u, v};
    auto [it, inserted] = edges_.try_emplace(key, 0);
    it->second += delta;
    if (it->second == 0) edges_.erase(it);
  }

  std::unordered_map<RuleId, VertexState> verts_;
  std::unordered_set<RuleId> cancelled_;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> edges_;
};

}  // namespace ruletris::compiler
