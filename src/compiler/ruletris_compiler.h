// RuleTris front-end compiler facade (Sec. IV).
//
// Owns a policy tree built from a PolicySpec, routes per-leaf rule updates
// through the incremental composition pipeline, and returns the root's
// visible update: rule adds/removes plus the minimum-DAG delta, ready for
// the DAG-aware back-end.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "compiler/composed_node.h"
#include "compiler/leaf.h"
#include "compiler/policy_spec.h"
#include "compiler/update.h"
#include "flowspace/rule.h"

namespace ruletris::compiler {

/// Replays `first` then `second` and returns the normalized net update
/// (used to express modify = delete + insert as one message).
TableUpdate chain_updates(const TableUpdate& first, const TableUpdate& second);

class RuleTrisCompiler {
 public:
  /// Builds the policy tree and fully compiles the initial tables.
  RuleTrisCompiler(const PolicySpec& spec,
                   std::map<std::string, flowspace::FlowTable> initial_tables);

  /// Inserts a prioritized rule into the named member table and propagates
  /// incrementally; returns the update to apply at the switch.
  TableUpdate insert(const std::string& leaf, Rule rule);

  /// Removes a member rule by id and propagates; returns the switch update.
  TableUpdate remove(const std::string& leaf, flowspace::RuleId id);

  /// Modify = delete + insert (Sec. IV-C), returned as one net update.
  TableUpdate modify(const std::string& leaf, flowspace::RuleId old_id, Rule new_rule);

  /// The composed result visible at the root.
  const PolicyNode& root() const { return *root_; }
  PolicyNode& root() { return *root_; }

  const LeafNode& leaf(const std::string& name) const;

 private:
  struct LeafRef {
    LeafNode* node = nullptr;
    // Path from the leaf's parent up to the root, with the side flag.
    std::vector<std::pair<ComposedNode*, bool>> path;
  };

  std::unique_ptr<PolicyNode> build(const PolicySpec& spec,
                                    std::map<std::string, flowspace::FlowTable>& tables);
  TableUpdate propagate(const std::string& leaf, TableUpdate update);

  std::unique_ptr<PolicyNode> root_;
  std::map<std::string, LeafRef> leaves_;
};

}  // namespace ruletris::compiler
