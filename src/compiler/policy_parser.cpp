#include "compiler/policy_parser.h"

#include <cctype>

namespace ruletris::compiler {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  PolicySpec parse() {
    PolicySpec spec = expr();
    skip_space();
    if (pos_ != text_.size()) {
      throw PolicyParseError("trailing input after policy expression", pos_);
    }
    return spec;
  }

 private:
  PolicySpec expr() {
    PolicySpec left = term();
    for (;;) {
      skip_space();
      if (consume('+')) {
        left = PolicySpec::parallel(std::move(left), term());
      } else if (consume('$')) {
        left = PolicySpec::priority(std::move(left), term());
      } else {
        return left;
      }
    }
  }

  PolicySpec term() {
    PolicySpec left = factor();
    for (;;) {
      skip_space();
      if (consume('>')) {
        left = PolicySpec::sequential(std::move(left), factor());
      } else {
        return left;
      }
    }
  }

  PolicySpec factor() {
    skip_space();
    if (consume('(')) {
      PolicySpec inner = expr();
      skip_space();
      if (!consume(')')) throw PolicyParseError("expected ')'", pos_);
      return inner;
    }
    const size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        ++pos_;
      }
      return PolicySpec::leaf(text_.substr(start, pos_ - start));
    }
    throw PolicyParseError("expected table name or '('", pos_);
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

PolicySpec parse_policy(const std::string& text) { return Parser(text).parse(); }

std::string policy_to_string(const PolicySpec& spec) {
  if (spec.is_leaf) return spec.leaf_name;
  static const char* kOps[] = {" + ", " > ", " $ "};
  return "(" + policy_to_string(*spec.left) + kOps[spec.op] +
         policy_to_string(*spec.right) + ")";
}

}  // namespace ruletris::compiler
