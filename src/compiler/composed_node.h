// Binary composition node: parallel (+), sequential (>), priority ($) with
// DAG preservation — the RuleTris front-end core (Sec. IV-B, IV-C).
//
// The node keeps the *member-level* state the paper describes: every
// composed rule ever derived (including ones obscured by an identical
// higher-priority match), the member-level dependency graph built with the
// paper's algorithms (graph cross-products, mega-dependency resolution), and
// the two-level nested key-vertex structure indexed by match. The *visible*
// level — one representative rule per key vertex — is what the parent node
// (or the back-end) consumes; obscured members are retained so that future
// incremental removals can promote them (Sec. IV-B1).
//
// Deviation from the paper (see DESIGN.md): the paper derives the visible
// DAG by projecting member-level edges onto key-vertex representatives. We
// found that projection unsound when an ordering chain passes through an
// obscured member whose key's representative sits elsewhere in the match
// order, so the visible DAG is maintained exactly by dag::MinDagMaintainer
// over the representatives instead. The member-level machinery is retained
// for provenance, key-vertex bookkeeping, and fidelity to Sec. IV-B.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "compiler/node.h"
#include "compiler/update.h"
#include "compiler/update_builder.h"
#include "dag/min_dag_maintainer.h"

namespace ruletris::compiler {

enum class OpKind { kParallel, kSequential, kPriority };

const char* op_name(OpKind op);

class ComposedNode final : public PolicyNode {
 public:
  /// Takes ownership of both children and performs the initial full compile.
  ComposedNode(OpKind op, std::unique_ptr<PolicyNode> left,
               std::unique_ptr<PolicyNode> right);

  OpKind op() const { return op_; }
  PolicyNode& left() { return *left_; }
  PolicyNode& right() { return *right_; }

  /// Recomputes the whole composed state from the children (also used by
  /// tests and the incremental-vs-scratch ablation).
  void full_rebuild();

  /// Applies an update that the left/right child has *already applied to
  /// itself*, and returns this node's own visible update.
  TableUpdate apply_child_update(bool from_left, const TableUpdate& update);

  /// Total member entries, including obscured ones (diagnostics).
  size_t member_size() const { return entries_.size(); }
  const DependencyGraph& member_graph() const { return member_graph_; }

  // PolicyNode interface.
  std::vector<Rule> visible_rules_in_order() const override;
  const DependencyGraph& visible_graph() const override { return visible_dag_.graph(); }
  bool has_visible(RuleId id) const override;
  const TernaryMatch& visible_match(RuleId id) const override;
  const ActionList& visible_actions(RuleId id) const override;
  size_t visible_size() const override { return keys_.size(); }
  bool visible_before(RuleId a, RuleId b) const override;
  std::vector<RuleId> visible_overlapping(const TernaryMatch& m) const override;

 private:
  struct Entry {
    RuleId id = 0;
    TernaryMatch match;
    ActionList actions;
    RuleId left_src = 0;   // 0 for a priority-op passthrough of a right rule
    RuleId right_src = 0;  // 0 for a priority-op passthrough of a left rule
  };

  struct KeyVertex {
    std::vector<RuleId> members;  // unordered; representative tracked aside
    RuleId rep = 0;               // 0 while a promotion is pending
  };

  struct PairKey {
    RuleId l, r;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      return std::hash<RuleId>()(k.l) * 0x9e3779b97f4a7c15ULL + std::hash<RuleId>()(k.r);
    }
  };

  const Entry& entry(RuleId id) const;

  /// Canonical matched-first-before order between two member entries:
  /// lexicographic over (left source order, right source order); for the
  /// priority op, all left passthroughs precede all right passthroughs.
  bool entry_before(const Entry& a, const Entry& b) const;

  /// Operator semantics (Sec. IV-A); nullopt when the result match is empty.
  std::optional<std::pair<TernaryMatch, ActionList>> compose_pair(
      const Rule& l, const Rule& r) const;

  /// The match to probe the right child's index with, for a left rule
  /// (identity for parallel; rewritten match for sequential).
  TernaryMatch right_probe(const TernaryMatch& left_match,
                           const ActionList& left_actions) const;

  // --- visible-level helpers
  void forward_delta(const dag::DagDelta& delta, UpdateBuilder& out);
  void make_visible(RuleId rep_id, UpdateBuilder& out);
  void make_invisible(RuleId rep_id, UpdateBuilder& out);
  /// Promotes representatives for every key vertex whose rep was removed
  /// earlier in the current update (all removals must have been applied).
  void promote_pending(UpdateBuilder& out);

  // --- member/visible state mutation (visible changes recorded in `out`).
  RuleId add_entry(TernaryMatch match, ActionList actions, RuleId left_src,
                   RuleId right_src, UpdateBuilder& out);
  void remove_entry(RuleId eid, UpdateBuilder& out);
  void add_member_edge(RuleId u, RuleId v, UpdateBuilder& out);
  void remove_member_edge(RuleId u, RuleId v, UpdateBuilder& out);
  void set_representative(KeyVertex& key, RuleId new_rep, UpdateBuilder& out);

  /// Recursive tentative-edge resolution (Sec. IV-B3) on the member graph.
  void resolve_tentative(std::vector<std::pair<RuleId, RuleId>> seeds,
                         const std::unordered_set<RuleId>* lower_set,
                         const std::unordered_set<RuleId>* upper_set,
                         UpdateBuilder& out);

  /// Resolves a mega dependency "every rule in lower must yield to upper"
  /// by seeding tops(lower) x bottoms(upper) (Sec. IV-B2/3).
  void resolve_mega(const std::unordered_set<RuleId>& lower_set,
                    const std::unordered_set<RuleId>& upper_set, UpdateBuilder& out);

  std::unordered_set<RuleId> entry_set_of_left(RuleId left_src) const;
  std::unordered_set<RuleId> entry_set_of_right(RuleId right_src) const;

  /// Sequential stitching (Sec. IV-B2, generalized): resolves the mega
  /// dependency between the partial tables of left_rules[upper_idx] and
  /// left_rules[lower_idx] unless their overlap is entirely covered by the
  /// composed entries of the partials in between.
  void maybe_resolve_sequential_pair(const std::vector<Rule>& left_rules,
                                     size_t upper_idx, size_t lower_idx,
                                     UpdateBuilder& out);

  /// Re-stitches every ordered left pair involving `left_src`.
  void resolve_sequential_megas_around(RuleId left_src, UpdateBuilder& out);

  // --- incremental handlers
  void on_left_removed(RuleId left_src, UpdateBuilder& out);
  void on_right_removed(RuleId right_src, UpdateBuilder& out);
  void on_left_added(const Rule& rule, UpdateBuilder& out);
  void on_right_added(const Rule& rule, UpdateBuilder& out);
  void on_left_edge_added(RuleId li, RuleId lj, UpdateBuilder& out);
  void on_left_edge_removed(RuleId li, RuleId lj, UpdateBuilder& out);
  void on_right_edge_added(RuleId m, RuleId n, UpdateBuilder& out);
  void on_right_edge_removed(RuleId m, RuleId n, UpdateBuilder& out);

  /// Removes an entry and patches the member DAG around it with verified
  /// tentative predecessor x successor edges (Sec. IV-C rule delete).
  void remove_entry_with_patch(RuleId eid, UpdateBuilder& out);

  OpKind op_;
  std::unique_ptr<PolicyNode> left_;
  std::unique_ptr<PolicyNode> right_;

  std::unordered_map<RuleId, Entry> entries_;
  std::unordered_map<PairKey, RuleId, PairKeyHash> by_pair_;
  std::unordered_map<RuleId, std::vector<RuleId>> by_left_;
  std::unordered_map<RuleId, std::vector<RuleId>> by_right_;

  DependencyGraph member_graph_;
  // Nested key-vertex structure: entries grouped by match (the entry's own
  // `match` field is the lookup key, so no separate reverse map is needed).
  std::unordered_map<TernaryMatch, KeyVertex, flowspace::TernaryMatchHash> keys_;
  std::vector<TernaryMatch> pending_promotions_;

  // Exact minimum DAG over the representatives (see header comment).
  dag::MinDagMaintainer visible_dag_;
  // During full_rebuild the visible DAG is bulk-loaded at the end instead of
  // being maintained per insert.
  bool bulk_building_ = false;
};

}  // namespace ruletris::compiler
