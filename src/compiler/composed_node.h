// Binary composition node: parallel (+), sequential (>), priority ($) with
// DAG preservation — the RuleTris front-end core (Sec. IV-B, IV-C).
//
// The node keeps the *member-level* state the paper describes: every
// composed rule ever derived (including ones obscured by an identical
// higher-priority match), the member-level dependency graph built with the
// paper's algorithms (graph cross-products, mega-dependency resolution), and
// the two-level nested key-vertex structure indexed by match. The *visible*
// level — one representative rule per key vertex — is what the parent node
// (or the back-end) consumes; obscured members are retained so that future
// incremental removals can promote them (Sec. IV-B1).
//
// Deviation from the paper (see DESIGN.md): the paper derives the visible
// DAG by projecting member-level edges onto key-vertex representatives. We
// found that projection unsound when an ordering chain passes through an
// obscured member whose key's representative sits elsewhere in the match
// order, so the visible DAG is maintained exactly by dag::MinDagMaintainer
// over the representatives instead. The member-level machinery is retained
// for provenance, key-vertex bookkeeping, and fidelity to Sec. IV-B.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "compiler/node.h"
#include "compiler/update.h"
#include "compiler/update_builder.h"
#include "dag/min_dag_maintainer.h"
#include "flowspace/rule_index.h"
#include "util/hash.h"

namespace ruletris::compiler {

enum class OpKind { kParallel, kSequential, kPriority };

const char* op_name(OpKind op);

/// Left tables smaller than this compile serially even when threads were
/// requested: below it the compose fan-out finishes faster than the pool's
/// chunk choreography.
inline constexpr size_t kCompileParallelCutoff = 512;

/// Tuning knobs for ComposedNode's full compile. Defaults are right for
/// production use; the composition bench and the equivalence tests override
/// them (forced parallelism, legacy-stitch ablation).
struct CompileOptions {
  /// Workers for full_rebuild's compose fan-out and the sequential-stitch
  /// predicate sweep; <= 1 compiles serially.
  size_t n_threads = 1;
  /// Left tables smaller than this compile serially even when n_threads > 1.
  size_t parallel_cutoff = kCompileParallelCutoff;
  /// Ablation: enumerate every ordered left pair in the sequential stitch
  /// (the pre-index O(n^2) loop) instead of pulling candidate pairs from an
  /// overlap index over the left rules. Same resulting state, measured by
  /// bench/composition_scaling as the speedup baseline.
  bool legacy_stitch = false;
  /// Clamp n_threads to the machine's core count before deciding whether —
  /// and how wide — to shard (util::effective_workers). On a single-core
  /// host the compile then stays serial no matter what n_threads says.
  /// Equivalence tests disable this to force the pool path and its
  /// interleavings even where there is nothing to gain from them.
  bool clamp_to_hardware = true;
};

/// Process-wide default compile options, used by the two-argument
/// ComposedNode constructor (and thus by RuleTrisCompiler). Set from
/// tools/bench flags (--compile-threads).
///
/// Contract: the global is guarded by an internal mutex. The setter
/// publishes atomically and the getter returns a snapshot *copy*, so a
/// thread constructing a compiler concurrently with a writer observes
/// either the old or the new options in full, never a torn mix. Intended
/// usage is still configure-at-startup — set once from flags before
/// spawning compile work; nodes latch their options at construction, so a
/// later set never retunes an existing compiler.
void set_default_compile_options(const CompileOptions& opts);
CompileOptions default_compile_options();

/// Id-independent image of a composed node's compiled state, keyed by
/// (left_src, right_src) provenance instead of entry ids (ids come from the
/// process-global counter, so two compiles of the same policy never share
/// them). Serial, parallel, and legacy-stitch full compiles must produce
/// equal snapshots; the incremental path must agree on everything but the
/// member-edge provenance (its stitching may retain extra, still-valid
/// constraint edges — see DESIGN.md).
struct CompileSnapshot {
  using Prov = std::pair<RuleId, RuleId>;  // (left_src, right_src)

  /// Every member entry: provenance, match, actions. Sorted by provenance.
  std::vector<std::tuple<RuleId, RuleId, TernaryMatch, ActionList>> entries;
  /// Key-vertex representatives, by provenance. Sorted.
  std::vector<Prov> reps;
  /// Visible minimum-DAG edges, endpoints mapped to provenance. Sorted.
  std::vector<std::pair<Prov, Prov>> visible_edges;

  bool operator==(const CompileSnapshot&) const = default;
};

class ComposedNode final : public PolicyNode {
 public:
  /// Takes ownership of both children and performs the initial full compile
  /// with the process-wide default CompileOptions.
  ComposedNode(OpKind op, std::unique_ptr<PolicyNode> left,
               std::unique_ptr<PolicyNode> right);

  /// Same, with explicit compile options (bench ablations, forced threads).
  ComposedNode(OpKind op, std::unique_ptr<PolicyNode> left,
               std::unique_ptr<PolicyNode> right, const CompileOptions& opts);

  OpKind op() const { return op_; }
  PolicyNode& left() { return *left_; }
  PolicyNode& right() { return *right_; }

  const CompileOptions& compile_options() const { return opts_; }
  void set_compile_options(const CompileOptions& opts) { opts_ = opts; }

  /// Recomputes the whole composed state from the children (also used by
  /// tests and the incremental-vs-scratch ablation). Honours
  /// compile_options(): threads, parallel cutoff, legacy-stitch ablation.
  void full_rebuild();

  /// Canonical id-independent image of the current compiled state, for
  /// equivalence checks across compile strategies.
  CompileSnapshot snapshot() const;

  /// Read-only view of one member entry for state export (the frozen
  /// layer). Pointers alias this node's internal storage and stay valid
  /// until the next mutation.
  struct MemberView {
    RuleId id = 0;
    RuleId left_src = 0;
    RuleId right_src = 0;
    const TernaryMatch* match = nullptr;
    const ActionList* actions = nullptr;
  };

  /// Every member entry — including obscured ones — sorted by
  /// (left_src, right_src) provenance, the same canonical order
  /// snapshot() uses.
  std::vector<MemberView> export_members() const;

  /// Ids of the current key-vertex representatives, sorted ascending.
  /// Skips keys with a promotion pending (only possible mid-update).
  std::vector<RuleId> representative_ids() const;

  /// Visible rule ids in matched-first order.
  const std::vector<RuleId>& visible_order() const { return visible_dag_.order(); }

  /// Applies an update that the left/right child has *already applied to
  /// itself*, and returns this node's own visible update.
  TableUpdate apply_child_update(bool from_left, const TableUpdate& update);

  /// Total member entries, including obscured ones (diagnostics).
  size_t member_size() const { return entries_.size(); }
  const DependencyGraph& member_graph() const { return member_graph_; }

  // PolicyNode interface.
  std::vector<Rule> visible_rules_in_order() const override;
  const DependencyGraph& visible_graph() const override { return visible_dag_.graph(); }
  bool has_visible(RuleId id) const override;
  const TernaryMatch& visible_match(RuleId id) const override;
  const ActionList& visible_actions(RuleId id) const override;
  size_t visible_size() const override { return keys_.size(); }
  bool visible_before(RuleId a, RuleId b) const override;
  std::vector<RuleId> visible_overlapping(const TernaryMatch& m) const override;

 private:
  struct Entry {
    RuleId id = 0;
    TernaryMatch match;
    ActionList actions;
    RuleId left_src = 0;   // 0 for a priority-op passthrough of a right rule
    RuleId right_src = 0;  // 0 for a priority-op passthrough of a left rule
  };

  struct KeyVertex {
    std::vector<RuleId> members;  // unordered; representative tracked aside
    RuleId rep = 0;               // 0 while a promotion is pending
  };

  struct PairKey {
    RuleId l, r;
    bool operator==(const PairKey&) const = default;
  };
  // Full 128-bit mix: rule ids arrive in consecutive blocks from the global
  // counter, and the old h(l)*C + h(r) combiner collided on exactly those
  // structured grids (util/hash.h; collision test in composition tests).
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const { return util::hash_pair(k.l, k.r); }
  };

  const Entry& entry(RuleId id) const;

  /// Canonical matched-first-before order between two member entries:
  /// lexicographic over (left source order, right source order); for the
  /// priority op, all left passthroughs precede all right passthroughs.
  bool entry_before(const Entry& a, const Entry& b) const;

  /// Operator semantics (Sec. IV-A); nullopt when the result match is empty.
  std::optional<std::pair<TernaryMatch, ActionList>> compose_pair(
      const Rule& l, const Rule& r) const;

  /// The match to probe the right child's index with, for a left rule
  /// (identity for parallel; rewritten match for sequential).
  TernaryMatch right_probe(const TernaryMatch& left_match,
                           const ActionList& left_actions) const;

  // --- visible-level helpers
  void forward_delta(const dag::DagDelta& delta, UpdateBuilder& out);
  void make_visible(RuleId rep_id, UpdateBuilder& out);
  void make_invisible(RuleId rep_id, UpdateBuilder& out);
  /// Promotes representatives for every key vertex whose rep was removed
  /// earlier in the current update (all removals must have been applied).
  void promote_pending(UpdateBuilder& out);

  // --- member/visible state mutation (visible changes recorded in `out`).
  RuleId add_entry(TernaryMatch match, ActionList actions, RuleId left_src,
                   RuleId right_src, UpdateBuilder& out);
  void remove_entry(RuleId eid, UpdateBuilder& out);
  void add_member_edge(RuleId u, RuleId v, UpdateBuilder& out);
  void remove_member_edge(RuleId u, RuleId v, UpdateBuilder& out);
  void set_representative(KeyVertex& key, RuleId new_rep, UpdateBuilder& out);

  /// Recursive tentative-edge resolution (Sec. IV-B3) on the member graph.
  /// Queue and visited set live in reusable member scratch; `seeds` is read
  /// only on entry, so callers may pass seed_scratch_.
  void resolve_tentative(const std::vector<std::pair<RuleId, RuleId>>& seeds,
                         const std::unordered_set<RuleId>* lower_set,
                         const std::unordered_set<RuleId>* upper_set,
                         UpdateBuilder& out);

  /// Resolves a mega dependency "every rule in lower must yield to upper"
  /// by seeding tops(lower) x bottoms(upper) (Sec. IV-B2/3).
  void resolve_mega(const std::unordered_set<RuleId>& lower_set,
                    const std::unordered_set<RuleId>& upper_set, UpdateBuilder& out);

  /// resolve_mega with tops(lower) and bottoms(upper) precomputed by the
  /// caller. The full-compile stitch computes them once per partial: a mega
  /// always joins two *distinct* partials, so a partial's intra-set
  /// adjacency — and hence its tops/bottoms — never changes across the
  /// resolution loop, while the live rescan in resolve_mega walks adjacency
  /// lists that grow with every resolved mega (the second quadratic term on
  /// broad-rule workloads). The resulting member-edge set is identical:
  /// tentative resolution is a closure, insensitive to seed order.
  void resolve_mega_seeded(const std::unordered_set<RuleId>& lower_set,
                           const std::unordered_set<RuleId>& upper_set,
                           const std::vector<RuleId>& tops,
                           const std::vector<RuleId>& bottoms, UpdateBuilder& out);

  /// Per-thread context for the read-only sequential-stitch predicate.
  struct StitchScratch {
    std::vector<TernaryMatch> cover;
    std::vector<std::pair<RuleId, const TernaryMatch*>> cover_keyed;
    flowspace::CoverScratch cover_scratch;
  };

  /// Shared read-only context for the index-pruned stitch: an overlap index
  /// over every member entry plus each entry's left-rule position, so a
  /// pair's cover set is a bucket query instead of a scan over every
  /// in-between partial (broad left rules — NAT/route defaults — otherwise
  /// cost O(members) per pair and the stitch goes quadratic).
  struct StitchIndex {
    flowspace::RuleIndex entries;
    std::unordered_map<RuleId, size_t> entry_left_pos;
  };

  /// True iff the partial tables of left_rules[upper_idx] and
  /// left_rules[lower_idx] need a mega dependency: the left matches overlap,
  /// both partials are non-empty, and the overlap is not entirely covered by
  /// the composed entries of the partials strictly in between. Read-only
  /// (safe to evaluate from worker threads with per-thread scratch). With an
  /// `index`, the cover set comes from the entry overlap index; without one
  /// it comes from the legacy scan over the in-between partials. Both paths
  /// test the identical cover set in the identical deterministic order.
  bool sequential_pair_needs_mega(const std::vector<Rule>& left_rules,
                                  size_t upper_idx, size_t lower_idx,
                                  StitchScratch& scratch,
                                  const StitchIndex* index = nullptr) const;

  /// Resolves the mega dependency between the partial tables of two left
  /// rules (`upper_left` matched first): fills the mega scratch sets from
  /// by_left_ and runs resolve_mega. Callers have already established the
  /// stitch predicate.
  void resolve_sequential_pair(RuleId upper_left, RuleId lower_left,
                               UpdateBuilder& out);

  /// Sequential stitching (Sec. IV-B2, generalized): resolves the mega
  /// dependency between the two partial tables iff
  /// sequential_pair_needs_mega holds.
  void maybe_resolve_sequential_pair(const std::vector<Rule>& left_rules,
                                     size_t upper_idx, size_t lower_idx,
                                     UpdateBuilder& out);

  /// Re-stitches every ordered left pair involving `left_src`, pulling
  /// candidate partners from an overlap index over the left rules.
  void resolve_sequential_megas_around(RuleId left_src, UpdateBuilder& out);

  /// Full-compile phase 1: composes every (left rule x overlapping right
  /// rule) pair and materializes the entries in left order. The compose
  /// fan-out (probe, index query, pair composition) is sharded across a
  /// thread pool when opts_ asks for it; entry materialization — id
  /// assignment, maps, key vertices — always runs on the calling thread in
  /// deterministic left order, so serial and parallel compiles agree.
  void build_cross_product(const std::vector<Rule>& left_rules, UpdateBuilder& out);

  /// Full-compile sequential stitch over all ordered left pairs. Candidate
  /// pairs come from an overlap index over the left rules (every skipped
  /// pair fails the overlap test, i.e. would have been a no-op); the
  /// cover-test predicate is evaluated in parallel when opts_ asks for it,
  /// and the surviving pairs resolve serially in (lower, upper) order —
  /// identical to the order the legacy O(n^2) loop resolves them in.
  void stitch_sequential(const std::vector<Rule>& left_rules, UpdateBuilder& out);

  // --- incremental handlers
  void on_left_removed(RuleId left_src, UpdateBuilder& out);
  void on_right_removed(RuleId right_src, UpdateBuilder& out);
  void on_left_added(const Rule& rule, UpdateBuilder& out);
  void on_right_added(const Rule& rule, UpdateBuilder& out);
  void on_left_edge_added(RuleId li, RuleId lj, UpdateBuilder& out);
  void on_left_edge_removed(RuleId li, RuleId lj, UpdateBuilder& out);
  void on_right_edge_added(RuleId m, RuleId n, UpdateBuilder& out);
  void on_right_edge_removed(RuleId m, RuleId n, UpdateBuilder& out);

  /// Removes an entry and patches the member DAG around it with verified
  /// tentative predecessor x successor edges (Sec. IV-C rule delete).
  void remove_entry_with_patch(RuleId eid, UpdateBuilder& out);

  OpKind op_;
  CompileOptions opts_;
  std::unique_ptr<PolicyNode> left_;
  std::unique_ptr<PolicyNode> right_;

  std::unordered_map<RuleId, Entry> entries_;
  std::unordered_map<PairKey, RuleId, PairKeyHash> by_pair_;
  std::unordered_map<RuleId, std::vector<RuleId>> by_left_;
  std::unordered_map<RuleId, std::vector<RuleId>> by_right_;

  DependencyGraph member_graph_;
  // Nested key-vertex structure: entries grouped by match (the entry's own
  // `match` field is the lookup key, so no separate reverse map is needed).
  std::unordered_map<TernaryMatch, KeyVertex, flowspace::TernaryMatchHash> keys_;
  std::vector<TernaryMatch> pending_promotions_;

  // Exact minimum DAG over the representatives (see header comment).
  dag::MinDagMaintainer visible_dag_;
  // During full_rebuild the visible DAG is bulk-loaded at the end instead of
  // being maintained per insert.
  bool bulk_building_ = false;

  // Reusable scratch for the resolution kernels: apply_child_update lands
  // here on every propagated update, so the hot path must not allocate at
  // steady state. None of these survive a call; none of the kernels nest on
  // the same buffer (resolve_mega's seeds are consumed before
  // resolve_tentative reuses the queue).
  std::unordered_set<PairKey, PairKeyHash> tentative_visited_;
  std::deque<std::pair<RuleId, RuleId>> tentative_queue_;
  std::vector<std::pair<RuleId, RuleId>> seed_scratch_;
  std::vector<RuleId> tops_scratch_, bottoms_scratch_;
  std::unordered_set<RuleId> mega_lower_, mega_upper_;
  std::vector<RuleId> removal_scratch_;
  mutable StitchScratch stitch_scratch_;
};

}  // namespace ruletris::compiler
