// Policy-tree node interface.
//
// A RuleTris policy is a binary tree of composition operators over named
// leaf tables, e.g. (monitor + router) or (nat > router). Every node
// maintains the *visible* result of its subtree: a set of rules (no
// priorities) plus the minimum dependency DAG over them, and can apply
// incremental updates arriving from a child.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compiler/update.h"
#include "dag/dependency_graph.h"
#include "flowspace/rule.h"

namespace ruletris::compiler {

using dag::DependencyGraph;
using flowspace::ActionList;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;

class PolicyNode {
 public:
  virtual ~PolicyNode() = default;

  /// Visible rules in the node's canonical match order (matched-first
  /// first). Priorities in the returned rules are descending positions, so
  /// the result is directly usable as a prioritized table.
  virtual std::vector<Rule> visible_rules_in_order() const = 0;

  /// The minimum DAG over the visible rules.
  virtual const DependencyGraph& visible_graph() const = 0;

  virtual bool has_visible(RuleId id) const = 0;
  virtual const TernaryMatch& visible_match(RuleId id) const = 0;
  virtual const ActionList& visible_actions(RuleId id) const = 0;
  virtual size_t visible_size() const = 0;

  /// Canonical-order comparator: true iff visible rule `a` is matched before
  /// visible rule `b`. Total order; used for representative selection in
  /// parent key vertices and for canonical linearization.
  virtual bool visible_before(RuleId a, RuleId b) const = 0;

  /// Ids of visible rules whose match overlaps `m` (uses the node's index).
  virtual std::vector<RuleId> visible_overlapping(const TernaryMatch& m) const = 0;
};

}  // namespace ruletris::compiler
