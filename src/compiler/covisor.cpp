#include "compiler/covisor.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "compiler/compose_ops.h"
#include "compiler/composed_node.h"

namespace ruletris::compiler {

using flowspace::Rule;
using flowspace::RuleId;
using flowspace::RuleIndex;

namespace {

int32_t algebra_priority(OpKind op, int32_t left, int32_t right) {
  switch (op) {
    case OpKind::kParallel:
      return left + right;
    case OpKind::kSequential:
      if (right >= kCovisorSeqWidth) {
        throw std::overflow_error("CoVisor: right priority exceeds sequential width");
      }
      return left * kCovisorSeqWidth + right;
    case OpKind::kPriority:
      break;
  }
  throw std::invalid_argument("algebra_priority: priority op handled separately");
}

struct PairKey {
  RuleId l, r;
  bool operator==(const PairKey&) const = default;
};
struct PairKeyHash {
  size_t operator()(const PairKey& k) const {
    return std::hash<RuleId>()(k.l) * 0x9e3779b97f4a7c15ULL + std::hash<RuleId>()(k.r);
  }
};

}  // namespace

struct CovisorCompiler::Node {
  bool is_leaf = false;
  OpKind op = OpKind::kParallel;
  std::unique_ptr<Node> left, right;

  // Result view of this subtree.
  std::unordered_map<RuleId, Rule> rules;
  RuleIndex index;

  // Provenance for composed nodes.
  std::unordered_map<PairKey, RuleId, PairKeyHash> by_pair;
  std::unordered_map<RuleId, std::vector<RuleId>> by_left, by_right;
  std::unordered_map<RuleId, PairKey> sources;  // result id -> member sources

  void add_result(Rule rule, RuleId lsrc, RuleId rsrc, PrioritizedUpdate& out) {
    index.insert(rule.id, rule.match);
    by_pair[PairKey{lsrc, rsrc}] = rule.id;
    if (lsrc != 0) by_left[lsrc].push_back(rule.id);
    if (rsrc != 0) by_right[rsrc].push_back(rule.id);
    sources[rule.id] = PairKey{lsrc, rsrc};
    out.push_back(PrioritizedOp::add(rule));
    rules.emplace(rule.id, std::move(rule));
  }

  void erase_result(RuleId rid, PrioritizedUpdate& out) {
    const PairKey key = sources.at(rid);
    by_pair.erase(key);
    auto drop = [rid](std::unordered_map<RuleId, std::vector<RuleId>>& map, RuleId src) {
      if (src == 0) return;
      auto it = map.find(src);
      if (it == map.end()) return;
      it->second.erase(std::remove(it->second.begin(), it->second.end(), rid),
                       it->second.end());
      if (it->second.empty()) map.erase(it);
    };
    drop(by_left, key.l);
    drop(by_right, key.r);
    sources.erase(rid);
    index.erase(rid);
    rules.erase(rid);
    out.push_back(PrioritizedOp::del(rid));
  }

  void compose_one(const Rule& l, const Rule& r, PrioritizedUpdate& out) {
    auto composed = compose_rule_pair(op, l, r);
    if (!composed) return;
    Rule result{flowspace::next_rule_id(), std::move(composed->first),
                std::move(composed->second),
                algebra_priority(op, l.priority, r.priority)};
    add_result(std::move(result), l.id, r.id, out);
  }

  /// Applies a child's prioritized update and emits this node's own.
  PrioritizedUpdate apply_child(bool from_left, const PrioritizedUpdate& update) {
    PrioritizedUpdate out;
    for (const PrioritizedOp& op_in : update) {
      switch (op_in.kind) {
        case PrioritizedOp::Kind::kDelete: {
          auto& by_src = from_left ? by_left : by_right;
          auto it = by_src.find(op_in.rule.id);
          if (it == by_src.end()) break;
          const std::vector<RuleId> derived = it->second;
          for (RuleId rid : derived) erase_result(rid, out);
          break;
        }
        case PrioritizedOp::Kind::kAdd: {
          const Rule& added = op_in.rule;
          if (op == OpKind::kPriority) {
            Rule result = added;
            result.id = flowspace::next_rule_id();
            if (from_left) result.priority += kCovisorPriorityOffset;
            add_result(std::move(result), from_left ? added.id : 0,
                       from_left ? 0 : added.id, out);
            break;
          }
          if (from_left) {
            const auto probe = right_probe_match(op, added.match, added.actions);
            for (RuleId rid : right_result_overlapping(probe)) {
              compose_one(added, result_of_child(false, rid), out);
            }
          } else {
            for (const auto& [lid, lrule] : left_rules_view()) {
              (void)lid;
              if (!right_probe_match(op, lrule.match, lrule.actions)
                       .overlaps(added.match)) {
                continue;
              }
              compose_one(lrule, added, out);
            }
          }
          break;
        }
        case PrioritizedOp::Kind::kModify:
          // CoVisor never emits modifies (no reprioritization).
          throw std::logic_error("CovisorCompiler: unexpected modify from child");
      }
    }
    return out;
  }

  const std::unordered_map<RuleId, Rule>& left_rules_view() const { return left->rules; }

  std::vector<RuleId> right_result_overlapping(const flowspace::TernaryMatch& m) const {
    return right->index.find_overlapping(m);
  }

  const Rule& result_of_child(bool from_left, RuleId id) const {
    return (from_left ? left : right)->rules.at(id);
  }

  void full_build() {
    rules.clear();
    index.clear();
    by_pair.clear();
    by_left.clear();
    by_right.clear();
    sources.clear();
    PrioritizedUpdate sink;
    if (op == OpKind::kPriority) {
      for (const auto& [id, r] : left->rules) {
        Rule result = r;
        result.id = flowspace::next_rule_id();
        result.priority += kCovisorPriorityOffset;
        add_result(std::move(result), id, 0, sink);
      }
      for (const auto& [id, r] : right->rules) {
        Rule result = r;
        result.id = flowspace::next_rule_id();
        add_result(std::move(result), 0, id, sink);
      }
      return;
    }
    for (const auto& [lid, lrule] : left->rules) {
      (void)lid;
      const auto probe = right_probe_match(op, lrule.match, lrule.actions);
      for (RuleId rid : right->index.find_overlapping(probe)) {
        compose_one(lrule, right->rules.at(rid), sink);
      }
    }
  }
};

CovisorCompiler::CovisorCompiler(const PolicySpec& spec,
                                 std::map<std::string, flowspace::FlowTable> tables) {
  root_ = build(spec, tables);
  // Record leaf-to-root paths.
  struct Walker {
    std::map<std::string, LeafRef>& leaves;
    std::map<Node*, std::string> names;
    void walk(Node* node, std::vector<std::pair<Node*, bool>> path) {
      if (node->is_leaf) {
        leaves[names.at(node)].path = std::move(path);
        return;
      }
      auto lp = path;
      lp.insert(lp.begin(), {node, true});
      walk(node->left.get(), lp);
      auto rp = path;
      rp.insert(rp.begin(), {node, false});
      walk(node->right.get(), rp);
    }
  };
  Walker walker{leaves_, {}};
  for (auto& [name, ref] : leaves_) walker.names[ref.node] = name;
  walker.walk(root_.get(), {});
}

CovisorCompiler::~CovisorCompiler() = default;

std::unique_ptr<CovisorCompiler::Node> CovisorCompiler::build(
    const PolicySpec& spec, std::map<std::string, flowspace::FlowTable>& tables) {
  auto node = std::make_unique<Node>();
  if (spec.is_leaf) {
    node->is_leaf = true;
    auto it = tables.find(spec.leaf_name);
    if (it != tables.end()) {
      for (const Rule& r : it->second.rules()) {
        node->index.insert(r.id, r.match);
        node->rules.emplace(r.id, r);
      }
    }
    if (leaves_.count(spec.leaf_name)) {
      throw std::invalid_argument("duplicate leaf name: " + spec.leaf_name);
    }
    leaves_[spec.leaf_name].node = node.get();
    return node;
  }
  node->op = static_cast<OpKind>(spec.op);
  node->left = build(*spec.left, tables);
  node->right = build(*spec.right, tables);
  node->full_build();
  return node;
}

PrioritizedUpdate CovisorCompiler::propagate(const std::string& leaf,
                                             PrioritizedUpdate update) {
  const auto& ref = leaves_.at(leaf);
  for (const auto& [node, from_left] : ref.path) {
    if (update.empty()) break;
    update = node->apply_child(from_left, update);
  }
  return update;
}

PrioritizedUpdate CovisorCompiler::insert(const std::string& leaf, Rule rule) {
  Node* node = leaves_.at(leaf).node;
  node->index.insert(rule.id, rule.match);
  PrioritizedUpdate update{PrioritizedOp::add(rule)};
  node->rules.emplace(rule.id, std::move(rule));
  return propagate(leaf, std::move(update));
}

PrioritizedUpdate CovisorCompiler::remove(const std::string& leaf, RuleId id) {
  Node* node = leaves_.at(leaf).node;
  if (!node->rules.count(id)) return {};
  node->rules.erase(id);
  node->index.erase(id);
  return propagate(leaf, PrioritizedUpdate{PrioritizedOp::del(id)});
}

std::vector<Rule> CovisorCompiler::compiled() const {
  std::vector<Rule> out;
  out.reserve(root_->rules.size());
  for (const auto& [id, r] : root_->rules) {
    (void)id;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const Rule& a, const Rule& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.id < b.id;
  });
  return out;
}

}  // namespace ruletris::compiler
