// Update records exchanged along the composition tree and with the back-end.
//
// Every policy change — whether entering at a leaf table or produced by an
// operator node — is expressed as a TableUpdate: visible rule additions and
// removals plus the corresponding delta of the visible minimum DAG
// (Sec. III-B: "incremental rule inserts, deletes and modifications together
// with the updates to the DAG").
#pragma once

#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"

namespace ruletris::compiler {

using dag::DagDelta;
using flowspace::Rule;
using flowspace::RuleId;

struct TableUpdate {
  /// Rules removed from the visible table (ids were previously visible).
  std::vector<RuleId> removed;
  /// Rules added to the visible table. `priority` is meaningless for
  /// DAG-carrying updates and set to 0.
  std::vector<Rule> added;
  /// Delta to the visible DAG. Vertex removals/additions mirror
  /// `removed`/`added`; edge changes may touch surviving rules too.
  DagDelta dag;

  bool empty() const { return removed.empty() && added.empty() && dag.empty(); }

  void merge(TableUpdate other) {
    removed.insert(removed.end(), other.removed.begin(), other.removed.end());
    added.insert(added.end(), std::make_move_iterator(other.added.begin()),
                 std::make_move_iterator(other.added.end()));
    auto& d = dag;
    d.removed_vertices.insert(d.removed_vertices.end(),
                              other.dag.removed_vertices.begin(),
                              other.dag.removed_vertices.end());
    d.removed_edges.insert(d.removed_edges.end(), other.dag.removed_edges.begin(),
                           other.dag.removed_edges.end());
    d.added_vertices.insert(d.added_vertices.end(), other.dag.added_vertices.begin(),
                            other.dag.added_vertices.end());
    d.added_edges.insert(d.added_edges.end(), other.dag.added_edges.begin(),
                         other.dag.added_edges.end());
  }
};

}  // namespace ruletris::compiler
